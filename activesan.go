// Package activesan is a full reproduction of "Active I/O Switches in
// System Area Networks" (Hao & Heinrich, HPCA 2003): an execution-driven
// simulator of a SAN cluster whose switches carry user-programmable
// embedded processors, plus the paper's nine benchmarks and a harness that
// regenerates every table and figure of its evaluation.
//
// Two levels of API are exposed:
//
//   - Experiment level: Experiments() lists every paper artifact;
//     RunExperiment executes one and returns its rows/series.
//
//   - System level: build clusters (NewIOCluster / NewTreeCluster),
//     register switch handlers (ActiveSwitch.Register with a HandlerCtx
//     callback), attach files to storage nodes, and drive host programs as
//     simulation processes — the same machinery the benchmarks use.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for measured
// versus published results.
package activesan

import (
	"encoding/json"
	"fmt"
	"io"

	"activesan/internal/apps"
	"activesan/internal/aswitch"
	"activesan/internal/cluster"
	"activesan/internal/exp"
	"activesan/internal/host"
	"activesan/internal/iodev"
	"activesan/internal/metrics"
	"activesan/internal/plot"
	"activesan/internal/report"
	"activesan/internal/san"
	"activesan/internal/sim"
	"activesan/internal/stats"
	"activesan/internal/svm"
)

// Simulation core.
type (
	// Engine is the deterministic discrete-event simulator.
	Engine = sim.Engine
	// Proc is a simulated process (host program, handler driver, ...).
	Proc = sim.Proc
	// Time is simulated time in picoseconds.
	Time = sim.Time
)

// Time units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// NewEngine returns a fresh simulator.
func NewEngine() *Engine { return sim.NewEngine() }

// Fabric and node types.
type (
	// NodeID identifies an endpoint or switch.
	NodeID = san.NodeID
	// Header is the 128-bit SAN packet header with the active sub-header.
	Header = san.Header
	// Message is a multi-packet transfer.
	Message = san.Message
	// PacketType classifies packets (DataPacket, ActiveMsgPacket, ...).
	PacketType = san.Type
	// Host is a compute node (CPU + caches + memory + HCA + OS model).
	Host = host.Host
	// StorageNode is a TCA + SCSI bus + disk pair.
	StorageNode = iodev.StorageNode
	// File is an extent on a storage node.
	File = iodev.File
	// ActiveSwitch is the paper's switch with embedded processors.
	ActiveSwitch = aswitch.ActiveSwitch
	// HandlerCtx is the programming model handed to switch handlers.
	HandlerCtx = aswitch.Ctx
	// HandlerFunc is the code behind a jump-table entry.
	HandlerFunc = aswitch.HandlerFunc
	// SendSpec describes a handler's outgoing message.
	SendSpec = aswitch.SendSpec
	// Cluster is a wired system of hosts, switches and storage.
	Cluster = cluster.Cluster
	// IOClusterConfig parameterizes single-switch I/O clusters.
	IOClusterConfig = cluster.IOClusterConfig
	// TreeConfig parameterizes reduction-tree clusters.
	TreeConfig = cluster.TreeConfig
	// SwitchConfig parameterizes an active switch.
	SwitchConfig = aswitch.Config
	// ReadToken tracks an outstanding disk read.
	ReadToken = host.ReadToken
)

// Packet types.
const (
	DataPacket      = san.Data
	ActiveMsgPacket = san.ActiveMsg
	IORequestPacket = san.IORequest
	ControlPacket   = san.Control
)

// MTU is the network's maximum transfer unit (512 bytes, as in the paper).
const MTU = san.MTU

// DefaultIOClusterConfig returns a one-host, one-store cluster with the
// paper's hardware parameters.
func DefaultIOClusterConfig() IOClusterConfig { return cluster.DefaultIOClusterConfig() }

// NewIOCluster builds a single-switch cluster of hosts and storage nodes.
func NewIOCluster(eng *Engine, cfg IOClusterConfig) *Cluster {
	return cluster.NewIOCluster(eng, cfg)
}

// DefaultTreeConfig returns the paper's reduction topology for p hosts
// (16-port switches, 8 hosts per leaf).
func DefaultTreeConfig(p int) TreeConfig { return cluster.DefaultTreeConfig(p) }

// NewTreeCluster builds a switch tree for collective operations.
func NewTreeCluster(eng *Engine, cfg TreeConfig) *Cluster {
	return cluster.NewTreeCluster(eng, cfg)
}

// DefaultSwitchConfig returns the paper's active switch (one 500 MHz CPU,
// sixteen 512-byte buffers) with the given port count.
func DefaultSwitchConfig(ports int) SwitchConfig { return aswitch.DefaultConfig(ports) }

// Benchmark configurations.
type BenchConfig = apps.Config

// The paper's four-configuration matrix.
const (
	Normal     = apps.Normal
	NormalPref = apps.NormalPref
	Active     = apps.Active
	ActivePref = apps.ActivePref
)

// Experiment results.
type (
	// Experiment is one paper table or figure.
	Experiment = exp.Experiment
	// Result carries an experiment's runs, breakdown bars and series.
	Result = stats.Result
	// Run is one benchmark configuration's metrics.
	Run = stats.Run
)

// Experiments lists every paper artifact in order (Table 1, Figures 3-17,
// Table 2).
func Experiments() []Experiment { return exp.Registry }

// RunExperiment executes one experiment by id ("fig3", "table1", ...) at
// the given scale divisor; scale 1 is the paper's full problem size.
func RunExperiment(id string, scale int64) (*Result, error) {
	e, ok := exp.ByID(id)
	if !ok {
		return nil, fmt.Errorf("activesan: unknown experiment %q (have %v)", id, exp.IDs())
	}
	return e.Run(scale), nil
}

// RunExperiments executes the whole registry at one scale over a pool of
// `workers` goroutines (each experiment simulates on its own Engine, so
// runs are independent). Results are ordered by registry index regardless
// of completion order; workers < 1 selects runtime.NumCPU() and workers ==
// 1 reproduces the sequential harness exactly.
func RunExperiments(scale int64, workers int) []*Result {
	return exp.RunAll(scale, workers)
}

// Shapes summarizes a result's headline numbers against the paper's.
func Shapes(res *Result) []string { return exp.Shapes(res) }

// Switch assembly. Handlers may be written in the embedded processor's
// MIPS-like assembly and executed instruction-by-instruction instead of
// through cost models: Assemble the source once, then RunProgram inside a
// handler. See examples/asmhandler.
type (
	// Program is an assembled switch handler.
	Program = svm.Program
	// VMResult reports a finished program (registers, instruction count).
	VMResult = svm.Result
)

// Assemble parses switch-handler assembly (see package svm for the ISA).
func Assemble(src string) (*Program, error) { return svm.Assemble(src) }

// RunProgram executes an assembled handler on the switch CPU: one cycle
// per instruction, fetches through the I-cache, stream loads through the
// ATB, private memory through the D-cache. It returns the machine state
// and the words the program emitted.
func RunProgram(x *HandlerCtx, prog *Program, streamBase, memBase int64, init map[uint8]uint32) (*VMResult, []uint32, error) {
	return svm.RunOnCtx(x, prog, streamBase, memBase, init)
}

// ResultJSON encodes results for downstream tooling: times are integer
// picoseconds; Extra carries benchmark-specific values as-is.
func ResultJSON(results []*Result) ([]byte, error) {
	wrapper := struct {
		Paper   string    `json:"paper"`
		Results []*Result `json:"results"`
	}{
		Paper:   "Active I/O Switches in System Area Networks (HPCA 2003)",
		Results: results,
	}
	return json.MarshalIndent(wrapper, "", "  ")
}

// MarkdownReport renders results as a self-contained markdown document.
func MarkdownReport(title string, scale int64, results []*Result) string {
	return report.Markdown(title, scale, results)
}

// RenderASCII draws a result as terminal bar charts.
func RenderASCII(res *Result) string { return plot.ASCII(res) }

// RenderSVG draws a result as a standalone SVG figure.
func RenderSVG(res *Result) []byte { return plot.SVG(res) }

// SetTracer installs a legacy string trace sink applied to every simulation
// created afterwards (nil disables). Trace lines cover packet send/receive
// at every link, switch and NIC, handler dispatch/invoke/retire, main-memory
// cache misses and disk operations — the activesim CLI's -trace flag writes
// them to a file.
func SetTracer(fn func(t Time, msg string)) { sim.SetDefaultTracer(fn) }

// Typed tracing and metrics.
type (
	// TraceEvent is one typed simulation trace record (category, name,
	// component, detail, timestamp).
	TraceEvent = sim.TraceEvent
	// TraceSink consumes typed trace events.
	TraceSink = sim.TraceSink
	// MetricsSnapshot is the per-run secondary-metric tree: every
	// component counter under a "/"-separated name, plus derived gauges
	// and sampled timelines. Each Run carries one in its Metrics field.
	MetricsSnapshot = metrics.Snapshot
	// ChromeTraceWriter streams typed trace events as a Perfetto /
	// chrome://tracing loadable JSON file.
	ChromeTraceWriter = metrics.ChromeTraceWriter
)

// SetTraceSink installs a typed trace sink applied to every simulation
// created afterwards (nil disables). Sinks installed while experiments run
// in parallel are called from multiple goroutines and must lock —
// NewChromeTraceWriter's sink already does.
func SetTraceSink(sink TraceSink) { sim.SetDefaultTraceSink(sink) }

// NewChromeTraceWriter starts a Chrome trace-event JSON stream on w,
// capped at limit events (0 = unlimited). Install its Sink with
// SetTraceSink and Close it after the last simulation finishes; the
// resulting file opens directly in https://ui.perfetto.dev.
func NewChromeTraceWriter(w io.Writer, limit int64) *ChromeTraceWriter {
	return metrics.NewChromeTraceWriter(w, limit)
}

// MetricsDiff compares two snapshots, returning every shared metric whose
// relative change exceeds thresholdPct (largest drift first).
func MetricsDiff(before, after *MetricsSnapshot, thresholdPct float64) []metrics.Drift {
	return metrics.Diff(before, after, thresholdPct)
}

// MetricsJSON extracts every run's metrics snapshot into one JSON document
// keyed by experiment id and configuration — the activesim/sansweep
// -metrics-out payload.
func MetricsJSON(results []*Result) ([]byte, error) {
	experiments := make(map[string]map[string]*metrics.Snapshot)
	for _, res := range results {
		for _, r := range res.Runs {
			if r.Metrics == nil {
				continue
			}
			m := experiments[res.ID]
			if m == nil {
				m = make(map[string]*metrics.Snapshot)
				experiments[res.ID] = m
			}
			m[r.Config] = r.Metrics
		}
	}
	wrapper := struct {
		Paper       string                                  `json:"paper"`
		Experiments map[string]map[string]*metrics.Snapshot `json:"experiments"`
	}{
		Paper:       "Active I/O Switches in System Area Networks (HPCA 2003)",
		Experiments: experiments,
	}
	return json.MarshalIndent(wrapper, "", "  ")
}
