// Ablation benchmarks: the design-choice studies of internal/ablation,
// exposed as testing.B entries so `go test -bench=Ablation` reports them
// alongside the paper's figures.
package activesan_test

import (
	"testing"

	"activesan/internal/ablation"
)

func BenchmarkAblationInterference(b *testing.B) {
	var r ablation.InterferenceResult
	for i := 0; i < b.N; i++ {
		r = ablation.Interference()
	}
	b.ReportMetric(100*r.Degradation(), "degradation_pct/goal=0")
	b.ReportMetric(r.Baseline/1e6, "baseline_MBps")
}

func BenchmarkAblationBufferCount(b *testing.B) {
	var pts []ablation.ThroughputPoint
	for i := 0; i < b.N; i++ {
		pts = ablation.BufferCount([]int{4, 16})
	}
	b.ReportMetric(pts[0].Bytes/1e6, "MBps_4buf")
	b.ReportMetric(pts[1].Bytes/1e6, "MBps_16buf")
}

func BenchmarkAblationValidBits(b *testing.B) {
	var fine, coarse float64
	for i := 0; i < b.N; i++ {
		f, c := ablation.ValidBitGranularity()
		fine, coarse = f.Micros(), c.Micros()
	}
	b.ReportMetric(coarse-fine, "fine_bits_gain_us")
}

func BenchmarkAblationCPUClock(b *testing.B) {
	var pts []ablation.ThroughputPoint
	for i := 0; i < b.N; i++ {
		pts = ablation.CPUClock([]int{250, 1000})
	}
	b.ReportMetric(pts[1].Bytes/pts[0].Bytes, "speedup_250_to_1000MHz")
}
