// Command benchdiff compares `go test -bench` output against the checked-in
// engine baseline (BENCH_engine.json at the repo root), benchstat-style.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./internal/sim/ ./internal/cache/ ./internal/apps/scalesweep/ | \
//	    go run ./scripts/benchdiff -baseline BENCH_engine.json
//
//	go run ./scripts/benchdiff -baseline BENCH_engine.json -update bench.txt
//
// Result lines are tokenized as (value, unit) pairs, so custom units
// reported via b.ReportMetric — the partition benchmarks' run-ns/op and
// proj-ns/op — are recorded in the baseline and shown in the report rather
// than confusing the allocs column.
//
// Two regression gates, chosen per context:
//
//   - allocs/op is always gated. At micro scale (baseline <= 64 allocs/op)
//     the comparison is exact: the engine's pooled hot paths promise zero
//     steady-state allocations, and that promise is deterministic, so CI
//     can enforce it even on noisy shared runners. Macro benchmarks (whole
//     collectives, millions of allocations) get 1.5x head-room — their
//     counts scale with workload shape, not with a pooling promise.
//   - ns/op is gated only when -threshold is positive (e.g. 0.25 allows a
//     25% slowdown). Wall-clock on CI runners is noisy, so CI passes
//     -allocs-only and the timing table is informational there; run the
//     timing gate locally before updating the baseline.
//
// Exit status is 1 when any gate fails, so the CI job fails on drift.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

type entry struct {
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

type baseline struct {
	Note       string           `json:"note"`
	Benchmarks map[string]entry `json:"benchmarks"`
}

// parse tokenizes `go test -bench -benchmem` result rows: the benchmark
// name (GOMAXPROCS suffix stripped), the iteration count, then (value,
// unit) pairs in any order. Unknown units land in the entry's Metrics map.
func parse(r io.Reader) (map[string]entry, error) {
	got := make(map[string]entry)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		if _, err := strconv.Atoi(f[1]); err != nil {
			continue // not a result row (e.g. a test log line)
		}
		name := f[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		var e entry
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value in %q: %v", sc.Text(), err)
			}
			switch unit := f[i+1]; unit {
			case "ns/op":
				e.NsPerOp = v
			case "allocs/op":
				e.AllocsPerOp = int64(v)
			case "B/op":
				// Alloc bytes ride along with allocs/op; the count is the gate.
			default:
				if e.Metrics == nil {
					e.Metrics = make(map[string]float64)
				}
				e.Metrics[unit] = v
			}
		}
		got[name] = e
	}
	return got, sc.Err()
}

// allocRegressed applies the tiered allocation gate: exact at micro scale,
// 1.5x head-room for macro benchmarks whose counts track workload size.
func allocRegressed(base, cur int64) bool {
	if base <= 64 {
		return cur > base
	}
	return float64(cur) > float64(base)*1.5
}

func main() {
	basePath := flag.String("baseline", "BENCH_engine.json", "baseline file to compare against")
	threshold := flag.Float64("threshold", 0, "fail if ns/op regresses by more than this fraction (0 disables the timing gate)")
	allocsOnly := flag.Bool("allocs-only", false, "gate only on allocs/op (timing table is informational)")
	update := flag.Bool("update", false, "rewrite the baseline from the input instead of comparing")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	got, err := parse(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(got) == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no benchmark results in input")
		os.Exit(1)
	}

	if *update {
		b := baseline{
			Note:       "Engine microbenchmark baseline; regenerate with: go test -run '^$' -bench . -benchmem ./internal/sim/ ./internal/cache/ ./internal/apps/scalesweep/ | go run ./scripts/benchdiff -update",
			Benchmarks: got,
		}
		data, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*basePath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d benchmarks)\n", *basePath, len(got))
		return
	}

	data, err := os.ReadFile(*basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var base baseline
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: bad baseline %s: %v\n", *basePath, err)
		os.Exit(1)
	}

	names := make([]string, 0, len(got))
	for name := range got {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := false
	fmt.Printf("%-28s %12s %12s %8s %14s\n", "benchmark", "base ns/op", "ns/op", "delta", "allocs (b→c)")
	for _, name := range names {
		cur := got[name]
		b, known := base.Benchmarks[name]
		if !known {
			fmt.Printf("%-28s %12s %12.1f %8s %11s %d\n", name, "-", cur.NsPerOp, "new", "-", cur.AllocsPerOp)
			printMetrics(cur.Metrics, nil)
			continue
		}
		delta := 0.0
		if b.NsPerOp > 0 {
			delta = (cur.NsPerOp - b.NsPerOp) / b.NsPerOp
		}
		mark := ""
		if allocRegressed(b.AllocsPerOp, cur.AllocsPerOp) {
			mark = "  ALLOC REGRESSION"
			failed = true
		}
		if !*allocsOnly && *threshold > 0 && delta > *threshold {
			mark += "  TIME REGRESSION"
			failed = true
		}
		fmt.Printf("%-28s %12.1f %12.1f %+7.1f%% %8d → %-3d%s\n",
			name, b.NsPerOp, cur.NsPerOp, delta*100, b.AllocsPerOp, cur.AllocsPerOp, mark)
		printMetrics(cur.Metrics, b.Metrics)
	}
	for name := range base.Benchmarks {
		if _, ok := got[name]; !ok {
			fmt.Printf("%-28s missing from input (baseline has it)\n", name)
		}
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchdiff: regression against", *basePath)
		os.Exit(1)
	}
}

// printMetrics shows a benchmark's custom units (informational, never
// gated) with the baseline value for context when one exists.
func printMetrics(cur, base map[string]float64) {
	units := make([]string, 0, len(cur))
	for u := range cur {
		units = append(units, u)
	}
	sort.Strings(units)
	for _, u := range units {
		if b, ok := base[u]; ok {
			fmt.Printf("%-28s %12.1f %12.1f   [%s]\n", "", b, cur[u], u)
		} else {
			fmt.Printf("%-28s %12s %12.1f   [%s]\n", "", "-", cur[u], u)
		}
	}
}
