// Command benchdiff compares `go test -bench` output against the checked-in
// engine baseline (BENCH_engine.json at the repo root), benchstat-style.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./internal/sim/ ./internal/cache/ | \
//	    go run ./scripts/benchdiff -baseline BENCH_engine.json
//
//	go run ./scripts/benchdiff -baseline BENCH_engine.json -update bench.txt
//
// Two regression gates, chosen per context:
//
//   - allocs/op is compared exactly and always gated: the engine's pooled
//     hot paths promise zero steady-state allocations, and that promise is
//     deterministic, so CI can enforce it even on noisy shared runners.
//   - ns/op is gated only when -threshold is positive (e.g. 0.25 allows a
//     25% slowdown). Wall-clock on CI runners is noisy, so CI passes
//     -allocs-only and the timing table is informational there; run the
//     timing gate locally before updating the baseline.
//
// Exit status is 1 when any gate fails, so the CI job fails on drift.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
)

type entry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type baseline struct {
	Note       string           `json:"note"`
	Benchmarks map[string]entry `json:"benchmarks"`
}

// benchLine matches one result row of `go test -bench -benchmem` output.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:\s+[\d.]+ B/op\s+(\d+) allocs/op)?`)

func parse(r io.Reader) (map[string]entry, error) {
	got := make(map[string]entry)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %v", sc.Text(), err)
		}
		var allocs int64
		if m[3] != "" {
			allocs, err = strconv.ParseInt(m[3], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad allocs/op in %q: %v", sc.Text(), err)
			}
		}
		got[m[1]] = entry{NsPerOp: ns, AllocsPerOp: allocs}
	}
	return got, sc.Err()
}

func main() {
	basePath := flag.String("baseline", "BENCH_engine.json", "baseline file to compare against")
	threshold := flag.Float64("threshold", 0, "fail if ns/op regresses by more than this fraction (0 disables the timing gate)")
	allocsOnly := flag.Bool("allocs-only", false, "gate only on allocs/op (timing table is informational)")
	update := flag.Bool("update", false, "rewrite the baseline from the input instead of comparing")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	got, err := parse(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(got) == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no benchmark results in input")
		os.Exit(1)
	}

	if *update {
		b := baseline{
			Note:       "Engine microbenchmark baseline; regenerate with: go test -run '^$' -bench . -benchmem ./internal/sim/ ./internal/cache/ | go run ./scripts/benchdiff -update",
			Benchmarks: got,
		}
		data, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*basePath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d benchmarks)\n", *basePath, len(got))
		return
	}

	data, err := os.ReadFile(*basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var base baseline
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: bad baseline %s: %v\n", *basePath, err)
		os.Exit(1)
	}

	names := make([]string, 0, len(got))
	for name := range got {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := false
	fmt.Printf("%-28s %12s %12s %8s %14s\n", "benchmark", "base ns/op", "ns/op", "delta", "allocs (b→c)")
	for _, name := range names {
		cur := got[name]
		b, known := base.Benchmarks[name]
		if !known {
			fmt.Printf("%-28s %12s %12.1f %8s %11s %d\n", name, "-", cur.NsPerOp, "new", "-", cur.AllocsPerOp)
			continue
		}
		delta := 0.0
		if b.NsPerOp > 0 {
			delta = (cur.NsPerOp - b.NsPerOp) / b.NsPerOp
		}
		mark := ""
		if cur.AllocsPerOp > b.AllocsPerOp {
			mark = "  ALLOC REGRESSION"
			failed = true
		}
		if !*allocsOnly && *threshold > 0 && delta > *threshold {
			mark += "  TIME REGRESSION"
			failed = true
		}
		fmt.Printf("%-28s %12.1f %12.1f %+7.1f%% %8d → %-3d%s\n",
			name, b.NsPerOp, cur.NsPerOp, delta*100, b.AllocsPerOp, cur.AllocsPerOp, mark)
	}
	for name := range base.Benchmarks {
		if _, ok := got[name]; !ok {
			fmt.Printf("%-28s missing from input (baseline has it)\n", name)
		}
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchdiff: regression against", *basePath)
		os.Exit(1)
	}
}
