module activesan

go 1.22
