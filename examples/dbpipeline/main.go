// Dbpipeline: the paper's database motivation — Select and HashJoin with a
// bit-vector filter running inside the switch, so the host's caches stop
// thrashing on records that were never going to match (Figures 5-8, at a
// reduced problem size).
//
//	go run ./examples/dbpipeline
package main

import (
	"fmt"

	"activesan"
)

func main() {
	fmt.Println("Database operators on an active switch (scaled to 1/8 of the paper's tables)")
	fmt.Println()
	for _, id := range []string{"fig7", "fig5"} {
		res, err := activesan.RunExperiment(id, 8)
		if err != nil {
			panic(err)
		}
		fmt.Print(res.Format())
		for _, s := range activesan.Shapes(res) {
			fmt.Printf("shape: %s\n", s)
		}
		fmt.Println()
	}
}
