// Asmhandler: write a switch handler in the embedded processor's assembly
// and execute it instruction-by-instruction on the simulated switch CPU —
// the paper's "single-issue MIPS-like core with extensions" made concrete.
// The program below scans 16-byte records streaming off the disk, counts
// those whose first byte is under a threshold, and emits the count.
//
//	go run ./examples/asmhandler
package main

import (
	"fmt"

	"activesan"
)

// r1=cursor r2=end r3=count r5=threshold r6=record size
const source = `
; select: count records whose key byte < threshold
loop:
	bge  r1, r2, done
	lb   r4, 0(r1)      ; key byte, via the ATB (stalls on valid bits)
	blt  r4, r5, keep
	j    next
keep:
	addi r3, r3, 1
next:
	add  r1, r1, r6
	dealloc r1          ; Deallocate_Buffer(cursor)
	j    loop
done:
	emit r3             ; hand the count to the send unit
	stop
`

const (
	recSize    = 16
	total      = 256 * 1024
	streamBase = 0x0010_0000
	threshold  = 64
)

func main() {
	prog, err := activesan.Assemble(source)
	if err != nil {
		panic(err)
	}
	fmt.Printf("assembled %d instructions\n", len(prog.Instrs))

	// Workload: deterministic records; compute the oracle.
	data := make([]byte, total)
	want := 0
	for i := 0; i < total/recSize; i++ {
		data[i*recSize] = byte((i * 131) % 251)
		if data[i*recSize] < threshold {
			want++
		}
	}

	eng := activesan.NewEngine()
	c := activesan.NewIOCluster(eng, activesan.DefaultIOClusterConfig())
	c.Store(0).AddFile(&activesan.File{Name: "records", Size: total, Data: data})
	sw := c.Switch(0)

	var executed int64
	sw.Register(1, "asm-select", func(x *activesan.HandlerCtx) {
		x.ReleaseArgs()
		res, out, err := activesan.RunProgram(x, prog, streamBase, 1<<16, map[uint8]uint32{
			1: streamBase,
			2: streamBase + total,
			5: threshold,
			6: recSize,
		})
		if err != nil {
			panic(err)
		}
		executed = res.Executed
		x.Send(activesan.SendSpec{
			Dst: x.Src(), Type: activesan.ControlPacket, Addr: 0x100,
			Size: 8, Flow: 99, Payload: out[0],
		})
	})
	c.Start()

	eng.Spawn("app", func(p *activesan.Proc) {
		h := c.Host(0)
		h.SendMessage(p, &activesan.Message{
			Hdr:  activesan.Header{Dst: sw.ID(), Type: activesan.ActiveMsgPacket, HandlerID: 1},
			Size: 32,
		}, 0)
		tok := h.IssueReadTo(p, c.Store(0).ID(), "records", 0, total,
			sw.ID(), streamBase, activesan.DataPacket, 0, 0, 7)
		h.WaitRead(p, tok)
		comp := h.RecvFlow(p, sw.ID(), 99)
		got := comp.Payloads[0].(uint32)
		fmt.Printf("assembly handler counted %d matching records (oracle %d)\n", got, want)
		if int(got) == want {
			fmt.Println("MATCH")
		} else {
			fmt.Println("MISMATCH")
		}
		fmt.Printf("executed %d instructions on the 500 MHz switch CPU in %v simulated time\n",
			executed, p.Now())
	})
	eng.Run()
	c.Shutdown()
}
