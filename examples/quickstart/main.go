// Quickstart: build the smallest interesting active-switch system — one
// host, one storage node, one active switch — register a handler that
// counts the bytes of a file as it streams through the switch, and compare
// it with reading the file to the host.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"activesan"
)

const (
	handlerID  = 1
	streamBase = 0x0010_0000
	resultFlow = 0x4242
	fileSize   = 1 << 20 // 1 MB
)

func main() {
	fmt.Println("== active case: count bytes on the switch ==")
	activeTime, hostTraffic := runActive()
	fmt.Printf("time %v, host traffic %d bytes\n\n", activeTime, hostTraffic)

	fmt.Println("== normal case: read the file to the host ==")
	normalTime, normalTraffic := runNormal()
	fmt.Printf("time %v, host traffic %d bytes\n\n", normalTime, normalTraffic)

	fmt.Printf("traffic saved by the active switch: %.1f%%\n",
		100*(1-float64(hostTraffic)/float64(normalTraffic)))
}

func runActive() (activesan.Time, int64) {
	eng := activesan.NewEngine()
	c := activesan.NewIOCluster(eng, activesan.DefaultIOClusterConfig())
	c.Store(0).AddFile(&activesan.File{Name: "data", Size: fileSize})

	sw := c.Switch(0)
	sw.Register(handlerID, "bytecount", func(x *activesan.HandlerCtx) {
		x.ReleaseArgs()
		var counted int64
		cursor := int64(streamBase)
		for counted < fileSize {
			b := x.WaitStream(cursor) // blocks until the next packet maps in
			x.ReadAll(b)              // stalls on the per-line valid bits
			x.Compute(b.Size() / 8)   // one instruction per 8 bytes counted
			counted += b.Size()
			cursor = b.End()
			x.Deallocate(cursor) // the paper's Deallocate_Buffer
		}
		// Report the count back to the host.
		x.Send(activesan.SendSpec{
			Dst: x.Src(), Type: activesan.DataPacket, Addr: 0x100,
			Size: 8, Flow: resultFlow, Payload: counted,
		})
	})
	c.Start()

	var end activesan.Time
	eng.Spawn("app", func(p *activesan.Proc) {
		h := c.Host(0)
		// Invoke the handler, then aim the disk stream at the switch.
		h.SendMessage(p, &activesan.Message{
			Hdr:  activesan.Header{Dst: sw.ID(), Type: activesan.ActiveMsgPacket, HandlerID: handlerID},
			Size: 32,
		}, 0)
		tok := h.IssueReadTo(p, c.Store(0).ID(), "data", 0, fileSize,
			sw.ID(), streamBase, activesan.DataPacket, 0, 0, 0x9999)
		h.WaitRead(p, tok)
		comp := h.RecvFlow(p, sw.ID(), resultFlow)
		fmt.Printf("switch counted %d bytes\n", comp.Payloads[0].(int64))
		end = p.Now()
	})
	eng.Run()
	defer c.Shutdown()
	return end, c.Host(0).Traffic()
}

func runNormal() (activesan.Time, int64) {
	eng := activesan.NewEngine()
	c := activesan.NewIOCluster(eng, activesan.DefaultIOClusterConfig())
	c.Store(0).AddFile(&activesan.File{Name: "data", Size: fileSize})
	c.Start()

	var end activesan.Time
	eng.Spawn("app", func(p *activesan.Proc) {
		h := c.Host(0)
		buf := h.Space().Alloc(64*1024, 4096)
		var counted int64
		for off := int64(0); off < fileSize; off += 64 * 1024 {
			tok := h.IssueRead(p, c.Store(0).ID(), "data", off, 64*1024, buf)
			h.WaitRead(p, tok)
			h.CPU().Compute(p, 64*1024/8)
			counted += 64 * 1024
		}
		fmt.Printf("host counted %d bytes\n", counted)
		end = p.Now()
	})
	eng.Run()
	defer c.Shutdown()
	return end, c.Host(0).Traffic()
}
