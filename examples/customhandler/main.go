// Customhandler: write your own switch handler with the public API — a
// word-count filter in the spirit of the paper's Grep. The handler scans
// the stream inside the switch, counts words and line lengths, and ships
// only a small summary to the host; the host never sees the file.
//
//	go run ./examples/customhandler
package main

import (
	"bytes"
	"fmt"

	"activesan"
)

const (
	handlerID  = 2
	streamBase = 0x0010_0000
	resultFlow = 0x5151
)

// summary is the handler's output: what a "wc"-style active filter returns
// instead of the whole file.
type summary struct {
	Words, Lines, Longest int64
}

// countWords is shared by the handler and the oracle.
func countWords(data []byte, inWord *bool, cur *int64, s *summary) {
	for _, b := range data {
		switch {
		case b == '\n':
			s.Lines++
			if *cur > s.Longest {
				s.Longest = *cur
			}
			*cur = 0
			if *inWord {
				s.Words++
				*inWord = false
			}
		case b == ' ':
			*cur++
			if *inWord {
				s.Words++
				*inWord = false
			}
		default:
			*cur++
			*inWord = true
		}
	}
}

func main() {
	// A deterministic corpus.
	var corpus bytes.Buffer
	for i := 0; corpus.Len() < 512*1024; i++ {
		fmt.Fprintf(&corpus, "line %d of the corpus with a handful of words\n", i)
	}
	data := corpus.Bytes()
	size := int64(len(data))

	// Oracle.
	var want summary
	inWord := false
	var cur int64
	countWords(data, &inWord, &cur, &want)

	eng := activesan.NewEngine()
	c := activesan.NewIOCluster(eng, activesan.DefaultIOClusterConfig())
	c.Store(0).AddFile(&activesan.File{Name: "corpus", Size: size, Data: data})

	sw := c.Switch(0)
	sw.Register(handlerID, "wordcount", func(x *activesan.HandlerCtx) {
		x.ReleaseArgs()
		var s summary
		inWord := false
		var cur int64
		cursor := int64(streamBase)
		end := cursor + size
		for cursor < end {
			b := x.WaitStream(cursor)
			payload, _ := x.ReadAll(b).([]byte)
			x.Compute(2 * b.Size()) // ~2 switch instructions per byte
			countWords(payload, &inWord, &cur, &s)
			cursor = b.End()
			x.Deallocate(cursor)
		}
		x.Send(activesan.SendSpec{
			Dst: x.Src(), Type: activesan.DataPacket, Addr: 0x100,
			Size: 24, Flow: resultFlow, Payload: s,
		})
	})
	c.Start()

	eng.Spawn("app", func(p *activesan.Proc) {
		h := c.Host(0)
		h.SendMessage(p, &activesan.Message{
			Hdr:  activesan.Header{Dst: sw.ID(), Type: activesan.ActiveMsgPacket, HandlerID: handlerID},
			Size: 32,
		}, 0)
		tok := h.IssueReadTo(p, c.Store(0).ID(), "corpus", 0, size,
			sw.ID(), streamBase, activesan.DataPacket, 0, 0, 0x8888)
		h.WaitRead(p, tok)
		comp := h.RecvFlow(p, sw.ID(), resultFlow)
		got := comp.Payloads[0].(summary)
		fmt.Printf("switch reports: %d words, %d lines, longest line %d\n",
			got.Words, got.Lines, got.Longest)
		fmt.Printf("oracle reports: %d words, %d lines, longest line %d\n",
			want.Words, want.Lines, want.Longest)
		if got == want {
			fmt.Println("MATCH — the in-switch word count is exact")
		} else {
			fmt.Println("MISMATCH")
		}
		fmt.Printf("elapsed %v, host traffic %d bytes (file was %d)\n",
			p.Now(), h.Traffic(), size)
	})
	eng.Run()
	c.Shutdown()
}
