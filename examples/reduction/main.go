// Reduction: the paper's collective-reduction comparison as a runnable
// example — MST on the hosts versus the switch tree, Reduce-to-one and
// Distributed Reduce, across node counts (Figures 15/16 in miniature).
//
//	go run ./examples/reduction
package main

import (
	"fmt"

	"activesan"
)

func main() {
	for _, id := range []string{"table2", "fig15", "fig16"} {
		res, err := activesan.RunExperiment(id, 2)
		if err != nil {
			panic(err)
		}
		fmt.Print(res.Format())
		for _, s := range activesan.Shapes(res) {
			fmt.Printf("shape: %s\n", s)
		}
		fmt.Println()
	}
}
