// Benchmarks: one per paper artifact. Each benchmark regenerates its table
// or figure on the simulator and reports the headline shape numbers as
// custom metrics (speedups and ratios named after the paper's claims), so
// `go test -bench=.` reproduces the evaluation end to end.
//
// Scales are chosen so a full -bench=. run finishes in minutes; run the
// paper's exact problem sizes with `go run ./cmd/activesim -run all -scale 1`.
package activesan_test

import (
	"testing"

	"activesan"
)

// runExp executes an experiment once per iteration and returns the last
// result for metric reporting.
func runExp(b *testing.B, id string, scale int64) *activesan.Result {
	b.Helper()
	var res *activesan.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = activesan.RunExperiment(id, scale)
		if err != nil {
			b.Fatal(err)
		}
	}
	return res
}

func report(b *testing.B, res *activesan.Result, metric string, v float64) {
	b.Helper()
	b.ReportMetric(v, metric)
	_ = res
}

func BenchmarkTable1(b *testing.B) {
	res := runExp(b, "table1", 1)
	report(b, res, "workloads", float64(len(res.Notes)))
}

func BenchmarkFig3MPEG(b *testing.B) {
	res := runExp(b, "fig3", 1)
	report(b, res, "speedup_active/paper=1.23", res.Speedup("active"))
	report(b, res, "speedup_active+pref/paper=1.36", res.Speedup("active+pref"))
}

func BenchmarkFig4MPEGBreakdown(b *testing.B) {
	res := runExp(b, "fig3", 2)
	ap, _ := res.Run("active+pref")
	report(b, res, "switch_util/paper=high", ap.SwitchUtil())
}

func BenchmarkFig5HashJoin(b *testing.B) {
	res := runExp(b, "fig5", 16)
	report(b, res, "speedup_active/paper=1.10", res.Speedup("active"))
	a, _ := res.Run("active")
	report(b, res, "traffic_ratio", float64(a.Traffic)/float64(res.Baseline().Traffic))
}

func BenchmarkFig6HashJoinBreakdown(b *testing.B) {
	res := runExp(b, "fig5", 16)
	np, _ := res.Run("normal+pref")
	ap, _ := res.Run("active+pref")
	report(b, res, "stall_share_normal+pref/paper=0.276", float64(np.HostStall)/float64(np.Time))
	report(b, res, "stall_share_active+pref/paper=0.161", float64(ap.HostStall)/float64(ap.Time))
}

func BenchmarkFig7Select(b *testing.B) {
	res := runExp(b, "fig7", 16)
	a, _ := res.Run("active")
	report(b, res, "traffic_ratio/paper=0.25", float64(a.Traffic)/float64(res.Baseline().Traffic))
}

func BenchmarkFig8SelectBreakdown(b *testing.B) {
	res := runExp(b, "fig7", 16)
	a, _ := res.Run("active")
	np, _ := res.Run("normal+pref")
	report(b, res, "util_ratio/paper=21", (res.Baseline().HostUtil()+np.HostUtil())/(2*a.HostUtil()))
}

func BenchmarkFig9Grep(b *testing.B) {
	res := runExp(b, "fig9", 1)
	report(b, res, "speedup_active/paper=1.14", res.Speedup("active"))
}

func BenchmarkFig10GrepBreakdown(b *testing.B) {
	res := runExp(b, "fig9", 1)
	a, _ := res.Run("active")
	report(b, res, "host_util_active/paper~0", a.HostUtil())
}

func BenchmarkFig11Tar(b *testing.B) {
	res := runExp(b, "fig11", 2)
	a, _ := res.Run("active")
	report(b, res, "host_traffic_bytes/paper=headers", float64(a.Traffic))
}

func BenchmarkFig12TarBreakdown(b *testing.B) {
	res := runExp(b, "fig11", 2)
	a, _ := res.Run("active")
	report(b, res, "host_util_active/paper~0", a.HostUtil())
}

func BenchmarkFig13Sort(b *testing.B) {
	res := runExp(b, "fig13", 64)
	a, _ := res.Run("active")
	report(b, res, "traffic_ratio/paper=0.40", float64(a.Traffic)/float64(res.Baseline().Traffic))
}

func BenchmarkFig14SortBreakdown(b *testing.B) {
	res := runExp(b, "fig13", 64)
	a, _ := res.Run("active")
	report(b, res, "host_util_active", a.HostUtil())
	report(b, res, "host_util_normal", res.Baseline().HostUtil())
}

func BenchmarkTable2Semantics(b *testing.B) {
	res := runExp(b, "table2", 1)
	report(b, res, "notes", float64(len(res.Notes)))
}

func BenchmarkFig15ReduceToOne(b *testing.B) {
	res := runExp(b, "fig15", 1)
	for _, s := range res.Series {
		if s.Name == "speedup" {
			report(b, res, "max_speedup/paper=5.61", s.MaxY())
		}
	}
}

func BenchmarkFig16DistReduce(b *testing.B) {
	res := runExp(b, "fig16", 1)
	for _, s := range res.Series {
		if s.Name == "speedup" {
			report(b, res, "max_speedup/paper=5.92", s.MaxY())
		}
	}
}

func BenchmarkFig17MD5MultiCPU(b *testing.B) {
	res := runExp(b, "fig17", 1)
	report(b, res, "speedup_4cpu/paper=1.50", res.Speedup("active-4cpu"))
	report(b, res, "slowdown_1cpu/paper<1", res.Speedup("active-1cpu"))
}

// --- Extensions beyond the paper's figures ---

func BenchmarkExtTwoLevel(b *testing.B) {
	res := runExp(b, "twolevel", 8)
	host, _ := res.Run("host")
	two, _ := res.Run("two-level")
	report(b, res, "twolevel_traffic_ratio", float64(two.Traffic)/float64(host.Traffic))
}
