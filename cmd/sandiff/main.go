// Command sandiff compares two result files produced by
// `activesim -json`: the regression check when calibration constants or
// hardware models change.
//
//	activesim -run all -json before.json
//	... edit constants ...
//	activesim -run all -json after.json
//	sandiff before.json after.json
//	sandiff -threshold 5 before.json after.json   # exit 1 on >5% drift
//
// With -threshold, any per-config time or traffic delta (or series-max
// delta) whose magnitude exceeds the given percentage is printed as a
// REGRESSION line and the exit status is 1 — the CI-friendly mode.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"activesan/internal/report"
	"activesan/internal/stats"
)

type resultFile struct {
	Paper   string          `json:"paper"`
	Results []*stats.Result `json:"results"`
}

func load(path string) ([]*stats.Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f resultFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return f.Results, nil
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sandiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	threshold := fs.Float64("threshold", 0,
		"fail (exit 1) when any |Δtime|, |Δtraffic| or |Δseries-max| exceeds this percentage; 0 disables")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: sandiff [-threshold pct] before.json after.json")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}
	before, err := load(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	after, err := load(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	fmt.Fprint(stdout, report.Compare(before, after))
	if *threshold > 0 {
		regs := report.Regressions(before, after, *threshold)
		for _, r := range regs {
			fmt.Fprintf(stdout, "REGRESSION: %s exceeds %.2f%%\n", r, *threshold)
		}
		if len(regs) > 0 {
			return 1
		}
	}
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
