// Command sandiff compares two result files produced by
// `activesim -json`: the regression check when calibration constants or
// hardware models change.
//
//	activesim -run all -json before.json
//	... edit constants ...
//	activesim -run all -json after.json
//	sandiff before.json after.json
package main

import (
	"encoding/json"
	"fmt"
	"os"

	"activesan/internal/report"
	"activesan/internal/stats"
)

type resultFile struct {
	Paper   string          `json:"paper"`
	Results []*stats.Result `json:"results"`
}

func load(path string) ([]*stats.Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f resultFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return f.Results, nil
}

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: sandiff before.json after.json")
		os.Exit(2)
	}
	before, err := load(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	after, err := load(os.Args[2])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Print(report.Compare(before, after))
}
