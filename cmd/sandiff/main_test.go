package main

import (
	"path/filepath"
	"strings"
	"testing"
)

// The before/after fixtures differ by one injected regression: fig9's
// active time is 25% higher in after.json (the series drifts only 0.5%).

func fixture(name string) string { return filepath.Join("testdata", name) }

func TestDiffReportsDeltas(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{fixture("before.json"), fixture("after.json")}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d without -threshold, want 0 (stderr: %s)", code, errOut.String())
	}
	got := out.String()
	for _, want := range []string{"fig9", "active", "25.00%", "speedup"} {
		if !strings.Contains(got, want) {
			t.Errorf("diff output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "REGRESSION") {
		t.Errorf("REGRESSION lines printed without -threshold:\n%s", got)
	}
}

func TestThresholdBreachExitsNonzero(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-threshold", "10", fixture("before.json"), fixture("after.json")}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d, want 1 on a 25%% drift over a 10%% threshold", code)
	}
	got := out.String()
	if !strings.Contains(got, "REGRESSION: fig9 active time") {
		t.Errorf("regression line missing:\n%s", got)
	}
	// The 0.5% series drift stays under the threshold.
	if strings.Contains(got, "REGRESSION: fig15") {
		t.Errorf("sub-threshold series drift flagged:\n%s", got)
	}
}

func TestThresholdAboveDriftPasses(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-threshold", "30", fixture("before.json"), fixture("after.json")}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, want 0 when the threshold exceeds every drift:\n%s", code, out.String())
	}
}

func TestIdenticalFilesPass(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-threshold", "0.01", fixture("before.json"), fixture("before.json")}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d comparing a file against itself, want 0:\n%s", code, out.String())
	}
}

func TestUsageErrors(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"only-one.json"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d with one arg, want 2", code)
	}
	if code := run([]string{fixture("before.json"), fixture("no-such.json")}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d with a missing file, want 1", code)
	}
}
