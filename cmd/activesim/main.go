// Command activesim runs the paper's experiments: every table and figure of
// "Active I/O Switches in System Area Networks" (HPCA 2003) regenerated on
// the simulator.
//
// Usage:
//
//	activesim -list
//	activesim -run fig3              # one experiment at default scale
//	activesim -run all -scale 8      # everything, problem sizes / 8
//	activesim -run all -parallel 8   # fan the registry over 8 workers
//	activesim -run fig15 -scale 1    # full 128-node reduction sweep
//	activesim -run fig3 -metrics-out m.json -trace-out t.json
//	activesim -run fig3 -cpuprofile prof/cpu.pb.gz -memprofile prof/mem.pb.gz
//	activesim -run fig3 -faults plan.json -fault-seed 7
//	activesim -run all -strict-routes
//	activesim -run fig15 -topology fattree     # collectives on a k-ary fat tree
//	activesim -run scalesweep                  # fat-tree scaling curves, 4..64 hosts
//	activesim -run hdlsweep -handler-src my.hdl  # HDL handlers, plus your own
//	activesim -run fig3 -telemetry             # per-hop latency histograms
//	activesim -run fig3 -faults plan.json -flight-recorder flight.txt
//	activesim -run latsweep                    # per-hop active-vs-passive figure
//	activesim -run collsweep                   # in-network collectives + spill cliff
//
// -telemetry stamps every packet with a per-hop record and folds
// end-to-end/per-hop latency histograms, per-flow path breakdowns and
// occupancy watermarks into the metrics snapshot; -flight-recorder keeps a
// bounded ring of recent trace events per component and writes a readable
// dump to the given file when a crash, -strict-routes violation, or
// invariant panic fires. See OBSERVABILITY.md.
//
// -faults arms the JSON fault plan (see RELIABILITY.md) on every simulated
// cluster; -fault-seed overrides the plan's PRNG seed. -strict-routes turns
// the first unroutable packet into a panic naming the switch and
// destination, instead of the default fault/no_route_drops accounting.
//
// -topology selects the cluster the collective experiments (table2,
// fig15, fig16) build: "tree" (the paper's reduction tree, the default),
// "fattree" (the smallest k-ary fat tree holding the hosts), or
// "fattree:K" for a fixed arity — see TOPOLOGIES.md for the routing and
// handler-placement rules. The scalesweep experiment always uses fat trees.
//
// -collective selects the op the collsweep experiment scales (allreduce by
// default; barrier, scatter, gather, keyagg), and -agg-budget sizes the
// keyagg per-switch key table — smaller budgets spill un-aggregated
// records toward the root, the cliff collsweep's budget axis pins. See
// COLLECTIVES.md.
//
// -handler-src compiles an HDL handler source file (the declarative handler
// language of HANDLERS.md) and adds it to the hdlsweep experiment alongside
// the built-in library, so a user-written handler gets the same
// compiled-on-switch vs host-interpreter comparison and differential check.
//
// With -run all the registry fans out over -parallel worker goroutines
// (default: the CPU count); results always print in registry order, so the
// output is byte-identical to a sequential (-parallel 1) run.
//
// -metrics-out dumps every run's secondary-metric snapshot (the full
// per-component counter tree plus derived gauges and timelines) as JSON;
// -trace-out streams typed trace events as a Chrome trace-event file that
// opens directly in https://ui.perfetto.dev.
//
// Scale divides the paper's problem sizes; 1 reproduces them exactly (the
// database and sort workloads then simulate hundreds of megabytes and take
// minutes of wall time). The default scale of 8 preserves every shape.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"

	"activesan"
	"activesan/internal/cliflags"
	"activesan/internal/san"
)

func main() { os.Exit(realMain()) }

// realMain is main with an exit code: deferred cleanup (trace flush,
// flight-recorder dump, profiler stop) must run before the process exits,
// and a crashed simulation must still flush every output file, so nothing
// below calls os.Exit directly once Setup has succeeded.
func realMain() int {
	list := flag.Bool("list", false, "list experiments and exit")
	run := flag.String("run", "", "experiment id to run, or \"all\"")
	scale := flag.Int64("scale", 8, "problem-size divisor (1 = paper's full sizes)")
	parallel := flag.Int("parallel", runtime.NumCPU(), "worker goroutines for -run all (1 = sequential)")
	chart := flag.Bool("chart", false, "render ASCII bar charts after each result")
	svgDir := flag.String("svg", "", "write an SVG figure per experiment into this directory")
	jsonPath := flag.String("json", "", "write all results as JSON to this file")
	mdPath := flag.String("md", "", "write a markdown report of all results to this file")
	trace := flag.String("trace", "", "write a simulation event trace to this file (plain text)")
	strictRoutes := flag.Bool("strict-routes", false,
		"panic on the first unroutable packet instead of counting a fault/no_route_drop")
	cf := cliflags.Register()
	flag.Parse()

	if *trace != "" && cf.TraceOut != "" {
		fmt.Fprintln(os.Stderr, "activesim: -trace and -trace-out share the trace hook; pick one")
		return 2
	}
	cleanup, err := cf.Setup()
	if err != nil {
		fmt.Fprintln(os.Stderr, "activesim:", err)
		return 2
	}
	defer cleanup()
	san.SetStrictRoutes(*strictRoutes)

	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		w := bufio.NewWriter(f)
		defer func() {
			w.Flush()
			f.Close()
		}()
		// With -parallel, engines on several goroutines share this sink:
		// the mutex keeps the trace file and line budget coherent.
		var mu sync.Mutex
		lines := 0
		activesan.SetTracer(func(t activesan.Time, msg string) {
			mu.Lock()
			defer mu.Unlock()
			if lines >= cf.TraceLimit {
				return
			}
			lines++
			fmt.Fprintf(w, "%-14v %s\n", t, msg)
		})
	}

	if *list || *run == "" {
		fmt.Println("experiments:")
		for _, e := range activesan.Experiments() {
			fmt.Printf("  %-8s %-18s %s\n", e.ID, e.Paper, e.Title)
		}
		if *run == "" {
			fmt.Println("\nrun one with: activesim -run <id> [-scale N]")
		}
		return 0
	}

	// The simulation runs protected: a fault-plan crash surfacing under
	// -strict-routes, or any invariant panic, converts to exit code 1 —
	// and everything after this block (result printing, -md/-json/-metrics
	// writes) plus the deferred cleanup still runs, so output files hold
	// whatever completed instead of being truncated mid-stream.
	var collected []*activesan.Result
	code := cf.RunProtected(func() int {
		if *run == "all" {
			// The parallel harness keeps results in registry order, so the
			// printed report is byte-identical at any worker count.
			collected = activesan.RunExperiments(*scale, *parallel)
			return 0
		}
		res, err := activesan.RunExperiment(*run, *scale)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		collected = append(collected, res)
		return 0
	})

	for _, res := range collected {
		id := res.ID
		fmt.Print(res.Format())
		for _, s := range activesan.Shapes(res) {
			fmt.Printf("shape: %s\n", s)
		}
		if *chart {
			fmt.Println()
			fmt.Print(activesan.RenderASCII(res))
		}
		if *svgDir != "" {
			path := *svgDir + "/" + id + ".svg"
			if err := writeOut(path, activesan.RenderSVG(res)); err != nil {
				fmt.Fprintln(os.Stderr, err)
				code = 1
			}
		}
		fmt.Println()
	}
	if *mdPath != "" {
		md := activesan.MarkdownReport("Active I/O Switches — experiment report", *scale, collected)
		if err := writeOut(*mdPath, []byte(md)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			code = 1
		}
	}
	if *jsonPath != "" {
		data, err := activesan.ResultJSON(collected)
		if err := marshalOut(*jsonPath, data, err); err != nil {
			fmt.Fprintln(os.Stderr, err)
			code = 1
		}
	}
	if cf.MetricsOut != "" {
		// Written even when the run crashed (collected may be partial or
		// empty): a valid, possibly-empty document beats a missing one.
		data, err := activesan.MetricsJSON(collected)
		if err := marshalOut(cf.MetricsOut, data, err); err != nil {
			fmt.Fprintln(os.Stderr, err)
			code = 1
		}
	}
	return code
}

// marshalOut writes one marshalled artifact, folding the marshal error in.
func marshalOut(path string, data []byte, err error) error {
	if err != nil {
		return err
	}
	return writeOut(path, data)
}

// writeOut writes one output artifact, creating its directory.
func writeOut(path string, data []byte) error {
	if err := cliflags.EnsureParent(path); err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
