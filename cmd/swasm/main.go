// Command swasm is the switch-handler toolchain: assemble handler source to
// a binary image, disassemble images, and dry-run programs against a data
// file with the instruction-accurate interpreter — handler development
// without spinning up a simulation.
//
//	swasm -asm handler.s -o handler.img
//	swasm -dis handler.img
//	swasm -run handler.s -data input.bin -reg r5=64 -reg r6=16
//	swasm -hdl handler.hdl [-o handler.img] [-data input.bin -param threshold=64]
//
// In -run mode, the data file is mapped at the stream base (0x100000) and
// registers r1/r2 default to its bounds; emitted words, executed
// instruction count and charged cycles are printed.
//
// In -hdl mode the source is compiled from the handler language (see
// HANDLERS.md) instead of assembly. Without -o the generated assembly is
// printed; with -data the compiled program is also dry-run on the data file
// and cross-checked against the reference interpreter, so a divergence in
// the toolchain fails right at the terminal.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"activesan/internal/hdl"
	"activesan/internal/svm"
)

type regFlags map[uint8]uint32

func (r regFlags) String() string { return fmt.Sprint(map[uint8]uint32(r)) }

func (r regFlags) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok || !strings.HasPrefix(name, "r") {
		return fmt.Errorf("want rN=value, got %q", s)
	}
	n, err := strconv.Atoi(name[1:])
	if err != nil || n <= 0 || n >= svm.NumRegs {
		return fmt.Errorf("bad register %q", name)
	}
	v, err := strconv.ParseInt(val, 0, 64)
	if err != nil {
		return fmt.Errorf("bad value %q", val)
	}
	r[uint8(n)] = uint32(v)
	return nil
}

type paramFlags map[string]uint32

func (p paramFlags) String() string { return fmt.Sprint(map[string]uint32(p)) }

func (p paramFlags) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok || name == "" {
		return fmt.Errorf("want name=value, got %q", s)
	}
	v, err := strconv.ParseInt(val, 0, 64)
	if err != nil {
		return fmt.Errorf("bad value %q", val)
	}
	p[name] = uint32(v)
	return nil
}

func main() {
	asm := flag.String("asm", "", "assemble this source file")
	out := flag.String("o", "", "output image path for -asm/-hdl (default: stdout)")
	dis := flag.String("dis", "", "disassemble this image file")
	run := flag.String("run", "", "assemble and execute this source file")
	hdlSrc := flag.String("hdl", "", "compile this HDL handler source file (see HANDLERS.md)")
	data := flag.String("data", "", "stream data file for -run / the -hdl dry run")
	regs := regFlags{}
	flag.Var(regs, "reg", "initial register, rN=value (repeatable)")
	params := paramFlags{}
	flag.Var(params, "param", "HDL handler parameter, name=value (repeatable)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	switch {
	case *asm != "":
		src, err := os.ReadFile(*asm)
		if err != nil {
			fail(err)
		}
		prog, err := svm.Assemble(string(src))
		if err != nil {
			fail(err)
		}
		img, err := svm.EncodeProgram(prog)
		if err != nil {
			fail(err)
		}
		if *out == "" {
			fmt.Printf("%x\n", img)
			return
		}
		if err := os.WriteFile(*out, img, 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("assembled %d instructions -> %s (%d bytes)\n", len(prog.Instrs), *out, len(img))

	case *dis != "":
		img, err := os.ReadFile(*dis)
		if err != nil {
			fail(err)
		}
		prog, err := svm.DecodeProgram(img)
		if err != nil {
			fail(err)
		}
		fmt.Print(prog.String())

	case *run != "":
		src, err := os.ReadFile(*run)
		if err != nil {
			fail(err)
		}
		prog, err := svm.Assemble(string(src))
		if err != nil {
			fail(err)
		}
		var stream []byte
		if *data != "" {
			if stream, err = os.ReadFile(*data); err != nil {
				fail(err)
			}
		}
		const base = 0x10_0000
		env := svm.NewSliceEnv(base, stream)
		init := map[uint8]uint32{1: base, 2: uint32(base + len(stream))}
		for r, v := range regs {
			init[r] = v
		}
		m := svm.NewMachine(env, prog, init)
		res, err := m.Run()
		if err != nil {
			fail(err)
		}
		fmt.Printf("executed %d instructions (%d cycles charged)\n", res.Executed, env.Cycles)
		for i, v := range env.Out {
			fmt.Printf("emit[%d] = %d (%#x)\n", i, v, v)
		}
		// At 500 MHz, one cycle is 2 ns.
		fmt.Printf("switch-CPU time at 500 MHz: %.3f us\n", float64(env.Cycles)*2e-3)

	case *hdlSrc != "":
		src, err := os.ReadFile(*hdlSrc)
		if err != nil {
			fail(err)
		}
		c, err := hdl.Compile(string(src))
		if err != nil {
			fail(err)
		}
		fmt.Printf("handler %s: %d instructions\n", c.AST.Name, len(c.Prog.Instrs))
		if *out != "" {
			img, err := svm.EncodeProgram(c.Prog)
			if err != nil {
				fail(err)
			}
			if err := os.WriteFile(*out, img, 0o644); err != nil {
				fail(err)
			}
			fmt.Printf("wrote %s (%d bytes)\n", *out, len(img))
		} else {
			fmt.Print(c.Asm)
		}
		if *data != "" {
			stream, err := os.ReadFile(*data)
			if err != nil {
				fail(err)
			}
			const base = 0x10_0000
			compiled, err := hdl.RunSlice(c, stream, base, params)
			if err != nil {
				fail(err)
			}
			fmt.Printf("executed: %d cycles charged, %d words emitted\n",
				compiled.Cycles, len(compiled.Out))
			for i, v := range compiled.Out {
				fmt.Printf("emit[%d] = %d (%#x)\n", i, v, v)
			}
			vars := make([]string, 0, len(compiled.Vars))
			for name := range compiled.Vars {
				vars = append(vars, name)
			}
			sort.Strings(vars)
			for _, name := range vars {
				fmt.Printf("var %s = %d (%#x)\n", name, compiled.Vars[name], compiled.Vars[name])
			}
			ref := hdl.Interpret(c.AST, stream, base, params)
			if err := hdl.Diff(compiled, ref); err != nil {
				fail(fmt.Errorf("compiled run diverges from the reference interpreter: %w", err))
			}
			fmt.Println("reference interpreter agrees (outputs, vars, cycles, deallocs)")
		}

	default:
		flag.Usage()
		os.Exit(2)
	}
}
