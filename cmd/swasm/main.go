// Command swasm is the switch-handler toolchain: assemble handler source to
// a binary image, disassemble images, and dry-run programs against a data
// file with the instruction-accurate interpreter — handler development
// without spinning up a simulation.
//
//	swasm -asm handler.s -o handler.img
//	swasm -dis handler.img
//	swasm -run handler.s -data input.bin -reg r5=64 -reg r6=16
//
// In -run mode, the data file is mapped at the stream base (0x100000) and
// registers r1/r2 default to its bounds; emitted words, executed
// instruction count and charged cycles are printed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"activesan/internal/svm"
)

type regFlags map[uint8]uint32

func (r regFlags) String() string { return fmt.Sprint(map[uint8]uint32(r)) }

func (r regFlags) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok || !strings.HasPrefix(name, "r") {
		return fmt.Errorf("want rN=value, got %q", s)
	}
	n, err := strconv.Atoi(name[1:])
	if err != nil || n <= 0 || n >= svm.NumRegs {
		return fmt.Errorf("bad register %q", name)
	}
	v, err := strconv.ParseInt(val, 0, 64)
	if err != nil {
		return fmt.Errorf("bad value %q", val)
	}
	r[uint8(n)] = uint32(v)
	return nil
}

func main() {
	asm := flag.String("asm", "", "assemble this source file")
	out := flag.String("o", "", "output image path for -asm (default: stdout hex)")
	dis := flag.String("dis", "", "disassemble this image file")
	run := flag.String("run", "", "assemble and execute this source file")
	data := flag.String("data", "", "stream data file for -run")
	regs := regFlags{}
	flag.Var(regs, "reg", "initial register, rN=value (repeatable)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	switch {
	case *asm != "":
		src, err := os.ReadFile(*asm)
		if err != nil {
			fail(err)
		}
		prog, err := svm.Assemble(string(src))
		if err != nil {
			fail(err)
		}
		img, err := svm.EncodeProgram(prog)
		if err != nil {
			fail(err)
		}
		if *out == "" {
			fmt.Printf("%x\n", img)
			return
		}
		if err := os.WriteFile(*out, img, 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("assembled %d instructions -> %s (%d bytes)\n", len(prog.Instrs), *out, len(img))

	case *dis != "":
		img, err := os.ReadFile(*dis)
		if err != nil {
			fail(err)
		}
		prog, err := svm.DecodeProgram(img)
		if err != nil {
			fail(err)
		}
		fmt.Print(prog.String())

	case *run != "":
		src, err := os.ReadFile(*run)
		if err != nil {
			fail(err)
		}
		prog, err := svm.Assemble(string(src))
		if err != nil {
			fail(err)
		}
		var stream []byte
		if *data != "" {
			if stream, err = os.ReadFile(*data); err != nil {
				fail(err)
			}
		}
		const base = 0x10_0000
		env := svm.NewSliceEnv(base, stream)
		init := map[uint8]uint32{1: base, 2: uint32(base + len(stream))}
		for r, v := range regs {
			init[r] = v
		}
		m := svm.NewMachine(env, prog, init)
		res, err := m.Run()
		if err != nil {
			fail(err)
		}
		fmt.Printf("executed %d instructions (%d cycles charged)\n", res.Executed, env.Cycles)
		for i, v := range env.Out {
			fmt.Printf("emit[%d] = %d (%#x)\n", i, v, v)
		}
		// At 500 MHz, one cycle is 2 ns.
		fmt.Printf("switch-CPU time at 500 MHz: %.3f us\n", float64(env.Cycles)*2e-3)

	default:
		flag.Usage()
		os.Exit(2)
	}
}
