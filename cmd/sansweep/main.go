// Command sansweep runs parameter sweeps beyond the paper's figures:
// reduction latency over arbitrary node counts, MD5 over switch-CPU counts,
// and parallel sort over node counts — the knobs a designer would turn when
// sizing an active-switch system.
//
// Usage:
//
//	sansweep -sweep reduce -kind dist -nodes 2,4,8,16,32,64,128
//	sansweep -sweep md5 -cpus 1,2,3,4
//	sansweep -sweep sort -hosts 2,4,8 -records 262144
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"activesan/internal/ablation"
	"activesan/internal/apps"
	"activesan/internal/apps/md5app"
	"activesan/internal/apps/psort"
	"activesan/internal/apps/reduce"
	"activesan/internal/apps/twolevel"
)

func parseInts(s string) []int {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.Atoi(f)
		if err != nil || v <= 0 {
			fmt.Fprintf(os.Stderr, "bad list element %q\n", f)
			os.Exit(1)
		}
		out = append(out, v)
	}
	return out
}

func main() {
	sweep := flag.String("sweep", "reduce", "what to sweep: reduce | md5 | sort | ablation | twolevel")
	kind := flag.String("kind", "one", "reduction kind: one | dist | all")
	nodes := flag.String("nodes", "2,4,8,16,32,64,128", "node counts for -sweep reduce")
	cpus := flag.String("cpus", "1,2,3,4", "switch CPU counts for -sweep md5")
	hosts := flag.String("hosts", "2,4,8", "host counts for -sweep sort")
	records := flag.Int64("records", 1<<18, "total records for -sweep sort")
	rounds := flag.Int("rounds", 0, "with -sweep reduce: pipeline this many back-to-back rounds")
	flag.Parse()

	switch *sweep {
	case "ablation":
		fmt.Print(ablation.Report())

	case "twolevel":
		res := twolevel.RunAll(twolevel.DefaultParams())
		fmt.Print(res.Format())

	case "reduce":
		k := reduce.ToOne
		switch *kind {
		case "dist":
			k = reduce.Distributed
		case "all":
			k = reduce.ToAll
		}
		if *rounds > 0 {
			for _, p := range parseInts(*nodes) {
				iso := reduce.Run(reduce.ToOne, true, p, reduce.DefaultParams()).Latency
				r := reduce.RunPipelined(p, *rounds, reduce.DefaultParams())
				fmt.Printf("p=%-4d rounds=%d total=%v per-round=%v isolated=%v correct=%v\n",
					p, *rounds, r.Total, r.PerRound, iso, r.Correct)
			}
			return
		}
		res := reduce.Sweep(k, parseInts(*nodes), reduce.DefaultParams())
		fmt.Print(res.Format())

	case "md5":
		prm := md5app.DefaultParams()
		normal := md5app.Run(apps.Normal, 1, prm)
		fmt.Printf("%-20s %v\n", "normal", normal.Time)
		for _, c := range parseInts(*cpus) {
			r := md5app.Run(apps.ActivePref, c, prm)
			fmt.Printf("%-20s %v  speedup %.2f\n", r.Config, r.Time,
				float64(normal.Time)/float64(r.Time))
		}

	case "sort":
		for _, hcount := range parseInts(*hosts) {
			prm := psort.DefaultParams()
			prm.Hosts = hcount
			prm.Records = *records
			n := psort.Run(apps.NormalPref, prm)
			a := psort.Run(apps.ActivePref, prm)
			limit := float64(hcount) / float64(3*hcount-2)
			fmt.Printf("p=%-3d normal=%v active=%v traffic-ratio=%.3f (limit %.3f)\n",
				hcount, n.Time, a.Time, float64(a.Traffic)/float64(n.Traffic), limit)
		}

	default:
		fmt.Fprintf(os.Stderr, "unknown sweep %q\n", *sweep)
		os.Exit(1)
	}
}
