// Command sansweep runs parameter sweeps beyond the paper's figures:
// reduction latency over arbitrary node counts, MD5 over switch-CPU counts,
// and parallel sort over node counts — the knobs a designer would turn when
// sizing an active-switch system.
//
// Usage:
//
//	sansweep -sweep reduce -kind dist -nodes 2,4,8,16,32,64,128
//	sansweep -sweep md5 -cpus 1,2,3,4
//	sansweep -sweep sort -hosts 2,4,8 -records 262144
//	sansweep -sweep collective -collective allreduce -nodes 4,16,64
//
// Sweep points are independent simulations, so they fan out over -parallel
// worker goroutines (default: the CPU count); output order is always the
// sequential order.
//
// -metrics-out collects each sweep point's secondary-metric snapshot into
// one JSON file keyed by point label; -trace-out streams typed trace events
// as a Chrome trace-event / Perfetto JSON file (see cmd/activesim).
//
// -telemetry arms per-packet per-hop telemetry on every simulated cluster
// (histograms land in the point snapshots); -flight-recorder keeps a
// bounded ring of recent trace events per component and dumps it on a
// crash (see OBSERVABILITY.md).
//
// -cpuprofile/-memprofile write pprof profiles of the sweep itself (see
// PERFORMANCE.md for the profiling workflow).
//
// -faults arms a JSON fault plan (see RELIABILITY.md) on every simulated
// cluster, with -fault-seed overriding the plan's PRNG seed — the knobs for
// sweeping reliability parameters instead of problem sizes.
//
// -topology switches the reduce sweep's cluster between the paper's
// reduction tree (the default) and a k-ary fat tree ("fattree" or
// "fattree:K" — see TOPOLOGIES.md), e.g.
//
//	sansweep -sweep reduce -nodes 4,16,64 -topology fattree
//
// -handler-src compiles an HDL handler source file (see HANDLERS.md) and
// installs it process-wide; it is shared flag wiring with cmd/activesim,
// where the hdlsweep experiment picks the handler up.
//
// -sweep collective compares each in-network collective (see
// COLLECTIVES.md) against its host-only reference over -nodes host counts;
// -collective picks the op (allreduce, barrier, scatter, gather, keyagg)
// and -agg-budget sizes the keyagg per-switch key table, e.g.
//
//	sansweep -sweep collective -collective keyagg -agg-budget 8 -nodes 16
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"

	"activesan/internal/ablation"
	"activesan/internal/apps"
	"activesan/internal/apps/collsweep"
	"activesan/internal/apps/md5app"
	"activesan/internal/apps/psort"
	"activesan/internal/apps/reduce"
	"activesan/internal/apps/twolevel"
	"activesan/internal/cliflags"
	"activesan/internal/cluster"
	"activesan/internal/collective"
	"activesan/internal/metrics"
	"activesan/internal/stats"
)

// sweepMetrics accumulates per-point snapshots for -metrics-out; nil when
// the flag is off. Sweep points run on parallel goroutines, hence the lock.
var (
	sweepMetricsMu sync.Mutex
	sweepMetrics   map[string]*metrics.Snapshot
)

// record stashes a run's snapshot under a sweep-point label.
func record(label string, r stats.Run) {
	if sweepMetrics == nil || r.Metrics == nil {
		return
	}
	sweepMetricsMu.Lock()
	defer sweepMetricsMu.Unlock()
	sweepMetrics[label] = r.Metrics
}

// writeSweepMetrics flushes the accumulated snapshots. It runs deferred —
// including after a crashed sweep, where a valid file holding the points
// that completed beats a missing one — so errors print instead of exiting.
func writeSweepMetrics(path string) {
	wrapper := struct {
		Paper  string                       `json:"paper"`
		Sweeps map[string]*metrics.Snapshot `json:"sweeps"`
	}{
		Paper:  "Active I/O Switches in System Area Networks (HPCA 2003)",
		Sweeps: sweepMetrics,
	}
	data, err := json.MarshalIndent(wrapper, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	if err := cliflags.EnsureParent(path); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	fmt.Printf("wrote %s\n", path)
}

func parseInts(s string) []int {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.Atoi(f)
		if err != nil || v <= 0 {
			fmt.Fprintf(os.Stderr, "bad list element %q\n", f)
			os.Exit(1)
		}
		out = append(out, v)
	}
	return out
}

// sweepLines evaluates one line of output per point over a worker pool and
// prints the lines in point order, so any -parallel value produces the
// same output as a sequential sweep. A panicking point (fault-plan crash
// under -strict-routes) is captured on its worker and re-raised — first
// point first, for determinism — on the caller's goroutine, where the
// deferred output flushing can see it.
func sweepLines(points []int, workers int, eval func(p int) string) {
	if workers < 1 {
		workers = runtime.NumCPU()
	}
	if workers > len(points) {
		workers = len(points)
	}
	lines := make([]string, len(points))
	if workers <= 1 {
		for i, p := range points {
			lines[i] = eval(p)
		}
	} else {
		panics := make([]any, len(points))
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					func() {
						defer func() { panics[i] = recover() }()
						lines[i] = eval(points[i])
					}()
				}
			}()
		}
		for i := range points {
			idx <- i
		}
		close(idx)
		wg.Wait()
		for i, p := range panics {
			if p != nil {
				panic(fmt.Sprintf("sweep point %d panicked: %v", points[i], p))
			}
		}
	}
	for _, l := range lines {
		fmt.Print(l)
	}
}

func main() { os.Exit(realMain()) }

// realMain is main with an exit code, so deferred cleanup (trace flush,
// flight-recorder dump, metrics write) runs before the process exits —
// even when the sweep crashes.
func realMain() int {
	sweep := flag.String("sweep", "reduce", "what to sweep: reduce | md5 | sort | collective | ablation | twolevel")
	kind := flag.String("kind", "one", "reduction kind: one | dist | all")
	nodes := flag.String("nodes", "2,4,8,16,32,64,128", "node counts for -sweep reduce")
	cpus := flag.String("cpus", "1,2,3,4", "switch CPU counts for -sweep md5")
	hosts := flag.String("hosts", "2,4,8", "host counts for -sweep sort")
	records := flag.Int64("records", 1<<18, "total records for -sweep sort")
	rounds := flag.Int("rounds", 0, "with -sweep reduce: pipeline this many back-to-back rounds")
	parallel := flag.Int("parallel", runtime.NumCPU(), "worker goroutines for sweep points (1 = sequential)")
	cf := cliflags.Register()
	flag.Parse()

	cleanup, err := cf.Setup()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sansweep:", err)
		return 2
	}
	defer cleanup()

	if cf.MetricsOut != "" {
		sweepMetrics = make(map[string]*metrics.Snapshot)
		// Deferred so the early-returning reduce pipeline path writes too
		// (reduce sweeps build bare engines without stats.Run snapshots, so
		// their file is legitimately empty) — and so a crashed sweep still
		// flushes the points that completed.
		defer writeSweepMetrics(cf.MetricsOut)
	}

	return cf.RunProtected(func() int {
		switch *sweep {
		case "ablation":
			fmt.Print(ablation.Report())

		case "twolevel":
			res := twolevel.RunAll(twolevel.DefaultParams())
			for _, r := range res.Runs {
				record("twolevel/"+r.Config, r)
			}
			fmt.Print(res.Format())

		case "reduce":
			k := reduce.ToOne
			switch *kind {
			case "dist":
				k = reduce.Distributed
			case "all":
				k = reduce.ToAll
			}
			if *rounds > 0 {
				sweepLines(parseInts(*nodes), *parallel, func(p int) string {
					iso := reduce.Run(reduce.ToOne, true, p, reduce.DefaultParams()).Latency
					r := reduce.RunPipelined(p, *rounds, reduce.DefaultParams())
					return fmt.Sprintf("p=%-4d rounds=%d total=%v per-round=%v isolated=%v correct=%v\n",
						p, *rounds, r.Total, r.PerRound, iso, r.Correct)
				})
				return 0
			}
			res := reduce.SweepParallel(k, parseInts(*nodes), reduce.DefaultParams(), *parallel)
			fmt.Print(res.Format())

		case "md5":
			prm := md5app.DefaultParams()
			normal := md5app.Run(apps.Normal, 1, prm)
			record("md5/normal", normal)
			fmt.Printf("%-20s %v\n", "normal", normal.Time)
			sweepLines(parseInts(*cpus), *parallel, func(c int) string {
				r := md5app.Run(apps.ActivePref, c, prm)
				record(fmt.Sprintf("md5/%s/cpus=%d", r.Config, c), r)
				return fmt.Sprintf("%-20s %v  speedup %.2f\n", r.Config, r.Time,
					float64(normal.Time)/float64(r.Time))
			})

		case "collective":
			// -collective picks the op, -agg-budget the keyagg table size,
			// -topology/-partitions the cluster; the points are fat trees.
			op := collective.DefaultOp()
			parts := cluster.DefaultPartitions()
			sweepLines(parseInts(*nodes), *parallel, func(p int) string {
				prm := collective.DefaultParams()
				if op == collective.KeyAgg {
					b := collective.DefaultBudget()
					pas := collsweep.RunBudgetPoint(p, 0, false, prm, parts)
					act := collsweep.RunBudgetPoint(p, b, true, prm, parts)
					record(fmt.Sprintf("collective/keyagg/passive/p=%d", p),
						stats.Run{Config: "passive", Metrics: pas.Metrics})
					record(fmt.Sprintf("collective/keyagg/active/p=%d", p),
						stats.Run{Config: "active", Metrics: act.Metrics})
					state := "balanced"
					if !act.Balanced {
						state = "UNBALANCED"
					}
					return fmt.Sprintf("p=%-4d keyagg budget=%d: active=%v passive=%v hits=%d spills=%d (%s) host-bytes %d vs %d correct=%v\n",
						p, b, act.Latency, pas.Latency, act.Hits, act.Spills, state,
						act.HostBytes, pas.HostBytes, act.Correct && pas.Correct)
				}
				pas := collsweep.RunPoint(op, p, false, prm, parts)
				act := collsweep.RunPoint(op, p, true, prm, parts)
				record(fmt.Sprintf("collective/%s/passive/p=%d", op, p),
					stats.Run{Config: "passive", Metrics: pas.Metrics})
				record(fmt.Sprintf("collective/%s/active/p=%d", op, p),
					stats.Run{Config: "active", Metrics: act.Metrics})
				return fmt.Sprintf("p=%-4d %s: active=%v passive=%v speedup %.2f host-bytes %d vs %d (%.2fx less) correct=%v\n",
					p, op, act.Latency, pas.Latency,
					float64(pas.Latency)/float64(act.Latency),
					act.HostBytes, pas.HostBytes,
					float64(pas.HostBytes)/float64(act.HostBytes),
					act.Correct && pas.Correct)
			})

		case "sort":
			sweepLines(parseInts(*hosts), *parallel, func(hcount int) string {
				prm := psort.DefaultParams()
				prm.Hosts = hcount
				prm.Records = *records
				n := psort.Run(apps.NormalPref, prm)
				a := psort.Run(apps.ActivePref, prm)
				record(fmt.Sprintf("sort/%s/p=%d", n.Config, hcount), n)
				record(fmt.Sprintf("sort/%s/p=%d", a.Config, hcount), a)
				limit := float64(hcount) / float64(3*hcount-2)
				return fmt.Sprintf("p=%-3d normal=%v active=%v traffic-ratio=%.3f (limit %.3f)\n",
					hcount, n.Time, a.Time, float64(a.Traffic)/float64(n.Traffic), limit)
			})

		default:
			fmt.Fprintf(os.Stderr, "unknown sweep %q\n", *sweep)
			return 1
		}
		return 0
	})
}
