// Command mkworkload materializes the paper's synthetic workloads as real
// files, so they can be inspected, diffed, or fed to external tools; -verify
// re-reads a directory and checks every workload invariant (sizes, planted
// match counts, frame-type fractions, archive structure).
//
//	mkworkload -dir /tmp/workloads
//	mkworkload -dir /tmp/workloads -verify
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"activesan/internal/apps/grep"
	"activesan/internal/apps/md5app"
	"activesan/internal/apps/mpeg"
	"activesan/internal/apps/tarapp"
)

func main() {
	dir := flag.String("dir", "workloads", "output directory")
	verify := flag.Bool("verify", false, "verify an existing directory instead of writing")
	flag.Parse()

	if *verify {
		if err := verifyAll(*dir); err != nil {
			fmt.Fprintln(os.Stderr, "FAIL:", err)
			os.Exit(1)
		}
		fmt.Println("all workload invariants hold")
		return
	}
	if err := writeAll(*dir); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func writeAll(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, data []byte) error {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %-24s %9d bytes\n", name, len(data))
		return nil
	}

	if err := write("grep-corpus.txt", grep.BuildCorpus(grep.DefaultParams())); err != nil {
		return err
	}
	if err := write("video.mpg", mpeg.BuildStream(mpeg.DefaultParams())); err != nil {
		return err
	}
	if err := write("md5-input.bin", md5app.BuildInput(md5app.DefaultParams())); err != nil {
		return err
	}
	tp := tarapp.DefaultParams()
	for i := 0; i < tp.Files; i++ {
		if err := write(tarapp.FileName(i), tarapp.BuildFile(i, tp.FileSize)); err != nil {
			return err
		}
	}
	return nil
}

func verifyAll(dir string) error {
	read := func(name string) ([]byte, error) {
		return os.ReadFile(filepath.Join(dir, name))
	}

	// Grep: exact size and exactly the planted match count.
	gp := grep.DefaultParams()
	corpus, err := read("grep-corpus.txt")
	if err != nil {
		return err
	}
	if int64(len(corpus)) != gp.FileSize {
		return fmt.Errorf("grep corpus is %d bytes, want %d", len(corpus), gp.FileSize)
	}
	if n := bytes.Count(corpus, []byte(gp.Pattern)); n != gp.Matches {
		return fmt.Errorf("grep corpus has %d matches, want %d", n, gp.Matches)
	}

	// MPEG: exact size and the paper's ~63.5%% P-frame byte fraction.
	mp := mpeg.DefaultParams()
	video, err := read("video.mpg")
	if err != nil {
		return err
	}
	if int64(len(video)) != mp.FileSize {
		return fmt.Errorf("video is %d bytes, want %d", len(video), mp.FileSize)
	}
	frac := float64(mpeg.PBytes(video)) / float64(len(video))
	if frac < 0.61 || frac > 0.66 {
		return fmt.Errorf("P-frame fraction %.3f outside [0.61, 0.66]", frac)
	}

	// MD5: digest of the file matches the from-scratch implementation run
	// on the generator output.
	md := md5app.DefaultParams()
	input, err := read("md5-input.bin")
	if err != nil {
		return err
	}
	if got, want := md5app.SumBytes(input), md5app.SumBytes(md5app.BuildInput(md)); got != want {
		return fmt.Errorf("md5 input diverges from the generator")
	}

	// Tar: every input file regenerates identically, and its header
	// verifies.
	tp := tarapp.DefaultParams()
	for i := 0; i < tp.Files; i++ {
		data, err := read(tarapp.FileName(i))
		if err != nil {
			return err
		}
		if !bytes.Equal(data, tarapp.BuildFile(i, tp.FileSize)) {
			return fmt.Errorf("%s diverges from the generator", tarapp.FileName(i))
		}
		hdr := tarapp.Header(tarapp.FileName(i), tp.FileSize)
		if _, size, ok := tarapp.VerifyHeader(hdr); !ok || size != tp.FileSize {
			return fmt.Errorf("%s: header verification failed", tarapp.FileName(i))
		}
	}
	return nil
}
