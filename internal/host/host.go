// Package host assembles one compute node: the 2 GHz processor model with
// its caches and TLBs, an RDRAM channel, an HCA, and the paper's I/O-related
// operating-system cost model — 30 us of fixed cost per request plus
// 0.27 us/KB for each unbuffered disk request, charged to the host CPU.
package host

import (
	"fmt"

	"activesan/internal/cache"
	"activesan/internal/cpu"
	"activesan/internal/iodev"
	"activesan/internal/memsys"
	"activesan/internal/nic"
	"activesan/internal/san"
	"activesan/internal/sim"
)

// OSConfig is the host's software-overhead model.
type OSConfig struct {
	// IOPerRequest is the fixed OS cost charged when issuing a disk request
	// (paper: 30 us).
	IOPerRequest sim.Time
	// IOPerKB is charged per KB of disk data landing in host memory
	// (paper: 0.27 us/KB — interrupt and buffer handling).
	IOPerKB sim.Time
	// SendOverhead is the user-level queue-pair post cost per message.
	SendOverhead sim.Time
	// RecvOverhead is the polling receive cost per message.
	RecvOverhead sim.Time
	// InterruptRecv switches message completion from polling to
	// interrupts, charging InterruptOverhead per message instead. The
	// paper's receivers poll, "which favors the normal case"; this knob
	// quantifies that choice.
	InterruptRecv     bool
	InterruptOverhead sim.Time
}

// DefaultOSConfig returns the paper's measured overheads plus small
// user-level messaging costs typical of 2002 SAN stacks (VIA-style).
func DefaultOSConfig() OSConfig {
	return OSConfig{
		IOPerRequest:      30 * sim.Microsecond,
		IOPerKB:           270 * sim.Nanosecond,
		SendOverhead:      4 * sim.Microsecond,
		RecvOverhead:      3 * sim.Microsecond,
		InterruptOverhead: 8 * sim.Microsecond,
	}
}

// Config assembles a host.
type Config struct {
	Hier    cache.HierConfig
	Mem     memsys.Config
	OS      OSConfig
	Quantum sim.Time
}

// DefaultConfig returns the paper's host: full-size caches over the default
// RDRAM channel. Pass cache.ScaledHostHierConfig() for the database
// benchmarks.
func DefaultConfig() Config {
	return Config{
		Hier:    cache.HostHierConfig(1),
		Mem:     memsys.DefaultConfig(),
		OS:      DefaultOSConfig(),
		Quantum: 500 * sim.Nanosecond,
	}
}

type flowKey struct {
	src  san.NodeID
	flow int64
}

// Host is one compute node.
type Host struct {
	eng   *sim.Engine
	id    san.NodeID
	name  string
	cfg   Config
	mem   *memsys.RDRAM
	space *memsys.AddressSpace
	hier  *cache.Hierarchy
	cpu   *cpu.CPU
	hca   *nic.NIC

	held map[flowKey][]*nic.Completion

	ioRequests int64
	ioBytes    int64
}

// New builds a host attached to the fabric via in/out links.
func New(eng *sim.Engine, id san.NodeID, name string, in, out *san.Link, cfg Config) *Host {
	mem := memsys.New(eng, name+".mem", cfg.Mem)
	hier := cache.NewHierarchy(eng, cfg.Hier, mem, 1<<40)
	h := &Host{
		eng:   eng,
		id:    id,
		name:  name,
		cfg:   cfg,
		mem:   mem,
		space: memsys.NewAddressSpace(0, 1<<32),
		hier:  hier,
		cpu:   cpu.New(eng, name+".cpu", sim.HostClock, hier, cfg.Quantum),
		held:  make(map[flowKey][]*nic.Completion),
	}
	h.hca = nic.New(eng, id, name+".hca", in, out, mem)
	h.hca.SetInvalidator(hier.InvalidateRange)
	return h
}

// Start launches the HCA engines.
func (h *Host) Start() { h.hca.Start() }

// ID returns the host's node id.
func (h *Host) ID() san.NodeID { return h.id }

// Name returns the host's debug name.
func (h *Host) Name() string { return h.name }

// Engine returns the engine the host runs on — its partition's engine in a
// partitioned simulation.
func (h *Host) Engine() *sim.Engine { return h.eng }

// CPU returns the processor timing model.
func (h *Host) CPU() *cpu.CPU { return h.cpu }

// Mem returns the memory channel.
func (h *Host) Mem() *memsys.RDRAM { return h.mem }

// Space returns the host's address-space allocator.
func (h *Host) Space() *memsys.AddressSpace { return h.space }

// NIC returns the host channel adapter.
func (h *Host) NIC() *nic.NIC { return h.hca }

// OS returns the overhead model in use.
func (h *Host) OS() OSConfig { return h.cfg.OS }

// Traffic returns total bytes in/out of the host (the paper's host I/O
// traffic metric).
func (h *Host) Traffic() int64 { return h.hca.Stats().Traffic() }

// IOStats reports disk requests issued and disk bytes received.
func (h *Host) IOStats() (requests, bytes int64) { return h.ioRequests, h.ioBytes }

// ReadToken tracks one outstanding disk read.
type ReadToken struct {
	store san.NodeID
	flow  int64
	len   int64
	// toHost is true when the data lands in host memory (charged per KB on
	// completion); false when it was redirected (active cases) and the
	// token completes via the storage node's Control notification.
	toHost bool
}

// Len returns the read's size.
func (t *ReadToken) Len() int64 { return t.len }

// postRequest sends a request packet to the storage node.
func (h *Host) postRequest(p *sim.Proc, store san.NodeID, payload any) {
	msg := &san.Message{
		Hdr:     san.Header{Src: h.id, Dst: store, Type: san.IORequest, Flow: h.hca.NextFlow()},
		Size:    64,
		Payload: payload,
	}
	h.hca.Post(msg, 0)
}

// IssueRead starts a disk read of file [off, off+n) into host memory at
// buf, charging the fixed OS request cost. It does not wait; pair with
// WaitRead. Two in-flight tokens give the paper's "+pref" configurations.
func (h *Host) IssueRead(p *sim.Proc, store san.NodeID, file string, off, n int64, buf int64) *ReadToken {
	h.cpu.BusyFor(p, h.cfg.OS.IOPerRequest)
	h.cpu.Flush(p)
	flow := h.hca.NextFlow()
	h.ioRequests++
	h.postRequest(p, store, iodev.ReadReq{
		File: file, Off: off, Len: n,
		Dst: h.id, DstAddr: buf, Type: san.Data, Flow: flow,
	})
	return &ReadToken{store: store, flow: flow, len: n, toHost: true}
}

// IssueReadTo starts a disk read whose data streams to another node
// (typically an active switch handler), optionally invoking handlerID
// there. The host still pays the request cost; completion arrives as a
// Control notification from the storage node.
func (h *Host) IssueReadTo(p *sim.Proc, store san.NodeID, file string, off, n int64,
	dst san.NodeID, dstAddr int64, typ san.Type, handlerID, cpuID int, flow int64) *ReadToken {
	h.cpu.BusyFor(p, h.cfg.OS.IOPerRequest)
	h.cpu.Flush(p)
	notifyFlow := h.hca.NextFlow()
	h.ioRequests++
	h.postRequest(p, store, iodev.ReadReq{
		File: file, Off: off, Len: n,
		Dst: dst, DstAddr: dstAddr, Type: typ, HandlerID: handlerID, CPUID: cpuID, Flow: flow,
		Notify: h.id, NotifyFlow: notifyFlow,
	})
	return &ReadToken{store: store, flow: notifyFlow, len: n, toHost: false}
}

// IssueReadStriped starts a redirected disk read whose packets are striped
// across the destination switch's CPUs (the MD5 multi-CPU variant): block
// b = offset/stripe goes to CPU b mod ways at dstAddr + way*wayStride +
// (b/ways)*stripe + offset%stripe.
func (h *Host) IssueReadStriped(p *sim.Proc, store san.NodeID, file string, off, n int64,
	dst san.NodeID, dstAddr int64, flow int64, stripe int64, ways int, wayStride int64) *ReadToken {
	h.cpu.BusyFor(p, h.cfg.OS.IOPerRequest)
	h.cpu.Flush(p)
	notifyFlow := h.hca.NextFlow()
	h.ioRequests++
	h.postRequest(p, store, iodev.ReadReq{
		File: file, Off: off, Len: n,
		Dst: dst, DstAddr: dstAddr, Type: san.Data, Flow: flow,
		Stripe: stripe, Ways: ways, WayStride: wayStride,
		Notify: h.id, NotifyFlow: notifyFlow,
	})
	return &ReadToken{store: store, flow: notifyFlow, len: n, toHost: false}
}

// IssueReadReq posts a fully-specified read request (advanced callers:
// active-disk pushdown filters, CPU striping), wiring in the notification
// the returned token waits on.
func (h *Host) IssueReadReq(p *sim.Proc, store san.NodeID, req iodev.ReadReq) *ReadToken {
	h.cpu.BusyFor(p, h.cfg.OS.IOPerRequest)
	h.cpu.Flush(p)
	req.Notify = h.id
	req.NotifyFlow = h.hca.NextFlow()
	h.ioRequests++
	h.postRequest(p, store, req)
	return &ReadToken{store: store, flow: req.NotifyFlow, len: req.Len, toHost: false}
}

// WaitRead blocks until the read completes. For host-bound data it charges
// the per-KB unbuffered-I/O cost; for redirected reads it waits for the
// storage node's notification only.
func (h *Host) WaitRead(p *sim.Proc, t *ReadToken) *nic.Completion {
	c := h.RecvFlow(p, t.store, t.flow)
	if t.toHost {
		h.ioBytes += t.len
		h.cpu.BusyFor(p, sim.Time((t.len+1023)/1024)*h.cfg.OS.IOPerKB)
	}
	return c
}

// RecvFlow blocks until the message with the given source and flow arrives,
// buffering any other completions that show up meanwhile.
func (h *Host) RecvFlow(p *sim.Proc, src san.NodeID, flow int64) *nic.Completion {
	key := flowKey{src: src, flow: flow}
	h.cpu.Flush(p)
	for {
		if q := h.held[key]; len(q) > 0 {
			c := q[0]
			if len(q) == 1 {
				delete(h.held, key)
			} else {
				h.held[key] = q[1:]
			}
			return c
		}
		c := h.hca.Recv(p)
		k := flowKey{src: c.Hdr.Src, flow: c.Hdr.Flow}
		h.held[k] = append(h.held[k], c)
	}
}

// TryRecvFlow returns a completion for (src, flow) if one has already
// arrived, without blocking. Benchmarks use it to prioritize flow-control
// credits over bulk data so the host issues its next I/O request before
// sinking into per-chunk processing.
func (h *Host) TryRecvFlow(src san.NodeID, flow int64) (*nic.Completion, bool) {
	for {
		c, ok := h.hca.TryRecv()
		if !ok {
			break
		}
		k := flowKey{src: c.Hdr.Src, flow: c.Hdr.Flow}
		h.held[k] = append(h.held[k], c)
	}
	key := flowKey{src: src, flow: flow}
	if q := h.held[key]; len(q) > 0 {
		c := q[0]
		if len(q) == 1 {
			delete(h.held, key)
		} else {
			h.held[key] = q[1:]
		}
		return c, true
	}
	return nil, false
}

// RecvAny blocks for the next completion of any flow, charging the polling
// receive overhead.
func (h *Host) RecvAny(p *sim.Proc) *nic.Completion {
	h.cpu.Flush(p)
	var c *nic.Completion
	if len(h.held) > 0 {
		// Drain buffered completions deterministically (lowest flow first).
		var best flowKey
		found := false
		for k := range h.held {
			if !found || k.flow < best.flow || (k.flow == best.flow && k.src < best.src) {
				best, found = k, true
			}
		}
		q := h.held[best]
		c = q[0]
		if len(q) == 1 {
			delete(h.held, best)
		} else {
			h.held[best] = q[1:]
		}
	} else {
		c = h.hca.Recv(p)
	}
	h.cpu.BusyFor(p, h.RecvCost())
	return c
}

// RecvCost is the per-message completion cost under the configured
// notification mode: the polling overhead by default, the interrupt
// overhead when OSConfig.InterruptRecv is set.
func (h *Host) RecvCost() sim.Time {
	if h.cfg.OS.InterruptRecv {
		return h.cfg.OS.InterruptOverhead
	}
	return h.cfg.OS.RecvOverhead
}

// SendMessage posts a message (charging the queue-pair overhead) and
// returns a latch that opens when the final packet is on the wire.
func (h *Host) SendMessage(p *sim.Proc, msg *san.Message, local int64) *sim.Latch {
	h.cpu.BusyFor(p, h.cfg.OS.SendOverhead)
	h.cpu.Flush(p)
	return h.hca.Post(msg, local)
}

// Write streams n bytes to a file on the storage node and waits for the
// durable ack, charging the request and per-KB costs.
func (h *Host) Write(p *sim.Proc, store san.NodeID, file string, off, n int64, local int64) {
	h.cpu.BusyFor(p, h.cfg.OS.IOPerRequest)
	h.cpu.Flush(p)
	flow := h.hca.NextFlow()
	ackFlow := h.hca.NextFlow()
	h.ioRequests++
	req := &san.Message{
		Hdr:     san.Header{Src: h.id, Dst: store, Type: san.IORequest, Flow: flow},
		Size:    64,
		Payload: iodev.WriteReq{File: file, Off: off, Len: n, Notify: h.id, NotifyFlow: ackFlow},
	}
	h.hca.Post(req, 0)
	data := &san.Message{
		Hdr:  san.Header{Src: h.id, Dst: store, Type: san.Data, Flow: flow},
		Size: n,
	}
	h.hca.Post(data, local)
	h.cpu.BusyFor(p, sim.Time((n+1023)/1024)*h.cfg.OS.IOPerKB)
	h.RecvFlow(p, store, ackFlow)
}

// String implements fmt.Stringer.
func (h *Host) String() string { return fmt.Sprintf("host(%s,%d)", h.name, h.id) }
