package host

import (
	"testing"

	"activesan/internal/san"
	"activesan/internal/sim"
)

// loopback builds two hosts wired directly to each other (no switch), which
// exercises the host-side APIs in isolation.
func loopback(eng *sim.Engine) (*Host, *Host) {
	cfg := san.DefaultLinkConfig()
	ab := san.NewLink(eng, "ab", cfg)
	ba := san.NewLink(eng, "ba", cfg)
	a := New(eng, 1, "a", ba, ab, DefaultConfig())
	b := New(eng, 2, "b", ab, ba, DefaultConfig())
	a.Start()
	b.Start()
	return a, b
}

func TestDefaultOSConfigMatchesPaper(t *testing.T) {
	os := DefaultOSConfig()
	if os.IOPerRequest != 30*sim.Microsecond {
		t.Errorf("per-request = %v, want the paper's 30us", os.IOPerRequest)
	}
	if os.IOPerKB != 270*sim.Nanosecond {
		t.Errorf("per-KB = %v, want the paper's 0.27us", os.IOPerKB)
	}
}

func TestSendMessageChargesOverhead(t *testing.T) {
	eng := sim.NewEngine()
	a, b := loopback(eng)
	eng.Spawn("tx", func(p *sim.Proc) {
		a.SendMessage(p, &san.Message{Hdr: san.Header{Dst: 2, Type: san.Data}, Size: 256}, 0)
	})
	eng.Spawn("rx", func(p *sim.Proc) { b.RecvAny(p) })
	eng.Run()
	defer eng.Shutdown()
	if a.CPU().Breakdown().Busy != DefaultOSConfig().SendOverhead {
		t.Fatalf("sender busy = %v, want send overhead", a.CPU().Breakdown().Busy)
	}
	if b.CPU().Breakdown().Busy != DefaultOSConfig().RecvOverhead {
		t.Fatalf("receiver busy = %v, want recv overhead", b.CPU().Breakdown().Busy)
	}
}

func TestRecvFlowBuffersOthers(t *testing.T) {
	eng := sim.NewEngine()
	a, b := loopback(eng)
	eng.Spawn("tx", func(p *sim.Proc) {
		a.SendMessage(p, &san.Message{Hdr: san.Header{Dst: 2, Type: san.Data, Flow: 10}, Size: 64}, 0)
		a.SendMessage(p, &san.Message{Hdr: san.Header{Dst: 2, Type: san.Data, Flow: 20}, Size: 64}, 0)
	})
	var first, second int64
	eng.Spawn("rx", func(p *sim.Proc) {
		// Wait for the second flow first; the first must be buffered and
		// still retrievable.
		c := b.RecvFlow(p, 1, 20)
		first = c.Hdr.Flow
		c = b.RecvFlow(p, 1, 10)
		second = c.Hdr.Flow
	})
	eng.Run()
	defer eng.Shutdown()
	if first != 20 || second != 10 {
		t.Fatalf("flows = %d,%d", first, second)
	}
}

func TestRecvFlowFIFOPerFlow(t *testing.T) {
	eng := sim.NewEngine()
	a, b := loopback(eng)
	eng.Spawn("tx", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			a.SendMessage(p, &san.Message{
				Hdr:     san.Header{Dst: 2, Type: san.Data, Flow: 7},
				Size:    64,
				Payload: i,
			}, 0)
		}
	})
	var order []int
	eng.Spawn("rx", func(p *sim.Proc) {
		p.Sleep(100 * sim.Microsecond) // let all three land in the buffer
		for i := 0; i < 3; i++ {
			c := b.RecvFlow(p, 1, 7)
			order = append(order, c.Payloads[0].(int))
		}
	})
	eng.Run()
	defer eng.Shutdown()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("order = %v, want [0 1 2]", order)
	}
}

func TestTryRecvFlow(t *testing.T) {
	eng := sim.NewEngine()
	a, b := loopback(eng)
	eng.Spawn("tx", func(p *sim.Proc) {
		a.SendMessage(p, &san.Message{Hdr: san.Header{Dst: 2, Type: san.Data, Flow: 33}, Size: 64}, 0)
	})
	var before, after bool
	eng.Spawn("rx", func(p *sim.Proc) {
		_, before = b.TryRecvFlow(1, 33)
		p.Sleep(100 * sim.Microsecond)
		_, after = b.TryRecvFlow(1, 33)
	})
	eng.Run()
	defer eng.Shutdown()
	if before {
		t.Fatal("TryRecvFlow succeeded before delivery")
	}
	if !after {
		t.Fatal("TryRecvFlow failed after delivery")
	}
}

func TestRecvAnyDrainsDeterministically(t *testing.T) {
	eng := sim.NewEngine()
	a, b := loopback(eng)
	eng.Spawn("tx", func(p *sim.Proc) {
		for _, f := range []int64{42, 17, 99} {
			a.SendMessage(p, &san.Message{Hdr: san.Header{Dst: 2, Type: san.Data, Flow: f}, Size: 64}, 0)
		}
	})
	var flows []int64
	eng.Spawn("rx", func(p *sim.Proc) {
		p.Sleep(100 * sim.Microsecond)
		// Force all three into the held buffer, then drain.
		b.RecvFlow(p, 1, 42)
		for i := 0; i < 2; i++ {
			flows = append(flows, b.RecvAny(p).Hdr.Flow)
		}
	})
	eng.Run()
	defer eng.Shutdown()
	// Buffered completions drain lowest flow first.
	if len(flows) != 2 || flows[0] != 17 || flows[1] != 99 {
		t.Fatalf("drain order = %v, want [17 99]", flows)
	}
}

func TestSpaceAndTrafficAccessors(t *testing.T) {
	eng := sim.NewEngine()
	a, _ := loopback(eng)
	r1 := a.Space().Alloc(4096, 4096)
	r2 := a.Space().Alloc(4096, 4096)
	if r1 == r2 {
		t.Fatal("allocations collided")
	}
	if a.Traffic() != 0 {
		t.Fatal("fresh host has traffic")
	}
	if a.String() == "" {
		t.Fatal("empty String()")
	}
	eng.Shutdown()
}
