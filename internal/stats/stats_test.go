package stats

import (
	"strings"
	"testing"

	"activesan/internal/metrics"
	"activesan/internal/sim"
)

func sampleResult() *Result {
	return &Result{
		ID:    "figX",
		Title: "sample",
		Runs: []Run{
			{Config: "normal", Time: 100 * sim.Millisecond, HostBusy: 20 * sim.Millisecond,
				HostStall: 10 * sim.Millisecond, Traffic: 1000, Hosts: 1},
			{Config: "active", Time: 50 * sim.Millisecond, HostBusy: 5 * sim.Millisecond,
				SwitchBusy: 30 * sim.Millisecond, Traffic: 250, Hosts: 1},
		},
	}
}

func TestHostUtil(t *testing.T) {
	r := Run{Time: 100, HostBusy: 20, HostStall: 10, Hosts: 1}
	if got := r.HostUtil(); got != 0.3 {
		t.Fatalf("util = %v, want 0.3", got)
	}
	r.Hosts = 2
	if got := r.HostUtil(); got != 0.15 {
		t.Fatalf("per-host util = %v, want 0.15", got)
	}
	if (Run{}).HostUtil() != 0 {
		t.Fatal("zero run should have zero util")
	}
	// Zero time or zero hosts alone must not divide by zero.
	if got := (Run{HostBusy: 10, Hosts: 1}).HostUtil(); got != 0 {
		t.Fatalf("zero-time util = %v, want 0", got)
	}
	if got := (Run{Time: 100, HostBusy: 10}).HostUtil(); got != 0 {
		t.Fatalf("zero-hosts util = %v, want 0", got)
	}
}

func TestSwitchUtil(t *testing.T) {
	r := Run{Time: 100, SwitchBusy: 25, SwitchStall: 25}
	if got := r.SwitchUtil(); got != 0.5 {
		t.Fatalf("switch util = %v, want 0.5", got)
	}
	if got := (Run{SwitchBusy: 25}).SwitchUtil(); got != 0 {
		t.Fatalf("zero-time switch util = %v, want 0", got)
	}
}

func TestSpeedupAndBaseline(t *testing.T) {
	res := sampleResult()
	if res.Baseline().Config != "normal" {
		t.Fatal("baseline is not the normal run")
	}
	if got := res.Speedup("active"); got != 2.0 {
		t.Fatalf("speedup = %v, want 2", got)
	}
	if res.Speedup("missing") != 0 {
		t.Fatal("missing config should give 0 speedup")
	}
}

func TestBreakdownBar(t *testing.T) {
	b := BreakdownBar("x", 30, 20, 100, 1)
	if b.Busy != 30 || b.Stall != 20 || b.Idle != 50 {
		t.Fatalf("bar = %+v", b)
	}
	if b.Total() != 100 {
		t.Fatalf("total = %v", b.Total())
	}
	// Per-CPU averaging.
	b = BreakdownBar("x", 40, 0, 100, 4)
	if b.Busy != 10 || b.Idle != 90 {
		t.Fatalf("averaged bar = %+v", b)
	}
	// Idle clamps at zero if accounting overshoots.
	b = BreakdownBar("x", 80, 40, 100, 1)
	if b.Idle != 0 {
		t.Fatalf("idle = %v, want clamp to 0", b.Idle)
	}
	if b.Total() != 120 {
		t.Fatalf("clamped total = %v, want busy+stall", b.Total())
	}
	// A non-positive CPU count falls back to 1 instead of dividing by zero.
	b = BreakdownBar("x", 30, 20, 100, 0)
	if b.Busy != 30 || b.Stall != 20 || b.Idle != 50 {
		t.Fatalf("n=0 bar = %+v", b)
	}
}

func TestFormatSecondaryMetrics(t *testing.T) {
	res := sampleResult()
	m := metrics.NewSnapshot()
	m.Set("sw0/port1/out/util", 0.5)
	res.Runs[0].Metrics = m
	out := res.Format()
	if !strings.Contains(out, "-- secondary metrics --") {
		t.Fatalf("missing secondary metrics block:\n%s", out)
	}
	if !strings.Contains(out, "link util max 50.0% (sw0/port1/out)") {
		t.Fatalf("missing summary line:\n%s", out)
	}
	// Runs without metrics (or with nothing to summarize) print no block.
	res.Runs[0].Metrics = nil
	if strings.Contains(res.Format(), "secondary metrics") {
		t.Fatal("metrics block printed for metric-less runs")
	}
}

func TestFormatContainsEverything(t *testing.T) {
	res := sampleResult()
	res.Bars = []Bar{{Label: "n-HP", Busy: 1, Stall: 2, Idle: 3}}
	res.Series = []Series{{Name: "lat", X: []float64{2, 4}, Y: []float64{1.5, 2.5}}}
	res.Notes = []string{"hello note"}
	out := res.Format()
	for _, want := range []string{"figX", "normal", "active", "n-HP", "series lat", "hello note", "0.250"} {
		if !strings.Contains(out, want) {
			t.Fatalf("formatted output missing %q:\n%s", want, out)
		}
	}
}

func TestSpeedupSeries(t *testing.T) {
	normal := Series{X: []float64{2, 4, 8}, Y: []float64{10, 20, 40}}
	active := Series{X: []float64{2, 4, 8}, Y: []float64{10, 10, 10}}
	sp := SpeedupSeries("speedup", normal, active)
	if len(sp.X) != 3 {
		t.Fatalf("points = %d", len(sp.X))
	}
	if sp.Y[0] != 1 || sp.Y[2] != 4 {
		t.Fatalf("speedups = %v", sp.Y)
	}
	if sp.MaxY() != 4 {
		t.Fatalf("max = %v", sp.MaxY())
	}
	// Mismatched X values are skipped rather than misaligned.
	active2 := Series{X: []float64{2, 8}, Y: []float64{5, 5}}
	sp2 := SpeedupSeries("s", normal, active2)
	if len(sp2.X) != 2 || sp2.Y[1] != 8 {
		t.Fatalf("sparse speedups = %+v", sp2)
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	got := SortedKeys(m)
	if got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("keys = %v", got)
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Quantile(0.5) != 0 || h.N() != 0 {
		t.Fatal("empty histogram misbehaves")
	}
	for i := 1; i <= 100; i++ {
		h.Add(sim.Time(i))
	}
	if h.N() != 100 {
		t.Fatalf("n = %d", h.N())
	}
	if h.Mean() != 50 { // (1+..+100)/100 = 50.5 truncated
		t.Fatalf("mean = %v", h.Mean())
	}
	if q := h.Quantile(0.5); q != 51 {
		t.Fatalf("p50 = %v, want 51 (nearest rank)", q)
	}
	if q := h.Quantile(0.99); q != 100 {
		t.Fatalf("p99 = %v", q)
	}
	if h.Quantile(0) != 1 || h.Max() != 100 {
		t.Fatalf("extremes = %v..%v", h.Quantile(0), h.Max())
	}
	// Adding after a quantile query re-sorts.
	h.Add(sim.Time(1000))
	if h.Max() != 1000 {
		t.Fatal("late sample lost")
	}
}
