// Package stats collects and formats the paper's three headline metrics —
// execution time (normalized to the "normal" configuration), host processor
// utilization (1 - idle)/time, and host I/O traffic — plus the CPU-busy /
// cache-stall / idle execution-time breakdowns of the even-numbered figures.
package stats

import (
	"fmt"
	"sort"
	"strings"

	"activesan/internal/metrics"
	"activesan/internal/sim"
)

// Run is the outcome of one benchmark configuration.
type Run struct {
	// Config is the paper's configuration label: "normal", "normal+pref",
	// "active", "active+pref".
	Config string
	// Time is the end-to-end execution time.
	Time sim.Time
	// HostBusy/HostStall aggregate every participating host CPU.
	HostBusy  sim.Time
	HostStall sim.Time
	// SwitchBusy/SwitchStall aggregate every switch CPU (zero for normal
	// configurations).
	SwitchBusy  sim.Time
	SwitchStall sim.Time
	// Traffic is total bytes in/out of all hosts.
	Traffic int64
	// Hosts is the number of participating hosts (for per-host averages).
	Hosts int
	// Extra carries benchmark-specific results (e.g. matches found) for
	// correctness reporting.
	Extra map[string]any
	// Metrics is the full secondary-metric snapshot of the run's cluster
	// (per-component counters, derived utilizations, timelines). Present
	// for cluster-based runs; golden files pin it alongside the headline
	// numbers.
	Metrics *metrics.Snapshot `json:",omitempty"`
}

// HostUtil returns the paper's host utilization: (1 - idle)/time averaged
// over hosts, i.e. (busy+stall)/(hosts*time).
func (r Run) HostUtil() float64 {
	if r.Time == 0 || r.Hosts == 0 {
		return 0
	}
	return float64(r.HostBusy+r.HostStall) / (float64(r.Hosts) * float64(r.Time))
}

// SwitchUtil returns the switch CPU utilization over the run.
func (r Run) SwitchUtil() float64 {
	if r.Time == 0 {
		return 0
	}
	return float64(r.SwitchBusy+r.SwitchStall) / float64(r.Time)
}

// Bar is one stacked column of an execution-time breakdown figure, e.g.
// "n-HP" (normal, host processor) or "a+p-SP" (active+pref, switch CPU).
type Bar struct {
	Label string
	Busy  sim.Time
	Stall sim.Time
	Idle  sim.Time
}

// Total returns the bar's height.
func (b Bar) Total() sim.Time { return b.Busy + b.Stall + b.Idle }

// BreakdownBar derives a bar from a run's aggregates for either the host
// ("HP") or switch ("SP") processor, with idle as the remainder of the run.
func BreakdownBar(label string, busy, stall, window sim.Time, n int) Bar {
	if n < 1 {
		n = 1
	}
	busy /= sim.Time(n)
	stall /= sim.Time(n)
	idle := window - busy - stall
	if idle < 0 {
		idle = 0
	}
	return Bar{Label: label, Busy: busy, Stall: stall, Idle: idle}
}

// Result is one experiment's full output: the four-configuration run set
// and the matching breakdown bars, ready to print.
type Result struct {
	ID    string // experiment id, e.g. "fig3"
	Title string
	Runs  []Run
	Bars  []Bar
	// Series carries X/Y data for the sweep figures (15-17).
	Series []Series
	// Notes records correctness checks ("16 lines matched") and shape
	// observations.
	Notes []string
}

// GoodputMBps converts a run's end-to-end time into application goodput for
// a workload that delivered payloadBytes of useful data — the reliability
// sweeps' headline metric (retransmitted bytes are link traffic, not
// goodput).
func (r Run) GoodputMBps(payloadBytes int64) float64 {
	if r.Time <= 0 {
		return 0
	}
	return float64(payloadBytes) / r.Time.Seconds() / 1e6
}

// Series is one line of a sweep figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Baseline returns the run labelled "normal" (or the first run).
func (res *Result) Baseline() Run {
	for _, r := range res.Runs {
		if r.Config == "normal" {
			return r
		}
	}
	if len(res.Runs) > 0 {
		return res.Runs[0]
	}
	return Run{}
}

// Run returns the run with the given config label and whether it exists.
func (res *Result) Run(config string) (Run, bool) {
	for _, r := range res.Runs {
		if r.Config == config {
			return r, true
		}
	}
	return Run{}, false
}

// Speedup returns baseline time / config time.
func (res *Result) Speedup(config string) float64 {
	r, ok := res.Run(config)
	base := res.Baseline()
	if !ok || r.Time == 0 || base.Time == 0 {
		return 0
	}
	return float64(base.Time) / float64(r.Time)
}

// Format renders the result as the text equivalent of the paper's figures.
func (res *Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", res.ID, res.Title)
	if len(res.Runs) > 0 {
		base := res.Baseline()
		fmt.Fprintf(&b, "%-14s %12s %10s %10s %12s %10s %12s\n",
			"config", "time", "norm.time", "host-util", "traffic(B)", "norm.traf", "switch-util")
		for _, r := range res.Runs {
			nt, tr := 0.0, 0.0
			if base.Time > 0 {
				nt = float64(r.Time) / float64(base.Time)
			}
			if base.Traffic > 0 {
				tr = float64(r.Traffic) / float64(base.Traffic)
			}
			fmt.Fprintf(&b, "%-14s %12s %10.3f %10.3f %12d %10.3f %12.3f\n",
				r.Config, r.Time, nt, r.HostUtil(), r.Traffic, tr, r.SwitchUtil())
		}
	}
	if len(res.Bars) > 0 {
		fmt.Fprintf(&b, "-- execution time breakdown --\n")
		fmt.Fprintf(&b, "%-10s %12s %12s %12s %8s %8s %8s\n",
			"bar", "busy", "stall", "idle", "%busy", "%stall", "%idle")
		for _, bar := range res.Bars {
			t := bar.Total()
			pct := func(x sim.Time) float64 {
				if t == 0 {
					return 0
				}
				return 100 * float64(x) / float64(t)
			}
			fmt.Fprintf(&b, "%-10s %12s %12s %12s %8.1f %8.1f %8.1f\n",
				bar.Label, bar.Busy, bar.Stall, bar.Idle,
				pct(bar.Busy), pct(bar.Stall), pct(bar.Idle))
		}
	}
	hasMetrics := false
	for _, r := range res.Runs {
		if r.Metrics != nil {
			hasMetrics = true
			break
		}
	}
	if hasMetrics {
		fmt.Fprintf(&b, "-- secondary metrics --\n")
		for _, r := range res.Runs {
			if r.Metrics == nil {
				continue
			}
			summary := r.Metrics.Summary()
			if len(summary) == 0 {
				continue
			}
			fmt.Fprintf(&b, "%-14s %s\n", r.Config, strings.Join(summary, "; "))
		}
	}
	for _, s := range res.Series {
		fmt.Fprintf(&b, "-- series %s --\n", s.Name)
		for i := range s.X {
			fmt.Fprintf(&b, "  x=%-8g y=%g\n", s.X[i], s.Y[i])
		}
	}
	for _, n := range res.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// SpeedupSeries converts matched normal/active series into a speedup curve
// (normalY / activeY pointwise over shared X values).
func SpeedupSeries(name string, normal, active Series) Series {
	idx := make(map[float64]float64, len(active.X))
	for i := range active.X {
		idx[active.X[i]] = active.Y[i]
	}
	var out Series
	out.Name = name
	for i := range normal.X {
		if ay, ok := idx[normal.X[i]]; ok && ay > 0 {
			out.X = append(out.X, normal.X[i])
			out.Y = append(out.Y, normal.Y[i]/ay)
		}
	}
	return out
}

// MaxY returns the largest Y in the series (0 if empty).
func (s Series) MaxY() float64 {
	best := 0.0
	for _, y := range s.Y {
		if y > best {
			best = y
		}
	}
	return best
}

// SortedKeys returns map keys in sorted order, for deterministic notes.
func SortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Histogram collects duration samples and reports order statistics —
// latency distributions for the interference and collective studies.
type Histogram struct {
	samples []sim.Time
	sorted  bool
	sum     sim.Time
}

// Add records one sample.
func (h *Histogram) Add(d sim.Time) {
	h.samples = append(h.samples, d)
	h.sum += d
	h.sorted = false
}

// N reports the sample count.
func (h *Histogram) N() int { return len(h.samples) }

// Mean reports the average sample (0 when empty).
func (h *Histogram) Mean() sim.Time {
	if len(h.samples) == 0 {
		return 0
	}
	return h.sum / sim.Time(len(h.samples))
}

// Quantile reports the q-quantile (0 <= q <= 1) by nearest rank; empty
// histograms report 0.
func (h *Histogram) Quantile(q float64) sim.Time {
	if len(h.samples) == 0 {
		return 0
	}
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
	if q <= 0 {
		return h.samples[0]
	}
	if q >= 1 {
		return h.samples[len(h.samples)-1]
	}
	idx := int(q * float64(len(h.samples)))
	if idx >= len(h.samples) {
		idx = len(h.samples) - 1
	}
	return h.samples[idx]
}

// Max reports the largest sample.
func (h *Histogram) Max() sim.Time { return h.Quantile(1) }
