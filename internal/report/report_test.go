package report

import (
	"strings"
	"testing"

	"activesan/internal/sim"
	"activesan/internal/stats"
)

func TestMarkdownStructure(t *testing.T) {
	res := &stats.Result{
		ID:    "fig9",
		Title: "Grep",
		Runs: []stats.Run{
			{Config: "normal", Time: 25 * sim.Millisecond, Traffic: 1000, Hosts: 1},
			{Config: "active", Time: 20 * sim.Millisecond, Traffic: 30, Hosts: 1},
		},
		Bars:   []stats.Bar{{Label: "n-HP", Busy: 1, Stall: 2, Idle: 3}},
		Series: []stats.Series{{Name: "lat", X: []float64{2}, Y: []float64{7}}},
		Notes:  []string{"a note"},
	}
	md := Markdown("Run report", 4, []*stats.Result{res})
	for _, want := range []string{
		"# Run report", "divisor: 4", "## Headline shapes",
		"## fig9 — Grep", "| normal |", "| active |",
		"| n-HP |", "Series `lat`", "> a note",
		"active speedup 1.25", // the fig9 shape line computed from the runs
	} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestMarkdownEmptyResults(t *testing.T) {
	md := Markdown("empty", 1, nil)
	if !strings.Contains(md, "# empty") {
		t.Fatal("title missing")
	}
}

func TestCompare(t *testing.T) {
	before := []*stats.Result{{
		ID: "fig9",
		Runs: []stats.Run{
			{Config: "normal", Time: 100, Traffic: 1000},
			{Config: "active", Time: 80, Traffic: 100},
		},
		Series: []stats.Series{{Name: "speedup", X: []float64{1}, Y: []float64{2}}},
	}}
	after := []*stats.Result{{
		ID: "fig9",
		Runs: []stats.Run{
			{Config: "normal", Time: 110, Traffic: 1000},
			{Config: "active", Time: 80, Traffic: 90},
			{Config: "brand-new", Time: 5},
		},
		Series: []stats.Series{{Name: "speedup", X: []float64{1}, Y: []float64{3}}},
	}, {ID: "fig99"}}
	out := Compare(before, after)
	for _, want := range []string{
		"fig9", "normal", "10.00%", "-10.00%", "(new config)",
		"(new experiment)", `series "speedup"`, "+50.00%",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("compare output missing %q:\n%s", want, out)
		}
	}
}

func TestRegressionsFlagDriftBeyondThreshold(t *testing.T) {
	before := []*stats.Result{{
		ID: "fig9",
		Runs: []stats.Run{
			{Config: "normal", Time: 100, Traffic: 1000},
			{Config: "active", Time: 80, Traffic: 100},
		},
		Series: []stats.Series{{Name: "speedup", X: []float64{1}, Y: []float64{2}}},
	}}
	// Injected regressions: active time +25%, active traffic -40%
	// (improvements count as drift too), series max +50%. Normal drifts by
	// only 2% and stays under a 10% threshold.
	after := []*stats.Result{{
		ID: "fig9",
		Runs: []stats.Run{
			{Config: "normal", Time: 102, Traffic: 1000},
			{Config: "active", Time: 100, Traffic: 60},
		},
		Series: []stats.Series{{Name: "speedup", X: []float64{1}, Y: []float64{3}}},
	}}
	regs := Regressions(before, after, 10)
	if len(regs) != 3 {
		t.Fatalf("got %d regressions, want 3: %v", len(regs), regs)
	}
	want := map[string]float64{
		"fig9/active/time":        25,
		"fig9/active/traffic":     -40,
		"fig9/speedup/series-max": 50,
	}
	for _, r := range regs {
		key := r.Experiment + "/" + r.Config + "/" + r.Metric
		wantDelta, ok := want[key]
		if !ok {
			t.Errorf("unexpected regression %v", r)
			continue
		}
		if r.DeltaPct < wantDelta-0.01 || r.DeltaPct > wantDelta+0.01 {
			t.Errorf("%s: delta %.2f%%, want %.2f%%", key, r.DeltaPct, wantDelta)
		}
		if !strings.Contains(r.String(), r.Metric) {
			t.Errorf("String() lacks metric: %q", r.String())
		}
	}
	if regs := Regressions(before, after, 60); len(regs) != 0 {
		t.Fatalf("threshold 60%% still flagged %v", regs)
	}
	if regs := Regressions(before, before, 0.01); len(regs) != 0 {
		t.Fatalf("identical inputs flagged %v", regs)
	}
}

func TestRegressionsIgnoreUnmatchedEntries(t *testing.T) {
	before := []*stats.Result{{ID: "fig9", Runs: []stats.Run{{Config: "normal", Time: 100}}}}
	after := []*stats.Result{
		{ID: "fig9", Runs: []stats.Run{{Config: "brand-new", Time: 1}}},
		{ID: "fig99", Runs: []stats.Run{{Config: "normal", Time: 1}}},
	}
	if regs := Regressions(before, after, 1); len(regs) != 0 {
		t.Fatalf("unmatched entries flagged as regressions: %v", regs)
	}
}
