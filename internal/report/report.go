// Package report renders experiment results into a self-contained markdown
// document — the machinery behind `activesim -md`, producing an
// EXPERIMENTS.md-style record of any run.
package report

import (
	"fmt"
	"strings"

	"activesan/internal/exp"
	"activesan/internal/metrics"
	"activesan/internal/sim"
	"activesan/internal/stats"
)

// Markdown renders the results as one document. Shapes lines (paper-vs-
// measured) come from the experiment registry.
func Markdown(title string, scale int64, results []*stats.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n\n", title)
	fmt.Fprintf(&b, "Problem-size divisor: %d (1 = the paper's full sizes).\n\n", scale)

	// Summary table of headline shapes.
	fmt.Fprintf(&b, "## Headline shapes\n\n")
	fmt.Fprintf(&b, "| Experiment | Shape checks |\n|---|---|\n")
	for _, res := range results {
		shapes := exp.Shapes(res)
		if len(shapes) == 0 {
			shapes = []string{"—"}
		}
		fmt.Fprintf(&b, "| %s | %s |\n", res.ID, strings.Join(shapes, "<br>"))
	}
	fmt.Fprintf(&b, "\n")

	for _, res := range results {
		fmt.Fprintf(&b, "## %s — %s\n\n", res.ID, res.Title)
		if len(res.Runs) > 0 {
			base := res.Baseline()
			fmt.Fprintf(&b, "| config | time | norm. time | host util | traffic | norm. traffic | switch util |\n")
			fmt.Fprintf(&b, "|---|---|---|---|---|---|---|\n")
			for _, r := range res.Runs {
				nt, tr := 0.0, 0.0
				if base.Time > 0 {
					nt = float64(r.Time) / float64(base.Time)
				}
				if base.Traffic > 0 {
					tr = float64(r.Traffic) / float64(base.Traffic)
				}
				fmt.Fprintf(&b, "| %s | %v | %.3f | %.3f | %d | %.3f | %.3f |\n",
					r.Config, r.Time, nt, r.HostUtil(), r.Traffic, tr, r.SwitchUtil())
			}
			fmt.Fprintf(&b, "\n")
		}
		if lines := metricsLines(res); len(lines) > 0 {
			fmt.Fprintf(&b, "Secondary metrics:\n\n")
			for _, l := range lines {
				fmt.Fprintf(&b, "- %s\n", l)
			}
			fmt.Fprintf(&b, "\n")
		}
		if len(res.Bars) > 0 {
			fmt.Fprintf(&b, "Execution-time breakdown:\n\n")
			fmt.Fprintf(&b, "| bar | busy | stall | idle |\n|---|---|---|---|\n")
			for _, bar := range res.Bars {
				fmt.Fprintf(&b, "| %s | %v | %v | %v |\n", bar.Label, bar.Busy, bar.Stall, bar.Idle)
			}
			fmt.Fprintf(&b, "\n")
		}
		for _, s := range res.Series {
			fmt.Fprintf(&b, "Series `%s`:\n\n| x | y |\n|---|---|\n", s.Name)
			for i := range s.X {
				fmt.Fprintf(&b, "| %g | %.4g |\n", s.X[i], s.Y[i])
			}
			fmt.Fprintf(&b, "\n")
		}
		for _, n := range res.Notes {
			fmt.Fprintf(&b, "> %s\n", n)
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}

// Compare diffs two result sets (e.g. before and after a configuration
// change) by experiment id, reporting per-config time and traffic deltas —
// the regression check for calibration changes.
func Compare(before, after []*stats.Result) string {
	var b strings.Builder
	byID := make(map[string]*stats.Result, len(before))
	for _, r := range before {
		byID[r.ID] = r
	}
	fmt.Fprintf(&b, "%-10s %-16s %14s %14s %9s %9s\n",
		"experiment", "config", "time before", "time after", "Δtime", "Δtraffic")
	for _, ra := range after {
		rb, ok := byID[ra.ID]
		if !ok {
			fmt.Fprintf(&b, "%-10s (new experiment)\n", ra.ID)
			continue
		}
		for _, runA := range ra.Runs {
			runB, ok := rb.Run(runA.Config)
			if !ok {
				fmt.Fprintf(&b, "%-10s %-16s (new config)\n", ra.ID, runA.Config)
				continue
			}
			dt := pctDelta(float64(runB.Time), float64(runA.Time))
			dtr := pctDelta(float64(runB.Traffic), float64(runA.Traffic))
			fmt.Fprintf(&b, "%-10s %-16s %14v %14v %8.2f%% %8.2f%%\n",
				ra.ID, runA.Config, runB.Time, runA.Time, dt, dtr)
			// Secondary-metric drift, largest first: the sandiff view of
			// everything the metrics registry pins beyond the headlines.
			drifts := metrics.Diff(runB.Metrics, runA.Metrics, 1.0)
			const show = 5
			for i, d := range drifts {
				if i == show {
					fmt.Fprintf(&b, "%-10s   ... %d more metrics drifted >1%%\n", ra.ID, len(drifts)-show)
					break
				}
				fmt.Fprintf(&b, "%-10s   metric %s\n", ra.ID, d)
			}
		}
		for _, sa := range ra.Series {
			for _, sb := range rb.Series {
				if sa.Name != sb.Name {
					continue
				}
				fmt.Fprintf(&b, "%-10s series %-20q max %.4g -> %.4g (%+.2f%%)\n",
					ra.ID, sa.Name, sb.MaxY(), sa.MaxY(), pctDelta(sb.MaxY(), sa.MaxY()))
			}
		}
	}
	return b.String()
}

// metricsLines renders each run's secondary-metric summary as one line.
func metricsLines(res *stats.Result) []string {
	var out []string
	for _, r := range res.Runs {
		if r.Metrics == nil {
			continue
		}
		if summary := r.Metrics.Summary(); len(summary) > 0 {
			out = append(out, fmt.Sprintf("`%s`: %s", r.Config, strings.Join(summary, "; ")))
		}
	}
	return out
}

func pctDelta(before, after float64) float64 {
	if before == 0 {
		return 0
	}
	return 100 * (after - before) / before
}

// Regression is one metric whose drift crossed the failure threshold.
type Regression struct {
	Experiment string
	Config     string // config label, or the series name for series drifts
	Metric     string // "time", "traffic", "series-max", "metric:<name>" or "quantile:<name>"
	Before     float64
	After      float64
	DeltaPct   float64
}

// quantileField reports whether a snapshot metric name is a latency
// quantile from a telemetry histogram. Those are labeled "quantile:" in
// drift reports so sandiff output separates distribution-shape drift from
// counter drift.
func quantileField(name string) bool {
	for _, suf := range []string{"/p50", "/p90", "/p99", "/p999"} {
		if strings.HasSuffix(name, suf) {
			return true
		}
	}
	return false
}

func (r Regression) String() string {
	if r.Metric == "time" {
		return fmt.Sprintf("%s %s %s %v -> %v (%+.2f%%)",
			r.Experiment, r.Config, r.Metric, sim.Time(r.Before), sim.Time(r.After), r.DeltaPct)
	}
	return fmt.Sprintf("%s %s %s %g -> %g (%+.2f%%)",
		r.Experiment, r.Config, r.Metric, r.Before, r.After, r.DeltaPct)
}

// Regressions scans after-vs-before for per-config time and traffic deltas,
// secondary-metric deltas (every name in the run's metrics snapshot, as
// "metric:<name>"), and per-series max deltas whose magnitude exceeds
// thresholdPct. Any
// drift counts, improvements included: in a calibrated simulator an
// unexplained speedup is as suspect as a slowdown. Matching is by
// experiment id and config label; entries present on only one side are
// ignored (Compare already reports them).
func Regressions(before, after []*stats.Result, thresholdPct float64) []Regression {
	var out []Regression
	byID := make(map[string]*stats.Result, len(before))
	for _, r := range before {
		byID[r.ID] = r
	}
	flag := func(id, config, metric string, b, a float64) {
		if d := pctDelta(b, a); d > thresholdPct || d < -thresholdPct {
			out = append(out, Regression{
				Experiment: id, Config: config, Metric: metric,
				Before: b, After: a, DeltaPct: d,
			})
		}
	}
	for _, ra := range after {
		rb, ok := byID[ra.ID]
		if !ok {
			continue
		}
		for _, runA := range ra.Runs {
			runB, ok := rb.Run(runA.Config)
			if !ok {
				continue
			}
			flag(ra.ID, runA.Config, "time", float64(runB.Time), float64(runA.Time))
			flag(ra.ID, runA.Config, "traffic", float64(runB.Traffic), float64(runA.Traffic))
			for _, d := range metrics.Diff(runB.Metrics, runA.Metrics, thresholdPct) {
				label := "metric:"
				if quantileField(d.Name) {
					label = "quantile:"
				}
				out = append(out, Regression{
					Experiment: ra.ID, Config: runA.Config, Metric: label + d.Name,
					Before: d.Before, After: d.After, DeltaPct: d.DeltaPct,
				})
			}
		}
		for _, sa := range ra.Series {
			for _, sb := range rb.Series {
				if sa.Name == sb.Name {
					flag(ra.ID, sa.Name, "series-max", sb.MaxY(), sa.MaxY())
				}
			}
		}
	}
	return out
}
