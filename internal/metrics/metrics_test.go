package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"activesan/internal/cluster"
	"activesan/internal/iodev"
	"activesan/internal/sim"
)

func TestSnapshotBasics(t *testing.T) {
	s := NewSnapshot()
	s.Set("b/util", 0.5)
	s.SetInt("a/count", 3)
	s.Add("a/count", 2)
	if got := s.Get("a/count"); got != 5 {
		t.Errorf("Get(a/count) = %g, want 5", got)
	}
	if got := s.Get("missing"); got != 0 {
		t.Errorf("Get(missing) = %g, want 0", got)
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "a/count" || names[1] != "b/util" {
		t.Errorf("Names() = %v, want sorted [a/count b/util]", names)
	}
	want := "a/count = 5\nb/util = 0.5\n"
	if got := s.Format(); got != want {
		t.Errorf("Format() = %q, want %q", got, want)
	}
}

func TestSetSeriesSkipsEmpty(t *testing.T) {
	s := NewSnapshot()
	s.SetSeries("empty", nil, nil)
	if s.Series != nil {
		t.Errorf("empty series stored: %v", s.Series)
	}
	s.SetSeries("tl", []float64{0, 1}, []float64{2, 3})
	if len(s.Series["tl"].X) != 2 {
		t.Errorf("series not stored: %v", s.Series)
	}
}

func TestSummary(t *testing.T) {
	s := NewSnapshot()
	s.Set("sw0/port1/out/util", 0.25)
	s.Set("sw0/port2/out/util", 0.75)
	s.Set("h0/cpu/util", 0.99) // not a port: must not win the link-util line
	s.SetInt("h0/l2/accesses", 1000)
	s.SetInt("h0/l2/misses", 50)
	s.SetInt("sw0/cpu0/atb/hits", 90)
	s.SetInt("sw0/cpu0/atb/misses", 10)
	s.Set("h0/mem/bus_util", 0.4)
	s.SetInt("sw0/max_queue_depth", 7)

	sum := strings.Join(s.Summary(), "; ")
	for _, want := range []string{
		"link util max 75.0% (sw0/port2/out)",
		"L2 miss 5.00%",
		"ATB hit 90.00%",
		"mem bus util max 40.0% (h0)",
		"switch queue max 7 (sw0)",
	} {
		if !strings.Contains(sum, want) {
			t.Errorf("Summary missing %q in %q", want, sum)
		}
	}
}

func TestSummaryEmpty(t *testing.T) {
	if sum := NewSnapshot().Summary(); len(sum) != 0 {
		t.Errorf("empty snapshot Summary = %v, want none", sum)
	}
}

func TestDiff(t *testing.T) {
	before := NewSnapshot()
	after := NewSnapshot()
	before.Set("small", 100)
	after.Set("small", 100.5) // +0.5%: under threshold
	before.Set("big", 100)
	after.Set("big", 150) // +50%
	before.Set("bigger", 100)
	after.Set("bigger", 30) // -70%
	before.Set("zero", 0)
	after.Set("zero", 10) // zero baseline: skipped
	before.Set("gone", 5) // one-sided: skipped

	drifts := Diff(before, after, 1.0)
	if len(drifts) != 2 {
		t.Fatalf("Diff returned %d drifts (%v), want 2", len(drifts), drifts)
	}
	if drifts[0].Name != "bigger" || drifts[1].Name != "big" {
		t.Errorf("drift order = [%s %s], want largest |Δ%%| first [bigger big]",
			drifts[0].Name, drifts[1].Name)
	}
	if drifts[0].DeltaPct != -70 {
		t.Errorf("bigger DeltaPct = %g, want -70", drifts[0].DeltaPct)
	}
	if got := drifts[1].String(); !strings.Contains(got, "big 100 -> 150 (+50.00%)") {
		t.Errorf("Drift.String() = %q", got)
	}
}

func TestDiffNilSnapshots(t *testing.T) {
	s := NewSnapshot()
	s.Set("x", 1)
	if d := Diff(nil, s, 0); d != nil {
		t.Errorf("Diff(nil, s) = %v, want nil", d)
	}
	if d := Diff(s, nil, 0); d != nil {
		t.Errorf("Diff(s, nil) = %v, want nil", d)
	}
}

// chromeDoc mirrors the trace-event JSON for decoding in tests.
type chromeDoc struct {
	TraceEvents []struct {
		Name  string         `json:"name"`
		Cat   string         `json:"cat"`
		Phase string         `json:"ph"`
		TS    float64        `json:"ts"`
		TID   int            `json:"tid"`
		Args  map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func TestChromeTraceWriter(t *testing.T) {
	var buf bytes.Buffer
	w := NewChromeTraceWriter(&buf, 0)
	sink := w.Sink()
	sink(sim.TraceEvent{At: 2 * sim.Microsecond, Cat: "packet", Name: "send", Comp: "sw0", Detail: "pkt 1"})
	sink(sim.TraceEvent{At: 3 * sim.Microsecond, Cat: "disk", Name: "read", Comp: "d0", Detail: "blk 7"})
	sink(sim.TraceEvent{At: 4 * sim.Microsecond, Cat: "packet", Name: "recv", Comp: "sw0", Detail: "pkt 1"})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Events() != 3 {
		t.Errorf("Events() = %d, want 3", w.Events())
	}

	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	// 3 instants + 2 thread_name metadata records.
	if len(doc.TraceEvents) != 5 {
		t.Fatalf("traceEvents count = %d, want 5", len(doc.TraceEvents))
	}
	meta, instants := 0, 0
	tids := make(map[string]int)
	for _, ev := range doc.TraceEvents {
		switch ev.Phase {
		case "M":
			meta++
			tids[ev.Args["name"].(string)] = ev.TID
		case "i":
			instants++
		default:
			t.Errorf("unexpected phase %q", ev.Phase)
		}
	}
	if meta != 2 || instants != 3 {
		t.Errorf("meta=%d instants=%d, want 2 and 3", meta, instants)
	}
	if tids["sw0"] == 0 || tids["d0"] == 0 || tids["sw0"] == tids["d0"] {
		t.Errorf("thread ids not distinct per component: %v", tids)
	}
	first := doc.TraceEvents[1] // after sw0's metadata record
	if first.Name != "send" || first.Cat != "packet" || first.TS != 2 {
		t.Errorf("first instant = %+v, want send/packet at ts=2µs", first)
	}
	if first.Args["detail"] != "pkt 1" {
		t.Errorf("detail = %v, want pkt 1", first.Args["detail"])
	}
}

func TestChromeTraceWriterLimit(t *testing.T) {
	var buf bytes.Buffer
	w := NewChromeTraceWriter(&buf, 2)
	sink := w.Sink()
	for i := 0; i < 10; i++ {
		sink(sim.TraceEvent{At: sim.Time(i), Cat: "c", Name: "n", Comp: "x"})
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Events() != 2 {
		t.Errorf("Events() = %d, want limit 2", w.Events())
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("capped output is not valid JSON: %v", err)
	}
}

func TestChromeTraceWriterCloseIdempotent(t *testing.T) {
	var buf bytes.Buffer
	w := NewChromeTraceWriter(&buf, 0)
	w.Sink()(sim.TraceEvent{Cat: "c", Name: "n"})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	n := buf.Len()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != n {
		t.Errorf("second Close wrote %d more bytes", buf.Len()-n)
	}
	// Events after Close are dropped, not appended to a closed document.
	w.Sink()(sim.TraceEvent{Cat: "c", Name: "late"})
	if buf.Len() != n {
		t.Errorf("event after Close wrote %d bytes", buf.Len()-n)
	}
}

// TestCollectSmoke runs a real single-host read workload and checks the
// snapshot covers every layer of the tree with sane values.
func TestCollectSmoke(t *testing.T) {
	eng := sim.NewEngine()
	c := cluster.NewIOCluster(eng, cluster.DefaultIOClusterConfig())
	const size = 64 << 10
	c.Store(0).AddFile(&iodev.File{Name: "f", Size: size})
	c.Start()
	tl := StartTimelines(c, 10*sim.Microsecond)
	var end sim.Time
	eng.Spawn("app", func(p *sim.Proc) {
		h := c.Host(0)
		tok := h.IssueRead(p, cluster.StoreIDBase, "f", 0, size, 0)
		h.WaitRead(p, tok)
		end = p.Now()
		tl.Stop()
	})
	eng.Run()
	s := Collect(c, end)
	tl.Into(s)

	if got := s.Get("cluster/elapsed_s"); got != end.Seconds() {
		t.Errorf("cluster/elapsed_s = %g, want %g", got, end.Seconds())
	}
	for _, name := range []string{
		"h0/nic/bytes_in", "h0/io/requests", "h0/cpu/busy_ps",
		"d0/disk/reads", "d0/disk/bytes_read", "sw0/routed",
	} {
		if s.Get(name) <= 0 {
			t.Errorf("%s = %g, want > 0", name, s.Get(name))
		}
	}
	if got := s.Get("d0/disk/bytes_read"); got != size {
		t.Errorf("d0/disk/bytes_read = %g, want %d", got, size)
	}
	// Port 0 wires host 0; its downlink carried the payload.
	if u := s.Get("sw0/port0/out/util"); u <= 0 || u > 1 {
		t.Errorf("sw0/port0/out/util = %g, want in (0, 1]", u)
	}
	// Structural keys exist even when the counter is zero.
	for _, name := range []string{
		"h0/l2/accesses", "h0/mem/accesses", "sw0/cpu0/atb/hits",
		"sw0/max_queue_depth", "h0/tlb/walks",
	} {
		if _, ok := s.Values[name]; !ok {
			t.Errorf("missing metric %s", name)
		}
	}
	for _, name := range []string{"timeline/link_util", "timeline/queue_depth", "timeline/io_mbps"} {
		series, ok := s.Series[name]
		if !ok || len(series.X) == 0 {
			t.Errorf("missing timeline %s", name)
			continue
		}
		if len(series.X) != len(series.Y) {
			t.Errorf("%s: len(X)=%d len(Y)=%d", name, len(series.X), len(series.Y))
		}
	}
	// JSON round-trip stays deterministic: two marshals are byte-identical.
	d1, err1 := json.Marshal(s)
	d2, err2 := json.Marshal(s)
	if err1 != nil || err2 != nil || !bytes.Equal(d1, d2) {
		t.Errorf("snapshot marshal not deterministic (%v, %v)", err1, err2)
	}
}
