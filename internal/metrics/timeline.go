package metrics

import (
	"activesan/internal/cluster"
	"activesan/internal/san"
	"activesan/internal/sim"
)

// DefaultTimelineInterval is the sampling period for cluster timelines:
// fine enough for a few hundred points across the golden-scale workloads.
const DefaultTimelineInterval = 250 * sim.Microsecond

// maxTimelineSamples bounds each timeline so very long runs (scale 1) keep
// snapshots a fixed size. A timeline reaching the cap is decimated: every
// other sample is dropped and the interval doubles, so sampling covers the
// whole run at progressively coarser resolution instead of silently ending
// at the cap.
const maxTimelineSamples = 512

// Timelines samples cluster-wide gauges at a fixed simulated interval
// while a workload runs:
//
//	timeline/link_util    mean link utilization over the last interval
//	timeline/queue_depth  packets sitting in switch output queues
//	timeline/io_mbps      NIC bytes moved in the last interval, MB/s
//
// Start them after cluster.Start, Stop them the moment the workload
// finishes (a live sampler keeps the event queue non-empty), then fold the
// series into a snapshot with Into.
type Timelines struct {
	samplers map[string]*sim.Sampler
}

// StartTimelines begins sampling the standard gauges every interval.
func StartTimelines(c *cluster.Cluster, interval sim.Time) *Timelines {
	t := &Timelines{samplers: make(map[string]*sim.Sampler)}

	var links []*san.Link
	for _, sw := range c.Switches {
		for i := 0; i < sw.Config().Ports; i++ {
			port := sw.Port(i)
			if port.In != nil {
				links = append(links, port.In)
			}
			if port.Out != nil {
				links = append(links, port.Out)
			}
		}
	}
	prevBusy := sim.Time(0)
	t.start(c, "timeline/link_util", interval, func(iv sim.Time) float64 {
		total := sim.Time(0)
		for _, l := range links {
			total += l.BusyTime()
		}
		d := total - prevBusy
		prevBusy = total
		if len(links) == 0 {
			return 0
		}
		return float64(d) / (float64(iv) * float64(len(links)))
	})

	t.start(c, "timeline/queue_depth", interval, func(sim.Time) float64 {
		n := 0
		for _, sw := range c.Switches {
			n += sw.QueuedPackets()
		}
		return float64(n)
	})

	prevBytes := int64(0)
	t.start(c, "timeline/io_mbps", interval, func(iv sim.Time) float64 {
		total := int64(0)
		for _, h := range c.Hosts {
			total += h.Traffic()
		}
		d := total - prevBytes
		prevBytes = total
		return float64(d) / iv.Seconds() / 1e6
	})

	// Fault timelines exist only when a fault plan is armed, so zero-fault
	// snapshots keep exactly the three standard series.
	if fc := c.FaultCounts; fc != nil {
		t.start(c, "timeline/fault_injected", interval, func(sim.Time) float64 {
			injected, _ := fc()
			return float64(injected)
		})
		t.start(c, "timeline/retry_recovered", interval, func(sim.Time) float64 {
			_, recovered := fc()
			return float64(recovered)
		})
	}
	return t
}

// start wires one sampled gauge. fn receives the interval that elapsed
// since the previous sample — the rate-series denominator — because
// decimation doubles it mid-run: once the series would exceed
// maxTimelineSamples, it is decimated in place (2x coarser, same span) and
// sampling continues at the doubled interval instead of stopping.
func (t *Timelines) start(c *cluster.Cluster, name string, interval sim.Time, fn func(iv sim.Time) float64) {
	var s *sim.Sampler
	sample := func() float64 {
		// The value first (its window was covered by the current interval),
		// then the decimation, then the sampler appends the pair — which
		// lands on the doubled grid.
		v := fn(s.Interval())
		if s.N() >= maxTimelineSamples-1 {
			s.Decimate()
		}
		return v
	}
	if c.Group != nil {
		// Partitioned cluster: sample at barrier epochs, where every engine
		// sits at one coherent virtual instant, so a gauge that reads the
		// whole fabric (all switches' queues, all links' busy time) never
		// observes a partition mid-window. The epoch grid is the same
		// k*interval grid the serial sampler walks, so timelines are
		// identical at any partition count.
		s = c.Group.StartSampler(interval, sample)
	} else {
		s = sim.StartSampler(c.Eng, interval, sample)
	}
	t.samplers[name] = s
}

// Stop ends every timeline immediately.
func (t *Timelines) Stop() {
	for _, s := range t.samplers {
		s.Stop()
	}
}

// Into folds the sampled series into a snapshot.
func (t *Timelines) Into(s *Snapshot) {
	for name, smp := range t.samplers {
		s.SetSeries(name, smp.X, smp.Y)
	}
}
