package metrics

import (
	"activesan/internal/cluster"
	"activesan/internal/san"
	"activesan/internal/sim"
)

// DefaultTimelineInterval is the sampling period for cluster timelines:
// fine enough for a few hundred points across the golden-scale workloads.
const DefaultTimelineInterval = 250 * sim.Microsecond

// maxTimelineSamples bounds each timeline so very long runs (scale 1) keep
// snapshots a fixed size; a timeline that hits the cap simply ends there.
const maxTimelineSamples = 512

// Timelines samples cluster-wide gauges at a fixed simulated interval
// while a workload runs:
//
//	timeline/link_util    mean link utilization over the last interval
//	timeline/queue_depth  packets sitting in switch output queues
//	timeline/io_mbps      NIC bytes moved in the last interval, MB/s
//
// Start them after cluster.Start, Stop them the moment the workload
// finishes (a live sampler keeps the event queue non-empty), then fold the
// series into a snapshot with Into.
type Timelines struct {
	samplers map[string]*sim.Sampler
}

// StartTimelines begins sampling the standard gauges every interval.
func StartTimelines(c *cluster.Cluster, interval sim.Time) *Timelines {
	t := &Timelines{samplers: make(map[string]*sim.Sampler)}

	var links []*san.Link
	for _, sw := range c.Switches {
		for i := 0; i < sw.Config().Ports; i++ {
			port := sw.Port(i)
			if port.In != nil {
				links = append(links, port.In)
			}
			if port.Out != nil {
				links = append(links, port.Out)
			}
		}
	}
	prevBusy := sim.Time(0)
	t.start(c, "timeline/link_util", interval, func() float64 {
		total := sim.Time(0)
		for _, l := range links {
			total += l.BusyTime()
		}
		d := total - prevBusy
		prevBusy = total
		if len(links) == 0 {
			return 0
		}
		return float64(d) / (float64(interval) * float64(len(links)))
	})

	t.start(c, "timeline/queue_depth", interval, func() float64 {
		n := 0
		for _, sw := range c.Switches {
			n += sw.QueuedPackets()
		}
		return float64(n)
	})

	prevBytes := int64(0)
	t.start(c, "timeline/io_mbps", interval, func() float64 {
		total := int64(0)
		for _, h := range c.Hosts {
			total += h.Traffic()
		}
		d := total - prevBytes
		prevBytes = total
		return float64(d) / interval.Seconds() / 1e6
	})

	// Fault timelines exist only when a fault plan is armed, so zero-fault
	// snapshots keep exactly the three standard series.
	if fc := c.FaultCounts; fc != nil {
		t.start(c, "timeline/fault_injected", interval, func() float64 {
			injected, _ := fc()
			return float64(injected)
		})
		t.start(c, "timeline/retry_recovered", interval, func() float64 {
			_, recovered := fc()
			return float64(recovered)
		})
	}
	return t
}

func (t *Timelines) start(c *cluster.Cluster, name string, interval sim.Time, fn func() float64) {
	var s *sim.Sampler
	s = sim.StartSampler(c.Eng, interval, func() float64 {
		if s.N()+1 >= maxTimelineSamples {
			s.Stop()
		}
		return fn()
	})
	t.samplers[name] = s
}

// Stop ends every timeline immediately.
func (t *Timelines) Stop() {
	for _, s := range t.samplers {
		s.Stop()
	}
}

// Into folds the sampled series into a snapshot.
func (t *Timelines) Into(s *Snapshot) {
	for name, smp := range t.samplers {
		s.SetSeries(name, smp.X, smp.Y)
	}
}
