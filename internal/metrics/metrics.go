// Package metrics is the unified observability registry for the simulated
// cluster. Every hardware substrate (caches, TLBs, NICs, links, switches,
// active-switch CPUs, RDRAM channels, disks) already keeps private
// counters; this package walks a finished cluster and snapshots all of
// them into one flat, "/"-separated namespace —
//
//	h0/l2/misses            sw0/port1/out/bytes
//	h0/mem/bus_util         sw0/handler/mpeg-filter/invocations
//	d0/disk/seeks           sw0/cpu0/atb/hit_rate
//
// — plus derived gauges (utilizations over the workload's elapsed time,
// miss and hit rates) and fixed-interval time-series sampled while the
// workload runs. Snapshots are embedded in stats.Run values, so the golden
// result suite pins every secondary metric, and sandiff reports drift in
// any of them.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series is one fixed-interval timeline: X holds sample times in seconds,
// Y the sampled values.
type Series struct {
	X []float64 `json:"x"`
	Y []float64 `json:"y"`
}

// Snapshot is one harvest of the whole cluster. Values is the flat metric
// tree; Series holds the timelines. Both marshal deterministically
// (encoding/json sorts map keys), which is what lets golden files pin a
// snapshot byte-for-byte.
type Snapshot struct {
	Values map[string]float64 `json:"values"`
	Series map[string]Series  `json:"series,omitempty"`
}

// NewSnapshot returns an empty snapshot.
func NewSnapshot() *Snapshot {
	return &Snapshot{Values: make(map[string]float64)}
}

// Set records name = v.
func (s *Snapshot) Set(name string, v float64) { s.Values[name] = v }

// SetInt records an integer counter.
func (s *Snapshot) SetInt(name string, v int64) { s.Values[name] = float64(v) }

// Add accumulates v into name.
func (s *Snapshot) Add(name string, v float64) { s.Values[name] += v }

// Get returns the value of name, or 0 if absent.
func (s *Snapshot) Get(name string) float64 { return s.Values[name] }

// SetSeries attaches a timeline.
func (s *Snapshot) SetSeries(name string, x, y []float64) {
	if len(x) == 0 {
		return
	}
	if s.Series == nil {
		s.Series = make(map[string]Series)
	}
	s.Series[name] = Series{X: x, Y: y}
}

// Merge folds o into s: values accumulate, series copy over (last writer
// wins on a name collision). Merging a nil or empty snapshot — e.g. a
// component tree that recorded nothing — is a no-op.
func (s *Snapshot) Merge(o *Snapshot) {
	if o == nil {
		return
	}
	for name, v := range o.Values {
		s.Values[name] += v
	}
	for name, sr := range o.Series {
		s.SetSeries(name, sr.X, sr.Y)
	}
}

// Names returns every metric name in sorted order.
func (s *Snapshot) Names() []string {
	names := make([]string, 0, len(s.Values))
	for n := range s.Values {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Format renders the snapshot as sorted "name = value" lines.
func (s *Snapshot) Format() string {
	var b strings.Builder
	for _, n := range s.Names() {
		fmt.Fprintf(&b, "%s = %g\n", n, s.Values[n])
	}
	return b.String()
}

// ratio returns num/den, or 0 when den is 0 — the convention every derived
// rate in the tree follows.
func ratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}

// maxWith scans values whose name contains infix ("" matches all) and has
// the given suffix, returning the largest with its name.
func (s *Snapshot) maxWith(infix, suffix string) (name string, v float64, ok bool) {
	for _, n := range s.Names() {
		if strings.Contains(n, infix) && strings.HasSuffix(n, suffix) {
			if !ok || s.Values[n] > v {
				name, v, ok = n, s.Values[n], true
			}
		}
	}
	return name, v, ok
}

// sumWith totals values whose name contains infix and ends with suffix.
func (s *Snapshot) sumWith(infix, suffix string) float64 {
	total := 0.0
	for n, v := range s.Values {
		if strings.Contains(n, infix) && strings.HasSuffix(n, suffix) {
			total += v
		}
	}
	return total
}

// Summary distills the snapshot into a handful of headline lines for the
// figure/table output: the busiest link, aggregate cache and ATB behaviour,
// memory-bus pressure, and switch-queue extremes.
func (s *Snapshot) Summary() []string {
	var out []string
	if name, v, ok := s.maxWith("/port", "/util"); ok {
		out = append(out, fmt.Sprintf("link util max %.1f%% (%s)", 100*v, strings.TrimSuffix(name, "/util")))
	}
	if acc := s.sumWith("/l2/", "/accesses"); acc > 0 {
		out = append(out, fmt.Sprintf("L2 miss %.2f%%", 100*s.sumWith("/l2/", "/misses")/acc))
	}
	if hits, misses := s.sumWith("/atb/", "/hits"), s.sumWith("/atb/", "/misses"); hits+misses > 0 {
		out = append(out, fmt.Sprintf("ATB hit %.2f%%", 100*hits/(hits+misses)))
	}
	if name, v, ok := s.maxWith("", "/mem/bus_util"); ok {
		out = append(out, fmt.Sprintf("mem bus util max %.1f%% (%s)", 100*v, strings.TrimSuffix(name, "/mem/bus_util")))
	}
	if name, v, ok := s.maxWith("", "/max_queue_depth"); ok && v > 0 {
		out = append(out, fmt.Sprintf("switch queue max %d (%s)", int64(v), strings.TrimSuffix(name, "/max_queue_depth")))
	}
	return out
}

// Drift is one metric whose value moved by more than a threshold between
// two snapshots.
type Drift struct {
	Name     string
	Before   float64
	After    float64
	DeltaPct float64
}

func (d Drift) String() string {
	return fmt.Sprintf("%s %g -> %g (%+.2f%%)", d.Name, d.Before, d.After, d.DeltaPct)
}

// Diff compares two snapshots and returns every shared metric whose
// relative change exceeds thresholdPct, largest drift first (ties broken
// by name for determinism). Metrics present on only one side are ignored —
// topology changes show up elsewhere.
func Diff(before, after *Snapshot, thresholdPct float64) []Drift {
	if before == nil || after == nil {
		return nil
	}
	var out []Drift
	for name, b := range before.Values {
		a, ok := after.Values[name]
		if !ok || b == 0 {
			continue
		}
		d := 100 * (a - b) / b
		if math.Abs(d) > thresholdPct {
			out = append(out, Drift{Name: name, Before: b, After: a, DeltaPct: d})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		di, dj := math.Abs(out[i].DeltaPct), math.Abs(out[j].DeltaPct)
		if di != dj {
			return di > dj
		}
		return out[i].Name < out[j].Name
	})
	return out
}
