package metrics

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"

	"activesan/internal/sim"
)

// ChromeTraceWriter streams typed trace events as a Chrome trace-event
// JSON file ("JSON Array Format" with a traceEvents wrapper), loadable by
// Perfetto (https://ui.perfetto.dev) and chrome://tracing. Each emitting
// component becomes a named thread; events are instants on that thread's
// timeline with the category carried through for filtering.
//
// The writer locks internally: engines running in parallel all funnel into
// one file. Install it with sim.SetDefaultTraceSink(w.Sink()) and Close it
// after the last engine finishes.
type ChromeTraceWriter struct {
	mu     sync.Mutex
	bw     *bufio.Writer
	closer io.Closer
	tids   map[string]int
	events int64
	limit  int64
	first  bool
	closed bool
}

// chromeEvent is one trace-event record; field names are the format's.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	Scope string         `json:"s,omitempty"`
	TS    float64        `json:"ts"`            // microseconds
	Dur   float64        `json:"dur,omitempty"` // microseconds, "X" phase only
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// NewChromeTraceWriter starts a trace file on w. limit caps the number of
// trace events written (0 = unlimited); events past the cap are dropped
// silently, keeping bounded files for long runs. If w is also an
// io.Closer, Close closes it.
func NewChromeTraceWriter(w io.Writer, limit int64) *ChromeTraceWriter {
	c := &ChromeTraceWriter{
		bw:    bufio.NewWriter(w),
		tids:  make(map[string]int),
		limit: limit,
		first: true,
	}
	if cl, ok := w.(io.Closer); ok {
		c.closer = cl
	}
	c.bw.WriteString(`{"traceEvents":[`)
	return c
}

// Sink returns the typed trace sink to install on engines.
func (c *ChromeTraceWriter) Sink() sim.TraceSink {
	return func(ev sim.TraceEvent) { c.emit(ev) }
}

func (c *ChromeTraceWriter) emit(ev sim.TraceEvent) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || (c.limit > 0 && c.events >= c.limit) {
		return
	}
	c.events++
	c.write(chromeEvent{
		Name:  ev.Name,
		Cat:   ev.Cat,
		Phase: "i",
		Scope: "t",
		TS:    float64(ev.At) / 1e6, // picoseconds -> microseconds
		TID:   c.tidFor(ev.Comp),
		Args:  map[string]any{"detail": ev.Detail},
	})
}

// Span writes one complete duration event ("X" phase) on comp's thread —
// the telemetry recorder's Perfetto span export for per-hop latency.
func (c *ChromeTraceWriter) Span(comp, name, cat string, start, dur sim.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || (c.limit > 0 && c.events >= c.limit) {
		return
	}
	c.events++
	c.write(chromeEvent{
		Name:  name,
		Cat:   cat,
		Phase: "X",
		TS:    float64(start) / 1e6, // picoseconds -> microseconds
		Dur:   float64(dur) / 1e6,
		TID:   c.tidFor(comp),
	})
}

// tidFor returns comp's thread id, writing its metadata record on first
// use; caller holds the lock.
func (c *ChromeTraceWriter) tidFor(comp string) int {
	if comp == "" {
		comp = "sim"
	}
	tid, ok := c.tids[comp]
	if !ok {
		tid = len(c.tids) + 1
		c.tids[comp] = tid
		c.write(chromeEvent{
			Name:  "thread_name",
			Phase: "M",
			TID:   tid,
			Args:  map[string]any{"name": comp},
		})
	}
	return tid
}

// write appends one record; caller holds the lock.
func (c *ChromeTraceWriter) write(ev chromeEvent) {
	data, err := json.Marshal(ev)
	if err != nil {
		return // a map[string]any of strings cannot fail; keep the stream intact
	}
	if !c.first {
		c.bw.WriteByte(',')
	}
	c.first = false
	c.bw.Write(data)
}

// Events reports how many (non-metadata) events were written.
func (c *ChromeTraceWriter) Events() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.events
}

// Close terminates the JSON document and flushes (and closes the
// underlying file, when it is one). Safe to call once.
func (c *ChromeTraceWriter) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	c.bw.WriteString("]}\n")
	err := c.bw.Flush()
	if c.closer != nil {
		if cerr := c.closer.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
