package metrics

import (
	"bytes"
	"encoding/json"
	"testing"

	"activesan/internal/cluster"
	"activesan/internal/sim"
)

func TestChromeTraceWriterZeroEvents(t *testing.T) {
	// A writer closed without a single event must still be a loadable
	// trace document, not a truncated fragment.
	var buf bytes.Buffer
	w := NewChromeTraceWriter(&buf, 0)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("zero-event trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 0 {
		t.Fatalf("zero-event trace holds %d events", len(doc.TraceEvents))
	}
}

func TestChromeTraceWriterSpan(t *testing.T) {
	var buf bytes.Buffer
	w := NewChromeTraceWriter(&buf, 0)
	w.Span("sw0", "wire", "telemetry", 2*sim.Microsecond, 3*sim.Microsecond)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string  `json:"name"`
			Cat   string  `json:"cat"`
			Phase string  `json:"ph"`
			TS    float64 `json:"ts"`
			Dur   float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("span trace invalid: %v\n%s", err, buf.String())
	}
	// One thread_name metadata record plus the span itself.
	var found bool
	for _, ev := range doc.TraceEvents {
		if ev.Phase == "X" {
			found = true
			if ev.Name != "wire" || ev.Cat != "telemetry" || ev.TS != 2 || ev.Dur != 3 {
				t.Fatalf("span = %+v, want wire/telemetry at ts=2us dur=3us", ev)
			}
		}
	}
	if !found {
		t.Fatalf("no X-phase span in %s", buf.String())
	}
	// Spans past the limit are dropped silently.
	var buf2 bytes.Buffer
	w2 := NewChromeTraceWriter(&buf2, 1)
	w2.Span("a", "x", "c", 0, 1)
	w2.Span("a", "y", "c", 0, 1)
	if w2.Events() != 1 {
		t.Fatalf("events past limit = %d, want 1", w2.Events())
	}
	w2.Close()
}

// runTimelineWorkload builds a minimal cluster, samples timelines at
// interval for the given simulated duration, and returns them.
func runTimelineWorkload(t *testing.T, interval, dur sim.Time) *Timelines {
	t.Helper()
	eng := sim.NewEngine()
	c := cluster.NewIOCluster(eng, cluster.DefaultIOClusterConfig())
	c.Start()
	tl := StartTimelines(c, interval)
	eng.Spawn("app", func(p *sim.Proc) {
		p.Sleep(dur)
		tl.Stop()
	})
	eng.Run()
	c.Shutdown()
	return tl
}

func TestTimelineDecimatesInsteadOfStopping(t *testing.T) {
	// A run long enough for 4x maxTimelineSamples ticks must keep sampling
	// to the end at a coarser interval — the cap previously halted the
	// timeline silently at sample 512.
	const interval = 10 * sim.Microsecond
	dur := sim.Time(4*maxTimelineSamples) * interval
	tl := runTimelineWorkload(t, interval, dur)
	for name, s := range tl.samplers {
		if s.N() == 0 || s.N() >= maxTimelineSamples {
			t.Fatalf("%s: %d samples, want in [1, %d)", name, s.N(), maxTimelineSamples)
		}
		if s.Interval() <= interval {
			t.Fatalf("%s: interval %v never doubled over a %v run", name, s.Interval(), dur)
		}
		// Sampling must cover the whole run, not stop at the old cap.
		last := s.X[s.N()-1]
		if covered := last / dur.Seconds(); covered < 0.9 {
			t.Fatalf("%s: last sample at %gs of %v — timeline ended early", name, last, dur)
		}
		step := s.Interval().Seconds()
		for i := 1; i < s.N(); i++ {
			if d := s.X[i] - s.X[i-1]; d < step*0.999 || d > step*1.001 {
				t.Fatalf("%s: spacing %g at %d, want %g", name, d, i, step)
			}
		}
	}
}

func TestTimelineShortRunUndecimated(t *testing.T) {
	// Short runs never hit the cap: interval and sample times unchanged, so
	// existing goldens are untouched by the decimation change.
	// The half-interval tail keeps Stop clear of the 50th tick (a stop on
	// the exact boundary wins over the sample).
	const interval = 10 * sim.Microsecond
	tl := runTimelineWorkload(t, interval, 50*interval+interval/2)
	for name, s := range tl.samplers {
		if s.Interval() != interval {
			t.Fatalf("%s: interval %v changed on a short run", name, s.Interval())
		}
		if s.N() != 50 {
			t.Fatalf("%s: %d samples, want 50", name, s.N())
		}
	}
}

func TestTimelineStopThenRestart(t *testing.T) {
	// Stop is terminal for a Timelines set, but a fresh set on the same
	// cluster pattern starts clean — the Stop/restart cycle sweep harnesses
	// use between runs. Stop must also be idempotent.
	eng := sim.NewEngine()
	c := cluster.NewIOCluster(eng, cluster.DefaultIOClusterConfig())
	c.Start()
	tl1 := StartTimelines(c, 10*sim.Microsecond)
	tl2 := (*Timelines)(nil)
	eng.Spawn("app", func(p *sim.Proc) {
		p.Sleep(100 * sim.Microsecond)
		tl1.Stop()
		tl1.Stop() // idempotent
		tl2 = StartTimelines(c, 10*sim.Microsecond)
		p.Sleep(55 * sim.Microsecond)
		tl2.Stop()
	})
	end := eng.Run()
	c.Shutdown()
	if end != 155*sim.Microsecond {
		t.Fatalf("run ended at %v, want 155us — a stopped sampler held the queue open", end)
	}
	s1, s2 := NewSnapshot(), NewSnapshot()
	tl1.Into(s1)
	tl2.Into(s2)
	if len(s1.Series) == 0 || len(s2.Series) == 0 {
		t.Fatalf("series missing: first %d, second %d", len(s1.Series), len(s2.Series))
	}
	for name, sr := range s2.Series {
		if n := len(sr.X); n != 5 {
			t.Fatalf("restarted %s took %d samples, want 5", name, n)
		}
		if sr.X[0] <= (100 * sim.Microsecond).Seconds() {
			t.Fatalf("restarted %s sampled at %gs, before its own start", name, sr.X[0])
		}
	}
}
