package metrics

import (
	"fmt"

	"activesan/internal/aswitch"
	"activesan/internal/cache"
	"activesan/internal/cluster"
	"activesan/internal/cpu"
	"activesan/internal/memsys"
	"activesan/internal/san"
	"activesan/internal/sim"
)

// Collect walks every component of a finished cluster and snapshots its
// counters under the component's name. elapsed is the workload's end time;
// all derived utilizations divide by it (not the engine clock, which may
// sit past the workload's end once the queue drains).
func Collect(c *cluster.Cluster, elapsed sim.Time) *Snapshot {
	s := NewSnapshot()
	s.Set("cluster/elapsed_s", elapsed.Seconds())
	for _, h := range c.Hosts {
		name := h.Name()
		addCPU(s, name+"/cpu", h.CPU(), elapsed)
		addHier(s, name, h.CPU().Hier())
		addMem(s, name+"/mem", h.Mem(), elapsed)
		ns := h.NIC().Stats()
		s.SetInt(name+"/nic/packets_in", ns.PacketsIn)
		s.SetInt(name+"/nic/packets_out", ns.PacketsOut)
		s.SetInt(name+"/nic/bytes_in", ns.BytesIn)
		s.SetInt(name+"/nic/bytes_out", ns.BytesOut)
		s.SetInt(name+"/nic/messages_in", ns.MessagesIn)
		s.SetInt(name+"/nic/messages_out", ns.MessagesOut)
		reqs, bytes := h.IOStats()
		s.SetInt(name+"/io/requests", reqs)
		s.SetInt(name+"/io/bytes", bytes)
	}
	for _, d := range c.Stores {
		name := d.Name()
		ds := d.Stats()
		s.SetInt(name+"/disk/reads", ds.Reads)
		s.SetInt(name+"/disk/writes", ds.Writes)
		s.SetInt(name+"/disk/bytes_read", ds.BytesRead)
		s.SetInt(name+"/disk/bytes_written", ds.BytesWritten)
		s.SetInt(name+"/disk/seeks", ds.Seeks)
		s.SetInt(name+"/disk/sequential", ds.Sequential)
		s.SetInt(name+"/disk/filtered_bytes", ds.FilteredBytes)
	}
	for _, sw := range c.Switches {
		addSwitch(s, sw, elapsed)
	}
	// Fault and reliability metrics only exist when a fault plan is armed
	// (an ExtraMetrics hook is installed), so zero-fault snapshots — and
	// therefore the goldens — are byte-identical to the lossless model. The
	// lone exception: unroutable-packet drops always surface, because a
	// silent no-route drop is a configuration bug.
	var noRoute int64
	for _, sw := range c.Switches {
		noRoute += sw.Stats().NoRouteDrops
	}
	armed := c.ExtraMetrics != nil
	if armed || noRoute > 0 {
		s.SetInt("fault/no_route_drops", noRoute)
	}
	if armed {
		c.ExtraMetrics(func(name string, v float64) { s.Set(name, v) })
		addReliability(s, c)
	}
	return s
}

// addReliability harvests the per-component fault and retransmission
// counters. Only called with a fault plan armed.
func addReliability(s *Snapshot, c *cluster.Cluster) {
	for _, h := range c.Hosts {
		tx, rx := h.NIC().RelStats()
		addRetx(s, h.Name()+"/retry", tx, rx)
	}
	for _, d := range c.Stores {
		tx, rx := d.RelStats()
		addRetx(s, d.Name()+"/retry", tx, rx)
		s.SetInt(d.Name()+"/disk/retries", d.Stats().DiskRetries)
	}
	for _, sw := range c.Switches {
		name := sw.Name()
		ss := sw.Stats()
		s.SetInt(name+"/fault/no_route_drops", ss.NoRouteDrops)
		s.SetInt(name+"/fault/rerouted", ss.Rerouted)
		s.SetInt(name+"/fault/corrupt_drops", ss.CorruptDrops)
		cs := sw.CrashStatsCopy()
		s.SetInt(name+"/fault/crashes", cs.Crashes)
		s.SetInt(name+"/fault/restarts", cs.Restarts)
		s.SetInt(name+"/fault/aborted_handlers", cs.Aborted)
		s.SetInt(name+"/fault/rejected_invocations", cs.Rejected)
		s.SetInt(name+"/fault/data_dropped_while_crashed", cs.DataDropped)
		for i := 0; i < sw.Config().Ports; i++ {
			port := sw.Port(i)
			if port.In != nil {
				addLinkFaults(s, fmt.Sprintf("%s/port%d/in", name, i), port.In)
			}
			if port.Out != nil {
				addLinkFaults(s, fmt.Sprintf("%s/port%d/out", name, i), port.Out)
			}
		}
	}
}

func addRetx(s *Snapshot, prefix string, tx san.TxStats, rx san.RxStats) {
	s.SetInt(prefix+"/tracked", tx.Tracked)
	s.SetInt(prefix+"/retransmits", tx.Retransmits)
	s.SetInt(prefix+"/timeout_retx", tx.TimeoutRetx)
	s.SetInt(prefix+"/nak_retx", tx.NakRetx)
	s.SetInt(prefix+"/acks_seen", tx.AcksSeen)
	s.SetInt(prefix+"/abandoned", tx.Abandoned)
	s.SetInt(prefix+"/delivered", rx.Delivered)
	s.SetInt(prefix+"/duplicates", rx.Duplicates)
	s.SetInt(prefix+"/acks_sent", rx.AcksSent)
	s.SetInt(prefix+"/naks_sent", rx.NaksSent)
	s.SetInt(prefix+"/corrupt_dropped", rx.CorruptDropped)
}

func addLinkFaults(s *Snapshot, prefix string, l *san.Link) {
	ls := l.Stats()
	s.SetInt(prefix+"/fault_dropped", ls.Dropped)
	s.SetInt(prefix+"/fault_corrupted", ls.Corrupted)
	s.SetInt(prefix+"/fault_delayed", ls.Delayed)
}

// addSwitch harvests the base switch, its ports, the active hardware, the
// embedded CPUs (with ATBs and caches) and the per-handler counters.
func addSwitch(s *Snapshot, sw *aswitch.ActiveSwitch, elapsed sim.Time) {
	name := sw.Name()
	ss := sw.Stats()
	s.SetInt(name+"/routed", ss.Routed)
	s.SetInt(name+"/local", ss.Local)
	s.SetInt(name+"/dropped", ss.Dropped)
	s.SetInt(name+"/max_queue_depth", int64(ss.MaxQueueDepth))
	s.SetInt(name+"/min_pool_free", int64(ss.MinPoolFree))
	for i := 0; i < sw.Config().Ports; i++ {
		port := sw.Port(i)
		if port.In != nil {
			addLink(s, fmt.Sprintf("%s/port%d/in", name, i), port.In, elapsed)
		}
		if port.Out != nil {
			addLink(s, fmt.Sprintf("%s/port%d/out", name, i), port.Out, elapsed)
		}
	}
	as := sw.ActiveStats()
	s.SetInt(name+"/active/packets_admitted", as.PacketsAdmitted)
	s.SetInt(name+"/active/invocations", as.Invocations)
	s.SetInt(name+"/active/messages_sent", as.MessagesSent)
	s.SetInt(name+"/active/packets_sent", as.PacketsSent)
	s.SetInt(name+"/active/bytes_sent", as.BytesSent)
	s.SetInt(name+"/active/unregistered", as.Unregistered)
	addMem(s, name+"/mem", sw.Mem(), elapsed)
	for _, sc := range sw.CPUs() {
		prefix := fmt.Sprintf("%s/cpu%d", name, sc.ID())
		addCPU(s, prefix, sc.Timing(), elapsed)
		addHier(s, prefix, sc.Timing().Hier())
		s.SetInt(prefix+"/runs", sc.Runs())
		hits, misses := sc.ATB().Stats()
		s.SetInt(prefix+"/atb/hits", hits)
		s.SetInt(prefix+"/atb/misses", misses)
		s.Set(prefix+"/atb/hit_rate", ratio(float64(hits), float64(hits+misses)))
	}
	for _, h := range sw.Handlers() {
		hs := sw.HandlerStatsFor(h.ID)
		prefix := name + "/handler/" + h.Name
		s.SetInt(prefix+"/invocations", hs.Invocations)
		s.SetInt(prefix+"/messages_sent", hs.MessagesSent)
		s.SetInt(prefix+"/bytes_sent", hs.BytesSent)
	}
}

func addLink(s *Snapshot, prefix string, l *san.Link, elapsed sim.Time) {
	ls := l.Stats()
	s.SetInt(prefix+"/packets", ls.Packets)
	s.SetInt(prefix+"/bytes", ls.Bytes)
	s.Set(prefix+"/util", ratio(float64(l.BusyTime()), float64(elapsed)))
}

func addCPU(s *Snapshot, prefix string, c *cpu.CPU, elapsed sim.Time) {
	b := c.Breakdown()
	s.SetInt(prefix+"/busy_ps", int64(b.Busy))
	s.SetInt(prefix+"/stall_ps", int64(b.Stall))
	s.Set(prefix+"/util", ratio(float64(b.Busy), float64(elapsed)))
	loads, stores, prefetches := c.Counts()
	s.SetInt(prefix+"/loads", loads)
	s.SetInt(prefix+"/stores", stores)
	s.SetInt(prefix+"/prefetches", prefetches)
}

func addHier(s *Snapshot, prefix string, h *cache.Hierarchy) {
	addCache(s, prefix+"/l1i", h.L1I())
	addCache(s, prefix+"/l1d", h.L1D())
	addCache(s, prefix+"/l2", h.L2())
	addTLB(s, prefix+"/itlb", h.ITLB())
	addTLB(s, prefix+"/dtlb", h.DTLB())
	s.SetInt(prefix+"/tlb/walks", h.TLBWalks())
}

func addCache(s *Snapshot, prefix string, c *cache.Cache) {
	if c == nil {
		return
	}
	cs := c.Stats()
	s.SetInt(prefix+"/accesses", cs.Accesses)
	s.SetInt(prefix+"/hits", cs.Hits)
	s.SetInt(prefix+"/misses", cs.Misses)
	s.SetInt(prefix+"/evictions", cs.Evictions)
	s.SetInt(prefix+"/writebacks", cs.Writebacks)
	s.Set(prefix+"/miss_rate", cs.MissRate())
}

func addTLB(s *Snapshot, prefix string, t *cache.TLB) {
	if t == nil {
		return
	}
	ts := t.Stats()
	s.SetInt(prefix+"/accesses", ts.Accesses)
	s.SetInt(prefix+"/hits", ts.Hits)
	s.SetInt(prefix+"/misses", ts.Misses)
	s.Set(prefix+"/miss_rate", ts.MissRate())
}

func addMem(s *Snapshot, prefix string, m *memsys.RDRAM, elapsed sim.Time) {
	ms := m.Stats()
	s.SetInt(prefix+"/accesses", ms.Accesses)
	s.SetInt(prefix+"/page_hits", ms.PageHits)
	s.SetInt(prefix+"/page_misses", ms.PageMisse)
	s.SetInt(prefix+"/bytes", ms.Bytes)
	s.Set(prefix+"/bus_util", ratio(float64(m.BusBusyTime()), float64(elapsed)))
}
