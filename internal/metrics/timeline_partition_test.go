package metrics_test

// Timelines on a partitioned cluster sample at barrier epochs, where every
// engine sits at one coherent virtual instant; the epoch grid matches the
// serial sampler's, so the sampled series must be byte-identical at any
// partition count. External test package: the workload drives a cluster,
// which metrics imports.

import (
	"reflect"
	"testing"

	"activesan/internal/cluster"
	"activesan/internal/metrics"
	"activesan/internal/san"
	"activesan/internal/sim"
)

func timelineRun(t *testing.T, nparts int) map[string]metrics.Series {
	t.Helper()
	c := cluster.NewPartitionedFatTreeCluster(cluster.DefaultFatTreeConfig(16), nparts)
	defer c.Shutdown()
	c.Start()
	tl := metrics.StartTimelines(c, 50*sim.Microsecond)

	// Cross-pod pairs so link utilization and queue depth move on several
	// partitions. Each receiver acks to a collector on host 0, which stops
	// the timelines from inside the simulation — a live sampler keeps the
	// event queue open, so Stop must happen at the workload's virtual end,
	// and routing the acks through the fabric makes that instant identical
	// at any partition count.
	const pairs = 8
	coll := c.Host(0)
	for i := 0; i < pairs; i++ {
		i := i
		src, dst := c.Host(i), c.Host(15-i)
		c.EngineFor(dst.ID()).Spawn("rx", func(p *sim.Proc) {
			dst.RecvFlow(p, src.ID(), int64(1000+i))
			dst.SendMessage(p, &san.Message{
				Hdr:  san.Header{Dst: coll.ID(), Type: san.Data, Flow: int64(2000 + i)},
				Size: 64,
			}, 0)
		})
		c.EngineFor(src.ID()).Spawn("tx", func(p *sim.Proc) {
			src.SendMessage(p, &san.Message{
				Hdr:  san.Header{Dst: dst.ID(), Type: san.Data, Flow: int64(1000 + i)},
				Size: 256 << 10,
			}, 0)
		})
	}
	c.EngineFor(coll.ID()).Spawn("collector", func(p *sim.Proc) {
		for i := 0; i < pairs; i++ {
			coll.RecvFlow(p, c.Host(15-i).ID(), int64(2000+i))
		}
		tl.Stop()
	})
	c.Run()

	snap := metrics.NewSnapshot()
	tl.Into(snap)
	return snap.Series
}

// TestTimelinesIdenticalAcrossPartitions pins the sampler seam partitioned
// clusters rely on: the same workload yields byte-identical timeline series
// through the serial engine and the 4-partition group.
func TestTimelinesIdenticalAcrossPartitions(t *testing.T) {
	serial := timelineRun(t, 1)
	if len(serial) == 0 {
		t.Fatal("serial run produced no timeline series")
	}
	for name, s := range serial {
		if len(s.X) == 0 {
			t.Fatalf("series %s is empty", name)
		}
	}
	part := timelineRun(t, 4)
	if !reflect.DeepEqual(serial, part) {
		t.Fatalf("timelines differ:\nserial       %v\n4 partitions %v", serial, part)
	}
}
