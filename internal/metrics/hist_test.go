package metrics

import (
	"reflect"
	"testing"
)

func TestHistSmallValuesExact(t *testing.T) {
	// Below 2*histSubBuckets every value gets its own bucket, so quantiles
	// are exact.
	h := NewHist()
	for v := int64(0); v < 16; v++ {
		h.Observe(v)
	}
	if h.N() != 16 || h.Min() != 0 || h.Max() != 15 {
		t.Fatalf("n=%d min=%d max=%d, want 16/0/15", h.N(), h.Min(), h.Max())
	}
	if got := h.Quantile(0.5); got != 7 {
		t.Errorf("p50 = %d, want 7 (rank 8 of 0..15)", got)
	}
	if got := h.Quantile(1.0); got != 15 {
		t.Errorf("p100 = %d, want 15", got)
	}
	if got := h.Quantile(0.0); got != 0 {
		t.Errorf("p0 = %d, want 0 (rank clamps to 1)", got)
	}
}

func TestHistBucketContinuity(t *testing.T) {
	// Bucket indexes must be monotone in the value, bucket lower bounds
	// must invert histBucket, and the relative error (value - low)/value is
	// bounded by 1/histSubBuckets.
	prev := -1
	for _, v := range []int64{0, 1, 15, 16, 17, 30, 31, 32, 33, 63, 64, 100,
		1000, 1 << 20, 1<<40 + 12345} {
		b := histBucket(v)
		if b < prev {
			t.Fatalf("histBucket(%d) = %d < previous %d: not monotone", v, b, prev)
		}
		prev = b
		low := histBucketLow(b)
		if low > v {
			t.Fatalf("histBucketLow(%d) = %d > value %d", b, low, v)
		}
		if histBucket(low) != b {
			t.Fatalf("histBucket(low=%d) = %d, want %d: low is not in its own bucket",
				low, histBucket(low), b)
		}
		if v > 0 && float64(v-low)/float64(v) > 1.0/histSubBuckets {
			t.Fatalf("value %d in bucket [%d,...): relative error > 1/%d",
				v, low, histSubBuckets)
		}
	}
}

func TestHistQuantileDeterministicUnderMergeOrder(t *testing.T) {
	// Exact counts mean a merged histogram equals the histogram of the
	// concatenated observations, in any merge order — the property that
	// keeps goldens byte-identical at any -parallel worker count.
	vals := []int64{3, 99, 12000, 7, 7, 250000, 41, 8, 1 << 30, 999}
	whole := NewHist()
	for _, v := range vals {
		whole.Observe(v)
	}
	a, b := NewHist(), NewHist()
	for i, v := range vals {
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
	}
	ab, ba := NewHist(), NewHist()
	ab.Merge(a)
	ab.Merge(b)
	ba.Merge(b)
	ba.Merge(a)
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		if ab.Quantile(q) != whole.Quantile(q) || ba.Quantile(q) != whole.Quantile(q) {
			t.Fatalf("q=%g: merged %d/%d vs whole %d", q,
				ab.Quantile(q), ba.Quantile(q), whole.Quantile(q))
		}
	}
	if ab.Sum() != whole.Sum() || ab.N() != whole.N() || ab.Max() != whole.Max() || ab.Min() != whole.Min() {
		t.Fatal("merged aggregate fields differ from whole")
	}
}

func TestHistMergeEmpty(t *testing.T) {
	h := NewHist()
	h.Observe(5)
	h.Merge(nil)
	h.Merge(NewHist())
	if h.N() != 1 || h.Min() != 5 || h.Max() != 5 {
		t.Fatalf("merging empty changed the histogram: n=%d min=%d max=%d", h.N(), h.Min(), h.Max())
	}
	// Merging INTO an empty histogram adopts the other's min.
	e := NewHist()
	e.Merge(h)
	if e.Min() != 5 {
		t.Fatalf("empty.Merge(h).Min() = %d, want 5 (not the zero min)", e.Min())
	}
}

func TestHistNegativeClampsToZero(t *testing.T) {
	h := NewHist()
	h.Observe(-42)
	if h.N() != 1 || h.Quantile(0.5) != 0 || h.Min() != 0 {
		t.Fatalf("negative observation: n=%d p50=%d min=%d, want 1/0/0", h.N(), h.Quantile(0.5), h.Min())
	}
}

func TestHistInto(t *testing.T) {
	h := NewHist()
	for i := int64(1); i <= 100; i++ {
		h.Observe(i * 1000)
	}
	s := NewSnapshot()
	h.Into(s, "telemetry/e2e")
	for _, suffix := range []string{"/count", "/mean", "/max", "/p50", "/p90", "/p99", "/p999"} {
		if _, ok := s.Values["telemetry/e2e"+suffix]; !ok {
			t.Errorf("missing telemetry/e2e%s", suffix)
		}
	}
	if got := s.Get("telemetry/e2e/count"); got != 100 {
		t.Errorf("count = %g, want 100", got)
	}
	if got := s.Get("telemetry/e2e/max"); got != 100000 {
		t.Errorf("max = %g, want 100000", got)
	}
	// p50 (rank 50 → value 50000) reports the bucket lower bound: within
	// 1/histSubBuckets below the exact value.
	if p50 := s.Get("telemetry/e2e/p50"); p50 > 50000 || p50 < 50000*(1-1.0/histSubBuckets) {
		t.Errorf("p50 = %g, want in (%g, 50000]", p50, 50000*(1-1.0/histSubBuckets))
	}

	// Empty histograms write nothing.
	s2 := NewSnapshot()
	NewHist().Into(s2, "x")
	if len(s2.Values) != 0 {
		t.Errorf("empty hist wrote %v", s2.Values)
	}
}

func TestSnapshotMerge(t *testing.T) {
	a := NewSnapshot()
	a.Set("x", 1)
	a.SetSeries("s", []float64{1}, []float64{2})
	b := NewSnapshot()
	b.Set("x", 2)
	b.Set("y", 3)
	b.SetSeries("t", []float64{4}, []float64{5})
	a.Merge(b)
	if a.Get("x") != 3 || a.Get("y") != 3 {
		t.Fatalf("merged values = %v", a.Values)
	}
	if len(a.Series) != 2 {
		t.Fatalf("merged series = %v", a.Series)
	}

	// Merging nil and empty snapshots — component trees that recorded
	// nothing — is a no-op.
	before := NewSnapshot()
	before.Set("k", 7)
	wantVals := map[string]float64{"k": 7}
	before.Merge(nil)
	before.Merge(NewSnapshot())
	if !reflect.DeepEqual(before.Values, wantVals) || before.Series != nil {
		t.Fatalf("merge of empty tree mutated snapshot: %v / %v", before.Values, before.Series)
	}
}
