package metrics

import (
	"math/bits"
	"sort"
)

// Hist is a deterministic log-bucketed latency histogram: exact integer
// counts (no sampling, no reservoirs), so identical runs — at any worker
// count — produce byte-identical quantiles and goldens stay stable.
//
// Bucketing follows the HDR scheme: values below 2*histSubBuckets get an
// exact bucket each; above that, every power-of-two octave is split into
// histSubBuckets linear sub-buckets, so the relative quantile error is
// bounded by 1/histSubBuckets (12.5%) at any magnitude. Values are
// unit-agnostic int64s; telemetry feeds picoseconds.
type Hist struct {
	counts   map[int]int64
	n        int64
	sum      int64
	max      int64
	min      int64
	observed bool
}

const (
	histSubBits    = 3
	histSubBuckets = 1 << histSubBits
)

// NewHist returns an empty histogram.
func NewHist() *Hist {
	return &Hist{counts: make(map[int]int64)}
}

// histBucket maps a value to its bucket index.
func histBucket(v int64) int {
	if v < 2*histSubBuckets {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1
	shift := exp - histSubBits
	return int(int64(shift+1)<<histSubBits + (v>>shift - histSubBuckets))
}

// histBucketLow returns the smallest value mapping to bucket b — the
// deterministic representative Quantile reports.
func histBucketLow(b int) int64 {
	if b < 2*histSubBuckets {
		return int64(b)
	}
	u := b >> histSubBits // octave + 1
	rem := int64(b & (histSubBuckets - 1))
	return (histSubBuckets + rem) << (u - 1)
}

// Observe records one value. Negative values clamp to zero (they cannot
// occur on a causally-stamped path; the clamp keeps the type total).
func (h *Hist) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[histBucket(v)]++
	h.n++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	if !h.observed || v < h.min {
		h.min = v
	}
	h.observed = true
}

// N returns the number of observations.
func (h *Hist) N() int64 { return h.n }

// Sum returns the sum of all observed values.
func (h *Hist) Sum() int64 { return h.sum }

// Max returns the largest observed value (0 when empty).
func (h *Hist) Max() int64 { return h.max }

// Min returns the smallest observed value (0 when empty).
func (h *Hist) Min() int64 { return h.min }

// Mean returns the exact arithmetic mean (0 when empty).
func (h *Hist) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Quantile returns the lower bound of the bucket holding the q-quantile
// observation (0 <= q <= 1; rank = ceil(q*n)). Exact counts plus the fixed
// bucket rule make this fully deterministic.
func (h *Hist) Quantile(q float64) int64 {
	if h.n == 0 {
		return 0
	}
	rank := int64(q * float64(h.n))
	if float64(rank) < q*float64(h.n) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > h.n {
		rank = h.n
	}
	keys := make([]int, 0, len(h.counts))
	for b := range h.counts {
		keys = append(keys, b)
	}
	sort.Ints(keys)
	var cum int64
	for _, b := range keys {
		cum += h.counts[b]
		if cum >= rank {
			return histBucketLow(b)
		}
	}
	return histBucketLow(keys[len(keys)-1])
}

// Merge folds o's observations into h.
func (h *Hist) Merge(o *Hist) {
	if o == nil || o.n == 0 {
		return
	}
	for b, c := range o.counts {
		h.counts[b] += c
	}
	h.n += o.n
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
	if !h.observed || o.min < h.min {
		h.min = o.min
	}
	h.observed = true
}

// Into writes the histogram's summary under prefix: count, mean, max, and
// the p50/p90/p99/p999 quantiles (sandiff labels the quantile fields
// separately in drift checks). Empty histograms write nothing, so unused
// paths leave no metric names behind.
func (h *Hist) Into(s *Snapshot, prefix string) {
	if h.n == 0 {
		return
	}
	s.SetInt(prefix+"/count", h.n)
	s.Set(prefix+"/mean", h.Mean())
	s.SetInt(prefix+"/max", h.max)
	s.SetInt(prefix+"/p50", h.Quantile(0.50))
	s.SetInt(prefix+"/p90", h.Quantile(0.90))
	s.SetInt(prefix+"/p99", h.Quantile(0.99))
	s.SetInt(prefix+"/p999", h.Quantile(0.999))
}
