// Package cpu models the single-issue processor timing of the paper's host
// (2 GHz) and embedded switch (500 MHz) CPUs. Benchmarks charge instruction
// counts and issue memory references; the model accumulates the busy /
// cache-stall / idle breakdown that drives the paper's Figures 4-14.
//
// A load miss stalls the processor until the data returns; prefetch and
// store misses retire into an outstanding-miss window of four cache lines,
// exactly the rule in the paper's Section 4.
//
// For speed, busy time is accrued as a debt and slept in quanta rather than
// per instruction; at any synchronization point the caller flushes the debt
// so cross-component timing stays accurate to within one quantum (tests can
// set the quantum to zero for exact accounting).
package cpu

import (
	"fmt"

	"activesan/internal/cache"
	"activesan/internal/sim"
)

// tlbHandlerCycles is the fixed instruction cost of a software TLB refill,
// charged as busy time on top of the walk's memory latency.
const tlbHandlerCycles = 20

// maxOutstandingLines is the paper's limit on in-flight non-blocking misses.
const maxOutstandingLines = 4

// Breakdown partitions a processor's time, mirroring the paper's
// execution-time breakdown figures (CPU busy / cache stall / idle).
type Breakdown struct {
	Busy  sim.Time
	Stall sim.Time
}

// missSlot is one in-flight non-blocking miss: the line address and the
// instant its data arrives.
type missSlot struct {
	line  int64
	ready sim.Time
}

// CPU is one processor's timing model.
type CPU struct {
	eng  *sim.Engine
	name string
	clk  sim.Clock
	hier *cache.Hierarchy

	// debt is busy/stall time accrued but not yet slept.
	debt    sim.Time
	quantum sim.Time

	acct Breakdown

	// outstanding is the paper's four-entry window of in-flight non-blocking
	// misses. The window is tiny and bounded, so a fixed array scanned
	// linearly replaces the old map: every memory reference probes it, and
	// the array probe costs a handful of compares with no hashing, no
	// iteration-order tie-breaking and no allocation. Slots [0, nOut) are
	// live, in insertion order.
	outstanding [maxOutstandingLines]missSlot
	nOut        int

	loads, stores, prefetches int64
}

// New returns a CPU over the given hierarchy. quantum bounds how much busy
// time may be accrued before sleeping; 0 sleeps on every charge.
func New(eng *sim.Engine, name string, clk sim.Clock, hier *cache.Hierarchy, quantum sim.Time) *CPU {
	if hier == nil {
		panic("cpu: nil hierarchy")
	}
	return &CPU{
		eng:     eng,
		name:    name,
		clk:     clk,
		hier:    hier,
		quantum: quantum,
	}
}

// Name returns the CPU's debug name.
func (c *CPU) Name() string { return c.name }

// Clock returns the CPU's clock.
func (c *CPU) Clock() sim.Clock { return c.clk }

// Hier returns the cache hierarchy.
func (c *CPU) Hier() *cache.Hierarchy { return c.hier }

// Breakdown returns accumulated busy and stall time, including accrued debt.
func (c *CPU) Breakdown() Breakdown { return c.acct }

// Counts reports how many loads, stores and prefetches were issued.
func (c *CPU) Counts() (loads, stores, prefetches int64) {
	return c.loads, c.stores, c.prefetches
}

// vnow is the CPU's virtual time: engine time plus unslept debt.
func (c *CPU) vnow() sim.Time { return c.eng.Now() + c.debt }

// Flush sleeps off any accrued debt. Call before synchronizing with other
// components (message sends, I/O waits) so they observe the right clock.
func (c *CPU) Flush(p *sim.Proc) {
	if c.debt > 0 {
		d := c.debt
		c.debt = 0
		p.Sleep(d)
	}
}

func (c *CPU) accrue(p *sim.Proc, d sim.Time) {
	c.debt += d
	if c.debt >= c.quantum {
		c.Flush(p)
	}
}

// Compute charges n instructions of busy time (one instruction per cycle,
// the paper's single-issue model).
func (c *CPU) Compute(p *sim.Proc, n int64) {
	if n < 0 {
		panic(fmt.Sprintf("cpu %s: negative instruction count %d", c.name, n))
	}
	d := c.clk.Cycles(n)
	c.acct.Busy += d
	c.accrue(p, d)
}

// BusyFor charges an arbitrary duration as busy time (used for the paper's
// fixed OS overheads, which it attributes to the host CPU).
func (c *CPU) BusyFor(p *sim.Proc, d sim.Time) {
	if d < 0 {
		panic(fmt.Sprintf("cpu %s: negative busy time %v", c.name, d))
	}
	c.acct.Busy += d
	c.accrue(p, d)
}

// StallUntil charges cache-stall time until the absolute instant t (no-op if
// t is already past the CPU's virtual clock).
func (c *CPU) StallUntil(p *sim.Proc, t sim.Time) {
	if d := t - c.vnow(); d > 0 {
		c.acct.Stall += d
		c.accrue(p, d)
	}
}

// Load issues a blocking load; the CPU stalls until the first data returns.
func (c *CPU) Load(p *sim.Proc, addr int64) cache.Result {
	c.loads++
	return c.ref(p, addr, cache.Load, true)
}

// Store issues a write that retires into the outstanding-miss window.
func (c *CPU) Store(p *sim.Proc, addr int64) cache.Result {
	c.stores++
	return c.ref(p, addr, cache.Store, false)
}

// Prefetch issues a non-binding prefetch into the outstanding-miss window.
func (c *CPU) Prefetch(p *sim.Proc, addr int64) cache.Result {
	c.prefetches++
	return c.ref(p, addr, cache.Prefetch, false)
}

// Ifetch models an instruction fetch (blocking, through the I-side).
func (c *CPU) Ifetch(p *sim.Proc, addr int64) cache.Result {
	return c.ref(p, addr, cache.Ifetch, true)
}

func (c *CPU) ref(p *sim.Proc, addr int64, k cache.Kind, blocking bool) cache.Result {
	c.expireOutstanding()
	r := c.hier.Access(addr, k)
	if r.Level == cache.InMemory && c.eng.Tracing() {
		c.eng.Emit("cache", "miss", c.name,
			fmt.Sprintf("%v miss addr=%#x ready=%v", k, addr, r.Ready))
	}
	if r.TLBMiss {
		// The walk's memory time is inside r.Ready; the refill handler is
		// architectural work.
		c.Compute(p, tlbHandlerCycles)
	}
	if r.Level == cache.InL1 {
		return r
	}
	if blocking {
		c.StallUntil(p, r.Ready)
		return r
	}
	// Non-blocking miss: occupy an outstanding-line slot; if four lines are
	// already in flight the processor stalls until the oldest drains.
	line := c.hier.L1D().LineBase(addr)
	for i := 0; i < c.nOut; i++ {
		if c.outstanding[i].line == line {
			return r
		}
	}
	for c.nOut >= maxOutstandingLines {
		// Earliest completion wins; ties break on the lower line address
		// (the same rule the map version used, so timings are unchanged).
		victim := 0
		for i := 1; i < c.nOut; i++ {
			s, v := c.outstanding[i], c.outstanding[victim]
			if s.ready < v.ready || (s.ready == v.ready && s.line < v.line) {
				victim = i
			}
		}
		c.StallUntil(p, c.outstanding[victim].ready)
		c.removeOutstanding(victim)
		c.expireOutstanding()
	}
	c.outstanding[c.nOut] = missSlot{line: line, ready: r.Ready}
	c.nOut++
	return r
}

// removeOutstanding drops slot i, keeping the live prefix dense.
func (c *CPU) removeOutstanding(i int) {
	c.nOut--
	for ; i < c.nOut; i++ {
		c.outstanding[i] = c.outstanding[i+1]
	}
}

// expireOutstanding retires misses whose data has arrived by the CPU's
// virtual clock.
func (c *CPU) expireOutstanding() {
	if c.nOut == 0 {
		return
	}
	now := c.vnow()
	kept := 0
	for i := 0; i < c.nOut; i++ {
		if c.outstanding[i].ready > now {
			c.outstanding[kept] = c.outstanding[i]
			kept++
		}
	}
	c.nOut = kept
}

// TouchRange walks [base, base+n) with the given reference kind at cache-line
// granularity — the common pattern for streaming over a buffer. The kind is
// resolved to a counter and blocking mode once, outside the per-line loop.
func (c *CPU) TouchRange(p *sim.Proc, base, n int64, k cache.Kind) {
	if n <= 0 {
		return
	}
	var count *int64
	blocking := false
	switch k {
	case cache.Load:
		count, blocking = &c.loads, true
	case cache.Store:
		count = &c.stores
	case cache.Prefetch:
		count = &c.prefetches
	default:
		panic("cpu: TouchRange kind must be load, store or prefetch")
	}
	step := c.hier.L1D().LineSize()
	for a := c.hier.L1D().LineBase(base); a < base+n; a += step {
		*count++
		c.ref(p, a, k, blocking)
	}
}
