package cpu

import (
	"testing"

	"activesan/internal/cache"
	"activesan/internal/memsys"
	"activesan/internal/sim"
)

func newHostCPU(quantum sim.Time) (*sim.Engine, *CPU) {
	eng := sim.NewEngine()
	mem := memsys.New(eng, "mem", memsys.DefaultConfig())
	hier := cache.NewHierarchy(eng, cache.HostHierConfig(1), mem, 1<<40)
	return eng, New(eng, "host", sim.HostClock, hier, quantum)
}

func TestComputeChargesBusyCycles(t *testing.T) {
	eng, c := newHostCPU(0)
	eng.Spawn("p", func(p *sim.Proc) {
		c.Compute(p, 1000)
	})
	end := eng.Run()
	want := sim.HostClock.Cycles(1000)
	if end != want {
		t.Fatalf("end = %v, want %v", end, want)
	}
	if c.Breakdown().Busy != want {
		t.Fatalf("busy = %v, want %v", c.Breakdown().Busy, want)
	}
}

func TestQuantumDeferral(t *testing.T) {
	eng, c := newHostCPU(10 * sim.Microsecond)
	eng.Spawn("p", func(p *sim.Proc) {
		c.Compute(p, 100) // 50 ns, far below the quantum
		if p.Now() != 0 {
			t.Errorf("small compute slept eagerly at %v", p.Now())
		}
		c.Flush(p)
		if p.Now() != sim.HostClock.Cycles(100) {
			t.Errorf("flush advanced to %v", p.Now())
		}
	})
	eng.Run()
}

func TestLoadMissStalls(t *testing.T) {
	eng, c := newHostCPU(0)
	eng.Spawn("p", func(p *sim.Proc) {
		c.Load(p, 0)
	})
	eng.Run()
	b := c.Breakdown()
	if b.Stall <= 100*sim.Nanosecond {
		t.Fatalf("cold load stalled only %v, want > memory latency", b.Stall)
	}
	// TLB refill handler work was charged as busy.
	if b.Busy != sim.HostClock.Cycles(tlbHandlerCycles) {
		t.Fatalf("busy = %v, want one TLB handler", b.Busy)
	}
}

func TestL1HitIsFree(t *testing.T) {
	eng, c := newHostCPU(0)
	eng.Spawn("p", func(p *sim.Proc) {
		c.Load(p, 0)
		before := c.Breakdown().Stall
		c.Load(p, 0)
		if c.Breakdown().Stall != before {
			t.Error("L1 hit added stall time")
		}
	})
	eng.Run()
}

func TestOutstandingMissWindow(t *testing.T) {
	eng, c := newHostCPU(0)
	eng.Spawn("p", func(p *sim.Proc) {
		// Four prefetch misses to distinct lines should not stall.
		for i := int64(0); i < 4; i++ {
			c.Prefetch(p, i*4096)
		}
		if c.Breakdown().Stall != 0 {
			t.Errorf("first four prefetches stalled %v", c.Breakdown().Stall)
		}
		// The fifth distinct line must wait for the oldest to drain.
		c.Prefetch(p, 5*4096)
		if c.Breakdown().Stall == 0 {
			t.Error("fifth outstanding line did not stall")
		}
	})
	eng.Run()
}

func TestOutstandingSameLineNotDoubleCounted(t *testing.T) {
	eng, c := newHostCPU(0)
	eng.Spawn("p", func(p *sim.Proc) {
		for i := 0; i < 8; i++ {
			c.Store(p, 0) // same line every time
		}
		if c.Breakdown().Stall != 0 {
			t.Errorf("repeated same-line stores stalled %v", c.Breakdown().Stall)
		}
	})
	eng.Run()
}

func TestOutstandingExpiry(t *testing.T) {
	eng, c := newHostCPU(0)
	eng.Spawn("p", func(p *sim.Proc) {
		for i := int64(0); i < 4; i++ {
			c.Prefetch(p, i*4096)
		}
		// Let everything drain, then four more should again be free.
		p.Sleep(10 * sim.Microsecond)
		before := c.Breakdown().Stall
		for i := int64(10); i < 14; i++ {
			c.Prefetch(p, i*4096)
		}
		if c.Breakdown().Stall != before {
			t.Error("drained window still stalled new prefetches")
		}
	})
	eng.Run()
}

func TestStallUntilPast(t *testing.T) {
	eng, c := newHostCPU(0)
	eng.Spawn("p", func(p *sim.Proc) {
		p.Sleep(100)
		c.StallUntil(p, 50) // already past: no-op
		if c.Breakdown().Stall != 0 {
			t.Error("past StallUntil charged stall")
		}
	})
	eng.Run()
}

func TestBusyFor(t *testing.T) {
	eng, c := newHostCPU(0)
	eng.Spawn("p", func(p *sim.Proc) {
		c.BusyFor(p, 30*sim.Microsecond) // the paper's per-request OS cost
	})
	end := eng.Run()
	if end != 30*sim.Microsecond {
		t.Fatalf("end = %v, want 30us", end)
	}
	if c.Breakdown().Busy != 30*sim.Microsecond {
		t.Fatalf("busy = %v", c.Breakdown().Busy)
	}
}

func TestTouchRangeCoversLines(t *testing.T) {
	eng, c := newHostCPU(0)
	eng.Spawn("p", func(p *sim.Proc) {
		c.TouchRange(p, 0, 1024, cache.Load) // 16 lines of 64 B
	})
	eng.Run()
	loads, _, _ := c.Counts()
	if loads != 16 {
		t.Fatalf("loads = %d, want 16", loads)
	}
	// Second pass hits.
	eng2, c2 := newHostCPU(0)
	eng2.Spawn("p", func(p *sim.Proc) {
		c2.TouchRange(p, 0, 1024, cache.Load)
		s := c2.Breakdown().Stall
		c2.TouchRange(p, 0, 1024, cache.Load)
		if c2.Breakdown().Stall != s {
			t.Error("second pass over resident range stalled")
		}
	})
	eng2.Run()
}

func TestSwitchCPUFourTimesSlower(t *testing.T) {
	eng := sim.NewEngine()
	mem := memsys.New(eng, "smem", memsys.DefaultConfig())
	hier := cache.NewHierarchy(eng, cache.SwitchHierConfig(), mem, 1<<40)
	sp := New(eng, "sp", sim.SwitchClock, hier, 0)
	eng.Spawn("p", func(p *sim.Proc) {
		sp.Compute(p, 1000)
	})
	end := eng.Run()
	_, hostCPU := newHostCPU(0)
	_ = hostCPU
	if end != 4*sim.HostClock.Cycles(1000) {
		t.Fatalf("switch compute = %v, want 4x host", end)
	}
}

func TestNegativeComputePanics(t *testing.T) {
	eng, c := newHostCPU(0)
	eng.Spawn("p", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("negative instruction count did not panic")
			}
		}()
		c.Compute(p, -1)
	})
	eng.Run()
}
