package san

import (
	"strings"
	"testing"

	"activesan/internal/sim"
)

// dropAll loses every packet; the link must still restore credits so senders
// drain instead of wedging.
type dropAll struct{ seen int }

func (d *dropAll) OnTransmit(_ *Link, _ *Packet) (FaultVerdict, sim.Time) {
	d.seen++
	return FaultDrop, 0
}

func TestSwitchNoRouteAccounting(t *testing.T) {
	eng := sim.NewEngine()
	sw, eps := star(eng, 2)
	sw.Start()
	const n = 5
	sent := 0
	eng.Spawn("src", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			eps[0].Out.Send(p, &Packet{Hdr: Header{Src: 0, Dst: 99, Seq: i}, Size: 64})
			sent++
		}
	})
	eng.Run()
	// Every unroutable packet must have its input credit returned, or the
	// sender stalls after Credits packets.
	if sent != n {
		t.Fatalf("sent %d of %d packets: no-route drops leaked credits", sent, n)
	}
	st := sw.Stats()
	if st.Dropped != n || st.NoRouteDrops != n {
		t.Fatalf("Dropped=%d NoRouteDrops=%d, want %d each", st.Dropped, st.NoRouteDrops, n)
	}
	if st.Routed != 0 {
		t.Fatalf("Routed=%d for unroutable traffic, want 0", st.Routed)
	}
	eng.Shutdown()
}

func TestStrictRoutesPanicsOnUnroutable(t *testing.T) {
	SetStrictRoutes(true)
	defer SetStrictRoutes(false)
	eng := sim.NewEngine()
	sw, eps := star(eng, 2)
	sw.Start()
	eng.Spawn("src", func(p *sim.Proc) {
		eps[0].Out.Send(p, &Packet{Hdr: Header{Src: 0, Dst: 99}, Size: 64})
	})
	defer eng.Shutdown()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("unroutable packet under -strict-routes did not panic")
		}
		msg, ok := r.(error)
		if !ok || !strings.Contains(msg.Error(), "no route") {
			t.Fatalf("panic %v does not name the missing route", r)
		}
	}()
	eng.Run()
}

func TestLinkCreditExhaustionStalledReceiver(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultLinkConfig()
	cfg.Credits = 2
	l := NewLink(eng, "l", cfg)
	const n = 5
	times := make([]sim.Time, 0, n)
	eng.Spawn("tx", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			l.Send(p, &Packet{Size: 512})
			times = append(times, p.Now())
		}
	})
	// The receiver sits on every packet for 1 ms before returning its
	// credit: sends beyond the credit window must absorb that stall.
	const hold = sim.Millisecond
	eng.Spawn("rx", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			l.Recv(p)
			p.Sleep(hold)
			l.ReturnCredit()
		}
	})
	eng.Run()
	if len(times) != n {
		t.Fatalf("only %d of %d sends completed", len(times), n)
	}
	// Sends 1 and 2 ride the two credits; send 3 needs the first credit
	// back, which the receiver holds for 1 ms.
	if times[1] >= hold {
		t.Fatalf("send 2 at %v stalled despite a free credit", times[1])
	}
	if times[2] < hold {
		t.Fatalf("send 3 at %v beat the receiver's credit hold of %v", times[2], hold)
	}
	eng.Shutdown()
}

func TestLinkDropRestoresCredits(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultLinkConfig()
	cfg.Credits = 2
	l := NewLink(eng, "l", cfg)
	inj := &dropAll{}
	l.SetInjector(inj)
	const n = 6 // 3x the credit window: only restored credits let this finish
	sent := 0
	eng.Spawn("tx", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			l.Send(p, &Packet{Size: 512})
			sent++
		}
	})
	eng.Run()
	if sent != n {
		t.Fatalf("sent %d of %d: dropped packets did not restore credits", sent, n)
	}
	if inj.seen != n {
		t.Fatalf("injector saw %d packets, want %d", inj.seen, n)
	}
	if got := l.Stats().Dropped; got != n {
		t.Fatalf("Dropped=%d, want %d", got, n)
	}
	if _, ok := l.TryRecv(); ok {
		t.Fatal("receiver got a packet from an all-drop link")
	}
	eng.Shutdown()
}

func TestDownLinkDrainsTraffic(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultLinkConfig()
	cfg.Credits = 2
	l := NewLink(eng, "l", cfg)
	l.SetDown(true)
	sent := 0
	eng.Spawn("tx", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			l.Send(p, &Packet{Size: 256})
			sent++
		}
	})
	eng.Run()
	if sent != 5 {
		t.Fatalf("sent %d of 5 into a down link: credits wedged", sent)
	}
	if got := l.Stats().Dropped; got != 5 {
		t.Fatalf("Dropped=%d, want 5", got)
	}
	l.SetDown(false)
	if !l.Up() {
		t.Fatal("link still down after SetDown(false)")
	}
	eng.Shutdown()
}

func TestReassembleRoundTrip(t *testing.T) {
	data := make([]byte, MTU*2+300)
	for i := range data {
		data[i] = byte(i * 7)
	}
	m := &Message{Hdr: Header{Flow: 42}, Size: int64(len(data))}
	pkts := m.Packets(SliceSplit(data))
	out, err := Reassemble(pkts)
	if err != nil {
		t.Fatalf("clean set failed to reassemble: %v", err)
	}
	if string(out) != string(data) {
		t.Fatal("reassembled payload differs from original")
	}
	// Order independence: the reliability layer may buffer out of order.
	rev := []*Packet{pkts[2], pkts[0], pkts[1]}
	out, err = Reassemble(rev)
	if err != nil || string(out) != string(data) {
		t.Fatalf("out-of-order set: err=%v", err)
	}
}

func TestReassembleRejectsDamage(t *testing.T) {
	mk := func() []*Packet {
		data := make([]byte, MTU*2+300)
		m := &Message{Hdr: Header{Flow: 7}, Size: int64(len(data))}
		return m.Packets(SliceSplit(data))
	}

	missing := mk()
	if _, err := Reassemble([]*Packet{missing[0], missing[2]}); err == nil {
		t.Fatal("missing middle packet accepted")
	}

	corrupt := mk()
	cp := *corrupt[1]
	cp.Corrupt = true
	if _, err := Reassemble([]*Packet{corrupt[0], &cp, corrupt[2]}); err == nil {
		t.Fatal("corrupt middle packet accepted")
	}

	dup := mk()
	if _, err := Reassemble([]*Packet{dup[0], dup[1], dup[1], dup[2]}); err == nil {
		t.Fatal("duplicate seq accepted")
	}

	mixed := mk()
	other := *mixed[1]
	other.Hdr.Flow = 8
	if _, err := Reassemble([]*Packet{mixed[0], &other, mixed[2]}); err == nil {
		t.Fatal("mixed flows accepted")
	}

	truncated := mk()
	noLast := []*Packet{truncated[0], truncated[1]} // Last packet absent
	if _, err := Reassemble(noLast); err == nil {
		t.Fatal("set without a final packet accepted")
	}

	if _, err := Reassemble(nil); err == nil {
		t.Fatal("empty set accepted")
	}
}
