package san

// Property-based invariant tests over random multi-switch fabrics: whatever
// the topology, traffic matrix, and fault schedule, packets never vanish
// unaccounted, and every credit and pool slot is back home once the fabric
// quiesces. The fault package cannot be imported here (it imports san), so
// the injector and PRNG are local.

import (
	"testing"

	"activesan/internal/sim"
)

// invRand is a splitmix64 PRNG — seeded and stable across Go releases.
type invRand struct{ s uint64 }

func (r *invRand) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *invRand) intn(n int) int { return int(r.next() % uint64(n)) }

// invInjector drops/corrupts/delays packets with fixed percentages, from the
// shared seeded PRNG.
type invInjector struct {
	r           *invRand
	dropPct     uint64
	corruptPct  uint64
	maxDelayNic uint64 // max extra delay in nanoseconds, 0 = never delay
}

func (i *invInjector) OnTransmit(_ *Link, _ *Packet) (FaultVerdict, sim.Time) {
	v := i.r.next() % 100
	switch {
	case v < i.dropPct:
		return FaultDrop, 0
	case v < i.dropPct+i.corruptPct:
		return FaultCorrupt, 0
	}
	if i.maxDelayNic > 0 && v%5 == 0 {
		return FaultPass, sim.Time(i.r.next()%i.maxDelayNic) * sim.Nanosecond
	}
	return FaultPass, 0
}

// invFabric is a random tree of base switches with endpoints, routes computed
// by the test itself (independently of the cluster package's installer).
type invFabric struct {
	sws      []*Switch
	eps      []Port // endpoint view: In from switch, Out toward switch
	epSwitch []int
	links    []*Link // every link, both directions
}

// buildInvFabric wires 2..5 switches in a random tree with 1..2 endpoints
// each. Endpoint i has NodeID(i); switch j has NodeID(100+j).
func buildInvFabric(eng *sim.Engine, r *invRand, linkCfg LinkConfig) *invFabric {
	nsw := 2 + r.intn(4)
	f := &invFabric{}
	adj := make([]map[int]int, nsw) // neighbor switch -> local port
	epAt := make([][]int, nsw)      // switch -> endpoint indexes
	for i := 0; i < nsw; i++ {
		adj[i] = map[int]int{}
	}
	for i := 0; i < nsw; i++ {
		epAt[i] = append(epAt[i], len(f.epSwitch))
		f.epSwitch = append(f.epSwitch, i)
		if r.intn(2) == 0 {
			epAt[i] = append(epAt[i], len(f.epSwitch))
			f.epSwitch = append(f.epSwitch, i)
		}
	}
	type trunk struct{ a, b int }
	var trunks []trunk
	for i := 1; i < nsw; i++ {
		trunks = append(trunks, trunk{r.intn(i), i})
	}
	for i := 0; i < nsw; i++ {
		ports := len(epAt[i])
		for _, t := range trunks {
			if t.a == i || t.b == i {
				ports++
			}
		}
		cfg := DefaultSwitchConfig(ports)
		cfg.Link = linkCfg
		f.sws = append(f.sws, NewSwitch(eng, NodeID(100+i), "sw", cfg))
	}
	nextPort := make([]int, nsw)
	mk := func(name string) *Link {
		l := NewLink(eng, name, linkCfg)
		f.links = append(f.links, l)
		return l
	}
	f.eps = make([]Port, len(f.epSwitch))
	for e, sw := range f.epSwitch {
		up, down := mk("ep.up"), mk("ep.down")
		f.sws[sw].AttachPort(nextPort[sw], up, down)
		f.sws[sw].SetRoute(NodeID(e), nextPort[sw])
		nextPort[sw]++
		f.eps[e] = Port{In: down, Out: up}
	}
	for _, t := range trunks {
		ab, ba := mk("t.ab"), mk("t.ba")
		f.sws[t.a].AttachPort(nextPort[t.a], ba, ab)
		adj[t.a][t.b] = nextPort[t.a]
		nextPort[t.a]++
		f.sws[t.b].AttachPort(nextPort[t.b], ab, ba)
		adj[t.b][t.a] = nextPort[t.b]
		nextPort[t.b]++
	}
	// Unique tree paths: route every endpoint (and switch id) at every
	// non-home switch via the neighbor one BFS step closer to home.
	for target := 0; target < nsw; target++ {
		dist := make([]int, nsw)
		for i := range dist {
			dist[i] = -1
		}
		dist[target] = 0
		q := []int{target}
		for len(q) > 0 {
			u := q[0]
			q = q[1:]
			for v := range adj[u] {
				if dist[v] < 0 {
					dist[v] = dist[u] + 1
					q = append(q, v)
				}
			}
		}
		for s := 0; s < nsw; s++ {
			if s == target {
				continue
			}
			for v, port := range adj[s] {
				if dist[v] == dist[s]-1 {
					for _, e := range epAt[target] {
						f.sws[s].SetRoute(NodeID(e), port)
					}
					f.sws[s].SetRoute(NodeID(100+target), port)
				}
			}
		}
	}
	for _, sw := range f.sws {
		sw.Start()
	}
	return f
}

// run drives random traffic through the fabric: every endpoint sends count
// packets to random destinations (sometimes the unroutable NodeID 999,
// sometimes a switch id — dropped for lack of a local sink), receivers drain
// forever holding each credit for hold(e) first. Returns sent and received
// clean/corrupt counts after the engine quiesces.
func (f *invFabric) run(eng *sim.Engine, r *invRand, perEp int, hold func(e int) sim.Time) (sent int, clean, corrupt int) {
	nep := len(f.eps)
	cleanBy := make([]int, nep)
	corruptBy := make([]int, nep)
	total := 0
	for e := range f.eps {
		e := e
		count := 1 + r.intn(perEp)
		total += count
		dsts := make([]NodeID, count)
		for i := range dsts {
			switch r.intn(10) {
			case 0:
				dsts[i] = 999 // unroutable everywhere
			case 1:
				dsts[i] = NodeID(100 + r.intn(len(f.sws))) // a switch: no local sink
			default:
				dsts[i] = NodeID(r.intn(nep))
			}
		}
		size := int64(64 + r.intn(1024))
		eng.Spawn("tx", func(p *sim.Proc) {
			for _, dst := range dsts {
				f.eps[e].Out.Send(p, &Packet{Hdr: Header{Src: NodeID(e), Dst: dst}, Size: size})
			}
		})
	}
	for e := range f.eps {
		e := e
		eng.Spawn("rx", func(p *sim.Proc) {
			for {
				pkt := f.eps[e].In.Recv(p)
				if h := hold(e); h > 0 {
					p.Sleep(h)
				}
				if pkt.Corrupt {
					corruptBy[e]++
				} else {
					cleanBy[e]++
				}
				f.eps[e].In.ReturnCredit()
			}
		})
	}
	eng.Run()
	for e := range f.eps {
		clean += cleanBy[e]
		corrupt += corruptBy[e]
	}
	return total, clean, corrupt
}

// accounted sums every drop cause across the fabric.
func (f *invFabric) accounted() (linkDrops, swDrops, corruptDrops int64) {
	for _, l := range f.links {
		linkDrops += l.Stats().Dropped
	}
	for _, sw := range f.sws {
		swDrops += sw.Stats().Dropped
		corruptDrops += sw.Stats().CorruptDrops
	}
	return
}

// checkQuiesced asserts the credit and pool invariants: after the engine
// runs dry, every link holds its full credit complement and every switch's
// central pool is back to capacity.
func (f *invFabric) checkQuiesced(t *testing.T, round int) {
	t.Helper()
	for i, l := range f.links {
		if got, want := l.credits.Available(), l.Config().Credits; got != want {
			t.Fatalf("round %d: link %d (%s) quiesced with %d of %d credits", round, i, l.Name(), got, want)
		}
	}
	for i, sw := range f.sws {
		if got, want := sw.PoolFree(), sw.Config().PoolPackets; got != want {
			t.Fatalf("round %d: switch %d quiesced with %d of %d pool slots", round, i, got, want)
		}
	}
}

func invRounds() int {
	if testing.Short() {
		return 5
	}
	return 12
}

// TestInvariantPacketConservation checks, across random fabrics with drop
// and corrupt injection armed on every link, that
//
//	sent == delivered(clean) + delivered(corrupt)
//	      + link drops + switch drops + switch CRC drops
//
// — no packet is ever lost without a cause counter naming why.
func TestInvariantPacketConservation(t *testing.T) {
	r := &invRand{s: 0x1a7e57}
	for round := 0; round < invRounds(); round++ {
		eng := sim.NewEngine()
		f := buildInvFabric(eng, r, DefaultLinkConfig())
		inj := &invInjector{r: r, dropPct: 10, corruptPct: 10, maxDelayNic: 500}
		for _, l := range f.links {
			l.SetInjector(inj)
		}
		sent, clean, corrupt := f.run(eng, r, 12, func(int) sim.Time { return 0 })
		linkDrops, swDrops, corruptDrops := f.accounted()
		got := int64(clean+corrupt) + linkDrops + swDrops + corruptDrops
		if got != int64(sent) {
			t.Fatalf("round %d: sent %d, accounted %d (clean %d corrupt %d linkdrop %d swdrop %d crc %d)",
				round, sent, got, clean, corrupt, linkDrops, swDrops, corruptDrops)
		}
		f.checkQuiesced(t, round)
		eng.Shutdown()
	}
}

// TestInvariantCreditsRestoredUnderFaults hits the flow-control ledger
// hard: tiny credit windows plus heavy loss, so only the drop path's credit
// restoration lets senders finish at all.
func TestInvariantCreditsRestoredUnderFaults(t *testing.T) {
	r := &invRand{s: 0xc4ed17}
	for round := 0; round < invRounds(); round++ {
		eng := sim.NewEngine()
		cfg := DefaultLinkConfig()
		cfg.Credits = 2
		f := buildInvFabric(eng, r, cfg)
		inj := &invInjector{r: r, dropPct: 35, corruptPct: 5}
		for _, l := range f.links {
			l.SetInjector(inj)
		}
		sent, clean, corrupt := f.run(eng, r, 10, func(int) sim.Time { return 0 })
		linkDrops, swDrops, corruptDrops := f.accounted()
		if got := int64(clean+corrupt) + linkDrops + swDrops + corruptDrops; got != int64(sent) {
			t.Fatalf("round %d: sent %d, accounted %d", round, sent, got)
		}
		f.checkQuiesced(t, round)
		eng.Shutdown()
	}
}

// TestInvariantCreditsRestoredWithSlowReceivers holds each delivered
// packet's credit for a random per-endpoint time before returning it: the
// stalls reshape every queue and backpressure interaction, but quiescence
// must still find all credits and pool slots home, and conservation intact.
func TestInvariantCreditsRestoredWithSlowReceivers(t *testing.T) {
	r := &invRand{s: 0x51033}
	for round := 0; round < invRounds(); round++ {
		eng := sim.NewEngine()
		cfg := DefaultLinkConfig()
		cfg.Credits = 1 + r.intn(3)
		f := buildInvFabric(eng, r, cfg)
		holds := make([]sim.Time, len(f.eps))
		for i := range holds {
			holds[i] = sim.Time(r.intn(2000)) * sim.Nanosecond
		}
		sent, clean, corrupt := f.run(eng, r, 8, func(e int) sim.Time { return holds[e] })
		if corrupt != 0 {
			t.Fatalf("round %d: %d corrupt deliveries with no injector", round, corrupt)
		}
		linkDrops, swDrops, corruptDrops := f.accounted()
		if linkDrops != 0 || corruptDrops != 0 {
			t.Fatalf("round %d: fault drops (%d link, %d crc) with no injector", round, linkDrops, corruptDrops)
		}
		if got := int64(clean) + swDrops; got != int64(sent) {
			t.Fatalf("round %d: sent %d, accounted %d (clean %d swdrop %d)", round, sent, got, clean, swDrops)
		}
		f.checkQuiesced(t, round)
		eng.Shutdown()
	}
}

// TestInvariantDropCausesSumToDropped cross-checks the switch's own drop
// taxonomy: Dropped must equal NoRouteDrops plus local-without-sink drops,
// and Routed plus Local plus Dropped plus CorruptDrops must cover every
// arrival the fabric's links delivered into switches.
func TestInvariantDropCausesSumToDropped(t *testing.T) {
	r := &invRand{s: 0xd06f00d}
	for round := 0; round < invRounds(); round++ {
		eng := sim.NewEngine()
		f := buildInvFabric(eng, r, DefaultLinkConfig())
		inj := &invInjector{r: r, dropPct: 8, corruptPct: 12}
		for _, l := range f.links {
			l.SetInjector(inj)
		}
		f.run(eng, r, 12, func(int) sim.Time { return 0 })
		for i, sw := range f.sws {
			st := sw.Stats()
			// Local counts all switch-addressed arrivals; with no sink every
			// one of them is also a drop, and the rest of Dropped is no-route.
			if st.Dropped != st.NoRouteDrops+st.Local {
				t.Fatalf("round %d: switch %d Dropped=%d != NoRouteDrops=%d + Local=%d",
					round, i, st.Dropped, st.NoRouteDrops, st.Local)
			}
		}
		f.checkQuiesced(t, round)
		eng.Shutdown()
	}
}
