package san

import "activesan/internal/sim"

// HopKind labels one stage of a packet's path through the fabric. The
// per-hop telemetry decomposition (OBSERVABILITY.md) buckets latency by
// these kinds: wire vs queueing vs handler time is the paper's
// active-vs-passive path-length argument made measurable.
type HopKind uint8

const (
	// HopNIC is host NIC time: from message post to wire injection.
	HopNIC HopKind = iota
	// HopWire is link serialization plus propagation.
	HopWire
	// HopRoute is switch route lookup and arbitration.
	HopRoute
	// HopQueue is time spent parked in a switch output queue.
	HopQueue
	// HopHandler is active-plane time: dispatch, admission and handler
	// execution inside the switch.
	HopHandler
	// HopDisk is storage-node time: request queueing, seek and media read.
	HopDisk
	// NumHopKinds bounds arrays indexed by HopKind.
	NumHopKinds
)

func (k HopKind) String() string {
	switch k {
	case HopNIC:
		return "nic"
	case HopWire:
		return "wire"
	case HopRoute:
		return "route"
	case HopQueue:
		return "queue"
	case HopHandler:
		return "handler"
	case HopDisk:
		return "disk"
	}
	return "unknown"
}

// Hop is one per-hop telemetry entry appended in-band as the packet moves.
type Hop struct {
	Kind  HopKind
	Comp  string // component name ("sw0", "link h0->sw0", ...)
	Start sim.Time
	End   sim.Time
}

// Stamp is the lightweight in-band telemetry record a packet carries
// (INT-style): the origin time plus one Hop per stage. A nil Packet.Stamp
// means telemetry is off — every producer on the data path guards on that,
// so the disarmed fast path pays only a pointer test.
//
// Hops are appended strictly in path order, and at most one hop is open
// (started, not yet ended) at a time: stages with a known duration call
// Add, stages that span a queue call Open at enqueue and Close at dequeue.
type Stamp struct {
	// Origin is the ingress time the end-to-end sample measures from.
	Origin sim.Time
	// Hops are the per-stage entries, in path order.
	Hops []Hop

	open bool
}

// Add appends a completed hop.
func (st *Stamp) Add(kind HopKind, comp string, start, end sim.Time) {
	st.Hops = append(st.Hops, Hop{Kind: kind, Comp: comp, Start: start, End: end})
}

// Open appends a hop whose end is not yet known (e.g. entering a queue).
func (st *Stamp) Open(kind HopKind, comp string, at sim.Time) {
	st.Hops = append(st.Hops, Hop{Kind: kind, Comp: comp, Start: at})
	st.open = true
}

// Close ends the most recently opened hop; a no-op when none is open, so
// drop paths can abandon a packet without unwinding its stamp.
func (st *Stamp) Close(at sim.Time) {
	if !st.open {
		return
	}
	st.Hops[len(st.Hops)-1].End = at
	st.open = false
}

// Stamper mints a stamp for a packet entering the fabric. Components hold
// one as a settable hook so the telemetry recorder can count mints without
// this package importing it.
type Stamper func(origin sim.Time) *Stamp

// Completer consumes a finished stamp at the packet's final delivery,
// folding it into per-hop and end-to-end latency histograms.
type Completer func(st *Stamp, done sim.Time, typ Type)
