package san

import (
	"fmt"
	"sync/atomic"

	"activesan/internal/sim"
)

// strictRoutes, when set, turns the first unroutable-packet drop into a
// panic so misrouted configurations fail fast instead of silently losing
// traffic (activesim's -strict-routes flag). Atomic because parallel sweeps
// run engines on several goroutines.
var strictRoutes atomic.Bool

// SetStrictRoutes toggles fail-fast behavior on unroutable packets.
func SetStrictRoutes(v bool) { strictRoutes.Store(v) }

// StrictRoutes reports whether unroutable packets fail fast; the flight
// recorder uses it to decide whether a no_route_drop event is a trigger.
func StrictRoutes() bool { return strictRoutes.Load() }

// SwitchConfig sets the base switch parameters.
type SwitchConfig struct {
	// Ports is the number of external ports.
	Ports int
	// RoutingLatency is the per-packet routing decision time (paper: 100 ns,
	// "similar to current InfiniBand switches").
	RoutingLatency sim.Time
	// PoolPackets sizes the central output queue's shared buffer pool.
	PoolPackets int
	// Link configures every attached link.
	Link LinkConfig
}

// DefaultSwitchConfig returns the paper's switch: 1 GB/s bidirectional
// ports, 100 ns routing latency, virtual cut-through.
func DefaultSwitchConfig(ports int) SwitchConfig {
	return SwitchConfig{
		Ports:          ports,
		RoutingLatency: 100 * sim.Nanosecond,
		PoolPackets:    64,
		Link:           DefaultLinkConfig(),
	}
}

// LocalSink receives packets whose destination is the switch itself. The
// base switch has none; the active switch installs its data-buffer admission
// here. Deliver runs in the input port's process and may block — that is
// exactly the backpressure the paper's credit scheme provides.
type LocalSink interface {
	Deliver(p *sim.Proc, pkt *Packet, fillRate float64)
}

// Port is one external attachment: In carries packets from the device into
// the switch, Out carries packets to the device.
type Port struct {
	In  *Link
	Out *Link
}

// SwitchStats counts switch activity.
type SwitchStats struct {
	Routed  int64 // packets forwarded between ports
	Local   int64 // packets consumed by the local sink
	Dropped int64 // packets dropped (no route, or local with no sink)
	// NoRouteDrops is the subset of Dropped with no routing-table entry —
	// a configuration bug unless a fault plan removed the route.
	NoRouteDrops int64
	// Rerouted counts packets sent via a backup route because the primary
	// port's link was down.
	Rerouted int64
	// CorruptDrops counts corrupt arrivals discarded at the input CRC
	// check (only fault injection produces corrupt packets).
	CorruptDrops int64
	// MaxQueueDepth is the deepest any output queue got; MinPoolFree is
	// the central pool's low-water mark — the congestion signature of the
	// central-output-queue design.
	MaxQueueDepth int
	MinPoolFree   int
}

// Switch is the conventional central-output-queue switch. Each input port
// runs a routing process; each output port runs a transmit process; a shared
// buffer pool provides the central queue.
type Switch struct {
	eng    *sim.Engine
	id     NodeID
	name   string
	cfg    SwitchConfig
	ports  []Port
	routes map[NodeID]int
	backup map[NodeID]int
	pool   *sim.Semaphore
	outQ   []*sim.Queue[*Packet]
	local  LocalSink
	stats  SwitchStats

	// arb is the settle-phase crossbar arbiter: every same-instant arrival
	// joins it after the routing step and is granted in input-port-index
	// order at the end of the instant, so contention for the central pool,
	// the output queues, and the local sink resolves identically whatever
	// order the arrival events were inserted in — the property partitioned
	// byte-identity rests on (see DESIGN.md, "Settle-phase arbitration").
	arb *sim.Arbiter

	started bool
}

// NewSwitch builds a switch with the given identity. Attach links with
// AttachPort, set routes with SetRoute, then Start it.
func NewSwitch(eng *sim.Engine, id NodeID, name string, cfg SwitchConfig) *Switch {
	if cfg.Ports <= 0 {
		panic("san: switch needs ports")
	}
	s := &Switch{
		eng:    eng,
		id:     id,
		name:   name,
		cfg:    cfg,
		ports:  make([]Port, cfg.Ports),
		routes: make(map[NodeID]int),
		backup: make(map[NodeID]int),
		pool:   sim.NewSemaphore(cfg.PoolPackets),
		outQ:   make([]*sim.Queue[*Packet], cfg.Ports),
		arb:    sim.NewArbiter(eng),
	}
	for i := range s.outQ {
		s.outQ[i] = sim.NewQueue[*Packet]()
	}
	s.stats.MinPoolFree = cfg.PoolPackets
	return s
}

// ID returns the switch's node ID.
func (s *Switch) ID() NodeID { return s.id }

// Name returns the switch's debug name.
func (s *Switch) Name() string { return s.name }

// Engine returns the engine the switch runs on — its partition's engine in
// a partitioned simulation.
func (s *Switch) Engine() *sim.Engine { return s.eng }

// Config returns the switch configuration.
func (s *Switch) Config() SwitchConfig { return s.cfg }

// Stats returns a copy of the counters.
func (s *Switch) Stats() SwitchStats { return s.stats }

// QueuedPackets reports the packets currently sitting in output queues —
// the instantaneous central-queue occupancy, for timeline sampling.
func (s *Switch) QueuedPackets() int {
	n := 0
	for _, q := range s.outQ {
		n += q.Len()
	}
	return n
}

// PoolFree reports the buffer-pool slots currently free.
func (s *Switch) PoolFree() int { return s.pool.Available() }

// Port returns port i's links.
func (s *Switch) Port(i int) Port { return s.ports[i] }

// AttachPort wires port i: in carries traffic from the device, out carries
// traffic to it. Both must be created by the caller (cluster wiring owns
// link naming).
func (s *Switch) AttachPort(i int, in, out *Link) {
	if s.started {
		panic("san: AttachPort after Start")
	}
	if s.ports[i].In != nil {
		panic(fmt.Sprintf("san: %s port %d already attached", s.name, i))
	}
	s.ports[i] = Port{In: in, Out: out}
}

// SetRoute directs packets for dst out of port. Routes may be updated before
// Start only.
func (s *Switch) SetRoute(dst NodeID, port int) {
	if s.started {
		panic("san: SetRoute after Start")
	}
	if port < 0 || port >= s.cfg.Ports {
		panic(fmt.Sprintf("san: route to port %d of %d-port switch", port, s.cfg.Ports))
	}
	s.routes[dst] = port
}

// Route returns the output port for dst, or -1 if unroutable.
func (s *Switch) Route(dst NodeID) int {
	if p, ok := s.routes[dst]; ok {
		return p
	}
	return -1
}

// BackupRoute returns the backup output port for dst, or -1 if none.
func (s *Switch) BackupRoute(dst NodeID) int {
	if p, ok := s.backup[dst]; ok {
		return p
	}
	return -1
}

// SetBackupRoute directs packets for dst out of port when the primary
// route's link is down. Like SetRoute, backup routes are fixed before Start.
func (s *Switch) SetBackupRoute(dst NodeID, port int) {
	if s.started {
		panic("san: SetBackupRoute after Start")
	}
	if port < 0 || port >= s.cfg.Ports {
		panic(fmt.Sprintf("san: backup route to port %d of %d-port switch", port, s.cfg.Ports))
	}
	s.backup[dst] = port
}

// portUp reports whether port i can currently transmit: an unattached Out
// link counts as up so local-sink-only ports keep working.
func (s *Switch) portUp(i int) bool {
	out := s.ports[i].Out
	return out == nil || out.Up()
}

// pickRoute selects the output port for dst, falling back to the backup
// route when the primary port's link is down. With both routes down it
// returns the primary anyway — the packet is then lost on the dead link,
// where loss accounting and retransmission live.
func (s *Switch) pickRoute(dst NodeID) (port int, rerouted bool) {
	p, ok := s.routes[dst]
	if ok && s.portUp(p) {
		return p, false
	}
	if b, okb := s.backup[dst]; okb && s.portUp(b) {
		return b, ok // a reroute only if a primary existed and was down
	}
	if ok {
		return p, false
	}
	return -1, false
}

// noteNoRoute accounts an unroutable packet and, under -strict-routes,
// fails fast with enough context to find the missing table entry.
func (s *Switch) noteNoRoute(pkt *Packet) {
	s.stats.Dropped++
	s.stats.NoRouteDrops++
	if s.eng.Tracing() {
		s.eng.Emit("fault", "no_route_drop", s.name,
			fmt.Sprintf("%s pkt src=%d dst=%d flow=%d seq=%d", pkt.Hdr.Type, pkt.Hdr.Src, pkt.Hdr.Dst, pkt.Hdr.Flow, pkt.Hdr.Seq))
	}
	if strictRoutes.Load() {
		panic(fmt.Sprintf("san: %s has no route for %s packet src=%d dst=%d flow=%d seq=%d (-strict-routes)",
			s.name, pkt.Hdr.Type, pkt.Hdr.Src, pkt.Hdr.Dst, pkt.Hdr.Flow, pkt.Hdr.Seq))
	}
}

// SetLocalSink installs the handler for packets addressed to the switch
// itself (the active extension).
func (s *Switch) SetLocalSink(sink LocalSink) {
	if s.started {
		panic("san: SetLocalSink after Start")
	}
	s.local = sink
}

// Start spawns the per-port processes. Unattached ports are skipped.
func (s *Switch) Start() {
	if s.started {
		panic("san: double Start")
	}
	s.started = true
	for i := range s.ports {
		if s.ports[i].In != nil {
			i := i
			s.eng.Spawn(fmt.Sprintf("%s.in%d", s.name, i), func(p *sim.Proc) { s.inputLoop(p, i) })
		}
		if s.ports[i].Out != nil {
			i := i
			s.eng.Spawn(fmt.Sprintf("%s.out%d", s.name, i), func(p *sim.Proc) { s.outputLoop(p, i) })
		}
	}
}

// inputLoop routes packets arriving on port i. A packet for the switch
// itself goes to the local sink (blocking for data-buffer admission); other
// packets take a routing decision, a central-queue slot, and move to their
// output queue.
func (s *Switch) inputLoop(p *sim.Proc, i int) {
	in := s.ports[i].In
	for {
		pkt := in.Recv(p)
		if st := pkt.Stamp; st != nil {
			st.Open(HopRoute, s.name, p.Now())
		}
		p.Sleep(s.cfg.RoutingLatency)
		if s.eng.Tracing() {
			s.eng.Emit("packet", "recv", s.name,
				fmt.Sprintf("in%d %s pkt src=%d dst=%d flow=%d seq=%d size=%d",
					i, pkt.Hdr.Type, pkt.Hdr.Src, pkt.Hdr.Dst, pkt.Hdr.Flow, pkt.Hdr.Seq, pkt.Size))
		}
		if pkt.Corrupt {
			// Link-level CRC check: damaged packets stop here and rely on
			// end-to-end retransmission. Drops never contend, so they skip
			// arbitration.
			s.stats.CorruptDrops++
			in.ReturnCredit()
			continue
		}
		// Settle-phase crossbar arbitration: every packet that finished its
		// routing step at this instant — on any input port, in any event
		// order — is admitted in input-port-index order at the end of the
		// instant. Routing itself happens after the grant, so a same-instant
		// topology change is observed identically by the whole burst.
		s.arb.Join(p, i)
		if pkt.Hdr.Dst == s.id {
			s.stats.Local++
			if s.local == nil {
				s.stats.Dropped++
				in.ReturnCredit()
				continue
			}
			if st := pkt.Stamp; st != nil {
				st.Close(p.Now())
			}
			s.local.Deliver(p, pkt, in.FillRate())
			in.ReturnCredit()
			continue
		}
		out, rerouted := s.pickRoute(pkt.Hdr.Dst)
		if out < 0 {
			s.noteNoRoute(pkt)
			in.ReturnCredit()
			continue
		}
		if rerouted {
			s.stats.Rerouted++
		}
		s.pool.Acquire(p)
		s.stats.Routed++
		if st := pkt.Stamp; st != nil {
			st.Close(p.Now())
			st.Open(HopQueue, s.name, p.Now())
		}
		s.outQ[out].Put(pkt)
		s.noteDepth(out)
		in.ReturnCredit()
	}
}

// noteDepth records queue and pool occupancy extremes.
func (s *Switch) noteDepth(out int) {
	if d := s.outQ[out].Len(); d > s.stats.MaxQueueDepth {
		s.stats.MaxQueueDepth = d
	}
	if f := s.pool.Available(); f < s.stats.MinPoolFree {
		s.stats.MinPoolFree = f
	}
}

// outputLoop drains output queue i onto its link.
func (s *Switch) outputLoop(p *sim.Proc, i int) {
	out := s.ports[i].Out
	for {
		pkt := s.outQ[i].Get(p)
		if st := pkt.Stamp; st != nil {
			st.Close(p.Now())
		}
		out.Send(p, pkt)
		s.pool.Release()
	}
}

// Inject lets the switch itself source a packet toward dst (the active
// switch's send unit uses this: the crossbar is logically (N+1)xN). It
// arbitrates as the crossbar's extra input — pseudo-port N, behind every
// external port of the same instant — then blocks for a central-queue slot
// and enqueues on the proper output.
func (s *Switch) Inject(p *sim.Proc, pkt *Packet) error {
	s.arb.Join(p, s.cfg.Ports)
	out, rerouted := s.pickRoute(pkt.Hdr.Dst)
	if out < 0 {
		return fmt.Errorf("san: %s cannot route injected packet to node %d", s.name, pkt.Hdr.Dst)
	}
	if rerouted {
		s.stats.Rerouted++
	}
	s.pool.Acquire(p)
	s.stats.Routed++
	if st := pkt.Stamp; st != nil {
		st.Open(HopQueue, s.name, p.Now())
	}
	s.outQ[out].Put(pkt)
	s.noteDepth(out)
	return nil
}
