package san

import (
	"fmt"

	"activesan/internal/sim"
)

// LinkConfig sets a link's physical parameters.
type LinkConfig struct {
	// BandwidthBytesPerSec is the serialization rate (paper: 1 GB/s per
	// direction).
	BandwidthBytesPerSec float64
	// Propagation is the wire flight time.
	Propagation sim.Time
	// Credits is the receiver's input buffering in packets; the sender
	// consumes one credit per packet and the receiver returns it when the
	// packet leaves its input buffer (credit-based flow control per the
	// InfiniBand model the paper follows).
	Credits int
}

// DefaultLinkConfig returns the paper's link: 1 GB/s, with a short wire and
// eight packets of input buffering per link.
func DefaultLinkConfig() LinkConfig {
	return LinkConfig{
		BandwidthBytesPerSec: 1e9,
		Propagation:          10 * sim.Nanosecond,
		Credits:              8,
	}
}

// LinkStats counts traffic on one direction of a link.
type LinkStats struct {
	Packets int64
	Bytes   int64 // payload bytes
	// Fault-injection outcomes; all zero unless an injector is armed or the
	// link was taken down.
	Dropped   int64
	Corrupted int64
	Delayed   int64
}

// FaultVerdict is a link injector's decision for one packet.
type FaultVerdict int

// Verdicts.
const (
	// FaultPass delivers the packet normally (optionally delayed).
	FaultPass FaultVerdict = iota
	// FaultDrop loses the packet in flight; the link restores the consumed
	// credit once the tail would have cleared the wire.
	FaultDrop
	// FaultCorrupt delivers a damaged copy; receivers discard it as a CRC
	// failure.
	FaultCorrupt
)

// LinkInjector decides the fate of each packet entering a link. The extra
// delay applies to delivered packets (pass or corrupt). Implementations must
// be deterministic — seeded PRNG or schedule only, never wall-clock. When
// the link is down the link drops regardless of the verdict; an injector
// that keeps loss accounting should check Down itself and vote FaultDrop.
type LinkInjector interface {
	OnTransmit(l *Link, pkt *Packet) (FaultVerdict, sim.Time)
}

// Link is one direction of a cable: packets are serialized at the sender,
// fly for the propagation delay, and appear at the receiver's input queue.
// Delivery events fire at *head* arrival (virtual cut-through): the receiver
// may begin routing/filling immediately, while per-link serialization keeps
// bandwidth honest.
type Link struct {
	eng     *sim.Engine
	name    string
	cfg     LinkConfig
	line    *sim.Server
	credits *sim.Semaphore
	rx      *sim.Queue[*Packet]
	stats   LinkStats
	inj     LinkInjector
	down    bool
	// minCredits is the credit low-water mark, tracked only for stamped
	// packets so the telemetry-off path stays untouched; cfg.Credits until
	// telemetry observes the link.
	minCredits int

	// cross, when set, marks this link as a partition cut: the sender side
	// (serialization, credits, stats) stays on eng, while deliveries hand
	// off to the receiving partition's engine through the channel and
	// credits return the same way. creditRet is the release callback bound
	// once so the per-packet credit return does not allocate.
	cross     *sim.Channel
	creditRet func()
}

// NewLink builds a link.
func NewLink(eng *sim.Engine, name string, cfg LinkConfig) *Link {
	if cfg.Credits <= 0 {
		panic("san: link needs at least one credit")
	}
	return &Link{
		eng:        eng,
		name:       name,
		cfg:        cfg,
		line:       sim.NewServer(eng, name+".line"),
		credits:    sim.NewSemaphore(cfg.Credits),
		rx:         sim.NewQueue[*Packet](),
		minCredits: cfg.Credits,
	}
}

// Name returns the link's debug name.
func (l *Link) Name() string { return l.name }

// Engine returns the engine the link's sender side runs on. For a partition
// cut link this is the sending partition's engine.
func (l *Link) Engine() *sim.Engine { return l.eng }

// SetCross routes the link's deliveries and credit returns through a
// cross-partition channel; call before the simulation starts, on links whose
// receiver lives on a different engine than the sender.
func (l *Link) SetCross(ch *sim.Channel) {
	l.cross = ch
	l.creditRet = l.credits.Release
}

// Config returns the link parameters.
func (l *Link) Config() LinkConfig { return l.cfg }

// Stats returns a copy of the traffic counters.
func (l *Link) Stats() LinkStats { return l.stats }

// MinCredits reports the credit low-water mark seen by stamped packets —
// the backpressure watermark the telemetry recorder harvests. Equal to the
// configured credit count until telemetry observes contention.
func (l *Link) MinCredits() int { return l.minCredits }

// Utilization reports line occupancy over elapsed time.
func (l *Link) Utilization() float64 { return l.line.Utilization() }

// BusyTime reports cumulative serialization time, for utilization computed
// against an externally chosen elapsed time (the metrics registry divides
// by the workload's end rather than the engine clock).
func (l *Link) BusyTime() sim.Time { return l.line.BusyTime() }

// traceSend emits the typed packet-send event; call sites are guarded so a
// run without tracing pays nothing.
func (l *Link) traceSend(pkt *Packet) {
	l.eng.Emit("packet", "send", l.name, fmt.Sprintf("%s pkt src=%d dst=%d flow=%d seq=%d size=%d",
		pkt.Hdr.Type, pkt.Hdr.Src, pkt.Hdr.Dst, pkt.Hdr.Flow, pkt.Hdr.Seq, pkt.Size))
}

// FillRate returns the rate at which a delivered packet's payload streams
// into the receiver, for valid-bit modelling.
func (l *Link) FillRate() float64 { return l.cfg.BandwidthBytesPerSec }

// Send transmits pkt, blocking the caller for credit acquisition and
// serialization start. The caller regains control once the packet is on the
// wire (its tail has left the sender), modelling a DMA engine that moves to
// the next packet as soon as the line frees.
func (l *Link) Send(p *sim.Proc, pkt *Packet) {
	if l.eng.Tracing() {
		l.traceSend(pkt)
	}
	l.credits.Acquire(p)
	end := l.xmit(pkt)
	p.SleepUntil(end)
}

// SendAsync is Send without blocking for serialization (the caller only
// blocks if no credit is available). Used by senders that pipeline many
// packets from one process.
func (l *Link) SendAsync(p *sim.Proc, pkt *Packet) {
	if l.eng.Tracing() {
		l.traceSend(pkt)
	}
	l.credits.Acquire(p)
	l.xmit(pkt)
}

// xmit serializes pkt on the line and schedules its delivery (or fate, under
// fault injection), returning the serialization end time.
func (l *Link) xmit(pkt *Packet) (end sim.Time) {
	end = l.line.Reserve(sim.TransferTime(pkt.Wire(), l.cfg.BandwidthBytesPerSec))
	headAt := end - sim.TransferTime(pkt.Size, l.cfg.BandwidthBytesPerSec) + l.cfg.Propagation
	l.stats.Packets++
	l.stats.Bytes += pkt.Size
	if st := pkt.Stamp; st != nil {
		st.Add(HopWire, l.name, l.eng.Now(), headAt)
		if a := l.credits.Available(); a < l.minCredits {
			l.minCredits = a
		}
	}
	if l.inj == nil && !l.down {
		l.deliver(headAt, pkt)
		return end
	}
	l.faultXmit(pkt, headAt)
	return end
}

// deliver schedules pkt's head arrival at the receiver: directly on the
// engine, or through the cut channel when the receiver is another partition.
func (l *Link) deliver(headAt sim.Time, pkt *Packet) {
	if l.cross != nil {
		l.cross.Deliver(headAt, func() { l.rx.Put(pkt) })
		return
	}
	l.eng.Schedule(headAt, func() { l.rx.Put(pkt) })
}

// faultXmit is the slow delivery path, reached only when an injector is
// armed or the link is down; the zero-fault fast path above never calls it.
func (l *Link) faultXmit(pkt *Packet, headAt sim.Time) {
	verdict, delay := FaultPass, sim.Time(0)
	if l.inj != nil {
		verdict, delay = l.inj.OnTransmit(l, pkt)
	}
	if l.down {
		verdict = FaultDrop
	}
	switch verdict {
	case FaultDrop:
		l.stats.Dropped++
		if l.eng.Tracing() {
			l.eng.Emit("fault", "link_drop", l.name, fmt.Sprintf("%s pkt dst=%d flow=%d seq=%d",
				pkt.Hdr.Type, pkt.Hdr.Dst, pkt.Hdr.Flow, pkt.Hdr.Seq))
		}
		// The receiver will never see this packet, so it can never return
		// the credit; restore it when the tail would have cleared the wire
		// (hardware: the link-level credit sync that follows a lost symbol)
		// or flow control wedges forever.
		l.eng.Schedule(l.TailTime(headAt, pkt.Size), func() { l.credits.Release() })
		return
	case FaultCorrupt:
		l.stats.Corrupted++
		cp := *pkt
		cp.Corrupt = true
		pkt = &cp
	}
	if delay > 0 {
		l.stats.Delayed++
	}
	l.deliver(headAt+delay, pkt)
}

// SetInjector arms (or, with nil, disarms) fault injection on this link.
func (l *Link) SetInjector(inj LinkInjector) { l.inj = inj }

// SetDown marks the link down (every packet is lost) or back up. Credits
// consumed by lost packets are restored on the usual schedule, so traffic
// sent into a dead link drains rather than deadlocks.
func (l *Link) SetDown(down bool) { l.down = down }

// Down reports whether the link is administratively down.
func (l *Link) Down() bool { return l.down }

// Up reports the opposite of Down, for route-selection call sites.
func (l *Link) Up() bool { return !l.down }

// Recv blocks until a packet's head arrives and returns it. The receiver
// owns the packet's input-buffer credit and must call ReturnCredit once the
// packet has left its input stage.
func (l *Link) Recv(p *sim.Proc) *Packet {
	return l.rx.Get(p)
}

// TryRecv returns a delivered packet without blocking.
func (l *Link) TryRecv() (*Packet, bool) { return l.rx.TryGet() }

// ReturnCredit hands one input-buffer slot back to the sender. On a cut
// link the caller runs on the receiving partition; the credit crosses back
// at the receiver's current time so the sender observes the exact serial
// flow-control schedule.
func (l *Link) ReturnCredit() {
	if l.cross != nil {
		l.cross.Credit(l.creditRet)
		return
	}
	l.credits.Release()
}

// TailTime returns when the last byte of a packet delivered at headAt
// finishes arriving.
func (l *Link) TailTime(headAt sim.Time, size int64) sim.Time {
	return headAt + sim.TransferTime(size, l.cfg.BandwidthBytesPerSec)
}
