package san

import (
	"fmt"

	"activesan/internal/sim"
)

// LinkConfig sets a link's physical parameters.
type LinkConfig struct {
	// BandwidthBytesPerSec is the serialization rate (paper: 1 GB/s per
	// direction).
	BandwidthBytesPerSec float64
	// Propagation is the wire flight time.
	Propagation sim.Time
	// Credits is the receiver's input buffering in packets; the sender
	// consumes one credit per packet and the receiver returns it when the
	// packet leaves its input buffer (credit-based flow control per the
	// InfiniBand model the paper follows).
	Credits int
}

// DefaultLinkConfig returns the paper's link: 1 GB/s, with a short wire and
// eight packets of input buffering per link.
func DefaultLinkConfig() LinkConfig {
	return LinkConfig{
		BandwidthBytesPerSec: 1e9,
		Propagation:          10 * sim.Nanosecond,
		Credits:              8,
	}
}

// LinkStats counts traffic on one direction of a link.
type LinkStats struct {
	Packets int64
	Bytes   int64 // payload bytes
}

// Link is one direction of a cable: packets are serialized at the sender,
// fly for the propagation delay, and appear at the receiver's input queue.
// Delivery events fire at *head* arrival (virtual cut-through): the receiver
// may begin routing/filling immediately, while per-link serialization keeps
// bandwidth honest.
type Link struct {
	eng     *sim.Engine
	name    string
	cfg     LinkConfig
	line    *sim.Server
	credits *sim.Semaphore
	rx      *sim.Queue[*Packet]
	stats   LinkStats
}

// NewLink builds a link.
func NewLink(eng *sim.Engine, name string, cfg LinkConfig) *Link {
	if cfg.Credits <= 0 {
		panic("san: link needs at least one credit")
	}
	return &Link{
		eng:     eng,
		name:    name,
		cfg:     cfg,
		line:    sim.NewServer(eng, name+".line"),
		credits: sim.NewSemaphore(cfg.Credits),
		rx:      sim.NewQueue[*Packet](),
	}
}

// Name returns the link's debug name.
func (l *Link) Name() string { return l.name }

// Config returns the link parameters.
func (l *Link) Config() LinkConfig { return l.cfg }

// Stats returns a copy of the traffic counters.
func (l *Link) Stats() LinkStats { return l.stats }

// Utilization reports line occupancy over elapsed time.
func (l *Link) Utilization() float64 { return l.line.Utilization() }

// BusyTime reports cumulative serialization time, for utilization computed
// against an externally chosen elapsed time (the metrics registry divides
// by the workload's end rather than the engine clock).
func (l *Link) BusyTime() sim.Time { return l.line.BusyTime() }

// traceSend emits the typed packet-send event; call sites are guarded so a
// run without tracing pays nothing.
func (l *Link) traceSend(pkt *Packet) {
	l.eng.Emit("packet", "send", l.name, fmt.Sprintf("%s pkt src=%d dst=%d flow=%d seq=%d size=%d",
		pkt.Hdr.Type, pkt.Hdr.Src, pkt.Hdr.Dst, pkt.Hdr.Flow, pkt.Hdr.Seq, pkt.Size))
}

// FillRate returns the rate at which a delivered packet's payload streams
// into the receiver, for valid-bit modelling.
func (l *Link) FillRate() float64 { return l.cfg.BandwidthBytesPerSec }

// Send transmits pkt, blocking the caller for credit acquisition and
// serialization start. The caller regains control once the packet is on the
// wire (its tail has left the sender), modelling a DMA engine that moves to
// the next packet as soon as the line frees.
func (l *Link) Send(p *sim.Proc, pkt *Packet) {
	if l.eng.Tracing() {
		l.traceSend(pkt)
	}
	l.credits.Acquire(p)
	end := l.line.Reserve(sim.TransferTime(pkt.Wire(), l.cfg.BandwidthBytesPerSec))
	headAt := end - sim.TransferTime(pkt.Size, l.cfg.BandwidthBytesPerSec) + l.cfg.Propagation
	l.stats.Packets++
	l.stats.Bytes += pkt.Size
	l.eng.Schedule(headAt, func() { l.rx.Put(pkt) })
	p.SleepUntil(end)
}

// SendAsync is Send without blocking for serialization (the caller only
// blocks if no credit is available). Used by senders that pipeline many
// packets from one process.
func (l *Link) SendAsync(p *sim.Proc, pkt *Packet) {
	if l.eng.Tracing() {
		l.traceSend(pkt)
	}
	l.credits.Acquire(p)
	end := l.line.Reserve(sim.TransferTime(pkt.Wire(), l.cfg.BandwidthBytesPerSec))
	headAt := end - sim.TransferTime(pkt.Size, l.cfg.BandwidthBytesPerSec) + l.cfg.Propagation
	l.stats.Packets++
	l.stats.Bytes += pkt.Size
	l.eng.Schedule(headAt, func() { l.rx.Put(pkt) })
}

// Recv blocks until a packet's head arrives and returns it. The receiver
// owns the packet's input-buffer credit and must call ReturnCredit once the
// packet has left its input stage.
func (l *Link) Recv(p *sim.Proc) *Packet {
	return l.rx.Get(p)
}

// TryRecv returns a delivered packet without blocking.
func (l *Link) TryRecv() (*Packet, bool) { return l.rx.TryGet() }

// ReturnCredit hands one input-buffer slot back to the sender.
func (l *Link) ReturnCredit() { l.credits.Release() }

// TailTime returns when the last byte of a packet delivered at headAt
// finishes arriving.
func (l *Link) TailTime(headAt sim.Time, size int64) sim.Time {
	return headAt + sim.TransferTime(size, l.cfg.BandwidthBytesPerSec)
}
