package san

import (
	"testing"
	"testing/quick"

	"activesan/internal/sim"
)

func TestHeaderValidate(t *testing.T) {
	good := Header{HandlerID: 63, Addr: 0xFFFF_FFFF}
	if err := good.Validate(); err != nil {
		t.Fatalf("good header rejected: %v", err)
	}
	if err := (Header{HandlerID: 64}).Validate(); err == nil {
		t.Fatal("7-bit handler ID accepted")
	}
	if err := (Header{Addr: 1 << 32}).Validate(); err == nil {
		t.Fatal("33-bit address accepted")
	}
}

func TestMessageSegmentation(t *testing.T) {
	m := &Message{Hdr: Header{Addr: 0x1000}, Size: MTU*2 + 100}
	pkts := m.Packets(nil)
	if len(pkts) != 3 {
		t.Fatalf("got %d packets, want 3", len(pkts))
	}
	var total int64
	for i, pkt := range pkts {
		total += pkt.Size
		if pkt.Hdr.Seq != i {
			t.Errorf("packet %d has seq %d", i, pkt.Hdr.Seq)
		}
		if want := int64(0x1000) + int64(i)*MTU; pkt.Hdr.Addr != want {
			t.Errorf("packet %d addr %#x, want %#x", i, pkt.Hdr.Addr, want)
		}
	}
	if total != m.Size {
		t.Fatalf("segmented %d bytes, want %d", total, m.Size)
	}
	if !pkts[2].Hdr.Last || pkts[0].Hdr.Last || pkts[1].Hdr.Last {
		t.Fatal("Last flag misplaced")
	}
	if pkts[2].Size != 100 {
		t.Fatalf("tail packet size %d, want 100", pkts[2].Size)
	}
}

func TestMessageSegmentationProperty(t *testing.T) {
	f := func(size uint32) bool {
		m := &Message{Size: int64(size % (1 << 20))}
		pkts := m.Packets(nil)
		var total int64
		for i, pkt := range pkts {
			if pkt.Size > MTU {
				return false
			}
			if pkt.Hdr.Last != (i == len(pkts)-1) {
				return false
			}
			total += pkt.Size
		}
		if m.Size == 0 {
			return len(pkts) == 1 && total == 0
		}
		return total == m.Size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSliceSplitCoversData(t *testing.T) {
	data := make([]byte, 1300)
	for i := range data {
		data[i] = byte(i)
	}
	m := &Message{Size: int64(len(data))}
	pkts := m.Packets(SliceSplit(data))
	var rebuilt []byte
	for _, pkt := range pkts {
		rebuilt = append(rebuilt, pkt.Payload.([]byte)...)
	}
	if len(rebuilt) != len(data) {
		t.Fatalf("rebuilt %d bytes, want %d", len(rebuilt), len(data))
	}
	for i := range data {
		if rebuilt[i] != data[i] {
			t.Fatalf("byte %d differs", i)
		}
	}
}

func TestLinkDeliveryTiming(t *testing.T) {
	eng := sim.NewEngine()
	l := NewLink(eng, "l", DefaultLinkConfig())
	pkt := &Packet{Size: 512}
	var sentAt, gotAt sim.Time
	eng.Spawn("tx", func(p *sim.Proc) {
		l.Send(p, pkt)
		sentAt = p.Now()
	})
	eng.Spawn("rx", func(p *sim.Proc) {
		l.Recv(p)
		gotAt = p.Now()
		l.ReturnCredit()
	})
	eng.Run()
	wire := sim.TransferTime(512+HeaderBytes, 1e9)
	if sentAt != wire {
		t.Fatalf("sender freed at %v, want %v", sentAt, wire)
	}
	// Head arrives after header serialization + propagation (cut-through).
	wantHead := sim.TransferTime(HeaderBytes, 1e9) + 10*sim.Nanosecond
	if gotAt != wantHead {
		t.Fatalf("head arrived at %v, want %v", gotAt, wantHead)
	}
}

func TestLinkCreditsBackpressure(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultLinkConfig()
	cfg.Credits = 2
	l := NewLink(eng, "l", cfg)
	sent := 0
	eng.Spawn("tx", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			l.Send(p, &Packet{Size: 512})
			sent++
		}
	})
	// No receiver returns credits: only 2 packets can be sent.
	eng.Run()
	if sent != 2 {
		t.Fatalf("sent %d packets with 2 credits and no receiver, want 2", sent)
	}
	// A receiver draining and returning credits unblocks the rest.
	eng.Spawn("rx", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			l.Recv(p)
			p.Sleep(sim.Microsecond)
			l.ReturnCredit()
		}
	})
	eng.Run()
	if sent != 4 {
		t.Fatalf("sent %d packets after credits returned, want 4", sent)
	}
	if l.Stats().Packets != 4 || l.Stats().Bytes != 4*512 {
		t.Fatalf("link stats = %+v", l.Stats())
	}
	eng.Shutdown()
}

func TestLinkBandwidthSerialization(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultLinkConfig()
	cfg.Credits = 100
	l := NewLink(eng, "l", cfg)
	const n = 50
	eng.Spawn("tx", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			l.SendAsync(p, &Packet{Size: 512})
		}
	})
	var last sim.Time
	eng.Spawn("rx", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			l.Recv(p)
			l.ReturnCredit()
			last = p.Now()
		}
	})
	eng.Run()
	// 50 packets of (512+16) bytes at 1 GB/s cannot beat the line rate;
	// with cut-through, the final head arrives one payload time before the
	// line drains.
	minTime := sim.TransferTime(n*(512+HeaderBytes), 1e9) - sim.TransferTime(512, 1e9)
	if last < minTime {
		t.Fatalf("delivered %d packets by %v, faster than line rate %v", n, last, minTime)
	}
}

// star builds a 1-switch fabric with n endpoints and returns the switch and
// per-endpoint ports.
func star(eng *sim.Engine, n int) (*Switch, []Port) {
	sw := NewSwitch(eng, NodeID(100), "sw", DefaultSwitchConfig(n))
	eps := make([]Port, n)
	for i := 0; i < n; i++ {
		toSw := NewLink(eng, "up", DefaultLinkConfig())
		fromSw := NewLink(eng, "down", DefaultLinkConfig())
		sw.AttachPort(i, toSw, fromSw)
		// The endpoint's view: In = from switch, Out = toward switch.
		eps[i] = Port{In: fromSw, Out: toSw}
		sw.SetRoute(NodeID(i), i)
	}
	return sw, eps
}

func TestSwitchRoutesBetweenPorts(t *testing.T) {
	eng := sim.NewEngine()
	sw, eps := star(eng, 4)
	sw.Start()
	var got *Packet
	var at sim.Time
	eng.Spawn("src", func(p *sim.Proc) {
		eps[0].Out.Send(p, &Packet{Hdr: Header{Src: 0, Dst: 2}, Size: 512})
	})
	eng.Spawn("dst", func(p *sim.Proc) {
		got = eps[2].In.Recv(p)
		at = p.Now()
		eps[2].In.ReturnCredit()
	})
	eng.Run()
	if got == nil || got.Hdr.Dst != 2 {
		t.Fatal("packet not delivered to port 2")
	}
	// End-to-end head latency must include the 100 ns routing step.
	if at < 100*sim.Nanosecond {
		t.Fatalf("delivery at %v too fast for routing latency", at)
	}
	if sw.Stats().Routed != 1 {
		t.Fatalf("routed = %d, want 1", sw.Stats().Routed)
	}
	eng.Shutdown()
}

func TestSwitchDropsUnroutable(t *testing.T) {
	eng := sim.NewEngine()
	sw, eps := star(eng, 2)
	sw.Start()
	eng.Spawn("src", func(p *sim.Proc) {
		eps[0].Out.Send(p, &Packet{Hdr: Header{Src: 0, Dst: 99}, Size: 64})
	})
	eng.Run()
	if sw.Stats().Dropped != 1 {
		t.Fatalf("dropped = %d, want 1", sw.Stats().Dropped)
	}
	eng.Shutdown()
}

type captureSink struct {
	pkts []*Packet
	rate float64
}

func (c *captureSink) Deliver(_ *sim.Proc, pkt *Packet, rate float64) {
	c.pkts = append(c.pkts, pkt)
	c.rate = rate
}

func TestSwitchLocalSink(t *testing.T) {
	eng := sim.NewEngine()
	sw, eps := star(eng, 2)
	sink := &captureSink{}
	sw.SetLocalSink(sink)
	sw.Start()
	eng.Spawn("src", func(p *sim.Proc) {
		eps[0].Out.Send(p, &Packet{Hdr: Header{Src: 0, Dst: sw.ID(), Type: ActiveMsg, HandlerID: 5}, Size: 128})
	})
	eng.Run()
	if len(sink.pkts) != 1 || sink.pkts[0].Hdr.HandlerID != 5 {
		t.Fatalf("local sink got %d packets", len(sink.pkts))
	}
	if sink.rate != 1e9 {
		t.Fatalf("fill rate = %v, want link bandwidth", sink.rate)
	}
	if sw.Stats().Local != 1 {
		t.Fatalf("local count = %d", sw.Stats().Local)
	}
	eng.Shutdown()
}

func TestSwitchNoSinkDropsLocal(t *testing.T) {
	eng := sim.NewEngine()
	sw, eps := star(eng, 2)
	sw.Start()
	eng.Spawn("src", func(p *sim.Proc) {
		eps[0].Out.Send(p, &Packet{Hdr: Header{Src: 0, Dst: sw.ID()}, Size: 64})
	})
	eng.Run()
	if sw.Stats().Dropped != 1 {
		t.Fatalf("dropped = %d, want 1", sw.Stats().Dropped)
	}
	eng.Shutdown()
}

func TestSwitchInject(t *testing.T) {
	eng := sim.NewEngine()
	sw, eps := star(eng, 2)
	sw.Start()
	var got *Packet
	eng.Spawn("injector", func(p *sim.Proc) {
		if err := sw.Inject(p, &Packet{Hdr: Header{Src: sw.ID(), Dst: 1}, Size: 256}); err != nil {
			t.Errorf("inject failed: %v", err)
		}
	})
	eng.Spawn("dst", func(p *sim.Proc) {
		got = eps[1].In.Recv(p)
		eps[1].In.ReturnCredit()
	})
	eng.Run()
	if got == nil || got.Hdr.Src != sw.ID() {
		t.Fatal("injected packet not delivered")
	}
	eng.Shutdown()
}

func TestSwitchInjectUnroutable(t *testing.T) {
	eng := sim.NewEngine()
	sw, _ := star(eng, 2)
	sw.Start()
	eng.Spawn("injector", func(p *sim.Proc) {
		if err := sw.Inject(p, &Packet{Hdr: Header{Dst: 55}}); err == nil {
			t.Error("inject to unroutable destination succeeded")
		}
	})
	eng.Run()
	eng.Shutdown()
}

func TestTwoSwitchPath(t *testing.T) {
	// ep0 - swA - swB - ep1: packets cross an inter-switch trunk.
	eng := sim.NewEngine()
	swA := NewSwitch(eng, 100, "swA", DefaultSwitchConfig(2))
	swB := NewSwitch(eng, 101, "swB", DefaultSwitchConfig(2))
	mk := func(n string) *Link { return NewLink(eng, n, DefaultLinkConfig()) }
	ep0up, ep0down := mk("0up"), mk("0down")
	ep1up, ep1down := mk("1up"), mk("1down")
	abUp, abDown := mk("ab"), mk("ba")
	swA.AttachPort(0, ep0up, ep0down)
	swA.AttachPort(1, abDown, abUp) // A's trunk: in from B, out to B
	swB.AttachPort(0, abUp, abDown)
	swB.AttachPort(1, ep1up, ep1down)
	swA.SetRoute(0, 0)
	swA.SetRoute(1, 1)
	swB.SetRoute(0, 0)
	swB.SetRoute(1, 1)
	swA.Start()
	swB.Start()
	var gotAt sim.Time
	eng.Spawn("src", func(p *sim.Proc) {
		ep0up.Send(p, &Packet{Hdr: Header{Src: 0, Dst: 1}, Size: 512})
	})
	eng.Spawn("dst", func(p *sim.Proc) {
		ep1down.Recv(p)
		gotAt = p.Now()
		ep1down.ReturnCredit()
	})
	eng.Run()
	if gotAt == 0 {
		t.Fatal("packet never crossed two switches")
	}
	// Two routing steps must be included.
	if gotAt < 200*sim.Nanosecond {
		t.Fatalf("two-hop delivery at %v too fast", gotAt)
	}
	eng.Shutdown()
}

func TestAttachAfterStartPanics(t *testing.T) {
	eng := sim.NewEngine()
	sw, _ := star(eng, 2)
	sw.Start()
	defer eng.Shutdown()
	defer func() {
		if recover() == nil {
			t.Fatal("AttachPort after Start did not panic")
		}
	}()
	sw.AttachPort(0, nil, nil)
}

func TestPacketConservationProperty(t *testing.T) {
	// Property: across random star fabrics and traffic matrices, every
	// packet sent is either delivered to its destination or counted as
	// dropped — none vanish in queues once the fabric quiesces.
	f := func(seed uint8) bool {
		n := 2 + int(seed%5)
		eng := sim.NewEngine()
		sw, eps := star(eng, n)
		sw.Start()
		state := uint64(seed) + 1
		next := func() uint64 {
			state ^= state << 13
			state ^= state >> 7
			state ^= state << 17
			return state
		}
		total := 0
		received := make([]int, n)
		for src := 0; src < n; src++ {
			src := src
			count := 1 + int(next()%8)
			total += count
			eng.Spawn("tx", func(p *sim.Proc) {
				for i := 0; i < count; i++ {
					dst := NodeID(next() % uint64(n+1)) // may be unroutable (== n)
					eps[src].Out.Send(p, &Packet{Hdr: Header{Src: NodeID(src), Dst: dst}, Size: 256})
				}
			})
		}
		for d := 0; d < n; d++ {
			d := d
			eng.Spawn("rx", func(p *sim.Proc) {
				for {
					eps[d].In.Recv(p)
					received[d]++
					eps[d].In.ReturnCredit()
				}
			})
		}
		eng.Run()
		eng.Shutdown()
		got := 0
		for _, r := range received {
			got += r
		}
		// Packets to NodeID(n) are unroutable (and self-addressed packets
		// to the switch id are dropped without a sink).
		return got+int(sw.Stats().Dropped) == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestOutputQueueOccupancyStats(t *testing.T) {
	// Three senders converging on one output must queue in the central
	// pool; the high-water marks record it.
	eng := sim.NewEngine()
	sw, eps := star(eng, 4)
	sw.Start()
	for src := 0; src < 3; src++ {
		src := src
		eng.Spawn("tx", func(p *sim.Proc) {
			for i := 0; i < 16; i++ {
				eps[src].Out.SendAsync(p, &Packet{Hdr: Header{Src: NodeID(src), Dst: 3}, Size: 512})
			}
		})
	}
	got := 0
	eng.Spawn("rx", func(p *sim.Proc) {
		for got < 48 {
			eps[3].In.Recv(p)
			got++
			eps[3].In.ReturnCredit()
		}
	})
	eng.Run()
	defer eng.Shutdown()
	st := sw.Stats()
	if st.MaxQueueDepth < 2 {
		t.Fatalf("max queue depth = %d, want congestion", st.MaxQueueDepth)
	}
	if st.MinPoolFree >= sw.Config().PoolPackets {
		t.Fatalf("pool low-water = %d, pool never used?", st.MinPoolFree)
	}
	if got != 48 {
		t.Fatalf("delivered %d packets", got)
	}
}
