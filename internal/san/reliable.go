package san

import (
	"sort"

	"activesan/internal/sim"
)

// This file is the optional end-to-end reliability layer: a sender-side
// TxTracker (per-flow retransmission with timeout + exponential backoff) and
// a receiver-side RxTracker (in-order delivery, duplicate suppression, and a
// credit-restoring ACK/NAK path — control packets ride the normal links, so
// they consume and return credits like any other traffic). Nothing here runs
// unless a NIC or store explicitly enables it, keeping the zero-fault
// configuration byte-identical to the lossless paper model.

// ackBytes is the payload size of an ACK/NAK control packet (64-bit flow id
// crammed next to the type tag; the header rides on top as usual).
const ackBytes int64 = 8

// AckInfo acknowledges complete delivery of one (flow, type) message.
type AckInfo struct {
	Flow int64
	Of   Type // the acknowledged message's packet type
}

// NakInfo reports the gaps a receiver observed after the final packet of a
// message arrived; the sender retransmits just the listed sequences.
type NakInfo struct {
	Flow    int64
	Of      Type
	Missing []int
}

// RetxConfig tunes the sender-side retransmission state machine.
type RetxConfig struct {
	// Timeout is the initial retransmission timeout, measured from the last
	// packet handed to the link for a flow.
	Timeout sim.Time
	// Backoff multiplies the timeout after each expiry, up to MaxBackoff.
	Backoff float64
	// MaxBackoff caps the exponential growth.
	MaxBackoff sim.Time
	// MaxRetries abandons a flow after this many consecutive timeouts.
	MaxRetries int
}

// DefaultRetxConfig returns a config tuned to the paper's fabric: the RTT of
// a switch hop is microseconds, so a 50 µs RTO recovers quickly without
// spurious retransmission, and twelve doublings capped at 2 ms ride out a
// multi-event outage.
func DefaultRetxConfig() RetxConfig {
	return RetxConfig{
		Timeout:    50 * sim.Microsecond,
		Backoff:    2,
		MaxBackoff: 2 * sim.Millisecond,
		MaxRetries: 12,
	}
}

// TxStats counts sender-side reliability activity.
type TxStats struct {
	Tracked     int64 // packets recorded for possible retransmission
	Retransmits int64 // packets re-sent (timeout + NAK)
	TimeoutRetx int64 // timeout expiries that retransmitted
	NakRetx     int64 // NAK-driven retransmissions
	AcksSeen    int64
	Abandoned   int64 // flows dropped after MaxRetries
}

// txKey identifies one tracked message. The packet type is part of the key
// because the host's write path reuses a single flow id for the IORequest
// and its Data message.
type txKey struct {
	dst  NodeID
	flow int64
	of   Type
}

// txFlow is the retransmission state of one in-flight message.
type txFlow struct {
	pkts    map[int]*Packet // unacked packets by seq
	gen     int             // timer generation; stale timer events no-op
	rto     sim.Time
	retries int
}

// TxTracker watches packets a sender puts on the wire and re-sends them
// until the receiver acknowledges the complete message. Retransmissions go
// through the send callback (non-blocking: senders enqueue to their
// retransmit process) so timer events never block the engine.
type TxTracker struct {
	eng       *sim.Engine
	cfg       RetxConfig
	send      func(*Packet)
	resolve   func(dst NodeID, flow int64, of Type)
	trackable func(NodeID) bool
	flows     map[txKey]*txFlow
	stats     TxStats
}

// NewTxTracker builds a tracker. send must not block (enqueue, don't Send).
func NewTxTracker(eng *sim.Engine, cfg RetxConfig, send func(*Packet)) *TxTracker {
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultRetxConfig().Timeout
	}
	if cfg.Backoff <= 1 {
		cfg.Backoff = DefaultRetxConfig().Backoff
	}
	if cfg.MaxBackoff < cfg.Timeout {
		cfg.MaxBackoff = cfg.Timeout
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = DefaultRetxConfig().MaxRetries
	}
	return &TxTracker{eng: eng, cfg: cfg, send: send, flows: map[txKey]*txFlow{}}
}

// SetResolve installs a callback fired when a flow is fully acknowledged;
// the fault injector uses it to mark spurious retransmission losses as
// tolerated rather than pending.
func (t *TxTracker) SetResolve(fn func(dst NodeID, flow int64, of Type)) { t.resolve = fn }

// SetTrackable restricts tracking to destinations that speak the
// reliability protocol. Packets to other nodes — notably active messages
// addressed to a switch, which has no receive-side tracker and would never
// acknowledge — pass through untracked, so they are never retransmitted
// (a duplicate active message would invoke its handler twice).
func (t *TxTracker) SetTrackable(fn func(NodeID) bool) { t.trackable = fn }

// Stats returns a copy of the counters.
func (t *TxTracker) Stats() TxStats { return t.stats }

// Outstanding reports how many messages await acknowledgement.
func (t *TxTracker) Outstanding() int { return len(t.flows) }

// Record notes that pkt was handed to the link and (re)arms the flow's
// retransmission timer. Ack packets are fire-and-forget: a lost ACK is
// recovered by the sender's timeout and the receiver's duplicate re-ACK.
func (t *TxTracker) Record(pkt *Packet) {
	if pkt.Hdr.Type == Ack {
		return
	}
	if t.trackable != nil && !t.trackable(pkt.Hdr.Dst) {
		return
	}
	k := txKey{pkt.Hdr.Dst, pkt.Hdr.Flow, pkt.Hdr.Type}
	f := t.flows[k]
	if f == nil {
		f = &txFlow{pkts: map[int]*Packet{}, rto: t.cfg.Timeout}
		t.flows[k] = f
	}
	if _, seen := f.pkts[pkt.Hdr.Seq]; !seen {
		t.stats.Tracked++
	}
	f.pkts[pkt.Hdr.Seq] = pkt
	t.arm(k, f)
}

// arm bumps the flow's timer generation and schedules the next expiry;
// earlier scheduled expiries see a stale generation and do nothing (the
// engine has no timer cancellation on this path, and dead events are cheap).
func (t *TxTracker) arm(k txKey, f *txFlow) {
	f.gen++
	gen := f.gen
	t.eng.Schedule(t.eng.Now()+f.rto, func() { t.expire(k, gen) })
}

// expire is the RTO event: retransmit everything unacked, back off, re-arm.
func (t *TxTracker) expire(k txKey, gen int) {
	f := t.flows[k]
	if f == nil || f.gen != gen || len(f.pkts) == 0 {
		return
	}
	f.retries++
	if f.retries > t.cfg.MaxRetries {
		t.stats.Abandoned++
		delete(t.flows, k)
		return
	}
	t.stats.TimeoutRetx++
	if next := sim.Time(float64(f.rto) * t.cfg.Backoff); next <= t.cfg.MaxBackoff {
		f.rto = next
	} else {
		f.rto = t.cfg.MaxBackoff
	}
	for _, seq := range sortedSeqs(f.pkts) {
		t.stats.Retransmits++
		t.send(f.pkts[seq])
	}
	t.arm(k, f)
}

// OnAck retires a fully delivered flow. src is the acknowledging node —
// the destination the tracked packets were sent to.
func (t *TxTracker) OnAck(src NodeID, info AckInfo) {
	t.stats.AcksSeen++
	k := txKey{src, info.Flow, info.Of}
	f := t.flows[k]
	if f == nil {
		return
	}
	f.gen++ // disarm pending timers
	delete(t.flows, k)
	if t.resolve != nil {
		t.resolve(k.dst, k.flow, k.of)
	}
}

// OnNak immediately retransmits the sequences the receiver reported missing
// and resets the retry budget — a NAK is proof the path works again.
func (t *TxTracker) OnNak(src NodeID, info NakInfo) {
	k := txKey{src, info.Flow, info.Of}
	f := t.flows[k]
	if f == nil {
		return
	}
	sent := false
	for _, seq := range info.Missing {
		if pkt, ok := f.pkts[seq]; ok {
			t.stats.Retransmits++
			t.send(pkt)
			sent = true
		}
	}
	if sent {
		t.stats.NakRetx++
		f.retries = 0
		t.arm(k, f)
	}
}

// sortedSeqs orders a retransmission burst deterministically; map iteration
// order would leak into packet timing and break reproducibility.
func sortedSeqs(m map[int]*Packet) []int {
	seqs := make([]int, 0, len(m))
	for s := range m {
		seqs = append(seqs, s)
	}
	sort.Ints(seqs)
	return seqs
}

// RxStats counts receiver-side reliability activity.
type RxStats struct {
	Delivered      int64 // packets released in order to the consumer
	Duplicates     int64 // retransmitted packets already seen
	AcksSent       int64
	ReAcks         int64 // duplicate-final re-acknowledgements
	NaksSent       int64
	CorruptDropped int64
}

// rxKey mirrors txKey from the receiver's point of view.
type rxKey struct {
	src  NodeID
	flow int64
	of   Type
}

// rxFlow buffers out-of-order arrivals of one message.
type rxFlow struct {
	next    int
	buf     map[int]*Packet
	lastSeq int // -1 until the Last-marked packet arrives
}

// RxTracker reorders arrivals, suppresses duplicates, and drives the ACK/NAK
// path. The ctl callback carries control packets back toward the sender and
// must not block (enqueue, don't Send).
type RxTracker struct {
	me        NodeID
	ctl       func(*Packet)
	trackable func(NodeID) bool
	flows     map[rxKey]*rxFlow
	done      map[rxKey]bool // completed flows, for duplicate re-ACK
	stats     RxStats
}

// NewRxTracker builds a tracker for a node's receive side.
func NewRxTracker(me NodeID, ctl func(*Packet)) *RxTracker {
	return &RxTracker{me: me, ctl: ctl, flows: map[rxKey]*rxFlow{}, done: map[rxKey]bool{}}
}

// Stats returns a copy of the counters.
func (r *RxTracker) Stats() RxStats { return r.stats }

// SetTrackable mirrors TxTracker.SetTrackable on the receive side: packets
// from senders outside the protocol — a switch's handler plane, whose
// protocols reuse one flow id across messages, making dedup ambiguous — are
// delivered as-is, with no reordering, dedup, or ACKs. They keep exactly the
// lossless-fabric semantics they were written against.
func (r *RxTracker) SetTrackable(fn func(NodeID) bool) { r.trackable = fn }

// Observe filters one arrival and returns the packets now deliverable in
// order (possibly none, possibly several when a retransmission fills a gap).
func (r *RxTracker) Observe(pkt *Packet) []*Packet {
	if pkt.Corrupt {
		r.stats.CorruptDropped++
		return nil
	}
	if pkt.Hdr.Type == Ack {
		return nil
	}
	if r.trackable != nil && !r.trackable(pkt.Hdr.Src) {
		r.stats.Delivered++
		return []*Packet{pkt}
	}
	k := rxKey{pkt.Hdr.Src, pkt.Hdr.Flow, pkt.Hdr.Type}
	if r.done[k] {
		// The whole message was already delivered; this is a spurious
		// retransmission, which means our ACK was lost — repeat it when the
		// sender re-sends the tail.
		r.stats.Duplicates++
		if pkt.Hdr.Last {
			r.stats.ReAcks++
			r.ack(pkt)
		}
		return nil
	}
	f := r.flows[k]
	if f == nil {
		f = &rxFlow{buf: map[int]*Packet{}, lastSeq: -1}
		r.flows[k] = f
	}
	seq := pkt.Hdr.Seq
	if _, buffered := f.buf[seq]; buffered || seq < f.next {
		r.stats.Duplicates++
	} else {
		f.buf[seq] = pkt
		if pkt.Hdr.Last {
			f.lastSeq = seq
		}
	}
	var out []*Packet
	for {
		q, ok := f.buf[f.next]
		if !ok {
			break
		}
		delete(f.buf, f.next)
		f.next++
		out = append(out, q)
	}
	r.stats.Delivered += int64(len(out))
	switch {
	case f.lastSeq >= 0 && f.next > f.lastSeq:
		delete(r.flows, k)
		r.done[k] = true
		r.stats.AcksSent++
		r.ack(pkt)
	case pkt.Hdr.Last || (f.lastSeq >= 0 && seq == f.lastSeq):
		// The tail is known but earlier packets are missing: ask for just
		// the gaps instead of waiting out the sender's timeout.
		if missing := f.missing(); len(missing) > 0 {
			r.stats.NaksSent++
			r.nak(pkt, missing)
		}
	}
	return out
}

// missing lists the gaps between next and the known final sequence.
func (f *rxFlow) missing() []int {
	var gaps []int
	for s := f.next; s <= f.lastSeq; s++ {
		if _, ok := f.buf[s]; !ok {
			gaps = append(gaps, s)
		}
	}
	return gaps
}

// ack emits a positive acknowledgement for orig's message.
func (r *RxTracker) ack(orig *Packet) {
	r.ctl(&Packet{
		Hdr:     Header{Src: r.me, Dst: orig.Hdr.Src, Type: Ack, Flow: orig.Hdr.Flow, Seq: 0, Last: true},
		Size:    ackBytes,
		Payload: AckInfo{Flow: orig.Hdr.Flow, Of: orig.Hdr.Type},
	})
}

// nak emits a negative acknowledgement listing the missing sequences.
func (r *RxTracker) nak(orig *Packet, missing []int) {
	r.ctl(&Packet{
		Hdr:     Header{Src: r.me, Dst: orig.Hdr.Src, Type: Ack, Flow: orig.Hdr.Flow, Seq: 1, Last: true},
		Size:    ackBytes,
		Payload: NakInfo{Flow: orig.Hdr.Flow, Of: orig.Hdr.Type, Missing: missing},
	})
}
