package san

// Property tests for the settle-phase crossbar arbiter: every packet that
// reaches a switch at one identical instant must be serviced in input-port
// index order, whatever order the arrival events happened to be inserted
// in. The suite drives random same-instant arrival sets at a single switch
// and checks the two halves of the guarantee separately: the service order
// is the input-port order, and it is invariant under permutation of the
// arrival insertions. Cut-through head latency is size-independent, so all
// heads sent at t=0 arrive — and finish their routing step — at the same
// instant regardless of payload size.

import (
	"testing"

	"activesan/internal/sim"
)

// settleRand is a seedable splitmix64 stream, independent of math/rand so
// the generated arrival sets are stable across Go releases.
type settleRand struct{ s uint64 }

func (r *settleRand) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *settleRand) intn(n int) int { return int(r.next() % uint64(n)) }

func (r *settleRand) shuffle(xs []int) {
	for i := len(xs) - 1; i > 0; i-- {
		j := r.intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// injectSrc is the Src marker for the switch-sourced packet in a burst; the
// switch itself is NodeID(100) in the star fixture.
const injectSrc = 100

// burstOrder runs one synchronized burst through an n-port star: for each
// entry of srcs — a permutation of distinct input ports — one packet of the
// paired size is sent at t=0 toward port dst, so every head finishes its
// routing step at the identical instant. With inject set, the switch itself
// sources one packet at exactly that instant through Inject (the crossbar's
// (N+1)th input). The returned slice is the source order in which the
// destination received the packets — the switch's service order.
func burstOrder(t *testing.T, n, dst int, srcs []int, sizes []int64, inject bool) []int {
	t.Helper()
	eng := sim.NewEngine()
	sw, eps := star(eng, n)
	sw.Start()
	for k, src := range srcs {
		src, size := src, sizes[k]
		eng.Spawn("tx", func(p *sim.Proc) {
			eps[src].Out.Send(p, &Packet{Hdr: Header{Src: NodeID(src), Dst: NodeID(dst)}, Size: size})
		})
	}
	want := len(srcs)
	if inject {
		want++
		admitAt := sim.TransferTime(HeaderBytes, 1e9) + DefaultLinkConfig().Propagation + sw.Config().RoutingLatency
		eng.Spawn("inj", func(p *sim.Proc) {
			p.SleepUntil(admitAt)
			if err := sw.Inject(p, &Packet{Hdr: Header{Src: injectSrc, Dst: NodeID(dst)}, Size: 64}); err != nil {
				t.Errorf("inject: %v", err)
			}
		})
	}
	var order []int
	eng.Spawn("rx", func(p *sim.Proc) {
		for len(order) < want {
			pkt := eps[dst].In.Recv(p)
			order = append(order, int(pkt.Hdr.Src))
			eps[dst].In.ReturnCredit()
		}
	})
	eng.Run()
	eng.Shutdown()
	return order
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSettleServiceOrderIsPortOrder: for random same-instant arrival sets —
// random port subsets in random insertion order, random payload sizes, with
// and without a same-instant switch injection — the service order is the
// ascending input-port order, with the injected packet (pseudo-port N)
// always last.
func TestSettleServiceOrderIsPortOrder(t *testing.T) {
	r := &settleRand{s: 0x5e771e01}
	for round := 0; round < 40; round++ {
		n := 4 + r.intn(5) // 4..8 ports
		dst := r.intn(n)
		var pool []int
		for i := 0; i < n; i++ {
			if i != dst {
				pool = append(pool, i)
			}
		}
		r.shuffle(pool)
		srcs := pool[:2+r.intn(len(pool)-1)]
		sizes := make([]int64, len(srcs))
		for i := range sizes {
			sizes[i] = int64(64 + r.intn(int(MTU)-64))
		}
		inject := r.intn(2) == 1

		want := append([]int(nil), srcs...)
		for i := 1; i < len(want); i++ { // insertion sort: the expected order
			for j := i; j > 0 && want[j-1] > want[j]; j-- {
				want[j-1], want[j] = want[j], want[j-1]
			}
		}
		if inject {
			want = append(want, injectSrc)
		}
		got := burstOrder(t, n, dst, srcs, sizes, inject)
		if !intsEqual(got, want) {
			t.Fatalf("round %d (n=%d dst=%d arrivals=%v inject=%v): service order %v, want port order %v",
				round, n, dst, srcs, inject, got, want)
		}
	}
}

// TestSettleOrderInvariantUnderPermutation: the full service order of one
// fixed same-instant arrival set must not change when the arrival events
// are inserted in a different order. Sizes travel with their port, so every
// permutation describes the same physical burst.
func TestSettleOrderInvariantUnderPermutation(t *testing.T) {
	r := &settleRand{s: 0x5e771e02}
	const n, dst = 8, 3
	base := []int{0, 1, 2, 4, 5, 6, 7}
	sizeOf := map[int]int64{}
	for _, src := range base {
		sizeOf[src] = int64(64 + r.intn(int(MTU)-64))
	}
	perms := [][]int{append([]int(nil), base...)}
	rev := make([]int, len(base))
	for i, s := range base {
		rev[len(base)-1-i] = s
	}
	perms = append(perms, rev)
	for k := 0; k < 6; k++ {
		p := append([]int(nil), base...)
		r.shuffle(p)
		perms = append(perms, p)
	}
	var want []int
	for pi, perm := range perms {
		sizes := make([]int64, len(perm))
		for i, src := range perm {
			sizes[i] = sizeOf[src]
		}
		got := burstOrder(t, n, dst, perm, sizes, true)
		if pi == 0 {
			want = got
			continue
		}
		if !intsEqual(got, want) {
			t.Fatalf("insertion order %v: service order %v, but insertion order %v gave %v",
				perm, got, perms[0], want)
		}
	}
}
