// Package san models the system-area network of the paper: 128-bit packet
// headers carrying a 64-bit active sub-header, 512-byte MTU links at 1 GB/s
// with credit-based flow control, routing tables, and a virtual cut-through
// switch based on a central output queue (the IBM Switch-3 scheme the paper
// starts from). The active extensions live in package aswitch.
package san

import "fmt"

// NodeID identifies an endpoint or switch in the fabric.
type NodeID int

// NoNode is the zero value guard for unset destinations.
const NoNode NodeID = -1

// Standard fabric parameters from the paper's Section 4.
const (
	// MTU is the maximum transfer unit (512 bytes for all experiments).
	MTU int64 = 512
	// HeaderBytes is the 128-bit packet header.
	HeaderBytes int64 = 16
)

// Type classifies a packet's role.
type Type int

// Packet types.
const (
	// Data carries a payload segment of a bulk message.
	Data Type = iota
	// ActiveMsg invokes a handler on an active switch (the paper's active
	// message with a 6-bit handler ID in the header).
	ActiveMsg
	// IORequest asks a TCA to perform a disk operation.
	IORequest
	// Control carries small notifications (completions, doorbells).
	Control
	// Ack carries end-to-end delivery acknowledgements (positive or
	// negative) for the optional reliability layer; see reliable.go.
	Ack
)

func (t Type) String() string {
	switch t {
	case Data:
		return "data"
	case ActiveMsg:
		return "active"
	case IORequest:
		return "ioreq"
	case Control:
		return "control"
	case Ack:
		return "ack"
	default:
		return "unknown"
	}
}

// Header is the paper's 128-bit header. The active sub-header (64 bits)
// holds a 6-bit handler ID, a 32-bit address to which the packet's data
// buffer is memory-mapped on the active switch, and — for the multi-CPU
// extension of Section 5 — a switch CPU ID.
type Header struct {
	Src, Dst NodeID
	Type     Type

	// HandlerID selects the switch handler (6 bits: 0..63).
	HandlerID int
	// Addr is the 32-bit mapped address of this packet's payload in the
	// handler's address space.
	Addr int64
	// CPUID directs dispatch to a specific switch CPU (-1 = any).
	CPUID int

	// Flow groups the packets of one message for reassembly; Seq orders
	// them; Last marks the final packet.
	Flow int64
	Seq  int
	Last bool
}

// MaxHandlerID is the largest handler index encodable in the 6-bit field.
const MaxHandlerID = 63

// Validate checks the encodable ranges of the active sub-header.
func (h Header) Validate() error {
	if h.HandlerID < 0 || h.HandlerID > MaxHandlerID {
		return fmt.Errorf("san: handler ID %d outside 6-bit range", h.HandlerID)
	}
	if h.Addr < 0 || h.Addr > 0xFFFF_FFFF {
		return fmt.Errorf("san: mapped address %#x outside 32-bit range", h.Addr)
	}
	return nil
}

// Packet is one MTU-or-smaller unit on a link. Payload carries the
// functional content (the benchmarks really transform their data); Size is
// the architectural size used for all timing, so payloads may be logical
// descriptors for workloads too large to materialize.
type Packet struct {
	Hdr     Header
	Size    int64 // payload bytes (header accounted separately by links)
	Payload any
	// Corrupt marks a packet whose payload was damaged in flight (set only
	// by fault injection, on a copy — the sender's packet stays clean for
	// retransmission). Receivers treat it as a CRC failure and discard.
	Corrupt bool
	// Stamp is the in-band telemetry record (nil = telemetry off). Every
	// stage on the data path checks for nil before touching it, so the
	// disarmed configuration costs one pointer test per stage.
	Stamp *Stamp
}

// Wire returns the packet's on-wire size including the header.
func (p *Packet) Wire() int64 { return p.Size + HeaderBytes }

// Message is a logical transfer larger than one packet. Senders segment it;
// receivers reassemble by (Src, Flow).
type Message struct {
	Hdr     Header
	Size    int64
	Payload any
	// Split, when set, provides per-packet payloads (see Packets).
	Split func(i int, off, n int64) any
}

// Packets segments m into MTU-sized packets. The payload rides on the first
// packet unless a split function is available (the argument wins over
// m.Split), in which case split(i, off, n) provides packet i's payload
// covering [off, off+n) of the message.
func (m *Message) Packets(split func(i int, off, n int64) any) []*Packet {
	if split == nil {
		split = m.Split
	}
	if m.Size <= 0 {
		pkt := &Packet{Hdr: m.Hdr, Size: 0, Payload: m.Payload}
		pkt.Hdr.Seq = 0
		pkt.Hdr.Last = true
		return []*Packet{pkt}
	}
	n := int((m.Size + MTU - 1) / MTU)
	pkts := make([]*Packet, 0, n)
	for i, off := 0, int64(0); off < m.Size; i, off = i+1, off+MTU {
		sz := m.Size - off
		if sz > MTU {
			sz = MTU
		}
		pkt := &Packet{Hdr: m.Hdr, Size: sz}
		pkt.Hdr.Seq = i
		pkt.Hdr.Addr = m.Hdr.Addr + off
		pkt.Hdr.Last = off+sz == m.Size
		if split != nil {
			pkt.Payload = split(i, off, sz)
		} else if i == 0 {
			pkt.Payload = m.Payload
		}
		pkts = append(pkts, pkt)
	}
	return pkts
}

// SliceSplit returns a split function over a byte slice, for messages whose
// payload is literal data.
func SliceSplit(data []byte) func(i int, off, n int64) any {
	return func(_ int, off, n int64) any {
		if data == nil {
			return nil
		}
		return data[off : off+n]
	}
}

// Reassemble rebuilds the payload of a message segmented by Packets with a
// SliceSplit payload. It validates the sequence — same flow throughout,
// every seq from 0 through the Last-marked packet present exactly once, no
// corrupt packets — and returns an error (never panics) on a damaged or
// incomplete set, so callers can fall back to retransmission.
func Reassemble(pkts []*Packet) ([]byte, error) {
	if len(pkts) == 0 {
		return nil, fmt.Errorf("san: reassemble: no packets")
	}
	flow := pkts[0].Hdr.Flow
	last := -1
	bySeq := make(map[int]*Packet, len(pkts))
	for _, pkt := range pkts {
		if pkt.Hdr.Flow != flow {
			return nil, fmt.Errorf("san: reassemble: mixed flows %d and %d", flow, pkt.Hdr.Flow)
		}
		if pkt.Corrupt {
			return nil, fmt.Errorf("san: reassemble: corrupt packet flow=%d seq=%d", flow, pkt.Hdr.Seq)
		}
		if _, dup := bySeq[pkt.Hdr.Seq]; dup {
			return nil, fmt.Errorf("san: reassemble: duplicate seq %d in flow %d", pkt.Hdr.Seq, flow)
		}
		bySeq[pkt.Hdr.Seq] = pkt
		if pkt.Hdr.Last {
			last = pkt.Hdr.Seq
		}
	}
	if last < 0 {
		return nil, fmt.Errorf("san: reassemble: flow %d has no final packet", flow)
	}
	var out []byte
	for seq := 0; seq <= last; seq++ {
		pkt, ok := bySeq[seq]
		if !ok {
			return nil, fmt.Errorf("san: reassemble: flow %d missing seq %d of %d", flow, seq, last)
		}
		data, ok := pkt.Payload.([]byte)
		if !ok && pkt.Payload != nil {
			return nil, fmt.Errorf("san: reassemble: flow %d seq %d payload is %T, not bytes", flow, seq, pkt.Payload)
		}
		if int64(len(data)) != pkt.Size {
			return nil, fmt.Errorf("san: reassemble: flow %d seq %d carries %d bytes, header says %d",
				flow, seq, len(data), pkt.Size)
		}
		out = append(out, data...)
	}
	if len(bySeq) != last+1 {
		return nil, fmt.Errorf("san: reassemble: flow %d has %d packets beyond final seq %d", flow, len(bySeq)-(last+1), last)
	}
	return out, nil
}
