// Package plot renders experiment results as figures: ASCII bar charts for
// the terminal and self-contained SVG files — the regenerated counterparts
// of the paper's Figures 3-17.
package plot

import (
	"fmt"
	"strings"

	"activesan/internal/stats"
)

// asciiWidth is the bar field width in characters.
const asciiWidth = 44

// bar renders one ASCII bar scaled to max.
func bar(v, max float64) string {
	if max <= 0 {
		return ""
	}
	n := int(v / max * asciiWidth)
	if n < 0 {
		n = 0
	}
	if n > asciiWidth {
		n = asciiWidth
	}
	return strings.Repeat("#", n)
}

// ASCII renders a result as terminal bar charts: normalized execution time
// and host utilization per configuration, stacked breakdown bars, and
// latency series.
func ASCII(res *stats.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", res.ID, res.Title)

	if len(res.Runs) > 0 {
		base := res.Baseline()
		fmt.Fprintf(&b, "\nnormalized execution time (shorter is faster)\n")
		for _, r := range res.Runs {
			nt := 1.0
			if base.Time > 0 {
				nt = float64(r.Time) / float64(base.Time)
			}
			fmt.Fprintf(&b, "  %-18s |%-*s| %.3f\n", r.Config, asciiWidth, bar(nt, maxNorm(res)), nt)
		}
		fmt.Fprintf(&b, "\nhost utilization\n")
		for _, r := range res.Runs {
			u := r.HostUtil()
			fmt.Fprintf(&b, "  %-18s |%-*s| %.3f\n", r.Config, asciiWidth, bar(u, 1), u)
		}
		if base.Traffic > 0 {
			fmt.Fprintf(&b, "\nhost I/O traffic (normalized)\n")
			for _, r := range res.Runs {
				tr := float64(r.Traffic) / float64(base.Traffic)
				fmt.Fprintf(&b, "  %-18s |%-*s| %.3f\n", r.Config, asciiWidth, bar(tr, maxTraffic(res)), tr)
			}
		}
	}

	if len(res.Bars) > 0 {
		fmt.Fprintf(&b, "\nexecution-time breakdown (b=busy s=stall .=idle)\n")
		var maxT float64
		for _, br := range res.Bars {
			if t := float64(br.Total()); t > maxT {
				maxT = t
			}
		}
		for _, br := range res.Bars {
			t := float64(br.Total())
			scale := func(x float64) int {
				if maxT <= 0 {
					return 0
				}
				return int(x / maxT * asciiWidth)
			}
			busy := scale(float64(br.Busy))
			stall := scale(float64(br.Stall))
			idle := scale(t) - busy - stall
			if idle < 0 {
				idle = 0
			}
			fmt.Fprintf(&b, "  %-10s |%s%s%s|\n", br.Label,
				strings.Repeat("b", busy), strings.Repeat("s", stall), strings.Repeat(".", idle))
		}
	}

	for _, s := range res.Series {
		fmt.Fprintf(&b, "\nseries: %s\n", s.Name)
		max := s.MaxY()
		for i := range s.X {
			fmt.Fprintf(&b, "  %6g |%-*s| %.3f\n", s.X[i], asciiWidth, bar(s.Y[i], max), s.Y[i])
		}
	}
	return b.String()
}

func maxNorm(res *stats.Result) float64 {
	base := res.Baseline()
	max := 1.0
	for _, r := range res.Runs {
		if base.Time > 0 {
			if nt := float64(r.Time) / float64(base.Time); nt > max {
				max = nt
			}
		}
	}
	return max
}

func maxTraffic(res *stats.Result) float64 {
	base := res.Baseline()
	max := 1.0
	for _, r := range res.Runs {
		if base.Traffic > 0 {
			if tr := float64(r.Traffic) / float64(base.Traffic); tr > max {
				max = tr
			}
		}
	}
	return max
}

// svgDoc builds an SVG document incrementally.
type svgDoc struct {
	b    strings.Builder
	w, h int
}

func (d *svgDoc) rect(x, y, w, h float64, fill string) {
	fmt.Fprintf(&d.b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
		x, y, w, h, fill)
}

func (d *svgDoc) text(x, y float64, size int, anchor, s string) {
	fmt.Fprintf(&d.b, `<text x="%.1f" y="%.1f" font-size="%d" font-family="monospace" text-anchor="%s">%s</text>`+"\n",
		x, y, size, anchor, escape(s))
}

func (d *svgDoc) line(x1, y1, x2, y2 float64, stroke string) {
	fmt.Fprintf(&d.b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1"/>`+"\n",
		x1, y1, x2, y2, stroke)
}

func (d *svgDoc) polyline(pts []point, stroke string) {
	var coords []string
	for _, p := range pts {
		coords = append(coords, fmt.Sprintf("%.1f,%.1f", p.x, p.y))
	}
	fmt.Fprintf(&d.b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
		strings.Join(coords, " "), stroke)
}

type point struct{ x, y float64 }

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

// Palette for configurations and breakdown segments.
var (
	barColors   = []string{"#4878a8", "#6aa84f", "#e69138", "#a64d79", "#999999", "#45818e", "#b45f06", "#674ea7"}
	busyColor   = "#4878a8"
	stallColor  = "#cc4125"
	idleColor   = "#d9d9d9"
	seriesColor = []string{"#4878a8", "#e69138", "#6aa84f"}
)

// SVG renders a result as a standalone SVG figure.
func SVG(res *stats.Result) []byte {
	const width = 860
	d := &svgDoc{w: width}
	y := 30.0
	var body strings.Builder

	emitTitle := func(s string) {
		d.text(12, y, 15, "start", s)
		y += 14
	}
	emitTitle(fmt.Sprintf("%s — %s", res.ID, res.Title))
	y += 10

	if len(res.Runs) > 0 {
		base := res.Baseline()
		groups := []struct {
			name string
			get  func(stats.Run) float64
			max  float64
		}{
			{"normalized time", func(r stats.Run) float64 {
				if base.Time == 0 {
					return 0
				}
				return float64(r.Time) / float64(base.Time)
			}, maxNorm(res)},
			{"host utilization", stats.Run.HostUtil, 1},
			{"normalized traffic", func(r stats.Run) float64 {
				if base.Traffic == 0 {
					return 0
				}
				return float64(r.Traffic) / float64(base.Traffic)
			}, maxTraffic(res)},
		}
		for _, g := range groups {
			d.text(12, y+10, 12, "start", g.name)
			y += 16
			for i, r := range res.Runs {
				v := g.get(r)
				w := v / g.max * 560
				d.rect(180, y, w, 12, barColors[i%len(barColors)])
				d.text(174, y+10, 11, "end", r.Config)
				d.text(186+w, y+10, 11, "start", fmt.Sprintf("%.3f", v))
				y += 16
			}
			y += 10
		}
	}

	if len(res.Bars) > 0 {
		d.text(12, y+10, 12, "start", "execution-time breakdown (busy / stall / idle)")
		y += 16
		var maxT float64
		for _, br := range res.Bars {
			if t := float64(br.Total()); t > maxT {
				maxT = t
			}
		}
		for _, br := range res.Bars {
			if maxT <= 0 {
				break
			}
			scale := 560 / maxT
			x := 180.0
			wBusy := float64(br.Busy) * scale
			wStall := float64(br.Stall) * scale
			wIdle := float64(br.Idle) * scale
			d.rect(x, y, wBusy, 12, busyColor)
			d.rect(x+wBusy, y, wStall, 12, stallColor)
			d.rect(x+wBusy+wStall, y, wIdle, 12, idleColor)
			d.text(174, y+10, 11, "end", br.Label)
			y += 16
		}
		y += 10
	}

	if len(res.Series) > 0 {
		const plotW, plotH = 560, 180
		d.text(12, y+10, 12, "start", "series")
		y += 20
		x0, y0 := 180.0, y
		// Bounds across all series.
		var maxX, maxY float64
		for _, s := range res.Series {
			for i := range s.X {
				if s.X[i] > maxX {
					maxX = s.X[i]
				}
				if s.Y[i] > maxY {
					maxY = s.Y[i]
				}
			}
		}
		if maxX <= 0 {
			maxX = 1
		}
		if maxY <= 0 {
			maxY = 1
		}
		d.line(x0, y0, x0, y0+plotH, "#333333")
		d.line(x0, y0+plotH, x0+plotW, y0+plotH, "#333333")
		for si, s := range res.Series {
			var pts []point
			for i := range s.X {
				pts = append(pts, point{
					x: x0 + s.X[i]/maxX*plotW,
					y: y0 + plotH - s.Y[i]/maxY*plotH,
				})
			}
			color := seriesColor[si%len(seriesColor)]
			d.polyline(pts, color)
			d.text(x0+plotW+8, y0+14+float64(si)*14, 11, "start", s.Name)
			d.rect(x0+plotW+0, y0+6+float64(si)*14, 6, 6, color)
		}
		d.text(x0+plotW, y0+plotH+14, 10, "end", fmt.Sprintf("x max %g", maxX))
		d.text(x0-6, y0+8, 10, "end", fmt.Sprintf("%.3g", maxY))
		y += plotH + 24
	}

	for _, n := range res.Notes {
		d.text(12, y+10, 10, "start", n)
		y += 13
	}

	body.WriteString(d.b.String())
	total := fmt.Sprintf(`<?xml version="1.0" encoding="UTF-8"?>
<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">
<rect x="0" y="0" width="%d" height="%d" fill="#ffffff"/>
%s</svg>
`, width, int(y)+20, width, int(y)+20, width, int(y)+20, body.String())
	return []byte(total)
}
