package plot

import (
	"encoding/xml"
	"strings"
	"testing"

	"activesan/internal/sim"
	"activesan/internal/stats"
)

func sample() *stats.Result {
	return &stats.Result{
		ID:    "figX",
		Title: "sample figure",
		Runs: []stats.Run{
			{Config: "normal", Time: 100 * sim.Millisecond, HostBusy: 30 * sim.Millisecond, Traffic: 1000, Hosts: 1},
			{Config: "active", Time: 60 * sim.Millisecond, HostBusy: 5 * sim.Millisecond, Traffic: 250, Hosts: 1},
		},
		Bars: []stats.Bar{
			{Label: "n-HP", Busy: 30 * sim.Millisecond, Stall: 10 * sim.Millisecond, Idle: 60 * sim.Millisecond},
			{Label: "a-HP", Busy: 5 * sim.Millisecond, Stall: 1 * sim.Millisecond, Idle: 54 * sim.Millisecond},
		},
		Series: []stats.Series{
			{Name: "normal", X: []float64{2, 4, 8}, Y: []float64{10, 20, 40}},
			{Name: "active", X: []float64{2, 4, 8}, Y: []float64{10, 12, 14}},
		},
		Notes: []string{"a note with <angle brackets> & ampersand"},
	}
}

func TestASCIIContainsSections(t *testing.T) {
	out := ASCII(sample())
	for _, want := range []string{
		"figX", "normalized execution time", "host utilization",
		"host I/O traffic", "breakdown", "series: normal", "normal", "active", "#",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("ASCII output missing %q:\n%s", want, out)
		}
	}
}

func TestASCIIBarsScale(t *testing.T) {
	out := ASCII(sample())
	// The normal bar (1.000) must be longer than the active bar (0.600).
	lines := strings.Split(out, "\n")
	var normLen, actLen int
	inTime := false
	for _, l := range lines {
		if strings.Contains(l, "normalized execution time") {
			inTime = true
			continue
		}
		if inTime && strings.Contains(l, "normal") && !strings.Contains(l, "active") {
			normLen = strings.Count(l, "#")
		}
		if inTime && strings.Contains(l, "active") {
			actLen = strings.Count(l, "#")
			break
		}
	}
	if normLen <= actLen {
		t.Fatalf("bar lengths normal=%d active=%d, want normal longer", normLen, actLen)
	}
}

func TestSVGWellFormed(t *testing.T) {
	out := SVG(sample())
	// The document must be well-formed XML with an svg root.
	dec := xml.NewDecoder(strings.NewReader(string(out)))
	root := ""
	for {
		tok, err := dec.Token()
		if err != nil {
			break
		}
		if se, ok := tok.(xml.StartElement); ok && root == "" {
			root = se.Name.Local
		}
	}
	if root != "svg" {
		t.Fatalf("root element %q, want svg", root)
	}
	for _, want := range []string{"figX", "rect", "polyline", "&lt;angle brackets&gt;"} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
}

func TestSVGHandlesEmptyResult(t *testing.T) {
	out := SVG(&stats.Result{ID: "empty", Title: "nothing"})
	if !strings.Contains(string(out), "empty") {
		t.Fatal("empty result did not render")
	}
	var v struct{}
	_ = v
	if err := xml.Unmarshal(out, &struct {
		XMLName xml.Name `xml:"svg"`
	}{}); err != nil {
		t.Fatalf("empty SVG not parseable: %v", err)
	}
}
