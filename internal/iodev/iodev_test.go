package iodev

import (
	"testing"

	"activesan/internal/san"
	"activesan/internal/sim"
)

// rig builds one storage node whose links loop back to a test endpoint.
func rig(eng *sim.Engine) (*StorageNode, *san.Link, *san.Link) {
	cfg := san.DefaultLinkConfig()
	toStore := san.NewLink(eng, "to", cfg)
	fromStore := san.NewLink(eng, "from", cfg)
	s := New(eng, 200, "d0", toStore, fromStore, DefaultConfig())
	s.Start()
	return s, toStore, fromStore
}

func request(p *sim.Proc, l *san.Link, req any, flow int64) {
	l.Send(p, &san.Packet{
		Hdr:     san.Header{Src: 1, Dst: 200, Type: san.IORequest, Flow: flow, Last: true},
		Size:    64,
		Payload: req,
	})
}

func TestReadStreamsPackets(t *testing.T) {
	eng := sim.NewEngine()
	s, toStore, fromStore := rig(eng)
	data := make([]byte, 2048)
	for i := range data {
		data[i] = byte(i)
	}
	s.AddFile(&File{Name: "f", Size: 2048, Data: data})
	var got []byte
	var first, last sim.Time
	eng.Spawn("client", func(p *sim.Proc) {
		request(p, toStore, ReadReq{File: "f", Off: 0, Len: 2048, Dst: 1, DstAddr: 0, Type: san.Data, Flow: 9}, 1)
		for len(got) < 2048 {
			pkt := fromStore.Recv(p)
			if first == 0 {
				first = p.Now()
			}
			last = p.Now()
			got = append(got, pkt.Payload.([]byte)...)
			fromStore.ReturnCredit()
		}
	})
	eng.Run()
	defer eng.Shutdown()
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("byte %d corrupted", i)
		}
	}
	// First packet must wait out seek+rotation; the stream is paced by the
	// 100 MB/s disk (5.12 us per packet).
	if first < 8*sim.Millisecond {
		t.Fatalf("first packet at %v, before seek+rotation", first)
	}
	if d := last - first; d < 15*sim.Microsecond {
		t.Fatalf("stream spread %v too tight for disk pacing", d)
	}
	st := s.Stats()
	if st.Reads != 1 || st.BytesRead != 2048 || st.Seeks != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSequentialReadsSkipSeek(t *testing.T) {
	eng := sim.NewEngine()
	s, toStore, fromStore := rig(eng)
	s.AddFile(&File{Name: "f", Size: 4096})
	eng.Spawn("client", func(p *sim.Proc) {
		request(p, toStore, ReadReq{File: "f", Off: 0, Len: 2048, Dst: 1, Type: san.Data, Flow: 1}, 1)
		request(p, toStore, ReadReq{File: "f", Off: 2048, Len: 2048, Dst: 1, Type: san.Data, Flow: 2}, 2)
		for i := 0; i < 8; i++ {
			fromStore.Recv(p)
			fromStore.ReturnCredit()
		}
	})
	eng.Run()
	defer eng.Shutdown()
	st := s.Stats()
	if st.Seeks != 1 || st.Sequential != 1 {
		t.Fatalf("seeks/sequential = %d/%d, want 1/1", st.Seeks, st.Sequential)
	}
}

func TestNotifyControlPacket(t *testing.T) {
	eng := sim.NewEngine()
	s, toStore, fromStore := rig(eng)
	s.AddFile(&File{Name: "f", Size: 512})
	var sawNotify bool
	eng.Spawn("client", func(p *sim.Proc) {
		request(p, toStore, ReadReq{
			File: "f", Len: 512, Dst: 1, Type: san.Data, Flow: 1,
			Notify: 1, NotifyFlow: 77,
		}, 1)
		for i := 0; i < 2; i++ {
			pkt := fromStore.Recv(p)
			if pkt.Hdr.Type == san.Control && pkt.Hdr.Flow == 77 {
				sawNotify = true
			}
			fromStore.ReturnCredit()
		}
	})
	eng.Run()
	defer eng.Shutdown()
	_ = s
	if !sawNotify {
		t.Fatal("no completion notification")
	}
}

func TestWritePathAcks(t *testing.T) {
	eng := sim.NewEngine()
	s, toStore, fromStore := rig(eng)
	var acked bool
	eng.Spawn("client", func(p *sim.Proc) {
		request(p, toStore, WriteReq{File: "out", Len: 1024, Notify: 1, NotifyFlow: 88}, 5)
		// Stream the write data on the same flow.
		m := &san.Message{Hdr: san.Header{Src: 1, Dst: 200, Type: san.Data, Flow: 5}, Size: 1024}
		for _, pkt := range m.Packets(nil) {
			toStore.Send(p, pkt)
		}
		pkt := fromStore.Recv(p)
		acked = pkt.Hdr.Type == san.Control && pkt.Hdr.Flow == 88
		fromStore.ReturnCredit()
	})
	eng.Run()
	defer eng.Shutdown()
	if !acked {
		t.Fatal("write not acknowledged")
	}
	if s.Stats().Writes != 1 || s.Stats().BytesWritten != 1024 {
		t.Fatalf("write stats = %+v", s.Stats())
	}
}

func TestStripedReadTagsPackets(t *testing.T) {
	eng := sim.NewEngine()
	s, toStore, fromStore := rig(eng)
	s.AddFile(&File{Name: "f", Size: 4096})
	var cpus []int
	var addrs []int64
	eng.Spawn("client", func(p *sim.Proc) {
		request(p, toStore, ReadReq{
			File: "f", Len: 4096, Dst: 1, DstAddr: 0x1000, Type: san.Data, Flow: 1,
			Stripe: 1024, Ways: 2, WayStride: 0x100000,
		}, 1)
		for i := 0; i < 8; i++ {
			pkt := fromStore.Recv(p)
			cpus = append(cpus, pkt.Hdr.CPUID)
			addrs = append(addrs, pkt.Hdr.Addr)
			fromStore.ReturnCredit()
		}
	})
	eng.Run()
	defer eng.Shutdown()
	// 1024-byte stripes of a 4096-byte read across 2 ways: packets 0,1 to
	// way 0; 2,3 to way 1; 4,5 to way 0; 6,7 to way 1.
	wantCPU := []int{0, 0, 1, 1, 0, 0, 1, 1}
	for i := range wantCPU {
		if cpus[i] != wantCPU[i] {
			t.Fatalf("cpu tags = %v, want %v", cpus, wantCPU)
		}
	}
	// Way-0 chain addresses are contiguous from DstAddr.
	if addrs[0] != 0x1000 || addrs[1] != 0x1200 || addrs[4] != 0x1400 {
		t.Fatalf("way-0 addrs = %#x %#x %#x", addrs[0], addrs[1], addrs[4])
	}
	// Way-1 chain starts at DstAddr + WayStride.
	if addrs[2] != 0x101000 || addrs[6] != 0x101400 {
		t.Fatalf("way-1 addrs = %#x %#x", addrs[2], addrs[6])
	}
}

func TestReadUnknownFilePanics(t *testing.T) {
	eng := sim.NewEngine()
	_, toStore, _ := rig(eng)
	eng.Spawn("client", func(p *sim.Proc) {
		request(p, toStore, ReadReq{File: "missing", Len: 512, Dst: 1, Type: san.Data, Flow: 1}, 1)
	})
	defer func() {
		eng.Shutdown()
		if recover() == nil {
			t.Fatal("read of unknown file did not panic")
		}
	}()
	eng.Run()
}

func TestFileGenPayload(t *testing.T) {
	f := &File{Name: "g", Size: 1024, Gen: func(off, n int64) any { return off }}
	if got := f.payload(512, 128); got != int64(512) {
		t.Fatalf("gen payload = %v", got)
	}
	fd := &File{Name: "d", Size: 4, Data: []byte{1, 2, 3, 4}}
	if got := fd.payload(1, 2).([]byte); got[0] != 2 || got[1] != 3 {
		t.Fatalf("data payload = %v", got)
	}
	fn := &File{Name: "n", Size: 4}
	if fn.payload(0, 4) != nil {
		t.Fatal("nil-content file returned payload")
	}
}

func TestDuplicateFilePanics(t *testing.T) {
	eng := sim.NewEngine()
	s, _, _ := rig(eng)
	s.AddFile(&File{Name: "x", Size: 1})
	defer func() {
		eng.Shutdown()
		if recover() == nil {
			t.Fatal("duplicate AddFile did not panic")
		}
	}()
	s.AddFile(&File{Name: "x", Size: 1})
}

func TestExplicitStriping(t *testing.T) {
	// With two explicit spindles, a large sequential read still reaches
	// the total bandwidth (both stream in parallel), but the first stripe
	// ramps at a single disk's rate.
	run := func(disks int) (first, last sim.Time) {
		eng := sim.NewEngine()
		cfg := DefaultConfig()
		cfg.Disk.Disks = disks
		cfg.Disk.StripeUnit = 64 * 1024
		lcfg := san.DefaultLinkConfig()
		toStore := san.NewLink(eng, "to", lcfg)
		fromStore := san.NewLink(eng, "from", lcfg)
		s := New(eng, 200, "d0", toStore, fromStore, cfg)
		const total = 1 << 20
		s.AddFile(&File{Name: "f", Size: total})
		s.Start()
		eng.Spawn("client", func(p *sim.Proc) {
			request(p, toStore, ReadReq{File: "f", Len: total, Dst: 1, Type: san.Data, Flow: 1}, 1)
			for got := int64(0); got < total; {
				pkt := fromStore.Recv(p)
				if first == 0 {
					first = p.Now()
				}
				got += pkt.Size
				last = p.Now()
				fromStore.ReturnCredit()
			}
		})
		eng.Run()
		eng.Shutdown()
		return first, last
	}
	f1, l1 := run(1)
	f2, l2 := run(2)
	// Total completion within 15% either way (same aggregate bandwidth).
	r := float64(l2) / float64(l1)
	if r < 0.85 || r > 1.2 {
		t.Fatalf("striped completion ratio %.3f (1 disk %v, 2 disks %v)", r, l1, l2)
	}
	// First-byte latency is seek-bound in both models.
	if f1 < 8*sim.Millisecond || f2 < 8*sim.Millisecond {
		t.Fatalf("first packet before seek: %v / %v", f1, f2)
	}
}

func TestStripingAlternatesSpindles(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.Disk.Disks = 2
	cfg.Disk.StripeUnit = 64 * 1024
	lcfg := san.DefaultLinkConfig()
	toStore := san.NewLink(eng, "to", lcfg)
	fromStore := san.NewLink(eng, "from", lcfg)
	s := New(eng, 200, "d0", toStore, fromStore, cfg)
	s.AddFile(&File{Name: "f", Size: 256 * 1024})
	s.Start()
	// Two consecutive 64 KB requests land on different spindles and can
	// overlap: the second's data is not delayed behind the first's disk.
	var firstDone, secondDone sim.Time
	eng.Spawn("client", func(p *sim.Proc) {
		request(p, toStore, ReadReq{File: "f", Off: 0, Len: 64 * 1024, Dst: 1, Type: san.Data, Flow: 1}, 1)
		request(p, toStore, ReadReq{File: "f", Off: 64 * 1024, Len: 64 * 1024, Dst: 1, Type: san.Data, Flow: 2}, 2)
		var got1, got2 int64
		for got1 < 64*1024 || got2 < 64*1024 {
			pkt := fromStore.Recv(p)
			if pkt.Hdr.Flow == 1 {
				got1 += pkt.Size
				firstDone = p.Now()
			} else {
				got2 += pkt.Size
				secondDone = p.Now()
			}
			fromStore.ReturnCredit()
		}
	})
	eng.Run()
	defer eng.Shutdown()
	// Request 2's spindle pays its own seek; with one aggregate disk it
	// would start only after request 1 finished streaming. Overlap means
	// the gap between completions is below a full 64 KB single-spindle
	// stream time (1.31 ms).
	gap := secondDone - firstDone
	if gap >= 1310*sim.Microsecond {
		t.Fatalf("no spindle overlap: completion gap %v", gap)
	}
}
