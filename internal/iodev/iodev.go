// Package iodev models the paper's I/O subsystem: a target channel adapter
// (TCA), an Ultra-320 SCSI bus with arbitration/selection overhead and a
// 320 MB/s peak rate, and a two-disk stripe with 100 MB/s total bandwidth,
// seek/rotation latency, and sequential-access detection. Disk data streams
// toward its destination in MTU packets, pipelined disk -> SCSI -> link.
package iodev

import (
	"fmt"

	"activesan/internal/san"
	"activesan/internal/sim"
)

// DiskConfig describes the disk pair. By default the two spindles are
// modeled as one aggregate device at the total bandwidth (the paper only
// constrains the total); setting Disks > 1 switches to explicit striping,
// where each spindle streams at BandwidthBytesPerSec/Disks and stripes of
// StripeUnit bytes round-robin across them.
type DiskConfig struct {
	// Seek is the average positioning time paid on non-sequential access.
	Seek sim.Time
	// Rotation is the average rotational latency added to a seek.
	Rotation sim.Time
	// BandwidthBytesPerSec is the total streaming rate (paper: 100 MB/s).
	BandwidthBytesPerSec float64
	// Disks > 1 enables explicit striping.
	Disks int
	// StripeUnit is the striping granularity (default 64 KB).
	StripeUnit int64
}

// BusConfig describes the SCSI bus.
type BusConfig struct {
	// Arbitration is the per-transaction arbitration+selection overhead.
	Arbitration sim.Time
	// BandwidthBytesPerSec is the peak transfer rate (paper: 320 MB/s).
	BandwidthBytesPerSec float64
}

// Config assembles a storage node.
type Config struct {
	Disk DiskConfig
	Bus  BusConfig
}

// DefaultConfig returns the paper's I/O subsystem parameters. Seek and
// rotation use typical 2002-era server disk values (the paper lists the
// three parameters without printing numbers); sequential streams — "we
// assume a sequential access pattern because most of our applications deal
// with large files" — pay them only once.
func DefaultConfig() Config {
	return Config{
		Disk: DiskConfig{
			Seek:                 5 * sim.Millisecond,
			Rotation:             3 * sim.Millisecond,
			BandwidthBytesPerSec: 100e6,
		},
		Bus: BusConfig{
			Arbitration:          2 * sim.Microsecond,
			BandwidthBytesPerSec: 320e6,
		},
	}
}

// File is a named extent on the storage node. Data or Gen provide the
// functional content; both nil means timing-only transfers.
type File struct {
	Name string
	Size int64
	// Data is literal content.
	Data []byte
	// Gen synthesizes the payload for [off, off+n); used for workloads too
	// large to materialize.
	Gen func(off, n int64) any
}

func (f *File) payload(off, n int64) any {
	switch {
	case f.Gen != nil:
		return f.Gen(off, n)
	case f.Data != nil:
		return f.Data[off : off+n]
	default:
		return nil
	}
}

// ReadReq asks a storage node to stream part of a file to a destination.
// It travels as the payload of a san.IORequest packet.
type ReadReq struct {
	File string
	Off  int64
	Len  int64

	// Dst receives the data packets; DstAddr is the mapped base address
	// (host buffer or active-switch stream region).
	Dst     san.NodeID
	DstAddr int64
	// Type is the data packets' type: san.Data for plain delivery, or
	// san.ActiveMsg when the stream should invoke a handler at Dst.
	Type      san.Type
	HandlerID int
	CPUID     int
	Flow      int64

	// Stripe/Ways/WayStride distribute the stream across switch CPUs (the
	// paper's MD5 variant): block b = offset/Stripe goes to CPU b mod Ways,
	// mapped at DstAddr + way*WayStride + (b/Ways)*Stripe + offset%Stripe.
	// Stripe must be a multiple of the MTU; Ways <= 1 disables striping.
	Stripe    int64
	Ways      int
	WayStride int64

	// FilterID selects a registered active-disk pushdown filter (0 = none).
	FilterID int

	// Notify, when valid, receives a small Control packet once the final
	// data packet is on the wire (used when the data bypasses the
	// requester, so it can pace further requests).
	Notify     san.NodeID
	NotifyFlow int64
}

// WriteReq asks a storage node to absorb Len bytes of Data packets that
// arrive carrying the same flow id as the request packet.
type WriteReq struct {
	File string
	Off  int64
	Len  int64

	// Notify receives a Control ack when the write is durable.
	Notify     san.NodeID
	NotifyFlow int64
}

// Filter is an active-disk pushdown: the paper's related work points out
// that active I/O devices compose with active switches into "a two-level
// active I/O system". A storage node with registered filters runs them on
// an embedded processor as data leaves the platters, emitting only the
// kept bytes.
type Filter struct {
	Name string
	// Fn inspects chunk [off, off+n) of the file and returns how many
	// bytes survive and their payload.
	Fn func(off, n int64, payload any) (keep int64, out any)
	// CyclesPerByte is charged on the embedded disk processor per input
	// byte.
	CyclesPerByte int64
	// Clock is the embedded processor's clock (default 200 MHz — an
	// active-disk-class core, weaker than the switch CPU).
	Clock sim.Clock
}

// Stats counts storage activity.
type Stats struct {
	Reads, Writes     int64
	BytesRead         int64
	BytesWritten      int64
	Seeks, Sequential int64
	// FilteredBytes counts bytes a pushdown filter removed at the source.
	FilteredBytes int64
	// DiskRetries counts media errors recovered by re-reading (only fault
	// injection produces them).
	DiskRetries int64
}

// DiskInjector decides whether a disk operation fails and must be retried.
// Implementations must be deterministic (seeded PRNG only).
type DiskInjector interface {
	OnDiskOp(node, file string, off, n int64) bool
}

// maxDiskAttempts bounds injected-media-error retries per operation so an
// always-fail plan degrades a run instead of hanging it.
const maxDiskAttempts = 64

// StorageNode is a TCA plus its SCSI bus and disk stripe.
type StorageNode struct {
	eng  *sim.Engine
	id   san.NodeID
	name string
	cfg  Config
	in   *san.Link
	out  *san.Link

	files   map[string]*File
	filters map[int]*Filter
	reqs    *sim.Queue[queuedReq]
	bus     *sim.Server
	// fcpu serializes the embedded filter processor.
	fcpu *sim.Server

	// diskFreeAt serializes the logical disk; lastFile/lastEnd detect
	// sequential access.
	diskFreeAt sim.Time
	lastFile   string
	lastEnd    int64
	// spindles tracks per-disk timelines for explicit striping.
	spindles []spindle

	// writes tracks expected write streams by flow id.
	writes map[int64]*writeState

	// Optional fault injection and reliability (nil unless armed).
	dinj   DiskInjector
	dretry sim.Time
	tx     *san.TxTracker
	rel    *san.RxTracker
	rtxq   *sim.Queue[*san.Packet]

	// Telemetry hooks (nil = off): stamp mints in-band records for read
	// data leaving the node, complete consumes them when stamped write
	// data lands. maxReqQueue is the request-queue high-water mark,
	// tracked only while armed.
	stamp       san.Stamper
	complete    san.Completer
	maxReqQueue int

	stats   Stats
	started bool
}

type writeState struct {
	req WriteReq
	got int64
	src san.NodeID
}

// queuedReq is a request packet with its arrival time, so spindle
// timelines can start when the work arrived rather than when the TCA got
// to it.
type queuedReq struct {
	pkt *san.Packet
	at  sim.Time
}

// spindle is one physical disk's timeline under explicit striping.
type spindle struct {
	freeAt   sim.Time
	lastFile string
	lastEnd  int64
}

// New builds a storage node attached via the given links.
func New(eng *sim.Engine, id san.NodeID, name string, in, out *san.Link, cfg Config) *StorageNode {
	if cfg.Disk.Disks > 1 && cfg.Disk.StripeUnit <= 0 {
		cfg.Disk.StripeUnit = 64 * 1024
	}
	s := &StorageNode{
		eng:     eng,
		id:      id,
		name:    name,
		cfg:     cfg,
		in:      in,
		out:     out,
		files:   make(map[string]*File),
		filters: make(map[int]*Filter),
		reqs:    sim.NewQueue[queuedReq](),
		bus:     sim.NewServer(eng, name+".scsi"),
		fcpu:    sim.NewServer(eng, name+".fcpu"),
		writes:  make(map[int64]*writeState),
	}
	if cfg.Disk.Disks > 1 {
		s.spindles = make([]spindle, cfg.Disk.Disks)
	}
	return s
}

// RegisterFilter installs an active-disk pushdown filter under id (> 0).
func (s *StorageNode) RegisterFilter(id int, f *Filter) {
	if id <= 0 {
		panic("iodev: filter ids must be positive")
	}
	if _, dup := s.filters[id]; dup {
		panic(fmt.Sprintf("iodev: duplicate filter %d on %s", id, s.name))
	}
	if f.Clock.Period <= 0 {
		f.Clock = sim.Clock{Period: 5000 * sim.Picosecond} // 200 MHz
	}
	s.filters[id] = f
}

// SetTelemetry arms per-packet stamping on this node: stamp mints records
// for outgoing read data, complete consumes records carried by incoming
// write data. Install before traffic flows.
func (s *StorageNode) SetTelemetry(stamp san.Stamper, complete san.Completer) {
	s.stamp = stamp
	s.complete = complete
}

// MaxQueuedReqs reports the read-request queue depth high-water mark (zero
// unless telemetry was armed).
func (s *StorageNode) MaxQueuedReqs() int { return s.maxReqQueue }

// ID returns the node id.
func (s *StorageNode) ID() san.NodeID { return s.id }

// Stats returns a copy of the counters.
func (s *StorageNode) Stats() Stats { return s.stats }

// Name returns the node's debug name.
func (s *StorageNode) Name() string { return s.name }

// AddFile registers a file; duplicate names panic (workload setup error).
func (s *StorageNode) AddFile(f *File) {
	if _, dup := s.files[f.Name]; dup {
		panic(fmt.Sprintf("iodev: duplicate file %q on %s", f.Name, s.name))
	}
	s.files[f.Name] = f
}

// SetDiskFaults arms media-error injection: when inj votes to fail an
// operation the disk pays retry (default: a seek + rotation re-read) and
// tries again. Must run before Start.
func (s *StorageNode) SetDiskFaults(inj DiskInjector, retry sim.Time) {
	if s.started {
		panic("iodev: SetDiskFaults after Start")
	}
	if retry <= 0 {
		retry = s.cfg.Disk.Seek + s.cfg.Disk.Rotation
	}
	s.dinj = inj
	s.dretry = retry
}

// EnableReliability arms end-to-end retransmission on the TCA, mirroring
// nic.NIC.EnableReliability. Must run before Start.
func (s *StorageNode) EnableReliability(cfg san.RetxConfig) *san.TxTracker {
	if s.started {
		panic("iodev: EnableReliability after Start")
	}
	if s.tx != nil {
		return s.tx
	}
	s.rtxq = sim.NewQueue[*san.Packet]()
	enqueue := func(pkt *san.Packet) { s.rtxq.Put(pkt) }
	s.tx = san.NewTxTracker(s.eng, cfg, enqueue)
	s.rel = san.NewRxTracker(s.id, enqueue)
	return s.tx
}

// ReliabilityEnabled reports whether EnableReliability ran.
func (s *StorageNode) ReliabilityEnabled() bool { return s.tx != nil }

// SetRelFilter restricts both reliability trackers to peers that speak the
// protocol, mirroring nic.NIC.SetRelFilter.
func (s *StorageNode) SetRelFilter(fn func(san.NodeID) bool) {
	if s.tx != nil {
		s.tx.SetTrackable(fn)
		s.rel.SetTrackable(fn)
	}
}

// RelStats returns the reliability counters (zero when disabled).
func (s *StorageNode) RelStats() (san.TxStats, san.RxStats) {
	if s.tx == nil {
		return san.TxStats{}, san.RxStats{}
	}
	return s.tx.Stats(), s.rel.Stats()
}

// Start spawns the TCA receive process and the disk service process.
func (s *StorageNode) Start() {
	if s.started {
		panic("iodev: double Start")
	}
	s.started = true
	s.eng.Spawn(s.name+".tca", s.rxLoop)
	s.eng.Spawn(s.name+".disk", s.diskLoop)
	if s.tx != nil {
		s.eng.Spawn(s.name+".rtx", s.rtxLoop)
	}
}

// rxLoop accepts request packets and write data.
func (s *StorageNode) rxLoop(p *sim.Proc) {
	for {
		pkt := s.in.Recv(p)
		if s.rel != nil {
			if pkt.Hdr.Type == san.Ack {
				switch info := pkt.Payload.(type) {
				case san.AckInfo:
					s.tx.OnAck(pkt.Hdr.Src, info)
				case san.NakInfo:
					s.tx.OnNak(pkt.Hdr.Src, info)
				}
			} else {
				for _, q := range s.rel.Observe(pkt) {
					s.accept(p, q)
				}
			}
			s.in.ReturnCredit()
			continue
		}
		if pkt.Corrupt {
			// Without the reliability layer a corrupt packet stops at the
			// TCA's CRC check.
			s.in.ReturnCredit()
			continue
		}
		s.accept(p, pkt)
		s.in.ReturnCredit()
	}
}

// accept runs the normal receive path for one validated, in-order packet.
func (s *StorageNode) accept(p *sim.Proc, pkt *san.Packet) {
	switch pkt.Hdr.Type {
	case san.IORequest:
		// Register writes immediately so their data — possibly right
		// behind the request — is never dropped; reads queue for the
		// disk process.
		if w, isW := pkt.Payload.(WriteReq); isW {
			s.writes[pkt.Hdr.Flow] = &writeState{req: w, src: pkt.Hdr.Src}
		} else {
			s.reqs.Put(queuedReq{pkt: pkt, at: p.Now()})
			if s.stamp != nil {
				if d := s.reqs.Len(); d > s.maxReqQueue {
					s.maxReqQueue = d
				}
			}
		}
	case san.Data:
		s.absorbWrite(p, pkt)
	default:
		// Control and stray packets are ignored.
	}
}

// rtxLoop drains retransmissions and ACK/NAK control packets onto the link.
func (s *StorageNode) rtxLoop(p *sim.Proc) {
	for {
		pkt := s.rtxq.Get(p)
		s.out.Send(p, pkt)
	}
}

// sendTracked puts pkt on the wire and records it for retransmission when
// reliability is armed.
func (s *StorageNode) sendTracked(p *sim.Proc, pkt *san.Packet) {
	s.out.Send(p, pkt)
	if s.tx != nil {
		s.tx.Record(pkt)
	}
}

// absorbWrite charges bus and disk occupancy for one arriving write packet
// and acks the stream when complete.
func (s *StorageNode) absorbWrite(p *sim.Proc, pkt *san.Packet) {
	w := s.writes[pkt.Hdr.Flow]
	if w == nil {
		return // write data with no posted WriteReq: drop
	}
	s.bus.Reserve(sim.TransferTime(pkt.Size, s.cfg.Bus.BandwidthBytesPerSec))
	// Disk occupancy; sequential writes stream at disk bandwidth, and the
	// final reservation's completion is the durability point.
	durable := s.diskReserve(w.req.File, w.req.Off+w.got, pkt.Size)
	w.got += pkt.Size
	s.stats.BytesWritten += pkt.Size
	if st := pkt.Stamp; st != nil && s.complete != nil {
		s.complete(st, p.Now(), pkt.Hdr.Type)
	}
	if w.got >= w.req.Len {
		delete(s.writes, pkt.Hdr.Flow)
		s.stats.Writes++
		if s.eng.Tracing() {
			s.eng.Emit("disk", "write", s.name,
				fmt.Sprintf("write %q [%d,%d) durable", w.req.File, w.req.Off, w.req.Off+w.req.Len))
		}
		if w.req.Notify != san.NoNode && w.req.Notify != 0 {
			// The ack means durable: it leaves once the disk has absorbed
			// the final byte.
			req := w.req
			s.eng.SpawnAt(durable, s.name+".ack", func(ap *sim.Proc) {
				s.sendTracked(ap, &san.Packet{Hdr: san.Header{
					Src: s.id, Dst: req.Notify, Type: san.Control,
					Flow: req.NotifyFlow, Last: true,
				}})
			})
		}
	}
}

// diskReserve books disk time for [off, off+n) of file, returning when the
// last byte is off the platters.
func (s *StorageNode) diskReserve(file string, off, n int64) sim.Time {
	start := s.diskFreeAt
	if now := s.eng.Now(); start < now {
		start = now
	}
	if file != s.lastFile || off != s.lastEnd {
		start += s.cfg.Disk.Seek + s.cfg.Disk.Rotation
		s.stats.Seeks++
	} else {
		s.stats.Sequential++
	}
	s.diskFreeAt = start + sim.TransferTime(n, s.cfg.Disk.BandwidthBytesPerSec)
	s.lastFile = file
	s.lastEnd = off + n
	return s.diskFreeAt
}

// diskLoop services read requests one at a time, streaming each as MTU
// packets pipelined through the SCSI bus and the network link.
func (s *StorageNode) diskLoop(p *sim.Proc) {
	for {
		q := s.reqs.Get(p)
		req, ok := q.pkt.Payload.(ReadReq)
		if !ok {
			continue
		}
		s.serveRead(p, req, q.at)
	}
}

func (s *StorageNode) serveRead(p *sim.Proc, req ReadReq, arrived sim.Time) {
	f := s.files[req.File]
	if f == nil {
		panic(fmt.Sprintf("iodev: read of unknown file %q on %s", req.File, s.name))
	}
	if req.Off < 0 || req.Off+req.Len > f.Size {
		panic(fmt.Sprintf("iodev: read [%d,%d) outside %q of %d bytes", req.Off, req.Off+req.Len, req.File, f.Size))
	}
	s.stats.Reads++
	s.stats.BytesRead += req.Len
	if s.eng.Tracing() {
		s.eng.Emit("disk", "read", s.name,
			fmt.Sprintf("read %q [%d,%d) -> node %d", req.File, req.Off, req.Off+req.Len, req.Dst))
	}

	// Reserve the disk for the whole request up front (requests are served
	// in order on one spindle set); chunk k leaves the platters at a rate-
	// limited instant within the reservation.
	start := s.diskFreeAt
	if now := p.Now(); start < now {
		start = now
	}
	first := start
	if req.File != s.lastFile || req.Off != s.lastEnd {
		first += s.cfg.Disk.Seek + s.cfg.Disk.Rotation
		s.stats.Seeks++
	} else {
		s.stats.Sequential++
	}
	if s.dinj != nil {
		// Injected media errors: each failed attempt costs a re-read
		// penalty before the transfer can begin. The attempt cap only
		// bounds a pathological always-fail plan.
		for attempt := 0; attempt < maxDiskAttempts && s.dinj.OnDiskOp(s.name, req.File, req.Off, req.Len); attempt++ {
			s.stats.DiskRetries++
			first += s.dretry
		}
	}
	s.diskFreeAt = first + sim.TransferTime(req.Len, s.cfg.Disk.BandwidthBytesPerSec)
	s.lastFile = req.File
	s.lastEnd = req.Off + req.Len
	var ready func(endOff int64) sim.Time
	if len(s.spindles) > 1 {
		ready = s.stripedReadiness(arrived, req)
	} else {
		ready = func(endOff int64) sim.Time {
			return first + sim.TransferTime(endOff, s.cfg.Disk.BandwidthBytesPerSec)
		}
	}

	hdr := san.Header{
		Src:       s.id,
		Dst:       req.Dst,
		Type:      req.Type,
		HandlerID: req.HandlerID,
		CPUID:     req.CPUID,
		Addr:      req.DstAddr,
		Flow:      req.Flow,
	}

	if req.FilterID != 0 {
		if req.Ways > 1 {
			panic("iodev: pushdown filters do not compose with CPU striping")
		}
		flt := s.filters[req.FilterID]
		if flt == nil {
			panic(fmt.Sprintf("iodev: read names unregistered filter %d on %s", req.FilterID, s.name))
		}
		s.serveFilteredRead(p, req, f, flt, arrived, first, hdr)
		return
	}

	m := &san.Message{Hdr: hdr, Size: req.Len}
	pkts := m.Packets(func(_ int, off, n int64) any { return f.payload(req.Off+off, n) })
	if req.Ways >= 1 && req.Stripe > 0 {
		if req.Stripe%san.MTU != 0 {
			panic(fmt.Sprintf("iodev: stripe %d must be a positive MTU multiple", req.Stripe))
		}
		for _, pkt := range pkts {
			g := req.Off + int64(pkt.Hdr.Seq)*san.MTU
			blk := g / req.Stripe
			way := int(blk % int64(req.Ways))
			pkt.Hdr.CPUID = way
			pkt.Hdr.Addr = req.DstAddr + int64(way)*req.WayStride +
				(blk/int64(req.Ways))*req.Stripe + g%req.Stripe
		}
	}

	// Per-request SCSI arbitration/selection.
	s.bus.Reserve(s.cfg.Bus.Arbitration)
	for i, pkt := range pkts {
		at := ready(int64(i+1) * san.MTU)
		if at > p.Now() {
			p.SleepUntil(at)
		}
		s.bus.Use(p, sim.TransferTime(pkt.Size, s.cfg.Bus.BandwidthBytesPerSec))
		if s.stamp != nil {
			st := s.stamp(arrived)
			st.Add(san.HopDisk, s.name, arrived, p.Now())
			pkt.Stamp = st
		}
		s.sendTracked(p, pkt)
	}
	if req.Notify != san.NoNode && req.Notify != 0 {
		s.sendTracked(p, &san.Packet{Hdr: san.Header{
			Src: s.id, Dst: req.Notify, Type: san.Control,
			Flow: req.NotifyFlow, Last: true,
		}})
	}
}

// serveFilteredRead streams a read through a registered pushdown filter:
// each MTU chunk leaves the platters, pays the embedded processor's
// per-byte cost, and only its surviving bytes go on the wire. The stream
// ends with an 8-byte trailer packet (Last=true) whose payload is the
// total bytes kept, so consumers of the variable-length output can
// terminate.
func (s *StorageNode) serveFilteredRead(p *sim.Proc, req ReadReq, f *File, flt *Filter, arrived, first sim.Time, hdr san.Header) {
	s.bus.Reserve(s.cfg.Bus.Arbitration)
	var kept int64
	seq := 0
	for off := int64(0); off < req.Len; off += san.MTU {
		n := req.Len - off
		if n > san.MTU {
			n = san.MTU
		}
		ready := first + sim.TransferTime(off+n, s.cfg.Disk.BandwidthBytesPerSec)
		if ready > p.Now() {
			p.SleepUntil(ready)
		}
		// The embedded filter processor scans every byte.
		s.fcpu.Use(p, flt.Clock.Cycles(flt.CyclesPerByte*n))
		keep, out := flt.Fn(req.Off+off, n, f.payload(req.Off+off, n))
		if keep < 0 || keep > n {
			panic(fmt.Sprintf("iodev: filter %q kept %d of %d bytes", flt.Name, keep, n))
		}
		s.stats.FilteredBytes += n - keep
		if keep == 0 {
			continue
		}
		s.bus.Use(p, sim.TransferTime(keep, s.cfg.Bus.BandwidthBytesPerSec))
		pkt := &san.Packet{Hdr: hdr, Size: keep, Payload: out}
		pkt.Hdr.Seq = seq
		pkt.Hdr.Addr = hdr.Addr + kept
		seq++
		kept += keep
		if s.stamp != nil {
			st := s.stamp(arrived)
			st.Add(san.HopDisk, s.name, arrived, p.Now())
			pkt.Stamp = st
		}
		s.sendTracked(p, pkt)
	}
	// Trailer: total kept, Last set.
	trailer := &san.Packet{Hdr: hdr, Size: 8, Payload: kept}
	trailer.Hdr.Seq = seq
	trailer.Hdr.Addr = hdr.Addr + kept
	trailer.Hdr.Last = true
	if s.stamp != nil {
		st := s.stamp(arrived)
		st.Add(san.HopDisk, s.name, arrived, p.Now())
		trailer.Stamp = st
	}
	s.sendTracked(p, trailer)
	if req.Notify != san.NoNode && req.Notify != 0 {
		s.sendTracked(p, &san.Packet{Hdr: san.Header{
			Src: s.id, Dst: req.Notify, Type: san.Control,
			Flow: req.NotifyFlow, Last: true,
		}})
	}
}

// stripedReadiness builds the per-chunk readiness function for explicit
// striping: stripes of StripeUnit bytes round-robin across the spindles,
// each streaming at 1/Disks of the total bandwidth with its own
// sequential-access tracking.
func (s *StorageNode) stripedReadiness(now sim.Time, req ReadReq) func(endOff int64) sim.Time {
	d := len(s.spindles)
	perDiskBW := s.cfg.Disk.BandwidthBytesPerSec / float64(d)
	su := s.cfg.Disk.StripeUnit

	// Start each spindle: pay its own seek when it is not already
	// positioned after the previous request on this file.
	starts := make([]sim.Time, d)
	for i := range s.spindles {
		sp := &s.spindles[i]
		st := sp.freeAt
		if st < now {
			st = now
		}
		firstStripe := (req.Off / su) // first stripe of this request
		_ = firstStripe
		if sp.lastFile != req.File || sp.lastEnd != req.Off {
			st += s.cfg.Disk.Seek + s.cfg.Disk.Rotation
		}
		starts[i] = st
		sp.lastFile = req.File
		sp.lastEnd = req.Off + req.Len
	}

	// Precompute each stripe's completion curve: within stripe k (disk
	// k%d), byte w is ready at stripeStart + w/perDiskBW, where
	// stripeStart advances per disk.
	nStripes := int((req.Len + su - 1) / su)
	stripeStart := make([]sim.Time, nStripes)
	diskCursor := append([]sim.Time(nil), starts...)
	for k := 0; k < nStripes; k++ {
		// Stripe placement follows the absolute file offset, so
		// consecutive requests engage different spindles.
		disk := int(((req.Off + int64(k)*su) / su) % int64(d))
		stripeStart[k] = diskCursor[disk]
		n := req.Len - int64(k)*su
		if n > su {
			n = su
		}
		diskCursor[disk] += sim.TransferTime(n, perDiskBW)
	}
	for i := range s.spindles {
		s.spindles[i].freeAt = diskCursor[i]
	}

	return func(endOff int64) sim.Time {
		if endOff > req.Len {
			endOff = req.Len
		}
		last := endOff - 1
		k := last / su
		w := last % su
		return stripeStart[k] + sim.TransferTime(w+1, s.cfg.Disk.BandwidthBytesPerSec/float64(d))
	}
}
