package tarapp

import "testing"

// FuzzVerifyHeader must reject arbitrary corruption without panicking, and
// always accept a freshly built header.
func FuzzVerifyHeader(f *testing.F) {
	f.Add(Header("file.txt", 1234), 0, byte(0))
	f.Add(make([]byte, HeaderSize), 10, byte(0xFF))
	f.Add([]byte{1, 2, 3}, 0, byte(1))
	f.Fuzz(func(t *testing.T, h []byte, pos int, flip byte) {
		VerifyHeader(h) // arbitrary input: must not panic
		if len(h) != HeaderSize || flip == 0 {
			return
		}
		cp := make([]byte, HeaderSize)
		copy(cp, Header("x", 99))
		if _, _, ok := VerifyHeader(cp); !ok {
			t.Fatal("fresh header rejected")
		}
		cp[((pos%HeaderSize)+HeaderSize)%HeaderSize] ^= flip
		// A flipped byte either hits the checksum field's spare bytes or
		// must be detected; re-verify never panics either way.
		VerifyHeader(cp)
	})
}
