// Package tarapp reproduces the paper's Tar benchmark: "tar -cf" over a
// 4 MB set of input files, with the archive redirected to a remote node. The
// host builds a 512-byte ustar-style header per file; in the active cases
// the switch handler initiates the disk reads itself (the one benchmark
// whose I/O starts on the switch) and streams headers plus file data
// straight to the remote node, so the host's I/O traffic collapses to the
// headers and its utilization to essentially zero.
package tarapp

import (
	"fmt"
	"hash/fnv"

	"activesan/internal/apps"
	"activesan/internal/aswitch"
	"activesan/internal/cluster"
	"activesan/internal/iodev"
	"activesan/internal/san"
	"activesan/internal/sim"
	"activesan/internal/stats"
)

// HeaderSize is the ustar block size.
const HeaderSize = 512

// Params sizes the workload and calibrates costs.
type Params struct {
	Files     int
	FileSize  int64
	ChunkSize int64

	// HeaderInstr is the host cost of generating one archive header.
	HeaderInstr int64
	// SwitchIOInstr is the switch kernel's cost to initiate a disk request.
	SwitchIOInstr int64
}

// DefaultParams returns the paper's 4 MB workload as 16 x 256 KB files.
func DefaultParams() Params {
	return Params{
		Files:         16,
		FileSize:      256 * 1024,
		ChunkSize:     64 * 1024,
		HeaderInstr:   2000,
		SwitchIOInstr: 2000,
	}
}

// Header is a ustar-style 512-byte header block with name, octal size and
// checksum, built for real (the archive is verified end to end).
func Header(name string, size int64) []byte {
	h := make([]byte, HeaderSize)
	copy(h[0:100], name)            // name
	copy(h[100:108], "0000644\x00") // mode
	copy(h[108:116], "0001000\x00") // uid
	copy(h[116:124], "0001000\x00") // gid
	copy(h[124:136], fmt.Sprintf("%011o\x00", size))
	copy(h[136:148], "00000000000\x00") // mtime
	h[156] = '0'                        // typeflag: regular file
	copy(h[257:263], "ustar\x00")
	// Checksum: spaces while summing, then octal.
	for i := 148; i < 156; i++ {
		h[i] = ' '
	}
	var sum int64
	for _, b := range h {
		sum += int64(b)
	}
	copy(h[148:156], fmt.Sprintf("%06o\x00 ", sum))
	return h
}

// VerifyHeader checks a header's checksum and returns the stored name/size.
func VerifyHeader(h []byte) (name string, size int64, ok bool) {
	if len(h) != HeaderSize {
		return "", 0, false
	}
	var stored int64
	fmt.Sscanf(string(h[148:155]), "%o", &stored)
	cp := make([]byte, HeaderSize)
	copy(cp, h)
	for i := 148; i < 156; i++ {
		cp[i] = ' '
	}
	var sum int64
	for _, b := range cp {
		sum += int64(b)
	}
	if sum != stored {
		return "", 0, false
	}
	end := 0
	for end < 100 && h[end] != 0 {
		end++
	}
	fmt.Sscanf(string(h[124:135]), "%o", &size)
	return string(h[:end]), size, true
}

// FileName returns input file i's name.
func FileName(i int) string { return fmt.Sprintf("input%02d", i) }

// BuildFile generates file i's deterministic content.
func BuildFile(i int, size int64) []byte {
	rng := apps.NewRand(uint64(0x746172) ^ uint64(i)<<32) // "tar"
	out := make([]byte, size)
	for j := range out {
		out[j] = byte(rng.Next())
	}
	return out
}

// ArchiveChecksum is the oracle: FNV over header+content per file in order.
func ArchiveChecksum(prm Params) string {
	sum := fnv.New64a()
	for i := 0; i < prm.Files; i++ {
		sum.Write(Header(FileName(i), prm.FileSize))
		sum.Write(BuildFile(i, prm.FileSize))
	}
	return fmt.Sprintf("%x", sum.Sum64())
}

const handlerID = 13

const (
	argBase     = 0x0000_0000
	streamBase  = 0x0010_0000
	archiveFlow = 0x7020
	doneFlow    = 0x7021
	ackFlow     = 0x7022
	archAddr    = 0x0400_0000
)

type tarArgs struct {
	File   string
	Size   int64
	Index  int
	Header []byte
	Store  san.NodeID
	Target san.NodeID
	IsLast bool
	BufSz  int64
}

// Run executes one configuration.
func Run(cfg apps.Config, prm Params) stats.Run {
	ccfg := cluster.DefaultIOClusterConfig()
	ccfg.Hosts = 2

	totalArchive := int64(prm.Files) * (HeaderSize + prm.FileSize)
	var remoteSum string
	var remoteFiles int

	setup := func(c *cluster.Cluster) {
		for i := 0; i < prm.Files; i++ {
			c.Store(0).AddFile(&iodev.File{Name: FileName(i), Size: prm.FileSize, Data: BuildFile(i, prm.FileSize)})
		}
		if !cfg.IsActive() {
			return
		}
		sw := c.Switch(0)
		sw.Register(handlerID, "tar", func(x *aswitch.Ctx) {
			args := x.Args().(tarArgs)
			x.ReleaseArgs()
			// Forward the host-built header to the archive target.
			x.Send(aswitch.SendSpec{
				Dst: args.Target, Type: san.Data, Addr: archAddr,
				Size: HeaderSize, Flow: archiveFlow, Payload: args.Header,
			})
			// Initiate the disk read ourselves (modest kernel support on
			// the switch), streaming the file into our own buffers.
			base := int64(streamBase)
			x.Compute(prm.SwitchIOInstr)
			x.Send(aswitch.SendSpec{
				Dst: args.Store, Type: san.IORequest, Addr: 0, Size: 64,
				Flow: int64(0x6020 + args.Index),
				Payload: iodev.ReadReq{
					File: args.File, Off: 0, Len: args.Size,
					Dst: x.Switch().ID(), DstAddr: base, Type: san.Data,
					Flow: int64(0x6120 + args.Index),
				},
			})
			// Forward the stream to the target; no per-byte processing.
			cursor := base
			end := base + args.Size
			pkt := 0
			for cursor < end {
				b := x.WaitStream(cursor)
				last := b.End() >= end
				x.Forward(aswitch.SendSpec{
					Dst: args.Target, Type: san.Data, Addr: archAddr + (cursor - base), Flow: archiveFlow,
				}, b, pkt, last || pkt%128 == 127)
				pkt++
				cursor = b.End()
				x.Deallocate(cursor)
			}
			// Per-file completion notice: the host sends the next file's
			// header only after this one is archived, so queued argument
			// buffers never pin ATB slots the stream needs.
			x.Send(aswitch.SendSpec{
				Dst: x.Src(), Type: san.Control, Addr: argBase,
				Size: 8, Flow: doneFlow,
			})
		})
	}

	app := func(p *sim.Proc, c *cluster.Cluster) map[string]any {
		h0 := c.Host(0)
		h1 := c.Host(1)
		store := c.Store(0).ID()
		sw := c.Switch(0)

		// The remote node assembles and verifies the archive.
		remoteDone := sim.NewLatch()
		c.Eng.Spawn("archive-target", func(rp *sim.Proc) {
			sum := fnv.New64a()
			var got int64
			var raw []byte
			for got < totalArchive {
				comp := h1.RecvAny(rp)
				got += comp.Size
				for _, pl := range comp.Payloads {
					if b, ok := pl.([]byte); ok {
						raw = append(raw, b...)
					}
				}
			}
			// Verify structure: header, content, header, content...
			off := int64(0)
			for off+HeaderSize <= int64(len(raw)) {
				_, size, ok := VerifyHeader(raw[off : off+HeaderSize])
				if !ok {
					break
				}
				if off+HeaderSize+size > int64(len(raw)) {
					break
				}
				sum.Write(raw[off : off+HeaderSize+size])
				off += HeaderSize + size
				remoteFiles++
			}
			remoteSum = fmt.Sprintf("%x", sum.Sum64())
			// Ack the initiator.
			h1.SendMessage(rp, &san.Message{
				Hdr:  san.Header{Dst: h0.ID(), Type: san.Control, Flow: ackFlow},
				Size: 8,
			}, 0)
			remoteDone.Open()
		})

		if cfg.IsActive() {
			// Parse options, then hand each file to the switch: header +
			// instruction to read and redirect.
			h0.CPU().Compute(p, 20000)
			for i := 0; i < prm.Files; i++ {
				h0.CPU().Compute(p, prm.HeaderInstr)
				hdr := Header(FileName(i), prm.FileSize)
				h0.SendMessage(p, &san.Message{
					Hdr:  san.Header{Dst: sw.ID(), Type: san.ActiveMsg, HandlerID: handlerID, Addr: argBase},
					Size: HeaderSize,
					Payload: tarArgs{
						File: FileName(i), Size: prm.FileSize, Index: i,
						Header: hdr, Store: store, Target: h1.ID(),
						IsLast: i == prm.Files-1, BufSz: prm.ChunkSize,
					},
				}, 0)
				h0.RecvFlow(p, sw.ID(), doneFlow)
			}
			h0.RecvFlow(p, h1.ID(), ackFlow)
			return map[string]any{"checksum": remoteSum, "files": remoteFiles}
		}

		// Normal: the host reads every file and ships the archive itself.
		h0.CPU().Compute(p, 20000)
		buf := h0.Space().Alloc(prm.ChunkSize, 4096)
		for i := 0; i < prm.Files; i++ {
			h0.CPU().Compute(p, prm.HeaderInstr)
			hdr := Header(FileName(i), prm.FileSize)
			h0.SendMessage(p, &san.Message{
				Hdr:     san.Header{Dst: h1.ID(), Type: san.Data, Addr: archAddr, Flow: archiveFlow},
				Size:    HeaderSize,
				Payload: hdr,
			}, 0)
			apps.StreamChunks(p, h0, store, FileName(i), prm.FileSize, prm.ChunkSize, buf,
				cfg.Outstanding(), func(off, n int64, payloads []any) {
					var body []byte
					for _, pl := range payloads {
						if b, ok := pl.([]byte); ok {
							body = append(body, b...)
						}
					}
					h0.SendMessage(p, &san.Message{
						Hdr:     san.Header{Dst: h1.ID(), Type: san.Data, Addr: archAddr, Flow: archiveFlow},
						Size:    n,
						Payload: body,
						Split:   san.SliceSplit(body),
					}, buf)
				})
		}
		h0.RecvFlow(p, h1.ID(), ackFlow)
		return map[string]any{"checksum": remoteSum, "files": remoteFiles}
	}

	return apps.RunIOScoped(ccfg, cfg, setup, app, []int{0})
}

// RunAll executes the four configurations (paper Figures 11/12). Host
// metrics cover the initiating host only — the paper's Tar host — so the
// remote archive target's activity does not dilute utilization.
func RunAll(prm Params) *stats.Result {
	res := &stats.Result{ID: "fig11", Title: "Tar: time, host utilization, host I/O traffic"}
	for _, cfg := range apps.AllConfigs {
		res.Runs = append(res.Runs, Run(cfg, prm))
	}
	res.Bars = apps.StandardBars(res, 1)
	return res
}
