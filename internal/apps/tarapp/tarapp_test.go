package tarapp

import (
	"testing"

	"activesan/internal/apps"
)

func testParams() Params {
	prm := DefaultParams()
	prm.Files = 4
	prm.FileSize = 128 * 1024
	return prm
}

func TestHeaderRoundTrip(t *testing.T) {
	h := Header("hello.txt", 12345)
	if len(h) != HeaderSize {
		t.Fatalf("header is %d bytes", len(h))
	}
	name, size, ok := VerifyHeader(h)
	if !ok {
		t.Fatal("checksum failed")
	}
	if name != "hello.txt" || size != 12345 {
		t.Fatalf("round trip gave %q/%d", name, size)
	}
}

func TestHeaderCorruptionDetected(t *testing.T) {
	h := Header("x", 1)
	h[0] ^= 0xFF
	if _, _, ok := VerifyHeader(h); ok {
		t.Fatal("corrupted header verified")
	}
}

func TestArchiveChecksumAcrossConfigs(t *testing.T) {
	prm := testParams()
	want := ArchiveChecksum(prm)
	for _, cfg := range apps.AllConfigs {
		run := Run(cfg, prm)
		if got := run.Extra["checksum"].(string); got != want {
			t.Errorf("%s: archive checksum %s, want %s", cfg, got, want)
		}
		if files := run.Extra["files"].(int); files != prm.Files {
			t.Errorf("%s: archive holds %d files, want %d", cfg, files, prm.Files)
		}
	}
}

func TestShapeTar(t *testing.T) {
	// Paper Figures 11/12: normal worst; the other three roughly tie;
	// active host utilization near zero; active host traffic is just the
	// headers.
	prm := testParams()
	res := RunAll(prm)
	normal := res.Baseline()
	np, _ := res.Run("normal+pref")
	a, _ := res.Run("active")
	ap, _ := res.Run("active+pref")

	if !(normal.Time > np.Time) {
		t.Errorf("normal (%v) should be worst (normal+pref %v)", normal.Time, np.Time)
	}
	for _, r := range []struct {
		name string
		t    float64
	}{{"active", float64(a.Time)}, {"active+pref", float64(ap.Time)}} {
		ratio := r.t / float64(np.Time)
		if ratio < 0.85 || ratio > 1.15 {
			t.Errorf("%s/normal+pref time ratio = %.3f, want ~1", r.name, ratio)
		}
	}
	// Host traffic: headers only (plus request packets).
	headerBytes := int64(prm.Files) * HeaderSize
	if a.Traffic > 3*headerBytes {
		t.Errorf("active host traffic = %d, want close to %d (headers)", a.Traffic, headerBytes)
	}
	if normal.Traffic < 2*int64(prm.Files)*prm.FileSize {
		t.Errorf("normal traffic = %d, want ~2x data (in+out)", normal.Traffic)
	}
	// Host is nearly idle in the active cases.
	if a.HostUtil() > 0.05 {
		t.Errorf("active host util = %.3f, want near 0", a.HostUtil())
	}
	if normal.HostUtil() < 3*a.HostUtil() {
		t.Errorf("normal util %.3f vs active %.3f: gap too small", normal.HostUtil(), a.HostUtil())
	}
}

func TestSingleFileArchive(t *testing.T) {
	prm := DefaultParams()
	prm.Files = 1
	prm.FileSize = 64 * 1024
	want := ArchiveChecksum(prm)
	for _, cfg := range []apps.Config{apps.Normal, apps.ActivePref} {
		run := Run(cfg, prm)
		if got := run.Extra["checksum"].(string); got != want {
			t.Errorf("%s: single-file archive checksum mismatch", cfg)
		}
	}
}
