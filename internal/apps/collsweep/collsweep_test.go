package collsweep

import (
	"encoding/json"
	"testing"

	"activesan/internal/cluster"
	"activesan/internal/collective"
	"activesan/internal/metrics"
	"activesan/internal/telemetry"
)

func smallParams() Params {
	prm := DefaultParams()
	prm.HostCounts = []int{4, 16}
	prm.Budgets = []int{2, 8, 64}
	return prm
}

func marshal(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// Worker fan-out must not change a byte of the result.
func TestSweepByteIdenticalAcrossWorkers(t *testing.T) {
	prm := smallParams()
	a := marshal(t, RunAllParallel(prm, 1))
	b := marshal(t, RunAllParallel(prm, 4))
	if a != b {
		t.Fatalf("1-worker and 4-worker sweeps differ:\n%s\n%s", a, b)
	}
}

// Partitioned engines must not change a byte of the result either.
func TestSweepByteIdenticalAcrossPartitions(t *testing.T) {
	prm := smallParams()
	prm.Partitions = 1
	a := marshal(t, RunAll(prm))
	for _, parts := range []int{2, 4} {
		prm.Partitions = parts
		if b := marshal(t, RunAll(prm)); a != b {
			t.Fatalf("serial and %d-partition sweeps differ:\n%s\n%s", parts, a, b)
		}
	}
}

// The headline acceptance point: at 64 hosts the active allreduce must beat
// the recursive-doubling baseline on latency and cut host I/O by >= 2x.
func TestAllreduce64HostAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("64-host point is not -short")
	}
	prm := collective.DefaultParams()
	pas := RunPoint(collective.Allreduce, 64, false, prm, 1)
	act := RunPoint(collective.Allreduce, 64, true, prm, 1)
	if !pas.Correct || !act.Correct {
		t.Fatalf("incorrect result: passive ok=%v active ok=%v", pas.Correct, act.Correct)
	}
	if act.Latency >= pas.Latency {
		t.Errorf("no speedup at 64 hosts: active %v vs passive %v", act.Latency, pas.Latency)
	}
	if ratio := float64(pas.HostBytes) / float64(act.HostBytes); ratio < 2 {
		t.Errorf("host I/O reduction %.2fx at 64 hosts, want >= 2x (active %d B, passive %d B)",
			ratio, act.HostBytes, pas.HostBytes)
	}
}

// Every budget point's ledger must balance, the spill count must fall as
// the table grows, and the cliff edges must behave: heavy spilling at
// budget 1, none once the whole key space is resident.
func TestBudgetSweepLedger(t *testing.T) {
	prm := collective.DefaultParams()
	var prev int64 = -1
	for _, b := range []int{1, 4, 16, 64, 128} {
		pt := RunBudgetPoint(16, b, true, prm, 1)
		if !pt.Correct {
			t.Errorf("budget=%d: incorrect result", b)
		}
		if !pt.Balanced {
			t.Errorf("budget=%d: ledger unbalanced: hits=%d spills=%d ingested=%d",
				b, pt.Hits, pt.Spills, pt.Ingested)
		}
		if prev >= 0 && pt.Spills > prev {
			t.Errorf("budget=%d: spills rose to %d from %d at the smaller budget", b, pt.Spills, prev)
		}
		prev = pt.Spills
		if b == 1 && pt.Spills == 0 {
			t.Error("budget=1: no spills with 64 keys in flight")
		}
		if b >= prm.Keys && pt.Spills != 0 {
			t.Errorf("budget=%d: %d spills with the whole key space resident", b, pt.Spills)
		}
		if pt.Metrics.Get("collective/agg_hits") != float64(pt.Hits) {
			t.Errorf("budget=%d: snapshot hits %v != %d", b, pt.Metrics.Get("collective/agg_hits"), pt.Hits)
		}
	}
}

// Collectives must carry telemetry stamps: with a recorder attached, the
// per-hop histograms decompose the active allreduce's latency.
func TestTelemetryDecomposesCollective(t *testing.T) {
	c := cluster.NewPartitionedFatTreeCluster(cluster.DefaultFatTreeConfig(16), 1)
	rec := telemetry.NewRecorder()
	rec.Attach(c)
	r := collective.RunOn(c, collective.Allreduce, true, 16, collective.DefaultParams())
	if !r.Correct {
		t.Fatal("allreduce incorrect under telemetry")
	}
	snap := metrics.NewSnapshot()
	rec.Into(snap)
	if snap.Get("telemetry/completed") == 0 {
		t.Fatal("no stamped packets completed")
	}
	for _, k := range []string{"telemetry/e2e/p99", "telemetry/hop/wire/count", "telemetry/hop/queue/count"} {
		if _, ok := snap.Values[k]; !ok {
			t.Errorf("missing %s in the telemetry fold", k)
		}
	}
}
