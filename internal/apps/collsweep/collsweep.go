// Package collsweep measures the in-network collective library (see
// COLLECTIVES.md) the way scalesweep measures the single reduce: an
// allreduce swept over host counts on k-ary fat trees, active (up-tree
// combine + down-tree multicast inside the switches) against passive
// (recursive doubling on the hosts), reporting completion-latency and
// host-I/O-byte curves. A second axis sweeps the key-grouped aggregation
// switch-memory budget at a fixed cluster, exposing the spill cliff: as the
// per-switch key table shrinks, records spill un-aggregated toward the
// root, host I/O grows, and the per-switch hit/spill ledgers — pinned in
// the golden — must balance (hits + spills == ingested) at every point.
package collsweep

import (
	"fmt"
	"runtime"
	"sync"

	"activesan/internal/cluster"
	"activesan/internal/collective"
	"activesan/internal/fault"
	"activesan/internal/metrics"
	"activesan/internal/sim"
	"activesan/internal/stats"
	"activesan/internal/telemetry"
)

// Params sizes the sweep.
type Params struct {
	// HostCounts are the swept cluster sizes for the allreduce axis.
	HostCounts []int
	// Partitions selects the engine layout per point: negative follows the
	// process-wide -partitions flag, 0 auto-picks from each point's
	// topology, 1 forces serial, n >= 2 forces n partitions. Results are
	// byte-identical whatever the value.
	Partitions int
	// Op is the collective swept over HostCounts (allreduce by default;
	// sansweep's -collective flag selects others).
	Op collective.Op
	// Coll calibrates the collective at every point.
	Coll collective.Params
	// AggHosts is the fixed cluster size of the budget axis; Budgets the
	// swept per-switch key-table capacities.
	AggHosts int
	Budgets  []int
}

// DefaultParams sweeps 4 to 1024 hosts with the paper's 512-byte vectors
// and the aggregation budget from 1 key to the whole key space.
func DefaultParams() Params {
	return Params{
		HostCounts: []int{4, 8, 16, 32, 64, 256, 1024},
		Partitions: -1,
		Op:         collective.DefaultOp(),
		Coll:       collective.DefaultParams(),
		AggHosts:   16,
		Budgets:    []int{1, 2, 4, 8, 16, 32, 64, 128},
	}
}

// Point is one (hosts, variant) allreduce measurement. Metrics is the
// telemetry fold (per-hop latency histograms decomposing the collective),
// present when the process-wide -telemetry recorder is armed.
type Point struct {
	Hosts     int
	K         int
	Switches  int
	Latency   sim.Time
	HostBytes int64
	Correct   bool
	Metrics   *metrics.Snapshot
}

// BudgetPoint is one key-aggregation measurement at a fixed cluster size.
type BudgetPoint struct {
	Budget    int
	Latency   sim.Time
	HostBytes int64
	Correct   bool
	Hits      int64
	Spills    int64
	Ingested  int64
	Balanced  bool
	PerSwitch []collective.SwitchAgg
	// Metrics carries the per-switch agg_hits/agg_spills/agg_ingested
	// counters (and, with -telemetry armed, the per-hop latency fold).
	Metrics *metrics.Snapshot
}

// newCluster builds one measurement's fat tree with the process-default
// fault plan and telemetry recorder armed, so -faults and -telemetry
// compose with the sweep exactly as they do with the figure experiments.
func newCluster(hosts, partitions int) (*cluster.Cluster, *telemetry.Recorder) {
	cfg := cluster.DefaultFatTreeConfig(hosts)
	c := cluster.NewPartitionedFatTreeCluster(cfg, partitions)
	fault.ArmDefault(c)
	return c, telemetry.MaybeAttach(c)
}

// RunPoint measures one collective variant at one cluster size.
func RunPoint(op collective.Op, hosts int, active bool, prm collective.Params, partitions int) Point {
	cfg := cluster.DefaultFatTreeConfig(hosts)
	c, rec := newCluster(hosts, partitions)
	r := collective.RunOn(c, op, active, hosts, prm)
	pt := Point{
		Hosts:     hosts,
		K:         cfg.K,
		Switches:  len(c.Switches),
		Latency:   r.Latency,
		HostBytes: hostBytes(c),
		Correct:   r.Correct,
	}
	if rec != nil {
		pt.Metrics = metrics.NewSnapshot()
		rec.Into(pt.Metrics)
	}
	return pt
}

// RunBudgetPoint measures key-grouped aggregation under one switch-memory
// budget (active), or the host-shuffle reference when active is false.
func RunBudgetPoint(hosts, budget int, active bool, prm collective.Params, partitions int) BudgetPoint {
	prm.AggBudget = budget
	c, rec := newCluster(hosts, partitions)
	r := collective.RunOn(c, collective.KeyAgg, active, hosts, prm)
	pt := BudgetPoint{
		Budget:    budget,
		Latency:   r.Latency,
		HostBytes: hostBytes(c),
		Correct:   r.Correct,
		Hits:      r.AggHits,
		Spills:    r.AggSpills,
		Ingested:  r.AggIngested,
		Balanced:  r.AggBalanced(),
		PerSwitch: r.PerSwitch,
	}
	pt.Metrics = aggSnapshot(pt)
	if rec != nil {
		rec.Into(pt.Metrics)
	}
	return pt
}

func hostBytes(c *cluster.Cluster) int64 {
	var n int64
	for _, h := range c.Hosts {
		n += h.Traffic()
	}
	return n
}

// aggSnapshot renders a budget point's ledgers as a metrics snapshot: the
// totals under collective/, each switch's under <name>/.
func aggSnapshot(pt BudgetPoint) *metrics.Snapshot {
	snap := metrics.NewSnapshot()
	snap.SetInt("collective/agg_hits", pt.Hits)
	snap.SetInt("collective/agg_spills", pt.Spills)
	snap.SetInt("collective/agg_ingested", pt.Ingested)
	for _, s := range pt.PerSwitch {
		snap.SetInt(s.Name+"/agg_hits", s.Hits)
		snap.SetInt(s.Name+"/agg_spills", s.Spills)
		snap.SetInt(s.Name+"/agg_ingested", s.Ingested)
	}
	return snap
}

// RunAll runs the sweep sequentially.
func RunAll(prm Params) *stats.Result { return RunAllParallel(prm, 1) }

// RunAllParallel fans every measurement — the allreduce points and the
// budget points — over one pool of `workers` goroutines. Results are
// slotted by index, so any worker count is byte-identical to a sequential
// run. workers < 1 selects runtime.NumCPU().
func RunAllParallel(prm Params, workers int) *stats.Result {
	res := &stats.Result{
		ID:    "collsweep",
		Title: "In-network collectives: " + prm.Op.String() + " scaling and the aggregation spill cliff",
	}
	parts := prm.Partitions
	if parts < 0 {
		parts = cluster.DefaultPartitions()
	}

	type pair struct{ passive, active Point }
	points := make([]pair, len(prm.HostCounts))
	budgets := make([]BudgetPoint, len(prm.Budgets))
	var aggRef BudgetPoint // the host-shuffle reference at the default budget

	// One flat work list: index i < len(HostCounts) is an allreduce pair,
	// then the budget points, then the passive reference.
	njobs := len(prm.HostCounts) + len(prm.Budgets) + 1
	runIdx := func(i int) {
		switch {
		case i < len(prm.HostCounts):
			points[i].passive = RunPoint(prm.Op, prm.HostCounts[i], false, prm.Coll, parts)
			points[i].active = RunPoint(prm.Op, prm.HostCounts[i], true, prm.Coll, parts)
		case i < len(prm.HostCounts)+len(prm.Budgets):
			b := i - len(prm.HostCounts)
			budgets[b] = RunBudgetPoint(prm.AggHosts, prm.Budgets[b], true, prm.Coll, parts)
		default:
			aggRef = RunBudgetPoint(prm.AggHosts, 0, false, prm.Coll, parts)
		}
	}
	if workers < 1 {
		workers = runtime.NumCPU()
	}
	if workers > njobs {
		workers = njobs
	}
	if workers <= 1 {
		for i := 0; i < njobs; i++ {
			runIdx(i)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					runIdx(i)
				}
			}()
		}
		for i := 0; i < njobs; i++ {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}

	var passLat, actLat, passBytes, actBytes stats.Series
	passLat.Name = "passive (recursive doubling)"
	actLat.Name = "active (in-switch " + prm.Op.String() + ")"
	passBytes.Name = "passive host bytes"
	actBytes.Name = "active host bytes"
	for i, p := range prm.HostCounts {
		pp, pa := points[i].passive, points[i].active
		if !pp.Correct || !pa.Correct {
			res.Notes = append(res.Notes, fmt.Sprintf(
				"p=%d: INCORRECT result (passive ok=%v, active ok=%v)", p, pp.Correct, pa.Correct))
		}
		x := float64(p)
		passLat.X = append(passLat.X, x)
		passLat.Y = append(passLat.Y, pp.Latency.Micros())
		actLat.X = append(actLat.X, x)
		actLat.Y = append(actLat.Y, pa.Latency.Micros())
		passBytes.X = append(passBytes.X, x)
		passBytes.Y = append(passBytes.Y, float64(pp.HostBytes))
		actBytes.X = append(actBytes.X, x)
		actBytes.Y = append(actBytes.Y, float64(pa.HostBytes))
		res.Notes = append(res.Notes, fmt.Sprintf(
			"p=%-4d k=%d (%d switches): host I/O %d B active vs %d B passive (%.2fx less), latency %v vs %v",
			p, pa.K, pa.Switches, pa.HostBytes, pp.HostBytes,
			float64(pp.HostBytes)/float64(pa.HostBytes), pa.Latency, pp.Latency))
		// With the telemetry recorder armed, each point also carries its
		// per-hop latency decomposition.
		if pp.Metrics != nil && pa.Metrics != nil {
			res.Runs = append(res.Runs,
				stats.Run{Config: fmt.Sprintf("passive/p=%d", p), Time: pp.Latency,
					Traffic: pp.HostBytes, Hosts: p, Metrics: pp.Metrics},
				stats.Run{Config: fmt.Sprintf("active/p=%d", p), Time: pa.Latency,
					Traffic: pa.HostBytes, Hosts: p, Metrics: pa.Metrics})
		}
	}
	sp := stats.SpeedupSeries("speedup", passLat, actLat)

	var spillS, hitS, aggBytes stats.Series
	spillS.Name = "agg spills vs budget"
	hitS.Name = "agg hits vs budget"
	aggBytes.Name = "keyagg host bytes vs budget"
	for i, b := range prm.Budgets {
		pt := budgets[i]
		x := float64(b)
		spillS.X = append(spillS.X, x)
		spillS.Y = append(spillS.Y, float64(pt.Spills))
		hitS.X = append(hitS.X, x)
		hitS.Y = append(hitS.Y, float64(pt.Hits))
		aggBytes.X = append(aggBytes.X, x)
		aggBytes.Y = append(aggBytes.Y, float64(pt.HostBytes))
		state := "balanced"
		if !pt.Balanced {
			state = "UNBALANCED"
		}
		if !pt.Correct {
			state += " INCORRECT"
		}
		res.Notes = append(res.Notes, fmt.Sprintf(
			"keyagg p=%d budget=%-4d: hits=%-5d spills=%-5d ingested=%-5d (%s), host I/O %d B, latency %v",
			prm.AggHosts, b, pt.Hits, pt.Spills, pt.Ingested, state, pt.HostBytes, pt.Latency))
		res.Runs = append(res.Runs, stats.Run{
			Config:  fmt.Sprintf("keyagg/budget=%d", b),
			Time:    pt.Latency,
			Traffic: pt.HostBytes,
			Hosts:   prm.AggHosts,
			Metrics: pt.Metrics,
		})
	}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"keyagg p=%d host shuffle reference: host I/O %d B, latency %v (correct=%v)",
		prm.AggHosts, aggRef.HostBytes, aggRef.Latency, aggRef.Correct))
	res.Notes = append(res.Notes, fmt.Sprintf("max %s speedup %.2fx", prm.Op, sp.MaxY()))

	res.Series = []stats.Series{passLat, actLat, passBytes, actBytes, sp, hitS, spillS, aggBytes}
	return res
}
