// Package latsweep decomposes per-hop packet latency for the paper's
// active-vs-passive argument: the same reduce-to-one collective runs on
// k-ary fat trees at several host counts with the telemetry recorder
// armed, and each point reports the end-to-end latency quantiles plus the
// per-packet breakdown into NIC, wire, route, queue, handler and disk
// time. The passive variant pays its path length in host round trips; the
// active variant trades them for handler cycles inside the fabric — this
// sweep turns that path-length argument into a measured figure.
package latsweep

import (
	"fmt"
	"runtime"
	"sync"

	"activesan/internal/apps/reduce"
	"activesan/internal/cluster"
	"activesan/internal/metrics"
	"activesan/internal/san"
	"activesan/internal/sim"
	"activesan/internal/stats"
	"activesan/internal/telemetry"
)

// Params sizes the sweep.
type Params struct {
	// HostCounts are the swept cluster sizes.
	HostCounts []int
	// Reduce calibrates the collective at every point.
	Reduce reduce.Params
}

// DefaultParams sweeps 4 to 64 hosts with the paper's 512-byte vectors.
func DefaultParams() Params {
	return Params{
		HostCounts: []int{4, 8, 16, 32, 64},
		Reduce:     reduce.DefaultParams(),
	}
}

// Point is one (hosts, variant) measurement with its telemetry snapshot.
type Point struct {
	Hosts   int
	Latency sim.Time
	Correct bool
	// Packets is how many stamped packets completed; HopPs their total
	// picoseconds per hop kind (summed over packet types).
	Packets int64
	HopPs   [san.NumHopKinds]int64
	// Metrics carries the full telemetry fold: e2e/type/hop histograms,
	// path breakdowns and occupancy watermarks.
	Metrics *metrics.Snapshot
}

// RunPoint measures one variant at one cluster size on the minimal fat
// tree, with a telemetry recorder always attached — latsweep is the
// experiment about telemetry, so it does not consult the process default.
func RunPoint(hosts int, active bool, prm reduce.Params) Point {
	eng := sim.NewEngine()
	cfg := cluster.DefaultFatTreeConfig(hosts)
	c := cluster.NewFatTreeCluster(eng, cfg)
	rec := telemetry.NewRecorder()
	rec.Attach(c)
	r := reduce.RunOn(eng, c, reduce.ToOne, active, hosts, prm)
	snap := metrics.NewSnapshot()
	rec.Into(snap)
	pt := Point{Hosts: hosts, Latency: r.Latency, Correct: r.Correct, Metrics: snap}
	for t := san.Type(0); t <= san.Ack; t++ {
		n, ps := rec.Path(t)
		pt.Packets += n
		for k := range ps {
			pt.HopPs[k] += ps[k]
		}
	}
	return pt
}

// perPacket renders a point's mean per-packet path decomposition.
func (pt Point) perPacket() string {
	if pt.Packets == 0 {
		return "no completed packets"
	}
	s := ""
	for k := san.HopKind(0); k < san.NumHopKinds; k++ {
		if pt.HopPs[k] == 0 {
			continue
		}
		if s != "" {
			s += " "
		}
		s += fmt.Sprintf("%s=%v", k, sim.Time(pt.HopPs[k]/pt.Packets))
	}
	return s
}

// RunAll runs the sweep sequentially.
func RunAll(prm Params) *stats.Result { return RunAllParallel(prm, 1) }

// RunAllParallel fans the sweep points over `workers` goroutines. Output
// order follows HostCounts whatever the completion order, and the
// histograms keep exact counts, so any worker count is byte-identical to a
// sequential run. workers < 1 selects runtime.NumCPU().
func RunAllParallel(prm Params, workers int) *stats.Result {
	res := &stats.Result{
		ID:    "latsweep",
		Title: "Per-hop latency decomposition: active vs passive reduce",
	}
	if workers < 1 {
		workers = runtime.NumCPU()
	}
	if workers > len(prm.HostCounts) {
		workers = len(prm.HostCounts)
	}
	type pair struct{ passive, active Point }
	points := make([]pair, len(prm.HostCounts))
	runIdx := func(i int) {
		points[i].passive = RunPoint(prm.HostCounts[i], false, prm.Reduce)
		points[i].active = RunPoint(prm.HostCounts[i], true, prm.Reduce)
	}
	if workers <= 1 {
		for i := range prm.HostCounts {
			runIdx(i)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					runIdx(i)
				}
			}()
		}
		for i := range prm.HostCounts {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}

	var passP50, actP50, passP99, actP99 stats.Series
	passP50.Name = "passive e2e p50 (us)"
	actP50.Name = "active e2e p50 (us)"
	passP99.Name = "passive e2e p99 (us)"
	actP99.Name = "active e2e p99 (us)"
	ps2us := func(s *metrics.Snapshot, name string) float64 {
		return s.Get(name) / 1e6 // picoseconds -> microseconds
	}
	for i, p := range prm.HostCounts {
		pp, pa := points[i].passive, points[i].active
		if !pp.Correct || !pa.Correct {
			res.Notes = append(res.Notes, fmt.Sprintf(
				"p=%d: INCORRECT result (passive ok=%v, active ok=%v)", p, pp.Correct, pa.Correct))
		}
		x := float64(p)
		passP50.X = append(passP50.X, x)
		passP50.Y = append(passP50.Y, ps2us(pp.Metrics, "telemetry/e2e/p50"))
		actP50.X = append(actP50.X, x)
		actP50.Y = append(actP50.Y, ps2us(pa.Metrics, "telemetry/e2e/p50"))
		passP99.X = append(passP99.X, x)
		passP99.Y = append(passP99.Y, ps2us(pp.Metrics, "telemetry/e2e/p99"))
		actP99.X = append(actP99.X, x)
		actP99.Y = append(actP99.Y, ps2us(pa.Metrics, "telemetry/e2e/p99"))
		res.Runs = append(res.Runs,
			stats.Run{Config: fmt.Sprintf("passive/p=%d", p), Time: pp.Latency,
				Hosts: p, Metrics: pp.Metrics},
			stats.Run{Config: fmt.Sprintf("active/p=%d", p), Time: pa.Latency,
				Hosts: p, Metrics: pa.Metrics})
		res.Notes = append(res.Notes, fmt.Sprintf(
			"p=%-3d passive per-pkt: %s", p, pp.perPacket()))
		res.Notes = append(res.Notes, fmt.Sprintf(
			"p=%-3d active  per-pkt: %s", p, pa.perPacket()))
	}
	sp := stats.SpeedupSeries("p99 speedup", passP99, actP99)
	res.Series = []stats.Series{passP50, actP50, passP99, actP99, sp}
	res.Notes = append(res.Notes, fmt.Sprintf("max p99 speedup %.2fx", sp.MaxY()))
	return res
}
