package latsweep

import (
	"encoding/json"
	"reflect"
	"testing"

	"activesan/internal/apps/reduce"
	"activesan/internal/san"
)

// smallParams keeps the test sweep fast.
func smallParams() Params {
	return Params{HostCounts: []int{4, 8}, Reduce: reduce.DefaultParams()}
}

func TestRunPointPopulatesTelemetry(t *testing.T) {
	pt := RunPoint(8, true, reduce.DefaultParams())
	if !pt.Correct {
		t.Fatal("active reduce incorrect")
	}
	if pt.Packets == 0 {
		t.Fatal("no completed packets recorded")
	}
	m := pt.Metrics
	if m.Get("telemetry/e2e/count") == 0 || m.Get("telemetry/e2e/p99") == 0 {
		t.Fatalf("e2e histogram empty: count=%g p99=%g",
			m.Get("telemetry/e2e/count"), m.Get("telemetry/e2e/p99"))
	}
	// The active variant must execute the combine handler in-fabric.
	if m.Get("telemetry/path/active/packets") == 0 {
		t.Error("active run shows no active-message path breakdown")
	}
	var hopTotal int64
	for k := san.HopKind(0); k < san.NumHopKinds; k++ {
		hopTotal += pt.HopPs[k]
	}
	if hopTotal == 0 {
		t.Error("per-hop decomposition sums to zero")
	}
}

func TestPassiveRunsNoHandler(t *testing.T) {
	pt := RunPoint(8, false, reduce.DefaultParams())
	if !pt.Correct {
		t.Fatal("passive reduce incorrect")
	}
	if got := pt.Metrics.Get("telemetry/path/active/packets"); got != 0 {
		t.Fatalf("passive run completed %g active messages, want 0", got)
	}
	if pt.HopPs[san.HopHandler] != 0 {
		t.Fatalf("passive run spent %d ps in handlers", pt.HopPs[san.HopHandler])
	}
}

func TestRunAllParallelByteIdentical(t *testing.T) {
	// Exact-count histograms plus index-ordered workers: any -parallel
	// value must serialize to exactly the same result — the property the
	// golden file pins.
	prm := smallParams()
	seq := RunAll(prm)
	par := RunAllParallel(prm, 4)
	a, err := json.Marshal(seq)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(par)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("parallel sweep differs from sequential:\n--- seq\n%s\n--- par\n%s", a, b)
	}
	if !reflect.DeepEqual(seq.Notes, par.Notes) {
		t.Fatal("notes differ")
	}
}

func TestActiveBeatsPassiveAtScale(t *testing.T) {
	// The paper's path-length argument, measured: at 16 hosts the active
	// tree's p99 end-to-end latency beats the host MST's.
	prm := reduce.DefaultParams()
	pass := RunPoint(16, false, prm)
	act := RunPoint(16, true, prm)
	pp, ap := pass.Metrics.Get("telemetry/e2e/p99"), act.Metrics.Get("telemetry/e2e/p99")
	if pp == 0 || ap == 0 {
		t.Fatalf("p99 missing: passive=%g active=%g", pp, ap)
	}
	if ap >= pp {
		t.Fatalf("active p99 %g >= passive p99 %g at 16 hosts", ap, pp)
	}
}
