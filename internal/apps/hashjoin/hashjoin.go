// Package hashjoin reproduces the paper's HashJoin benchmark: a hash join
// of R (16 MB) and S (128 MB) with 128-byte records and a 128 KB bit-vector
// filter, run with the paper's scaled host caches (8 KB L1D / 64 KB L2) so
// the scaled tables behave like a 128 MB x 1 GB join.
//
// Bit-vector filtering works exactly as in the paper: scanning R sets a bit
// per hashed join attribute; scanning S discards records whose bit is clear.
// In the active cases the bit-vector lives in the switch: the handler sets
// bits as R streams through it to the host, then filters S inside the
// switch, forwarding only passing records — cutting host I/O traffic for
// the S scan by the filter's reduction factor (0.24) and halving the host's
// cache-miss stall share.
package hashjoin

import (
	"activesan/internal/apps"
	"activesan/internal/aswitch"
	"activesan/internal/cache"
	"activesan/internal/cluster"
	"activesan/internal/iodev"
	"activesan/internal/san"
	"activesan/internal/sim"
	"activesan/internal/stats"
)

// Params sizes the workload and calibrates costs.
type Params struct {
	RBytes     int64
	SBytes     int64
	RecordSize int64
	ChunkSize  int64
	// ActiveChunk is the request size of the active cases (see sel).
	ActiveChunk int64
	// BitvecBits is the filter size (paper: ~128 KB = 2^20 bits).
	BitvecBits int64
	// MatchPercent of S records carry a key drawn from R; with the
	// bit-vector's ~12% false-positive rate this lands the paper's 0.24
	// reduction factor.
	MatchPercent int64

	// Per-record instruction budgets.
	HashInstr     int64 // hash the join attribute
	ProbeInstr    int64 // hash-table probe on a passing record
	BuildInstr    int64 // insert an R record into the hash table
	SwitchCheck   int64 // switch-side hash+check cycles
	SwitchSetBits int64 // switch-side bit-set cycles (R phase)
}

// DefaultParams returns the paper's workload.
func DefaultParams() Params {
	return Params{
		RBytes:        16 << 20,
		SBytes:        128 << 20,
		RecordSize:    128,
		ChunkSize:     64 * 1024,
		ActiveChunk:   1 << 20,
		BitvecBits:    1 << 20,
		MatchPercent:  13,
		HashInstr:     12,
		ProbeInstr:    40,
		BuildInstr:    30,
		SwitchCheck:   14,
		SwitchSetBits: 10,
	}
}

// RKey derives R record i's join attribute.
func RKey(i int64) uint64 { return apps.Mix64(uint64(i) | 1<<40) }

// SKey derives S record i's join attribute and whether it truly matches an
// R record (nR is R's record count).
func (prm Params) SKey(i int64, nR int64) (key uint64, match bool) {
	if int64(apps.Mix64(uint64(i)|2<<40)%100) < prm.MatchPercent {
		return RKey(int64(apps.Mix64(uint64(i)|4<<40) % uint64(nR))), true
	}
	return apps.Mix64(uint64(i)|3<<40) | 1<<50, false
}

// BitIndex maps a key into the bit-vector.
func (prm Params) BitIndex(key uint64) int64 {
	return int64(apps.Mix64(key) % uint64(prm.BitvecBits))
}

// Bitvec is the shared filter structure (a real bit set).
type Bitvec struct{ words []uint64 }

// NewBitvec allocates a filter of n bits.
func NewBitvec(n int64) *Bitvec { return &Bitvec{words: make([]uint64, (n+63)/64)} }

// Set sets bit i.
func (b *Bitvec) Set(i int64) { b.words[i/64] |= 1 << (uint(i) % 64) }

// Get reports bit i.
func (b *Bitvec) Get(i int64) bool { return b.words[i/64]&(1<<(uint(i)%64)) != 0 }

// Oracle computes the expected pass and match counts directly.
func (prm Params) Oracle() (passes, matches int64) {
	nR := prm.RBytes / prm.RecordSize
	nS := prm.SBytes / prm.RecordSize
	bv := NewBitvec(prm.BitvecBits)
	for i := int64(0); i < nR; i++ {
		bv.Set(prm.BitIndex(RKey(i)))
	}
	for i := int64(0); i < nS; i++ {
		key, m := prm.SKey(i, nR)
		if bv.Get(prm.BitIndex(key)) {
			passes++
		}
		if m {
			matches++
		}
	}
	return passes, matches
}

const handlerID = 12

const (
	argBase     = 0x0000_0000
	rStreamBase = 0x0010_0000
	sStreamBase = 0x0400_0000
	rFwdFlow    = 0x7010
	matchFlow   = 0x7011
	summaryFlow = 0x7012
	rFwdAddr    = 0x0100_0000
	matchAddr   = 0x0300_0000
)

type handlerArgs struct {
	RLen, SLen, BufSz int64
}

type summary struct {
	Passes int64
}

// matchBatch carries the indices of passing S records to the host.
type matchBatch struct {
	Recs []int64
}

// Run executes one configuration.
func Run(cfg apps.Config, prm Params) stats.Run {
	nR := prm.RBytes / prm.RecordSize

	ccfg := cluster.DefaultIOClusterConfig()
	ccfg.Host.Hier = cache.ScaledHostHierConfig()

	setup := func(c *cluster.Cluster) {
		c.Store(0).AddFile(&iodev.File{Name: "R", Size: prm.RBytes})
		c.Store(0).AddFile(&iodev.File{Name: "S", Size: prm.SBytes})
		if !cfg.IsActive() {
			return
		}
		sw := c.Switch(0)
		// The bit-vector occupies switch memory; its address stream drives
		// the 1 KB switch D-cache (the paper's "bit-vector is too big for
		// its limited L1 data cache" effect).
		bvRegion := sw.Space().AllocRegion(prm.BitvecBits/8, 64)
		sw.Register(handlerID, "hashjoin", func(x *aswitch.Ctx) {
			args := x.Args().(handlerArgs)
			x.ReleaseArgs()
			bv := NewBitvec(prm.BitvecBits)

			// Phase R: set bits and forward everything to the host in
			// 128-packet (64 KB) messages.
			cursor := int64(rStreamBase)
			end := cursor + args.RLen
			pktIdx := 0
			for cursor < end {
				b := x.WaitStream(cursor)
				x.ReadAll(b)
				recBase := (cursor - rStreamBase) / prm.RecordSize
				n := b.Size() / prm.RecordSize
				for r := int64(0); r < n; r++ {
					key := RKey(recBase + r)
					bit := prm.BitIndex(key)
					x.Compute(prm.SwitchSetBits)
					x.MemStore(bvRegion.Base + bit/8)
					bv.Set(bit)
				}
				last := b.End() >= end
				x.Forward(aswitch.SendSpec{
					Dst: x.Src(), Type: san.Data, Addr: rFwdAddr + (cursor - rStreamBase), Flow: rFwdFlow,
				}, b, pktIdx, last || pktIdx%128 == 127)
				pktIdx++
				cursor = b.End()
				x.Deallocate(cursor)
			}

			// Phase S: filter by bit-vector; forward passing records in
			// BufSz batches.
			var passes int64
			batch := &matchBatch{}
			var batchBytes int64
			flush := func() {
				if batchBytes == 0 {
					return
				}
				out := batch
				x.Send(aswitch.SendSpec{
					Dst: x.Src(), Type: san.Data, Addr: matchAddr,
					Size: batchBytes, Flow: matchFlow, Payload: out,
				})
				batch = &matchBatch{}
				batchBytes = 0
			}
			cursor = sStreamBase
			end = int64(sStreamBase) + args.SLen
			for cursor < end {
				b := x.WaitStream(cursor)
				recBase := (cursor - sStreamBase) / prm.RecordSize
				n := b.Size() / prm.RecordSize
				for r := int64(0); r < n; r++ {
					key, _ := prm.SKey(recBase+r, nR)
					bit := prm.BitIndex(key)
					x.Compute(prm.SwitchCheck)
					x.ReadAt(b, r*prm.RecordSize, 8)
					x.MemLoad(bvRegion.Base + bit/8)
					if bv.Get(bit) {
						passes++
						batch.Recs = append(batch.Recs, recBase+r)
						batchBytes += prm.RecordSize
					}
				}
				cursor = b.End()
				x.Deallocate(cursor)
				if batchBytes >= args.BufSz {
					flush()
				}
			}
			flush()
			x.Send(aswitch.SendSpec{
				Dst: x.Src(), Type: san.Control, Addr: argBase,
				Size: 8, Flow: summaryFlow, Payload: summary{Passes: passes},
			})
		})
	}

	app := func(p *sim.Proc, c *cluster.Cluster) map[string]any {
		h := c.Host(0)
		store := c.Store(0).ID()
		sw := c.Switch(0)

		// Host-side structures: the real hash table, plus address regions
		// whose reference streams drive the cache models.
		ht := make(map[uint64]int64, nR)
		htRegion := h.Space().AllocRegion(prm.RBytes, 4096)
		build := func(recIdx int64) {
			key := RKey(recIdx)
			ht[key] = recIdx
			h.CPU().Compute(p, prm.BuildInstr)
			h.CPU().Store(p, htRegion.Base+int64(apps.Mix64(key)%uint64(prm.RBytes)))
		}
		var passes, matches int64
		probe := func(sIdx int64) {
			key, _ := prm.SKey(sIdx, nR)
			passes++
			h.CPU().Compute(p, prm.ProbeInstr)
			h.CPU().Load(p, htRegion.Base+int64(apps.Mix64(key)%uint64(prm.RBytes)))
			h.CPU().Load(p, htRegion.Base+int64(apps.Mix64(key^0x55)%uint64(prm.RBytes)))
			if _, ok := ht[key]; ok {
				matches++
				h.CPU().Compute(p, 20)
			}
		}

		if cfg.IsActive() {
			h.SendMessage(p, &san.Message{
				Hdr:     san.Header{Dst: sw.ID(), Type: san.ActiveMsg, HandlerID: handlerID, Addr: argBase},
				Size:    64,
				Payload: handlerArgs{RLen: prm.RBytes, SLen: prm.SBytes, BufSz: prm.ChunkSize},
			}, 0)

			// Phase R: stream R at the switch; consume the forwarded copies
			// and build the hash table as they land.
			apps.StreamToSwitch(p, h, store, "R", prm.RBytes, prm.ActiveChunk,
				sw.ID(), rStreamBase, 0, 0x6010, cfg.Outstanding())
			var rGot int64
			for rGot < prm.RBytes {
				comp := h.RecvFlow(p, sw.ID(), rFwdFlow)
				first := rGot / prm.RecordSize // messages arrive in order
				rGot += comp.Size
				recs := comp.Size / prm.RecordSize
				// Touch the arrived records and insert them.
				for r := int64(0); r < recs; r++ {
					h.CPU().Load(p, rFwdAddr+((first+r)%(prm.ChunkSize/prm.RecordSize))*prm.RecordSize)
					build(first + r)
				}
			}

			// Phase S: stream S at the switch; then drain match batches.
			apps.StreamToSwitch(p, h, store, "S", prm.SBytes, prm.ActiveChunk,
				sw.ID(), sStreamBase, 0, 0x6011, cfg.Outstanding())
			var reported int64 = -1
			for reported < 0 {
				comp := h.RecvAny(p)
				switch {
				case comp.Hdr.Src == store:
					// Notification stragglers.
				case comp.Hdr.Flow == matchFlow:
					for _, pl := range comp.Payloads {
						mb, ok := pl.(*matchBatch)
						if !ok {
							continue
						}
						for _, sIdx := range mb.Recs {
							h.CPU().Load(p, matchAddr+(sIdx%(prm.ChunkSize/prm.RecordSize))*prm.RecordSize)
							probe(sIdx)
						}
					}
				case comp.Hdr.Flow == summaryFlow:
					reported = comp.Payloads[0].(summary).Passes
				}
			}
			return map[string]any{"passes": passes, "matches": matches, "reported": reported}
		}

		// Normal: everything on the host, including the bit-vector.
		bvRegion := h.Space().AllocRegion(prm.BitvecBits/8, 4096)
		bv := NewBitvec(prm.BitvecBits)
		buf := h.Space().Alloc(prm.ChunkSize, 4096)
		chunkRecs := prm.ChunkSize / prm.RecordSize

		apps.StreamChunks(p, h, store, "R", prm.RBytes, prm.ChunkSize, buf,
			cfg.Outstanding(), func(off, n int64, _ []any) {
				recBase := off / prm.RecordSize
				cnt := n / prm.RecordSize
				for r := int64(0); r < cnt; r++ {
					h.CPU().Load(p, buf+(r%chunkRecs)*prm.RecordSize)
					key := RKey(recBase + r)
					bit := prm.BitIndex(key)
					h.CPU().Compute(p, prm.HashInstr)
					h.CPU().Store(p, bvRegion.Base+bit/8)
					bv.Set(bit)
					build(recBase + r)
				}
			})

		apps.StreamChunks(p, h, store, "S", prm.SBytes, prm.ChunkSize, buf,
			cfg.Outstanding(), func(off, n int64, _ []any) {
				recBase := off / prm.RecordSize
				cnt := n / prm.RecordSize
				for r := int64(0); r < cnt; r++ {
					h.CPU().Load(p, buf+(r%chunkRecs)*prm.RecordSize)
					key, _ := prm.SKey(recBase+r, nR)
					bit := prm.BitIndex(key)
					h.CPU().Compute(p, prm.HashInstr)
					h.CPU().Load(p, bvRegion.Base+bit/8)
					if bv.Get(bit) {
						probe(recBase + r)
					}
				}
			})
		return map[string]any{"passes": passes, "matches": matches, "reported": passes}
	}

	return apps.RunIO(ccfg, cfg, setup, app)
}

// RunAll executes the four configurations (paper Figures 5/6).
func RunAll(prm Params) *stats.Result {
	res := &stats.Result{ID: "fig5", Title: "HashJoin with bit-vector filter: time, host utilization, host I/O traffic"}
	for _, cfg := range apps.AllConfigs {
		res.Runs = append(res.Runs, Run(cfg, prm))
	}
	res.Bars = apps.StandardBars(res, 1)
	return res
}
