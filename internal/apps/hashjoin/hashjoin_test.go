package hashjoin

import (
	"testing"

	"activesan/internal/apps"
	"activesan/internal/stats"
)

// testParams scales the join down for fast tests (R 2 MB, S 8 MB) while
// keeping the record size, bit-vector and ratios.
func testParams() Params {
	prm := DefaultParams()
	prm.RBytes = 2 << 20
	prm.SBytes = 8 << 20
	return prm
}

func TestBitvec(t *testing.T) {
	bv := NewBitvec(1 << 10)
	if bv.Get(5) {
		t.Fatal("fresh bit set")
	}
	bv.Set(5)
	bv.Set(1023)
	if !bv.Get(5) || !bv.Get(1023) {
		t.Fatal("set bits not visible")
	}
	if bv.Get(6) {
		t.Fatal("neighbouring bit leaked")
	}
}

func TestReductionFactorNearPaper(t *testing.T) {
	// The 0.24 factor depends on the bit-vector's fill density, which the
	// paper fixes via R's full 16 MB; evaluate the oracle at full scale
	// (pure computation — no simulation).
	prm := DefaultParams()
	passes, matches := prm.Oracle()
	nS := prm.SBytes / prm.RecordSize
	frac := float64(passes) / float64(nS)
	// Paper: "The reduction factor of bit-vector filtering is 0.24."
	if frac < 0.20 || frac > 0.29 {
		t.Fatalf("pass fraction = %.3f, want ~0.24", frac)
	}
	if matches <= 0 || matches > passes {
		t.Fatalf("matches=%d passes=%d inconsistent", matches, passes)
	}
}

func TestAllConfigsAgree(t *testing.T) {
	prm := testParams()
	wantPasses, wantMatches := prm.Oracle()
	for _, cfg := range apps.AllConfigs {
		run := Run(cfg, prm)
		if got := run.Extra["passes"].(int64); got != wantPasses {
			t.Errorf("%s: passes = %d, want %d", cfg, got, wantPasses)
		}
		if got := run.Extra["matches"].(int64); got != wantMatches {
			t.Errorf("%s: matches = %d, want %d", cfg, got, wantMatches)
		}
		if got := run.Extra["reported"].(int64); got != wantPasses {
			t.Errorf("%s: switch reported %d passes, want %d", cfg, got, wantPasses)
		}
	}
}

func TestShapeHashJoin(t *testing.T) {
	// Paper Figures 5/6: active beats normal without prefetch; the two
	// prefetch cases are nearly tied; S-phase traffic drops by the filter
	// factor; the host's cache-stall share shrinks in the active cases.
	prm := testParams()
	res := RunAll(prm)
	normal := res.Baseline()
	np, _ := res.Run("normal+pref")
	a, _ := res.Run("active")
	ap, _ := res.Run("active+pref")

	if !(a.Time < normal.Time) {
		t.Errorf("active (%v) not faster than normal (%v)", a.Time, normal.Time)
	}
	parity := float64(ap.Time) / float64(np.Time)
	if parity < 0.9 || parity > 1.1 {
		t.Errorf("prefetch cases should tie: active+pref/normal+pref = %.3f", parity)
	}
	// Traffic: active = R (forwarded) + ~24% of S; normal = R + S.
	ratio := float64(a.Traffic) / float64(normal.Traffic)
	if ratio < 0.30 || ratio > 0.55 {
		t.Errorf("active traffic ratio = %.3f, want ~0.4 at this R:S", ratio)
	}
	// Cache stall share shrinks on the host.
	stallShare := func(r stats.Run) float64 { return float64(r.HostStall) / float64(r.Time) }
	if stallShare(ap) >= stallShare(np) {
		t.Errorf("active+pref stall share %.3f not below normal+pref %.3f",
			stallShare(ap), stallShare(np))
	}
}

func TestMatchPercentTracksPasses(t *testing.T) {
	// Raising the true-match share raises the filter pass rate accordingly
	// in every configuration.
	low, high := testParams(), testParams()
	low.MatchPercent = 5
	high.MatchPercent = 40
	lp, _ := low.Oracle()
	hp, _ := high.Oracle()
	if lp >= hp {
		t.Fatalf("oracle passes did not grow: %d -> %d", lp, hp)
	}
	for _, prm := range []Params{low, high} {
		want, _ := prm.Oracle()
		run := Run(apps.Active, prm)
		if got := run.Extra["passes"].(int64); got != want {
			t.Errorf("match%%=%d: passes %d, want %d", prm.MatchPercent, got, want)
		}
	}
}
