// Package hdlsweep runs the HDL handler library through the active/passive
// matrix: each program executes compiled-on-the-switch (the VM charging real
// switch cycles, stream loads stalling on the ATB) and host-side (the host
// streams the file and runs the reference interpreter, charged to the host
// CPU), with the interpreter's trace as the oracle both variants must
// reproduce. A seeded differential batch rides along, so the sweep fails
// loudly if compiler and interpreter ever disagree. With -handler-src a
// user-supplied handler joins the built-ins. Not a figure from the paper:
// this is the handler-authoring extension of ROADMAP item 4.
package hdlsweep

import (
	"fmt"
	"runtime"
	"sync"

	"activesan/internal/apps"
	"activesan/internal/cluster"
	"activesan/internal/hdl"
	"activesan/internal/iodev"
	"activesan/internal/san"
	"activesan/internal/sim"
	"activesan/internal/stats"
)

// Params sizes the sweep.
type Params struct {
	// StreamBytes is each program's input size (kept a multiple of 16 so
	// record and word units tile it exactly).
	StreamBytes int64
	// ChunkSize is the passive host's read-request size.
	ChunkSize int64
	// ActiveChunk is the active case's disk-request size.
	ActiveChunk int64
	// DiffSeeds is the size of the riding differential batch.
	DiffSeeds int
}

// DefaultParams processes 1 MB per program.
func DefaultParams() Params {
	return Params{
		StreamBytes: 1 << 20,
		ChunkSize:   64 * 1024,
		ActiveChunk: 1 << 20,
		DiffSeeds:   64,
	}
}

// Case is one handler in the sweep.
type Case struct {
	Name   string
	Src    string
	Params map[string]uint32
}

// Cases lists the swept handlers: the ported library plus, when the CLI
// installed one via -handler-src, the user's extra handler.
func Cases() []Case {
	cs := []Case{
		{Name: "select", Src: hdl.SelectHDL, Params: map[string]uint32{"threshold": 64}},
		{Name: "sum", Src: hdl.SumHDL},
		{Name: "minmax", Src: hdl.MinMaxHDL},
	}
	if x := hdl.Extra(); x != nil {
		cs = append(cs, Case{Name: x.AST.Name, Src: x.AST.Render()})
	}
	return cs
}

const (
	handlerID  = 30
	streamBase = 1 << 20
	memBase    = 1 << 16
	resultFlow = 0x7400
	streamFlow = 0x6400
)

// BuildStream derives the deterministic input from record indices, like the
// other benchmarks' functional tables.
func BuildStream(prm Params) []byte {
	n := prm.StreamBytes / 16 * 16
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(apps.Mix64(uint64(i)) >> 32)
	}
	return data
}

// Point is one (program, variant) measurement.
type Point struct {
	Run   stats.Run
	Words int
	Match bool // outputs identical to the interpreter oracle
}

// RunActive executes the compiled handler on the switch: the host maps the
// file at the switch and streams it through the ATB; the handler's emitted
// words come back in one completion message and must equal the oracle.
func RunActive(c *hdl.Compiled, params map[string]uint32, data []byte, oracle []uint32, prm Params) Point {
	size := int64(len(data))
	var got []uint32
	run := apps.RunIO(cluster.DefaultIOClusterConfig(), apps.Active,
		func(cl *cluster.Cluster) {
			cl.Store(0).AddFile(&iodev.File{Name: "s", Size: size, Data: data})
			cl.Switch(0).Register(handlerID, c.AST.Name, c.Handler(hdl.HandlerSpec{
				StreamBase: streamBase, StreamLen: size, MemBase: memBase,
				Params: params, Flow: resultFlow, Addr: 0x100,
			}))
		},
		func(p *sim.Proc, cl *cluster.Cluster) map[string]any {
			h := cl.Host(0)
			sw := cl.Switch(0)
			h.SendMessage(p, &san.Message{
				Hdr:  san.Header{Dst: sw.ID(), Type: san.ActiveMsg, HandlerID: handlerID, Addr: 0},
				Size: 32,
			}, 0)
			apps.StreamToSwitch(p, h, cl.Store(0).ID(), "s", size, prm.ActiveChunk,
				sw.ID(), streamBase, 0, streamFlow, 1)
			comp := h.RecvFlow(p, sw.ID(), resultFlow)
			got = comp.Payloads[0].([]uint32)
			return map[string]any{"program": c.AST.Name, "words": len(got)}
		})
	return Point{Run: run, Words: len(got), Match: wordsEqual(got, oracle)}
}

// RunPassive is the host-side baseline: stream the file to the host, then
// run the program through the reference interpreter with its charged cycle
// count billed to the host CPU.
func RunPassive(c *hdl.Compiled, params map[string]uint32, data []byte, oracle []uint32, prm Params) Point {
	size := int64(len(data))
	var got []uint32
	run := apps.RunIO(cluster.DefaultIOClusterConfig(), apps.Normal,
		func(cl *cluster.Cluster) {
			cl.Store(0).AddFile(&iodev.File{Name: "s", Size: size, Data: data})
		},
		func(p *sim.Proc, cl *cluster.Cluster) map[string]any {
			h := cl.Host(0)
			buf := h.Space().Alloc(prm.ChunkSize, 4096)
			apps.StreamChunks(p, h, cl.Store(0).ID(), "s", size, prm.ChunkSize, buf, 1,
				func(off, n int64, _ []any) {
					h.CPU().Load(p, buf)
				})
			trace := hdl.Interpret(c.AST, data, streamBase, params)
			h.CPU().Compute(p, trace.Cycles)
			got = trace.Out
			return map[string]any{"program": c.AST.Name, "words": len(trace.Out)}
		})
	return Point{Run: run, Words: len(got), Match: wordsEqual(got, oracle)}
}

func wordsEqual(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// RunAll runs the sweep sequentially.
func RunAll(prm Params) *stats.Result { return RunAllParallel(prm, 1) }

// RunAllParallel fans the (program, variant) points over `workers`
// goroutines; output order follows Cases() whatever the completion order,
// so any worker count is byte-identical to a sequential run. workers < 1
// selects runtime.NumCPU().
func RunAllParallel(prm Params, workers int) *stats.Result {
	res := &stats.Result{
		ID:    "hdlsweep",
		Title: "HDL handlers: compiled-on-switch vs host interpreter",
	}
	cases := Cases()
	data := BuildStream(prm)

	type pair struct {
		active, passive Point
		cycles          int64
		instrs          int
		err             error
	}
	points := make([]pair, len(cases))
	runIdx := func(i int) {
		c, err := hdl.Compile(cases[i].Src)
		if err != nil {
			points[i].err = err
			return
		}
		oracle := hdl.Interpret(c.AST, data, streamBase, cases[i].Params)
		points[i].cycles = oracle.Cycles
		points[i].instrs = len(c.Prog.Instrs)
		points[i].active = RunActive(c, cases[i].Params, data, oracle.Out, prm)
		points[i].passive = RunPassive(c, cases[i].Params, data, oracle.Out, prm)
	}
	if workers < 1 {
		workers = runtime.NumCPU()
	}
	if workers > len(cases) {
		workers = len(cases)
	}
	if workers <= 1 {
		for i := range cases {
			runIdx(i)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					runIdx(i)
				}
			}()
		}
		for i := range cases {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}

	var actLat, passLat stats.Series
	actLat.Name = "active (compiled on switch)"
	passLat.Name = "passive (host interpreter)"
	for i, cs := range cases {
		pt := points[i]
		if pt.err != nil {
			res.Notes = append(res.Notes, fmt.Sprintf("%s: COMPILE ERROR: %v", cs.Name, pt.err))
			continue
		}
		if !pt.active.Match || !pt.passive.Match {
			res.Notes = append(res.Notes, fmt.Sprintf(
				"%s: OUTPUT DIVERGED from the interpreter oracle (active ok=%v, passive ok=%v)",
				cs.Name, pt.active.Match, pt.passive.Match))
		}
		x := float64(i)
		actLat.X = append(actLat.X, x)
		actLat.Y = append(actLat.Y, pt.active.Run.Time.Micros())
		passLat.X = append(passLat.X, x)
		passLat.Y = append(passLat.Y, pt.passive.Run.Time.Micros())
		res.Runs = append(res.Runs, pt.active.Run, pt.passive.Run)
		res.Notes = append(res.Notes, fmt.Sprintf(
			"%-8s %d instrs, %d cycles, %d words: active %v (host I/O %d B) vs passive %v (host I/O %d B)",
			cs.Name, pt.instrs, pt.cycles, pt.active.Words,
			pt.active.Run.Time, pt.active.Run.Traffic,
			pt.passive.Run.Time, pt.passive.Run.Traffic))
	}
	res.Series = []stats.Series{actLat, passLat}

	// The riding differential batch: every seed must agree between the
	// compiled and interpreted executions.
	diverged := 0
	for seed := 0; seed < prm.DiffSeeds; seed++ {
		if err := hdl.DiffSeed(uint64(seed)); err != nil {
			diverged++
			res.Notes = append(res.Notes, fmt.Sprintf("differential seed %d: %v", seed, err))
		}
	}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"differential batch: %d seeds, %d divergences", prm.DiffSeeds, diverged))
	return res
}
