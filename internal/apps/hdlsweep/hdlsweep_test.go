package hdlsweep

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"activesan/internal/hdl"
)

func shrunk() Params {
	prm := DefaultParams()
	prm.StreamBytes = 64 << 10
	prm.DiffSeeds = 16
	return prm
}

// TestSweepOutputsMatchOracle runs the shrunk sweep: every handler's active
// (switch-compiled) and passive (host-interpreted) outputs must match the
// interpreter oracle, and the differential batch must report zero
// divergences.
func TestSweepOutputsMatchOracle(t *testing.T) {
	res := RunAll(shrunk())
	for _, n := range res.Notes {
		if strings.Contains(n, "DIVERGED") || strings.Contains(n, "COMPILE ERROR") {
			t.Errorf("sweep note: %s", n)
		}
	}
	var sawBatch bool
	for _, n := range res.Notes {
		if strings.Contains(n, "differential batch") {
			sawBatch = true
			if !strings.HasSuffix(n, "0 divergences") {
				t.Errorf("differential batch diverged: %s", n)
			}
		}
	}
	if !sawBatch {
		t.Error("no differential batch note")
	}
	if len(res.Runs) != 2*len(Cases()) {
		t.Errorf("%d runs, want %d (active+passive per handler)", len(res.Runs), 2*len(Cases()))
	}
}

// TestSweepDeterministicAcrossWorkers pins byte-identity of the sweep under
// the parallel harness (the satellite determinism requirement): the same
// Params through 1 worker and many workers must serialize identically.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	prm := shrunk()
	serial := RunAll(prm)
	parallel := RunAllParallel(prm, 4)
	a, err := json.Marshal(serial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("parallel sweep diverges from serial:\n%s\n%s", a, b)
	}
}

// TestExtraHandlerJoinsSweep: a handler installed via the -handler-src hook
// becomes a fourth case and passes the oracle check like the built-ins.
func TestExtraHandlerJoinsSweep(t *testing.T) {
	c, err := hdl.Compile(`
handler xorfold {
	var acc
	on word x {
		acc = acc ^ x
	}
	end {
		emit acc
	}
}
`)
	if err != nil {
		t.Fatal(err)
	}
	hdl.SetExtra(c)
	defer hdl.SetExtra(nil)
	cases := Cases()
	if len(cases) != 4 || cases[3].Name != "xorfold" {
		t.Fatalf("cases = %d (%v), want the extra handler fourth", len(cases), cases)
	}
	prm := shrunk()
	prm.StreamBytes = 16 << 10
	prm.DiffSeeds = 1
	res := RunAll(prm)
	for _, n := range res.Notes {
		if strings.Contains(n, "DIVERGED") || strings.Contains(n, "COMPILE ERROR") {
			t.Errorf("sweep note: %s", n)
		}
	}
	var found bool
	for _, n := range res.Notes {
		if strings.Contains(n, "xorfold") {
			found = true
		}
	}
	if !found {
		t.Error("extra handler missing from the sweep notes")
	}
}
