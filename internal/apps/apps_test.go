package apps

import (
	"testing"
	"testing/quick"

	"activesan/internal/cluster"
	"activesan/internal/iodev"
	"activesan/internal/sim"
)

func TestConfigMatrix(t *testing.T) {
	if len(AllConfigs) != 4 {
		t.Fatalf("configs = %d, want the paper's 4", len(AllConfigs))
	}
	cases := []struct {
		c      Config
		name   string
		active bool
		out    int
	}{
		{Normal, "normal", false, 1},
		{NormalPref, "normal+pref", false, 2},
		{Active, "active", true, 1},
		{ActivePref, "active+pref", true, 2},
	}
	for _, c := range cases {
		if c.c.String() != c.name {
			t.Errorf("%v.String() = %q, want %q", int(c.c), c.c.String(), c.name)
		}
		if c.c.IsActive() != c.active {
			t.Errorf("%s.IsActive() = %v", c.name, c.c.IsActive())
		}
		if c.c.Outstanding() != c.out {
			t.Errorf("%s.Outstanding() = %d, want %d", c.name, c.c.Outstanding(), c.out)
		}
	}
}

func TestRandDeterministicAndSpread(t *testing.T) {
	a, b := NewRand(1), NewRand(1)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
	// Different seeds diverge.
	c, d := NewRand(1), NewRand(2)
	same := 0
	for i := 0; i < 100; i++ {
		if c.Next() == d.Next() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collided %d/100 times", same)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
	}
}

func TestMix64Properties(t *testing.T) {
	// Mix64 must be a bijection-ish hash: deterministic, and flipping one
	// input bit changes roughly half the output bits on average.
	f := func(x uint64) bool {
		if Mix64(x) != Mix64(x) {
			return false
		}
		d := Mix64(x) ^ Mix64(x^1)
		pop := 0
		for d != 0 {
			pop++
			d &= d - 1
		}
		return pop >= 8 && pop <= 56
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStreamChunksOrderAndCoverage(t *testing.T) {
	eng := sim.NewEngine()
	c := cluster.NewIOCluster(eng, cluster.DefaultIOClusterConfig())
	const size = 300 * 1024 // not a multiple of the chunk
	c.Store(0).AddFile(&iodev.File{Name: "f", Size: size})
	c.Start()
	var offs []int64
	var total int64
	eng.Spawn("app", func(p *sim.Proc) {
		h := c.Host(0)
		buf := h.Space().Alloc(64*1024, 4096)
		StreamChunks(p, h, c.Store(0).ID(), "f", size, 64*1024, buf, 2,
			func(off, n int64, _ []any) {
				offs = append(offs, off)
				total += n
			})
	})
	eng.Run()
	defer c.Shutdown()
	if total != size {
		t.Fatalf("covered %d bytes, want %d", total, size)
	}
	for i := 1; i < len(offs); i++ {
		if offs[i] <= offs[i-1] {
			t.Fatalf("chunks out of order: %v", offs)
		}
	}
	// Final chunk is the remainder.
	if offs[len(offs)-1] != 256*1024 {
		t.Fatalf("last chunk at %d", offs[len(offs)-1])
	}
}

func TestCollectAggregatesHosts(t *testing.T) {
	eng := sim.NewEngine()
	ccfg := cluster.DefaultIOClusterConfig()
	ccfg.Hosts = 2
	c := cluster.NewIOCluster(eng, ccfg)
	c.Start()
	eng.Spawn("a", func(p *sim.Proc) {
		c.Host(0).CPU().Compute(p, 2000)
		c.Host(1).CPU().Compute(p, 2000)
	})
	end := eng.Run()
	run := Collect(Normal, c, end, map[string]any{"k": 1})
	c.Shutdown()
	if run.Hosts != 2 {
		t.Fatalf("hosts = %d", run.Hosts)
	}
	if run.HostBusy != sim.HostClock.Cycles(4000) {
		t.Fatalf("aggregated busy = %v", run.HostBusy)
	}
	if run.Extra["k"] != 1 {
		t.Fatal("extra not carried")
	}
	if run.Config != "normal" {
		t.Fatalf("config label = %q", run.Config)
	}
}

func TestRunIOScopedRestrictsHosts(t *testing.T) {
	ccfg := cluster.DefaultIOClusterConfig()
	ccfg.Hosts = 2
	app := func(p *sim.Proc, c *cluster.Cluster) map[string]any {
		c.Host(0).CPU().Compute(p, 1000)
		c.Host(1).CPU().Compute(p, 9000)
		return nil
	}
	all := RunIO(ccfg, Normal, nil, app)
	scoped := RunIOScoped(ccfg, Normal, nil, app, []int{0})
	if all.Hosts != 2 || scoped.Hosts != 1 {
		t.Fatalf("hosts = %d / %d", all.Hosts, scoped.Hosts)
	}
	if scoped.HostBusy != sim.HostClock.Cycles(1000) {
		t.Fatalf("scoped busy = %v", scoped.HostBusy)
	}
	if all.HostBusy != sim.HostClock.Cycles(10000) {
		t.Fatalf("all busy = %v", all.HostBusy)
	}
}
