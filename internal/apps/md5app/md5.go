// Package md5app reproduces the paper's MD5 benchmark: the message digest
// of a 256 KB input. MD5's block chaining prevents parallelism, so the
// single-switch-CPU active case is slower than the host (the paper's one
// failed partitioning); the paper's multi-CPU variant splits the input into
// K independent chains (block i joins chain i mod K) and digests the K
// digests with a single-block pass, recovering speedup with 2-4 switch CPUs.
//
// The digest core below is implemented from scratch (RFC 1321) and verified
// against the standard library in tests.
package md5app

import "encoding/binary"

// Size is the digest length in bytes.
const Size = 16

// BlockSize is MD5's internal block size.
const BlockSize = 64

var shift = [64]uint{
	7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
	5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20,
	4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
	6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
}

var sines = [64]uint32{
	0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee,
	0xf57c0faf, 0x4787c62a, 0xa8304613, 0xfd469501,
	0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be,
	0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821,
	0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa,
	0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
	0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed,
	0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a,
	0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c,
	0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70,
	0x289b7ec6, 0xeaa127fa, 0xd4ef3085, 0x04881d05,
	0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
	0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039,
	0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
	0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1,
	0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391,
}

// Digest is a streaming MD5 state.
type Digest struct {
	s   [4]uint32
	buf [BlockSize]byte
	nx  int
	len uint64
}

// New returns an initialized digest.
func New() *Digest {
	d := &Digest{}
	d.Reset()
	return d
}

// Reset restores the initial state.
func (d *Digest) Reset() {
	d.s = [4]uint32{0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476}
	d.nx = 0
	d.len = 0
}

// Write absorbs data; it never fails.
func (d *Digest) Write(data []byte) (int, error) {
	n := len(data)
	d.len += uint64(n)
	if d.nx > 0 {
		c := copy(d.buf[d.nx:], data)
		d.nx += c
		if d.nx == BlockSize {
			d.block(d.buf[:])
			d.nx = 0
		}
		data = data[c:]
	}
	for len(data) >= BlockSize {
		d.block(data[:BlockSize])
		data = data[BlockSize:]
	}
	if len(data) > 0 {
		d.nx = copy(d.buf[:], data)
	}
	return n, nil
}

// Sum returns the digest of everything written so far without disturbing
// the running state.
func (d *Digest) Sum() [Size]byte {
	cp := *d
	var pad [BlockSize + 8]byte
	pad[0] = 0x80
	padLen := 56 - int(cp.len%BlockSize)
	if padLen <= 0 {
		padLen += BlockSize
	}
	binary.LittleEndian.PutUint64(pad[padLen:], cp.len<<3)
	cp.Write(pad[:padLen+8])
	var out [Size]byte
	for i, v := range cp.s {
		binary.LittleEndian.PutUint32(out[i*4:], v)
	}
	return out
}

func (d *Digest) block(p []byte) {
	var m [16]uint32
	for i := range m {
		m[i] = binary.LittleEndian.Uint32(p[i*4:])
	}
	a, b, c, dd := d.s[0], d.s[1], d.s[2], d.s[3]
	for i := 0; i < 64; i++ {
		var f uint32
		var g int
		switch {
		case i < 16:
			f = (b & c) | (^b & dd)
			g = i
		case i < 32:
			f = (dd & b) | (^dd & c)
			g = (5*i + 1) % 16
		case i < 48:
			f = b ^ c ^ dd
			g = (3*i + 5) % 16
		default:
			f = c ^ (b | ^dd)
			g = (7 * i) % 16
		}
		f += a + sines[i] + m[g]
		a = dd
		dd = c
		c = b
		b += f<<shift[i] | f>>(32-shift[i])
	}
	d.s[0] += a
	d.s[1] += b
	d.s[2] += c
	d.s[3] += dd
}

// SumBytes digests a complete message.
func SumBytes(data []byte) [Size]byte {
	d := New()
	d.Write(data)
	return d.Sum()
}

// ChainDigest computes the paper's K-chain variant: block i (of blockSize
// bytes) joins chain i mod K; the K chain digests, concatenated, are
// digested once more. K=1 degenerates to plain MD5.
func ChainDigest(data []byte, k int, blockSize int64) [Size]byte {
	if k <= 1 {
		return SumBytes(data)
	}
	chains := make([]*Digest, k)
	for j := range chains {
		chains[j] = New()
	}
	for i := int64(0); i*blockSize < int64(len(data)); i++ {
		end := (i + 1) * blockSize
		if end > int64(len(data)) {
			end = int64(len(data))
		}
		chains[int(i)%k].Write(data[i*blockSize : end])
	}
	final := New()
	for _, c := range chains {
		sum := c.Sum()
		final.Write(sum[:])
	}
	return final.Sum()
}
