package md5app

import (
	"fmt"

	"activesan/internal/apps"
	"activesan/internal/aswitch"
	"activesan/internal/cache"
	"activesan/internal/cluster"
	"activesan/internal/host"
	"activesan/internal/iodev"
	"activesan/internal/san"
	"activesan/internal/sim"
	"activesan/internal/stats"
)

// Params sizes the workload and calibrates costs.
type Params struct {
	FileSize  int64
	ChunkSize int64
	// BlockSize is the K-chain interleave granularity (a multiple of the
	// MTU; one MTU by default so the dispatch unit round-robins packets
	// across switch CPUs without head-of-line blocking in the shared
	// buffer pool).
	BlockSize int64

	// HostMD5Instr is the host's per-byte digest cost.
	HostMD5Instr int64
	// SwitchMD5Cycles is the switch CPU's per-byte digest cost.
	SwitchMD5Cycles int64
}

// DefaultParams returns the paper's 256 KB workload.
func DefaultParams() Params {
	return Params{
		FileSize:        256 * 1024,
		ChunkSize:       64 * 1024,
		BlockSize:       512,
		HostMD5Instr:    80,
		SwitchMD5Cycles: 60,
	}
}

// BuildInput generates the deterministic input file.
func BuildInput(prm Params) []byte {
	rng := apps.NewRand(0x6D6435) // "md5"
	out := make([]byte, prm.FileSize)
	for i := range out {
		out[i] = byte(rng.Next())
	}
	return out
}

const handlerID = 14

const (
	argStride  = 512 // per-CPU argument slot
	streamBase = 0x0010_0000
	wayStride  = 0x0100_0000 // address distance between chains
	digestFlow = 0x7030
	inputAddr  = 0x0500_0000
)

type chainArgs struct {
	ChainLen int64
	Base     int64
	CPU      int
}

// chainLen returns how many bytes chain k receives.
func chainLen(prm Params, k, cpus int) int64 {
	var n int64
	for i := int64(0); i*prm.BlockSize < prm.FileSize; i++ {
		if int(i)%cpus != k {
			continue
		}
		end := (i + 1) * prm.BlockSize
		if end > prm.FileSize {
			end = prm.FileSize
		}
		n += end - i*prm.BlockSize
	}
	return n
}

// Run executes one configuration with the given switch CPU count (ignored
// for the normal configurations).
func Run(cfg apps.Config, cpus int, prm Params) stats.Run {
	input := BuildInput(prm)
	ccfg := cluster.DefaultIOClusterConfig()
	ccfg.Switch.NumCPUs = cpus

	setup := func(c *cluster.Cluster) {
		c.Store(0).AddFile(&iodev.File{Name: "input", Size: prm.FileSize, Data: input})
		if !cfg.IsActive() {
			return
		}
		sw := c.Switch(0)
		sw.Register(handlerID, "md5", func(x *aswitch.Ctx) {
			args := x.Args().(chainArgs)
			x.ReleaseArgs()
			d := New()
			cursor := args.Base
			end := cursor + args.ChainLen
			for cursor < end {
				b := x.WaitStream(cursor)
				data, _ := x.ReadAll(b).([]byte)
				x.Compute(prm.SwitchMD5Cycles * b.Size())
				if data != nil {
					d.Write(data)
				}
				cursor = b.End()
				x.Deallocate(cursor)
			}
			sum := d.Sum()
			x.Send(aswitch.SendSpec{
				Dst: x.Src(), Type: san.Data, Addr: inputAddr,
				Size: Size, Flow: digestFlow + int64(args.CPU), Payload: sum,
			})
		})
	}

	app := func(p *sim.Proc, c *cluster.Cluster) map[string]any {
		h := c.Host(0)
		store := c.Store(0).ID()
		sw := c.Switch(0)

		if cfg.IsActive() {
			// One handler instance per switch CPU, each digesting its own
			// chain.
			for k := 0; k < cpus; k++ {
				h.SendMessage(p, &san.Message{
					Hdr: san.Header{
						Dst: sw.ID(), Type: san.ActiveMsg, HandlerID: handlerID,
						Addr: int64(k) * argStride, CPUID: k,
					},
					Size:    64,
					Payload: chainArgs{ChainLen: chainLen(prm, k, cpus), Base: streamBase + int64(k)*wayStride, CPU: k},
				}, 0)
			}
			// Issue chunk reads striped across the switch CPUs: packet
			// tagging in the header's CPU-id field feeds every chain from
			// each request.
			var pending []*host.ReadToken
			issueChunk := func(off int64) {
				n := prm.FileSize - off
				if n <= 0 {
					return
				}
				if n > prm.ChunkSize {
					n = prm.ChunkSize
				}
				tok := h.IssueReadStriped(p, store, "input", off, n,
					sw.ID(), streamBase, 0x6030, prm.BlockSize, cpus, wayStride)
				pending = append(pending, tok)
			}
			next := int64(0)
			for i := 0; i < cfg.Outstanding() && next < prm.FileSize; i++ {
				issueChunk(next)
				next += prm.ChunkSize
			}
			for len(pending) > 0 {
				h.WaitRead(p, pending[0])
				pending = pending[1:]
				if next < prm.FileSize {
					issueChunk(next)
					next += prm.ChunkSize
				}
			}
			// Collect the K digests and fold them with a single-block pass
			// (K=1 is plain MD5: the chain digest is the answer).
			sums := make([][Size]byte, cpus)
			for k := 0; k < cpus; k++ {
				comp := h.RecvFlow(p, sw.ID(), digestFlow+int64(k))
				sums[k] = comp.Payloads[0].([Size]byte)
				h.CPU().Compute(p, 2*BlockSize*prm.HostMD5Instr)
			}
			digest := sums[0]
			if cpus > 1 {
				final := New()
				for _, s := range sums {
					final.Write(s[:])
				}
				digest = final.Sum()
			}
			return map[string]any{"digest": fmt.Sprintf("%x", digest)}
		}

		// Normal: digest on the host.
		d := New()
		buf := h.Space().Alloc(prm.ChunkSize, 4096)
		apps.StreamChunks(p, h, store, "input", prm.FileSize, prm.ChunkSize, buf,
			cfg.Outstanding(), func(off, n int64, payloads []any) {
				h.CPU().TouchRange(p, buf, n, cache.Load)
				h.CPU().Compute(p, prm.HostMD5Instr*n)
				for _, pl := range payloads {
					if b, ok := pl.([]byte); ok {
						d.Write(b)
					}
				}
			})
		return map[string]any{"digest": fmt.Sprintf("%x", d.Sum())}
	}

	run := apps.RunIO(ccfg, cfg, setup, app)
	run.Config = ConfigLabel(cfg, cpus)
	return run
}

// ConfigLabel names a run like the paper's Figure 17 bars.
func ConfigLabel(cfg apps.Config, cpus int) string {
	if !cfg.IsActive() {
		return cfg.String()
	}
	return fmt.Sprintf("%s-%dcpu", cfg, cpus)
}

// RunAll executes the Figure 17 matrix: normal cases plus active with 1, 2
// and 4 switch CPUs, each with and without prefetching.
func RunAll(prm Params) *stats.Result {
	res := &stats.Result{ID: "fig17", Title: "MD5 with multiple switch CPUs"}
	res.Runs = append(res.Runs, Run(apps.Normal, 1, prm))
	res.Runs = append(res.Runs, Run(apps.NormalPref, 1, prm))
	for _, cpus := range []int{1, 2, 4} {
		res.Runs = append(res.Runs, Run(apps.Active, cpus, prm))
		res.Runs = append(res.Runs, Run(apps.ActivePref, cpus, prm))
	}
	return res
}
