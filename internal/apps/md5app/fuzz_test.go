package md5app

import (
	cryptomd5 "crypto/md5"
	"testing"
)

// FuzzMD5 cross-validates the from-scratch digest against the standard
// library on arbitrary input and arbitrary write splits.
func FuzzMD5(f *testing.F) {
	f.Add([]byte(""), uint16(0))
	f.Add([]byte("abc"), uint16(1))
	f.Add(make([]byte, 64), uint16(63))
	f.Add(make([]byte, 200), uint16(64))
	f.Fuzz(func(t *testing.T, data []byte, cut uint16) {
		c := int(cut)
		if c > len(data) {
			c = len(data)
		}
		d := New()
		d.Write(data[:c])
		d.Write(data[c:])
		if d.Sum() != cryptomd5.Sum(data) {
			t.Fatalf("digest mismatch for %d bytes split at %d", len(data), c)
		}
	})
}
