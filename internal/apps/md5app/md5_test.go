package md5app

import (
	cryptomd5 "crypto/md5"
	"fmt"
	"testing"
	"testing/quick"

	"activesan/internal/apps"
)

func TestMD5AgainstStdlib(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte(""),
		[]byte("a"),
		[]byte("abc"),
		[]byte("message digest"),
		make([]byte, 63),
		make([]byte, 64),
		make([]byte, 65),
		make([]byte, 10000),
	}
	for i, c := range cases {
		got := SumBytes(c)
		want := cryptomd5.Sum(c)
		if got != want {
			t.Errorf("case %d: digest %x, want %x", i, got, want)
		}
	}
}

func TestMD5StreamingProperty(t *testing.T) {
	// Property: any split of the input across Write calls yields the same
	// digest as one call, and matches the standard library.
	f := func(data []byte, cut uint16) bool {
		d := New()
		c := int(cut)
		if c > len(data) {
			c = len(data)
		}
		d.Write(data[:c])
		d.Write(data[c:])
		return d.Sum() == cryptomd5.Sum(data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSumDoesNotDisturbState(t *testing.T) {
	d := New()
	d.Write([]byte("hello "))
	_ = d.Sum()
	d.Write([]byte("world"))
	if d.Sum() != SumBytes([]byte("hello world")) {
		t.Fatal("Sum() perturbed the running state")
	}
}

func TestChainDigest(t *testing.T) {
	data := BuildInput(DefaultParams())
	// K=1 equals plain MD5.
	if ChainDigest(data, 1, 16*1024) != SumBytes(data) {
		t.Fatal("K=1 chain digest differs from plain MD5")
	}
	// K=2 differs from plain but is deterministic.
	a := ChainDigest(data, 2, 16*1024)
	b := ChainDigest(data, 2, 16*1024)
	if a != b {
		t.Fatal("chain digest not deterministic")
	}
	if a == SumBytes(data) {
		t.Fatal("K=2 chain digest should differ from plain MD5")
	}
	// Manual reconstruction for a tiny case.
	tiny := []byte("0123456789abcdef")
	chain0 := SumBytes(tiny[:4]) // blocks 0,2 -> bytes 0:4, 8:12
	_ = chain0
	d0, d1 := New(), New()
	d0.Write(tiny[0:4])
	d0.Write(tiny[8:12])
	d1.Write(tiny[4:8])
	d1.Write(tiny[12:16])
	fin := New()
	s0, s1 := d0.Sum(), d1.Sum()
	fin.Write(s0[:])
	fin.Write(s1[:])
	if ChainDigest(tiny, 2, 4) != fin.Sum() {
		t.Fatal("chain digest construction mismatch")
	}
}

func testParams() Params {
	prm := DefaultParams()
	prm.FileSize = 128 * 1024
	return prm
}

func TestConfigsProduceCorrectDigests(t *testing.T) {
	prm := testParams()
	input := BuildInput(prm)
	plain := fmt.Sprintf("%x", SumBytes(input))
	run := Run(apps.Normal, 1, prm)
	if got := run.Extra["digest"].(string); got != plain {
		t.Errorf("normal digest %s, want %s", got, plain)
	}
	for _, cpus := range []int{1, 2, 4} {
		want := fmt.Sprintf("%x", ChainDigest(input, cpus, prm.BlockSize))
		run := Run(apps.ActivePref, cpus, prm)
		if got := run.Extra["digest"].(string); got != want {
			t.Errorf("active %d-cpu digest %s, want %s", cpus, got, want)
		}
	}
}

func TestShapeMD5(t *testing.T) {
	// Paper Figure 17: one switch CPU makes the active case slower than
	// normal; four switch CPUs recover a speedup (1.50 without prefetch).
	prm := testParams()
	res := RunAll(prm)
	normal := res.Baseline()
	a1, _ := res.Run("active-1cpu")
	a4, _ := res.Run("active-4cpu")
	if !(a1.Time > normal.Time) {
		t.Errorf("active 1-cpu (%v) should be slower than normal (%v)", a1.Time, normal.Time)
	}
	if !(a4.Time < normal.Time) {
		t.Errorf("active 4-cpu (%v) should beat normal (%v)", a4.Time, normal.Time)
	}
	if !(a4.Time < a1.Time) {
		t.Errorf("4-cpu (%v) should beat 1-cpu (%v)", a4.Time, a1.Time)
	}
}

func TestThreeCPUChains(t *testing.T) {
	// An odd CPU count exercises uneven chain lengths.
	prm := testParams()
	input := BuildInput(prm)
	want := fmt.Sprintf("%x", ChainDigest(input, 3, prm.BlockSize))
	run := Run(apps.Active, 3, prm)
	if got := run.Extra["digest"].(string); got != want {
		t.Fatalf("3-cpu digest %s, want %s", got, want)
	}
}
