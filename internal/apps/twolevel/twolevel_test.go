package twolevel

import (
	"testing"

	"activesan/internal/stats"
)

func testParams() Params {
	prm := DefaultParams()
	prm.TableBytes = 8 << 20
	return prm
}

func TestAllPlacementsAgree(t *testing.T) {
	prm := testParams()
	want := prm.ExpectedMatches()
	for _, m := range []Mode{OnHost, OnSwitch, OnDisk, TwoLevel} {
		run := Run(m, prm)
		if got := run.Extra["matches"].(int64); got != want {
			t.Errorf("%s: matches = %d, want %d", m, got, want)
		}
	}
}

func TestTrafficOrdering(t *testing.T) {
	// Host traffic must fall monotonically as the predicate moves toward
	// the data: full table > matching records > a single count.
	prm := testParams()
	res := RunAll(prm)
	get := func(name string) stats.Run {
		r, ok := res.Run(name)
		if !ok {
			t.Fatalf("missing run %q", name)
		}
		return r
	}
	host := get("host")
	sw := get("switch")
	disk := get("disk")
	two := get("two-level")
	if !(sw.Traffic < host.Traffic/2) {
		t.Errorf("switch traffic %d not well below host %d", sw.Traffic, host.Traffic)
	}
	if !(disk.Traffic < host.Traffic/2) {
		t.Errorf("disk traffic %d not well below host %d", disk.Traffic, host.Traffic)
	}
	// Two-level: almost nothing reaches the host.
	if two.Traffic > host.Traffic/100 {
		t.Errorf("two-level traffic %d not near zero (host %d)", two.Traffic, host.Traffic)
	}
	// The fabric sees less data in the two-level case than the switch-only
	// case: the disk removed 75% before the wire.
	if two.Time > sw.Time*11/10 {
		t.Errorf("two-level (%v) slower than switch-only (%v)", two.Time, sw.Time)
	}
}

func TestDiskFilterDoesNotSlowStream(t *testing.T) {
	// A 2-cycle/byte filter on the 200 MHz disk core handles 100 MB/s:
	// the filtered run must stay disk-bound, not filter-bound.
	prm := testParams()
	host := Run(OnHost, prm)
	disk := Run(OnDisk, prm)
	if disk.Time > host.Time*11/10 {
		t.Errorf("disk filtering (%v) much slower than plain streaming (%v)", disk.Time, host.Time)
	}
}
