// Package twolevel builds the system the paper's related-work section
// sketches but never evaluates: "If active I/O devices do become prevalent,
// they can also be used within our active switch system, creating a
// two-level active I/O system." A range selection runs four ways:
//
//	host      — the table streams to the host, which evaluates the predicate
//	switch    — the paper's active case: the switch filters, the host counts
//	disk      — an active disk (200 MHz embedded core) filters at the source
//	two-level — the disk filters, the switch aggregates, the host receives
//	            a single count: level one removes 75% of the bytes before
//	            they reach the fabric, level two removes the rest
package twolevel

import (
	"fmt"

	"activesan/internal/apps"
	"activesan/internal/aswitch"
	"activesan/internal/cluster"
	"activesan/internal/iodev"
	"activesan/internal/san"
	"activesan/internal/sim"
	"activesan/internal/stats"
)

// Mode selects where the predicate runs.
type Mode int

// The four placements.
const (
	OnHost Mode = iota
	OnSwitch
	OnDisk
	TwoLevel
)

func (m Mode) String() string {
	switch m {
	case OnSwitch:
		return "switch"
	case OnDisk:
		return "disk"
	case TwoLevel:
		return "two-level"
	default:
		return "host"
	}
}

// Params sizes the workload.
type Params struct {
	TableBytes     int64
	RecordSize     int64
	ChunkSize      int64
	SelectPermille int64

	HostPredInstr    int64
	SwitchPredCycles int64
	DiskPredCycles   int64 // per byte on the 200 MHz disk core
}

// DefaultParams returns a 32 MB table (the study is about placement, not
// scale).
func DefaultParams() Params {
	return Params{
		TableBytes:       32 << 20,
		RecordSize:       128,
		ChunkSize:        1 << 20,
		SelectPermille:   250,
		HostPredInstr:    12,
		SwitchPredCycles: 12,
		DiskPredCycles:   2,
	}
}

// Key derives record i's field value.
func Key(i int64) int64 { return int64(apps.Mix64(uint64(i)|7<<40) % 1000) }

// Matches is the predicate.
func (prm Params) Matches(i int64) bool { return Key(i) < prm.SelectPermille }

// ExpectedMatches is the oracle.
func (prm Params) ExpectedMatches() int64 {
	n := prm.TableBytes / prm.RecordSize
	var c int64
	for i := int64(0); i < n; i++ {
		if prm.Matches(i) {
			c++
		}
	}
	return c
}

// chunkCount carries a filtered chunk's surviving record count.
type chunkCount struct{ N int64 }

const (
	handlerID  = 17
	filterID   = 1
	streamBase = 0x0010_0000
	countFlow  = 0x7200
)

// Run executes the selection with the predicate at the given placement and
// returns the run metrics (Extra: "matches").
func Run(mode Mode, prm Params) stats.Run {
	eng := sim.NewEngine()
	ccfg := cluster.DefaultIOClusterConfig()
	c := cluster.NewIOCluster(eng, ccfg)
	c.Store(0).AddFile(&iodev.File{Name: "table", Size: prm.TableBytes})
	sw := c.Switch(0)
	store := c.Store(0)

	// Level one: the active disk's pushdown filter.
	if mode == OnDisk || mode == TwoLevel {
		store.RegisterFilter(filterID, &iodev.Filter{
			Name:          "range-select",
			CyclesPerByte: prm.DiskPredCycles,
			Fn: func(off, n int64, _ any) (int64, any) {
				lo := (off + prm.RecordSize - 1) / prm.RecordSize
				hi := (off + n + prm.RecordSize - 1) / prm.RecordSize
				var kept int64
				for i := lo; i < hi; i++ {
					if prm.Matches(i) {
						kept++
					}
				}
				return kept * prm.RecordSize, chunkCount{N: kept}
			},
		})
	}

	// Level two: switch-side predicate or aggregation.
	switch mode {
	case OnSwitch:
		sw.Register(handlerID, "select", func(x *aswitch.Ctx) {
			x.ReleaseArgs()
			var matched int64
			cursor := int64(streamBase)
			end := cursor + prm.TableBytes
			for cursor < end {
				b := x.WaitStream(cursor)
				recBase := (cursor - streamBase) / prm.RecordSize
				n := b.Size() / prm.RecordSize
				for r := int64(0); r < n; r++ {
					x.ReadAt(b, r*prm.RecordSize, 8)
					x.Compute(prm.SwitchPredCycles)
					if prm.Matches(recBase + r) {
						matched++
					}
				}
				cursor = b.End()
				x.Deallocate(cursor)
			}
			x.Send(aswitch.SendSpec{
				Dst: x.Src(), Type: san.Control, Addr: 0x100,
				Size: 8, Flow: countFlow, Payload: matched,
			})
		})
	case TwoLevel:
		sw.Register(handlerID, "aggregate", func(x *aswitch.Ctx) {
			x.ReleaseArgs()
			var matched int64
			cursor := int64(streamBase)
			for {
				b := x.WaitStream(cursor)
				if cc, ok := x.ReadAll(b).(chunkCount); ok {
					x.Compute(cc.N * 2)
					matched += cc.N
				}
				last := b.Last()
				cursor = b.End()
				x.Deallocate(cursor)
				if last {
					break
				}
			}
			x.Send(aswitch.SendSpec{
				Dst: x.Src(), Type: san.Control, Addr: 0x100,
				Size: 8, Flow: countFlow, Payload: matched,
			})
		})
	}
	c.Start()

	var matched int64
	var end sim.Time
	eng.Spawn("app", func(p *sim.Proc) {
		h := c.Host(0)
		defer func() { end = p.Now() }()
		switch mode {
		case OnHost:
			buf := h.Space().Alloc(prm.ChunkSize, 4096)
			apps.StreamChunks(p, h, store.ID(), "table", prm.TableBytes, prm.ChunkSize, buf, 2,
				func(off, n int64, _ []any) {
					recBase := off / prm.RecordSize
					cnt := n / prm.RecordSize
					for r := int64(0); r < cnt; r++ {
						h.CPU().Load(p, buf+(r%(prm.ChunkSize/prm.RecordSize))*prm.RecordSize)
						h.CPU().Compute(p, prm.HostPredInstr)
						if prm.Matches(recBase + r) {
							matched++
						}
					}
				})

		case OnDisk:
			// Filtered records stream straight to the host; count them
			// from the chunk summaries.
			tok := h.IssueReadReq(p, store.ID(), iodev.ReadReq{
				File: "table", Len: prm.TableBytes,
				Dst: h.ID(), DstAddr: 0x0200_0000, Type: san.Data,
				Flow: 0x6400, FilterID: filterID,
			})
			comp := h.RecvFlow(p, store.ID(), 0x6400)
			for _, pl := range comp.Payloads {
				if cc, ok := pl.(chunkCount); ok {
					h.CPU().Compute(p, 4)
					matched += cc.N
				}
			}
			h.WaitRead(p, tok)

		case OnSwitch, TwoLevel:
			h.SendMessage(p, &san.Message{
				Hdr:  san.Header{Dst: sw.ID(), Type: san.ActiveMsg, HandlerID: handlerID, Addr: 0},
				Size: 32,
			}, 0)
			req := iodev.ReadReq{
				File: "table", Len: prm.TableBytes,
				Dst: sw.ID(), DstAddr: streamBase, Type: san.Data, Flow: 0x6400,
			}
			if mode == TwoLevel {
				req.FilterID = filterID
			}
			tok := h.IssueReadReq(p, store.ID(), req)
			h.WaitRead(p, tok)
			comp := h.RecvFlow(p, sw.ID(), countFlow)
			matched = comp.Payloads[0].(int64)
		}
	})
	eng.Run()
	run := apps.Collect(apps.ActivePref, c, end, map[string]any{"matches": matched})
	run.Config = mode.String()
	c.Shutdown()
	return run
}

// RunAll compares the four placements.
func RunAll(prm Params) *stats.Result {
	res := &stats.Result{
		ID:    "twolevel",
		Title: "Two-level active I/O: predicate placement for a range select",
	}
	for _, m := range []Mode{OnHost, OnSwitch, OnDisk, TwoLevel} {
		res.Runs = append(res.Runs, Run(m, prm))
	}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"host traffic: host=%d switch=%d disk=%d two-level=%d bytes",
		res.Runs[0].Traffic, res.Runs[1].Traffic, res.Runs[2].Traffic, res.Runs[3].Traffic))
	return res
}
