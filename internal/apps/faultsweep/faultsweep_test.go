package faultsweep

import (
	"strings"
	"testing"

	"activesan/internal/apps"
	"activesan/internal/apps/mpeg"
	"activesan/internal/fault"
	"activesan/internal/sim"
)

// smallParams shrinks the workload so each test run finishes in milliseconds
// while still spanning several chunks and GOPs.
func smallParams() mpeg.Params {
	prm := mpeg.DefaultParams()
	prm.FileSize = 256 * 1024
	prm.ChunkSize = 32 * 1024
	return prm
}

func TestPlanFor(t *testing.T) {
	if PlanFor(0, 0) != nil {
		t.Fatal("zero rate should mean no plan")
	}
	p := PlanFor(1, 0.001)
	if p == nil || len(p.Links) != 1 || p.Links[0].Drop != 0.001 || p.Seed != baseSeed+1 {
		t.Fatalf("PlanFor(1, 0.001) = %+v", p)
	}
	if len(p.Disks) != 0 {
		t.Fatal("point 1 should not inject disk errors")
	}
	p2 := PlanFor(2, 0.005)
	if len(p2.Disks) != 1 || p2.Links[0].DelayNS == 0 {
		t.Fatalf("point 2 should add delays and disk errors: %+v", p2)
	}
}

func TestLossRecoveryMatchesBaseline(t *testing.T) {
	prm := smallParams()
	base, baseInj := mpeg.RunFaulted(apps.NormalPref, prm, nil, 0)
	if baseInj != nil {
		t.Fatal("nil plan armed an injector")
	}
	want, _ := base.Extra["checksum"].(string)
	if want == "" {
		t.Fatal("baseline run has no checksum")
	}

	plan := &fault.Plan{Seed: 42, Links: []fault.LinkRule{{Drop: 0.01}}}
	run, inj := mpeg.RunFaulted(apps.NormalPref, prm, plan, 0)
	if inj == nil {
		t.Fatal("loss plan armed no injector")
	}
	got, _ := run.Extra["checksum"].(string)
	if got != want {
		t.Fatalf("checksum %s under loss, want %s", got, want)
	}
	c := inj.Counts()
	if c.Injected == 0 {
		t.Fatal("1% loss injected nothing — plan not armed on the data path")
	}
	if !inj.Balanced() {
		t.Fatalf("accounting unbalanced: injected %d, recovered %d, tolerated %d, pending %d",
			c.Injected, c.Recovered, c.Tolerated, inj.Pending())
	}
	// Retransmissions may hide entirely inside pipeline slack at this
	// scale, so only require that loss never makes the run faster.
	if run.Time < base.Time {
		t.Fatalf("lossy run (%v) faster than baseline (%v)", run.Time, base.Time)
	}
}

func TestFaultedRunsAreDeterministic(t *testing.T) {
	prm := smallParams()
	plan := &fault.Plan{Seed: 7, Links: []fault.LinkRule{{Drop: 0.005}}}
	a, ai := mpeg.RunFaulted(apps.NormalPref, prm, plan, 0)
	b, bi := mpeg.RunFaulted(apps.NormalPref, prm, plan, 0)
	if a.Time != b.Time {
		t.Fatalf("same plan, different completion: %v vs %v", a.Time, b.Time)
	}
	if ai.Counts() != bi.Counts() {
		t.Fatalf("same plan, different ledgers: %+v vs %+v", ai.Counts(), bi.Counts())
	}
	// A different seed must change the loss pattern (with overwhelming
	// probability at hundreds of draws).
	other := &fault.Plan{Seed: 8, Links: []fault.LinkRule{{Drop: 0.005}}}
	c, ci := mpeg.RunFaulted(apps.NormalPref, prm, other, 0)
	if a.Time == c.Time && ai.Counts() == ci.Counts() {
		t.Fatal("different seeds produced identical runs")
	}
	// The CLI's -fault-seed overrides the plan's own seed.
	d, di := mpeg.RunFaulted(apps.NormalPref, prm, plan, 8)
	if d.Time != c.Time || di.Counts() != ci.Counts() {
		t.Fatal("seed override did not reproduce the plan-seeded run")
	}
}

func TestHandlerCrashFallsBackToHost(t *testing.T) {
	prm := smallParams()
	normal, _ := mpeg.RunFaulted(apps.NormalPref, prm, nil, 0)
	want, _ := normal.Extra["checksum"].(string)

	activeBase := mpeg.Run(apps.Active, prm)
	if activeBase.Time <= 0 {
		t.Fatal("active baseline did not complete")
	}
	plan := &fault.Plan{Events: []fault.Event{{
		AtNS: int64((activeBase.Time / 3) / sim.Nanosecond),
		Kind: fault.HandlerCrash,
	}}}
	run, inj := mpeg.RunFaulted(apps.Active, prm, plan, 0)
	if fellBack, _ := run.Extra["fallback"].(bool); !fellBack {
		t.Fatal("crash mid-stream did not trigger the host fallback")
	}
	if got, _ := run.Extra["checksum"].(string); got != want {
		t.Fatalf("fallback checksum %s, want %s", got, want)
	}
	if c := inj.Counts(); c.Crashes != 1 || !inj.Balanced() {
		t.Fatalf("crash accounting: %+v pending=%d", c, inj.Pending())
	}
	if run.Time <= activeBase.Time {
		t.Fatalf("crashed run (%v) not slower than clean active run (%v)", run.Time, activeBase.Time)
	}
}

func TestRunAllSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in -short mode")
	}
	res := RunAll(smallParams())
	// One run per loss rate plus the active baseline and the crash run.
	if want := len(LossRates) + 2; len(res.Runs) != want {
		t.Fatalf("%d runs, want %d", len(res.Runs), want)
	}
	for _, n := range res.Notes {
		for _, bad := range []string{"CHECKSUM MISMATCH", "UNBALANCED", "NO FALLBACK"} {
			if strings.Contains(n, bad) {
				t.Fatalf("sweep note reports %q: %s", bad, n)
			}
		}
	}
	if len(res.Series) != 2 || len(res.Series[0].Y) != len(LossRates) {
		t.Fatalf("series malformed: %+v", res.Series)
	}
}
