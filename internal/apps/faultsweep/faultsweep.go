// Package faultsweep is the reliability experiment: it re-runs the paper's
// MPEG-filter benchmark under a sweep of injected link-loss rates and shows
// that the end-to-end retransmission layer completes every message — verified
// by checksum against the fault-free run and by the injector's accounting
// identity (injected == recovered + tolerated) — at a measurable cost in
// goodput and completion time. A second section crashes the active switch's
// handler plane mid-stream and shows the host-side fallback finishing the
// workload locally, with the slowdown reported. The paper's switches assume
// a lossless fabric; this extension quantifies what its offloading model
// costs when that assumption is relaxed.
package faultsweep

import (
	"fmt"

	"activesan/internal/apps"
	"activesan/internal/apps/mpeg"
	"activesan/internal/fault"
	"activesan/internal/sim"
	"activesan/internal/stats"
)

// baseSeed pins every sweep point's PRNG stream; point i draws from
// baseSeed+i so the loss pattern differs per rate but never per invocation.
const baseSeed = 0xFA017

// LossRates is the swept per-packet drop probability, applied to every link.
var LossRates = []float64{0, 0.001, 0.005, 0.01}

// PlanFor builds the sweep point's fault plan; nil for the fault-free
// baseline. The middle point also adds small random delays and disk media
// errors, so one golden run exercises the tolerated-fault and disk-retry
// paths alongside retransmission.
func PlanFor(i int, rate float64) *fault.Plan {
	if rate == 0 {
		return nil
	}
	p := &fault.Plan{
		Seed:  baseSeed + uint64(i),
		Links: []fault.LinkRule{{Drop: rate}},
	}
	if i == 2 {
		p.Links[0].DelayNS = 2000
		p.Links[0].JitterNS = 2000
		p.Links[0].DelayProb = 0.02
		// High per-attempt rate: small scaled runs only issue a handful of
		// disk reads, and the golden should exercise the retry path.
		p.Disks = []fault.DiskRule{{Fail: 0.3}}
	}
	return p
}

// RunAll executes the loss sweep plus the handler-crash demonstration.
func RunAll(prm mpeg.Params) *stats.Result {
	res := &stats.Result{
		ID:    "faultsweep",
		Title: "Reliability under injected faults: MPEG filter goodput and completion vs link loss; handler-crash fallback",
	}
	note := func(format string, args ...any) {
		res.Notes = append(res.Notes, fmt.Sprintf(format, args...))
	}

	var lossPct, goodput, completionMs []float64
	baseChecksum := ""
	for i, rate := range LossRates {
		run, inj := mpeg.RunFaulted(apps.NormalPref, prm, PlanFor(i, rate), 0)
		run.Config = fmt.Sprintf("loss=%.1f%%", rate*100)
		checksum, _ := run.Extra["checksum"].(string)
		if i == 0 {
			baseChecksum = checksum
		}
		verified := checksum == baseChecksum && checksum != ""
		lossPct = append(lossPct, rate*100)
		goodput = append(goodput, run.GoodputMBps(prm.FileSize))
		completionMs = append(completionMs, run.Time.Seconds()*1e3)
		if inj == nil {
			note("%s: baseline, checksum %s", run.Config, checksum)
		} else {
			c := inj.Counts()
			status := "verified"
			if !verified {
				status = "CHECKSUM MISMATCH"
			}
			balance := "balanced"
			if !inj.Balanced() {
				balance = fmt.Sprintf("UNBALANCED (pending %d)", inj.Pending())
			}
			note("%s: %s, injected %d = recovered %d + tolerated %d (%s), disk errors %d",
				run.Config, status, c.Injected, c.Recovered, c.Tolerated, balance, c.DiskErrors)
		}
		res.Runs = append(res.Runs, run)
	}
	res.Series = append(res.Series,
		stats.Series{Name: "goodput_mbps", X: lossPct, Y: goodput},
		stats.Series{Name: "completion_ms", X: lossPct, Y: completionMs},
	)

	// Handler crash: kill the active switch's handler plane a third of the
	// way through the fault-free active run, and let the host fall back to
	// the all-local program.
	activeBase := mpeg.Run(apps.Active, prm)
	res.Runs = append(res.Runs, activeBase)
	crashAt := activeBase.Time / 3
	plan := &fault.Plan{Events: []fault.Event{{
		AtNS: int64(crashAt / sim.Nanosecond),
		Kind: fault.HandlerCrash,
	}}}
	crashRun, crashInj := mpeg.RunFaulted(apps.Active, prm, plan, 0)
	crashRun.Config = "active+crash"
	res.Runs = append(res.Runs, crashRun)
	fellBack, _ := crashRun.Extra["fallback"].(bool)
	crashChecksum, _ := crashRun.Extra["checksum"].(string)
	status := "verified"
	switch {
	case !fellBack:
		status = "NO FALLBACK"
	case crashChecksum != baseChecksum:
		status = "CHECKSUM MISMATCH"
	}
	slow := 0.0
	if activeBase.Time > 0 {
		slow = float64(crashRun.Time) / float64(activeBase.Time)
	}
	balance := "balanced"
	if crashInj != nil && !crashInj.Balanced() {
		balance = "UNBALANCED"
	}
	note("handler crash at t/3: host fallback %s, %.2fx active time (%s)", status, slow, balance)
	return res
}
