package grep

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"activesan/internal/apps"
)

func TestMultiDFATwoPatterns(t *testing.T) {
	d := BuildMultiDFA([]string{"cat", "dog"})
	s := NewMultiScanner(d)
	s.Feed([]byte("the cat sat\nno match here\na dog barked\ncatdog\n"))
	s.Flush()
	if len(s.Lines) != 3 {
		t.Fatalf("matched %d lines, want 3: %q", len(s.Lines), s.Lines)
	}
}

func TestMultiDFAOverlappingPatterns(t *testing.T) {
	// "he", "she", "his", "hers" — the classic Aho-Corasick example where
	// failure links matter: "she" contains "he".
	d := BuildMultiDFA([]string{"he", "she", "his", "hers"})
	s := NewMultiScanner(d)
	s.Feed([]byte("ushers\nxyz\nhistory\n"))
	s.Flush()
	if len(s.Lines) != 2 {
		t.Fatalf("matched %d lines, want 2: %q", len(s.Lines), s.Lines)
	}
	if string(s.Lines[0]) != "ushers" || string(s.Lines[1]) != "history" {
		t.Fatalf("lines = %q", s.Lines)
	}
}

func TestMultiDFASplitFeeds(t *testing.T) {
	d := BuildMultiDFA([]string{"Big Red Bear"})
	s := NewMultiScanner(d)
	s.Feed([]byte("xx Big R"))
	s.Feed([]byte("ed Bear yy\n"))
	s.Flush()
	if len(s.Lines) != 1 {
		t.Fatalf("split feed matched %d lines", len(s.Lines))
	}
}

func TestMultiDFAEmptyPatternsIgnored(t *testing.T) {
	d := BuildMultiDFA([]string{"", "abc", ""})
	if d.States() < 4 {
		t.Fatalf("states = %d", d.States())
	}
	s := NewMultiScanner(d)
	s.Feed([]byte("abc\n\n"))
	s.Flush()
	if len(s.Lines) != 1 {
		t.Fatalf("matched %d lines, want 1 (empty patterns must not match everything)", len(s.Lines))
	}
}

func TestMultiDFAAgreesWithSinglePatternDFA(t *testing.T) {
	// Property: for one pattern, MultiDFA and the KMP DFA find exactly the
	// same lines on arbitrary lowercase corpora.
	f := func(raw []byte, pat uint8) bool {
		// Corpus: lowercase with newlines; pattern: 2-4 letters.
		corpus := make([]byte, len(raw))
		for i, b := range raw {
			if b%17 == 0 {
				corpus[i] = '\n'
			} else {
				corpus[i] = 'a' + b%4
			}
		}
		pattern := []string{"ab", "aba", "bba", "abab"}[pat%4]
		m := NewMultiScanner(BuildMultiDFA([]string{pattern}))
		m.Feed(corpus)
		m.Flush()
		k := NewScanner(BuildDFA(pattern))
		k.Feed(corpus)
		k.Flush()
		if len(m.Lines) != len(k.Lines) {
			return false
		}
		for i := range m.Lines {
			if !bytes.Equal(m.Lines[i], k.Lines[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiPatternBenchmarkRun(t *testing.T) {
	// Run the full grep benchmark with two patterns: the planted pattern
	// plus one that cannot occur; the match count must be unchanged, and
	// a lowercase pattern that does occur must add lines.
	prm := DefaultParams()
	prm.Patterns = []string{prm.Pattern, "NO SUCH STRING"}
	run := Run(apps.ActivePref, prm)
	if got := run.Extra["matches"]; got != prm.Matches {
		t.Fatalf("two-pattern matches = %v, want %d", got, prm.Matches)
	}
	corpus := BuildCorpus(DefaultParams())
	extra := "aa" // occurs all over the lowercase corpus
	wantLines := 0
	for _, line := range strings.Split(string(corpus), "\n") {
		if strings.Contains(line, DefaultParams().Pattern) || strings.Contains(line, extra) {
			wantLines++
		}
	}
	prm.Patterns = []string{prm.Pattern, extra}
	run = Run(apps.Normal, prm)
	if got := run.Extra["matches"]; got != wantLines {
		t.Fatalf("matches with extra pattern = %v, want %d", got, wantLines)
	}
}
