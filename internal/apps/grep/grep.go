// Package grep reproduces the paper's Grep benchmark: GNU-grep-style search
// of a 1,146,880-byte file for "Big Red Bear" with exactly 16 matching
// lines, issued in 32 KB I/O requests. The three phases of a grep run —
// option parsing, DFA construction, search — split exactly as the paper
// describes: the active version leaves parsing on the host and runs DFA
// setup and the search on the switch, returning only the matched lines.
package grep

import (
	"bytes"

	"activesan/internal/apps"
	"activesan/internal/aswitch"
	"activesan/internal/cache"
	"activesan/internal/cluster"
	"activesan/internal/iodev"
	"activesan/internal/san"
	"activesan/internal/sim"
	"activesan/internal/stats"
)

// Params sizes the workload and calibrates per-byte costs.
type Params struct {
	FileSize int64
	Pattern  string
	// Patterns, when set, searches for several patterns at once through an
	// Aho-Corasick automaton (grep -e); it overrides Pattern.
	Patterns  []string
	Matches   int
	ChunkSize int64

	// HostScanInstr is the host's per-byte search cost (DFA step, loop).
	HostScanInstr int64
	// SwitchScanCycles is the switch CPU's per-byte search cost.
	SwitchScanCycles int64
	// DFASetupInstr is the automaton construction cost.
	DFASetupInstr int64
	// ParseInstr is command-line option parsing (always on the host).
	ParseInstr int64
}

// DefaultParams returns the paper's workload (Table 1) with calibrated
// costs.
func DefaultParams() Params {
	return Params{
		FileSize:         1146880,
		Pattern:          "Big Red Bear",
		Matches:          16,
		ChunkSize:        32 * 1024,
		HostScanInstr:    6,
		SwitchScanCycles: 4,
		DFASetupInstr:    30000,
		ParseInstr:       20000,
	}
}

// DFA is a single-pattern byte automaton (KMP-style with full transition
// table), the moral equivalent of GNU grep 2.0's DFA stage.
type DFA struct {
	pattern []byte
	next    [][256]int16
}

// BuildDFA constructs the automaton.
func BuildDFA(pattern string) *DFA {
	p := []byte(pattern)
	m := len(p)
	d := &DFA{pattern: p, next: make([][256]int16, m)}
	if m == 0 {
		return d
	}
	d.next[0][p[0]] = 1
	x := 0
	for s := 1; s < m; s++ {
		for c := 0; c < 256; c++ {
			d.next[s][c] = d.next[x][c]
		}
		d.next[s][p[s]] = int16(s + 1)
		x = int(d.next[x][p[s]])
	}
	return d
}

// Scanner runs the DFA over a byte stream, tracking line boundaries so
// matched lines can be reported like grep does.
type Scanner struct {
	d     *DFA
	state int
	line  []byte
	// Lines collects each matched line.
	Lines [][]byte
	// hit marks the current line as matched.
	hit bool
}

// NewScanner starts a stream scan.
func NewScanner(d *DFA) *Scanner { return &Scanner{d: d} }

// Feed consumes the next chunk of the stream.
func (s *Scanner) Feed(data []byte) {
	m := len(s.d.pattern)
	for _, b := range data {
		if b == '\n' {
			if s.hit {
				line := make([]byte, len(s.line))
				copy(line, s.line)
				s.Lines = append(s.Lines, line)
			}
			s.line = s.line[:0]
			s.hit = false
			s.state = 0
			continue
		}
		s.line = append(s.line, b)
		if m > 0 {
			s.state = int(s.d.next[s.state][b])
			if s.state == m {
				s.hit = true
				s.state = 0
			}
		}
	}
}

// Flush terminates the final (unterminated) line.
func (s *Scanner) Flush() {
	if s.hit {
		line := make([]byte, len(s.line))
		copy(line, s.line)
		s.Lines = append(s.Lines, line)
	}
	s.line = nil
	s.hit = false
}

// BuildCorpus deterministically generates the workload: FileSize bytes of
// lowercase text lines with the pattern planted on exactly Matches lines,
// spread evenly. Lowercase filler cannot collide with the capitalized
// pattern.
func BuildCorpus(prm Params) []byte {
	rng := apps.NewRand(0x67726570) // "grep"
	var buf bytes.Buffer
	buf.Grow(int(prm.FileSize))
	lineNo := 0
	// Plant matches on evenly spaced line numbers: about 18 lines per KB.
	approxLines := int(prm.FileSize / 64)
	interval := approxLines / (prm.Matches + 1)
	planted := 0
	for int64(buf.Len()) < prm.FileSize {
		words := 6 + int(rng.Intn(6))
		for w := 0; w < words; w++ {
			if w > 0 {
				buf.WriteByte(' ')
			}
			wl := 3 + int(rng.Intn(7))
			for i := 0; i < wl; i++ {
				buf.WriteByte(byte('a' + rng.Intn(26)))
			}
		}
		if planted < prm.Matches && interval > 0 && lineNo%interval == interval/2 {
			buf.WriteByte(' ')
			buf.WriteString(prm.Pattern)
			planted++
		}
		buf.WriteByte('\n')
		lineNo++
	}
	out := buf.Bytes()[:prm.FileSize]
	// The truncation cannot cut a planted line: matches are spread evenly
	// and the last interval stays pattern-free by construction; verify at
	// generation time so the workload is self-checking.
	if n := bytes.Count(out, []byte(prm.Pattern)); n != prm.Matches {
		panic("grep: corpus generation produced wrong match count")
	}
	return out
}

// handlerID is Grep's jump-table slot.
const handlerID = 9

// stream layout in the handler's 32-bit mapped space.
const (
	argBase    = 0x0000_0000
	streamBase = 0x0010_0000
	resultFlow = 0x7001
)

// lineScanner abstracts the single- and multi-pattern scanners.
type lineScanner interface {
	Feed([]byte)
	Flush()
}

// newScanner builds the matcher for the configured pattern set, returning
// the scanner, its setup instruction cost, and an accessor for the matched
// lines.
func newScanner(prm Params) (lineScanner, int64, func() [][]byte) {
	if len(prm.Patterns) > 0 {
		d := BuildMultiDFA(prm.Patterns)
		s := NewMultiScanner(d)
		// Setup scales with automaton size (trie + failure links).
		return s, prm.DFASetupInstr * int64(d.States()) / int64(len(prm.Pattern)+1), func() [][]byte { return s.Lines }
	}
	s := NewScanner(BuildDFA(prm.Pattern))
	return s, prm.DFASetupInstr, func() [][]byte { return s.Lines }
}

// Run executes one configuration and returns its metrics.
func Run(cfg apps.Config, prm Params) stats.Run {
	corpus := BuildCorpus(prm)
	ccfg := cluster.DefaultIOClusterConfig()

	var matched int
	setup := func(c *cluster.Cluster) {
		c.Store(0).AddFile(&iodev.File{Name: "input", Size: prm.FileSize, Data: corpus})
		if !cfg.IsActive() {
			return
		}
		sw := c.Switch(0)
		sw.Register(handlerID, "grep", func(x *aswitch.Ctx) {
			x.Args()
			x.ReleaseArgs()
			// DFA setup on the switch (the paper moves phases 2 and 3 off
			// the host).
			scan, setup, lines := newScanner(prm)
			x.Compute(setup)
			cursor := int64(streamBase)
			end := int64(streamBase) + prm.FileSize
			for cursor < end {
				b := x.WaitStream(cursor)
				data, _ := x.ReadAll(b).([]byte)
				x.Compute(prm.SwitchScanCycles * b.Size())
				scan.Feed(data)
				cursor = b.End()
				x.Deallocate(cursor)
			}
			scan.Flush()
			// Ship only the matched lines back to the host.
			var out []byte
			for _, l := range lines() {
				out = append(out, l...)
				out = append(out, '\n')
			}
			size := int64(len(out))
			if size == 0 {
				size = 1
			}
			x.Send(aswitch.SendSpec{
				Dst: x.Src(), Type: san.Data, Addr: 0x9000,
				Size: size, Flow: resultFlow, Payload: out,
			})
		})
	}

	app := func(p *sim.Proc, c *cluster.Cluster) map[string]any {
		h := c.Host(0)
		store := c.Store(0).ID()
		sw := c.Switch(0)
		h.CPU().Compute(p, prm.ParseInstr) // option parsing stays on the host

		if cfg.IsActive() {
			h.SendMessage(p, &san.Message{
				Hdr:     san.Header{Dst: sw.ID(), Type: san.ActiveMsg, HandlerID: handlerID, Addr: argBase},
				Size:    64,
				Payload: prm.Pattern,
			}, 0)
			apps.StreamToSwitch(p, h, store, "input", prm.FileSize, prm.ChunkSize,
				sw.ID(), streamBase, 0, 0x6001, cfg.Outstanding())
			comp := h.RecvFlow(p, sw.ID(), resultFlow)
			lines := bytes.Count(comp.Bytes(), []byte{'\n'})
			// Touch the received lines (they are the program's output).
			h.CPU().TouchRange(p, 0x9000, comp.Size, cache.Load)
			h.CPU().Compute(p, int64(lines)*20)
			matched = lines
			return map[string]any{"matches": matched}
		}

		// Normal: DFA setup then scan on the host.
		scan, setup, lines := newScanner(prm)
		h.CPU().Compute(p, setup)
		buf := h.Space().Alloc(prm.ChunkSize, 4096)
		apps.StreamChunks(p, h, store, "input", prm.FileSize, prm.ChunkSize, buf,
			cfg.Outstanding(), func(off, n int64, payloads []any) {
				// Architectural cost: walk the chunk and run the DFA.
				h.CPU().TouchRange(p, buf, n, cache.Load)
				h.CPU().Compute(p, prm.HostScanInstr*n)
				for _, pl := range payloads {
					if b, ok := pl.([]byte); ok {
						scan.Feed(b)
					}
				}
			})
		scan.Flush()
		matched = len(lines())
		return map[string]any{"matches": matched}
	}

	return apps.RunIO(ccfg, cfg, setup, app)
}

// RunAll executes the four configurations and assembles the paper's Figure
// 9/10 result.
func RunAll(prm Params) *stats.Result {
	res := &stats.Result{ID: "fig9", Title: "Grep: time, host utilization, host I/O traffic"}
	for _, cfg := range apps.AllConfigs {
		res.Runs = append(res.Runs, Run(cfg, prm))
	}
	res.Bars = apps.StandardBars(res, 1)
	return res
}
