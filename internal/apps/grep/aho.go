package grep

// MultiDFA is an Aho-Corasick automaton over byte strings: the multi-pattern
// generalization of the single-pattern DFA (GNU grep's -e flag). It is built
// as a goto trie with BFS failure links, then flattened into a dense
// transition table so scanning is one table lookup per byte — the same cost
// model as the single-pattern scanner.
type MultiDFA struct {
	next [][256]int32
	// out[s] is true when state s completes at least one pattern.
	out []bool
	// patterns keeps the originals for reporting.
	patterns []string
}

// BuildMultiDFA constructs the automaton; empty patterns are ignored.
func BuildMultiDFA(patterns []string) *MultiDFA {
	d := &MultiDFA{}
	d.next = append(d.next, [256]int32{}) // root
	d.out = append(d.out, false)

	// Phase 1: goto trie.
	type edge struct {
		from int32
		c    byte
	}
	children := make(map[edge]int32)
	for _, pat := range patterns {
		if pat == "" {
			continue
		}
		d.patterns = append(d.patterns, pat)
		s := int32(0)
		for i := 0; i < len(pat); i++ {
			c := pat[i]
			if t, ok := children[edge{s, c}]; ok {
				s = t
				continue
			}
			t := int32(len(d.next))
			d.next = append(d.next, [256]int32{})
			d.out = append(d.out, false)
			children[edge{s, c}] = t
			s = t
		}
		d.out[s] = true
	}

	// Phase 2: BFS failure links folded into a dense table.
	fail := make([]int32, len(d.next))
	var queue []int32
	for c := 0; c < 256; c++ {
		if t, ok := children[edge{0, byte(c)}]; ok {
			d.next[0][c] = t
			queue = append(queue, t)
		}
	}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		for c := 0; c < 256; c++ {
			t, ok := children[edge{s, byte(c)}]
			if !ok {
				d.next[s][c] = d.next[fail[s]][c]
				continue
			}
			fail[t] = d.next[fail[s]][c]
			if d.out[fail[t]] {
				d.out[t] = true
			}
			d.next[s][c] = t
			queue = append(queue, t)
		}
	}
	return d
}

// States reports the automaton size (for cost accounting and tests).
func (d *MultiDFA) States() int { return len(d.next) }

// MultiScanner streams bytes through a MultiDFA, collecting lines that
// match any pattern, like the single-pattern Scanner.
type MultiScanner struct {
	d     *MultiDFA
	state int32
	line  []byte
	hit   bool
	// Lines collects each matched line.
	Lines [][]byte
}

// NewMultiScanner starts a stream scan.
func NewMultiScanner(d *MultiDFA) *MultiScanner { return &MultiScanner{d: d} }

// Feed consumes the next chunk of the stream.
func (s *MultiScanner) Feed(data []byte) {
	for _, b := range data {
		if b == '\n' {
			if s.hit {
				line := make([]byte, len(s.line))
				copy(line, s.line)
				s.Lines = append(s.Lines, line)
			}
			s.line = s.line[:0]
			s.hit = false
			s.state = 0
			continue
		}
		s.line = append(s.line, b)
		s.state = s.d.next[s.state][b]
		if s.d.out[s.state] {
			s.hit = true
		}
	}
}

// Flush terminates the final (unterminated) line.
func (s *MultiScanner) Flush() {
	if s.hit {
		line := make([]byte, len(s.line))
		copy(line, s.line)
		s.Lines = append(s.Lines, line)
	}
	s.line = nil
	s.hit = false
}
