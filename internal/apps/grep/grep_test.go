package grep

import (
	"bytes"
	"strings"
	"testing"

	"activesan/internal/apps"
)

func TestDFAFindsPattern(t *testing.T) {
	d := BuildDFA("abc")
	s := NewScanner(d)
	s.Feed([]byte("xxabcxx\nnoabmatch\nabc\n"))
	s.Flush()
	if len(s.Lines) != 2 {
		t.Fatalf("matched %d lines, want 2", len(s.Lines))
	}
	if string(s.Lines[0]) != "xxabcxx" || string(s.Lines[1]) != "abc" {
		t.Fatalf("lines = %q", s.Lines)
	}
}

func TestDFAOverlap(t *testing.T) {
	// Self-overlapping pattern must be found across restarts.
	d := BuildDFA("aaa")
	s := NewScanner(d)
	s.Feed([]byte("aaaa\n"))
	s.Flush()
	if len(s.Lines) != 1 {
		t.Fatalf("matched %d lines, want 1", len(s.Lines))
	}
}

func TestDFASplitAcrossFeeds(t *testing.T) {
	// The pattern straddles chunk boundaries — the streaming case the
	// switch handler depends on.
	d := BuildDFA("Big Red Bear")
	s := NewScanner(d)
	s.Feed([]byte("junk Big R"))
	s.Feed([]byte("ed Bear tail\n"))
	s.Flush()
	if len(s.Lines) != 1 {
		t.Fatalf("split feed matched %d lines, want 1", len(s.Lines))
	}
}

func TestCorpusHasExactMatches(t *testing.T) {
	prm := DefaultParams()
	c := BuildCorpus(prm)
	if int64(len(c)) != prm.FileSize {
		t.Fatalf("corpus size = %d, want %d", len(c), prm.FileSize)
	}
	if n := bytes.Count(c, []byte(prm.Pattern)); n != prm.Matches {
		t.Fatalf("corpus contains %d matches, want %d", n, prm.Matches)
	}
	// Matched lines must each contain the pattern exactly once.
	s := NewScanner(BuildDFA(prm.Pattern))
	s.Feed(c)
	s.Flush()
	if len(s.Lines) != prm.Matches {
		t.Fatalf("scanner found %d lines, want %d", len(s.Lines), prm.Matches)
	}
	for _, l := range s.Lines {
		if !strings.Contains(string(l), prm.Pattern) {
			t.Fatalf("matched line lacks pattern: %q", l)
		}
	}
}

func TestRunFindsMatchesInAllConfigs(t *testing.T) {
	prm := DefaultParams()
	for _, cfg := range apps.AllConfigs {
		run := Run(cfg, prm)
		if got := run.Extra["matches"]; got != prm.Matches {
			t.Errorf("%s: matches = %v, want %d", cfg, got, prm.Matches)
		}
		if run.Time <= 0 {
			t.Errorf("%s: no time elapsed", cfg)
		}
	}
}

func TestShapeGrep(t *testing.T) {
	// Paper Figure 9: active beats normal; normal+pref between active and
	// active+pref; active+pref best; active traffic is tiny.
	res := RunAll(DefaultParams())
	normal := res.Baseline()
	np, _ := res.Run("normal+pref")
	a, _ := res.Run("active")
	ap, _ := res.Run("active+pref")
	if !(a.Time < normal.Time) {
		t.Errorf("active (%v) not faster than normal (%v)", a.Time, normal.Time)
	}
	if !(np.Time < a.Time) {
		t.Errorf("normal+pref (%v) should beat active (%v) per the paper", np.Time, a.Time)
	}
	if !(ap.Time <= np.Time) {
		t.Errorf("active+pref (%v) should be best (normal+pref %v)", ap.Time, np.Time)
	}
	if a.Traffic > normal.Traffic/50 {
		t.Errorf("active traffic %d not a tiny fraction of normal %d", a.Traffic, normal.Traffic)
	}
	// Host utilization in the active cases is near zero.
	if a.HostUtil() > 0.3*normal.HostUtil() {
		t.Errorf("active host util %.3f vs normal %.3f: not close to 0", a.HostUtil(), normal.HostUtil())
	}
}
