package psort

import (
	"testing"

	"activesan/internal/apps"
)

func testParams() Params {
	prm := DefaultParams()
	prm.Records = 64 << 10 // 6.4 MB total
	return prm
}

func TestDestPartitioning(t *testing.T) {
	// Every key maps to a valid node, and the split is roughly even for
	// uniform keys.
	const p = 4
	var counts [p]int
	for i := int64(0); i < 100000; i++ {
		d := Dest(Key(i), p)
		if d < 0 || d >= p {
			t.Fatalf("Dest out of range: %d", d)
		}
		counts[d]++
	}
	for d, n := range counts {
		frac := float64(n) / 100000
		if frac < 0.22 || frac > 0.28 {
			t.Fatalf("node %d got %.3f of keys, want ~0.25", d, frac)
		}
	}
}

func TestRecordsInCoversPartitionExactly(t *testing.T) {
	prm := testParams()
	perNode := prm.Records / int64(prm.Hosts)
	perNodeBytes := perNode * prm.RecordSize
	for j := 0; j < prm.Hosts; j++ {
		var total int64
		seen := make(map[int64]bool)
		for off := int64(0); off < perNodeBytes; off += 512 {
			end := off + 512
			if end > perNodeBytes {
				end = perNodeBytes
			}
			lo, hi := recordsIn(prm, j, off, end)
			for i := lo; i < hi; i++ {
				if seen[i] {
					t.Fatalf("record %d counted twice", i)
				}
				seen[i] = true
			}
			total += hi - lo
		}
		if total != perNode {
			t.Fatalf("node %d covered %d records, want %d", j, total, perNode)
		}
	}
}

func TestDistributionCorrectAllConfigs(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates all four configurations at 64K records")
	}
	prm := testParams()
	wantCounts, wantSums := prm.Oracle()
	for _, cfg := range apps.AllConfigs {
		run := Run(cfg, prm)
		counts := run.Extra["counts"].([]int64)
		sums := run.Extra["sums"].([]uint64)
		for j := 0; j < prm.Hosts; j++ {
			if counts[j] != wantCounts[j] {
				t.Errorf("%s: node %d received %d records, want %d", cfg, j, counts[j], wantCounts[j])
			}
			if sums[j] != wantSums[j] {
				t.Errorf("%s: node %d key sum mismatch", cfg, j)
			}
		}
	}
}

func TestShapeSort(t *testing.T) {
	// Paper Figures 13/14: results mirror Grep — normal worst — and the
	// headline is traffic: per-node data in the active cases is ~40% of
	// normal at p=4 (limit p/(3p-2)).
	if testing.Short() {
		t.Skip("simulates the full four-configuration figure")
	}
	prm := testParams()
	res := RunAll(prm)
	normal := res.Baseline()
	a, _ := res.Run("active")

	if !(a.Time <= normal.Time) {
		t.Errorf("active (%v) not faster than normal (%v)", a.Time, normal.Time)
	}
	ratio := float64(a.Traffic) / float64(normal.Traffic)
	want := float64(prm.Hosts) / float64(3*prm.Hosts-2)
	if ratio < want-0.08 || ratio > want+0.08 {
		t.Errorf("traffic ratio = %.3f, want ~%.3f (p/(3p-2))", ratio, want)
	}
	// Active host utilization is far below normal (redistribution is
	// offloaded).
	if a.HostUtil() > 0.5*normal.HostUtil() {
		t.Errorf("active util %.3f vs normal %.3f: reduction too small", a.HostUtil(), normal.HostUtil())
	}
}

func TestLocalSortPhase(t *testing.T) {
	// Phase two of the paper's sort: every node really sorts the keys it
	// received; counts stay correct and the run gets longer (the sort is
	// charged to the host CPUs).
	prm := testParams()
	prm.Records = 16 << 10
	base := Run(apps.NormalPref, prm)

	prm.LocalSort = true
	wantCounts, wantSums := prm.Oracle()
	for _, cfg := range []apps.Config{apps.NormalPref, apps.ActivePref} {
		run := Run(cfg, prm)
		counts := run.Extra["counts"].([]int64)
		sums := run.Extra["sums"].([]uint64)
		for j := 0; j < prm.Hosts; j++ {
			if counts[j] != wantCounts[j] || sums[j] != wantSums[j] {
				t.Errorf("%s with local sort: node %d distribution wrong", cfg, j)
			}
		}
		if run.Time <= base.Time {
			t.Errorf("%s: local sort added no time (%v <= %v)", cfg, run.Time, base.Time)
		}
	}
}

func TestOtherNodeCounts(t *testing.T) {
	// Traffic follows p/(3p-2) at p=2 and p=8 as well.
	if testing.Short() {
		t.Skip("simulates two extra node counts")
	}
	for _, hosts := range []int{2, 8} {
		prm := testParams()
		prm.Hosts = hosts
		prm.Records = 32 << 10
		n := Run(apps.NormalPref, prm)
		a := Run(apps.ActivePref, prm)
		want := float64(hosts) / float64(3*hosts-2)
		ratio := float64(a.Traffic) / float64(n.Traffic)
		if ratio < want-0.08 || ratio > want+0.08 {
			t.Errorf("p=%d: traffic ratio %.3f, want ~%.3f", hosts, ratio, want)
		}
	}
}
