// Package psort reproduces the paper's Parallel Sort benchmark: the
// distribution phase of a one-pass parallel sort of 16M Datamation records
// (100 bytes, 10-byte keys) over 4 nodes with a uniform key distribution.
// Each node reads its quarter of the data and redistributes records by key
// range; in the active cases the switch handler redistributes the records
// as they stream off the disks, so each node receives only the records
// assigned to it — per-node traffic falls to p/(3p-2) of normal (40% at
// p=4), the paper's Figure 13 headline.
package psort

import (
	"fmt"
	"sort"
	"sync/atomic"

	"activesan/internal/apps"
	"activesan/internal/aswitch"
	"activesan/internal/cache"
	"activesan/internal/cluster"
	"activesan/internal/host"
	"activesan/internal/iodev"
	"activesan/internal/san"
	"activesan/internal/sim"
	"activesan/internal/stats"
)

// Params sizes the workload and calibrates costs.
type Params struct {
	// Records is the total record count across all nodes (paper: 16M).
	Records int64
	// RecordSize and KeySize follow the Datamation benchmark.
	RecordSize int64
	KeySize    int64
	// Hosts is the node count p.
	Hosts int
	// ChunkSize is the disk request size; BatchSize is the redistribution
	// message size.
	ChunkSize   int64
	ActiveChunk int64
	BatchSize   int64

	// HostDistInstr is the host's per-record cost to classify and pack.
	HostDistInstr int64
	// HostRecvInstr is the per-record cost at the receiving node.
	HostRecvInstr int64
	// SwitchDistCycles is the switch CPU's per-record classify cost.
	SwitchDistCycles int64

	// LocalSort enables the paper's second phase ("each node sorts its
	// local data using any sorting algorithm"), which the paper leaves out
	// of its figures because it is identical in both cases. When set,
	// batches carry the real keys and every node sorts what it received.
	LocalSort bool
	// SortInstrPerCmp is the per-comparison cost of the local sort.
	SortInstrPerCmp int64
}

// DefaultParams returns the paper's workload.
func DefaultParams() Params {
	return Params{
		Records:          16 << 20,
		RecordSize:       100,
		KeySize:          10,
		Hosts:            4,
		ChunkSize:        64 * 1024,
		ActiveChunk:      1 << 20,
		BatchSize:        32 * 1024,
		HostDistInstr:    24,
		HostRecvInstr:    8,
		SwitchDistCycles: 24,
		SortInstrPerCmp:  8,
	}
}

// Key derives record i's 10-byte key (top 64 bits; uniform).
func Key(i int64) uint64 { return apps.Mix64(uint64(i) | 5<<40) }

// Dest maps a key to its destination node by range partitioning.
func Dest(key uint64, p int) int {
	return int(uint64(p) * (key >> 32) >> 32)
}

// Batch is one redistribution message's functional content: how many
// records it carries and a checksum of their keys (so the full 1.6 GB never
// needs materializing while the distribution is still verified end to end).
type Batch struct {
	Count  int64
	KeySum uint64
	End    bool
	From   int
	// Keys carries the actual key values when the local-sort phase is
	// enabled.
	Keys []uint64
}

// Oracle computes each destination's expected record count and key sum.
func (prm Params) Oracle() (counts []int64, sums []uint64) {
	counts = make([]int64, prm.Hosts)
	sums = make([]uint64, prm.Hosts)
	for i := int64(0); i < prm.Records; i++ {
		k := Key(i)
		d := Dest(k, prm.Hosts)
		counts[d]++
		sums[d] += k
	}
	return counts, sums
}

// recordsIn returns the index range [lo, hi) of records whose start byte
// lies within partition bytes [a, b) of node j's partition.
func recordsIn(prm Params, j int, a, b int64) (lo, hi int64) {
	perNode := prm.Records / int64(prm.Hosts)
	base := int64(j) * perNode
	lo = base + (a+prm.RecordSize-1)/prm.RecordSize
	hi = base + (b+prm.RecordSize-1)/prm.RecordSize
	max := base + perNode
	if hi > max {
		hi = max
	}
	if lo > hi {
		lo = hi
	}
	return lo, hi
}

// debugSort enables handler progress traces. Atomic so SetDebug is safe
// while experiments run on other goroutines.
var debugSort atomic.Bool

// SetDebug toggles tracing.
func SetDebug(v bool) { debugSort.Store(v) }

const handlerID = 15

const (
	argBase    = 0x0000_0000
	distFlow   = 0x7040
	doneFlow   = 0x7041
	recvAddr   = 0x0600_0000
	streamSpan = 0x2000_0000 // 512 MB of mapped space per input stream
	streamOrg  = 0x1000_0000
)

func streamBase(j int) int64 { return streamOrg + int64(j)*streamSpan }

type sortArgs struct {
	PerNodeBytes int64
	Hosts        int
	BatchSize    int64
	HostIDs      []san.NodeID
	Initiator    san.NodeID
}

// Run executes one configuration.
func Run(cfg apps.Config, prm Params) stats.Run {
	perNode := prm.Records / int64(prm.Hosts)
	perNodeBytes := perNode * prm.RecordSize

	eng := sim.NewEngine()
	ccfg := cluster.DefaultIOClusterConfig()
	ccfg.Hosts = prm.Hosts
	ccfg.Stores = prm.Hosts
	ccfg.Switch = aswitch.DefaultConfig(2 * prm.Hosts)
	c := cluster.NewIOCluster(eng, ccfg)
	for j := 0; j < prm.Hosts; j++ {
		c.Store(j).AddFile(&iodev.File{Name: "part", Size: perNodeBytes})
	}

	hostIDs := make([]san.NodeID, prm.Hosts)
	for j := range hostIDs {
		hostIDs[j] = c.Host(j).ID()
	}

	sw := c.Switch(0)
	if cfg.IsActive() {
		sw.Register(handlerID, "psort", func(x *aswitch.Ctx) {
			args := x.Args().(sortArgs)
			x.ReleaseArgs()
			total := args.PerNodeBytes * int64(args.Hosts)
			batches := make([]Batch, args.Hosts)
			var bytesOut []int64 = make([]int64, args.Hosts)
			flush := func(d int) {
				if batches[d].Count == 0 {
					return
				}
				b := batches[d]
				b.From = -1 // from the switch
				x.Send(aswitch.SendSpec{
					Dst: args.HostIDs[d], Type: san.Data, Addr: recvAddr,
					Size: b.Count * prm.RecordSize, Flow: distFlow, Payload: b,
				})
				batches[d] = Batch{}
				bytesOut[d] = 0
			}
			var consumed int64
			for consumed < total {
				if debugSort.Load() {
					fmt.Printf("[psort] consumed=%d/%d at %v\n", consumed, total, x.Now())
				}
				b := x.NextArrival()
				if debugSort.Load() {
					fmt.Printf("[psort] got buf addr=%#x size=%d\n", b.Addr(), b.Size())
				}
				x.ReadAll(b)
				// Which stream (node) does this buffer belong to?
				j := int((b.Addr() - streamOrg) / streamSpan)
				off := b.Addr() - streamBase(j)
				lo, hi := recordsIn(prm, j, off, off+b.Size())
				for i := lo; i < hi; i++ {
					k := Key(i)
					d := Dest(k, args.Hosts)
					x.Compute(prm.SwitchDistCycles)
					batches[d].Count++
					batches[d].KeySum += k
					if prm.LocalSort {
						batches[d].Keys = append(batches[d].Keys, k)
					}
					bytesOut[d] += prm.RecordSize
					if bytesOut[d] >= args.BatchSize {
						if debugSort.Load() {
							fmt.Printf("[psort] flush dest=%d count=%d\n", d, batches[d].Count)
						}
						flush(d)
					}
				}
				consumed += b.Size()
				x.DeallocateBuf(b)
			}
			for d := 0; d < args.Hosts; d++ {
				flush(d)
				x.Send(aswitch.SendSpec{
					Dst: args.HostIDs[d], Type: san.Data, Addr: recvAddr,
					Size: 64, Flow: distFlow, Payload: Batch{End: true, From: -1},
				})
			}
			x.Send(aswitch.SendSpec{
				Dst: args.Initiator, Type: san.Control, Addr: argBase,
				Size: 8, Flow: doneFlow,
			})
		})
	}
	c.Start()

	counts := make([]int64, prm.Hosts)
	sums := make([]uint64, prm.Hosts)
	var wg sim.WaitGroup
	wg.Add(prm.Hosts)

	for j := 0; j < prm.Hosts; j++ {
		j := j
		h := c.Host(j)
		eng.Spawn(fmt.Sprintf("sort-h%d", j), func(p *sim.Proc) {
			defer wg.Done()
			if cfg.IsActive() {
				runActiveNode(p, c, h, j, cfg, prm, hostIDs, &counts[j], &sums[j])
			} else {
				runNormalNode(p, c, h, j, cfg, prm, hostIDs, &counts[j], &sums[j])
			}
		})
	}

	var end sim.Time
	eng.Spawn("sort-main", func(p *sim.Proc) {
		wg.Wait(p)
		end = p.Now()
	})
	eng.Run()
	if debugSort.Load() {
		fmt.Printf("[psort] post-run: dbaInUse=%d atbLive=%d pending=%d\n",
			sw.DBA().InUse(), sw.CPU(0).ATB().Live(), sw.CPU(0).PendingArrivals())
	}
	run := apps.Collect(cfg, c, end, map[string]any{
		"counts": append([]int64(nil), counts...),
		"sums":   append([]uint64(nil), sums...),
	})
	c.Shutdown()
	return run
}

// runNormalNode reads the local partition and redistributes record batches
// to their destination hosts, then drains incoming batches.
func runNormalNode(p *sim.Proc, c *cluster.Cluster, h *host.Host, j int,
	cfg apps.Config, prm Params, hostIDs []san.NodeID, count *int64, sum *uint64) {
	perNode := prm.Records / int64(prm.Hosts)
	perNodeBytes := perNode * prm.RecordSize
	batches := make([]Batch, prm.Hosts)
	bytesOut := make([]int64, prm.Hosts)
	buf := h.Space().Alloc(prm.ChunkSize, 4096)

	var localKeys []uint64
	flush := func(d int) {
		if batches[d].Count == 0 {
			return
		}
		b := batches[d]
		b.From = j
		size := b.Count * prm.RecordSize
		if d == j {
			// Local records stay: count them directly.
			*count += b.Count
			*sum += b.KeySum
			if prm.LocalSort {
				localKeys = append(localKeys, b.Keys...)
			}
		} else {
			h.SendMessage(p, &san.Message{
				Hdr:     san.Header{Dst: hostIDs[d], Type: san.Data, Addr: recvAddr, Flow: distFlow + int64(j)},
				Size:    size,
				Payload: b,
			}, buf)
		}
		batches[d] = Batch{}
		bytesOut[d] = 0
	}

	apps.StreamChunks(p, h, c.Store(j).ID(), "part", perNodeBytes, prm.ChunkSize, buf,
		cfg.Outstanding(), func(off, n int64, _ []any) {
			lo, hi := recordsIn(prm, j, off, off+n)
			for i := lo; i < hi; i++ {
				rel := i - int64(j)*perNode
				h.CPU().Load(p, buf+(rel%(prm.ChunkSize/prm.RecordSize))*prm.RecordSize)
				h.CPU().Compute(p, prm.HostDistInstr)
				k := Key(i)
				d := Dest(k, prm.Hosts)
				batches[d].Count++
				batches[d].KeySum += k
				if prm.LocalSort {
					batches[d].Keys = append(batches[d].Keys, k)
				}
				bytesOut[d] += prm.RecordSize
				if bytesOut[d] >= prm.BatchSize {
					flush(d)
				}
			}
		})
	for d := 0; d < prm.Hosts; d++ {
		flush(d)
		if d != j {
			h.SendMessage(p, &san.Message{
				Hdr:     san.Header{Dst: hostIDs[d], Type: san.Data, Addr: recvAddr, Flow: distFlow + int64(j)},
				Size:    64,
				Payload: Batch{End: true, From: j},
			}, buf)
		}
	}
	var keys []uint64
	if prm.LocalSort {
		keys = append(keys, localKeys...)
	}
	drainIncoming(p, h, prm, prm.Hosts-1, count, sum, &keys)
	if prm.LocalSort {
		if !localSort(p, h, prm, keys) {
			panic("psort: local sort produced unsorted keys")
		}
	}
}

// runActiveNode streams the local partition at the switch; node 0 also owns
// the handler invocation. Every node then drains its assigned records.
func runActiveNode(p *sim.Proc, c *cluster.Cluster, h *host.Host, j int,
	cfg apps.Config, prm Params, hostIDs []san.NodeID, count *int64, sum *uint64) {
	perNodeBytes := (prm.Records / int64(prm.Hosts)) * prm.RecordSize
	sw := c.Switch(0)
	if j == 0 {
		h.SendMessage(p, &san.Message{
			Hdr:  san.Header{Dst: sw.ID(), Type: san.ActiveMsg, HandlerID: handlerID, Addr: argBase},
			Size: 64,
			Payload: sortArgs{
				PerNodeBytes: perNodeBytes, Hosts: prm.Hosts,
				BatchSize: prm.BatchSize, HostIDs: hostIDs, Initiator: h.ID(),
			},
		}, 0)
	}
	apps.StreamToSwitch(p, h, c.Store(j).ID(), "part", perNodeBytes, prm.ActiveChunk,
		sw.ID(), streamBase(j), 0, 0x6040+int64(j), cfg.Outstanding())
	// One "end" batch arrives from the switch.
	var keys []uint64
	drainIncoming(p, h, prm, 1, count, sum, &keys)
	if prm.LocalSort {
		if !localSort(p, h, prm, keys) {
			panic("psort: local sort produced unsorted keys")
		}
	}
	if j == 0 {
		h.RecvFlow(p, sw.ID(), doneFlow)
	}
}

// drainIncoming consumes redistribution batches until the expected number
// of End markers arrive, collecting keys when the local-sort phase is on.
func drainIncoming(p *sim.Proc, h *host.Host, prm Params, ends int, count *int64, sum *uint64, keys *[]uint64) {
	for ends > 0 {
		comp := h.RecvAny(p)
		b, ok := comp.Payloads[0].(Batch)
		if !ok {
			continue
		}
		if b.End {
			ends--
			continue
		}
		*count += b.Count
		*sum += b.KeySum
		if prm.LocalSort && keys != nil {
			*keys = append(*keys, b.Keys...)
		}
		h.CPU().Compute(p, prm.HostRecvInstr*b.Count)
	}
}

// localSort runs the paper's second phase on one node: a real sort of the
// received keys, charged as n log2 n comparisons plus the merge passes'
// memory traffic. It reports whether the result is sorted.
func localSort(p *sim.Proc, h *host.Host, prm Params, keys []uint64) bool {
	n := int64(len(keys))
	if n == 0 {
		return true
	}
	logN := int64(1)
	for v := n; v > 1; v >>= 1 {
		logN++
	}
	region := h.Space().AllocRegion(n*8, 4096)
	h.CPU().Compute(p, prm.SortInstrPerCmp*n*logN)
	for pass := int64(0); pass < logN; pass++ {
		h.CPU().TouchRange(p, region.Base, region.Len, cache.Load)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for i := 1; i < len(keys); i++ {
		if keys[i-1] > keys[i] {
			return false
		}
	}
	return true
}

// RunAll executes the four configurations (paper Figures 13/14).
func RunAll(prm Params) *stats.Result {
	res := &stats.Result{ID: "fig13", Title: "Parallel sort (distribution phase): time, host utilization, per-host traffic"}
	for _, cfg := range apps.AllConfigs {
		res.Runs = append(res.Runs, Run(cfg, prm))
	}
	res.Bars = apps.StandardBars(res, 1)
	return res
}
