package reduce

import (
	"testing"

	"activesan/internal/sim"
)

func TestVectorsDeterministic(t *testing.T) {
	a := Vector(3, 64)
	b := Vector(3, 64)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("vector generation not deterministic")
		}
	}
}

func TestSliceBoundsPartition(t *testing.T) {
	for _, p := range []int{2, 3, 4, 8, 64, 128} {
		covered := 0
		prev := 0
		for j := 0; j < p; j++ {
			lo, hi := sliceBounds(j, p, 64)
			if lo != prev {
				t.Fatalf("p=%d: slice %d starts at %d, want %d", p, j, lo, prev)
			}
			covered += hi - lo
			prev = hi
		}
		if covered != 64 {
			t.Fatalf("p=%d: slices cover %d elems, want 64", p, covered)
		}
	}
}

func TestReduceCorrectBothModes(t *testing.T) {
	prm := DefaultParams()
	for _, kind := range []Kind{ToOne, Distributed} {
		for _, p := range []int{2, 8, 16} {
			for _, active := range []bool{false, true} {
				r := Run(kind, active, p, prm)
				if !r.Correct {
					t.Errorf("%s p=%d active=%v: wrong result", kind, p, active)
				}
				if r.Latency <= 0 {
					t.Errorf("%s p=%d active=%v: no latency recorded", kind, p, active)
				}
			}
		}
	}
}

func TestTable2Semantics(t *testing.T) {
	// Table 2: Distributed Reduce leaves y_i at node i; Reduce-to-one
	// leaves the whole y at node 0. Both must equal the element-wise sum.
	prm := DefaultParams()
	want := ExpectedSum(8, prm.Elems)
	one := Run(ToOne, true, 8, prm)
	dist := Run(Distributed, true, 8, prm)
	for i := range want {
		if one.Final[i] != want[i] {
			t.Fatalf("reduce-to-one element %d = %d, want %d", i, one.Final[i], want[i])
		}
		if dist.Final[i] != want[i] {
			t.Fatalf("distributed element %d = %d, want %d", i, dist.Final[i], want[i])
		}
	}
}

func TestShapeReduceSpeedupGrows(t *testing.T) {
	// Paper Figures 15/16: the active switch tree scales as log_{N/2}(p)
	// vs the MST's log_2(p), so speedup grows with node count and is
	// substantial at 128 nodes.
	if testing.Short() {
		t.Skip("sweeps up to 128 nodes")
	}
	prm := DefaultParams()
	for _, kind := range []Kind{ToOne, Distributed} {
		var prev float64
		speedup := func(p int) float64 {
			rn := Run(kind, false, p, prm)
			ra := Run(kind, true, p, prm)
			return float64(rn.Latency) / float64(ra.Latency)
		}
		s16 := speedup(16)
		s64 := speedup(64)
		s128 := speedup(128)
		if !(s64 > s16) || !(s128 > s16) {
			t.Errorf("%s: speedup not growing: s16=%.2f s64=%.2f s128=%.2f", kind, s16, s64, s128)
		}
		if s128 < 2.0 {
			t.Errorf("%s: speedup at 128 nodes = %.2f, want well above 2", kind, s128)
		}
		prev = s128
		_ = prev
	}
}

func TestActiveBeatsLowerBoundAtScale(t *testing.T) {
	// The paper's point: the active reduction beats ceil(log2 p)(a+l), the
	// host-side lower bound. Approximate a+l by the measured p=2 normal
	// latency (one round) and check at p=64.
	prm := DefaultParams()
	oneRound := Run(ToOne, false, 2, prm).Latency
	bound := 6 * oneRound // ceil(log2 64) = 6 rounds
	got := Run(ToOne, true, 64, prm).Latency
	if got >= bound {
		t.Errorf("active latency %v does not beat MST lower bound %v", got, bound)
	}
}

func TestSweepSeries(t *testing.T) {
	res := Sweep(ToOne, []int{2, 8, 32}, DefaultParams())
	if len(res.Series) != 3 {
		t.Fatalf("series = %d, want 3 (normal, active, speedup)", len(res.Series))
	}
	for _, s := range res.Series[:2] {
		if len(s.X) != 3 {
			t.Fatalf("series %q has %d points", s.Name, len(s.X))
		}
		for _, y := range s.Y {
			if y <= 0 {
				t.Fatalf("series %q has non-positive latency", s.Name)
			}
		}
	}
	for _, n := range res.Notes {
		if len(n) >= 9 && n[:9] == "p=INCORRE" {
			t.Fatalf("sweep recorded incorrect results: %s", n)
		}
	}
	_ = sim.Time(0)
}

func TestReduceToAll(t *testing.T) {
	// The paper: "the results for Reduce-to-all are similar to those for
	// Reduce-to-one" — verify correctness and that the active latency is
	// within ~2x of reduce-to-one (the extra broadcast fan-out).
	prm := DefaultParams()
	for _, p := range []int{4, 16} {
		for _, active := range []bool{false, true} {
			r := Run(ToAll, active, p, prm)
			if !r.Correct {
				t.Errorf("reduce-to-all p=%d active=%v: wrong result", p, active)
			}
		}
	}
	one := Run(ToOne, true, 16, prm)
	all := Run(ToAll, true, 16, prm)
	if all.Latency > 2*one.Latency {
		t.Errorf("reduce-to-all (%v) not similar to reduce-to-one (%v)", all.Latency, one.Latency)
	}
}

func TestNonPowerOfTwoNodeCounts(t *testing.T) {
	// Binomial trees and switch trees must both handle ragged node counts
	// (partial leaves, odd fan-in).
	prm := DefaultParams()
	counts := []int{3, 5, 12, 24, 100}
	if testing.Short() {
		counts = []int{3, 12}
	}
	for _, p := range counts {
		for _, active := range []bool{false, true} {
			for _, kind := range []Kind{ToOne, Distributed} {
				r := Run(kind, active, p, prm)
				if !r.Correct {
					t.Errorf("%s p=%d active=%v: incorrect", kind, p, active)
				}
			}
		}
	}
}

func TestPipelinedReductions(t *testing.T) {
	// Back-to-back reductions overlap across tree levels: the amortized
	// per-round time of 16 rounds must beat the isolated latency, and every
	// round's result must be exact.
	prm := DefaultParams()
	const p = 32
	isolated := Run(ToOne, true, p, prm).Latency
	res := RunPipelined(p, 16, prm)
	if !res.Correct {
		t.Fatal("pipelined rounds produced wrong sums")
	}
	if res.PerRound >= isolated {
		t.Fatalf("pipelining gained nothing: per-round %v vs isolated %v", res.PerRound, isolated)
	}
}

func TestPipelinedSingleRoundMatchesIsolated(t *testing.T) {
	prm := DefaultParams()
	res := RunPipelined(8, 1, prm)
	if !res.Correct {
		t.Fatal("single pipelined round incorrect")
	}
	iso := Run(ToOne, true, 8, prm).Latency
	// Same machinery, round-tagged payloads: within 25%.
	ratio := float64(res.Total) / float64(iso)
	if ratio < 0.75 || ratio > 1.25 {
		t.Fatalf("single-round pipelined %v vs isolated %v (ratio %.2f)", res.Total, iso, ratio)
	}
}

func TestAllOperators(t *testing.T) {
	// The paper lists max, min, sum, product and bit-wise ops; all must
	// reduce correctly on both paths.
	for _, op := range []Op{OpSum, OpMax, OpMin, OpProd, OpOr, OpAnd} {
		prm := DefaultParams()
		prm.Op = op
		for _, active := range []bool{false, true} {
			r := Run(ToOne, active, 8, prm)
			if !r.Correct {
				t.Errorf("op=%s active=%v: wrong result", op, active)
			}
		}
	}
}
