// Package reduce reproduces the paper's collective-reduction benchmarks:
// Reduce-to-one and Distributed Reduce over 512-byte vectors on up to 128
// nodes. The normal case implements the minimum-spanning-tree (binomial)
// algorithm on the hosts, whose latency lower bound is ceil(log2 p)(a+l);
// the active case sends every vector as an active message to its leaf
// switch, reduces inside the switch tree (arity N/2 = 8), and delivers the
// result with latency a + g + ceil(log_{N/2} p) d — the paper's Figures
// 15/16, with speedups up to ~5.6x/5.9x at 128 nodes.
package reduce

import (
	"time"
	"fmt"
	"runtime"
	"sync"

	"activesan/internal/apps"
	"activesan/internal/aswitch"
	"activesan/internal/cache"
	"activesan/internal/cluster"
	"activesan/internal/host"
	"activesan/internal/san"
	"activesan/internal/sim"
	"activesan/internal/stats"
)

// Kind selects the reduction variant.
type Kind int

// The paper evaluates Reduce-to-one and Distributed Reduce and notes that
// Reduce-to-all "is similar to Reduce-to-one"; all three are implemented.
const (
	ToOne Kind = iota
	Distributed
	ToAll
)

func (k Kind) String() string {
	switch k {
	case Distributed:
		return "distributed-reduce"
	case ToAll:
		return "reduce-to-all"
	default:
		return "reduce-to-one"
	}
}

// Op is the reduction operator. The paper: "often maximum, minimum, sum,
// product, or logical bit-wise operations"; the evaluation uses addition.
type Op int

// Reduction operators.
const (
	OpSum Op = iota
	OpMax
	OpMin
	OpProd
	OpOr
	OpAnd
)

func (o Op) String() string {
	switch o {
	case OpMax:
		return "max"
	case OpMin:
		return "min"
	case OpProd:
		return "prod"
	case OpOr:
		return "or"
	case OpAnd:
		return "and"
	default:
		return "sum"
	}
}

// Apply combines two elements.
func (o Op) Apply(a, b int64) int64 {
	switch o {
	case OpMax:
		if a > b {
			return a
		}
		return b
	case OpMin:
		if a < b {
			return a
		}
		return b
	case OpProd:
		return a * b
	case OpOr:
		return a | b
	case OpAnd:
		return a & b
	default:
		return a + b
	}
}

// Identity is the operator's neutral element.
func (o Op) Identity() int64 {
	switch o {
	case OpMax:
		return -1 << 62
	case OpMin:
		return 1<<62 - 1
	case OpProd:
		return 1
	case OpOr:
		return 0
	case OpAnd:
		return -1
	default:
		return 0
	}
}

// Params sizes the workload and calibrates costs.
type Params struct {
	// VectorBytes is each node's contribution (paper: 512).
	VectorBytes int64
	// Elems is the vector length in int64 values.
	Elems int
	// Op is the combining operator (paper's evaluation: addition).
	Op Op

	// HostAddInstr is the host's per-element combine cost.
	HostAddInstr int64
	// SwitchAddCycles is the switch CPU's per-element combine cost.
	SwitchAddCycles int64
}

// DefaultParams returns the paper's 512-byte vectors.
func DefaultParams() Params {
	return Params{
		VectorBytes:     512,
		Elems:           64,
		HostAddInstr:    4,
		SwitchAddCycles: 1,
	}
}

// Vector is node j's deterministic input vector.
func Vector(j int, elems int) []int64 {
	v := make([]int64, elems)
	for i := range v {
		v[i] = int64(apps.Mix64(uint64(j)<<20|uint64(i)) % 1000)
	}
	return v
}

// ExpectedSum is the addition oracle (the paper's operator).
func ExpectedSum(p, elems int) []int64 { return Expected(OpSum, p, elems) }

// Expected is the reduction oracle for any operator.
func Expected(op Op, p, elems int) []int64 {
	out := make([]int64, elems)
	for i := range out {
		out[i] = op.Identity()
	}
	for j := 0; j < p; j++ {
		for i, v := range Vector(j, elems) {
			out[i] = op.Apply(out[i], v)
		}
	}
	return out
}

const handlerID = 16

const (
	resultFlow = 0x7050
	mstFlow    = 0x7060 // + round index
)

// swState is one switch's per-handler reduction state.
type swState struct {
	acc      []int64
	got      int
	expected int
	parent   san.NodeID
	argAddr  int64 // mapped address this switch writes at its parent
	kind     Kind
	hosts    []san.NodeID
	vecBytes int64
	accBase  int64 // switch-memory address of the accumulator
}

// sliceMsg carries a distributed-reduce slice.
type sliceMsg struct {
	Lo   int
	Vals []int64
}

// Result is one reduction run's outcome. EngineWall is the host wall-clock
// the simulation run phase took (the Engine.Run or Group.Run call alone, no
// cluster construction or teardown) — what the partitioned-engine benchmarks
// compare.
type Result struct {
	Latency    sim.Time
	Final      []int64
	Correct    bool
	EngineWall time.Duration
}

// sliceBounds gives node j's share [lo, hi) of an elems-long vector.
func sliceBounds(j, p, elems int) (lo, hi int) {
	lo = j * elems / p
	hi = (j + 1) * elems / p
	return lo, hi
}

// Run executes one reduction and returns its latency and verified result.
// The cluster honors the process-wide -topology default (tree or fat tree).
func Run(kind Kind, active bool, p int, prm Params) Result {
	eng := sim.NewEngine()
	c := cluster.BuildCollective(eng, cluster.DefaultTreeConfig(p))
	return RunOn(eng, c, kind, active, p, prm)
}

// RunOn executes the reduction on a prebuilt cluster with a populated Tree
// (a reduction tree or a fat tree's aggregation overlay). In the active
// case the combine handler is placed per stage: only switches participating
// in the aggregation tree — leaves/edges ingesting host vectors, interior
// aggregation switches combining partials, the root delivering — get the
// handler; pass-through switches stay conventional.
func RunOn(eng *sim.Engine, c *cluster.Cluster, kind Kind, active bool, p int, prm Params) Result {
	elems := prm.Elems

	hostIDs := make([]san.NodeID, p)
	for j, h := range c.Hosts {
		hostIDs[j] = h.ID()
	}

	// Assign each contributor (host or child switch) a distinct argument
	// slot at its parent so vectors from different ports admit in parallel.
	slot := make(map[san.NodeID]int64)
	if active {
		perParent := make(map[san.NodeID]int64)
		for _, h := range c.Hosts {
			leaf := c.Tree.HostLeaf[h.ID()]
			slot[h.ID()] = perParent[leaf]
			perParent[leaf]++
		}
		for _, sw := range c.Switches {
			if par := c.Tree.Parent[sw.ID()]; par != san.NoNode {
				slot[sw.ID()] = perParent[par]
				perParent[par]++
			}
		}
		for _, sw := range c.Switches {
			if c.Tree.Children[sw.ID()] == 0 {
				continue // not in the aggregation tree: no handler placed
			}
			acc := make([]int64, elems)
			for i := range acc {
				acc[i] = prm.Op.Identity()
			}
			st := &swState{
				acc:      acc,
				expected: c.Tree.Children[sw.ID()],
				parent:   c.Tree.Parent[sw.ID()],
				argAddr:  slot[sw.ID()] * san.MTU,
				kind:     kind,
				hosts:    hostIDs,
				vecBytes: prm.VectorBytes,
				accBase:  sw.Space().Alloc(prm.VectorBytes, 64),
			}
			sw.SetState(handlerID, st)
			sw.Register(handlerID, "reduce", reduceHandler(prm))
		}
	}

	c.Start()
	final := make([]int64, elems)
	var finish sim.Time
	var wall time.Duration
	if c.Group == nil {
		setFinish := func(t sim.Time) {
			if t > finish {
				finish = t
			}
		}
		var wg sim.WaitGroup
		wg.Add(p)
		for j := 0; j < p; j++ {
			j := j
			h := c.Host(j)
			eng.Spawn(fmt.Sprintf("red-h%d", j), func(proc *sim.Proc) {
				defer wg.Done()
				if active {
					runActiveHost(proc, c, h, j, p, kind, prm, slot[h.ID()], final, setFinish)
				} else {
					runMSTHost(proc, c, h, j, p, kind, prm, hostIDs, final, setFinish)
				}
			})
		}
		eng.Spawn("red-main", func(proc *sim.Proc) { wg.Wait(proc) })
		zr := time.Now()
		eng.Run()
		wall = time.Since(zr)
	} else {
		// Partitioned: each host's collective process runs on its own
		// partition's engine. Group.Run drains every partition, so no
		// cross-engine WaitGroup is needed; finish times land in per-host
		// slots (each touched only by its own partition) and fold after the
		// barrier loop ends. Hosts writing `final` already touch disjoint
		// elements (or only host 0 writes), so the snapshot is race-free.
		finishes := make([]sim.Time, p)
		for j := 0; j < p; j++ {
			j := j
			h := c.Host(j)
			c.EngineFor(h.ID()).Spawn(fmt.Sprintf("red-h%d", j), func(proc *sim.Proc) {
				setFinish := func(t sim.Time) {
					if t > finishes[j] {
						finishes[j] = t
					}
				}
				if active {
					runActiveHost(proc, c, h, j, p, kind, prm, slot[h.ID()], final, setFinish)
				} else {
					runMSTHost(proc, c, h, j, p, kind, prm, hostIDs, final, setFinish)
				}
			})
		}
		zr := time.Now()
		c.Group.Run()
		wall = time.Since(zr)
		for _, t := range finishes {
			if t > finish {
				finish = t
			}
		}
	}
	c.Shutdown()

	want := Expected(prm.Op, p, elems)
	ok := true
	for i := range want {
		if final[i] != want[i] {
			ok = false
			break
		}
	}
	return Result{Latency: finish, Final: final, Correct: ok, EngineWall: wall}
}

// reduceHandler combines arriving vectors and propagates partials up the
// switch tree; the root delivers per the reduction kind.
func reduceHandler(prm Params) aswitch.HandlerFunc {
	return func(x *aswitch.Ctx) {
		st := x.State().(*swState)
		vec := x.Args().([]int64)
		// Read the vector out of the data buffer (valid-bit stalls model
		// the overlap of copy and compute), then release it.
		if b, ok := x.CPU().ATB().Lookup(x.BaseAddr()); ok {
			x.ReadAll(b)
			x.DeallocateBuf(b)
		}
		x.Compute(prm.SwitchAddCycles * int64(len(vec)))
		for i, v := range vec {
			// The accumulator lives in switch memory; one line in four is
			// touched architecturally (it fits the D-cache).
			if i%4 == 0 {
				x.MemLoad(st.accBase + int64(i)*8)
			}
			st.acc[i] = prm.Op.Apply(st.acc[i], v)
		}
		st.got++
		if st.got < st.expected {
			return
		}
		acc := append([]int64(nil), st.acc...)
		if st.parent != san.NoNode {
			x.Send(aswitch.SendSpec{
				Dst: st.parent, Type: san.ActiveMsg, HandlerID: handlerID,
				Addr: st.argAddr, Size: st.vecBytes, Payload: acc,
			})
			return
		}
		if st.kind == ToOne {
			x.Send(aswitch.SendSpec{
				Dst: st.hosts[0], Type: san.Data, Addr: 0x1000,
				Size: st.vecBytes, Flow: resultFlow, Payload: acc,
			})
			return
		}
		if st.kind == ToAll {
			// Broadcast the whole vector to every node.
			for _, dst := range st.hosts {
				x.Send(aswitch.SendSpec{
					Dst: dst, Type: san.Data, Addr: 0x1000,
					Size: st.vecBytes, Flow: resultFlow, Payload: acc,
				})
			}
			return
		}
		// Distributed: node j receives its slice of the result.
		p := len(st.hosts)
		for j, dst := range st.hosts {
			lo, hi := sliceBounds(j, p, len(acc))
			size := int64(hi-lo) * 8
			if size <= 0 {
				size = 8
			}
			x.Send(aswitch.SendSpec{
				Dst: dst, Type: san.Data, Addr: 0x1000,
				Size: size, Flow: resultFlow, Payload: sliceMsg{Lo: lo, Vals: acc[lo:hi]},
			})
		}
	}
}

// runActiveHost sends the node's vector to its leaf switch and awaits any
// result due to it.
func runActiveHost(p *sim.Proc, c *cluster.Cluster, h *host.Host, j, nodes int, kind Kind,
	prm Params, argSlot int64, final []int64, setFinish func(sim.Time)) {
	vecRegion := h.Space().Alloc(prm.VectorBytes, 64)
	vec := Vector(j, prm.Elems)
	h.CPU().TouchRange(p, vecRegion, prm.VectorBytes, cache.Load)
	h.SendMessage(p, &san.Message{
		Hdr: san.Header{
			Dst: c.Tree.HostLeaf[h.ID()], Type: san.ActiveMsg,
			HandlerID: handlerID, Addr: argSlot * san.MTU,
		},
		Size:    prm.VectorBytes,
		Payload: vec,
	}, vecRegion)

	root := c.Tree.Root
	switch kind {
	case ToOne:
		if j != 0 {
			return
		}
		comp := h.RecvFlow(p, root, resultFlow)
		h.CPU().BusyFor(p, h.RecvCost())
		copy(final, comp.Payloads[0].([]int64))
		setFinish(p.Now())
	case ToAll:
		comp := h.RecvFlow(p, root, resultFlow)
		h.CPU().BusyFor(p, h.RecvCost())
		if j == 0 {
			copy(final, comp.Payloads[0].([]int64))
		}
		setFinish(p.Now())
	case Distributed:
		comp := h.RecvFlow(p, root, resultFlow)
		h.CPU().BusyFor(p, h.RecvCost())
		s := comp.Payloads[0].(sliceMsg)
		copy(final[s.Lo:], s.Vals)
		setFinish(p.Now())
	}
}

// runMSTHost executes one node of the binomial (MST) reduction; for
// Distributed, node 0 scatters the slices afterwards.
func runMSTHost(p *sim.Proc, c *cluster.Cluster, h *host.Host, j, nodes int, kind Kind,
	prm Params, hostIDs []san.NodeID, final []int64, setFinish func(sim.Time)) {
	vecRegion := h.Space().Alloc(prm.VectorBytes, 64)
	vec := Vector(j, prm.Elems)
	h.CPU().TouchRange(p, vecRegion, prm.VectorBytes, cache.Load)

	for k := 1; k < nodes; k <<= 1 {
		if j&k != 0 {
			h.SendMessage(p, &san.Message{
				Hdr:     san.Header{Dst: hostIDs[j-k], Type: san.Data, Addr: 0x1000, Flow: mstFlow + int64(k)},
				Size:    prm.VectorBytes,
				Payload: vec,
			}, vecRegion)
			break
		}
		if j+k < nodes {
			comp := h.RecvFlow(p, hostIDs[j+k], mstFlow+int64(k))
			h.CPU().BusyFor(p, h.RecvCost())
			other := comp.Payloads[0].([]int64)
			// Read the freshly DMA'd vector (cold lines) and combine.
			h.CPU().TouchRange(p, 0x1000, prm.VectorBytes, cache.Load)
			h.CPU().TouchRange(p, vecRegion, prm.VectorBytes, cache.Load)
			h.CPU().Compute(p, prm.HostAddInstr*int64(prm.Elems))
			for i := range vec {
				vec[i] = prm.Op.Apply(vec[i], other[i])
			}
		}
	}

	if kind == ToOne {
		if j == 0 {
			copy(final, vec)
			setFinish(p.Now())
		}
		return
	}

	if kind == ToAll {
		// Binomial broadcast of the full vector down the MST.
		span := 1
		for span < nodes {
			span <<= 1
		}
		hold := vec
		if j != 0 {
			src := j &^ (j & -j)
			comp := h.RecvFlow(p, hostIDs[src], resultFlow+int64(j))
			h.CPU().BusyFor(p, h.RecvCost())
			hold = comp.Payloads[0].([]int64)
		}
		for k := span >> 1; k >= 1; k >>= 1 {
			if j%k != 0 || j&k != 0 {
				continue
			}
			d := j + k
			if d >= nodes {
				continue
			}
			h.SendMessage(p, &san.Message{
				Hdr:     san.Header{Dst: hostIDs[d], Type: san.Data, Addr: 0x1000, Flow: resultFlow + int64(d)},
				Size:    prm.VectorBytes,
				Payload: hold,
			}, vecRegion)
		}
		if j == 0 {
			copy(final, hold)
		}
		setFinish(p.Now())
		return
	}

	// Distributed: binomial scatter down the same MST. Node j owns range
	// [j, j+span) once it holds data; each round it hands the upper half
	// of its range to node j+k.
	span := 1
	for span < nodes {
		span <<= 1
	}
	var hold []int64
	if j == 0 {
		hold = vec
	} else {
		// Wait for our range's data from the binomial parent.
		src := j &^ (j & -j) // clear lowest set bit
		comp := h.RecvFlow(p, hostIDs[src], resultFlow+int64(j))
		h.CPU().BusyFor(p, h.RecvCost())
		s := comp.Payloads[0].(sliceMsg)
		hold = make([]int64, prm.Elems)
		copy(hold[s.Lo:], s.Vals)
	}
	for k := span >> 1; k >= 1; k >>= 1 {
		if j%k != 0 || j&k != 0 {
			continue
		}
		d := j + k
		if d >= nodes {
			continue
		}
		// Send node d the data for range [d, d+k).
		lo, _ := sliceBounds(d, nodes, prm.Elems)
		end := d + k
		if end > nodes {
			end = nodes
		}
		_, hi := sliceBounds(end-1, nodes, prm.Elems)
		size := int64(hi-lo) * 8
		if size <= 0 {
			size = 8
		}
		h.SendMessage(p, &san.Message{
			Hdr:     san.Header{Dst: hostIDs[d], Type: san.Data, Addr: 0x1000, Flow: resultFlow + int64(d)},
			Size:    size,
			Payload: sliceMsg{Lo: lo, Vals: hold[lo:hi]},
		}, vecRegion)
	}
	lo, hi := sliceBounds(j, nodes, prm.Elems)
	copy(final[lo:hi], hold[lo:hi])
	setFinish(p.Now())
}

// Sweep runs normal and active reductions over the node counts and builds
// the paper's latency-vs-nodes figure with a speedup series.
func Sweep(kind Kind, nodeCounts []int, prm Params) *stats.Result {
	return SweepParallel(kind, nodeCounts, prm, 1)
}

// SweepParallel is Sweep with the node counts fanned over a pool of
// `workers` goroutines (each point simulates on its own engine). Series
// points stay in nodeCounts order whatever the completion order, so the
// result is identical to a sequential sweep. workers < 1 selects
// runtime.NumCPU().
func SweepParallel(kind Kind, nodeCounts []int, prm Params, workers int) *stats.Result {
	id := "fig15"
	if kind == Distributed {
		id = "fig16"
	}
	res := &stats.Result{ID: id, Title: fmt.Sprintf("Collective %s: latency vs nodes", kind)}
	if workers < 1 {
		workers = runtime.NumCPU()
	}
	if workers > len(nodeCounts) {
		workers = len(nodeCounts)
	}
	points := make([]struct{ normal, active Result }, len(nodeCounts))
	if workers <= 1 {
		for i, p := range nodeCounts {
			points[i].normal = Run(kind, false, p, prm)
			points[i].active = Run(kind, true, p, prm)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					points[i].normal = Run(kind, false, nodeCounts[i], prm)
					points[i].active = Run(kind, true, nodeCounts[i], prm)
				}
			}()
		}
		for i := range nodeCounts {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	var normal, active stats.Series
	normal.Name = "normal (MST)"
	active.Name = "active (switch tree)"
	for i, p := range nodeCounts {
		rn, ra := points[i].normal, points[i].active
		if !rn.Correct || !ra.Correct {
			res.Notes = append(res.Notes, fmt.Sprintf("p=%d: INCORRECT result (normal ok=%v, active ok=%v)", p, rn.Correct, ra.Correct))
		}
		normal.X = append(normal.X, float64(p))
		normal.Y = append(normal.Y, rn.Latency.Micros())
		active.X = append(active.X, float64(p))
		active.Y = append(active.Y, ra.Latency.Micros())
	}
	sp := stats.SpeedupSeries("speedup", normal, active)
	res.Series = []stats.Series{normal, active, sp}
	res.Notes = append(res.Notes, fmt.Sprintf("max speedup %.2fx", sp.MaxY()))
	return res
}

// DefaultNodeCounts is the paper's sweep (results shown up to 128 nodes).
var DefaultNodeCounts = []int{2, 4, 8, 16, 32, 64, 128}

// pipeVec is a round-tagged vector for pipelined reductions.
type pipeVec struct {
	Round int
	Vals  []int64
}

// pipeState tracks per-round partial sums at one switch.
type pipeState struct {
	rounds   map[int]*roundAcc
	expected int
	parent   san.NodeID
	argAddr  int64
	hosts    []san.NodeID
	vecBytes int64
	accBase  int64
}

type roundAcc struct {
	acc []int64
	got int
}

// PipelinedResult reports a multi-round active reduction.
type PipelinedResult struct {
	Total    sim.Time
	PerRound sim.Time
	Correct  bool
}

// RoundVector is node j's input for round r.
func RoundVector(j, r, elems int) []int64 {
	v := make([]int64, elems)
	for i := range v {
		v[i] = int64(apps.Mix64(uint64(j)<<24|uint64(r)<<12|uint64(i)) % 1000)
	}
	return v
}

// RunPipelined streams `rounds` back-to-back reduce-to-one operations
// through the switch tree. Because each tree level works on round r+1
// while the next level combines round r — "the switch can overlap the
// switch CPU execution with its duties as a normal switch" — amortized
// per-round time beats the isolated latency.
func RunPipelined(p int, rounds int, prm Params) PipelinedResult {
	eng := sim.NewEngine()
	c := cluster.BuildCollective(eng, cluster.DefaultTreeConfig(p))
	elems := prm.Elems

	hostIDs := make([]san.NodeID, p)
	for j, h := range c.Hosts {
		hostIDs[j] = h.ID()
	}
	slot := make(map[san.NodeID]int64)
	perParent := make(map[san.NodeID]int64)
	for _, h := range c.Hosts {
		leaf := c.Tree.HostLeaf[h.ID()]
		slot[h.ID()] = perParent[leaf]
		perParent[leaf]++
	}
	for _, sw := range c.Switches {
		if par := c.Tree.Parent[sw.ID()]; par != san.NoNode {
			slot[sw.ID()] = perParent[par]
			perParent[par]++
		}
	}
	for _, sw := range c.Switches {
		if c.Tree.Children[sw.ID()] == 0 {
			continue // not in the aggregation tree: no handler placed
		}
		st := &pipeState{
			rounds:   make(map[int]*roundAcc),
			expected: c.Tree.Children[sw.ID()],
			parent:   c.Tree.Parent[sw.ID()],
			argAddr:  slot[sw.ID()] * san.MTU,
			hosts:    hostIDs,
			vecBytes: prm.VectorBytes,
			accBase:  sw.Space().Alloc(prm.VectorBytes*4, 64),
		}
		sw.SetState(handlerID, st)
		sw.Register(handlerID, "reduce-pipe", func(x *aswitch.Ctx) {
			s := x.State().(*pipeState)
			pv := x.Args().(pipeVec)
			if b, ok := x.CPU().ATB().Lookup(x.BaseAddr()); ok {
				x.ReadAll(b)
				x.DeallocateBuf(b)
			}
			ra := s.rounds[pv.Round]
			if ra == nil {
				ra = &roundAcc{acc: make([]int64, elems)}
				s.rounds[pv.Round] = ra
			}
			x.Compute(prm.SwitchAddCycles * int64(elems))
			for i, v := range pv.Vals {
				// Same accumulator D-cache charging as the isolated
				// handler; rounds rotate through a small arena.
				if i%4 == 0 {
					x.MemLoad(s.accBase + int64(pv.Round%4)*s.vecBytes + int64(i)*8)
				}
				ra.acc[i] += v
			}
			ra.got++
			if ra.got < s.expected {
				return
			}
			out := pipeVec{Round: pv.Round, Vals: ra.acc}
			delete(s.rounds, pv.Round)
			if s.parent != san.NoNode {
				x.Send(aswitch.SendSpec{
					Dst: s.parent, Type: san.ActiveMsg, HandlerID: handlerID,
					Addr: s.argAddr, Size: s.vecBytes, Payload: out,
				})
				return
			}
			x.Send(aswitch.SendSpec{
				Dst: s.hosts[0], Type: san.Data, Addr: 0x1000,
				Size: s.vecBytes, Flow: resultFlow, Payload: out,
			})
		})
	}
	c.Start()

	correct := true
	var finish sim.Time
	var wg sim.WaitGroup
	wg.Add(p)
	for j := 0; j < p; j++ {
		j := j
		h := c.Host(j)
		eng.Spawn(fmt.Sprintf("pipe-h%d", j), func(proc *sim.Proc) {
			defer wg.Done()
			leaf := c.Tree.HostLeaf[h.ID()]
			vecRegion := h.Space().Alloc(prm.VectorBytes, 64)
			for r := 0; r < rounds; r++ {
				// Read this round's vector out of host memory first, as
				// the isolated path does.
				h.CPU().TouchRange(proc, vecRegion, prm.VectorBytes, cache.Load)
				h.SendMessage(proc, &san.Message{
					Hdr: san.Header{
						Dst: leaf, Type: san.ActiveMsg,
						HandlerID: handlerID, Addr: slot[h.ID()] * san.MTU,
					},
					Size:    prm.VectorBytes,
					Payload: pipeVec{Round: r, Vals: RoundVector(j, r, elems)},
				}, 0)
			}
			if j != 0 {
				return
			}
			for r := 0; r < rounds; r++ {
				comp := h.RecvFlow(proc, c.Tree.Root, resultFlow)
				h.CPU().BusyFor(proc, h.RecvCost())
				pv := comp.Payloads[0].(pipeVec)
				want := make([]int64, elems)
				for src := 0; src < p; src++ {
					for i, v := range RoundVector(src, pv.Round, elems) {
						want[i] += v
					}
				}
				for i := range want {
					if pv.Vals[i] != want[i] {
						correct = false
					}
				}
			}
			finish = proc.Now()
		})
	}
	eng.Spawn("pipe-main", func(proc *sim.Proc) { wg.Wait(proc) })
	eng.Run()
	c.Shutdown()
	return PipelinedResult{
		Total:    finish,
		PerRound: finish / sim.Time(rounds),
		Correct:  correct,
	}
}

// RunWithInterrupts repeats a reduction with interrupt-driven receives
// instead of polling — the paper notes its polling choice "favors the
// normal case", and this quantifies by how much.
func RunWithInterrupts(kind Kind, active bool, p int, prm Params) Result {
	eng := sim.NewEngine()
	cfg := cluster.DefaultTreeConfig(p)
	cfg.Host.OS.InterruptRecv = true
	return RunOn(eng, cluster.BuildCollective(eng, cfg), kind, active, p, prm)
}
