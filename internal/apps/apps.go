// Package apps provides the shared harness for the paper's nine benchmarks:
// the four-configuration matrix (normal / normal+pref / active /
// active+pref), deterministic workload generation, the host-side streaming
// drivers, and metric collection into stats.Run values.
package apps

import (
	"fmt"

	"activesan/internal/cluster"
	"activesan/internal/fault"
	"activesan/internal/host"
	"activesan/internal/metrics"
	"activesan/internal/san"
	"activesan/internal/sim"
	"activesan/internal/stats"
	"activesan/internal/telemetry"
)

// Config selects one of the paper's four benchmark configurations.
type Config int

// The configuration matrix of Section 5: "normal" runs on the host with
// non-active switches; "+pref" issues two outstanding I/O requests;
// "active" splits the program between host and switch handler.
const (
	Normal Config = iota
	NormalPref
	Active
	ActivePref
)

// AllConfigs lists the four configurations in the paper's order.
var AllConfigs = []Config{Normal, NormalPref, Active, ActivePref}

func (c Config) String() string {
	switch c {
	case Normal:
		return "normal"
	case NormalPref:
		return "normal+pref"
	case Active:
		return "active"
	case ActivePref:
		return "active+pref"
	default:
		return fmt.Sprintf("config(%d)", int(c))
	}
}

// IsActive reports whether the switch runs a handler in this configuration.
func (c Config) IsActive() bool { return c == Active || c == ActivePref }

// Outstanding returns how many I/O requests are kept in flight (the paper's
// "+pref" cases issue two).
func (c Config) Outstanding() int {
	if c == NormalPref || c == ActivePref {
		return 2
	}
	return 1
}

// Rand is a splitmix64 generator: deterministic, seedable, and cheap enough
// to regenerate workload content on the fly (so multi-hundred-megabyte
// tables never need materializing).
type Rand struct{ state uint64 }

// NewRand seeds a generator.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// Next returns the next 64-bit value.
func (r *Rand) Next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n).
func (r *Rand) Intn(n int64) int64 {
	if n <= 0 {
		panic("apps: Intn of non-positive bound")
	}
	return int64(r.Next() % uint64(n))
}

// Mix64 hashes x with the splitmix64 finalizer — the pure function used to
// derive record contents from indices.
func Mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Collect assembles a stats.Run from a finished cluster, including the
// full secondary-metric snapshot of every component.
func Collect(cfg Config, c *cluster.Cluster, end sim.Time, extra map[string]any) stats.Run {
	run := stats.Run{
		Config:  cfg.String(),
		Time:    end,
		Hosts:   len(c.Hosts),
		Extra:   extra,
		Metrics: metrics.Collect(c, end),
	}
	for _, h := range c.Hosts {
		b := h.CPU().Breakdown()
		run.HostBusy += b.Busy
		run.HostStall += b.Stall
		run.Traffic += h.Traffic()
	}
	for _, sw := range c.Switches {
		for _, sc := range sw.CPUs() {
			b := sc.Timing().Breakdown()
			run.SwitchBusy += b.Busy
			run.SwitchStall += b.Stall
		}
	}
	return run
}

// HostBar and SwitchBar build the breakdown-figure bars the paper draws for
// each configuration ("n-HP", "a+p-SP", ...).
func HostBar(label string, r stats.Run) stats.Bar {
	return stats.BreakdownBar(label, r.HostBusy, r.HostStall, r.Time, r.Hosts)
}

// SwitchBar builds the switch-CPU bar of a run (callers pass the number of
// switch CPUs so multi-CPU runs show per-CPU averages).
func SwitchBar(label string, r stats.Run, cpus int) stats.Bar {
	return stats.BreakdownBar(label, r.SwitchBusy, r.SwitchStall, r.Time, cpus)
}

// StandardBars derives the paper's usual bar set from a four-run result:
// host bars for the normal cases, host+switch bars for the active cases.
func StandardBars(res *stats.Result, switchCPUs int) []stats.Bar {
	var bars []stats.Bar
	short := map[string]string{
		"normal":      "n",
		"normal+pref": "n+p",
		"active":      "a",
		"active+pref": "a+p",
	}
	for _, r := range res.Runs {
		s := short[r.Config]
		bars = append(bars, HostBar(s+"-HP", r))
		if r.Config == "active" || r.Config == "active+pref" {
			bars = append(bars, SwitchBar(s+"-SP", r, switchCPUs))
		}
	}
	return bars
}

// StreamChunks drives the normal-case host read loop: file [0,size) in
// chunk-sized requests with the configuration's outstanding count, calling
// process after each chunk completes (in order). process receives the chunk
// offset, its length and the payloads that arrived.
func StreamChunks(p *sim.Proc, h *host.Host, store san.NodeID, file string,
	size, chunk int64, buf int64, outstanding int,
	process func(off, n int64, payloads []any)) {
	type pending struct {
		tok *host.ReadToken
		off int64
		n   int64
	}
	var q []pending
	issue := func(off int64) {
		n := size - off
		if n > chunk {
			n = chunk
		}
		q = append(q, pending{tok: h.IssueRead(p, store, file, off, n, buf), off: off, n: n})
	}
	next := int64(0)
	for i := 0; i < outstanding && next < size; i++ {
		issue(next)
		next += chunk
	}
	for len(q) > 0 {
		head := q[0]
		q = q[1:]
		comp := h.WaitRead(p, head.tok)
		// The synchronous case (one outstanding request) is read, process,
		// read — the next request only goes out after the chunk is handled,
		// exactly the serial pattern whose I/O stalls the paper's "normal"
		// bars show. Prefetching issues ahead so processing overlaps I/O.
		if outstanding > 1 && next < size {
			issue(next)
			next += chunk
		}
		if process != nil {
			process(head.off, head.n, comp.Payloads)
		}
		if outstanding <= 1 && next < size {
			issue(next)
			next += chunk
		}
	}
}

// StreamToSwitch drives the active-case host side: issue chunk reads whose
// data streams to the switch handler, pacing on the storage node's
// completion notifications with the configuration's outstanding count. The
// stream is mapped at streamBase..streamBase+size in the handler's address
// space and carries the given flow and switch CPU id.
func StreamToSwitch(p *sim.Proc, h *host.Host, store san.NodeID, file string,
	size, chunk int64, sw san.NodeID, streamBase int64, cpuID int, flow int64,
	outstanding int) {
	var q []*host.ReadToken
	next := int64(0)
	issue := func() {
		n := size - next
		if n > chunk {
			n = chunk
		}
		q = append(q, h.IssueReadTo(p, store, file, next, n, sw, streamBase+next, san.Data, 0, cpuID, flow))
		next += chunk
	}
	for i := 0; i < outstanding && next < size; i++ {
		issue()
	}
	for len(q) > 0 {
		head := q[0]
		q = q[1:]
		h.WaitRead(p, head)
		if next < size {
			issue()
		}
	}
}

// RunIO is the single-host experiment template: it builds an I/O cluster,
// lets setup add files and handlers, runs app as host 0's program, and
// collects metrics over every host. extra returned by app lands in the
// run's Extra map.
func RunIO(ccfg cluster.IOClusterConfig, cfg Config,
	setup func(c *cluster.Cluster),
	app func(p *sim.Proc, c *cluster.Cluster) map[string]any) stats.Run {
	return RunIOScoped(ccfg, cfg, setup, app, nil)
}

// RunIOScoped is RunIO with host metrics restricted to the given host
// indices (nil = all hosts). Tar uses it so the remote archive target's
// activity does not dilute the initiating host's utilization and traffic.
func RunIOScoped(ccfg cluster.IOClusterConfig, cfg Config,
	setup func(c *cluster.Cluster),
	app func(p *sim.Proc, c *cluster.Cluster) map[string]any,
	hostIdx []int) stats.Run {
	run, _ := RunIOWith(ccfg, cfg, nil, 0, setup, app, hostIdx)
	return run
}

// RunIOWith is RunIOScoped with fault injection: plan (when non-nil) is
// armed on the cluster between setup and Start, with seed overriding the
// plan's own; a nil plan falls back to the process-wide default installed by
// the CLI's -faults flag. The returned injector is nil on a fault-free run.
func RunIOWith(ccfg cluster.IOClusterConfig, cfg Config,
	plan *fault.Plan, seed uint64,
	setup func(c *cluster.Cluster),
	app func(p *sim.Proc, c *cluster.Cluster) map[string]any,
	hostIdx []int) (stats.Run, *fault.Injector) {
	eng := sim.NewEngine()
	c := cluster.NewIOCluster(eng, ccfg)
	if setup != nil {
		setup(c)
	}
	var inj *fault.Injector
	if plan != nil {
		inj = fault.Arm(c, plan, seed)
	} else {
		inj = fault.ArmDefault(c)
	}
	rec := telemetry.MaybeAttach(c)
	c.Start()
	tl := metrics.StartTimelines(c, metrics.DefaultTimelineInterval)
	var end sim.Time
	var extra map[string]any
	eng.Spawn("app", func(p *sim.Proc) {
		extra = app(p, c)
		end = p.Now()
		// Stop inside the app process, at the workload's end: a live
		// sampler would keep the event queue non-empty forever.
		tl.Stop()
	})
	eng.Run()
	run := Collect(cfg, c, end, extra)
	tl.Into(run.Metrics)
	if rec != nil {
		rec.Into(run.Metrics)
	}
	if hostIdx != nil {
		run.HostBusy, run.HostStall, run.Traffic = 0, 0, 0
		run.Hosts = len(hostIdx)
		for _, i := range hostIdx {
			h := c.Host(i)
			b := h.CPU().Breakdown()
			run.HostBusy += b.Busy
			run.HostStall += b.Stall
			run.Traffic += h.Traffic()
		}
	}
	c.Shutdown()
	return run, inj
}
