// Package sel reproduces the paper's Select benchmark: a sequential range
// selection over a 128 MB table of 128-byte records, checking whether one
// integer field falls in a range. In the active cases the selection runs in
// the switch and the host only counts the matching records it receives, so
// host I/O traffic drops to the selectivity (25%) and host cache misses
// nearly vanish. Like HashJoin, Select runs with the paper's scaled host
// caches (8 KB L1D / 64 KB L2).
package sel

import (
	"activesan/internal/apps"
	"activesan/internal/aswitch"
	"activesan/internal/cache"
	"activesan/internal/cluster"
	"activesan/internal/iodev"
	"activesan/internal/san"
	"activesan/internal/sim"
	"activesan/internal/stats"
)

// Params sizes the workload and calibrates per-record costs.
type Params struct {
	TableBytes int64
	RecordSize int64
	ChunkSize  int64
	// ActiveChunk is the disk-request size of the active cases: with no
	// host-side staging buffers to fill, the host maps the file at the
	// switch with large requests and lets the switch's flow control pace
	// the stream, cutting per-request OS overhead to near zero.
	ActiveChunk int64
	// SelectPermille keeps records whose key mod 1000 is below it (250 =
	// the paper's 25% I/O-traffic ratio).
	SelectPermille int64

	// HostPredInstr is the host's per-record predicate cost.
	HostPredInstr int64
	// HostCountInstr is the host's per-record cost when merely counting
	// received matches (active cases).
	HostCountInstr int64
	// SwitchPredCycles is the switch CPU's per-record predicate cost.
	SwitchPredCycles int64
}

// DefaultParams returns the paper's 128 MB workload.
func DefaultParams() Params {
	return Params{
		TableBytes:       128 << 20,
		RecordSize:       128,
		ChunkSize:        64 * 1024,
		ActiveChunk:      1 << 20,
		SelectPermille:   250,
		HostPredInstr:    12,
		HostCountInstr:   2,
		SwitchPredCycles: 12,
	}
}

// Key derives record i's integer field — the deterministic "table".
func Key(i int64) int64 { return int64(apps.Mix64(uint64(i)) % 1000) }

// Matches reports whether record i passes the range predicate.
func (prm Params) Matches(i int64) bool { return Key(i) < prm.SelectPermille }

// ExpectedMatches counts passing records directly (the test oracle).
func (prm Params) ExpectedMatches() int64 {
	n := prm.TableBytes / prm.RecordSize
	var c int64
	for i := int64(0); i < n; i++ {
		if prm.Matches(i) {
			c++
		}
	}
	return c
}

const handlerID = 10

const (
	argBase    = 0x0000_0000
	streamBase = 0x0010_0000
	resultFlow = 0x7002
	matchAddr  = 0x0200_0000 // host buffer where matches land
)

// Run executes one configuration.
func Run(cfg apps.Config, prm Params) stats.Run {
	ccfg := cluster.DefaultIOClusterConfig()
	ccfg.Host.Hier = cache.ScaledHostHierConfig()

	setup := func(c *cluster.Cluster) {
		// The table is functional-by-index: payloads are unnecessary since
		// both sides derive record keys from record numbers.
		c.Store(0).AddFile(&iodev.File{Name: "table", Size: prm.TableBytes})
		if !cfg.IsActive() {
			return
		}
		sw := c.Switch(0)
		sw.Register(handlerID, "select", func(x *aswitch.Ctx) {
			x.ReleaseArgs()
			var matched, pendingBytes int64
			var pendingRecs int64
			cursor := int64(streamBase)
			end := int64(streamBase) + prm.TableBytes
			flush := func() {
				if pendingBytes == 0 {
					return
				}
				x.Send(aswitch.SendSpec{
					Dst: x.Src(), Type: san.Data, Addr: matchAddr,
					Size: pendingBytes, Flow: resultFlow, Payload: pendingRecs,
				})
				pendingBytes, pendingRecs = 0, 0
			}
			for cursor < end {
				b := x.WaitStream(cursor)
				recBase := (cursor - streamBase) / prm.RecordSize
				n := b.Size() / prm.RecordSize
				for r := int64(0); r < n; r++ {
					// Read the record's key field from the data buffer and
					// evaluate the predicate.
					x.ReadAt(b, r*prm.RecordSize, 8)
					x.Compute(prm.SwitchPredCycles)
					if prm.Matches(recBase + r) {
						matched++
						pendingRecs++
						pendingBytes += prm.RecordSize
					}
				}
				cursor = b.End()
				x.Deallocate(cursor)
				// Ship matches in chunk-sized replies ("the switch can
				// always send a reply to the host with a length of bufSz").
				if pendingBytes >= prm.ChunkSize {
					flush()
				}
			}
			flush()
			// Final summary carries the total so the host can verify.
			x.Send(aswitch.SendSpec{
				Dst: x.Src(), Type: san.Control, Addr: argBase,
				Size: 8, Flow: resultFlow + 1, Payload: matched,
			})
		})
	}

	app := func(p *sim.Proc, c *cluster.Cluster) map[string]any {
		h := c.Host(0)
		store := c.Store(0).ID()
		sw := c.Switch(0)

		if cfg.IsActive() {
			h.SendMessage(p, &san.Message{
				Hdr:  san.Header{Dst: sw.ID(), Type: san.ActiveMsg, HandlerID: handlerID, Addr: argBase},
				Size: 32,
			}, 0)
			apps.StreamToSwitch(p, h, store, "table", prm.TableBytes, prm.ActiveChunk,
				sw.ID(), streamBase, 0, 0x6002, cfg.Outstanding())
			// Count arriving match batches until the summary shows up.
			var counted, reported int64
			for {
				comp := h.RecvAny(p)
				if comp.Hdr.Flow == resultFlow+1 {
					reported = comp.Payloads[0].(int64)
					break
				}
				recs := comp.Payloads[0].(int64)
				h.CPU().Compute(p, prm.HostCountInstr*recs)
				counted += recs
			}
			return map[string]any{"matches": counted, "reported": reported}
		}

		// Normal: scan every record on the host.
		var matched int64
		buf := h.Space().Alloc(prm.ChunkSize, 4096)
		apps.StreamChunks(p, h, store, "table", prm.TableBytes, prm.ChunkSize, buf,
			cfg.Outstanding(), func(off, n int64, _ []any) {
				recBase := off / prm.RecordSize
				cnt := n / prm.RecordSize
				for r := int64(0); r < cnt; r++ {
					// Load the key field of each record (128 B apart: every
					// record is its own L2 line in the scaled hierarchy).
					h.CPU().Load(p, buf+r*prm.RecordSize)
					h.CPU().Compute(p, prm.HostPredInstr)
					if prm.Matches(recBase + r) {
						matched++
					}
				}
			})
		return map[string]any{"matches": matched, "reported": matched}
	}

	return apps.RunIO(ccfg, cfg, setup, app)
}

// RunAll executes the four configurations (paper Figures 7/8).
func RunAll(prm Params) *stats.Result {
	res := &stats.Result{ID: "fig7", Title: "Select: time, host utilization, host I/O traffic"}
	for _, cfg := range apps.AllConfigs {
		res.Runs = append(res.Runs, Run(cfg, prm))
	}
	res.Bars = apps.StandardBars(res, 1)
	return res
}
