package sel

import (
	"testing"

	"activesan/internal/apps"
)

// testParams scales the table down so the four-configuration suite runs in
// seconds; shapes are scale-free.
func testParams() Params {
	prm := DefaultParams()
	prm.TableBytes = 8 << 20
	return prm
}

func TestKeyDeterministic(t *testing.T) {
	if Key(42) != Key(42) {
		t.Fatal("record key not deterministic")
	}
	if Key(1) == Key(2) && Key(2) == Key(3) {
		t.Fatal("record keys look constant")
	}
}

func TestSelectivityNear25Percent(t *testing.T) {
	prm := testParams()
	n := prm.TableBytes / prm.RecordSize
	got := prm.ExpectedMatches()
	frac := float64(got) / float64(n)
	if frac < 0.23 || frac > 0.27 {
		t.Fatalf("selectivity = %.3f, want ~0.25", frac)
	}
}

func TestAllConfigsAgreeOnMatches(t *testing.T) {
	prm := testParams()
	want := prm.ExpectedMatches()
	for _, cfg := range apps.AllConfigs {
		run := Run(cfg, prm)
		if got := run.Extra["matches"].(int64); got != want {
			t.Errorf("%s: matches = %d, want %d", cfg, got, want)
		}
		if rep := run.Extra["reported"].(int64); rep != want {
			t.Errorf("%s: reported = %d, want %d", cfg, rep, want)
		}
	}
}

func TestShapeSelect(t *testing.T) {
	// Paper Figures 7/8: normal is worst; the other three are nearly tied
	// (I/O bound); active traffic is ~25% of normal; average normal host
	// utilization is many times the active one.
	prm := testParams()
	res := RunAll(prm)
	normal := res.Baseline()
	np, _ := res.Run("normal+pref")
	a, _ := res.Run("active")
	ap, _ := res.Run("active+pref")

	if !(normal.Time > np.Time) {
		t.Errorf("normal (%v) should be worst (normal+pref %v)", normal.Time, np.Time)
	}
	// The three overlapped configs are within 10% of each other.
	for _, r := range []struct {
		name string
		t    float64
	}{{"active", float64(a.Time)}, {"active+pref", float64(ap.Time)}} {
		ratio := r.t / float64(np.Time)
		if ratio < 0.9 || ratio > 1.1 {
			t.Errorf("%s time ratio vs normal+pref = %.3f, want ~1", r.name, ratio)
		}
	}
	// Traffic: matches (25%) vs full table.
	ratio := float64(a.Traffic) / float64(normal.Traffic)
	if ratio < 0.2 || ratio > 0.32 {
		t.Errorf("active traffic ratio = %.3f, want ~0.25", ratio)
	}
	// Utilization gap: paper reports ~21x between the normal and active
	// averages; require at least 5x at this scale.
	normAvg := (normal.HostUtil() + np.HostUtil()) / 2
	actAvg := (a.HostUtil() + ap.HostUtil()) / 2
	if normAvg < 5*actAvg {
		t.Errorf("normal util %.4f not much larger than active %.4f", normAvg, actAvg)
	}
}

func TestSelectivitySweep(t *testing.T) {
	// The active traffic ratio must track the predicate's selectivity.
	for _, perMille := range []int64{100, 500, 900} {
		prm := testParams()
		prm.TableBytes = 4 << 20
		prm.SelectPermille = perMille
		res := RunAll(prm)
		a, _ := res.Run("active")
		ratio := float64(a.Traffic) / float64(res.Baseline().Traffic)
		want := float64(perMille) / 1000
		if ratio < want-0.05 || ratio > want+0.05 {
			t.Errorf("selectivity %.1f: traffic ratio %.3f, want ~%.3f", want, ratio, want)
		}
	}
}
