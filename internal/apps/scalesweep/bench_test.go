package scalesweep

import (
	"fmt"
	"runtime"
	"sort"
	"testing"
	"time"

	"activesan/internal/apps/reduce"
	"activesan/internal/aswitch"
	"activesan/internal/cluster"
	"activesan/internal/san"
	"activesan/internal/sim"
)

// The partition-engine benchmarks compare the same fat-tree collective
// through the serial engine and the partitioned Group. Cluster construction
// and teardown sit outside the timer; `run-ns/op` (reported via
// b.ReportMetric and tracked in BENCH_engine.json) is the Engine.Run /
// Group.Run call alone — the number PERFORMANCE.md quotes.
//
// Partitioned points run under Group.SetSequential so the busy-time
// accounting is exact on any host, and additionally report `proj-ns/op`:
// the projected wall clock with one core per partition (measured run time
// minus total engine work plus the per-round critical path — see
// Group.CriticalPath). On a single-core CI runner the measured run-ns/op of
// a partitioned point is roughly the serial cost plus barrier overhead;
// proj-ns/op is the speedup figure. The recorded >=3x at 256 hosts and 4
// partitions comes from the Exchange pair below (the reduce collective is
// latency-bound — a dependency chain through the aggregation tree — and
// only reaches ~2x at 4 ranks); the regression floor is asserted in
// TestPartitionSpeedupProjection at the 1024-host point.
func benchPoint(b *testing.B, hosts, parts int) {
	prm := DefaultParams().Reduce
	var run, proj []time.Duration
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c := cluster.NewPartitionedFatTreeCluster(cluster.DefaultFatTreeConfig(hosts), parts)
		if c.Group != nil {
			c.Group.SetSequential(true)
		}
		// Collect outside the timed region so a GC pause from the previous
		// iteration's garbage doesn't land inside one rank's window and
		// inflate the per-round critical path.
		runtime.GC()
		b.StartTimer()
		r := reduce.RunOn(c.Eng, c, reduce.ToOne, true, hosts, prm)
		b.StopTimer()
		if !r.Correct {
			b.Fatalf("incorrect reduction at %d hosts, %d partitions", hosts, parts)
		}
		run = append(run, r.EngineWall)
		if c.Group != nil {
			proj = append(proj, r.EngineWall-c.Group.BusyTime()+c.Group.CriticalPath())
		}
		b.StartTimer()
	}
	// Medians, not means: one descheduled window would otherwise skew the
	// recorded baseline the alloc/timing gates compare against.
	b.ReportMetric(float64(medianDur(run).Nanoseconds()), "run-ns/op")
	if parts > 1 {
		b.ReportMetric(float64(medianDur(proj).Nanoseconds()), "proj-ns/op")
	}
}

func BenchmarkReduce256Serial(b *testing.B)  { benchPoint(b, 256, 1) }
func BenchmarkReduce256Parts4(b *testing.B)  { benchPoint(b, 256, 4) }
func BenchmarkReduce1024Serial(b *testing.B) { benchPoint(b, 1024, 1) }
func BenchmarkReduce1024Parts8(b *testing.B) { benchPoint(b, 1024, 8) }

// runExchange drives a bulk-synchronous neighbor exchange: every host sends
// a 4 KB message each round, to its edge-switch neighbor (i XOR 1) on most
// rounds and across the fabric (i + hosts/2) every sixteenth — the
// mostly-partition-local traffic pattern the pod-boundary cut is designed
// for, with enough cross-cut flow to keep the lookahead machinery honest.
// Returns the Engine/Group Run wall plus, when partitioned, the projection
// inputs.
//
// The tree is k=16, not the minimal k=12 DefaultFatTreeConfig would pick:
// 256 hosts fill exactly four 64-host pods, so at 4 partitions each rank
// owns one full pod and the per-round load is balanced. On the minimal
// tree the hosts span 7.1 pods and one rank ends up with 40 hosts against
// the others' 72, which caps the critical-path speedup near 2.9x for
// reasons that have nothing to do with the engine.
func runExchange(hosts, k, parts int) (run, proj time.Duration, end sim.Time) {
	run, _, proj, _, _, end = runExchangeFull(hosts, k, parts)
	return run, proj, end
}

// runExchangeStats returns the noise-robust projection inputs: the run and
// busy walls (long intervals) and the deterministic event counts.
func runExchangeStats(hosts, k, parts int) (run, busy time.Duration, evTotal, evCrit int64) {
	run, busy, _, evTotal, evCrit, _ = runExchangeFull(hosts, k, parts)
	return run, busy, evTotal, evCrit
}

func runExchangeFull(hosts, k, parts int) (run, busy, proj time.Duration, evTotal, evCrit int64, end sim.Time) {
	cfg := cluster.DefaultFatTreeConfig(hosts)
	if k > 0 {
		cfg.K = k
		cfg.Switch = aswitch.DefaultConfig(k)
	}
	c := cluster.NewPartitionedFatTreeCluster(cfg, parts)
	defer c.Shutdown()
	if c.Group != nil {
		c.Group.SetSequential(true)
	}
	c.Start()
	const rounds = 32
	for i := 0; i < hosts; i++ {
		i := i
		h := c.Host(i)
		c.EngineFor(h.ID()).Spawn(fmt.Sprintf("ex%d", i), func(p *sim.Proc) {
			for r := 0; r < rounds; r++ {
				partner := i ^ 1
				if r%16 == 15 {
					partner = (i + hosts/2) % hosts
				}
				h.SendMessage(p, &san.Message{
					Hdr:  san.Header{Dst: c.Host(partner).ID(), Type: san.Data, Flow: int64(r*hosts + i)},
					Size: 4 << 10,
				}, 0)
				h.RecvFlow(p, c.Host(partner).ID(), int64(r*hosts+partner))
			}
		})
	}
	z := time.Now()
	end = c.Run()
	run = time.Since(z)
	if c.Group != nil {
		busy = c.Group.BusyTime()
		proj = run - busy + c.Group.CriticalPath()
		evTotal, evCrit = c.Group.EventsTotal(), c.Group.EventsCritical()
	}
	return run, busy, proj, evTotal, evCrit, end
}

func benchExchange(b *testing.B, hosts, k, parts int) {
	var runs, projs []time.Duration
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		runtime.GC()
		b.StartTimer()
		run, proj, _ := runExchange(hosts, k, parts)
		b.StopTimer()
		runs = append(runs, run)
		if parts > 1 {
			projs = append(projs, proj)
		}
		b.StartTimer()
	}
	b.ReportMetric(float64(medianDur(runs).Nanoseconds()), "run-ns/op")
	if parts > 1 {
		b.ReportMetric(float64(medianDur(projs).Nanoseconds()), "proj-ns/op")
	}
}

func BenchmarkExchange256Serial(b *testing.B) { benchExchange(b, 256, 16, 1) }
func BenchmarkExchange256Parts4(b *testing.B) { benchExchange(b, 256, 16, 4) }

// BenchmarkExchangeSpeedup256 records the acceptance figure directly as
// `speedup-x`. The wall-clock critical path is too noise-sensitive to gate
// on: an OS preemption inside any one of the ~1200 rank windows lands
// entirely in that round's per-rank maximum, and across a run those hits
// deflate the measured ratio by 20-30% (observed: the same workload swung
// 2.8x-3.6x between invocations, even with serial and partitioned runs
// paired back-to-back). So the projection here uses the deterministic
// event-count parallelism instead — EventsTotal/EventsCritical is a pure
// function of the workload — and takes only long-interval wall measurements,
// which average preemption noise instead of amplifying it:
//
//	projected = serial/parallelism + (partitioned run - busy)   [barrier cost]
//	speedup   = serial / projected
//
// A preemption during a window inflates the partitioned run and busy
// equally, so the barrier term also cancels it.
func BenchmarkExchangeSpeedup256(b *testing.B) {
	var ratios []float64
	for i := 0; i < b.N; i++ {
		runtime.GC()
		sRun, _, _ := runExchange(256, 16, 1)
		runtime.GC()
		pRun, pBusy, evTotal, evCrit := runExchangeStats(256, 16, 4)
		projected := time.Duration(float64(sRun)*float64(evCrit)/float64(evTotal)) + (pRun - pBusy)
		ratios = append(ratios, float64(sRun)/float64(projected))
	}
	sort.Float64s(ratios)
	b.ReportMetric(ratios[len(ratios)/2], "speedup-x")
}

// TestExchangeIdentity guards the benchmark's apples-to-apples claim: the
// exchange workload must simulate the identical event stream serially and
// partitioned, or the serial/projected comparison above is comparing two
// different runs. (A fully synchronized all-to-all burst CAN diverge — see
// the arbitration-tie boundary in PERFORMANCE.md — which is why the bench
// pattern spaces its cross-fabric rounds and why this test pins it.)
func TestExchangeIdentity(t *testing.T) {
	_, _, serial := runExchange(256, 16, 1)
	_, _, part := runExchange(256, 16, 4)
	if serial != part {
		t.Fatalf("exchange end time diverged: serial %v, 4 partitions %v", serial, part)
	}
}

// medianDur is a tiny helper for the projection test: simulation timing on
// shared runners is noisy, so acceptance uses the median of several reps.
func medianDur(ds []time.Duration) time.Duration {
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && ds[j] < ds[j-1]; j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
	return ds[len(ds)/2]
}

// TestPartitionSpeedupProjection is the perf acceptance gate for the
// partitioned engine at the headline point (1024 hosts, 8 partitions): the
// projected parallel run time — exact busy-time accounting under
// SetSequential, see Group.CriticalPath — must beat the measured serial
// engine by a healthy margin. The recorded baseline (BENCH_engine.json,
// PERFORMANCE.md) shows >=3x; the test floor is 2x so scheduler noise on a
// loaded runner cannot flake it, while a real lost-parallelism regression
// (a horizon collapsing to micro-steps, a serialized round) still fails.
func TestPartitionSpeedupProjection(t *testing.T) {
	if testing.Short() {
		t.Skip("1024-host fat tree, several reps")
	}
	const hosts, parts, reps = 1024, 8, 3
	prm := DefaultParams().Reduce
	var serial, proj []time.Duration
	for i := 0; i < reps; i++ {
		c := cluster.NewPartitionedFatTreeCluster(cluster.DefaultFatTreeConfig(hosts), 1)
		r := reduce.RunOn(c.Eng, c, reduce.ToOne, true, hosts, prm)
		if !r.Correct {
			t.Fatal("incorrect serial reduction")
		}
		serial = append(serial, r.EngineWall)

		c = cluster.NewPartitionedFatTreeCluster(cluster.DefaultFatTreeConfig(hosts), parts)
		c.Group.SetSequential(true)
		r = reduce.RunOn(c.Eng, c, reduce.ToOne, true, hosts, prm)
		if !r.Correct {
			t.Fatal("incorrect partitioned reduction")
		}
		proj = append(proj, r.EngineWall-c.Group.BusyTime()+c.Group.CriticalPath())
	}
	s, p := medianDur(serial), medianDur(proj)
	if p <= 0 {
		t.Fatalf("projection collapsed: serial %v, projected %v", s, p)
	}
	speedup := float64(s) / float64(p)
	t.Logf("1024 hosts: serial %v, projected %d-core %v -> %.2fx", s, parts, p, speedup)
	if speedup < 2.0 {
		t.Errorf("projected speedup %.2fx below the 2x regression floor (baseline shows >=3x)", speedup)
	}
}
