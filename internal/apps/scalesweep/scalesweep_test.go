package scalesweep

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestActiveCutsHostIOAt64Hosts is the headline acceptance check: a 64-host
// fat-tree reduction completes correctly in both variants and the active
// configuration moves strictly fewer bytes across host NICs than the
// passive MST — the paper's core claim, held at scale.
func TestActiveCutsHostIOAt64Hosts(t *testing.T) {
	if testing.Short() {
		t.Skip("64-host fat tree (80 switches)")
	}
	prm := DefaultParams().Reduce
	active := RunPoint(64, true, prm)
	passive := RunPoint(64, false, prm)
	if !active.Correct || !passive.Correct {
		t.Fatalf("incorrect reduction: active ok=%v, passive ok=%v", active.Correct, passive.Correct)
	}
	if active.K != 8 || active.Switches != 80 {
		t.Errorf("64 hosts built k=%d with %d switches, want k=8 with 80", active.K, active.Switches)
	}
	if active.HostBytes >= passive.HostBytes {
		t.Errorf("active host I/O %d B >= passive %d B: in-network aggregation saved nothing",
			active.HostBytes, passive.HostBytes)
	}
	if active.Latency >= passive.Latency {
		t.Errorf("active latency %v >= passive %v", active.Latency, passive.Latency)
	}
}

// TestHostIOSavingGrowsWithScale checks the scaling shape: the passive MST
// moves ~log2(p) vectors per host while active moves one up and at most one
// down, so the byte ratio must widen as hosts grow.
func TestHostIOSavingGrowsWithScale(t *testing.T) {
	prm := DefaultParams().Reduce
	counts := []int{4, 16}
	if !testing.Short() {
		counts = append(counts, 64)
	}
	prev := 0.0
	for _, p := range counts {
		a := RunPoint(p, true, prm)
		b := RunPoint(p, false, prm)
		ratio := float64(b.HostBytes) / float64(a.HostBytes)
		if ratio <= prev {
			t.Errorf("p=%d: passive/active byte ratio %.3f did not grow (prev %.3f)", p, ratio, prev)
		}
		prev = ratio
	}
}

// TestSweepDeterministicAcrossWorkers pins byte-identity of the sweep under
// the parallel harness: the same Params through 1 worker and many workers
// must serialize identically, including at the largest point.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	prm := DefaultParams()
	if testing.Short() {
		prm.HostCounts = []int{4, 8}
	}
	serial := RunAll(prm)
	parallel := RunAllParallel(prm, 4)
	a, err := json.Marshal(serial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("parallel sweep diverges from serial:\n%s\n%s", a, b)
	}
}

// TestEveryPointCorrect runs the shrunk sweep and requires the oracle check
// to pass at every point (no INCORRECT notes).
func TestEveryPointCorrect(t *testing.T) {
	prm := DefaultParams()
	prm.HostCounts = []int{4, 8, 16}
	res := RunAll(prm)
	for _, n := range res.Notes {
		if bytes.Contains([]byte(n), []byte("INCORRECT")) {
			t.Errorf("sweep note: %s", n)
		}
	}
	if len(res.Series) != 5 {
		t.Errorf("%d series, want 5 (two latency, two host-byte, speedup)", len(res.Series))
	}
}

// TestSerialVsPartitionedByteIdentity is the determinism contract at the
// sweep's own level: one point measured through the serial engine and
// through 2 and 4 partitions must agree on every field — virtual latency,
// host bytes, correctness — not approximately but exactly. Any conservatism
// bug in the partition barriers (a message injected late, a reordered
// same-time pair) shows up here as a latency or byte diff.
func TestSerialVsPartitionedByteIdentity(t *testing.T) {
	hosts := 64
	if testing.Short() {
		hosts = 16
	}
	prm := DefaultParams().Reduce
	for _, active := range []bool{false, true} {
		want := RunPointParts(hosts, active, prm, 1)
		if !want.Correct {
			t.Fatalf("active=%v: serial point incorrect", active)
		}
		for _, parts := range []int{2, 4} {
			got := RunPointParts(hosts, active, prm, parts)
			if got != want {
				t.Errorf("active=%v partitions=%d diverges from serial:\n got %+v\nwant %+v",
					active, parts, got, want)
			}
		}
	}
}
