// Package scalesweep probes the paper's core claim at scale: in-network
// aggregation cuts host I/O traffic, and the saving grows with the cluster.
// It sweeps a reduce-to-one collective over host counts on k-ary fat trees
// (the smallest k holding each point), running each point twice — active
// (hop-by-hop partial aggregation in the edge/agg/core switches) and
// passive (binomial MST on the hosts) — and reports completion-time and
// host-I/O-byte scaling curves. Not a figure from the paper: the paper
// stops at a fixed reduction tree; this is the scale-out extension its
// Section 7 gestures at.
package scalesweep

import (
	"fmt"
	"runtime"
	"sync"

	"activesan/internal/apps/reduce"
	"activesan/internal/cluster"
	"activesan/internal/sim"
	"activesan/internal/stats"
)

// Params sizes the sweep.
type Params struct {
	// HostCounts are the swept cluster sizes.
	HostCounts []int
	// Partitions selects the simulation engine layout per point: negative
	// follows the process-wide -partitions flag (cluster.DefaultPartitions),
	// 0 picks automatically from each point's topology, 1 forces the serial
	// engine, and n >= 2 forces exactly n partitions. Results are
	// byte-identical whatever the value; see PERFORMANCE.md.
	Partitions int
	// Reduce calibrates the collective at every point.
	Reduce reduce.Params
}

// DefaultParams sweeps 4 to 1024 hosts with the paper's 512-byte vectors,
// following the process-wide partition setting. The 256- and 1024-host
// points (k=12 and k=16 trees) are where partitioned simulation pays off.
func DefaultParams() Params {
	return Params{
		HostCounts: []int{4, 8, 16, 32, 64, 256, 1024},
		Partitions: -1,
		Reduce:     reduce.DefaultParams(),
	}
}

// Point is one (hosts, variant) measurement.
type Point struct {
	Hosts     int
	K         int // fat-tree arity used
	Switches  int // physical switch count
	Latency   sim.Time
	HostBytes int64 // total bytes crossing host NICs
	Correct   bool
}

// RunPoint measures one variant at one cluster size on the minimal fat
// tree with the serial engine. The cluster outlives the run so NIC counters
// can be harvested.
func RunPoint(hosts int, active bool, prm reduce.Params) Point {
	return RunPointParts(hosts, active, prm, 1)
}

// RunPointParts is RunPoint over `partitions` simulation partitions (0 =
// auto from the topology, 1 = serial). Byte-identical to RunPoint at every
// partition count.
func RunPointParts(hosts int, active bool, prm reduce.Params, partitions int) Point {
	cfg := cluster.DefaultFatTreeConfig(hosts)
	c := cluster.NewPartitionedFatTreeCluster(cfg, partitions)
	r := reduce.RunOn(c.Eng, c, reduce.ToOne, active, hosts, prm)
	var bytes int64
	for _, h := range c.Hosts {
		bytes += h.Traffic()
	}
	return Point{
		Hosts:     hosts,
		K:         cfg.K,
		Switches:  len(c.Switches),
		Latency:   r.Latency,
		HostBytes: bytes,
		Correct:   r.Correct,
	}
}

// RunAll runs the sweep sequentially.
func RunAll(prm Params) *stats.Result { return RunAllParallel(prm, 1) }

// RunAllParallel fans the sweep points over `workers` goroutines (each
// point simulates active and passive on its own engines). Output order
// follows HostCounts whatever the completion order, so any worker count is
// byte-identical to a sequential run. workers < 1 selects runtime.NumCPU().
func RunAllParallel(prm Params, workers int) *stats.Result {
	res := &stats.Result{
		ID:    "scalesweep",
		Title: "Reduce at scale on k-ary fat trees: active vs passive",
	}
	if workers < 1 {
		workers = runtime.NumCPU()
	}
	if workers > len(prm.HostCounts) {
		workers = len(prm.HostCounts)
	}
	parts := prm.Partitions
	if parts < 0 {
		parts = cluster.DefaultPartitions()
	}
	type pair struct{ passive, active Point }
	points := make([]pair, len(prm.HostCounts))
	runIdx := func(i int) {
		points[i].passive = RunPointParts(prm.HostCounts[i], false, prm.Reduce, parts)
		points[i].active = RunPointParts(prm.HostCounts[i], true, prm.Reduce, parts)
	}
	if workers <= 1 {
		for i := range prm.HostCounts {
			runIdx(i)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					runIdx(i)
				}
			}()
		}
		for i := range prm.HostCounts {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}

	var passLat, actLat, passBytes, actBytes stats.Series
	passLat.Name = "passive (host MST)"
	actLat.Name = "active (in-switch aggregation)"
	passBytes.Name = "passive host bytes"
	actBytes.Name = "active host bytes"
	for i, p := range prm.HostCounts {
		pp, pa := points[i].passive, points[i].active
		if !pp.Correct || !pa.Correct {
			res.Notes = append(res.Notes, fmt.Sprintf(
				"p=%d: INCORRECT result (passive ok=%v, active ok=%v)", p, pp.Correct, pa.Correct))
		}
		x := float64(p)
		passLat.X = append(passLat.X, x)
		passLat.Y = append(passLat.Y, pp.Latency.Micros())
		actLat.X = append(actLat.X, x)
		actLat.Y = append(actLat.Y, pa.Latency.Micros())
		passBytes.X = append(passBytes.X, x)
		passBytes.Y = append(passBytes.Y, float64(pp.HostBytes))
		actBytes.X = append(actBytes.X, x)
		actBytes.Y = append(actBytes.Y, float64(pa.HostBytes))
		res.Notes = append(res.Notes, fmt.Sprintf(
			"p=%-3d k=%d (%d switches): host I/O %d B active vs %d B passive (%.2fx less), latency %v vs %v",
			p, pa.K, pa.Switches, pa.HostBytes, pp.HostBytes,
			float64(pp.HostBytes)/float64(pa.HostBytes), pa.Latency, pp.Latency))
	}
	sp := stats.SpeedupSeries("speedup", passLat, actLat)
	res.Series = []stats.Series{passLat, actLat, passBytes, actBytes, sp}
	res.Notes = append(res.Notes, fmt.Sprintf("max speedup %.2fx", sp.MaxY()))
	return res
}
