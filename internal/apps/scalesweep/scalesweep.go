// Package scalesweep probes the paper's core claim at scale: in-network
// aggregation cuts host I/O traffic, and the saving grows with the cluster.
// It sweeps a reduce-to-one collective over host counts on k-ary fat trees
// (the smallest k holding each point), running each point twice — active
// (hop-by-hop partial aggregation in the edge/agg/core switches) and
// passive (binomial MST on the hosts) — and reports completion-time and
// host-I/O-byte scaling curves. Not a figure from the paper: the paper
// stops at a fixed reduction tree; this is the scale-out extension its
// Section 7 gestures at.
package scalesweep

import (
	"fmt"
	"runtime"
	"sync"

	"activesan/internal/apps/reduce"
	"activesan/internal/cluster"
	"activesan/internal/sim"
	"activesan/internal/stats"
)

// Params sizes the sweep.
type Params struct {
	// HostCounts are the swept cluster sizes.
	HostCounts []int
	// Reduce calibrates the collective at every point.
	Reduce reduce.Params
}

// DefaultParams sweeps 4 to 64 hosts with the paper's 512-byte vectors.
func DefaultParams() Params {
	return Params{
		HostCounts: []int{4, 8, 16, 32, 64},
		Reduce:     reduce.DefaultParams(),
	}
}

// Point is one (hosts, variant) measurement.
type Point struct {
	Hosts     int
	K         int // fat-tree arity used
	Switches  int // physical switch count
	Latency   sim.Time
	HostBytes int64 // total bytes crossing host NICs
	Correct   bool
}

// RunPoint measures one variant at one cluster size on the minimal fat
// tree. The cluster outlives the run so NIC counters can be harvested.
func RunPoint(hosts int, active bool, prm reduce.Params) Point {
	eng := sim.NewEngine()
	cfg := cluster.DefaultFatTreeConfig(hosts)
	c := cluster.NewFatTreeCluster(eng, cfg)
	r := reduce.RunOn(eng, c, reduce.ToOne, active, hosts, prm)
	var bytes int64
	for _, h := range c.Hosts {
		bytes += h.Traffic()
	}
	return Point{
		Hosts:     hosts,
		K:         cfg.K,
		Switches:  len(c.Switches),
		Latency:   r.Latency,
		HostBytes: bytes,
		Correct:   r.Correct,
	}
}

// RunAll runs the sweep sequentially.
func RunAll(prm Params) *stats.Result { return RunAllParallel(prm, 1) }

// RunAllParallel fans the sweep points over `workers` goroutines (each
// point simulates active and passive on its own engines). Output order
// follows HostCounts whatever the completion order, so any worker count is
// byte-identical to a sequential run. workers < 1 selects runtime.NumCPU().
func RunAllParallel(prm Params, workers int) *stats.Result {
	res := &stats.Result{
		ID:    "scalesweep",
		Title: "Reduce at scale on k-ary fat trees: active vs passive",
	}
	if workers < 1 {
		workers = runtime.NumCPU()
	}
	if workers > len(prm.HostCounts) {
		workers = len(prm.HostCounts)
	}
	type pair struct{ passive, active Point }
	points := make([]pair, len(prm.HostCounts))
	runIdx := func(i int) {
		points[i].passive = RunPoint(prm.HostCounts[i], false, prm.Reduce)
		points[i].active = RunPoint(prm.HostCounts[i], true, prm.Reduce)
	}
	if workers <= 1 {
		for i := range prm.HostCounts {
			runIdx(i)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					runIdx(i)
				}
			}()
		}
		for i := range prm.HostCounts {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}

	var passLat, actLat, passBytes, actBytes stats.Series
	passLat.Name = "passive (host MST)"
	actLat.Name = "active (in-switch aggregation)"
	passBytes.Name = "passive host bytes"
	actBytes.Name = "active host bytes"
	for i, p := range prm.HostCounts {
		pp, pa := points[i].passive, points[i].active
		if !pp.Correct || !pa.Correct {
			res.Notes = append(res.Notes, fmt.Sprintf(
				"p=%d: INCORRECT result (passive ok=%v, active ok=%v)", p, pp.Correct, pa.Correct))
		}
		x := float64(p)
		passLat.X = append(passLat.X, x)
		passLat.Y = append(passLat.Y, pp.Latency.Micros())
		actLat.X = append(actLat.X, x)
		actLat.Y = append(actLat.Y, pa.Latency.Micros())
		passBytes.X = append(passBytes.X, x)
		passBytes.Y = append(passBytes.Y, float64(pp.HostBytes))
		actBytes.X = append(actBytes.X, x)
		actBytes.Y = append(actBytes.Y, float64(pa.HostBytes))
		res.Notes = append(res.Notes, fmt.Sprintf(
			"p=%-3d k=%d (%d switches): host I/O %d B active vs %d B passive (%.2fx less), latency %v vs %v",
			p, pa.K, pa.Switches, pa.HostBytes, pp.HostBytes,
			float64(pp.HostBytes)/float64(pa.HostBytes), pa.Latency, pp.Latency))
	}
	sp := stats.SpeedupSeries("speedup", passLat, actLat)
	res.Series = []stats.Series{passLat, actLat, passBytes, actBytes, sp}
	res.Notes = append(res.Notes, fmt.Sprintf("max speedup %.2fx", sp.MaxY()))
	return res
}
