package mpeg

import "testing"

// FuzzFilter throws arbitrary bytes at the streaming frame filter: it must
// never panic or emit non-I frames, whatever the input framing.
func FuzzFilter(f *testing.F) {
	prm := DefaultParams()
	prm.FileSize = 4096
	f.Add(BuildStream(prm))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 1, 'I', 9, 0, 0, 0, 42})
	f.Add([]byte{0, 0, 1, 'P', 255, 255, 255, 255})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		flt := &filter{Out: func(frame []byte) {
			if len(frame) < headerLen || frame[3] != typeI {
				t.Fatalf("filter emitted a bad frame: %v", frame[:min(len(frame), 8)])
			}
		}}
		// Feed in two arbitrary pieces to exercise split headers.
		cut := len(data) / 3
		flt.Feed(data[:cut])
		flt.Feed(data[cut:])
		if flt.IBytes < 0 || flt.PBytes < 0 {
			t.Fatal("negative byte accounting")
		}
	})
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
