package mpeg

import (
	"testing"

	"activesan/internal/apps"
)

func TestStreamComposition(t *testing.T) {
	prm := DefaultParams()
	s := BuildStream(prm)
	if int64(len(s)) != prm.FileSize {
		t.Fatalf("stream is %d bytes, want %d", len(s), prm.FileSize)
	}
	p := PBytes(s)
	frac := float64(p) / float64(prm.FileSize)
	// Paper: "About 63.5% of the total data are P-type frames."
	if frac < 0.61 || frac > 0.66 {
		t.Fatalf("P-frame fraction = %.3f, want ~0.635", frac)
	}
}

func TestFilterKeepsOnlyIFrames(t *testing.T) {
	prm := DefaultParams()
	s := BuildStream(prm)
	var kept [][]byte
	f := &filter{Out: func(fr []byte) {
		cp := make([]byte, len(fr))
		copy(cp, fr)
		kept = append(kept, cp)
	}}
	// Feed in awkward chunk sizes to exercise header/frame splits.
	for off := 0; off < len(s); off += 777 {
		end := off + 777
		if end > len(s) {
			end = len(s)
		}
		f.Feed(s[off:end])
	}
	var wantI int64
	wantFrames := 0
	ForEachFrame(s, func(tb byte, frame []byte) {
		if tb == typeI {
			wantI += int64(len(frame))
			wantFrames++
		}
	})
	if f.IBytes != wantI {
		t.Fatalf("filter kept %d I-bytes, want %d", f.IBytes, wantI)
	}
	if len(kept) != wantFrames {
		t.Fatalf("filter emitted %d frames, want %d", len(kept), wantFrames)
	}
	for _, fr := range kept {
		if fr[3] != typeI {
			t.Fatal("filter emitted a non-I frame")
		}
	}
}

func TestAllConfigsProduceSameOutput(t *testing.T) {
	prm := DefaultParams()
	var firstSum string
	var firstBytes int64
	for i, cfg := range apps.AllConfigs {
		run := Run(cfg, prm)
		sum := run.Extra["checksum"].(string)
		ib := run.Extra["iBytes"].(int64)
		rep := run.Extra["reported"].(int64)
		if ib != rep {
			t.Errorf("%s: processed %d I-bytes but filter reported %d", cfg, ib, rep)
		}
		if i == 0 {
			firstSum, firstBytes = sum, ib
			continue
		}
		if sum != firstSum || ib != firstBytes {
			t.Errorf("%s: output (%d bytes, %s) differs from normal (%d, %s)",
				cfg, ib, sum, firstBytes, firstSum)
		}
	}
}

func TestShapeMPEG(t *testing.T) {
	// Paper Figure 3: normal < normal+pref < active < active+pref in speed;
	// active cuts the data sent to the host by the P-frame fraction; the
	// switch CPU is almost fully utilized (balanced pipeline).
	res := RunAll(DefaultParams())
	normal := res.Baseline()
	np, _ := res.Run("normal+pref")
	a, _ := res.Run("active")
	ap, _ := res.Run("active+pref")

	if !(np.Time < normal.Time) {
		t.Errorf("normal+pref (%v) not faster than normal (%v)", np.Time, normal.Time)
	}
	if !(a.Time < normal.Time) {
		t.Errorf("active (%v) not faster than normal (%v)", a.Time, normal.Time)
	}
	if !(ap.Time < np.Time) {
		t.Errorf("active+pref (%v) not faster than normal+pref (%v)", ap.Time, np.Time)
	}
	if s := res.Speedup("active"); s < 1.1 || s > 1.45 {
		t.Errorf("active speedup = %.2f, want in [1.1, 1.45] (paper: 1.23)", s)
	}
	// Data to the host shrinks by roughly the P fraction.
	ratio := float64(a.Traffic) / float64(normal.Traffic)
	if ratio < 0.3 || ratio > 0.45 {
		t.Errorf("active traffic ratio = %.3f, want ~0.365", ratio)
	}
	// Balanced pipeline: switch utilization is high in the active cases.
	if ap.SwitchUtil() < 0.6 {
		t.Errorf("switch util = %.2f, want high (balanced pipeline)", ap.SwitchUtil())
	}
}

func TestGOPShapeChangesTraffic(t *testing.T) {
	// More P-frames per GOP means fewer bytes reach the host in the active
	// case; the measured ratio must follow the generated fraction.
	for _, pPerGOP := range []int{3, 11} {
		prm := DefaultParams()
		prm.FileSize = 512 * 1024
		prm.PPerGOP = pPerGOP
		stream := BuildStream(prm)
		iFrac := 1 - float64(PBytes(stream))/float64(len(stream))
		run := Run(apps.Active, prm)
		normal := Run(apps.Normal, prm)
		ratio := float64(run.Traffic) / float64(normal.Traffic)
		if ratio < iFrac-0.05 || ratio > iFrac+0.05 {
			t.Errorf("PPerGOP=%d: traffic ratio %.3f, want ~%.3f (I fraction)", pPerGOP, ratio, iFrac)
		}
	}
}

func TestBFramesFilteredToo(t *testing.T) {
	// The paper: "all B-type and P-type frames are filtered out, leaving
	// only I-type frames". Generate a stream with B-frames and check the
	// filter's output still holds only I frames with matching checksums in
	// normal and active runs.
	prm := DefaultParams()
	prm.FileSize = 512 * 1024
	prm.PPerGOP = 2
	prm.BPerP = 2
	prm.BFrame = 1024
	stream := BuildStream(prm)
	sawB := false
	ForEachFrame(stream, func(tb byte, _ []byte) {
		if tb == typeB {
			sawB = true
		}
	})
	if !sawB {
		t.Fatal("generator emitted no B-frames")
	}
	n := Run(apps.Normal, prm)
	a := Run(apps.ActivePref, prm)
	if n.Extra["checksum"] != a.Extra["checksum"] {
		t.Fatal("B-frame streams filtered differently on host and switch")
	}
	if n.Extra["iBytes"].(int64) <= 0 {
		t.Fatal("no I bytes survived")
	}
}

func TestFilterStopsAtPadding(t *testing.T) {
	// Zero padding after the last whole frame must end parsing cleanly.
	prm := DefaultParams()
	prm.FileSize = 10000 // forces a trimmed tail
	s := BuildStream(prm)
	f := &filter{Out: func([]byte) {}}
	f.Feed(s)
	if f.IBytes+f.PBytes > prm.FileSize {
		t.Fatalf("filter accounted %d bytes of a %d-byte stream", f.IBytes+f.PBytes, prm.FileSize)
	}
	// Garbage-only input parses zero frames.
	g := &filter{Out: func([]byte) { t.Fatal("frame from garbage") }}
	g.Feed(make([]byte, 100))
	if g.IBytes != 0 || g.PBytes != 0 {
		t.Fatal("garbage produced frame bytes")
	}
}
