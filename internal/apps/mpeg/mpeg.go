// Package mpeg reproduces the paper's MPEG-filter benchmark (the Lancaster
// video filter): a 2,202,640-byte stream of I- and P-frames, read in 64 KB
// requests, with two filtering tasks. Frame filtering (drop every P-frame,
// keep I-frames) is cheap header-checking and runs on the switch in the
// active cases; color reduction (decode + re-encode of each I-frame) is
// compute-intensive and stays on the host. About 63.5% of the stream is
// P-frame bytes, so the switch-side filter also removes ~63.5% of the data
// headed to the host, and the two processors form the balanced pipeline of
// the paper's Figure 4.
package mpeg

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sync/atomic"

	"activesan/internal/apps"
	"activesan/internal/aswitch"
	"activesan/internal/cache"
	"activesan/internal/cluster"
	"activesan/internal/fault"
	"activesan/internal/iodev"
	"activesan/internal/san"
	"activesan/internal/sim"
	"activesan/internal/stats"
)

// Frame header layout: 3-byte start code, 1-byte type, 4-byte total length.
const (
	headerLen = 8
	typeI     = 'I'
	typeP     = 'P'
	typeB     = 'B'
)

var startCode = [3]byte{0x00, 0x00, 0x01}

// Params sizes the workload and calibrates costs.
type Params struct {
	FileSize  int64
	IFrame    int64 // I-frame payload bytes
	PFrame    int64 // P-frame payload bytes
	BFrame    int64 // B-frame payload bytes
	PPerGOP   int   // P-frames following each I-frame
	BPerP     int   // B-frames following each P-frame
	ChunkSize int64

	// HostFilterInstr is the host's per-byte cost of software frame
	// filtering (parsing plus the copies a host-side filter cannot avoid).
	HostFilterInstr int64
	// HostColorInstr is the per-byte decode/re-encode cost of color
	// reduction, paid on I-frame bytes only.
	HostColorInstr int64
	// SwitchFilterCycles is the switch CPU's per-byte filtering cost.
	SwitchFilterCycles int64
}

// DefaultParams returns the paper's workload: 2,202,640 bytes, ~63.5%
// P-frame bytes (8 KB I-frames, seven 2 KB P-frames per GOP), 64 KB I/O.
func DefaultParams() Params {
	return Params{
		FileSize:           2202640,
		IFrame:             8192,
		PFrame:             2048,
		PPerGOP:            7,
		ChunkSize:          64 * 1024,
		HostFilterInstr:    50,
		HostColorInstr:     280,
		SwitchFilterCycles: 26,
	}
}

// BuildStream generates the deterministic video file: GOPs of one I-frame
// and PPerGOP P-frames until FileSize, with the final frame trimmed to fit
// exactly.
func BuildStream(prm Params) []byte {
	rng := apps.NewRand(0x6D706567) // "mpeg"
	out := make([]byte, 0, prm.FileSize)
	emit := func(t byte, payload int64) {
		total := headerLen + payload
		if int64(len(out))+total > prm.FileSize {
			total = prm.FileSize - int64(len(out))
			if total < headerLen {
				// Too little room for a frame: pad with zero bytes that the
				// parser treats as stream padding.
				for int64(len(out)) < prm.FileSize {
					out = append(out, 0)
				}
				return
			}
		}
		var hdr [headerLen]byte
		copy(hdr[:3], startCode[:])
		hdr[3] = t
		binary.LittleEndian.PutUint32(hdr[4:], uint32(total))
		out = append(out, hdr[:]...)
		for i := int64(headerLen); i < total; i++ {
			out = append(out, byte(rng.Next()))
		}
	}
	for int64(len(out)) < prm.FileSize {
		emit(typeI, prm.IFrame)
		for k := 0; k < prm.PPerGOP && int64(len(out)) < prm.FileSize; k++ {
			emit(typeP, prm.PFrame)
			for b := 0; b < prm.BPerP && int64(len(out)) < prm.FileSize; b++ {
				emit(typeB, prm.BFrame)
			}
		}
	}
	return out[:prm.FileSize]
}

// PBytes counts non-I-frame (P and B) bytes in a stream — the fraction the
// filter drops (workload self-check: ~63.5%).
func PBytes(stream []byte) int64 {
	var p int64
	ForEachFrame(stream, func(t byte, frame []byte) {
		if t != typeI {
			p += int64(len(frame))
		}
	})
	return p
}

// ForEachFrame walks a complete stream, invoking fn per frame.
func ForEachFrame(stream []byte, fn func(t byte, frame []byte)) {
	off := int64(0)
	n := int64(len(stream))
	for off+headerLen <= n {
		if stream[off] != startCode[0] || stream[off+1] != startCode[1] || stream[off+2] != startCode[2] {
			break // padding
		}
		total := int64(binary.LittleEndian.Uint32(stream[off+4 : off+8]))
		if total < headerLen || off+total > n {
			break
		}
		fn(stream[off+3], stream[off:off+total])
		off += total
	}
}

// filter is the streaming frame filter shared by the host-normal path and
// the switch handler: feed it chunks, it emits I-frames.
type filter struct {
	hdr     []byte
	remain  int64 // bytes left of the current frame
	keep    bool
	cur     []byte
	Out     func(frame []byte)
	IBytes  int64
	PBytes  int64
	padding bool
}

func (f *filter) Feed(data []byte) {
	i := int64(0)
	n := int64(len(data))
	for i < n {
		if f.padding {
			return
		}
		if f.remain > 0 {
			take := f.remain
			if take > n-i {
				take = n - i
			}
			if f.keep {
				f.cur = append(f.cur, data[i:i+take]...)
			}
			f.remain -= take
			i += take
			if f.remain == 0 && f.keep {
				f.Out(f.cur)
				f.cur = nil
			}
			continue
		}
		// Accumulate a header.
		need := int64(headerLen - len(f.hdr))
		take := need
		if take > n-i {
			take = n - i
		}
		f.hdr = append(f.hdr, data[i:i+take]...)
		i += take
		if len(f.hdr) < headerLen {
			return
		}
		if f.hdr[0] != startCode[0] || f.hdr[1] != startCode[1] || f.hdr[2] != startCode[2] {
			f.padding = true
			return
		}
		t := f.hdr[3]
		total := int64(binary.LittleEndian.Uint32(f.hdr[4:8]))
		if total < headerLen {
			f.padding = true
			return
		}
		f.keep = t == typeI
		f.remain = total - headerLen
		if f.keep {
			f.IBytes += total
			f.cur = append(f.cur[:0], f.hdr...)
			if f.remain == 0 {
				f.Out(f.cur)
				f.cur = nil
			}
		} else {
			f.PBytes += total
		}
		f.hdr = f.hdr[:0]
	}
}

// dbg prints debug traces when enabled. Atomic so SetDebug is safe while
// experiments run on other goroutines.
var debugTrace atomic.Bool

func dbg(format string, args ...any) {
	if debugTrace.Load() {
		fmt.Printf("[mpeg] "+format+"\n", args...)
	}
}

// SetDebug toggles debug tracing (tests/diagnosis only).
func SetDebug(v bool) { debugTrace.Store(v) }

const handlerID = 11

const (
	argBase     = 0x0000_0000
	streamBase  = 0x0010_0000
	resultFlow  = 0x7003
	creditFlow  = 0x7004
	summaryFlow = 0x7005
	outAddr     = 0x0200_0000
)

type handlerArgs struct {
	FileLen int64
	BufSz   int64
}

// Run executes one configuration.
func Run(cfg apps.Config, prm Params) stats.Run {
	run, _ := RunFaulted(cfg, prm, nil, 0)
	return run
}

// RunFaulted is Run with a fault plan armed on the cluster (nil plan: the
// process-wide default, if any). The active configurations gain the
// handler-crash fallback: when the switch's crash notice arrives mid-stream,
// the host abandons the offloaded pipeline and transparently re-runs the
// whole program locally — the workload still completes, with the slowdown
// visible in the run's time and a "fallback" marker in Extra.
func RunFaulted(cfg apps.Config, prm Params, plan *fault.Plan, seed uint64) (stats.Run, *fault.Injector) {
	stream := BuildStream(prm)
	ccfg := cluster.DefaultIOClusterConfig()

	setup := func(c *cluster.Cluster) {
		c.Store(0).AddFile(&iodev.File{Name: "video", Size: prm.FileSize, Data: stream})
		if !cfg.IsActive() {
			return
		}
		sw := c.Switch(0)
		sw.Register(handlerID, "mpeg-filter", func(x *aswitch.Ctx) {
			args := x.Args().(handlerArgs)
			x.ReleaseArgs()
			var pending []byte
			flush := func(force bool) {
				for int64(len(pending)) >= args.BufSz || (force && len(pending) > 0) {
					n := int64(len(pending))
					if n > args.BufSz {
						n = args.BufSz
					}
					batch := pending[:n:n]
					pending = pending[n:]
					x.Send(aswitch.SendSpec{
						Dst: x.Src(), Type: san.Data, Addr: outAddr,
						Size: n, Flow: resultFlow, Payload: batch,
					})
				}
			}
			f := &filter{Out: func(frame []byte) { pending = append(pending, frame...) }}
			cursor := int64(streamBase)
			end := int64(streamBase) + args.FileLen
			nextCredit := int64(streamBase) + args.BufSz
			for cursor < end {
				b := x.WaitStream(cursor)
				data, _ := x.ReadAll(b).([]byte)
				x.Compute(prm.SwitchFilterCycles * b.Size())
				f.Feed(data)
				cursor = b.End()
				x.Deallocate(cursor)
				flush(false)
				// Per-chunk reply: the paper's flow control lets the host
				// issue its next bufSz request when the switch has consumed
				// the previous one.
				if cursor-streamBase >= nextCredit-streamBase {
					x.Send(aswitch.SendSpec{
						Dst: x.Src(), Type: san.Control, Addr: argBase,
						Size: 4, Flow: creditFlow,
					})
					nextCredit += args.BufSz
				}
			}
			flush(true)
			x.Send(aswitch.SendSpec{
				Dst: x.Src(), Type: san.Control, Addr: argBase,
				Size: 8, Flow: summaryFlow, Payload: f.IBytes,
			})
		})
	}

	app := func(p *sim.Proc, c *cluster.Cluster) map[string]any {
		h := c.Host(0)
		store := c.Store(0).ID()
		sw := c.Switch(0)

		// runNormal is the complete host-local program: filter and
		// color-reduce on the host. It is both the normal configurations'
		// body and the crash fallback the active configurations re-run when
		// the switch's handler plane dies mid-stream.
		runNormal := func() map[string]any {
			sum := fnv.New64a()
			var iBytes int64
			buf := h.Space().Alloc(prm.ChunkSize, 4096)
			color := func(frame []byte) {
				// Color reduction: decode + re-encode each I-frame.
				h.CPU().TouchRange(p, buf, int64(len(frame)), cache.Load)
				h.CPU().Compute(p, prm.HostColorInstr*int64(len(frame)))
				h.CPU().TouchRange(p, outAddr+0x100000, int64(len(frame)), cache.Store)
				sum.Write(frame)
				iBytes += int64(len(frame))
			}
			f := &filter{Out: color}
			apps.StreamChunks(p, h, store, "video", prm.FileSize, prm.ChunkSize, buf,
				cfg.Outstanding(), func(off, n int64, payloads []any) {
					h.CPU().TouchRange(p, buf, n, cache.Load)
					h.CPU().Compute(p, prm.HostFilterInstr*n)
					for _, pl := range payloads {
						if bts, ok := pl.([]byte); ok {
							f.Feed(bts)
						}
					}
				})
			return map[string]any{
				"iBytes":   iBytes,
				"reported": f.IBytes,
				"checksum": fmt.Sprintf("%x", sum.Sum64()),
			}
		}

		if cfg.IsActive() {
			sum := fnv.New64a()
			var iBytes int64
			color := func(frame []byte, base int64) {
				h.CPU().TouchRange(p, base, int64(len(frame)), cache.Load)
				h.CPU().Compute(p, prm.HostColorInstr*int64(len(frame)))
				h.CPU().TouchRange(p, outAddr+0x100000, int64(len(frame)), cache.Store)
				sum.Write(frame)
				iBytes += int64(len(frame))
			}
			h.SendMessage(p, &san.Message{
				Hdr:     san.Header{Dst: sw.ID(), Type: san.ActiveMsg, HandlerID: handlerID, Addr: argBase},
				Size:    64,
				Payload: handlerArgs{FileLen: prm.FileSize, BufSz: prm.ChunkSize},
			}, 0)
			// Event loop: credits pace the disk requests; I-frame batches
			// are color-reduced as they arrive; the summary ends the run.
			issued := int64(0)
			issue := func() {
				n := prm.FileSize - issued
				if n <= 0 {
					return
				}
				if n > prm.ChunkSize {
					n = prm.ChunkSize
				}
				h.IssueReadTo(p, store, "video", issued, n, sw.ID(), streamBase+issued, san.Data, 0, 0, 0x6003)
				issued += n
			}
			for i := 0; i < cfg.Outstanding(); i++ {
				issue()
			}
			var reported int64 = -1
			crashed := false
			asm := &messageAssembler{}
			// pollCredits issues new requests the moment the switch's
			// per-chunk replies arrive — the balanced-pipeline discipline:
			// keep the switch fed, then do the compute-heavy color pass.
			pollCredits := func() {
				for {
					if _, ok := h.TryRecvFlow(sw.ID(), creditFlow); !ok {
						return
					}
					issue()
				}
			}
			for reported < 0 && !crashed {
				pollCredits()
				comp := h.RecvAny(p)
				if len(comp.Payloads) == 1 {
					if _, isCrash := comp.Payloads[0].(aswitch.CrashNotice); isCrash {
						crashed = true
						continue
					}
				}
				switch {
				case comp.Hdr.Src == store:
					// Storage notification — unused here; credits pace us.
				case comp.Hdr.Flow == creditFlow:
					issue()
				case comp.Hdr.Flow == resultFlow:
					for _, pl := range comp.Payloads {
						if bts, ok := pl.([]byte); ok {
							asm.feed(bts, func(frame []byte) {
								pollCredits()
								color(frame, outAddr)
							})
						}
					}
				case comp.Hdr.Flow == summaryFlow:
					reported = comp.Payloads[0].(int64)
				}
			}
			if crashed {
				// Handler-crash fallback: the offloaded pipeline is gone, so
				// re-run the whole program locally. Partial switch output is
				// discarded — the local pass recomputes everything, which
				// keeps the result identical at the cost of the redone work.
				out := runNormal()
				out["fallback"] = true
				return out
			}
			return map[string]any{
				"iBytes":   iBytes,
				"reported": reported,
				"checksum": fmt.Sprintf("%x", sum.Sum64()),
			}
		}

		return runNormal()
	}

	run, inj := apps.RunIOWith(ccfg, cfg, plan, seed, setup, app, nil)
	return run, inj
}

// messageAssembler re-parses frame boundaries out of the concatenated
// I-frame batches the switch ships to the host.
type messageAssembler struct {
	f *filter
}

func (a *messageAssembler) feed(data []byte, out func(frame []byte)) {
	if a.f == nil {
		a.f = &filter{}
	}
	a.f.Out = out
	a.f.Feed(data)
}

// RunAll executes the four configurations (paper Figures 3/4).
func RunAll(prm Params) *stats.Result {
	res := &stats.Result{ID: "fig3", Title: "MPEG filter: time, host utilization, host I/O traffic"}
	for _, cfg := range apps.AllConfigs {
		res.Runs = append(res.Runs, Run(cfg, prm))
	}
	res.Bars = apps.StandardBars(res, 1)
	return res
}
