// Package hdl is the switch-handler description language: a small
// declarative language for data-plane handlers — match on stream and record
// fields, keep stateful per-handler registers, and emit / steer / aggregate
// / drop — compiled to the embedded switch processor's ISA (internal/svm).
//
// The package follows the Packet Transactions argument (PAPERS.md): handlers
// should be written against a high-level transactional model and compiled to
// the switch target, with the compiler verified by differential execution
// against a reference interpreter on the very simulator the handlers run on.
// Three executable artifacts share one AST:
//
//   - Compile translates a checked program to svm assembly whose cycle cost
//     is a deterministic function of the AST (HANDLERS.md documents the
//     per-construct instruction counts).
//   - Interpret executes the AST directly in Go, charging the same
//     documented costs through an independent implementation.
//   - Gen builds random well-typed programs from a seed, so the two
//     executions can be compared over arbitrary (program, packet stream)
//     pairs — outputs, final register state, deallocation schedule and
//     charged cycles must all agree.
//
// A program processes one mapped stream in fixed-size units and then runs a
// final stage:
//
//	; count records whose key byte is under a threshold
//	handler select {
//	    param threshold        ; bound to a register at launch
//	    var count              ; stateful register, starts at 0
//	    on record 16 {
//	        if b[0] < threshold {
//	            count = count + 1
//	        }
//	    }
//	    end {
//	        emit count
//	    }
//	}
//
// See HANDLERS.md for the grammar, the compilation model and the cost rules.
package hdl

import (
	"fmt"
	"strings"
)

// UnitMode selects how the on-stage walks the stream.
type UnitMode int

// Stream units: single bytes, little-endian 32-bit words, or fixed-size
// records addressed by byte/word fields.
const (
	UnitByte UnitMode = iota
	UnitWord
	UnitRecord
)

// Program is one parsed handler.
type Program struct {
	// Name is the handler's identifier.
	Name string
	// Params are launch-time inputs, bound to registers by the runner.
	Params []string
	// Vars are the handler's stateful registers, in declaration order.
	Vars []VarDecl
	// Consts are named compile-time constants.
	Consts []ConstDecl
	// On is the per-unit stream stage (nil when the handler has none).
	On *OnStage
	// End is the final stage's body; HasEnd distinguishes an empty end
	// block from an absent one.
	End    []Stmt
	HasEnd bool
}

// VarDecl declares one stateful register.
type VarDecl struct {
	Name string
	// Init is the activation-time initial value; HasInit distinguishes
	// "var x = 0" (an explicit, charged initialization) from "var x"
	// (whatever the launch registers hold, zero by default).
	Init    int64
	HasInit bool
}

// ConstDecl binds a name to a compile-time constant.
type ConstDecl struct {
	Name  string
	Value int64
}

// OnStage is the per-unit stream loop.
type OnStage struct {
	Mode UnitMode
	// Unit names the current byte/word in byte and word modes.
	Unit string
	// Size is the unit size in bytes (1 for byte, 4 for word, the declared
	// record size otherwise).
	Size int
	Body []Stmt
	Line int
}

// Stmt is one statement.
type Stmt interface{ stmtLine() int }

// Assign stores an expression into a var.
type Assign struct {
	Name string
	X    Expr
	Line int
}

// If branches on a comparison.
type If struct {
	Cond    Cond
	Then    []Stmt
	Else    []Stmt
	HasElse bool
	Line    int
}

// Emit appends a data word to the handler's output vector.
type Emit struct {
	X    Expr
	Line int
}

// Steer appends a steering decision word (a port / destination choice) to
// the output vector; it compiles identically to Emit and differs only in
// what the surrounding system does with the word.
type Steer struct {
	X    Expr
	Line int
}

// Drop abandons the current unit: control jumps to the loop's continue
// point (the unit is still deallocated). Only valid inside the on-stage.
type Drop struct {
	Line int
}

func (s *Assign) stmtLine() int { return s.Line }
func (s *If) stmtLine() int     { return s.Line }
func (s *Emit) stmtLine() int   { return s.Line }
func (s *Steer) stmtLine() int  { return s.Line }
func (s *Drop) stmtLine() int   { return s.Line }

// RelOp is a comparison operator. All comparisons are signed 32-bit.
type RelOp int

// Comparison operators.
const (
	RelEq RelOp = iota
	RelNe
	RelLt
	RelLe
	RelGt
	RelGe
)

var relNames = map[RelOp]string{
	RelEq: "==", RelNe: "!=", RelLt: "<", RelLe: "<=", RelGt: ">", RelGe: ">=",
}

func (o RelOp) String() string { return relNames[o] }

// Cond is a comparison between two expressions.
type Cond struct {
	L  Expr
	Op RelOp
	R  Expr
}

// BinOp is an arithmetic/logical operator. All arithmetic is wrapping
// 32-bit; >> is a logical (unsigned) shift.
type BinOp int

// Binary operators. Mul/Shl/Shr bind tighter than the additive group.
const (
	OpAdd BinOp = iota
	OpSub
	OpOr
	OpXor
	OpAnd
	OpMul
	OpShl
	OpShr
)

var binNames = map[BinOp]string{
	OpAdd: "+", OpSub: "-", OpOr: "|", OpXor: "^", OpAnd: "&",
	OpMul: "*", OpShl: "<<", OpShr: ">>",
}

func (o BinOp) String() string { return binNames[o] }

// Expr is an expression node.
type Expr interface{ exprLine() int }

// Num is an integer literal. Values must fit 32 bits (signed or unsigned).
type Num struct {
	V    int64
	Line int
}

// Ref names a var, param, const, or the on-stage unit.
type Ref struct {
	Name string
	Line int
}

// Field reads a byte (b[k]) or little-endian word (w[k]) at offset k of the
// current unit. Only valid inside the on-stage, bounds-checked against the
// unit size.
type Field struct {
	Word bool
	Off  int
	Line int
}

// Bin applies a binary operator. For Shl/Shr the right operand must be a
// constant expression in 0..31.
type Bin struct {
	Op   BinOp
	L, R Expr
	Line int
}

func (e *Num) exprLine() int   { return e.Line }
func (e *Ref) exprLine() int   { return e.Line }
func (e *Field) exprLine() int { return e.Line }
func (e *Bin) exprLine() int   { return e.Line }

// Render writes the program back as canonical source text that parses to an
// equivalent AST — the generator emits source through it so every random
// program also exercises the parser.
func (p *Program) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "handler %s {\n", p.Name)
	for _, c := range p.Consts {
		fmt.Fprintf(&b, "\tconst %s = %d\n", c.Name, c.Value)
	}
	for _, prm := range p.Params {
		fmt.Fprintf(&b, "\tparam %s\n", prm)
	}
	for _, v := range p.Vars {
		if v.HasInit {
			fmt.Fprintf(&b, "\tvar %s = %d\n", v.Name, v.Init)
		} else {
			fmt.Fprintf(&b, "\tvar %s\n", v.Name)
		}
	}
	if p.On != nil {
		switch p.On.Mode {
		case UnitByte:
			fmt.Fprintf(&b, "\ton byte %s {\n", p.On.Unit)
		case UnitWord:
			fmt.Fprintf(&b, "\ton word %s {\n", p.On.Unit)
		default:
			fmt.Fprintf(&b, "\ton record %d {\n", p.On.Size)
		}
		renderStmts(&b, p.On.Body, 2)
		b.WriteString("\t}\n")
	}
	if p.HasEnd {
		b.WriteString("\tend {\n")
		renderStmts(&b, p.End, 2)
		b.WriteString("\t}\n")
	}
	b.WriteString("}\n")
	return b.String()
}

func renderStmts(b *strings.Builder, stmts []Stmt, depth int) {
	ind := strings.Repeat("\t", depth)
	for _, s := range stmts {
		switch s := s.(type) {
		case *Assign:
			fmt.Fprintf(b, "%s%s = %s\n", ind, s.Name, renderExpr(s.X))
		case *Emit:
			fmt.Fprintf(b, "%semit %s\n", ind, renderExpr(s.X))
		case *Steer:
			fmt.Fprintf(b, "%ssteer %s\n", ind, renderExpr(s.X))
		case *Drop:
			fmt.Fprintf(b, "%sdrop\n", ind)
		case *If:
			fmt.Fprintf(b, "%sif %s %s %s {\n", ind,
				renderExpr(s.Cond.L), s.Cond.Op, renderExpr(s.Cond.R))
			renderStmts(b, s.Then, depth+1)
			if s.HasElse {
				fmt.Fprintf(b, "%s} else {\n", ind)
				renderStmts(b, s.Else, depth+1)
			}
			fmt.Fprintf(b, "%s}\n", ind)
		}
	}
}

func renderExpr(e Expr) string {
	switch e := e.(type) {
	case *Num:
		return fmt.Sprintf("%d", e.V)
	case *Ref:
		return e.Name
	case *Field:
		if e.Word {
			return fmt.Sprintf("w[%d]", e.Off)
		}
		return fmt.Sprintf("b[%d]", e.Off)
	case *Bin:
		return fmt.Sprintf("(%s %s %s)", renderExpr(e.L), e.Op, renderExpr(e.R))
	}
	return "?"
}
