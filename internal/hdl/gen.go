package hdl

// Seeded random-program generation for differential testing: GenProgram
// builds a well-typed AST from a splitmix64 stream, GenStream builds a
// packet stream, and the harness runs both executions over the pair. The
// generator emits source through (*Program).Render, so every random program
// also exercises the lexer and parser.

// Rand is a splitmix64 generator — the repo's standard seeded PRNG, kept
// private to hdl to avoid an import cycle with the apps packages.
type Rand struct{ s uint64 }

// NewRand seeds a generator.
func NewRand(seed uint64) *Rand { return &Rand{s: seed} }

// Next returns the next 64 random bits.
func (r *Rand) Next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// Intn returns a value in [0, n).
func (r *Rand) Intn(n int) int { return int(r.Next() % uint64(n)) }

// genCtx tracks what names an expression may reference at the current
// point, mirroring the checker's scoping rules.
type genCtx struct {
	r      *Rand
	vars   []string
	params []string
	consts []string
	// unit / unitSize are set inside the on-stage; unit is "" in record
	// mode and in the end stage.
	unit     string
	unitSize int // 0 outside the on-stage
	inOn     bool
}

// GenProgram builds a random well-typed handler from a seed. Every program
// it returns passes Check, compiles within the encoding limits, and
// terminates (the language's only loop is the bounded stream walk).
func GenProgram(seed uint64) *Program {
	r := NewRand(seed)
	p := &Program{Name: "gen"}
	g := &genCtx{r: r}

	for i, n := 0, r.Intn(3); i < n; i++ {
		name := string(rune('A' + i))
		p.Consts = append(p.Consts, ConstDecl{Name: name, Value: genConst(r)})
		g.consts = append(g.consts, name)
	}
	for i, n := 0, r.Intn(3); i < n; i++ {
		name := "p" + string(rune('0'+i))
		p.Params = append(p.Params, name)
		g.params = append(g.params, name)
	}
	for i, n := 0, 1+r.Intn(4); i < n; i++ {
		name := "v" + string(rune('0'+i))
		v := VarDecl{Name: name}
		if r.Intn(2) == 0 {
			v.Init, v.HasInit = genConst(r), true
		}
		p.Vars = append(p.Vars, v)
		g.vars = append(g.vars, name)
	}

	on := &OnStage{}
	switch r.Intn(3) {
	case 0:
		on.Mode, on.Size, on.Unit = UnitByte, 1, "u"
	case 1:
		on.Mode, on.Size, on.Unit = UnitWord, 4, "u"
	default:
		on.Mode, on.Size = UnitRecord, 2+r.Intn(31) // 2..32-byte records
	}
	g.inOn, g.unit, g.unitSize = true, on.Unit, on.Size
	on.Body = g.stmts(1+r.Intn(4), 2)
	g.inOn, g.unit, g.unitSize = false, "", 0
	p.On = on

	p.HasEnd = true
	p.End = g.stmts(1+r.Intn(3), 2)
	// Always observe the final state so register divergence shows up in
	// the output vector too.
	for _, v := range g.vars {
		p.End = append(p.End, &Emit{X: &Ref{Name: v}})
	}
	return p
}

// genConst picks constant values across the interesting ranges: small
// single-instruction immediates, wide 32-bit values needing the byte-chunk
// build, and boundary cases.
func genConst(r *Rand) int64 {
	switch r.Intn(6) {
	case 0:
		return int64(r.Intn(2048)) - 1024 // [-1024, 1023], one instruction
	case 1:
		return int64(uint32(r.Next())) // anywhere in 32 bits
	case 2:
		return -int64(r.Intn(1 << 31)) // negative, often wide
	case 3:
		return []int64{0, 1, -1, 255, 256, 1023, 1024, -1024, -1025,
			1<<31 - 1, -(1 << 31), 1<<32 - 1}[r.Intn(12)]
	case 4:
		return int64(r.Intn(256))
	default:
		return int64(r.Intn(1 << 16))
	}
}

// stmts builds up to n statements; depth bounds if-nesting.
func (g *genCtx) stmts(n, depth int) []Stmt {
	var out []Stmt
	for i := 0; i < n; i++ {
		out = append(out, g.stmt(depth))
	}
	return out
}

func (g *genCtx) stmt(depth int) Stmt {
	for {
		switch g.r.Intn(6) {
		case 0, 1:
			return &Assign{Name: g.vars[g.r.Intn(len(g.vars))], X: g.expr(3)}
		case 2:
			return &Emit{X: g.expr(3)}
		case 3:
			return &Steer{X: g.expr(2)}
		case 4:
			if depth == 0 {
				continue
			}
			s := &If{
				Cond: Cond{L: g.expr(2), Op: RelOp(g.r.Intn(6)), R: g.expr(2)},
				Then: g.stmts(1+g.r.Intn(2), depth-1),
			}
			if g.r.Intn(2) == 0 {
				s.Else, s.HasElse = g.stmts(1+g.r.Intn(2), depth-1), true
			}
			return s
		default:
			if !g.inOn || g.r.Intn(3) != 0 { // drop is rare and on-stage only
				continue
			}
			return &Drop{}
		}
	}
}

// expr builds an expression of bounded structural depth; the bound keeps
// exprDepth within the compiler's scratch window even one slot up inside a
// comparison's right operand.
func (g *genCtx) expr(depth int) Expr {
	if depth == 0 || g.r.Intn(3) == 0 {
		return g.leaf()
	}
	op := []BinOp{OpAdd, OpSub, OpOr, OpXor, OpAnd, OpMul, OpShl, OpShr}[g.r.Intn(8)]
	if op == OpShl || op == OpShr {
		return &Bin{Op: op, L: g.expr(depth - 1), R: &Num{V: int64(g.r.Intn(32))}}
	}
	return &Bin{Op: op, L: g.expr(depth - 1), R: g.expr(depth - 1)}
}

func (g *genCtx) leaf() Expr {
	names := len(g.vars) + len(g.params) + len(g.consts)
	if g.unit != "" {
		names++
	}
	pick := g.r.Intn(names + 2)
	switch {
	case pick < len(g.vars):
		return &Ref{Name: g.vars[pick]}
	case pick < len(g.vars)+len(g.params):
		return &Ref{Name: g.params[pick-len(g.vars)]}
	case pick < len(g.vars)+len(g.params)+len(g.consts):
		return &Ref{Name: g.consts[pick-len(g.vars)-len(g.params)]}
	case g.unit != "" && pick == names-1:
		return &Ref{Name: g.unit}
	case g.inOn && g.unitSize >= 1 && g.r.Intn(2) == 0:
		if g.unitSize >= 4 && g.r.Intn(2) == 0 {
			return &Field{Word: true, Off: g.r.Intn(g.unitSize - 3)}
		}
		return &Field{Off: g.r.Intn(g.unitSize)}
	default:
		return &Num{V: genConst(g.r)}
	}
}

// GenStream builds a random packet stream: lengths cover empty, tiny, and
// multi-buffer cases, with byte values across the full range.
func GenStream(seed uint64) []byte {
	r := NewRand(seed)
	n := []int{0, 1, 3, 4, 7, 16, 33, 64, 100, 257}[r.Intn(10)] + r.Intn(32)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(r.Next())
	}
	return b
}

// GenParams binds random values to a program's parameters.
func GenParams(p *Program, seed uint64) map[string]uint32 {
	r := NewRand(seed)
	m := make(map[string]uint32, len(p.Params))
	for _, name := range p.Params {
		m[name] = uint32(r.Next())
	}
	return m
}
