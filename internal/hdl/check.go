package hdl

// Compiler limits, fixed by the register map (HANDLERS.md): vars live in
// r8..r15, params in r16..r23, expression scratch in r24..r30.
const (
	// MaxVars is the number of var registers.
	MaxVars = 8
	// MaxParams is the number of param registers.
	MaxParams = 8
	// MaxScratch is the expression evaluation stack depth.
	MaxScratch = 7
	// MaxRecordSize bounds the record unit (the paper's 512-byte MTU).
	MaxRecordSize = 512
)

// symKind classifies a name.
type symKind int

const (
	symVar symKind = iota
	symParam
	symConst
	symUnit
)

type symbol struct {
	kind symKind
	val  int64 // symConst
}

// Check runs every semantic check on a parsed program. Parse calls it;
// it is exported so tools holding a hand-built AST can validate it too.
func Check(p *Program) error {
	c := &checker{syms: make(map[string]*symbol)}
	declare := func(name string, line int, kind symKind, val int64) error {
		if name == "b" || name == "w" {
			return errf(line, "%q is reserved for field access", name)
		}
		if _, dup := c.syms[name]; dup {
			return errf(line, "duplicate name %q", name)
		}
		c.syms[name] = &symbol{kind: kind, val: val}
		return nil
	}
	for _, cd := range p.Consts {
		if !fits32(cd.Value) {
			return errf(1, "constant %d does not fit 32 bits", cd.Value)
		}
		if err := declare(cd.Name, 1, symConst, cd.Value); err != nil {
			return err
		}
	}
	if len(p.Params) > MaxParams {
		return errf(1, "%d params; the compiler maps at most %d to registers", len(p.Params), MaxParams)
	}
	for _, prm := range p.Params {
		if err := declare(prm, 1, symParam, 0); err != nil {
			return err
		}
	}
	if len(p.Vars) > MaxVars {
		return errf(1, "%d vars; the compiler maps at most %d to registers", len(p.Vars), MaxVars)
	}
	for _, v := range p.Vars {
		if v.HasInit && !fits32(v.Init) {
			return errf(1, "constant %d does not fit 32 bits", v.Init)
		}
		if err := declare(v.Name, 1, symVar, 0); err != nil {
			return err
		}
	}
	if p.On == nil && !p.HasEnd {
		return errf(1, "handler has no stages")
	}
	if p.On != nil {
		c.on = p.On
		if p.On.Unit != "" {
			if err := declare(p.On.Unit, p.On.Line, symUnit, 0); err != nil {
				return err
			}
		}
		if err := c.stmts(p.On.Body); err != nil {
			return err
		}
		c.on = nil
		if p.On.Unit != "" {
			delete(c.syms, p.On.Unit)
		}
	}
	return c.stmts(p.End)
}

// fits32 accepts any value representable in 32 bits, signed or unsigned.
func fits32(v int64) bool { return v >= -(1<<31) && v < 1<<32 }

type checker struct {
	syms map[string]*symbol
	on   *OnStage // non-nil while checking the on-stage body
}

func (c *checker) stmts(body []Stmt) error {
	for _, s := range body {
		switch s := s.(type) {
		case *Assign:
			sym, ok := c.syms[s.Name]
			if !ok {
				return errf(s.Line, "undefined name %q", s.Name)
			}
			switch sym.kind {
			case symParam:
				return errf(s.Line, "cannot assign to parameter %q", s.Name)
			case symConst:
				return errf(s.Line, "cannot assign to constant %q", s.Name)
			case symUnit:
				return errf(s.Line, "cannot assign to the unit %q", s.Name)
			}
			if err := c.expr(s.X); err != nil {
				return err
			}
		case *Emit:
			if err := c.expr(s.X); err != nil {
				return err
			}
		case *Steer:
			if err := c.expr(s.X); err != nil {
				return err
			}
		case *Drop:
			if c.on == nil {
				return errf(s.Line, "drop outside the on-stage")
			}
		case *If:
			if err := c.expr(s.Cond.L); err != nil {
				return err
			}
			if err := c.expr(s.Cond.R); err != nil {
				return err
			}
			if d := condDepth(s.Cond); d > MaxScratch {
				return errf(s.Line, "expression needs %d scratch registers; the compiler has %d", d, MaxScratch)
			}
			if err := c.stmts(s.Then); err != nil {
				return err
			}
			if err := c.stmts(s.Else); err != nil {
				return err
			}
		}
		// Every statement-level expression must fit the scratch stack.
		if x, line := stmtExpr(s); x != nil {
			if d := exprDepth(x); d > MaxScratch {
				return errf(line, "expression needs %d scratch registers; the compiler has %d", d, MaxScratch)
			}
		}
	}
	return nil
}

// stmtExpr returns a statement's top-level expression, if it has one.
func stmtExpr(s Stmt) (Expr, int) {
	switch s := s.(type) {
	case *Assign:
		return s.X, s.Line
	case *Emit:
		return s.X, s.Line
	case *Steer:
		return s.X, s.Line
	}
	return nil, 0
}

func (c *checker) expr(e Expr) error {
	switch e := e.(type) {
	case *Num:
		if !fits32(e.V) {
			return errf(e.Line, "constant %d does not fit 32 bits", e.V)
		}
	case *Ref:
		if _, ok := c.syms[e.Name]; !ok {
			return errf(e.Line, "undefined name %q", e.Name)
		}
	case *Field:
		if c.on == nil {
			return errf(e.Line, "field access outside the on-stage")
		}
		size := 1
		name := "b"
		if e.Word {
			size, name = 4, "w"
		}
		if e.Off < 0 || e.Off+size > c.on.Size {
			return errf(e.Line, "field %s[%d] outside the %d-byte unit", name, e.Off, c.on.Size)
		}
	case *Bin:
		if err := c.expr(e.L); err != nil {
			return err
		}
		if e.Op == OpShl || e.Op == OpShr {
			v, ok := c.constVal(e.R)
			if !ok || v < 0 || v > 31 {
				return errf(e.Line, "shift amount must be a constant in 0..31")
			}
			return nil
		}
		return c.expr(e.R)
	}
	return nil
}

// constVal resolves an expression that must be compile-time constant:
// a literal or a const reference.
func (c *checker) constVal(e Expr) (int64, bool) {
	switch e := e.(type) {
	case *Num:
		return e.V, true
	case *Ref:
		if sym, ok := c.syms[e.Name]; ok && sym.kind == symConst {
			return sym.val, true
		}
	}
	return 0, false
}

// exprDepth is the number of scratch registers evaluation needs: leaves
// take one slot; a binary operator holds its left value while the right
// evaluates one slot higher; shifts evaluate only their left operand.
func exprDepth(e Expr) int {
	switch e := e.(type) {
	case *Bin:
		if e.Op == OpShl || e.Op == OpShr {
			return exprDepth(e.L)
		}
		return max(exprDepth(e.L), exprDepth(e.R)+1)
	default:
		return 1
	}
}

// condDepth: the left value is held while the right evaluates above it.
func condDepth(c Cond) int {
	return max(exprDepth(c.L), exprDepth(c.R)+1)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
