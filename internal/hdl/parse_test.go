package hdl

import "testing"

func TestParseSelect(t *testing.T) {
	p, err := Parse(SelectHDL)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "select" || len(p.Params) != 1 || len(p.Vars) != 1 {
		t.Fatalf("unexpected shape: %+v", p)
	}
	if p.On == nil || p.On.Mode != UnitRecord || p.On.Size != 16 {
		t.Fatalf("on-stage: %+v", p.On)
	}
	if !p.HasEnd || len(p.End) != 1 {
		t.Fatalf("end stage: %+v", p.End)
	}
}

func TestParsePrecedence(t *testing.T) {
	// 2+3*4 must parse as 2+(3*4); shifts bind with the multiplicative
	// level: 1<<2+1 is (1<<2)+1.
	for _, tc := range []struct {
		expr string
		want uint32
	}{
		{"2 + 3 * 4", 14},
		{"1 << 2 + 1", 5},
		{"(2 + 3) * 4", 20},
		{"10 - 2 - 3", 5}, // left associative
		{"255 & 15 | 16", 31},
		{"6 ^ 3", 5},
		{"256 >> 4", 16},
		{"7 * -2", 0xFFFFFFF2}, // wrapping
	} {
		src := "handler h { end { emit " + tc.expr + " } }"
		c, err := Compile(src)
		if err != nil {
			t.Fatalf("%s: %v", tc.expr, err)
		}
		got, err := RunSlice(c, nil, DiffBase, nil)
		if err != nil {
			t.Fatalf("%s: %v", tc.expr, err)
		}
		if got.Out[0] != tc.want {
			t.Errorf("%s = %#x, want %#x", tc.expr, got.Out[0], tc.want)
		}
		ref := Interpret(c.AST, nil, DiffBase, nil)
		if err := Diff(got, ref); err != nil {
			t.Errorf("%s: %v", tc.expr, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{
			"bad number",
			`handler h { end { emit 0z } }`,
			`hdl: line 1: bad number "0z"`,
		},
		{
			"unexpected character",
			`handler h { end { emit 1 @ 2 } }`,
			`hdl: line 1: unexpected character "@"`,
		},
		{
			"two on-stages",
			"handler h { on byte u { drop }\non byte v { drop } }",
			`hdl: line 2: handler already has an on-stage`,
		},
		{
			"on after end",
			"handler h { end { emit 0 }\non byte u { drop } }",
			`hdl: line 2: on-stage must precede the end stage`,
		},
		{
			"two end stages",
			"handler h { end { emit 0 }\nend { emit 1 } }",
			`hdl: line 2: handler already has an end stage`,
		},
		{
			"record size zero",
			`handler h { on record 0 { drop } }`,
			`hdl: line 1: record size 0 out of range 1..512`,
		},
		{
			"record size huge",
			`handler h { on record 4096 { drop } }`,
			`hdl: line 1: record size 4096 out of range 1..512`,
		},
		{
			"bad unit kind",
			`handler h { on bit u { drop } }`,
			`hdl: line 1: expected byte, word, or record after "on", got "bit"`,
		},
		{
			"missing comparison",
			`handler h { end { if 1 { emit 0 } } }`,
			`hdl: line 1: expected a comparison operator, got "{"`,
		},
		{
			"keyword as name",
			`handler h { var emit end { emit 0 } }`,
			`hdl: line 1: expected variable name, got "emit"`,
		},
		{
			"trailing input",
			"handler h { end { emit 0 } } junk",
			`hdl: line 1: trailing input after handler: "junk"`,
		},
		{
			"truncated",
			`handler h { end { emit`,
			`hdl: line 1: expected an expression, got "end of input"`,
		},
		{
			"stray declaration",
			`handler h { 5 }`,
			`hdl: line 1: expected a declaration, stage, or "}", got "5"`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("parsed without error, want %q", tc.want)
			}
			if err.Error() != tc.want {
				t.Fatalf("error = %q, want %q", err.Error(), tc.want)
			}
		})
	}
}

// Comments, hex literals and negative initializers all lex correctly.
func TestParseLexerDetails(t *testing.T) {
	src := `
; leading comment
handler h {
	const mask = 0xFF  ; hex works
	var x = -5
	end {
		emit x & mask
	}
}
`
	c, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunSlice(c, nil, DiffBase, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Out[0] != uint32(0xFFFFFFFB)&0xFF {
		t.Fatalf("got %#x", got.Out[0])
	}
}
