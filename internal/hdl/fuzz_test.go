package hdl

import (
	"strings"
	"testing"
)

// FuzzParse feeds arbitrary text to the front end: parsing must never
// panic, and anything accepted must render to canonical source that parses
// again, renders identically, and compiles (or is rejected only for
// exceeding the encodable program size).
func FuzzParse(f *testing.F) {
	f.Add(SelectHDL)
	f.Add(SumHDL)
	f.Add(MinMaxHDL)
	f.Add("handler h { end { emit 1 } }")
	f.Add("handler h { on byte u { drop } }")
	f.Add("handler h { const c = 0xFF param p var x = -9 on record 12 { if w[4] >= p { x = x + (b[0] << 3) } else { steer c } } end { emit x } }")
	f.Add("handler h { on word u { emit u * u } }")
	f.Add("; comment\nhandler h{end{emit((1+2)*3)}}")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			if !strings.HasPrefix(err.Error(), "hdl: line ") {
				t.Fatalf("error without position: %v", err)
			}
			return
		}
		canon := p.Render()
		q, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical rendering does not re-parse: %v\n%s", err, canon)
		}
		if got := q.Render(); got != canon {
			t.Fatalf("render not a fixed point\nfirst:\n%s\nsecond:\n%s", canon, got)
		}
		if _, err := CompileAST(p); err != nil &&
			!strings.Contains(err.Error(), "the binary encoding caps programs") {
			t.Fatalf("checked program failed to compile: %v", err)
		}
	})
}

// FuzzDiff turns the fuzzer loose on the differential harness itself: any
// seed must produce a program whose compiled and interpreted executions
// agree on every observable.
func FuzzDiff(f *testing.F) {
	f.Add(uint64(0))
	f.Add(uint64(1))
	f.Add(uint64(42))
	f.Add(uint64(0xDEADBEEF))
	f.Fuzz(func(t *testing.T, seed uint64) {
		if err := DiffSeed(seed); err != nil {
			t.Fatal(err)
		}
	})
}
