package hdl

import "testing"

// Satellite: exact error text for every type-checker diagnostic. These
// strings are part of the tool's user interface; a change here should be a
// deliberate decision, not a drive-by.
func TestCheckerDiagnostics(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{
			"reserved name",
			`handler h { var b end { emit 0 } }`,
			`hdl: line 1: "b" is reserved for field access`,
		},
		{
			"duplicate name",
			`handler h { var x var x end { emit 0 } }`,
			`hdl: line 1: duplicate name "x"`,
		},
		{
			"param var collision",
			`handler h { param x var x end { emit 0 } }`,
			`hdl: line 1: duplicate name "x"`,
		},
		{
			"const too wide",
			`handler h { const c = 4294967296 end { emit c } }`,
			`hdl: line 1: constant 4294967296 does not fit 32 bits`,
		},
		{
			"too many vars",
			"handler h { var a var c var d var e var f var g var i var j var k end { emit 0 } }",
			`hdl: line 1: 9 vars; the compiler maps at most 8 to registers`,
		},
		{
			"too many params",
			"handler h { param a param c param d param e param f param g param i param j param k end { emit 0 } }",
			`hdl: line 1: 9 params; the compiler maps at most 8 to registers`,
		},
		{
			"no stages",
			`handler h { var x }`,
			`hdl: line 1: handler has no stages`,
		},
		{
			"undefined name",
			`handler h { end { emit nope } }`,
			`hdl: line 1: undefined name "nope"`,
		},
		{
			"assign to param",
			`handler h { param p end { p = 1 } }`,
			`hdl: line 1: cannot assign to parameter "p"`,
		},
		{
			"assign to const",
			`handler h { const c = 1 end { c = 2 } }`,
			`hdl: line 1: cannot assign to constant "c"`,
		},
		{
			"assign to unit",
			`handler h { on byte u { u = 1 } }`,
			`hdl: line 1: cannot assign to the unit "u"`,
		},
		{
			"drop outside on-stage",
			`handler h { end { drop } }`,
			`hdl: line 1: drop outside the on-stage`,
		},
		{
			"field outside on-stage",
			`handler h { end { emit b[0] } }`,
			`hdl: line 1: field access outside the on-stage`,
		},
		{
			"byte field out of unit",
			`handler h { on record 8 { emit b[8] } }`,
			`hdl: line 1: field b[8] outside the 8-byte unit`,
		},
		{
			"word field straddles unit",
			`handler h { on record 8 { emit w[5] } }`,
			`hdl: line 1: field w[5] outside the 8-byte unit`,
		},
		{
			"variable shift amount",
			`handler h { var x end { emit 1 << x } }`,
			`hdl: line 1: shift amount must be a constant in 0..31`,
		},
		{
			"oversized shift amount",
			`handler h { end { emit 1 << 32 } }`,
			`hdl: line 1: shift amount must be a constant in 0..31`,
		},
		{
			"expression too deep",
			`handler h { var x end { x = 1+(1+(1+(1+(1+(1+(1+1)))))) } }`,
			`hdl: line 1: expression needs 8 scratch registers; the compiler has 7`,
		},
		{
			"unit scope ends with the on-stage",
			`handler h { on byte u { emit u } end { emit u } }`,
			`hdl: line 1: undefined name "u"`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("parsed without error, want %q", tc.want)
			}
			if err.Error() != tc.want {
				t.Fatalf("error = %q, want %q", err.Error(), tc.want)
			}
		})
	}
}

// The deepest expression the scratch window allows must still compile and
// run; only one level beyond it errors.
func TestScratchDepthBoundary(t *testing.T) {
	ok := `handler h { var x end { x = 1+(1+(1+(1+(1+(1+1))))) emit x } }`
	c, err := Compile(ok)
	if err != nil {
		t.Fatalf("depth-7 expression rejected: %v", err)
	}
	got, err := RunSlice(c, nil, DiffBase, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Out[0] != 7 {
		t.Fatalf("depth-7 sum = %d, want 7", got.Out[0])
	}
	want := Interpret(c.AST, nil, DiffBase, nil)
	if err := Diff(got, want); err != nil {
		t.Fatal(err)
	}
}
