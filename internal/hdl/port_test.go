package hdl

import (
	"testing"

	"activesan/internal/cluster"
	"activesan/internal/iodev"
	"activesan/internal/san"
	"activesan/internal/sim"
	"activesan/internal/svm"
)

// The ported handlers must be golden-identical to their hand-written
// assembly predecessors: same emitted words on the same streams.

// runAsm executes a hand-written library program over a stream with the
// documented register convention and returns its emitted words.
func runAsm(t *testing.T, src string, stream []byte, extra map[uint8]uint32) []uint32 {
	t.Helper()
	env := svm.NewSliceEnv(DiffBase, stream)
	init := map[uint8]uint32{
		1: uint32(DiffBase),
		2: uint32(DiffBase + int64(len(stream))),
	}
	for r, v := range extra {
		init[r] = v
	}
	m := svm.NewMachine(env, svm.MustAssemble(src), init)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return env.Out
}

func runHDL(t *testing.T, src string, stream []byte, params map[string]uint32) []uint32 {
	t.Helper()
	c, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunSlice(c, stream, DiffBase, params)
	if err != nil {
		t.Fatal(err)
	}
	return got.Out
}

func wordsEqual(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSelectPortMatchesAssembly(t *testing.T) {
	for seed := uint64(0); seed < 30; seed++ {
		stream := GenStream(seed)
		stream = stream[:len(stream)/16*16] // whole records
		for _, thr := range []uint32{0, 1, 64, 128, 255, 256} {
			asm := runAsm(t, svm.SelectSource, stream, map[uint8]uint32{5: thr, 6: 16})
			hdl := runHDL(t, SelectHDL, stream, map[string]uint32{"threshold": thr})
			if !wordsEqual(asm, hdl) {
				t.Fatalf("seed %d thr %d: assembly %v, HDL port %v", seed, thr, asm, hdl)
			}
		}
	}
}

func TestSumPortMatchesAssembly(t *testing.T) {
	for seed := uint64(0); seed < 30; seed++ {
		stream := GenStream(seed)
		stream = stream[:len(stream)/4*4] // whole words: the documented equivalence domain
		asm := runAsm(t, svm.SumWordsSource, stream, nil)
		hdl := runHDL(t, SumHDL, stream, nil)
		if !wordsEqual(asm, hdl) {
			t.Fatalf("seed %d: assembly %v, HDL port %v", seed, asm, hdl)
		}
	}
}

func TestMinMaxPortMatchesAssembly(t *testing.T) {
	for seed := uint64(0); seed < 30; seed++ {
		stream := GenStream(seed)
		asm := runAsm(t, svm.MinMaxSource, stream, nil)
		hdl := runHDL(t, MinMaxHDL, stream, nil)
		if !wordsEqual(asm, hdl) {
			t.Fatalf("seed %d: assembly %v, HDL port %v", seed, asm, hdl)
		}
	}
}

// TestHDLHandlerOnRealSwitch closes the loop: the compiled HDL select
// handler runs on a simulated switch, reading disk-streamed bytes through
// the ATB, and its count must match both the host oracle and the
// hand-written assembly handler run under identical conditions.
func TestHDLHandlerOnRealSwitch(t *testing.T) {
	const recSize = 16
	const total = 64 * 1024
	const streamBase = 1 << 20
	data := make([]byte, total)
	want := uint32(0)
	for i := 0; i < total/recSize; i++ {
		data[i*recSize] = byte((i * 131) % 251)
		if data[i*recSize] < 64 {
			want++
		}
	}

	eng := sim.NewEngine()
	c := cluster.NewIOCluster(eng, cluster.DefaultIOClusterConfig())
	c.Store(0).AddFile(&iodev.File{Name: "t", Size: total, Data: data})
	sw := c.Switch(0)
	comp := MustCompile(SelectHDL)
	sw.Register(21, "hdl-select", comp.Handler(HandlerSpec{
		StreamBase: streamBase, StreamLen: total, MemBase: 1 << 16,
		Params: map[string]uint32{"threshold": 64},
		Flow:   0x7301, Addr: 0x100,
	}))
	c.Start()
	var got uint32
	eng.Spawn("app", func(p *sim.Proc) {
		h := c.Host(0)
		h.SendMessage(p, &san.Message{
			Hdr:  san.Header{Dst: sw.ID(), Type: san.ActiveMsg, HandlerID: 21, Addr: 0},
			Size: 32,
		}, 0)
		tok := h.IssueReadTo(p, c.Store(0).ID(), "t", 0, total,
			sw.ID(), streamBase, san.Data, 0, 0, 0x6500)
		h.WaitRead(p, tok)
		res := h.RecvFlow(p, sw.ID(), 0x7301)
		got = res.Payloads[0].([]uint32)[0]
	})
	eng.Run()
	defer c.Shutdown()
	if got != want {
		t.Fatalf("switch-executed HDL handler counted %d, want %d", got, want)
	}
}

// TestHandlerSpecBadParam: launching with an unknown parameter fails fast.
func TestHandlerSpecBadParam(t *testing.T) {
	c := MustCompile(SelectHDL)
	if _, err := c.InitRegs(DiffBase, 0, map[string]uint32{"nope": 1}, nil); err == nil {
		t.Fatal("expected an error for an unknown parameter")
	}
	if _, err := c.InitRegs(DiffBase, 0, nil, map[string]uint32{"nope": 1}); err == nil {
		t.Fatal("expected an error for an unknown var")
	}
}
