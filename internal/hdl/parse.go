package hdl

import (
	"fmt"
	"strconv"
)

// Parse turns handler source into an AST and runs every semantic check; on
// success the program is well-typed and compilable. Errors carry the
// 1-based source line: "hdl: line N: message".
func Parse(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog, err := p.program()
	if err != nil {
		return nil, err
	}
	if err := Check(prog); err != nil {
		return nil, err
	}
	return prog, nil
}

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokPunct // {, }, (, ), [, ], =, ==, !=, <, <=, >, >=, +, -, *, &, |, ^, <<, >>
)

type token struct {
	kind tokKind
	text string
	val  int64 // tokInt
	line int
}

func errf(line int, format string, args ...any) error {
	return fmt.Errorf("hdl: line %d: "+format, append([]any{line}, args...)...)
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// lex tokenizes the source; comments run from ';' to end of line.
func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == ';':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case isIdentStart(c):
			j := i
			for j < len(src) && isIdentPart(src[j]) {
				j++
			}
			toks = append(toks, token{kind: tokIdent, text: src[i:j], line: line})
			i = j
		case isDigit(c):
			j := i
			for j < len(src) && (isIdentPart(src[j])) {
				j++ // grabs 0x... and trailing junk; ParseInt rejects the junk
			}
			v, err := strconv.ParseInt(src[i:j], 0, 64)
			if err != nil {
				return nil, errf(line, "bad number %q", src[i:j])
			}
			toks = append(toks, token{kind: tokInt, text: src[i:j], val: v, line: line})
			i = j
		default:
			two := ""
			if i+1 < len(src) {
				two = src[i : i+2]
			}
			switch two {
			case "==", "!=", "<=", ">=", "<<", ">>":
				toks = append(toks, token{kind: tokPunct, text: two, line: line})
				i += 2
				continue
			}
			switch c {
			case '{', '}', '(', ')', '[', ']', '=', '<', '>', '+', '-', '*', '&', '|', '^':
				toks = append(toks, token{kind: tokPunct, text: string(c), line: line})
				i++
			default:
				return nil, errf(line, "unexpected character %q", string(c))
			}
		}
	}
	toks = append(toks, token{kind: tokEOF, text: "end of input", line: line})
	return toks, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

// expect consumes a punct/keyword token with the given text.
func (p *parser) expect(text string) (token, error) {
	t := p.next()
	if t.text != text {
		return t, errf(t.line, "expected %q, got %q", text, t.text)
	}
	return t, nil
}

func (p *parser) expectIdent(what string) (token, error) {
	t := p.next()
	if t.kind != tokIdent || isKeyword(t.text) {
		return t, errf(t.line, "expected %s, got %q", what, t.text)
	}
	return t, nil
}

func (p *parser) expectInt(what string) (token, error) {
	neg := false
	t := p.peek()
	if t.text == "-" {
		p.next()
		neg = true
	}
	t = p.next()
	if t.kind != tokInt {
		return t, errf(t.line, "expected %s, got %q", what, t.text)
	}
	if neg {
		t.val = -t.val
	}
	return t, nil
}

var keywords = map[string]bool{
	"handler": true, "param": true, "var": true, "const": true,
	"on": true, "byte": true, "word": true, "record": true, "end": true,
	"if": true, "else": true, "emit": true, "steer": true, "drop": true,
}

func isKeyword(s string) bool { return keywords[s] }

func (p *parser) program() (*Program, error) {
	if _, err := p.expect("handler"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent("handler name")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect("{"); err != nil {
		return nil, err
	}
	prog := &Program{Name: name.text}

	// Declarations first, then stages.
	for {
		t := p.peek()
		switch t.text {
		case "param":
			p.next()
			id, err := p.expectIdent("parameter name")
			if err != nil {
				return nil, err
			}
			prog.Params = append(prog.Params, id.text)
		case "var":
			p.next()
			id, err := p.expectIdent("variable name")
			if err != nil {
				return nil, err
			}
			v := VarDecl{Name: id.text}
			if p.peek().text == "=" {
				p.next()
				n, err := p.expectInt("initial value")
				if err != nil {
					return nil, err
				}
				v.Init, v.HasInit = n.val, true
			}
			prog.Vars = append(prog.Vars, v)
		case "const":
			p.next()
			id, err := p.expectIdent("constant name")
			if err != nil {
				return nil, err
			}
			if _, err := p.expect("="); err != nil {
				return nil, err
			}
			n, err := p.expectInt("constant value")
			if err != nil {
				return nil, err
			}
			prog.Consts = append(prog.Consts, ConstDecl{Name: id.text, Value: n.val})
		case "on":
			if prog.On != nil {
				return nil, errf(t.line, "handler already has an on-stage")
			}
			if prog.HasEnd {
				return nil, errf(t.line, "on-stage must precede the end stage")
			}
			p.next()
			stage, err := p.onStage(t.line)
			if err != nil {
				return nil, err
			}
			prog.On = stage
		case "end":
			if prog.HasEnd {
				return nil, errf(t.line, "handler already has an end stage")
			}
			p.next()
			body, err := p.block()
			if err != nil {
				return nil, err
			}
			prog.End, prog.HasEnd = body, true
		case "}":
			p.next()
			if tail := p.next(); tail.kind != tokEOF {
				return nil, errf(tail.line, "trailing input after handler: %q", tail.text)
			}
			return prog, nil
		default:
			return nil, errf(t.line, "expected a declaration, stage, or \"}\", got %q", t.text)
		}
	}
}

func (p *parser) onStage(line int) (*OnStage, error) {
	t := p.next()
	stage := &OnStage{Line: line}
	switch t.text {
	case "byte", "word":
		id, err := p.expectIdent("unit name")
		if err != nil {
			return nil, err
		}
		stage.Unit = id.text
		if t.text == "byte" {
			stage.Mode, stage.Size = UnitByte, 1
		} else {
			stage.Mode, stage.Size = UnitWord, 4
		}
	case "record":
		n, err := p.expectInt("record size")
		if err != nil {
			return nil, err
		}
		stage.Mode, stage.Size = UnitRecord, int(n.val)
		if n.val < 1 || n.val > MaxRecordSize {
			return nil, errf(n.line, "record size %d out of range 1..%d", n.val, MaxRecordSize)
		}
	default:
		return nil, errf(t.line, "expected byte, word, or record after \"on\", got %q", t.text)
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	stage.Body = body
	return stage, nil
}

func (p *parser) block() ([]Stmt, error) {
	if _, err := p.expect("{"); err != nil {
		return nil, err
	}
	var stmts []Stmt
	for {
		t := p.peek()
		if t.text == "}" {
			p.next()
			return stmts, nil
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
}

func (p *parser) stmt() (Stmt, error) {
	t := p.peek()
	switch t.text {
	case "emit", "steer":
		p.next()
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if t.text == "emit" {
			return &Emit{X: x, Line: t.line}, nil
		}
		return &Steer{X: x, Line: t.line}, nil
	case "drop":
		p.next()
		return &Drop{Line: t.line}, nil
	case "if":
		p.next()
		l, err := p.expr()
		if err != nil {
			return nil, err
		}
		opTok := p.next()
		op, ok := map[string]RelOp{
			"==": RelEq, "!=": RelNe, "<": RelLt, "<=": RelLe, ">": RelGt, ">=": RelGe,
		}[opTok.text]
		if !ok {
			return nil, errf(opTok.line, "expected a comparison operator, got %q", opTok.text)
		}
		r, err := p.expr()
		if err != nil {
			return nil, err
		}
		then, err := p.block()
		if err != nil {
			return nil, err
		}
		s := &If{Cond: Cond{L: l, Op: op, R: r}, Then: then, Line: t.line}
		if p.peek().text == "else" {
			p.next()
			s.Else, err = p.block()
			if err != nil {
				return nil, err
			}
			s.HasElse = true
		}
		return s, nil
	default:
		id, err := p.expectIdent("a statement")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect("="); err != nil {
			return nil, err
		}
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &Assign{Name: id.text, X: x, Line: id.line}, nil
	}
}

// expr parses the additive level: term (("+"|"-"|"|"|"^"|"&") term)*.
func (p *parser) expr() (Expr, error) {
	l, err := p.term()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		var op BinOp
		switch t.text {
		case "+":
			op = OpAdd
		case "-":
			op = OpSub
		case "|":
			op = OpOr
		case "^":
			op = OpXor
		case "&":
			op = OpAnd
		default:
			return l, nil
		}
		p.next()
		r, err := p.term()
		if err != nil {
			return nil, err
		}
		l = &Bin{Op: op, L: l, R: r, Line: t.line}
	}
}

// term parses the multiplicative level: factor (("*"|"<<"|">>") factor)*.
func (p *parser) term() (Expr, error) {
	l, err := p.factor()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		var op BinOp
		switch t.text {
		case "*":
			op = OpMul
		case "<<":
			op = OpShl
		case ">>":
			op = OpShr
		default:
			return l, nil
		}
		p.next()
		r, err := p.factor()
		if err != nil {
			return nil, err
		}
		l = &Bin{Op: op, L: l, R: r, Line: t.line}
	}
}

func (p *parser) factor() (Expr, error) {
	t := p.peek()
	switch {
	case t.text == "-":
		n, err := p.expectInt("a number after unary minus")
		if err != nil {
			return nil, err
		}
		return &Num{V: n.val, Line: n.line}, nil
	case t.kind == tokInt:
		p.next()
		return &Num{V: t.val, Line: t.line}, nil
	case t.text == "(":
		p.next()
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		return x, nil
	case (t.text == "b" || t.text == "w") && p.toks[p.pos+1].text == "[":
		p.next()
		p.next() // "["
		n, err := p.expectInt("field offset")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect("]"); err != nil {
			return nil, err
		}
		return &Field{Word: t.text == "w", Off: int(n.val), Line: t.line}, nil
	case t.kind == tokIdent && !isKeyword(t.text):
		p.next()
		return &Ref{Name: t.text, Line: t.line}, nil
	default:
		return nil, errf(t.line, "expected an expression, got %q", t.text)
	}
}
