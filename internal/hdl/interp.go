package hdl

import "encoding/binary"

// ExecTrace is one handler execution's observable behaviour — everything the
// differential harness compares between the interpreter and the compiled
// program on a Machine.
type ExecTrace struct {
	// Out is the emitted word sequence (emit and steer both append here,
	// exactly as the compiled program's EMIT does).
	Out []uint32
	// Vars holds each declared var's final value.
	Vars map[string]uint32
	// Cycles is the charged cycle count. The interpreter charges the
	// documented per-construct costs (HANDLERS.md); on the compiled side
	// every instruction costs one cycle, so the two totals must agree.
	Cycles int64
	// Deallocs is the stream deallocation schedule: the end address passed
	// to each dealloc, in order.
	Deallocs []int64
}

// Interpret executes a checked program directly over an in-memory stream
// mapped at base, with params bound by name. It is an independent
// implementation of the language semantics — a tree walk in Go, written
// against HANDLERS.md rather than against the compiler — so divergence from
// the compiled program indicates a bug in one of the two.
//
// All arithmetic wraps at 32 bits; comparisons (including the stream-bounds
// check) are signed 32-bit, matching the switch ISA.
func Interpret(p *Program, stream []byte, base int64, params map[string]uint32) *ExecTrace {
	in := &interp{
		prog:   p,
		stream: stream,
		base:   base,
		params: params,
		vars:   make(map[string]uint32, len(p.Vars)),
		consts: make(map[string]int64, len(p.Consts)),
		trace:  &ExecTrace{Vars: make(map[string]uint32, len(p.Vars))},
	}
	for _, c := range p.Consts {
		in.consts[c.Name] = c.Value
	}
	// Prologue: explicit var initializations are charged; bare vars start
	// at whatever the launch registers hold — zero here.
	for _, v := range p.Vars {
		in.vars[v.Name] = 0
		if v.HasInit {
			in.charge(ConstCycles(v.Init))
			in.vars[v.Name] = uint32(v.Init)
		}
	}
	if on := p.On; on != nil {
		in.runLoop(on)
	}
	in.stmts(p.End)
	in.charge(1) // stop
	for name, v := range in.vars {
		in.trace.Vars[name] = v
	}
	return in.trace
}

type interp struct {
	prog   *Program
	stream []byte
	base   int64
	params map[string]uint32
	vars   map[string]uint32
	consts map[string]int64
	trace  *ExecTrace

	// cursor is the current unit's stream offset while the loop runs.
	cursor int64
	unit   uint32 // the preloaded byte/word
	inLoop bool
}

func (in *interp) charge(n int64) { in.trace.Cycles += n }

// runLoop walks the stream one unit at a time. Each bounds check costs two
// cycles (compute the unit's end, branch); byte and word units add one
// preload; every completed unit pays a three-cycle advance (bump the
// cursor, deallocate, loop back) and schedules a dealloc at the unit's end
// address. A trailing partial unit is never entered.
func (in *interp) runLoop(on *OnStage) {
	size := int64(on.Size)
	end := in.base + int64(len(in.stream))
	in.inLoop = true
	for cur := in.base; ; cur += size {
		in.charge(2) // bounds check: addi + branch
		if sgt(uint32(cur+size), uint32(end)) {
			break
		}
		in.cursor = cur
		switch on.Mode {
		case UnitByte:
			in.charge(1)
			in.unit = uint32(in.streamByte(cur))
		case UnitWord:
			in.charge(1)
			in.unit = in.streamWord(cur)
		}
		in.stmts(on.Body) // a drop inside jumps straight here
		in.charge(3)      // advance: addi + dealloc + j
		in.trace.Deallocs = append(in.trace.Deallocs, int64(uint32(cur+size)))
	}
	in.inLoop = false
}

// sgt is the ISA's signed 32-bit a > b (the loop's inverted bounds check).
func sgt(a, b uint32) bool { return int32(a) > int32(b) }

// streamByte reads one stream byte; out-of-range reads return zero, like
// the Machine's zero-padded partial loads.
func (in *interp) streamByte(addr int64) byte {
	off := addr - in.base
	if off < 0 || off >= int64(len(in.stream)) {
		return 0
	}
	return in.stream[off]
}

func (in *interp) streamWord(addr int64) uint32 {
	var buf [4]byte
	off := addr - in.base
	for i := int64(0); i < 4; i++ {
		if off+i >= 0 && off+i < int64(len(in.stream)) {
			buf[i] = in.stream[off+i]
		}
	}
	return binary.LittleEndian.Uint32(buf[:])
}

// stmts executes a statement list; it reports whether a drop fired (the
// rest of the unit body is skipped, like the compiled jump to the loop's
// continue point).
func (in *interp) stmts(body []Stmt) bool {
	for _, s := range body {
		switch s := s.(type) {
		case *Assign:
			v := in.eval(s.X)
			in.charge(1) // store to the var's register
			in.vars[s.Name] = v
		case *Emit:
			v := in.eval(s.X)
			in.charge(1)
			in.trace.Out = append(in.trace.Out, v)
		case *Steer:
			v := in.eval(s.X)
			in.charge(1)
			in.trace.Out = append(in.trace.Out, v)
		case *Drop:
			in.charge(1) // the jump to the continue point
			return true
		case *If:
			l := in.eval(s.Cond.L)
			r := in.eval(s.Cond.R)
			in.charge(1) // the (inverted) branch
			if holds(s.Cond.Op, l, r) {
				if in.stmts(s.Then) {
					return true
				}
				if s.HasElse {
					in.charge(1) // jump over the else block
				}
			} else if s.HasElse {
				if in.stmts(s.Else) {
					return true
				}
			}
		}
	}
	return false
}

// holds evaluates a comparison; ordering is signed 32-bit.
func holds(op RelOp, l, r uint32) bool {
	sl, sr := int32(l), int32(r)
	switch op {
	case RelEq:
		return l == r
	case RelNe:
		return l != r
	case RelLt:
		return sl < sr
	case RelLe:
		return sl <= sr
	case RelGt:
		return sl > sr
	default: // RelGe
		return sl >= sr
	}
}

// eval computes an expression, charging the documented costs: constants
// cost ConstCycles, name and field reads cost one, every binary operator
// costs one on top of its operands (shift amounts are compile-time
// constants and cost nothing).
func (in *interp) eval(e Expr) uint32 {
	switch e := e.(type) {
	case *Num:
		in.charge(ConstCycles(e.V))
		return uint32(e.V)
	case *Ref:
		if v, ok := in.consts[e.Name]; ok {
			in.charge(ConstCycles(v))
			return uint32(v)
		}
		in.charge(1) // register move
		if v, ok := in.vars[e.Name]; ok {
			return v
		}
		if v, ok := in.params[e.Name]; ok {
			return v
		}
		return in.unit
	case *Field:
		in.charge(1) // the load
		addr := in.cursor + int64(e.Off)
		if e.Word {
			return in.streamWord(addr)
		}
		return uint32(in.streamByte(addr))
	case *Bin:
		if e.Op == OpShl || e.Op == OpShr {
			l := in.eval(e.L)
			in.charge(1)
			amt := uint32(in.constExpr(e.R)) & 31
			if e.Op == OpShl {
				return l << amt
			}
			return l >> amt
		}
		l := in.eval(e.L)
		r := in.eval(e.R)
		in.charge(1)
		switch e.Op {
		case OpAdd:
			return l + r
		case OpSub:
			return l - r
		case OpMul:
			return l * r
		case OpAnd:
			return l & r
		case OpOr:
			return l | r
		default: // OpXor
			return l ^ r
		}
	}
	return 0
}

func (in *interp) constExpr(e Expr) int64 {
	switch e := e.(type) {
	case *Num:
		return e.V
	case *Ref:
		return in.consts[e.Name]
	}
	panic("hdl: non-constant shift amount survived the checker")
}
