package hdl

import (
	"reflect"
	"testing"

	"activesan/internal/svm"
)

// TestDifferentialSeeded is the core harness: ≥500 seeded random (program,
// packet-stream, params) pairs in -short mode, each executed through the
// compiler + VM and through the reference interpreter, with zero tolerated
// divergence in outputs, register state, cycle charges, or deallocation
// schedules. The full run covers 4× more seeds.
func TestDifferentialSeeded(t *testing.T) {
	trials := 2000
	if testing.Short() {
		trials = 500
	}
	for seed := 0; seed < trials; seed++ {
		if err := DiffSeed(uint64(seed)); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDifferentialHandWritten pins the harness on the library handlers too:
// hand-written HDL must agree between the two executions just like
// generated programs.
func TestDifferentialHandWritten(t *testing.T) {
	for _, tc := range []struct {
		src    string
		params map[string]uint32
	}{
		{SelectHDL, map[string]uint32{"threshold": 64}},
		{SumHDL, nil},
		{MinMaxHDL, nil},
	} {
		c, err := Compile(tc.src)
		if err != nil {
			t.Fatal(err)
		}
		for streamSeed := uint64(0); streamSeed < 20; streamSeed++ {
			stream := GenStream(streamSeed)
			got, err := RunSlice(c, stream, DiffBase, tc.params)
			if err != nil {
				t.Fatalf("%s: %v", c.AST.Name, err)
			}
			want := Interpret(c.AST, stream, DiffBase, tc.params)
			if err := Diff(got, want); err != nil {
				t.Fatalf("%s (stream seed %d): %v", c.AST.Name, streamSeed, err)
			}
		}
	}
}

// TestRenderRoundTrip: the canonical rendering of a parsed program parses
// back to a program with the same rendering (the generator relies on this
// to push random programs through the parser).
func TestRenderRoundTrip(t *testing.T) {
	for seed := uint64(0); seed < 200; seed++ {
		p := GenProgram(seed)
		src := p.Render()
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("seed %d: rendered program does not parse: %v\n%s", seed, err, src)
		}
		if got := q.Render(); got != src {
			t.Fatalf("seed %d: render not a fixed point\nfirst:\n%s\nsecond:\n%s", seed, src, got)
		}
	}
}

// TestCompiledEncodable: every compiled random program must survive the
// binary encoding round-trip — this is the property the hand-picked cases
// in svm/encoding_test.go cannot give.
func TestCompiledEncodable(t *testing.T) {
	trials := 500
	if testing.Short() {
		trials = 200
	}
	for seed := uint64(0); seed < uint64(trials); seed++ {
		p := GenProgram(seed)
		c, err := CompileAST(p)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		enc, err := svm.EncodeProgram(c.Prog)
		if err != nil {
			t.Fatalf("seed %d: encode: %v\n%s", seed, err, c.Asm)
		}
		dec, err := svm.DecodeProgram(enc)
		if err != nil {
			t.Fatalf("seed %d: decode: %v", seed, err)
		}
		if !reflect.DeepEqual(dec.Instrs, c.Prog.Instrs) {
			t.Fatalf("seed %d: instructions changed across the encoding round-trip", seed)
		}
	}
}
