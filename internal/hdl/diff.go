package hdl

import (
	"fmt"

	"activesan/internal/svm"
)

// Differential execution: the same program runs through the compiler + VM
// and through the reference interpreter, and every observable — emitted
// words, final var state, charged cycles, deallocation schedule — must
// match. RunSlice is the compiled side; DiffSeed drives one seeded
// (program, stream, params) trial end to end.

// DiffBase is where differential streams are mapped; anything at or above
// it is stream, below is private memory (compiled HDL never touches the
// latter).
const DiffBase = 0x1000

// RunSlice executes a compiled handler over an in-memory stream on the VM
// and returns the same trace shape the interpreter produces. On the VM
// side Cycles is the executed-instruction count: SliceEnv charges one
// cycle per instruction, which is what the interpreter's cost model must
// reproduce.
func RunSlice(c *Compiled, stream []byte, base int64, params map[string]uint32) (*ExecTrace, error) {
	init, err := c.InitRegs(base, int64(len(stream)), params, nil)
	if err != nil {
		return nil, err
	}
	env := svm.NewSliceEnv(base, stream)
	m := svm.NewMachine(env, c.Prog, init)
	res, err := m.Run()
	if err != nil {
		return nil, err
	}
	t := &ExecTrace{
		Out:      env.Out,
		Vars:     make(map[string]uint32, len(c.VarReg)),
		Cycles:   env.Cycles,
		Deallocs: env.Deallocs,
	}
	for name, r := range c.VarReg {
		t.Vars[name] = res.Regs[r]
	}
	return t, nil
}

// Diff compares two traces and describes the first divergence; nil means
// the executions agree on every observable.
func Diff(compiled, interp *ExecTrace) error {
	if len(compiled.Out) != len(interp.Out) {
		return fmt.Errorf("output length: compiled emitted %d words, interpreter %d",
			len(compiled.Out), len(interp.Out))
	}
	for i := range compiled.Out {
		if compiled.Out[i] != interp.Out[i] {
			return fmt.Errorf("output word %d: compiled %#x, interpreter %#x",
				i, compiled.Out[i], interp.Out[i])
		}
	}
	for name, cv := range compiled.Vars {
		if iv, ok := interp.Vars[name]; !ok || iv != cv {
			return fmt.Errorf("var %s: compiled %#x, interpreter %#x", name, cv, iv)
		}
	}
	for name := range interp.Vars {
		if _, ok := compiled.Vars[name]; !ok {
			return fmt.Errorf("var %s: missing from the compiled trace", name)
		}
	}
	if compiled.Cycles != interp.Cycles {
		return fmt.Errorf("cycles: compiled charged %d, interpreter %d",
			compiled.Cycles, interp.Cycles)
	}
	if len(compiled.Deallocs) != len(interp.Deallocs) {
		return fmt.Errorf("dealloc count: compiled %d, interpreter %d",
			len(compiled.Deallocs), len(interp.Deallocs))
	}
	for i := range compiled.Deallocs {
		if compiled.Deallocs[i] != interp.Deallocs[i] {
			return fmt.Errorf("dealloc %d: compiled released up to %#x, interpreter %#x",
				i, compiled.Deallocs[i], interp.Deallocs[i])
		}
	}
	return nil
}

// DiffSeed runs one differential trial: generate a program and stream from
// the seed, compile the program's *rendered source* (so the lexer, parser
// and checker sit inside the tested pipeline), interpret the original AST,
// and compare. The returned error describes the divergence, with enough
// context to reproduce it from the seed alone.
func DiffSeed(seed uint64) error {
	prog := GenProgram(seed)
	stream := GenStream(seed ^ 0x9e3779b97f4a7c15)
	params := GenParams(prog, seed^0xbf58476d1ce4e5b9)

	c, err := Compile(prog.Render())
	if err != nil {
		return fmt.Errorf("seed %#x: generated program does not compile: %w\n%s", seed, err, prog.Render())
	}
	compiled, err := RunSlice(c, stream, DiffBase, params)
	if err != nil {
		return fmt.Errorf("seed %#x: compiled run failed: %w\n%s", seed, err, c.Asm)
	}
	ref := Interpret(prog, stream, DiffBase, params)
	if err := Diff(compiled, ref); err != nil {
		return fmt.Errorf("seed %#x (stream %d bytes): %w\nsource:\n%s\nassembly:\n%s",
			seed, len(stream), err, prog.Render(), c.Asm)
	}
	return nil
}
