package hdl

import (
	"fmt"

	"activesan/internal/aswitch"
	"activesan/internal/san"
	"activesan/internal/svm"
)

// Hand-written library handlers (svm/programs.go) ported to HDL. Each
// documents the predecessor it must match; port_test.go proves the emitted
// words identical on the same streams.

// SelectHDL is svm.SelectSource: count fixed-size records whose key byte is
// below a threshold. The record size is fixed at compile time (16 here,
// where the assembly took it in r6).
const SelectHDL = `
; count records with key byte < threshold (port of svm.SelectSource)
handler select {
	param threshold
	var count
	on record 16 {
		if b[0] < threshold {
			count = count + 1
		}
	}
	end {
		emit count
	}
}
`

// SumHDL is svm.SumWordsSource: the wrapping 32-bit sum of the stream's
// little-endian words. Identical on word-aligned streams; on a ragged tail
// the assembly folds in a zero-padded partial word while HDL's loop stops
// at the last whole unit.
const SumHDL = `
; sum 32-bit words (port of svm.SumWordsSource)
handler sum {
	var acc
	on word x {
		acc = acc + x
	}
	end {
		emit acc
	}
}
`

// MinMaxHDL is svm.MinMaxSource: a byte min/max scan, emitting min then max.
const MinMaxHDL = `
; byte min/max scan (port of svm.MinMaxSource)
handler minmax {
	var lo = 255
	var hi = 0
	on byte x {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	end {
		emit lo
		emit hi
	}
}
`

// MustCompile compiles a library handler, panicking on error — for the
// constant sources above, which tests validate.
func MustCompile(src string) *Compiled {
	c, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return c
}

// HandlerSpec tells the aswitch adapter how to launch a compiled program
// and where to send its output.
type HandlerSpec struct {
	// StreamBase / StreamLen locate the mapped stream.
	StreamBase int64
	StreamLen  int64
	// MemBase anchors private memory in the switch's address space.
	MemBase int64
	// Params binds launch parameters by name.
	Params map[string]uint32
	// Flow and Addr route the result message back to the sender.
	Flow int64
	Addr int64
}

// Handler wraps a compiled program as a switch handler: release the
// activation arguments, run the program through CtxEnv (cycles charge the
// switch CPU, stream loads stall on the ATB), then send every emitted word
// back to the activating host in one completion message on the spec's flow.
func (c *Compiled) Handler(spec HandlerSpec) aswitch.HandlerFunc {
	return func(x *aswitch.Ctx) {
		x.ReleaseArgs()
		init, err := c.InitRegs(spec.StreamBase, spec.StreamLen, spec.Params, nil)
		if err != nil {
			panic(fmt.Sprintf("hdl: handler %s: %v", c.AST.Name, err))
		}
		_, out, err := svm.RunOnCtx(x, c.Prog, spec.StreamBase, spec.MemBase, init)
		if err != nil {
			panic(fmt.Sprintf("hdl: handler %s: %v", c.AST.Name, err))
		}
		x.Send(aswitch.SendSpec{
			Dst: x.Src(), Type: san.Control, Addr: spec.Addr,
			Size: int64(8 + 4*len(out)), Flow: spec.Flow, Payload: out,
		})
	}
}

// The process-wide extra handler installed by the CLI's -handler-src flag;
// hdlsweep folds it into its program set so a user-supplied handler runs
// through the same active-vs-host differential pipeline as the built-ins.
var extraHandler *Compiled

// SetExtra installs (or, with nil, clears) the process-wide extra handler.
func SetExtra(c *Compiled) { extraHandler = c }

// Extra returns the installed extra handler, nil when none.
func Extra() *Compiled { return extraHandler }
