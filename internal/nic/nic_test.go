package nic

import (
	"testing"

	"activesan/internal/memsys"
	"activesan/internal/san"
	"activesan/internal/sim"
)

// pair wires two NICs back to back and starts them.
func pair(eng *sim.Engine) (*NIC, *NIC) {
	cfg := san.DefaultLinkConfig()
	ab := san.NewLink(eng, "ab", cfg)
	ba := san.NewLink(eng, "ba", cfg)
	memA := memsys.New(eng, "memA", memsys.DefaultConfig())
	memB := memsys.New(eng, "memB", memsys.DefaultConfig())
	a := New(eng, 1, "a", ba, ab, memA)
	b := New(eng, 2, "b", ab, ba, memB)
	a.Start()
	b.Start()
	return a, b
}

func TestMessageRoundTrip(t *testing.T) {
	eng := sim.NewEngine()
	a, b := pair(eng)
	data := make([]byte, 3000)
	for i := range data {
		data[i] = byte(i * 7)
	}
	a.Post(&san.Message{
		Hdr:     san.Header{Dst: 2, Type: san.Data, Addr: 0x1000},
		Size:    int64(len(data)),
		Payload: nil,
		Split:   san.SliceSplit(data),
	}, 0x2000)
	var got *Completion
	eng.Spawn("rx", func(p *sim.Proc) { got = b.Recv(p) })
	eng.Run()
	defer eng.Shutdown()
	if got == nil {
		t.Fatal("no completion")
	}
	if got.Size != int64(len(data)) {
		t.Fatalf("size = %d, want %d", got.Size, len(data))
	}
	rebuilt := got.Bytes()
	for i := range data {
		if rebuilt[i] != data[i] {
			t.Fatalf("byte %d corrupted", i)
		}
	}
	if got.DoneAt <= got.FirstAt {
		t.Fatal("multi-packet message finished before it started")
	}
}

func TestInterleavedFlowsReassemble(t *testing.T) {
	eng := sim.NewEngine()
	a, b := pair(eng)
	// Two messages from the same source with different flows; both must
	// reassemble independently.
	a.Post(&san.Message{Hdr: san.Header{Dst: 2, Type: san.Data, Flow: 100}, Size: 1500}, 0)
	a.Post(&san.Message{Hdr: san.Header{Dst: 2, Type: san.Data, Flow: 200}, Size: 700}, 0)
	var sizes []int64
	eng.Spawn("rx", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			sizes = append(sizes, b.Recv(p).Size)
		}
	})
	eng.Run()
	defer eng.Shutdown()
	if len(sizes) != 2 {
		t.Fatalf("got %d completions", len(sizes))
	}
	if sizes[0]+sizes[1] != 2200 {
		t.Fatalf("sizes = %v", sizes)
	}
}

func TestSequentialSameFlowMessages(t *testing.T) {
	// Back-to-back messages on one flow terminate at each Last packet.
	eng := sim.NewEngine()
	a, b := pair(eng)
	for i := 0; i < 3; i++ {
		a.Post(&san.Message{Hdr: san.Header{Dst: 2, Type: san.Data, Flow: 55}, Size: 512}, 0)
	}
	count := 0
	eng.Spawn("rx", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			b.Recv(p)
			count++
		}
	})
	eng.Run()
	defer eng.Shutdown()
	if count != 3 {
		t.Fatalf("completions = %d, want 3", count)
	}
	if b.Stats().MessagesIn != 3 || b.Stats().PacketsIn != 3 {
		t.Fatalf("stats = %+v", b.Stats())
	}
}

func TestPostLatchOpensAfterWire(t *testing.T) {
	eng := sim.NewEngine()
	a, b := pair(eng)
	done := a.Post(&san.Message{Hdr: san.Header{Dst: 2, Type: san.Data}, Size: 4096}, 0)
	if done.Opened() {
		t.Fatal("latch open before transmission")
	}
	eng.Spawn("rx", func(p *sim.Proc) { b.Recv(p) })
	eng.Spawn("waiter", func(p *sim.Proc) {
		done.Wait(p)
		// 4 KB + headers at 1 GB/s is a bit over 4 us.
		if p.Now() < 4*sim.Microsecond {
			t.Errorf("latch opened at %v, too early", p.Now())
		}
	})
	eng.Run()
	defer eng.Shutdown()
	if !done.Opened() {
		t.Fatal("latch never opened")
	}
}

func TestTrafficAccounting(t *testing.T) {
	eng := sim.NewEngine()
	a, b := pair(eng)
	a.Post(&san.Message{Hdr: san.Header{Dst: 2, Type: san.Data}, Size: 1024}, 0)
	eng.Spawn("rx", func(p *sim.Proc) { b.Recv(p) })
	eng.Run()
	defer eng.Shutdown()
	if a.Stats().BytesOut != 1024 || a.Stats().Traffic() != 1024 {
		t.Fatalf("tx stats = %+v", a.Stats())
	}
	if b.Stats().BytesIn != 1024 {
		t.Fatalf("rx stats = %+v", b.Stats())
	}
}

func TestInvalidatorCalledPerDMA(t *testing.T) {
	eng := sim.NewEngine()
	a, b := pair(eng)
	var calls int
	var bytes int64
	b.SetInvalidator(func(base, n int64) {
		calls++
		bytes += n
	})
	a.Post(&san.Message{Hdr: san.Header{Dst: 2, Type: san.Data, Addr: 0x4000}, Size: 2048}, 0)
	eng.Spawn("rx", func(p *sim.Proc) { b.Recv(p) })
	eng.Run()
	defer eng.Shutdown()
	if calls != 4 {
		t.Fatalf("invalidator calls = %d, want 4 packets", calls)
	}
	if bytes != 2048 {
		t.Fatalf("invalidated %d bytes, want 2048", bytes)
	}
}

func TestNextFlowUnique(t *testing.T) {
	eng := sim.NewEngine()
	a, _ := pair(eng)
	seen := map[int64]bool{}
	for i := 0; i < 1000; i++ {
		f := a.NextFlow()
		if seen[f] {
			t.Fatalf("flow %d repeated", f)
		}
		seen[f] = true
	}
	eng.Shutdown()
}

func TestTryRecvAndPending(t *testing.T) {
	eng := sim.NewEngine()
	a, b := pair(eng)
	if _, ok := b.TryRecv(); ok {
		t.Fatal("TryRecv on empty queue succeeded")
	}
	a.Post(&san.Message{Hdr: san.Header{Dst: 2, Type: san.Data}, Size: 64}, 0)
	eng.Run()
	defer eng.Shutdown()
	if b.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", b.Pending())
	}
	if c, ok := b.TryRecv(); !ok || c.Size != 64 {
		t.Fatal("TryRecv failed after delivery")
	}
}
