// Package nic models the host channel adapter: a queue-pair interface that
// segments outgoing messages into MTU packets, reassembles incoming packets
// into completions, and DMAs payloads against the host's RDRAM channel so
// that I/O traffic and CPU memory references contend for the same bandwidth.
// It also accumulates the "host I/O traffic" metric of the paper's figures —
// total bytes in and out of the host.
package nic

import (
	"fmt"

	"activesan/internal/memsys"
	"activesan/internal/san"
	"activesan/internal/sim"
)

// Completion is one fully-arrived message.
type Completion struct {
	Hdr      san.Header // header of the final packet
	Size     int64      // payload bytes across all packets
	Payloads []any      // per-packet payloads in arrival order
	FirstAt  sim.Time   // head arrival of the first packet
	DoneAt   sim.Time   // arrival of the last packet
}

// Bytes gathers the payloads into one slice when they are literal data.
func (c *Completion) Bytes() []byte {
	var out []byte
	for _, p := range c.Payloads {
		if b, ok := p.([]byte); ok {
			out = append(out, b...)
		}
	}
	return out
}

// Stats counts adapter traffic.
type Stats struct {
	PacketsIn, PacketsOut   int64
	BytesIn, BytesOut       int64
	MessagesIn, MessagesOut int64
}

// Traffic returns total bytes moved in either direction — the paper's host
// I/O traffic metric.
func (s Stats) Traffic() int64 { return s.BytesIn + s.BytesOut }

type flowKey struct {
	src  san.NodeID
	flow int64
}

type txJob struct {
	msg   *san.Message
	done  *sim.Latch
	local int64
	// at is the Post time, recorded only when telemetry is armed: the
	// origin the NIC hop (and the end-to-end sample) measures from.
	at sim.Time
}

// NIC is one host channel adapter.
type NIC struct {
	eng  *sim.Engine
	id   san.NodeID
	name string
	in   *san.Link
	out  *san.Link
	mem  *memsys.RDRAM

	txq      *sim.Queue[txJob]
	comps    *sim.Queue[*Completion]
	partials map[flowKey]*Completion

	// Optional end-to-end reliability (nil unless EnableReliability ran):
	// tx tracks outgoing packets for retransmission, rel orders and acks
	// incoming ones, rtxq feeds the dedicated retransmit/control process.
	tx   *san.TxTracker
	rel  *san.RxTracker
	rtxq *sim.Queue[*san.Packet]

	// invalidate, when set, is called for every DMA write so the host's
	// caches drop stale copies of the buffer (DMA coherence).
	invalidate func(base, n int64)

	// Telemetry hooks (nil = off): stamp mints an in-band record for each
	// outgoing packet, complete consumes one at final delivery. maxTxQueue
	// is the transmit-queue high-water mark, tracked only while armed.
	stamp      san.Stamper
	complete   san.Completer
	maxTxQueue int

	flows   int64
	stats   Stats
	started bool
}

// SetInvalidator installs the DMA-coherence callback.
func (n *NIC) SetInvalidator(fn func(base, n int64)) { n.invalidate = fn }

// SetTelemetry arms per-packet stamping on this adapter: stamp mints the
// record for outgoing packets, complete consumes it when an incoming
// stamped packet finishes its DMA. Install before traffic flows.
func (n *NIC) SetTelemetry(stamp san.Stamper, complete san.Completer) {
	n.stamp = stamp
	n.complete = complete
}

// MaxTxQueue reports the transmit-queue depth high-water mark (zero unless
// telemetry was armed).
func (n *NIC) MaxTxQueue() int { return n.maxTxQueue }

// New builds an adapter for node id attached via the given links; mem is the
// host memory channel DMA traffic is charged against.
func New(eng *sim.Engine, id san.NodeID, name string, in, out *san.Link, mem *memsys.RDRAM) *NIC {
	return &NIC{
		eng:      eng,
		id:       id,
		name:     name,
		in:       in,
		out:      out,
		mem:      mem,
		txq:      sim.NewQueue[txJob](),
		comps:    sim.NewQueue[*Completion](),
		partials: make(map[flowKey]*Completion),
	}
}

// ID returns the adapter's node id.
func (n *NIC) ID() san.NodeID { return n.id }

// Stats returns a copy of the traffic counters.
func (n *NIC) Stats() Stats { return n.stats }

// NextFlow allocates a node-unique flow id.
func (n *NIC) NextFlow() int64 {
	n.flows++
	return n.flows<<16 | int64(n.id)&0xFFFF
}

// EnableReliability arms end-to-end retransmission on this adapter: outgoing
// packets are tracked until acknowledged, incoming ones are reordered,
// deduplicated, and acknowledged. Must run before Start. Returns the tx
// tracker so callers can wire its resolve hook.
func (n *NIC) EnableReliability(cfg san.RetxConfig) *san.TxTracker {
	if n.started {
		panic("nic: EnableReliability after Start")
	}
	if n.tx != nil {
		return n.tx
	}
	n.rtxq = sim.NewQueue[*san.Packet]()
	enqueue := func(pkt *san.Packet) { n.rtxq.Put(pkt) }
	n.tx = san.NewTxTracker(n.eng, cfg, enqueue)
	n.rel = san.NewRxTracker(n.id, enqueue)
	return n.tx
}

// ReliabilityEnabled reports whether EnableReliability ran.
func (n *NIC) ReliabilityEnabled() bool { return n.tx != nil }

// SetRelFilter restricts both reliability trackers to peers that speak the
// protocol (see san.TxTracker.SetTrackable); packets to and from other nodes
// bypass tracking entirely. No-op when reliability is disabled.
func (n *NIC) SetRelFilter(fn func(san.NodeID) bool) {
	if n.tx != nil {
		n.tx.SetTrackable(fn)
		n.rel.SetTrackable(fn)
	}
}

// RelStats returns the reliability counters (zero when disabled).
func (n *NIC) RelStats() (san.TxStats, san.RxStats) {
	if n.tx == nil {
		return san.TxStats{}, san.RxStats{}
	}
	return n.tx.Stats(), n.rel.Stats()
}

// Start spawns the receive and transmit engines.
func (n *NIC) Start() {
	if n.started {
		panic("nic: double Start")
	}
	n.started = true
	n.eng.Spawn(n.name+".rx", n.rxLoop)
	n.eng.Spawn(n.name+".tx", n.txLoop)
	if n.tx != nil {
		n.eng.Spawn(n.name+".rtx", n.rtxLoop)
	}
}

// Post queues msg for transmission and returns a latch that opens once the
// final packet is on the wire. local is the host-memory source address the
// DMA reads are charged against.
func (n *NIC) Post(msg *san.Message, local int64) *sim.Latch {
	if msg.Hdr.Flow == 0 {
		msg.Hdr.Flow = n.NextFlow()
	}
	if msg.Hdr.Src == 0 {
		msg.Hdr.Src = n.id
	}
	done := sim.NewLatch()
	job := txJob{msg: msg, done: done, local: local}
	if n.stamp != nil {
		job.at = n.eng.Now()
		if d := n.txq.Len() + 1; d > n.maxTxQueue {
			n.maxTxQueue = d
		}
	}
	n.txq.Put(job)
	return done
}

// Recv blocks until a message completion is available.
func (n *NIC) Recv(p *sim.Proc) *Completion { return n.comps.Get(p) }

// TryRecv polls for a completion.
func (n *NIC) TryRecv() (*Completion, bool) { return n.comps.TryGet() }

// Pending reports queued-but-unread completions.
func (n *NIC) Pending() int { return n.comps.Len() }

func (n *NIC) rxLoop(p *sim.Proc) {
	for {
		pkt := n.in.Recv(p)
		if n.rel != nil {
			switch {
			case pkt.Hdr.Type == san.Ack:
				switch info := pkt.Payload.(type) {
				case san.AckInfo:
					n.tx.OnAck(pkt.Hdr.Src, info)
				case san.NakInfo:
					n.tx.OnNak(pkt.Hdr.Src, info)
				}
			default:
				for _, q := range n.rel.Observe(pkt) {
					n.accept(p, q)
				}
			}
			n.in.ReturnCredit()
			continue
		}
		if pkt.Corrupt {
			// Without the reliability layer a corrupt packet is simply
			// lost at the adapter's CRC check.
			n.in.ReturnCredit()
			continue
		}
		n.accept(p, pkt)
		n.in.ReturnCredit()
	}
}

// accept runs the normal receive path for one validated, in-order packet.
func (n *NIC) accept(p *sim.Proc, pkt *san.Packet) {
	// DMA the payload into host memory; the credit returns once the
	// adapter has drained the packet off the link buffer.
	if pkt.Size > 0 {
		n.mem.Reserve(pkt.Hdr.Addr, pkt.Size)
		if n.invalidate != nil {
			n.invalidate(pkt.Hdr.Addr, pkt.Size)
		}
	}
	tail := n.in.TailTime(p.Now(), pkt.Size)
	if st := pkt.Stamp; st != nil && n.complete != nil {
		n.complete(st, tail, pkt.Hdr.Type)
	}
	n.stats.PacketsIn++
	n.stats.BytesIn += pkt.Size
	key := flowKey{src: pkt.Hdr.Src, flow: pkt.Hdr.Flow}
	c := n.partials[key]
	if c == nil {
		c = &Completion{FirstAt: p.Now()}
		n.partials[key] = c
	}
	c.Size += pkt.Size
	if pkt.Payload != nil {
		c.Payloads = append(c.Payloads, pkt.Payload)
	}
	if pkt.Hdr.Last {
		c.Hdr = pkt.Hdr
		c.DoneAt = tail
		delete(n.partials, key)
		n.stats.MessagesIn++
		if n.eng.Tracing() {
			n.eng.Emit("packet", "recv", n.name,
				fmt.Sprintf("%s msg src=%d flow=%d size=%d", pkt.Hdr.Type, pkt.Hdr.Src, pkt.Hdr.Flow, c.Size))
		}
		n.comps.Put(c)
	}
}

// rtxLoop drains retransmissions and ACK/NAK control packets onto the link;
// a separate process so timer callbacks never block and retransmissions
// interleave with fresh traffic rather than preempting it.
func (n *NIC) rtxLoop(p *sim.Proc) {
	for {
		pkt := n.rtxq.Get(p)
		n.out.Send(p, pkt)
		// Retransmissions and acks are real wire traffic; keeping them in
		// the counters keeps the host-I/O-traffic metric honest under loss.
		n.stats.PacketsOut++
		n.stats.BytesOut += pkt.Size
	}
}

func (n *NIC) txLoop(p *sim.Proc) {
	for {
		job := n.txq.Get(p)
		pkts := job.msg.Packets(job.msg.Split)
		for _, pkt := range pkts {
			if pkt.Size > 0 {
				off := int64(pkt.Hdr.Seq) * san.MTU
				n.mem.Reserve(job.local+off, pkt.Size)
			}
			if n.stamp != nil {
				st := n.stamp(job.at)
				st.Add(san.HopNIC, n.name, job.at, p.Now())
				pkt.Stamp = st
			}
			n.out.Send(p, pkt)
			if n.tx != nil {
				n.tx.Record(pkt)
			}
			n.stats.PacketsOut++
			n.stats.BytesOut += pkt.Size
		}
		n.stats.MessagesOut++
		job.done.Open()
	}
}
