package cluster

import (
	"fmt"
	"runtime"
	"sync"

	"activesan/internal/sim"
)

// Partitioning cuts a fabric into components that simulate on separate
// engines (sim.Group), with cut links crossing partition boundaries through
// lookahead channels. Cuts are chosen along the topology's route structure —
// pod boundaries in fat trees, BFS-contiguous regions in arbitrary graphs —
// so most traffic stays partition-local. Results are byte-identical at any
// partition count; see PERFORMANCE.md.

// FatTreePartition assigns a k-ary fat tree's switches to nparts partitions
// along pod boundaries: pod p — its edge and aggregation switches, and
// therefore every host and store in the pod — goes to partition p mod
// nparts, and core c to partition c mod nparts. Every cut link is an
// agg↔core trunk; intra-pod traffic never crosses a boundary.
func FatTreePartition(cfg FatTreeConfig, nparts int) []int {
	k := cfg.K
	half := k / 2
	if nparts < 1 {
		panic(fmt.Sprintf("cluster: fat-tree partition count %d", nparts))
	}
	part := make([]int, k*k+half*half)
	for pod := 0; pod < k; pod++ {
		for i := 0; i < k; i++ {
			part[pod*k+i] = pod % nparts
		}
	}
	for c := 0; c < half*half; c++ {
		part[k*k+c] = c % nparts
	}
	return part
}

// PartitionTopology assigns an arbitrary connected topology's switches to
// nparts partitions: switches are walked in BFS order from switch 0 (the
// same traversal routing uses) and split into nparts contiguous chunks, so
// graph neighbors tend to share a partition and the cut stays small.
func PartitionTopology(t Topology, nparts int) []int {
	n := len(t.Switches)
	if nparts < 1 {
		panic(fmt.Sprintf("cluster: partition count %d", nparts))
	}
	adj := make([][]int, n)
	for _, l := range t.Links {
		adj[l.A] = append(adj[l.A], l.B)
		adj[l.B] = append(adj[l.B], l.A)
	}
	order := make([]int, 0, n)
	seen := make([]bool, n)
	queue := []int{0}
	seen[0] = true
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, w := range adj[v] {
			if !seen[w] {
				seen[w] = true
				queue = append(queue, w)
			}
		}
	}
	// Validate rejects disconnected specs; tack stragglers on anyway so the
	// map is total even for a spec that will fail Build.
	for v := range seen {
		if !seen[v] {
			order = append(order, v)
		}
	}
	part := make([]int, n)
	chunk := (n + nparts - 1) / nparts
	for i, v := range order {
		part[v] = i / chunk
	}
	return part
}

// AutoFatTreeParts picks the partition count for a k-ary fat tree when the
// caller asked for automatic partitioning: one per pod, capped by the
// machine's parallelism. Small fabrics (under 128 endpoint slots) stay
// serial — barrier overhead would exceed the win.
func AutoFatTreeParts(cfg FatTreeConfig) int {
	if cfg.Hosts+cfg.Stores < 128 {
		return 1
	}
	n := cfg.K
	if p := runtime.GOMAXPROCS(0); p < n {
		n = p
	}
	if n < 1 {
		n = 1
	}
	return n
}

// NewPartitionedFatTreeCluster builds a k-ary fat tree spread over nparts
// partitions (0 = auto via AutoFatTreeParts, 1 = the plain serial engine —
// identical to NewFatTreeCluster). The aggregation-tree overlay matches
// NewFatTreeCluster exactly.
func NewPartitionedFatTreeCluster(cfg FatTreeConfig, nparts int) *Cluster {
	if nparts == 0 {
		nparts = AutoFatTreeParts(cfg)
	}
	if nparts == 1 {
		return NewFatTreeCluster(sim.NewEngine(), cfg)
	}
	g := sim.NewGroup(nparts)
	c := BuildPartitioned(g, FatTreeTopology(cfg), FatTreePartition(cfg, nparts))
	fatTreeOverlay(c, cfg)
	return c
}

// The process-wide default partition count, installed by the -partitions
// flag (mirroring SetDefaultTopology): scale experiments consult it when
// building their clusters. 1 = serial engine, 0 = auto from topology.
var (
	defPartsMu sync.Mutex
	defParts   = 1
)

// SetDefaultPartitions installs the process-wide default partition count.
func SetDefaultPartitions(n int) {
	if n < 0 {
		panic(fmt.Sprintf("cluster: negative partition count %d", n))
	}
	defPartsMu.Lock()
	defer defPartsMu.Unlock()
	defParts = n
}

// DefaultPartitions returns the process-wide default partition count.
func DefaultPartitions() int {
	defPartsMu.Lock()
	defer defPartsMu.Unlock()
	return defParts
}
