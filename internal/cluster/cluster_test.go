package cluster

import (
	"testing"

	"activesan/internal/aswitch"
	"activesan/internal/host"
	"activesan/internal/iodev"
	"activesan/internal/san"
	"activesan/internal/sim"
)

func TestIOClusterNormalRead(t *testing.T) {
	eng := sim.NewEngine()
	c := NewIOCluster(eng, DefaultIOClusterConfig())
	data := make([]byte, 64*1024)
	for i := range data {
		data[i] = byte(i)
	}
	c.Store(0).AddFile(&iodev.File{Name: "f", Size: int64(len(data)), Data: data})
	c.Start()
	h := c.Host(0)
	var got []byte
	var done sim.Time
	eng.Spawn("app", func(p *sim.Proc) {
		buf := h.Space().Alloc(64*1024, 4096)
		tok := h.IssueRead(p, c.Store(0).ID(), "f", 0, 64*1024, buf)
		comp := h.WaitRead(p, tok)
		got = comp.Bytes()
		done = p.Now()
	})
	eng.Run()
	defer c.Shutdown()

	if len(got) != len(data) {
		t.Fatalf("read %d bytes, want %d", len(got), len(data))
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("byte %d corrupted in transit", i)
		}
	}
	// Timing sanity: 30us OS + ~8ms seek+rotation + 64KB at 100 MB/s
	// (655us) + wire time. Must be at least the disk component.
	if done < 8*sim.Millisecond {
		t.Fatalf("read completed at %v, faster than seek+rotation", done)
	}
	if done > 12*sim.Millisecond {
		t.Fatalf("read completed at %v, too slow", done)
	}
	// Host I/O traffic counts the data in plus the request out.
	if tr := h.Traffic(); tr < 64*1024 || tr > 64*1024+256 {
		t.Fatalf("host traffic = %d", tr)
	}
	reqs, bytes := h.IOStats()
	if reqs != 1 || bytes != 64*1024 {
		t.Fatalf("io stats = %d reqs / %d bytes", reqs, bytes)
	}
}

func TestIOClusterSequentialStreamsAtDiskRate(t *testing.T) {
	eng := sim.NewEngine()
	c := NewIOCluster(eng, DefaultIOClusterConfig())
	const total = 1 << 20 // 1 MB in 16 x 64 KB requests
	c.Store(0).AddFile(&iodev.File{Name: "f", Size: total})
	c.Start()
	h := c.Host(0)
	var done sim.Time
	eng.Spawn("app", func(p *sim.Proc) {
		buf := h.Space().Alloc(64*1024, 4096)
		for off := int64(0); off < total; off += 64 * 1024 {
			tok := h.IssueRead(p, c.Store(0).ID(), "f", off, 64*1024, buf)
			h.WaitRead(p, tok)
		}
		done = p.Now()
	})
	eng.Run()
	defer c.Shutdown()
	st := c.Store(0).Stats()
	if st.Seeks != 1 {
		t.Fatalf("seeks = %d, want 1 (sequential detection)", st.Seeks)
	}
	if st.Sequential != 15 {
		t.Fatalf("sequential = %d, want 15", st.Sequential)
	}
	// Synchronous loop: disk transfer (10.5ms) + seek (8ms) + 16 round
	// trips of OS overhead. Far below 25 ms, above 18 ms.
	if done < 18*sim.Millisecond || done > 25*sim.Millisecond {
		t.Fatalf("1MB sync read took %v", done)
	}
}

func TestIOClusterPrefetchOverlaps(t *testing.T) {
	run := func(outstanding int) sim.Time {
		eng := sim.NewEngine()
		c := NewIOCluster(eng, DefaultIOClusterConfig())
		const total = 4 << 20
		c.Store(0).AddFile(&iodev.File{Name: "f", Size: total})
		c.Start()
		h := c.Host(0)
		var done sim.Time
		eng.Spawn("app", func(p *sim.Proc) {
			buf := h.Space().Alloc(64*1024, 4096)
			var pending []*host.ReadToken
			issue := func(off int64) {
				pending = append(pending, h.IssueRead(p, c.Store(0).ID(), "f", off, 64*1024, buf))
			}
			off := int64(0)
			for i := 0; i < outstanding && off < total; i++ {
				issue(off)
				off += 64 * 1024
			}
			for len(pending) > 0 {
				h.WaitRead(p, pending[0])
				pending = pending[1:]
				if off < total {
					issue(off)
					off += 64 * 1024
				}
			}
			done = p.Now()
		})
		eng.Run()
		c.Shutdown()
		return done
	}
	sync, pref := run(1), run(2)
	if pref >= sync {
		t.Fatalf("prefetch (%v) not faster than sync (%v)", pref, sync)
	}
	// With 2 outstanding requests a 4 MB stream should approach the disk's
	// 100 MB/s: < 50 ms total; the sync case pays per-request stalls.
	if pref > 55*sim.Millisecond {
		t.Fatalf("prefetch run took %v", pref)
	}
}

func TestIOClusterActiveReadToSwitch(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultIOClusterConfig()
	c := NewIOCluster(eng, cfg)
	const n = 128 * 1024
	c.Store(0).AddFile(&iodev.File{Name: "f", Size: n})
	sw := c.Switch(0)
	var streamed int64
	sw.Register(1, "count", func(x *aswitch.Ctx) {
		x.ReleaseArgs()
		cursor := int64(1 << 20)
		for streamed < n {
			b := x.WaitStream(cursor)
			x.ReadAll(b)
			streamed += b.Size()
			cursor = b.End()
			x.Deallocate(cursor)
		}
		// Tell the host we are done.
		x.Send(aswitch.SendSpec{Dst: x.Src(), Type: san.Data, Addr: 0x100, Size: 16, Flow: 777})
	})
	c.Start()
	h := c.Host(0)
	eng.Spawn("app", func(p *sim.Proc) {
		// Invoke the handler, then stream the file at it.
		h.SendMessage(p, &san.Message{
			Hdr:  san.Header{Dst: sw.ID(), Type: san.ActiveMsg, HandlerID: 1, Addr: 0},
			Size: 32,
		}, 0)
		flow := int64(555)
		tok := h.IssueReadTo(p, c.Store(0).ID(), "f", 0, n, sw.ID(), 1<<20, san.Data, 0, 0, flow)
		h.WaitRead(p, tok)
		h.RecvFlow(p, sw.ID(), 777)
	})
	eng.Run()
	defer c.Shutdown()
	if streamed != n {
		t.Fatalf("handler streamed %d bytes, want %d", streamed, n)
	}
	// The file bypassed the host: traffic is requests + the 16-byte note.
	if tr := h.Traffic(); tr > 2048 {
		t.Fatalf("host traffic = %d, want near zero", tr)
	}
	if sw.DBA().InUse() != 0 {
		t.Fatalf("switch leaked %d buffers", sw.DBA().InUse())
	}
}

func TestTreeClusterRouting(t *testing.T) {
	eng := sim.NewEngine()
	c := NewTreeCluster(eng, DefaultTreeConfig(32)) // 4 leaves + root
	if len(c.Switches) != 5 {
		t.Fatalf("32 hosts / 8 per leaf: got %d switches, want 5", len(c.Switches))
	}
	if len(c.Hosts) != 32 {
		t.Fatalf("hosts = %d", len(c.Hosts))
	}
	c.Start()
	// Host 0 (leaf 0) sends to host 31 (leaf 3): must cross the root.
	h0, h31 := c.Host(0), c.Host(31)
	var got bool
	eng.Spawn("rx", func(p *sim.Proc) {
		comp := h31.RecvAny(p)
		got = comp.Hdr.Src == h0.ID()
	})
	eng.Spawn("tx", func(p *sim.Proc) {
		h0.SendMessage(p, &san.Message{
			Hdr:  san.Header{Dst: h31.ID(), Type: san.Data, Addr: 0x1000},
			Size: 512,
		}, 0)
	})
	eng.Run()
	defer c.Shutdown()
	if !got {
		t.Fatal("cross-tree message not delivered")
	}
}

func TestTreeClusterSingleLeaf(t *testing.T) {
	eng := sim.NewEngine()
	c := NewTreeCluster(eng, DefaultTreeConfig(8))
	if len(c.Switches) != 1 {
		t.Fatalf("8 hosts: got %d switches, want 1", len(c.Switches))
	}
	c.Start()
	var ok bool
	eng.Spawn("rx", func(p *sim.Proc) {
		c.Host(7).RecvAny(p)
		ok = true
	})
	eng.Spawn("tx", func(p *sim.Proc) {
		c.Host(0).SendMessage(p, &san.Message{Hdr: san.Header{Dst: c.Host(7).ID(), Type: san.Data}, Size: 128}, 0)
	})
	eng.Run()
	defer c.Shutdown()
	if !ok {
		t.Fatal("intra-leaf message not delivered")
	}
}

func TestTreeClusterSwitchAddressable(t *testing.T) {
	// Hosts can send active messages to their leaf switch, and switches can
	// reach other switches (the reduction tree's partial-vector path).
	eng := sim.NewEngine()
	c := NewTreeCluster(eng, DefaultTreeConfig(16)) // 2 leaves + root
	if len(c.Switches) != 3 {
		t.Fatalf("switches = %d, want 3", len(c.Switches))
	}
	leaf := c.Switches[1]
	root := c.Switches[0]
	hits := 0
	handler := func(x *aswitch.Ctx) {
		hits++
		x.ReleaseArgs()
		if x.Switch() == leaf {
			x.Send(aswitch.SendSpec{Dst: root.ID(), Type: san.ActiveMsg, HandlerID: 2, Addr: 512})
		}
	}
	leaf.Register(2, "up", handler)
	root.Register(2, "up", handler)
	c.Start()
	eng.Spawn("tx", func(p *sim.Proc) {
		c.Host(0).SendMessage(p, &san.Message{
			Hdr:  san.Header{Dst: leaf.ID(), Type: san.ActiveMsg, HandlerID: 2, Addr: 0},
			Size: 64,
		}, 0)
	})
	eng.Run()
	defer c.Shutdown()
	if hits != 2 {
		t.Fatalf("handler hits = %d, want 2 (leaf then root)", hits)
	}
}

func TestActiveStreamAcrossSwitches(t *testing.T) {
	// Data destined to an active switch must traverse intermediate
	// switches like any other packet: host on switch A aims a disk read at
	// A's handler, but the storage node hangs off switch B.
	eng := sim.NewEngine()
	swA := aswitch.New(eng, 100, "swA", aswitch.DefaultConfig(2))
	swB := aswitch.New(eng, 101, "swB", aswitch.DefaultConfig(2))
	lcfg := swA.Config().Link
	mk := func(n string) *san.Link { return san.NewLink(eng, n, lcfg) }

	hostUp, hostDown := mk("h.up"), mk("h.down")
	swA.AttachPort(0, hostUp, hostDown)
	abUp, abDown := mk("ab"), mk("ba")
	swA.AttachPort(1, abDown, abUp)
	swB.AttachPort(0, abUp, abDown)
	storeUp, storeDown := mk("d.up"), mk("d.down")
	swB.AttachPort(1, storeUp, storeDown)

	const hostID, storeID = 1, 200
	swA.SetRoute(hostID, 0)
	swA.SetRoute(storeID, 1)
	swA.SetRoute(swB.ID(), 1)
	swB.SetRoute(hostID, 0)
	swB.SetRoute(swA.ID(), 0)
	swB.SetRoute(storeID, 1)

	h := host.New(eng, hostID, "h", hostDown, hostUp, host.DefaultConfig())
	store := iodev.New(eng, storeID, "d", storeDown, storeUp, iodev.DefaultConfig())
	const total = 64 * 1024
	store.AddFile(&iodev.File{Name: "f", Size: total})

	var streamed int64
	swA.Register(1, "count", func(x *aswitch.Ctx) {
		x.ReleaseArgs()
		cursor := int64(0x100000)
		for streamed < total {
			b := x.WaitStream(cursor)
			x.ReadAll(b)
			streamed += b.Size()
			cursor = b.End()
			x.Deallocate(cursor)
		}
		x.Send(aswitch.SendSpec{Dst: x.Src(), Type: san.Control, Addr: 0x10, Size: 8, Flow: 777})
	})
	swA.Start()
	swB.Start()
	h.Start()
	store.Start()

	done := false
	eng.Spawn("app", func(p *sim.Proc) {
		h.SendMessage(p, &san.Message{
			Hdr:  san.Header{Dst: swA.ID(), Type: san.ActiveMsg, HandlerID: 1},
			Size: 32,
		}, 0)
		tok := h.IssueReadTo(p, storeID, "f", 0, total, swA.ID(), 0x100000, san.Data, 0, 0, 0x6600)
		h.WaitRead(p, tok)
		h.RecvFlow(p, swA.ID(), 777)
		done = true
	})
	eng.Run()
	defer eng.Shutdown()
	if !done || streamed != total {
		t.Fatalf("done=%v streamed=%d, want %d", done, streamed, total)
	}
	// The data crossed swB as plain routed packets.
	if swB.Stats().Routed < total/512 {
		t.Fatalf("swB routed %d packets, want at least %d", swB.Stats().Routed, total/512)
	}
}

func TestDualIOCluster(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultIOClusterConfig()
	cfg.Hosts = 2
	c := NewDualIOCluster(eng, cfg)
	if len(c.Switches) != 2 {
		t.Fatalf("switches = %d", len(c.Switches))
	}
	c.Store(0).AddFile(&iodev.File{Name: "f", Size: 64 * 1024})
	c.Start()
	h := c.Host(0)
	done := false
	eng.Spawn("app", func(p *sim.Proc) {
		buf := h.Space().Alloc(64*1024, 4096)
		tok := h.IssueRead(p, c.Store(0).ID(), "f", 0, 64*1024, buf)
		h.WaitRead(p, tok)
		// Host-to-host on the same switch must not cross the trunk.
		h.SendMessage(p, &san.Message{Hdr: san.Header{Dst: c.Host(1).ID(), Type: san.Data}, Size: 512}, 0)
		done = true
	})
	eng.Spawn("rx", func(p *sim.Proc) { c.Host(1).RecvAny(p) })
	eng.Run()
	defer c.Shutdown()
	if !done {
		t.Fatal("read across the trunk never completed")
	}
	// The disk data crossed the trunk: the storage switch routed it.
	if c.Switch(1).Stats().Routed < 128 {
		t.Fatalf("storage switch routed %d packets", c.Switch(1).Stats().Routed)
	}
}

func TestHostWritePath(t *testing.T) {
	// Host-side write: request + data stream to the storage node, durable
	// ack back, correct busy charging.
	eng := sim.NewEngine()
	c := NewIOCluster(eng, DefaultIOClusterConfig())
	c.Start()
	h := c.Host(0)
	var done sim.Time
	eng.Spawn("app", func(p *sim.Proc) {
		local := h.Space().Alloc(256*1024, 4096)
		h.Write(p, c.Store(0).ID(), "out", 0, 256*1024, local)
		done = p.Now()
	})
	eng.Run()
	defer c.Shutdown()
	if done == 0 {
		t.Fatal("write never acked")
	}
	st := c.Store(0).Stats()
	if st.Writes != 1 || st.BytesWritten != 256*1024 {
		t.Fatalf("store stats = %+v", st)
	}
	// 256 KB costs at least its disk occupancy.
	if done < 2*sim.Millisecond {
		t.Fatalf("write finished at %v, faster than the disk", done)
	}
	// OS charges: 30us request + 0.27us/KB.
	b := h.CPU().Breakdown()
	wantBusy := 30*sim.Microsecond + 256*270*sim.Nanosecond
	if b.Busy < wantBusy {
		t.Fatalf("host busy %v below the OS model's %v", b.Busy, wantBusy)
	}
}

func TestTreeConfigValidation(t *testing.T) {
	eng := sim.NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("bad tree config did not panic")
		}
	}()
	NewTreeCluster(eng, TreeConfig{Hosts: 0})
}
