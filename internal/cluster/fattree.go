package cluster

import (
	"fmt"

	"activesan/internal/aswitch"
	"activesan/internal/host"
	"activesan/internal/iodev"
	"activesan/internal/san"
	"activesan/internal/sim"
)

// Switch roles in a fat tree, used for handler placement.
const (
	RoleEdge = "edge"
	RoleAgg  = "agg"
	RoleCore = "core"
)

// FatTreeConfig parameterizes NewFatTreeCluster.
type FatTreeConfig struct {
	// K is the tree's arity: k pods of k/2 edge and k/2 aggregation
	// switches, (k/2)^2 cores, k/2 hosts per edge switch — host capacity
	// k^3/4. Must be even and >= 2.
	K int
	// Hosts and Stores are the endpoint counts; endpoints fill edge
	// switches in order (pod 0 edge 0 first).
	Hosts  int
	Stores int
	Switch aswitch.Config // Ports is overridden to K on every switch
	Host   host.Config
	IO     iodev.Config
}

// MinFatTreeK returns the smallest even k whose fat tree holds `hosts`
// endpoints (k=4 holds 16, k=6 holds 54, k=8 holds 128).
func MinFatTreeK(hosts int) int {
	k := 2
	for k*k*k/4 < hosts {
		k += 2
	}
	return k
}

// DefaultFatTreeConfig returns the smallest fat tree holding `hosts`
// endpoints, built from the paper's switch and host parameters.
func DefaultFatTreeConfig(hosts int) FatTreeConfig {
	k := MinFatTreeK(hosts)
	return FatTreeConfig{
		K:      k,
		Hosts:  hosts,
		Switch: aswitch.DefaultConfig(k),
		Host:   host.DefaultConfig(),
		IO:     iodev.DefaultConfig(),
	}
}

// FatTreeTopology lays out the k-ary fat tree as a Topology spec. Switch
// order (and therefore node ids): pod by pod, edges then aggs, cores last.
// Names: "p<pod>e<i>" (edge), "p<pod>a<i>" (agg), "core<i>". Aggregation
// switch j of every pod uplinks to cores j*(k/2) .. (j+1)*(k/2)-1, so any
// two hosts in different pods have (k/2)^2 equal-cost paths and the BFS
// tie-break spreads them across the parallel uplinks.
func FatTreeTopology(cfg FatTreeConfig) Topology {
	k := cfg.K
	if k < 2 || k%2 != 0 {
		panic(fmt.Sprintf("cluster: fat-tree k=%d must be even and >= 2", k))
	}
	half := k / 2
	if cfg.Hosts+cfg.Stores > k*k*k/4 {
		panic(fmt.Sprintf("cluster: %d endpoints exceed k=%d fat-tree capacity %d",
			cfg.Hosts+cfg.Stores, k, k*k*k/4))
	}
	edgeIdx := func(pod, e int) int { return pod*k + e }
	aggIdx := func(pod, a int) int { return pod*k + half + a }
	coreIdx := func(c int) int { return k*k + c }

	t := Topology{Switch: cfg.Switch, Host: cfg.Host, IO: cfg.IO}
	for pod := 0; pod < k; pod++ {
		for e := 0; e < half; e++ {
			t.Switches = append(t.Switches, SwitchSpec{Name: fmt.Sprintf("p%de%d", pod, e), Ports: k, Role: RoleEdge})
		}
		for a := 0; a < half; a++ {
			t.Switches = append(t.Switches, SwitchSpec{Name: fmt.Sprintf("p%da%d", pod, a), Ports: k, Role: RoleAgg})
		}
	}
	for c := 0; c < half*half; c++ {
		t.Switches = append(t.Switches, SwitchSpec{Name: fmt.Sprintf("core%d", c), Ports: k, Role: RoleCore})
	}

	// Endpoints fill edges in order: global edge g holds endpoint slots
	// g*(k/2) .. g*(k/2)+k/2-1.
	slotEdge := func(slot int) int {
		g := slot / half
		return edgeIdx(g/half, g%half)
	}
	for i := 0; i < cfg.Hosts; i++ {
		t.Hosts = append(t.Hosts, NodeSpec{Switch: slotEdge(i)})
	}
	for j := 0; j < cfg.Stores; j++ {
		t.Stores = append(t.Stores, NodeSpec{Switch: slotEdge(cfg.Hosts + j)})
	}

	// Trunks: edge→agg within each pod (edge-major, so edge ports after the
	// endpoints run a=0..k/2-1 and agg down-ports run e=0..k/2-1), then
	// agg→core (pod-major, so core ports run in pod order).
	for pod := 0; pod < k; pod++ {
		for e := 0; e < half; e++ {
			for a := 0; a < half; a++ {
				t.Links = append(t.Links, LinkSpec{A: aggIdx(pod, a), B: edgeIdx(pod, e)})
			}
		}
	}
	for pod := 0; pod < k; pod++ {
		for a := 0; a < half; a++ {
			for c := a * half; c < (a+1)*half; c++ {
				t.Links = append(t.Links, LinkSpec{A: coreIdx(c), B: aggIdx(pod, a)})
			}
		}
	}
	return t
}

// NewFatTreeCluster builds a k-ary fat tree and overlays the aggregation
// tree the collective offloads use: every edge switch with hosts feeds its
// pod's first aggregation switch, every participating pod's first
// aggregation switch feeds core 0 (all link-adjacent hops). Switches outside
// that tree get an explicit Parent of san.NoNode so per-stage handlers are
// placed only on participating edge/agg/core switches.
func NewFatTreeCluster(eng *sim.Engine, cfg FatTreeConfig) *Cluster {
	c := Build(eng, FatTreeTopology(cfg))
	fatTreeOverlay(c, cfg)
	return c
}

// fatTreeOverlay installs the aggregation-tree shape on a built fat tree —
// shared by the serial and partitioned constructors so both produce the
// same TreeInfo.
func fatTreeOverlay(c *Cluster, cfg FatTreeConfig) {
	k := cfg.K
	half := k / 2

	tree := &TreeInfo{
		Parent:   make(map[san.NodeID]san.NodeID),
		HostLeaf: make(map[san.NodeID]san.NodeID),
		Children: make(map[san.NodeID]int),
	}
	// Every switch gets an explicit Parent entry: a map miss would read as
	// NodeID(0), not NoNode, and non-participating switches must be
	// distinguishable from children of node 0.
	for _, sw := range c.Switches {
		tree.Parent[sw.ID()] = san.NoNode
	}
	root := c.Topo.Sw[k*k].ID() // core0
	tree.Root = root

	aggID := func(pod int) san.NodeID { return c.Topo.Sw[pod*k+half].ID() }
	podActive := make([]bool, k)
	for _, h := range c.Hosts {
		edge := c.Topo.Attach[h.ID()]
		edgeSw := c.Topo.Sw[edge]
		pod := edge / k
		tree.HostLeaf[h.ID()] = edgeSw.ID()
		tree.Children[edgeSw.ID()]++
		if tree.Parent[edgeSw.ID()] == san.NoNode {
			tree.Parent[edgeSw.ID()] = aggID(pod)
			tree.Children[aggID(pod)]++
		}
		podActive[pod] = true
	}
	for pod := 0; pod < k; pod++ {
		if podActive[pod] {
			tree.Parent[aggID(pod)] = root
			tree.Children[root]++
		}
	}
	// Degenerate but legal: a fat tree with no hosts has an empty tree;
	// collective runners require hosts anyway.
	c.Tree = tree
}
