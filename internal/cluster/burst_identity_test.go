package cluster_test

// Adversarial identity suite for same-instant arbitration: every host fires
// at the identical instant, so packets from different partitions collide at
// shared switches with exactly equal timestamps — the one pattern that used
// to be tie-broken by event-insertion order, which barrier injection cannot
// reproduce. With the settle-phase crossbar, metrics, timelines, telemetry
// histograms, and the trace-event multiset must be byte-identical at any
// partition count, on fat trees and on seeded random fabrics alike.

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"activesan/internal/cluster"
	"activesan/internal/metrics"
	"activesan/internal/san"
	"activesan/internal/sim"
	"activesan/internal/telemetry"
)

// burstResult is everything the identity property compares: the metric
// snapshot (cluster collection plus telemetry histograms and watermarks),
// the sampled timeline series, the final virtual time, and the canonically
// ordered trace stream.
type burstResult struct {
	values map[string]float64
	series map[string]metrics.Series
	end    sim.Time
	trace  []sim.TraceEvent
}

// runBurst builds spec at the given partition count and fires the
// synchronized all-to-all burst: at t=0 every host sends one message to the
// host half a ring away — a permutation that pushes every message through
// shared fabric — and each receiver then acks to a collector on host 0,
// which stops the timelines at the workload's virtual end.
func runBurst(t *testing.T, spec cluster.Topology, nparts int, msgSize int64) burstResult {
	t.Helper()
	var c *cluster.Cluster
	if nparts == 1 {
		c = cluster.Build(sim.NewEngine(), spec)
	} else {
		c = cluster.BuildPartitioned(sim.NewGroup(nparts), spec, cluster.PartitionTopology(spec, nparts))
	}
	return driveBurst(t, c, msgSize)
}

// driveBurst runs the synchronized burst on an already-built cluster.
func driveBurst(t *testing.T, c *cluster.Cluster, msgSize int64) burstResult {
	t.Helper()
	defer c.Shutdown()

	// One trace buffer per engine: partition workers emit concurrently and
	// each sink must only touch its own rank's slice.
	var streams [][]sim.TraceEvent
	if c.Group != nil {
		streams = make([][]sim.TraceEvent, c.Group.Len())
		for r := 0; r < c.Group.Len(); r++ {
			r := r
			c.Group.Engine(r).SetTraceSink(func(ev sim.TraceEvent) { streams[r] = append(streams[r], ev) })
		}
	} else {
		streams = make([][]sim.TraceEvent, 1)
		c.Eng.SetTraceSink(func(ev sim.TraceEvent) { streams[0] = append(streams[0], ev) })
	}

	rec := telemetry.NewRecorder()
	rec.Attach(c)
	c.Start()
	tl := metrics.StartTimelines(c, 20*sim.Microsecond)

	nh := len(c.Hosts)
	shift := nh / 2
	if shift == 0 {
		shift = 1
	}
	coll := c.Host(0)
	for i := 0; i < nh; i++ {
		i := i
		h := c.Host(i)
		dst := c.Host((i + shift) % nh)
		src := c.Host((i + nh - shift) % nh)
		c.EngineFor(h.ID()).Spawn(fmt.Sprintf("burst%d", i), func(p *sim.Proc) {
			// Every host's send starts at the same instant zero.
			h.SendMessage(p, &san.Message{
				Hdr:  san.Header{Dst: dst.ID(), Type: san.Data, Flow: int64(4000 + i)},
				Size: msgSize,
			}, 0)
			h.RecvFlow(p, src.ID(), int64(4000+(i+nh-shift)%nh))
			h.SendMessage(p, &san.Message{
				Hdr:  san.Header{Dst: coll.ID(), Type: san.Data, Flow: int64(5000 + i)},
				Size: 64,
			}, 0)
		})
	}
	c.EngineFor(coll.ID()).Spawn("collector", func(p *sim.Proc) {
		for i := 0; i < nh; i++ {
			coll.RecvFlow(p, c.Host(i).ID(), int64(5000+i))
		}
		tl.Stop()
	})

	res := burstResult{}
	res.end = c.Run()
	res.values = metrics.Collect(c, res.end).Values
	tsnap := metrics.NewSnapshot()
	rec.Into(tsnap)
	tl.Into(tsnap)
	for k, v := range tsnap.Values {
		res.values[k] = v
	}
	res.series = tsnap.Series
	for _, s := range streams {
		res.trace = append(res.trace, s...)
	}
	sort.Slice(res.trace, func(i, j int) bool { return traceLess(res.trace[i], res.trace[j]) })
	return res
}

// compareBurst asserts got is byte-identical to the serial oracle.
func compareBurst(t *testing.T, label string, nparts int, want, got burstResult) {
	t.Helper()
	if got.end != want.end {
		t.Errorf("%s, %d partitions: end %v, serial %v", label, nparts, got.end, want.end)
	}
	if !reflect.DeepEqual(got.values, want.values) {
		reportValueDiff(t, 0, nparts, want.values, got.values)
	}
	if !reflect.DeepEqual(got.series, want.series) {
		t.Errorf("%s, %d partitions: timeline series differ:\nserial %v\ngot    %v", label, nparts, want.series, got.series)
	}
	if !reflect.DeepEqual(got.trace, want.trace) {
		reportTraceDiff(t, 0, nparts, want.trace, got.trace)
	}
}

// TestSynchronizedBurstIdentity is the adversarial arm of the partition
// identity guarantee. The fat-tree arm collides same-instant arrivals at
// edge, aggregation, and core switches; the random-fabric arm does the same
// on irregular graphs where the BFS partitioner produces uneven cuts. Both
// must hold at 1, 2, 4, and 8 partitions.
func TestSynchronizedBurstIdentity(t *testing.T) {
	t.Run("fattree", func(t *testing.T) {
		cfg := cluster.DefaultFatTreeConfig(16)
		mk := func(nparts int) *cluster.Cluster {
			return cluster.NewPartitionedFatTreeCluster(cfg, nparts)
		}
		want := driveBurst(t, mk(1), 8<<10)
		if len(want.trace) == 0 {
			t.Fatal("serial run emitted no trace events")
		}
		for _, nparts := range []int{2, 4, 8} {
			compareBurst(t, "fattree", nparts, want, driveBurst(t, mk(nparts), 8<<10))
		}
	})
	t.Run("random", func(t *testing.T) {
		r := &propRand{s: 0xb1257_1d}
		rounds := 3
		if testing.Short() {
			rounds = 1
		}
		for round := 0; round < rounds; round++ {
			spec := randomFabric(r)
			label := fmt.Sprintf("random round %d", round)
			want := runBurst(t, spec, 1, 4<<10)
			if len(want.trace) == 0 {
				t.Fatalf("%s: serial run emitted no trace events", label)
			}
			for _, nparts := range []int{2, 4, 8} {
				compareBurst(t, label, nparts, want, runBurst(t, spec, nparts, 4<<10))
			}
		}
	})
}
