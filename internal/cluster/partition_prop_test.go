package cluster_test

// Property tests for the partition-parallel engine: a seeded random fabric
// must produce byte-identical results at every partition count. The serial
// engine is the oracle; the partitioned builds (2, 4, 8 ranks) must match
// its metric snapshot, its trace-event multiset, and its final virtual time
// exactly. This package is cluster_test (not cluster) because the oracle
// comparison pulls in metrics, which imports cluster.

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"activesan/internal/cluster"
	"activesan/internal/iodev"
	"activesan/internal/metrics"
	"activesan/internal/san"
	"activesan/internal/sim"
)

// propRand is the suite's splitmix64 PRNG (duplicated from the route fuzzer,
// which lives in the internal test package): tiny, seedable, and independent
// of math/rand so the generated fabrics are stable across Go releases.
type propRand struct{ s uint64 }

func (r *propRand) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *propRand) intn(n int) int { return int(r.next() % uint64(n)) }

// randomFabric builds a random connected topology: a spanning tree over
// 3..10 switches plus up to 3 extra edges, 0..2 hosts per switch (at least
// two overall, so the message ring is non-degenerate), and one store.
func randomFabric(r *propRand) cluster.Topology {
	n := 3 + r.intn(8)
	var t cluster.Topology
	for i := 0; i < n; i++ {
		name := string(rune('a'+i/26)) + string(rune('a'+i%26)) + "sw"
		t.Switches = append(t.Switches, cluster.SwitchSpec{Name: name})
	}
	have := map[[2]int]bool{}
	for i := 1; i < n; i++ {
		p := r.intn(i)
		t.Links = append(t.Links, cluster.LinkSpec{A: p, B: i})
		have[[2]int{p, i}] = true
	}
	for e := r.intn(4); e > 0; e-- {
		a, b := r.intn(n), r.intn(n)
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		if have[[2]int{a, b}] {
			continue
		}
		have[[2]int{a, b}] = true
		t.Links = append(t.Links, cluster.LinkSpec{A: a, B: b})
	}
	for i := 0; i < n; i++ {
		for h := r.intn(3); h > 0; h-- {
			t.Hosts = append(t.Hosts, cluster.NodeSpec{Switch: i})
		}
	}
	for len(t.Hosts) < 2 {
		t.Hosts = append(t.Hosts, cluster.NodeSpec{Switch: len(t.Hosts) % n})
	}
	t.Stores = append(t.Stores, cluster.NodeSpec{Switch: r.intn(n)})
	cfg := cluster.DefaultIOClusterConfig()
	t.Switch, t.Host, t.IO = cfg.Switch, cfg.Host, cfg.IO
	return t
}

// fabricResult is everything the identity property compares: the folded
// metric snapshot, the final virtual time, and the canonically ordered
// trace stream.
type fabricResult struct {
	values map[string]float64
	end    sim.Time
	trace  []sim.TraceEvent
}

// traceLess is the canonical trace order: (At, Cat, Name, Comp, Detail).
// Per-engine streams interleave differently at different partition counts,
// but the event multiset is identical, so sorting restores comparability.
func traceLess(a, b sim.TraceEvent) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	if a.Cat != b.Cat {
		return a.Cat < b.Cat
	}
	if a.Name != b.Name {
		return a.Name < b.Name
	}
	if a.Comp != b.Comp {
		return a.Comp < b.Comp
	}
	return a.Detail < b.Detail
}

// runFabric builds spec at the given partition count (1 = serial Build) and
// drives the standard workload: every host reads a slice of a shared file
// from the store and passes a 4 KB message around a host ring. Procs spawn
// on each host's home engine, exactly as partitioned applications must.
func runFabric(t *testing.T, spec cluster.Topology, nparts int) fabricResult {
	t.Helper()
	var c *cluster.Cluster
	if nparts == 1 {
		c = cluster.Build(sim.NewEngine(), spec)
	} else {
		part := cluster.PartitionTopology(spec, nparts)
		c = cluster.BuildPartitioned(sim.NewGroup(nparts), spec, part)
	}
	defer c.Shutdown()

	// One buffer per engine: partition workers emit concurrently, and each
	// sink must only touch its own rank's slice. Merged after Run drains.
	res := fabricResult{}
	var streams [][]sim.TraceEvent
	if c.Group != nil {
		streams = make([][]sim.TraceEvent, c.Group.Len())
		for r := 0; r < c.Group.Len(); r++ {
			r := r
			c.Group.Engine(r).SetTraceSink(func(ev sim.TraceEvent) { streams[r] = append(streams[r], ev) })
		}
	} else {
		streams = make([][]sim.TraceEvent, 1)
		c.Eng.SetTraceSink(func(ev sim.TraceEvent) { streams[0] = append(streams[0], ev) })
	}

	const fileSize = 256 << 10
	const readLen = 16 << 10
	c.Store(0).AddFile(&iodev.File{Name: "f", Size: fileSize})
	c.Start()

	nh := len(c.Hosts)
	for i := 0; i < nh; i++ {
		i := i
		h := c.Host(i)
		next := c.Host((i + 1) % nh)
		prev := c.Host((i + nh - 1) % nh)
		c.EngineFor(h.ID()).Spawn(fmt.Sprintf("app%d", i), func(p *sim.Proc) {
			buf := h.Space().Alloc(readLen, 4096)
			tok := h.IssueRead(p, c.Store(0).ID(), "f", int64(i*4096)%(fileSize-readLen), readLen, buf)
			h.SendMessage(p, &san.Message{
				Hdr:  san.Header{Dst: next.ID(), Type: san.Data, Flow: int64(1000 + i)},
				Size: 4096,
			}, 0)
			h.RecvFlow(p, prev.ID(), int64(1000+(i+nh-1)%nh))
			h.WaitRead(p, tok)
		})
	}

	res.end = c.Run()
	res.values = metrics.Collect(c, res.end).Values
	for _, s := range streams {
		res.trace = append(res.trace, s...)
	}
	sort.Slice(res.trace, func(i, j int) bool { return traceLess(res.trace[i], res.trace[j]) })
	return res
}

func propRounds(t *testing.T) int {
	if testing.Short() {
		return 4
	}
	return 12
}

// TestPartitionFabricIdentity is the partitioned engine's core property:
// for seeded random fabrics, building the same spec at 1, 2, 4, and 8
// partitions yields byte-identical metric snapshots, final virtual times,
// and trace-event multisets. Any conservatism hole (a window executing an
// event before a cross-cut message that should precede it) perturbs packet
// timing and fails the trace comparison.
func TestPartitionFabricIdentity(t *testing.T) {
	r := &propRand{s: 0x9a57171001}
	for round := 0; round < propRounds(t); round++ {
		spec := randomFabric(r)
		want := runFabric(t, spec, 1)
		if len(want.trace) == 0 {
			t.Fatalf("round %d: serial run emitted no trace events", round)
		}
		for _, nparts := range []int{2, 4, 8} {
			got := runFabric(t, spec, nparts)
			if got.end != want.end {
				t.Errorf("round %d, %d partitions: end %v, serial %v", round, nparts, got.end, want.end)
			}
			if !reflect.DeepEqual(got.values, want.values) {
				reportValueDiff(t, round, nparts, want.values, got.values)
			}
			if !reflect.DeepEqual(got.trace, want.trace) {
				reportTraceDiff(t, round, nparts, want.trace, got.trace)
			}
		}
	}
}

// reportValueDiff prints only the metrics that differ, so a failure names
// the component that diverged instead of dumping two full snapshots.
func reportValueDiff(t *testing.T, round, nparts int, want, got map[string]float64) {
	t.Helper()
	keys := map[string]bool{}
	for k := range want {
		keys[k] = true
	}
	for k := range got {
		keys[k] = true
	}
	var names []string
	for k := range keys {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		w, okW := want[k]
		g, okG := got[k]
		if okW != okG || w != g {
			t.Errorf("round %d, %d partitions: metric %s = %v, serial %v", round, nparts, k, g, w)
		}
	}
}

// reportTraceDiff finds the first diverging event in the canonical order.
func reportTraceDiff(t *testing.T, round, nparts int, want, got []sim.TraceEvent) {
	t.Helper()
	n := len(want)
	if len(got) < n {
		n = len(got)
	}
	for i := 0; i < n; i++ {
		if want[i] != got[i] {
			t.Errorf("round %d, %d partitions: trace[%d] = %v, serial %v", round, nparts, i, got[i], want[i])
			return
		}
	}
	t.Errorf("round %d, %d partitions: trace length %d, serial %d", round, nparts, len(got), len(want))
}

// TestFatTreePartitionPlacement pins the cut-selection contract for fat
// trees: a pod never straddles partitions (pod-internal links are the
// latency-critical ones), core switches spread round-robin, and every
// switch is assigned a valid rank.
func TestFatTreePartitionPlacement(t *testing.T) {
	for _, nparts := range []int{2, 4} {
		cfg := cluster.DefaultFatTreeConfig(16) // k=4: 4 pods of 4 switches, 4 cores
		spec := cluster.FatTreeTopology(cfg)
		part := cluster.FatTreePartition(cfg, nparts)
		if len(part) != len(spec.Switches) {
			t.Fatalf("nparts=%d: partition map covers %d of %d switches", nparts, len(part), len(spec.Switches))
		}
		podOf := map[int]int{} // pod -> partition
		for i, sw := range spec.Switches {
			if part[i] < 0 || part[i] >= nparts {
				t.Fatalf("nparts=%d: switch %s assigned rank %d", nparts, sw.Name, part[i])
			}
			if sw.Role == cluster.RoleCore {
				continue
			}
			var pod int
			if _, err := fmt.Sscanf(sw.Name, "p%d", &pod); err != nil {
				t.Fatalf("unexpected switch name %q", sw.Name)
			}
			if seen, ok := podOf[pod]; ok && seen != part[i] {
				t.Fatalf("nparts=%d: pod %d split across partitions %d and %d", nparts, pod, seen, part[i])
			}
			podOf[pod] = part[i]
		}
	}
}

// TestPartitionTopologyCovers checks the generic BFS partitioner on random
// fabrics: every switch gets a rank in range, no rank exceeds the contiguous
// chunk size ceil(n/nparts), and the used ranks form a prefix — trailing
// ranks may be empty when the ceiling rounds up (9 switches at 4 partitions
// is 3+3+3+0), and an empty engine is harmless because the group always
// drains it, but a rank used after an unused one would mean the chunk walk
// skipped part of the BFS order.
func TestPartitionTopologyCovers(t *testing.T) {
	r := &propRand{s: 0x9a57171002}
	for round := 0; round < 20; round++ {
		spec := randomFabric(r)
		for _, nparts := range []int{2, 3, 4, 8} {
			part := cluster.PartitionTopology(spec, nparts)
			if len(part) != len(spec.Switches) {
				t.Fatalf("round %d nparts=%d: map covers %d of %d switches",
					round, nparts, len(part), len(spec.Switches))
			}
			chunk := (len(spec.Switches) + nparts - 1) / nparts
			used := make([]int, nparts)
			for i, p := range part {
				if p < 0 || p >= nparts {
					t.Fatalf("round %d nparts=%d: switch %d assigned rank %d", round, nparts, i, p)
				}
				used[p]++
			}
			empty := false
			for rank, n := range used {
				if n > chunk {
					t.Errorf("round %d nparts=%d: rank %d owns %d switches, chunk bound %d",
						round, nparts, rank, n, chunk)
				}
				if n == 0 {
					empty = true
				} else if empty {
					t.Errorf("round %d nparts=%d: rank %d used after an empty rank", round, nparts, rank)
				}
			}
		}
	}
}
