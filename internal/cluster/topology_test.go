package cluster

import (
	"testing"

	"activesan/internal/san"
	"activesan/internal/sim"
)

// smallSpec is a 3-switch line (sw0 - sw1 - sw2) with one host on each end
// and a store in the middle.
func smallSpec() Topology {
	t := Topology{
		Switches: []SwitchSpec{
			{Name: "sw0", Role: "edge"},
			{Name: "sw1", Role: "core"},
			{Name: "sw2", Role: "edge"},
		},
		Links:  []LinkSpec{{A: 0, B: 1}, {A: 1, B: 2}},
		Hosts:  []NodeSpec{{Switch: 0}, {Switch: 2}},
		Stores: []NodeSpec{{Switch: 1}},
	}
	cfg := DefaultIOClusterConfig()
	t.Switch, t.Host, t.IO = cfg.Switch, cfg.Host, cfg.IO
	return t
}

func TestTopologyValidate(t *testing.T) {
	good := smallSpec()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := map[string]func(*Topology){
		"no switches":       func(s *Topology) { s.Switches = nil },
		"link out of range": func(s *Topology) { s.Links[0].B = 9 },
		"self loop":         func(s *Topology) { s.Links[0].B = s.Links[0].A },
		"host out of range": func(s *Topology) { s.Hosts[0].Switch = -1 },
		"disconnected":      func(s *Topology) { s.Links = s.Links[:1] },
	}
	for name, mutate := range cases {
		bad := smallSpec()
		mutate(&bad)
		if err := bad.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestBuildRoutesAndAdjacency(t *testing.T) {
	eng := sim.NewEngine()
	c := Build(eng, smallSpec())
	defer c.Shutdown()

	if len(c.Switches) != 3 || len(c.Hosts) != 2 || len(c.Stores) != 1 {
		t.Fatalf("built %d switches / %d hosts / %d stores", len(c.Switches), len(c.Hosts), len(c.Stores))
	}
	// Auto-sized ports: sw0 and sw2 have host+trunk, sw1 store+2 trunks.
	if p := c.Switches[0].Config().Ports; p != 2 {
		t.Errorf("sw0 has %d ports, want 2", p)
	}
	if p := c.Switches[1].Config().Ports; p != 3 {
		t.Errorf("sw1 has %d ports, want 3", p)
	}
	// Endpoint ports come first: the host link keeps its historical name.
	if name := c.Switches[0].Port(0).In.Name(); name != "h0.up" {
		t.Errorf("sw0 port 0 in-link = %q, want h0.up", name)
	}
	// Default trunk names follow <a>-><b>.
	if name := c.Switches[0].Port(1).Out.Name(); name != "sw0->sw1" {
		t.Errorf("sw0 trunk out-link = %q, want sw0->sw1", name)
	}

	// Shortest paths: sw0 reaches h1 (on sw2) via its trunk; sw1 routes the
	// two hosts out opposite trunks; every switch id is routable.
	h1 := c.Hosts[1].ID()
	if port := c.Switches[0].Route(h1); port != 1 {
		t.Errorf("sw0 routes h1 via port %d, want trunk port 1", port)
	}
	if port := c.Switches[1].Route(c.Hosts[0].ID()); port != 1 {
		t.Errorf("sw1 routes h0 via port %d, want port 1", port)
	}
	if port := c.Switches[1].Route(h1); port != 2 {
		t.Errorf("sw1 routes h1 via port %d, want port 2", port)
	}
	for _, sw := range c.Switches {
		for _, other := range c.Switches {
			if sw == other {
				continue
			}
			if sw.Route(other.ID()) < 0 {
				t.Errorf("%s has no route to %s", sw.Name(), other.Name())
			}
		}
	}
	// A line has unique shortest paths: no backup routes anywhere.
	for _, sw := range c.Switches {
		for _, id := range []san.NodeID{c.Hosts[0].ID(), h1, c.Stores[0].ID()} {
			if b := sw.BackupRoute(id); b >= 0 {
				t.Errorf("%s has backup route %d for %d on a unique-path graph", sw.Name(), b, id)
			}
		}
	}

	// TopoInfo reflects the spec.
	if c.Topo == nil || len(c.Topo.Sw) != 3 {
		t.Fatal("TopoInfo missing")
	}
	if c.Topo.Attach[c.Stores[0].ID()] != 1 {
		t.Errorf("store attached at %d, want 1", c.Topo.Attach[c.Stores[0].ID()])
	}
	if peer := c.Topo.PortPeer[0][1]; peer != 1 {
		t.Errorf("sw0 port 1 peers %d, want 1", peer)
	}
	if edges := c.SwitchesByRole("edge"); len(edges) != 2 {
		t.Errorf("%d edge switches, want 2", len(edges))
	}
}

func TestBuildPanicsOnTooFewPorts(t *testing.T) {
	spec := smallSpec()
	spec.Switches[1].Ports = 2 // needs 3
	defer func() {
		if recover() == nil {
			t.Fatal("undersized switch accepted")
		}
	}()
	Build(sim.NewEngine(), spec)
}

func TestBuildEndToEndMessage(t *testing.T) {
	eng := sim.NewEngine()
	c := Build(eng, smallSpec())
	c.Start()
	done := false
	eng.Spawn("rx", func(p *sim.Proc) {
		c.Host(1).RecvAny(p)
		done = true
	})
	eng.Spawn("tx", func(p *sim.Proc) {
		c.Host(0).SendMessage(p, &san.Message{
			Hdr: san.Header{Dst: c.Host(1).ID(), Type: san.Data}, Size: 2048,
		}, 0)
	})
	eng.Run()
	defer c.Shutdown()
	if !done {
		t.Fatal("message never crossed the two-trunk path")
	}
}

func TestMinFatTreeK(t *testing.T) {
	cases := map[int]int{1: 2, 2: 2, 3: 4, 4: 4, 16: 4, 17: 6, 54: 6, 55: 8, 64: 8, 128: 8, 129: 10}
	for hosts, want := range cases {
		if got := MinFatTreeK(hosts); got != want {
			t.Errorf("MinFatTreeK(%d) = %d, want %d", hosts, got, want)
		}
	}
}

func TestFatTreeShape(t *testing.T) {
	eng := sim.NewEngine()
	c := NewFatTreeCluster(eng, DefaultFatTreeConfig(16))
	defer c.Shutdown()

	// k=4: 4 pods x (2 edge + 2 agg) + 4 cores = 20 switches.
	if len(c.Switches) != 20 {
		t.Fatalf("%d switches, want 20", len(c.Switches))
	}
	if len(c.SwitchesByRole(RoleEdge)) != 8 || len(c.SwitchesByRole(RoleAgg)) != 8 || len(c.SwitchesByRole(RoleCore)) != 4 {
		t.Fatalf("role counts edge=%d agg=%d core=%d, want 8/8/4",
			len(c.SwitchesByRole(RoleEdge)), len(c.SwitchesByRole(RoleAgg)), len(c.SwitchesByRole(RoleCore)))
	}
	// Every switch has exactly k ports and every port is attached at full
	// occupancy (16 hosts fill the k=4 capacity).
	for _, sw := range c.Switches {
		if sw.Config().Ports != 4 {
			t.Fatalf("%s has %d ports, want 4", sw.Name(), sw.Config().Ports)
		}
		for i := 0; i < 4; i++ {
			if sw.Port(i).In == nil {
				t.Fatalf("%s port %d unattached at full capacity", sw.Name(), i)
			}
		}
	}

	// The aggregation overlay: every switch has an explicit Parent entry,
	// the root is core0, and child counts sum to hosts + participants.
	if c.Tree == nil {
		t.Fatal("fat tree has no aggregation TreeInfo")
	}
	if got := len(c.Tree.Parent); got != 20 {
		t.Fatalf("%d Parent entries, want one per switch (20)", got)
	}
	root := c.Tree.Root
	if c.Tree.Parent[root] != san.NoNode {
		t.Fatal("root has a parent")
	}
	if c.Topo.Sw[16].ID() != root {
		t.Fatalf("root is %d, want core0 (%d)", root, c.Topo.Sw[16].ID())
	}
	// All 8 edges have 2 hosts; all 4 pods participate via their first agg.
	participants := 0
	for _, sw := range c.Switches {
		if n := c.Tree.Children[sw.ID()]; n > 0 {
			participants++
			if par := c.Tree.Parent[sw.ID()]; sw.ID() != root && par == san.NoNode {
				t.Errorf("%s participates but has no parent", sw.Name())
			}
		}
	}
	if participants != 8+4+1 {
		t.Errorf("%d participating switches, want 13 (8 edge + 4 agg + core0)", participants)
	}
	if c.Tree.Children[root] != 4 {
		t.Errorf("root has %d children, want 4 pods", c.Tree.Children[root])
	}
	// Non-participating switches (other aggs and cores) are explicit NoNode.
	agg1 := c.Topo.Sw[3] // pod 0, agg 1
	if c.Tree.Parent[agg1.ID()] != san.NoNode || c.Tree.Children[agg1.ID()] != 0 {
		t.Errorf("agg1 should not participate: parent=%d children=%d",
			c.Tree.Parent[agg1.ID()], c.Tree.Children[agg1.ID()])
	}
}

func TestFatTreePartialOccupancy(t *testing.T) {
	// 5 hosts on k=4: three edges used (2+2+1), one pod empty of hosts.
	eng := sim.NewEngine()
	cfg := DefaultFatTreeConfig(5)
	c := NewFatTreeCluster(eng, cfg)
	defer c.Shutdown()
	if cfg.K != 4 || len(c.Hosts) != 5 {
		t.Fatalf("k=%d hosts=%d", cfg.K, len(c.Hosts))
	}
	edges := 0
	for _, sw := range c.SwitchesByRole(RoleEdge) {
		if c.Tree.Children[sw.ID()] > 0 {
			edges++
		}
	}
	if edges != 3 {
		t.Errorf("%d participating edges, want 3", edges)
	}
	// Pod 0 and 1 participate, pods 2 and 3 do not.
	if c.Tree.Children[c.Tree.Root] != 2 {
		t.Errorf("root children = %d, want 2 pods", c.Tree.Children[c.Tree.Root])
	}
}

func TestFatTreeCrossPodMessage(t *testing.T) {
	// Host 0 (pod 0) to the last host (pod 3) crosses edge-agg-core-agg-edge;
	// ECMP must deliver and install a backup for the multipath hops.
	eng := sim.NewEngine()
	c := NewFatTreeCluster(eng, DefaultFatTreeConfig(16))
	c.Start()
	last := c.Host(15)
	got := false
	eng.Spawn("rx", func(p *sim.Proc) {
		last.RecvAny(p)
		got = true
	})
	eng.Spawn("tx", func(p *sim.Proc) {
		c.Host(0).SendMessage(p, &san.Message{
			Hdr: san.Header{Dst: last.ID(), Type: san.Data}, Size: 4096,
		}, 0)
	})
	eng.Run()
	defer c.Shutdown()
	if !got {
		t.Fatal("cross-pod message lost")
	}
	// The sending edge has k/2 equal-cost uplinks toward the remote pod, so
	// a backup route must exist and differ from the primary.
	edge0 := c.Topo.Sw[0]
	prim, back := edge0.Route(last.ID()), edge0.BackupRoute(last.ID())
	if back < 0 {
		t.Fatal("no backup route on a multipath hop")
	}
	if back == prim {
		t.Fatal("backup equals primary")
	}
}

func TestBuildCollectiveHonorsDefault(t *testing.T) {
	defer SetDefaultTopology("tree", 0)

	SetDefaultTopology("tree", 0)
	c := BuildCollective(sim.NewEngine(), DefaultTreeConfig(16))
	if c.Topo.Spec.Switches[0].Name != "leaf0" {
		t.Fatalf("tree default built %q", c.Topo.Spec.Switches[0].Name)
	}
	c.Shutdown()

	SetDefaultTopology("fattree", 0)
	c = BuildCollective(sim.NewEngine(), DefaultTreeConfig(16))
	if got := len(c.Switches); got != 20 {
		t.Fatalf("fattree default built %d switches, want 20 (k=4)", got)
	}
	c.Shutdown()

	SetDefaultTopology("fattree", 6)
	c = BuildCollective(sim.NewEngine(), DefaultTreeConfig(16))
	if got := len(c.Switches); got != 45 {
		t.Fatalf("fattree:6 built %d switches, want 45 (6*6 + 9)", got)
	}
	c.Shutdown()
}
