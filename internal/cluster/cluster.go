// Package cluster assembles simulated systems: hosts, storage nodes and
// active switches wired into the paper's topologies — a single-switch
// I/O cluster for the streaming benchmarks, and the log_{N/2}(p) switch
// tree used for collective reduction at scale.
package cluster

import (
	"fmt"

	"activesan/internal/aswitch"
	"activesan/internal/host"
	"activesan/internal/iodev"
	"activesan/internal/san"
	"activesan/internal/sim"
)

// Node-ID ranges keep identities readable in traces.
const (
	HostIDBase   san.NodeID = 1
	StoreIDBase  san.NodeID = 200
	SwitchIDBase san.NodeID = 1000
)

// Cluster is a wired system ready to Start.
type Cluster struct {
	Eng      *sim.Engine
	Switches []*aswitch.ActiveSwitch
	Hosts    []*host.Host
	Stores   []*iodev.StorageNode

	// Tree describes the switch hierarchy for tree topologies (nil for
	// single-switch clusters).
	Tree *TreeInfo

	// ExtraMetrics, when set, contributes additional top-level values to the
	// metrics snapshot (the fault injector registers its counters here; the
	// indirection keeps lower layers from importing internal/fault). Its
	// presence also gates all fault/retry metric emission.
	ExtraMetrics func(add func(name string, v float64))
	// FaultCounts reports cumulative (injected, recovered) fault counts for
	// timeline sampling; nil when no fault plan is armed.
	FaultCounts func() (injected, recovered int64)

	started bool
}

// TreeInfo captures the reduction tree's shape: each switch's parent (the
// root maps to san.NoNode), each host's leaf switch, and how many direct
// children (hosts or switches) feed each switch.
type TreeInfo struct {
	Parent   map[san.NodeID]san.NodeID
	HostLeaf map[san.NodeID]san.NodeID
	Children map[san.NodeID]int
	Root     san.NodeID
}

// Host returns host i.
func (c *Cluster) Host(i int) *host.Host { return c.Hosts[i] }

// Store returns storage node i.
func (c *Cluster) Store(i int) *iodev.StorageNode { return c.Stores[i] }

// Switch returns switch i (0 is the root in tree topologies).
func (c *Cluster) Switch(i int) *aswitch.ActiveSwitch { return c.Switches[i] }

// Start launches every component. Handlers must be registered before this.
func (c *Cluster) Start() {
	if c.started {
		panic("cluster: double Start")
	}
	c.started = true
	for _, s := range c.Switches {
		s.Start()
	}
	for _, h := range c.Hosts {
		h.Start()
	}
	for _, s := range c.Stores {
		s.Start()
	}
}

// Shutdown unwinds all simulation processes; call after the final Run.
func (c *Cluster) Shutdown() { c.Eng.Shutdown() }

// attachHost wires a new host to switch port.
func attachHost(eng *sim.Engine, sw *aswitch.ActiveSwitch, port int, id san.NodeID, name string, cfg host.Config) *host.Host {
	link := sw.Config().Link
	up := san.NewLink(eng, fmt.Sprintf("%s.up", name), link)
	down := san.NewLink(eng, fmt.Sprintf("%s.down", name), link)
	sw.AttachPort(port, up, down)
	sw.SetRoute(id, port)
	return host.New(eng, id, name, down, up, cfg)
}

// attachStore wires a new storage node to switch port.
func attachStore(eng *sim.Engine, sw *aswitch.ActiveSwitch, port int, id san.NodeID, name string, cfg iodev.Config) *iodev.StorageNode {
	link := sw.Config().Link
	up := san.NewLink(eng, fmt.Sprintf("%s.up", name), link)
	down := san.NewLink(eng, fmt.Sprintf("%s.down", name), link)
	sw.AttachPort(port, up, down)
	sw.SetRoute(id, port)
	return iodev.New(eng, id, name, down, up, cfg)
}

// IOClusterConfig parameterizes NewIOCluster.
type IOClusterConfig struct {
	Hosts  int
	Stores int
	Switch aswitch.Config // Ports is overridden to fit
	Host   host.Config
	IO     iodev.Config
}

// DefaultIOClusterConfig returns a one-host, one-store cluster
// configuration with the paper's parameters.
func DefaultIOClusterConfig() IOClusterConfig {
	return IOClusterConfig{
		Hosts:  1,
		Stores: 1,
		Switch: aswitch.DefaultConfig(8),
		Host:   host.DefaultConfig(),
		IO:     iodev.DefaultConfig(),
	}
}

// NewIOCluster builds the paper's Figure 1 system: hosts and storage nodes
// around one (active) switch. Host i has node id HostIDBase+i; storage node
// j has StoreIDBase+j; the switch is SwitchIDBase.
func NewIOCluster(eng *sim.Engine, cfg IOClusterConfig) *Cluster {
	ports := cfg.Hosts + cfg.Stores
	if cfg.Switch.Base.Ports < ports {
		cfg.Switch.Base.Ports = ports
	}
	sw := aswitch.New(eng, SwitchIDBase, "sw0", cfg.Switch)
	c := &Cluster{Eng: eng, Switches: []*aswitch.ActiveSwitch{sw}}
	port := 0
	for i := 0; i < cfg.Hosts; i++ {
		h := attachHost(eng, sw, port, HostIDBase+san.NodeID(i), fmt.Sprintf("h%d", i), cfg.Host)
		c.Hosts = append(c.Hosts, h)
		port++
	}
	for j := 0; j < cfg.Stores; j++ {
		s := attachStore(eng, sw, port, StoreIDBase+san.NodeID(j), fmt.Sprintf("d%d", j), cfg.IO)
		c.Stores = append(c.Stores, s)
		port++
	}
	return c
}

// TreeConfig parameterizes NewTreeCluster.
type TreeConfig struct {
	// Hosts is the number of compute nodes p.
	Hosts int
	// HostsPerLeaf is how many hosts hang off each leaf switch (the paper
	// uses 8 of each leaf's 16 ports).
	HostsPerLeaf int
	// Arity is the fan-in of interior switches (paper: N/2 = 8).
	Arity  int
	Switch aswitch.Config
	Host   host.Config
}

// DefaultTreeConfig returns the collective-reduction topology of the
// paper's Section 5: 16-port switches with 8 hosts per leaf.
func DefaultTreeConfig(p int) TreeConfig {
	return TreeConfig{
		Hosts:        p,
		HostsPerLeaf: 8,
		Arity:        8,
		Switch:       aswitch.DefaultConfig(16),
		Host:         host.DefaultConfig(),
	}
}

// treeNode is a switch under construction with its subtree membership.
type treeNode struct {
	sw         *aswitch.ActiveSwitch
	parent     *treeNode
	parentPort int
	nextPort   int
	subtree    []san.NodeID
}

// NewTreeCluster builds a switch tree: ceil(p/HostsPerLeaf) leaf switches,
// reduced Arity-to-1 per level up to a single root. Switch 0 in the result
// is the root; leaves follow. Every switch routes every host and switch id.
// A single-leaf system degenerates to one switch, matching the paper's
// small-system case.
func NewTreeCluster(eng *sim.Engine, cfg TreeConfig) *Cluster {
	if cfg.Hosts <= 0 || cfg.HostsPerLeaf <= 0 || cfg.Arity < 2 {
		panic("cluster: invalid tree configuration")
	}
	c := &Cluster{Eng: eng, Tree: &TreeInfo{
		Parent:   make(map[san.NodeID]san.NodeID),
		HostLeaf: make(map[san.NodeID]san.NodeID),
		Children: make(map[san.NodeID]int),
	}}
	swID := SwitchIDBase

	newSwitch := func(name string) *treeNode {
		sw := aswitch.New(eng, swID, name, cfg.Switch)
		swID++
		n := &treeNode{sw: sw}
		return n
	}

	// Build leaves with their hosts.
	nLeaves := (cfg.Hosts + cfg.HostsPerLeaf - 1) / cfg.HostsPerLeaf
	var level []*treeNode
	hostIdx := 0
	for l := 0; l < nLeaves; l++ {
		leaf := newSwitch(fmt.Sprintf("leaf%d", l))
		for k := 0; k < cfg.HostsPerLeaf && hostIdx < cfg.Hosts; k++ {
			id := HostIDBase + san.NodeID(hostIdx)
			h := attachHost(eng, leaf.sw, leaf.nextPort, id, fmt.Sprintf("h%d", hostIdx), cfg.Host)
			leaf.nextPort++
			leaf.subtree = append(leaf.subtree, id)
			c.Hosts = append(c.Hosts, h)
			c.Tree.HostLeaf[id] = leaf.sw.ID()
			c.Tree.Children[leaf.sw.ID()]++
			hostIdx++
		}
		level = append(level, leaf)
	}

	// Reduce levels until a single root remains.
	allNodes := append([]*treeNode(nil), level...)
	for len(level) > 1 {
		var next []*treeNode
		for i := 0; i < len(level); i += cfg.Arity {
			end := i + cfg.Arity
			if end > len(level) {
				end = len(level)
			}
			group := level[i:end]
			parent := newSwitch(fmt.Sprintf("sw%d", len(allNodes)))
			for _, child := range group {
				connect(eng, parent, child)
				parent.subtree = append(parent.subtree, child.subtree...)
				parent.subtree = append(parent.subtree, child.sw.ID())
				child.parent = parent
				c.Tree.Parent[child.sw.ID()] = parent.sw.ID()
				c.Tree.Children[parent.sw.ID()]++
			}
			allNodes = append(allNodes, parent)
			next = append(next, parent)
		}
		level = next
	}
	root := level[0]

	// Install upward routes: each switch reaches everything outside its
	// subtree via its parent (downward routes were installed by connect).
	all := append([]san.NodeID(nil), root.subtree...)
	for _, n := range allNodes {
		all = append(all, n.sw.ID())
	}
	for _, n := range allNodes {
		installRoutes(n, all)
	}

	c.Tree.Root = root.sw.ID()
	c.Tree.Parent[root.sw.ID()] = san.NoNode

	// Order switches: root first, then the rest in creation order.
	c.Switches = append(c.Switches, root.sw)
	for _, n := range allNodes {
		if n != root {
			c.Switches = append(c.Switches, n.sw)
		}
	}
	return c
}

// connect wires child's uplink to parent's next free port pair.
func connect(eng *sim.Engine, parent, child *treeNode) {
	link := parent.sw.Config().Link
	up := san.NewLink(eng, fmt.Sprintf("%s->%s", child.sw.Name(), parent.sw.Name()), link)
	down := san.NewLink(eng, fmt.Sprintf("%s->%s", parent.sw.Name(), child.sw.Name()), link)
	parent.sw.AttachPort(parent.nextPort, up, down)
	child.childUplink(eng, down, up)
	// Route all of child's subtree out of this parent port.
	for _, id := range child.subtree {
		parent.sw.SetRoute(id, parent.nextPort)
	}
	parent.sw.SetRoute(child.sw.ID(), parent.nextPort)
	parent.nextPort++
}

// childUplink attaches the parent-facing links on the child's next port.
func (n *treeNode) childUplink(eng *sim.Engine, fromParent, toParent *san.Link) {
	n.sw.AttachPort(n.nextPort, fromParent, toParent)
	n.parentPort = n.nextPort
	n.nextPort++
}

// installRoutes gives one switch a route for every id it cannot already
// reach downward: anything outside its subtree goes to the parent.
func installRoutes(n *treeNode, all []san.NodeID) {
	if n.parent == nil {
		return
	}
	have := make(map[san.NodeID]bool, len(n.subtree))
	for _, id := range n.subtree {
		have[id] = true
	}
	for _, id := range all {
		if !have[id] && id != n.sw.ID() && n.sw.Route(id) < 0 {
			n.sw.SetRoute(id, n.parentPort)
		}
	}
}

// NewDualIOCluster builds a two-switch system: hosts on switch 0, storage
// on switch 1, joined by a trunk. It is the testbed for the paper's
// placement argument — a filter on the storage-side switch saves trunk
// bandwidth, one on the host-side switch does not.
func NewDualIOCluster(eng *sim.Engine, cfg IOClusterConfig) *Cluster {
	hostPorts := cfg.Hosts + 1
	storePorts := cfg.Stores + 1
	hostCfg := cfg.Switch
	hostCfg.Base.Ports = hostPorts
	storeCfg := cfg.Switch
	storeCfg.Base.Ports = storePorts

	swH := aswitch.New(eng, SwitchIDBase, "swH", hostCfg)
	swS := aswitch.New(eng, SwitchIDBase+1, "swS", storeCfg)
	c := &Cluster{Eng: eng, Switches: []*aswitch.ActiveSwitch{swH, swS}}

	for i := 0; i < cfg.Hosts; i++ {
		h := attachHost(eng, swH, i, HostIDBase+san.NodeID(i), fmt.Sprintf("h%d", i), cfg.Host)
		c.Hosts = append(c.Hosts, h)
	}
	for j := 0; j < cfg.Stores; j++ {
		s := attachStore(eng, swS, j, StoreIDBase+san.NodeID(j), fmt.Sprintf("d%d", j), cfg.IO)
		c.Stores = append(c.Stores, s)
	}

	// Trunk on each switch's last port.
	link := cfg.Switch.Base.Link
	hs := san.NewLink(eng, "trunk.hs", link)
	sh := san.NewLink(eng, "trunk.sh", link)
	swH.AttachPort(hostPorts-1, sh, hs)
	swS.AttachPort(storePorts-1, hs, sh)

	// Routes: everything not local goes over the trunk.
	for j := 0; j < cfg.Stores; j++ {
		swH.SetRoute(StoreIDBase+san.NodeID(j), hostPorts-1)
	}
	swH.SetRoute(swS.ID(), hostPorts-1)
	for i := 0; i < cfg.Hosts; i++ {
		swS.SetRoute(HostIDBase+san.NodeID(i), storePorts-1)
	}
	swS.SetRoute(swH.ID(), storePorts-1)
	return c
}
