// Package cluster assembles simulated systems: hosts, storage nodes and
// active switches wired into the paper's topologies — a single-switch
// I/O cluster for the streaming benchmarks, the log_{N/2}(p) switch
// tree used for collective reduction at scale, and k-ary fat trees for
// scale-out experiments. All builders share one declarative layer
// (Topology + Build, see TOPOLOGIES.md) that owns link wiring and
// deterministic shortest-path routing.
package cluster

import (
	"fmt"

	"activesan/internal/aswitch"
	"activesan/internal/host"
	"activesan/internal/iodev"
	"activesan/internal/san"
	"activesan/internal/sim"
)

// Node-ID ranges keep identities readable in traces. The store and switch
// bases sit far above any realistic endpoint count: hosts number from 1, so
// a base of 200 (the historical value) made host 199's id collide with
// store 0 — and host 999 with switch 0 — silently corrupting routing tables
// on 1000+-host fabrics. Build rejects specs that overflow a range.
const (
	HostIDBase   san.NodeID = 1
	StoreIDBase  san.NodeID = 1 << 19
	SwitchIDBase san.NodeID = 1 << 20
)

// Cluster is a wired system ready to Start.
type Cluster struct {
	// Eng is the cluster's engine — rank 0's when partitioned. Run the
	// simulation through Cluster.Run (or Group.Run) rather than Eng.Run when
	// Group is set.
	Eng      *sim.Engine
	Switches []*aswitch.ActiveSwitch
	Hosts    []*host.Host
	Stores   []*iodev.StorageNode

	// Group and Part are set by BuildPartitioned: the partition group the
	// cluster is spread over, and each switch's partition rank by spec
	// index. Nil/nil for single-engine clusters.
	Group *sim.Group
	Part  []int

	// Tree describes the switch hierarchy for tree topologies (nil for
	// single-switch clusters). For fat trees it is the overlay aggregation
	// tree, not the physical graph.
	Tree *TreeInfo

	// Topo describes the built switch graph (spec, adjacency, endpoint
	// attachment) for clusters built through the Topology layer.
	Topo *TopoInfo

	// ExtraMetrics, when set, contributes additional top-level values to the
	// metrics snapshot (the fault injector registers its counters here; the
	// indirection keeps lower layers from importing internal/fault). Its
	// presence also gates all fault/retry metric emission.
	ExtraMetrics func(add func(name string, v float64))
	// FaultCounts reports cumulative (injected, recovered) fault counts for
	// timeline sampling; nil when no fault plan is armed.
	FaultCounts func() (injected, recovered int64)

	started bool
}

// TreeInfo captures the reduction tree's shape: each switch's parent (the
// root and non-participating switches map to san.NoNode), each host's leaf
// switch, and how many direct children (hosts or switches) feed each switch.
type TreeInfo struct {
	Parent   map[san.NodeID]san.NodeID
	HostLeaf map[san.NodeID]san.NodeID
	Children map[san.NodeID]int
	Root     san.NodeID
}

// Host returns host i.
func (c *Cluster) Host(i int) *host.Host { return c.Hosts[i] }

// Store returns storage node i.
func (c *Cluster) Store(i int) *iodev.StorageNode { return c.Stores[i] }

// Switch returns switch i (0 is the root in tree topologies).
func (c *Cluster) Switch(i int) *aswitch.ActiveSwitch { return c.Switches[i] }

// Start launches every component. Handlers must be registered before this.
func (c *Cluster) Start() {
	if c.started {
		panic("cluster: double Start")
	}
	c.started = true
	for _, s := range c.Switches {
		s.Start()
	}
	for _, h := range c.Hosts {
		h.Start()
	}
	for _, s := range c.Stores {
		s.Start()
	}
}

// Run executes the simulation to completion — the partition group's barrier
// loop when the cluster is partitioned, the single engine otherwise — and
// returns the final virtual time.
func (c *Cluster) Run() sim.Time {
	if c.Group != nil {
		return c.Group.Run()
	}
	return c.Eng.Run()
}

// Shutdown unwinds all simulation processes; call after the final Run.
func (c *Cluster) Shutdown() {
	if c.Group != nil {
		c.Group.Shutdown()
		return
	}
	c.Eng.Shutdown()
}

// EngineFor returns the engine simulating the component with the given node
// id — the cluster's only engine when not partitioned. Processes interacting
// with a component (a host's collective loop, say) must be spawned on its
// engine.
func (c *Cluster) EngineFor(id san.NodeID) *sim.Engine {
	if c.Group == nil || c.Topo == nil {
		return c.Eng
	}
	if i, ok := c.Topo.Index[id]; ok {
		return c.Group.Engine(c.Part[i])
	}
	if i, ok := c.Topo.Attach[id]; ok {
		return c.Group.Engine(c.Part[i])
	}
	return c.Eng
}

// attachHost wires a new host to switch port.
func attachHost(eng *sim.Engine, sw *aswitch.ActiveSwitch, port int, id san.NodeID, name string, cfg host.Config) *host.Host {
	link := sw.Config().Link
	up := san.NewLink(eng, fmt.Sprintf("%s.up", name), link)
	down := san.NewLink(eng, fmt.Sprintf("%s.down", name), link)
	sw.AttachPort(port, up, down)
	sw.SetRoute(id, port)
	return host.New(eng, id, name, down, up, cfg)
}

// attachStore wires a new storage node to switch port.
func attachStore(eng *sim.Engine, sw *aswitch.ActiveSwitch, port int, id san.NodeID, name string, cfg iodev.Config) *iodev.StorageNode {
	link := sw.Config().Link
	up := san.NewLink(eng, fmt.Sprintf("%s.up", name), link)
	down := san.NewLink(eng, fmt.Sprintf("%s.down", name), link)
	sw.AttachPort(port, up, down)
	sw.SetRoute(id, port)
	return iodev.New(eng, id, name, down, up, cfg)
}

// IOClusterConfig parameterizes NewIOCluster.
type IOClusterConfig struct {
	Hosts  int
	Stores int
	Switch aswitch.Config // Ports is overridden to fit
	Host   host.Config
	IO     iodev.Config
}

// DefaultIOClusterConfig returns a one-host, one-store cluster
// configuration with the paper's parameters.
func DefaultIOClusterConfig() IOClusterConfig {
	return IOClusterConfig{
		Hosts:  1,
		Stores: 1,
		Switch: aswitch.DefaultConfig(8),
		Host:   host.DefaultConfig(),
		IO:     iodev.DefaultConfig(),
	}
}

// NewIOCluster builds the paper's Figure 1 system: hosts and storage nodes
// around one (active) switch. Host i has node id HostIDBase+i; storage node
// j has StoreIDBase+j; the switch is SwitchIDBase.
func NewIOCluster(eng *sim.Engine, cfg IOClusterConfig) *Cluster {
	ports := cfg.Hosts + cfg.Stores
	if cfg.Switch.Base.Ports > ports {
		ports = cfg.Switch.Base.Ports
	}
	t := Topology{
		Switches: []SwitchSpec{{Name: "sw0", Ports: ports}},
		Switch:   cfg.Switch,
		Host:     cfg.Host,
		IO:       cfg.IO,
	}
	for i := 0; i < cfg.Hosts; i++ {
		t.Hosts = append(t.Hosts, NodeSpec{})
	}
	for j := 0; j < cfg.Stores; j++ {
		t.Stores = append(t.Stores, NodeSpec{})
	}
	return Build(eng, t)
}

// TreeConfig parameterizes NewTreeCluster.
type TreeConfig struct {
	// Hosts is the number of compute nodes p.
	Hosts int
	// HostsPerLeaf is how many hosts hang off each leaf switch (the paper
	// uses 8 of each leaf's 16 ports).
	HostsPerLeaf int
	// Arity is the fan-in of interior switches (paper: N/2 = 8).
	Arity  int
	Switch aswitch.Config
	Host   host.Config
}

// DefaultTreeConfig returns the collective-reduction topology of the
// paper's Section 5: 16-port switches with 8 hosts per leaf.
func DefaultTreeConfig(p int) TreeConfig {
	return TreeConfig{
		Hosts:        p,
		HostsPerLeaf: 8,
		Arity:        8,
		Switch:       aswitch.DefaultConfig(16),
		Host:         host.DefaultConfig(),
	}
}

// NewTreeCluster builds a switch tree: ceil(p/HostsPerLeaf) leaf switches,
// reduced Arity-to-1 per level up to a single root. Switch 0 in the result
// is the root; leaves follow. Every switch routes every host and switch id.
// A single-leaf system degenerates to one switch, matching the paper's
// small-system case.
func NewTreeCluster(eng *sim.Engine, cfg TreeConfig) *Cluster {
	if cfg.Hosts <= 0 || cfg.HostsPerLeaf <= 0 || cfg.Arity < 2 {
		panic("cluster: invalid tree configuration")
	}
	nLeaves := (cfg.Hosts + cfg.HostsPerLeaf - 1) / cfg.HostsPerLeaf
	t := Topology{Switch: cfg.Switch, Host: cfg.Host}
	var level []int
	for l := 0; l < nLeaves; l++ {
		t.Switches = append(t.Switches, SwitchSpec{
			Name: fmt.Sprintf("leaf%d", l), Ports: cfg.Switch.Base.Ports, Role: "leaf",
		})
		level = append(level, l)
	}
	for i := 0; i < cfg.Hosts; i++ {
		t.Hosts = append(t.Hosts, NodeSpec{Switch: i / cfg.HostsPerLeaf})
	}

	// Reduce levels until a single root remains; parents are named by their
	// global creation index, matching the historical builder.
	parent := make(map[int]int)
	for len(level) > 1 {
		var next []int
		for i := 0; i < len(level); i += cfg.Arity {
			end := min(i+cfg.Arity, len(level))
			p := len(t.Switches)
			t.Switches = append(t.Switches, SwitchSpec{
				Name: fmt.Sprintf("sw%d", p), Ports: cfg.Switch.Base.Ports, Role: "interior",
			})
			for _, child := range level[i:end] {
				t.Links = append(t.Links, LinkSpec{A: p, B: child})
				parent[child] = p
			}
			next = append(next, p)
		}
		level = next
	}
	rootIdx := level[0]

	c := Build(eng, t)

	// Overlay the reduction-tree shape on node ids.
	tree := &TreeInfo{
		Parent:   make(map[san.NodeID]san.NodeID),
		HostLeaf: make(map[san.NodeID]san.NodeID),
		Children: make(map[san.NodeID]int),
	}
	id := func(idx int) san.NodeID { return c.Topo.Sw[idx].ID() }
	for idx := range t.Switches {
		if idx == rootIdx {
			continue
		}
		if p, ok := parent[idx]; ok {
			tree.Parent[id(idx)] = id(p)
		} else {
			tree.Parent[id(idx)] = san.NoNode
		}
	}
	for _, l := range t.Links {
		tree.Children[id(l.A)]++
	}
	for i, h := range c.Hosts {
		leaf := id(t.Hosts[i].Switch)
		tree.HostLeaf[h.ID()] = leaf
		tree.Children[leaf]++
	}
	tree.Root = id(rootIdx)
	tree.Parent[tree.Root] = san.NoNode
	c.Tree = tree

	// Order switches root first, then the rest in creation order, so
	// Switch(0) is the root and Start order matches the historical builder.
	ordered := []*aswitch.ActiveSwitch{c.Topo.Sw[rootIdx]}
	for idx, sw := range c.Topo.Sw {
		if idx != rootIdx {
			ordered = append(ordered, sw)
		}
	}
	c.Switches = ordered
	return c
}

// NewDualIOCluster builds a two-switch system: hosts on switch 0, storage
// on switch 1, joined by a trunk. It is the testbed for the paper's
// placement argument — a filter on the storage-side switch saves trunk
// bandwidth, one on the host-side switch does not.
func NewDualIOCluster(eng *sim.Engine, cfg IOClusterConfig) *Cluster {
	t := Topology{
		Switches: []SwitchSpec{
			{Name: "swH", Ports: cfg.Hosts + 1},
			{Name: "swS", Ports: cfg.Stores + 1},
		},
		Links:  []LinkSpec{{A: 0, B: 1, ABName: "trunk.hs", BAName: "trunk.sh"}},
		Switch: cfg.Switch,
		Host:   cfg.Host,
		IO:     cfg.IO,
	}
	for i := 0; i < cfg.Hosts; i++ {
		t.Hosts = append(t.Hosts, NodeSpec{Switch: 0})
	}
	for j := 0; j < cfg.Stores; j++ {
		t.Stores = append(t.Stores, NodeSpec{Switch: 1})
	}
	return Build(eng, t)
}
