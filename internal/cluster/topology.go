package cluster

import (
	"fmt"
	"sort"
	"sync"

	"activesan/internal/aswitch"
	"activesan/internal/host"
	"activesan/internal/iodev"
	"activesan/internal/san"
	"activesan/internal/sim"
)

// Topology is a declarative multi-switch cluster spec: a switch graph, the
// trunk links joining it, and the endpoints hanging off each switch. Build
// turns a spec into a wired Cluster with deterministic shortest-path routing
// tables — the general layer underneath NewIOCluster, NewDualIOCluster,
// NewTreeCluster and NewFatTreeCluster (see TOPOLOGIES.md).
//
// Everything about a spec is order-significant and value-deterministic:
// switch IDs follow spec order from SwitchIDBase, ports are assigned in
// attachment order (hosts, then stores, then links, each in spec order), and
// route tables are a pure function of the spec. Two Builds of the same spec
// produce identical clusters.
type Topology struct {
	// Switches lists the switch graph's vertices. Spec index is the switch's
	// identity everywhere else in the spec.
	Switches []SwitchSpec
	// Links lists switch-to-switch trunks. Build wires both directions.
	Links []LinkSpec
	// Hosts and Stores place endpoints. Host i gets node id HostIDBase+i and
	// name "h<i>"; store j gets StoreIDBase+j and "d<j>".
	Hosts  []NodeSpec
	Stores []NodeSpec

	// Switch is the template configuration every switch is built from;
	// Base.Ports is overridden per switch (SwitchSpec.Ports).
	Switch aswitch.Config
	// Host and IO configure the endpoints.
	Host host.Config
	IO   iodev.Config
}

// SwitchSpec is one switch in a Topology.
type SwitchSpec struct {
	// Name is the switch's debug name (also used in default link names).
	Name string
	// Ports fixes the port count; 0 sizes the switch to its attachments.
	Ports int
	// Role is an optional placement tag ("edge", "agg", "core", ...);
	// handler placement selects switches by role via Cluster.SwitchesByRole.
	Role string
}

// LinkSpec is one bidirectional trunk between switches A and B (spec
// indexes). Build creates two links: A→B named ABName and B→A named BAName;
// empty names default to "<nameA>-><nameB>" and "<nameB>-><nameA>".
type LinkSpec struct {
	A, B   int
	ABName string
	BAName string
}

// NodeSpec places one endpoint on a switch (spec index).
type NodeSpec struct {
	Switch int
}

// Validate checks a spec's internal references and connectivity. Build
// panics on the first violation; tests can call Validate directly.
func (t *Topology) Validate() error {
	n := len(t.Switches)
	if n == 0 {
		return fmt.Errorf("topology: no switches")
	}
	for i, l := range t.Links {
		if l.A < 0 || l.A >= n || l.B < 0 || l.B >= n {
			return fmt.Errorf("topology: links[%d] references switch %d/%d of %d", i, l.A, l.B, n)
		}
		if l.A == l.B {
			return fmt.Errorf("topology: links[%d] is a self-loop on switch %d", i, l.A)
		}
	}
	for i, h := range t.Hosts {
		if h.Switch < 0 || h.Switch >= n {
			return fmt.Errorf("topology: hosts[%d] references switch %d of %d", i, h.Switch, n)
		}
	}
	for i, s := range t.Stores {
		if s.Switch < 0 || s.Switch >= n {
			return fmt.Errorf("topology: stores[%d] references switch %d of %d", i, s.Switch, n)
		}
	}
	// The switch graph must be connected or routing cannot cover it.
	adj := make([][]int, n)
	for _, l := range t.Links {
		adj[l.A] = append(adj[l.A], l.B)
		adj[l.B] = append(adj[l.B], l.A)
	}
	seen := make([]bool, n)
	queue := []int{0}
	seen[0] = true
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range adj[v] {
			if !seen[w] {
				seen[w] = true
				queue = append(queue, w)
			}
		}
	}
	for i, ok := range seen {
		if !ok {
			return fmt.Errorf("topology: switch %d (%s) unreachable from switch 0", i, t.Switches[i].Name)
		}
	}
	return nil
}

// TopoInfo is the built form of a Topology, kept on the Cluster for route
// verification, fault arming and handler placement.
type TopoInfo struct {
	// Spec is the topology the cluster was built from.
	Spec Topology
	// Sw maps spec index to the built switch (independent of the order of
	// Cluster.Switches, which tree builders rearrange root-first).
	Sw []*aswitch.ActiveSwitch
	// Index maps a switch's node id back to its spec index.
	Index map[san.NodeID]int
	// PortPeer gives, per spec index, the peer switch behind each trunk
	// port. Endpoint ports are absent.
	PortPeer []map[int]int
	// Attach maps every endpoint id to the spec index of its switch.
	Attach map[san.NodeID]int
}

// Build instantiates a Topology on an engine: switches, endpoint and trunk
// links, and shortest-path routing tables. Routing is deterministic BFS with
// ECMP-style tie-breaks: among equal-cost next hops (sorted by port), the
// primary port is chosen by hashing the destination id with the switch's
// spec index — spreading flows across parallel uplinks — and the next
// candidate becomes the backup route (used when the primary's link is down).
// Next hops strictly decrease the distance to the destination, so routes are
// loop-free by construction whatever the tie-break.
func Build(eng *sim.Engine, t Topology) *Cluster {
	return build(t, eng, nil, nil)
}

// BuildPartitioned instantiates a Topology across a partition group: switch
// i (and every endpoint attached to it) lives on g.Engine(part[i]), and each
// trunk whose ends land in different partitions becomes a cut link — its
// sender half stays on the sending partition while deliveries and credits
// cross through a sim.Channel with the wire propagation as delivery
// lookahead and the receiving switch's routing latency as credit lookahead.
// Everything else — ids, names, port order, routing tables — is identical to
// Build, and so are the simulation results at any partition count (see
// PERFORMANCE.md for the determinism contract).
func BuildPartitioned(g *sim.Group, t Topology, part []int) *Cluster {
	if len(part) != len(t.Switches) {
		panic(fmt.Sprintf("cluster: partition map covers %d of %d switches", len(part), len(t.Switches)))
	}
	for i, p := range part {
		if p < 0 || p >= g.Len() {
			panic(fmt.Sprintf("cluster: switch %d assigned to partition %d of %d", i, p, g.Len()))
		}
	}
	return build(t, g.Engine(0), g, part)
}

// build is the shared body of Build and BuildPartitioned; eng is the default
// engine (rank 0's when partitioned).
func build(t Topology, eng *sim.Engine, g *sim.Group, part []int) *Cluster {
	if err := t.Validate(); err != nil {
		panic("cluster: " + err.Error())
	}
	n := len(t.Switches)
	// The id ranges (see HostIDBase) must not overlap or routing tables
	// silently collide.
	if san.NodeID(len(t.Hosts)) > StoreIDBase-HostIDBase {
		panic(fmt.Sprintf("cluster: %d hosts overflow the host id range", len(t.Hosts)))
	}
	if san.NodeID(len(t.Stores)) > SwitchIDBase-StoreIDBase {
		panic(fmt.Sprintf("cluster: %d stores overflow the store id range", len(t.Stores)))
	}
	engOf := func(specIdx int) *sim.Engine {
		if g == nil {
			return eng
		}
		return g.Engine(part[specIdx])
	}

	// Attachment counts size auto-ported switches.
	need := make([]int, n)
	for _, h := range t.Hosts {
		need[h.Switch]++
	}
	for _, s := range t.Stores {
		need[s.Switch]++
	}
	for _, l := range t.Links {
		need[l.A]++
		need[l.B]++
	}

	info := &TopoInfo{
		Spec:     t,
		Sw:       make([]*aswitch.ActiveSwitch, n),
		Index:    make(map[san.NodeID]int, n),
		PortPeer: make([]map[int]int, n),
		Attach:   make(map[san.NodeID]int),
	}
	c := &Cluster{Eng: eng, Group: g, Part: part, Topo: info}

	for i, spec := range t.Switches {
		ports := spec.Ports
		if ports == 0 {
			ports = need[i]
		} else if ports < need[i] {
			panic(fmt.Sprintf("cluster: switch %d (%s) has %d ports but %d attachments",
				i, spec.Name, ports, need[i]))
		}
		cfg := t.Switch
		cfg.Base.Ports = ports
		sw := aswitch.New(engOf(i), SwitchIDBase+san.NodeID(i), spec.Name, cfg)
		info.Sw[i] = sw
		info.Index[sw.ID()] = i
		info.PortPeer[i] = make(map[int]int)
		c.Switches = append(c.Switches, sw)
	}

	// Endpoints first (hosts, then stores), so single-switch layouts keep
	// their historical port order; trunks take the ports after them.
	// Endpoints always share their switch's partition, so their links never
	// cross a cut.
	nextPort := make([]int, n)
	for i, h := range t.Hosts {
		id := HostIDBase + san.NodeID(i)
		sw := info.Sw[h.Switch]
		c.Hosts = append(c.Hosts, attachHost(engOf(h.Switch), sw, nextPort[h.Switch], id, fmt.Sprintf("h%d", i), t.Host))
		nextPort[h.Switch]++
		info.Attach[id] = h.Switch
	}
	for j, s := range t.Stores {
		id := StoreIDBase + san.NodeID(j)
		sw := info.Sw[s.Switch]
		c.Stores = append(c.Stores, attachStore(engOf(s.Switch), sw, nextPort[s.Switch], id, fmt.Sprintf("d%d", j), t.IO))
		nextPort[s.Switch]++
		info.Attach[id] = s.Switch
	}
	for _, l := range t.Links {
		abName, baName := l.ABName, l.BAName
		if abName == "" {
			abName = fmt.Sprintf("%s->%s", t.Switches[l.A].Name, t.Switches[l.B].Name)
		}
		if baName == "" {
			baName = fmt.Sprintf("%s->%s", t.Switches[l.B].Name, t.Switches[l.A].Name)
		}
		linkCfg := t.Switch.Base.Link
		// Each direction's link lives on its sender's engine; a direction
		// whose ends straddle partitions crosses through a cut channel.
		ab := san.NewLink(engOf(l.A), abName, linkCfg)
		ba := san.NewLink(engOf(l.B), baName, linkCfg)
		if g != nil && part[l.A] != part[l.B] {
			creditLA := t.Switch.Base.RoutingLatency
			ab.SetCross(g.Connect(part[l.A], part[l.B], linkCfg.Propagation, creditLA))
			ba.SetCross(g.Connect(part[l.B], part[l.A], linkCfg.Propagation, creditLA))
		}
		info.Sw[l.A].AttachPort(nextPort[l.A], ba, ab)
		info.Sw[l.B].AttachPort(nextPort[l.B], ab, ba)
		info.PortPeer[l.A][nextPort[l.A]] = l.B
		info.PortPeer[l.B][nextPort[l.B]] = l.A
		nextPort[l.A]++
		nextPort[l.B]++
	}

	installShortestPaths(info)
	return c
}

// installShortestPaths fills every switch's routing table from BFS over the
// trunk graph: one BFS per destination switch covers that switch's own id
// and every endpoint attached to it.
func installShortestPaths(info *TopoInfo) {
	n := len(info.Sw)
	// Sorted trunk-port lists make candidate order a pure function of the
	// spec.
	ports := make([][]int, n)
	for i := range ports {
		for p := range info.PortPeer[i] {
			ports[i] = append(ports[i], p)
		}
		sort.Ints(ports[i])
	}

	// destsAt[t]: node ids routed toward switch t.
	destsAt := make([][]san.NodeID, n)
	for i, sw := range info.Sw {
		destsAt[i] = append(destsAt[i], sw.ID())
	}
	// Attach iteration must be deterministic: walk ids in sorted order.
	epIDs := make([]san.NodeID, 0, len(info.Attach))
	for id := range info.Attach {
		epIDs = append(epIDs, id)
	}
	sort.Slice(epIDs, func(a, b int) bool { return epIDs[a] < epIDs[b] })
	for _, id := range epIDs {
		at := info.Attach[id]
		destsAt[at] = append(destsAt[at], id)
	}

	dist := make([]int, n)
	for tIdx := 0; tIdx < n; tIdx++ {
		bfsFrom(info, tIdx, dist)
		for s := 0; s < n; s++ {
			if s == tIdx || dist[s] < 0 {
				continue
			}
			var cand []int
			for _, p := range ports[s] {
				if peer := info.PortPeer[s][p]; dist[peer] == dist[s]-1 {
					cand = append(cand, p)
				}
			}
			if len(cand) == 0 {
				continue // unreachable (Validate rejects this)
			}
			sw := info.Sw[s]
			for _, id := range destsAt[tIdx] {
				pick := (int(id) + s) % len(cand)
				sw.SetRoute(id, cand[pick])
				if len(cand) > 1 {
					sw.SetBackupRoute(id, cand[(pick+1)%len(cand)])
				}
			}
		}
	}
}

// bfsFrom fills dist with hop counts from switch t over the trunk graph
// (-1 = unreachable).
func bfsFrom(info *TopoInfo, t int, dist []int) {
	for i := range dist {
		dist[i] = -1
	}
	dist[t] = 0
	queue := []int{t}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, peer := range info.PortPeer[v] {
			if dist[peer] < 0 {
				dist[peer] = dist[v] + 1
				queue = append(queue, peer)
			}
		}
	}
}

// SwitchesByRole returns the switches tagged with role in spec order — the
// handler-placement selector (register a stage's handler on "edge" switches,
// another on "agg"). Nil for clusters built without a Topology or when no
// switch carries the role.
func (c *Cluster) SwitchesByRole(role string) []*aswitch.ActiveSwitch {
	if c.Topo == nil {
		return nil
	}
	var out []*aswitch.ActiveSwitch
	for i, spec := range c.Topo.Spec.Switches {
		if spec.Role == role {
			out = append(out, c.Topo.Sw[i])
		}
	}
	return out
}

// The process-wide default topology kind, installed by the -topology flag
// (mirroring fault.SetDefault): collective experiments consult it when
// building their clusters. Kind "" or "tree" selects the paper's reduction
// tree; "fattree" selects a k-ary fat tree (k = 0 picks the smallest fit).
var (
	defTopoMu   sync.Mutex
	defTopoKind string
	defTopoK    int
)

// SetDefaultTopology installs the process-wide default collective topology.
func SetDefaultTopology(kind string, k int) {
	defTopoMu.Lock()
	defer defTopoMu.Unlock()
	defTopoKind, defTopoK = kind, k
}

// DefaultTopology returns the process-wide default collective topology.
func DefaultTopology() (kind string, k int) {
	defTopoMu.Lock()
	defer defTopoMu.Unlock()
	return defTopoKind, defTopoK
}

// BuildCollective builds the cluster a collective reduction runs on,
// honoring the -topology default: the paper's switch tree unless a fat tree
// was selected. The returned cluster always has a populated Tree.
func BuildCollective(eng *sim.Engine, cfg TreeConfig) *Cluster {
	kind, k := DefaultTopology()
	if kind == "fattree" {
		fcfg := DefaultFatTreeConfig(cfg.Hosts)
		if k > 0 {
			fcfg.K = k
		}
		fcfg.Switch = cfg.Switch
		fcfg.Host = cfg.Host
		return NewFatTreeCluster(eng, fcfg)
	}
	return NewTreeCluster(eng, cfg)
}
