package cluster

// Metamorphic fuzzing of the shortest-path installer: random connected
// switch graphs must route every endpoint without loops, deterministically
// across rebuilds, and backup routes must be genuinely equal-cost.

import (
	"testing"

	"activesan/internal/san"
	"activesan/internal/sim"
)

// fuzzRand is a splitmix64 PRNG: tiny, seedable, and independent of
// math/rand so the suite is stable across Go releases.
type fuzzRand struct{ s uint64 }

func (r *fuzzRand) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *fuzzRand) intn(n int) int { return int(r.next() % uint64(n)) }

// randomSpec builds a random connected topology: a random spanning tree over
// 3..10 switches plus up to 3 extra edges, 0..2 hosts per switch, one store.
func randomSpec(r *fuzzRand) Topology {
	n := 3 + r.intn(8)
	var t Topology
	for i := 0; i < n; i++ {
		t.Switches = append(t.Switches, SwitchSpec{Name: fuzzName(i)})
	}
	// Random spanning tree: attach each new switch to an earlier one.
	have := map[[2]int]bool{}
	for i := 1; i < n; i++ {
		p := r.intn(i)
		t.Links = append(t.Links, LinkSpec{A: p, B: i})
		have[[2]int{p, i}] = true
	}
	for e := r.intn(4); e > 0; e-- {
		a, b := r.intn(n), r.intn(n)
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		if have[[2]int{a, b}] {
			continue
		}
		have[[2]int{a, b}] = true
		t.Links = append(t.Links, LinkSpec{A: a, B: b})
	}
	for i := 0; i < n; i++ {
		for h := r.intn(3); h > 0; h-- {
			t.Hosts = append(t.Hosts, NodeSpec{Switch: i})
		}
	}
	if len(t.Hosts) == 0 {
		t.Hosts = append(t.Hosts, NodeSpec{Switch: 0})
	}
	t.Stores = append(t.Stores, NodeSpec{Switch: r.intn(n)})
	cfg := DefaultIOClusterConfig()
	t.Switch, t.Host, t.IO = cfg.Switch, cfg.Host, cfg.IO
	return t
}

func fuzzName(i int) string {
	return string(rune('a'+i/26)) + string(rune('a'+i%26)) + "sw"
}

// endpoints lists every routable destination id in a built cluster.
func endpoints(c *Cluster) []san.NodeID {
	var ids []san.NodeID
	for _, h := range c.Hosts {
		ids = append(ids, h.ID())
	}
	for _, st := range c.Stores {
		ids = append(ids, st.ID())
	}
	for _, sw := range c.Switches {
		ids = append(ids, sw.ID())
	}
	return ids
}

// homeSwitch finds the switch index owning a destination: the attach point
// for hosts/stores, the switch itself for switch ids.
func homeSwitch(c *Cluster, dst san.NodeID) int {
	if at, ok := c.Topo.Attach[dst]; ok {
		return at
	}
	return c.Topo.Index[dst]
}

func fuzzRounds(t *testing.T) int {
	if testing.Short() {
		return 8
	}
	return 40
}

// TestRouteFuzzLoopFree walks the installed route tables for every
// (switch, destination) pair on random graphs: following primary routes
// must reach the destination's switch within a TTL bound (no loops, no
// dead ends).
func TestRouteFuzzLoopFree(t *testing.T) {
	r := &fuzzRand{s: 0x5eed0001}
	for round := 0; round < fuzzRounds(t); round++ {
		spec := randomSpec(r)
		c := Build(sim.NewEngine(), spec)
		ttl := len(c.Switches) + 2
		for _, dst := range endpoints(c) {
			home := homeSwitch(c, dst)
			for start := range c.Topo.Sw {
				at := start
				hops := 0
				for at != home {
					sw := c.Topo.Sw[at]
					var port int
					if id := sw.ID(); id == dst {
						break // destination is this switch itself
					} else {
						port = sw.Route(dst)
					}
					if port < 0 {
						t.Fatalf("round %d: %s has no route to %d", round, sw.Name(), dst)
					}
					next, ok := c.Topo.PortPeer[at][port]
					if !ok {
						t.Fatalf("round %d: %s routes %d out endpoint port %d", round, sw.Name(), dst, port)
					}
					at = next
					if hops++; hops > ttl {
						t.Fatalf("round %d: routing loop toward %d starting at %s", round, dst, c.Topo.Sw[start].Name())
					}
				}
			}
		}
		c.Shutdown()
	}
}

// TestRouteFuzzDeterminism builds the same random spec twice and requires
// identical primary and backup route tables — the spec fully determines
// routing, with no map-iteration or timing dependence.
func TestRouteFuzzDeterminism(t *testing.T) {
	r := &fuzzRand{s: 0x5eed0002}
	for round := 0; round < fuzzRounds(t); round++ {
		spec := randomSpec(r)
		c1 := Build(sim.NewEngine(), spec)
		c2 := Build(sim.NewEngine(), spec)
		ids := endpoints(c1)
		for i := range c1.Topo.Sw {
			for _, dst := range ids {
				p1, p2 := c1.Topo.Sw[i].Route(dst), c2.Topo.Sw[i].Route(dst)
				b1, b2 := c1.Topo.Sw[i].BackupRoute(dst), c2.Topo.Sw[i].BackupRoute(dst)
				if p1 != p2 || b1 != b2 {
					t.Fatalf("round %d: switch %d dst %d: build1 (%d,%d) != build2 (%d,%d)",
						round, i, dst, p1, b1, p2, b2)
				}
			}
		}
		c1.Shutdown()
		c2.Shutdown()
	}
}

// walkTo follows primary routes from switch index `start` until the packet
// would be delivered to dst, failing on a missing route or a loop. It is
// the deliverability half of the multicast fuzz: every down-tree edge the
// collective library multicasts over must be realizable hop-by-hop.
func walkTo(t *testing.T, c *Cluster, round, start int, dst san.NodeID) {
	t.Helper()
	home := homeSwitch(c, dst)
	ttl := len(c.Switches) + 2
	at, hops := start, 0
	for at != home {
		sw := c.Topo.Sw[at]
		if sw.ID() == dst {
			return
		}
		port := sw.Route(dst)
		if port < 0 {
			t.Fatalf("round %d: %s has no route to %d", round, sw.Name(), dst)
		}
		next, ok := c.Topo.PortPeer[at][port]
		if !ok {
			t.Fatalf("round %d: %s routes %d out endpoint port %d", round, sw.Name(), dst, port)
		}
		at = next
		if hops++; hops > ttl {
			t.Fatalf("round %d: routing loop toward %d starting at %s", round, dst, c.Topo.Sw[start].Name())
		}
	}
}

// TestRouteFuzzMulticastDownTree fuzzes the path the collective library's
// down-tree multicast rides (see internal/collective): on random reduction
// trees and fat trees, walking the Tree overlay from the root — child
// switches by inverting Parent, member hosts from HostLeaf — must reach
// every switch and every participant host exactly once, loop-free within a
// TTL bound, and every down edge must be deliverable by the installed
// route tables.
func TestRouteFuzzMulticastDownTree(t *testing.T) {
	r := &fuzzRand{s: 0x5eed0004}
	fatHosts := []int{4, 8, 16, 32, 64}
	for round := 0; round < fuzzRounds(t); round++ {
		var c *Cluster
		if round%2 == 0 {
			cfg := DefaultTreeConfig(2 + r.intn(23))
			cfg.HostsPerLeaf = 2 + r.intn(7)
			cfg.Arity = 2 + r.intn(7)
			c = NewTreeCluster(sim.NewEngine(), cfg)
		} else {
			c = NewPartitionedFatTreeCluster(DefaultFatTreeConfig(fatHosts[r.intn(len(fatHosts))]), 1)
		}
		tree := c.Tree
		if tree == nil {
			t.Fatalf("round %d: cluster has no tree overlay", round)
		}

		// Invert the overlay: per-switch child switches and member hosts —
		// exactly the fan-out deliverDown multicasts over.
		childSw := map[san.NodeID][]san.NodeID{}
		for sw, p := range tree.Parent {
			if p != san.NoNode {
				childSw[p] = append(childSw[p], sw)
			}
		}
		hostsAt := map[san.NodeID][]san.NodeID{}
		for h, leaf := range tree.HostLeaf {
			hostsAt[leaf] = append(hostsAt[leaf], h)
		}

		// TTL walk down from the root.
		swIdx := map[san.NodeID]int{}
		for i, sw := range c.Topo.Sw {
			swIdx[sw.ID()] = i
		}
		seenSw := map[san.NodeID]int{}
		seenHost := map[san.NodeID]int{}
		type visit struct {
			sw    san.NodeID
			depth int
		}
		queue := []visit{{tree.Root, 0}}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			if v.depth > len(c.Switches) {
				t.Fatalf("round %d: down-tree walk exceeded TTL %d at %d", round, len(c.Switches), v.sw)
			}
			seenSw[v.sw]++
			at, ok := swIdx[v.sw]
			if !ok {
				t.Fatalf("round %d: tree overlay names unknown switch %d", round, v.sw)
			}
			for _, h := range hostsAt[v.sw] {
				seenHost[h]++
				walkTo(t, c, round, at, h)
			}
			for _, cs := range childSw[v.sw] {
				walkTo(t, c, round, at, cs)
				queue = append(queue, visit{cs, v.depth + 1})
			}
		}

		// Exactly-once coverage: every participant host, every on-tree
		// switch. Switches with an explicit NoNode parent (fat-tree edges,
		// aggs and cores outside the aggregation overlay) are legitimately
		// unreachable from the root — unless they hold members.
		for _, h := range c.Hosts {
			if n := seenHost[h.ID()]; n != 1 {
				t.Fatalf("round %d: host %d reached %d times, want exactly once", round, h.ID(), n)
			}
		}
		for sw, p := range tree.Parent {
			onTree := p != san.NoNode || sw == tree.Root
			if n := seenSw[sw]; onTree && n != 1 {
				t.Fatalf("round %d: switch %d visited %d times, want exactly once", round, sw, n)
			} else if !onTree && n != 0 {
				t.Fatalf("round %d: off-tree switch %d visited %d times", round, sw, n)
			}
		}
		c.Shutdown()
	}
}

// TestRouteFuzzBackupEqualCost checks the metamorphic property behind the
// ECMP tie-break: a backup route, when present, leads to a next hop at the
// same BFS distance from the destination as the primary's next hop, and
// differs from the primary port.
func TestRouteFuzzBackupEqualCost(t *testing.T) {
	r := &fuzzRand{s: 0x5eed0003}
	for round := 0; round < fuzzRounds(t); round++ {
		spec := randomSpec(r)
		c := Build(sim.NewEngine(), spec)

		// Independent distances from an adjacency list built off the spec,
		// not off TopoInfo, so an installer bug can't hide.
		adj := make([][]int, len(spec.Switches))
		for _, l := range spec.Links {
			adj[l.A] = append(adj[l.A], l.B)
			adj[l.B] = append(adj[l.B], l.A)
		}
		distTo := func(target int) []int {
			d := make([]int, len(adj))
			for i := range d {
				d[i] = -1
			}
			d[target] = 0
			q := []int{target}
			for len(q) > 0 {
				u := q[0]
				q = q[1:]
				for _, v := range adj[u] {
					if d[v] < 0 {
						d[v] = d[u] + 1
						q = append(q, v)
					}
				}
			}
			return d
		}

		for _, dst := range endpoints(c) {
			home := homeSwitch(c, dst)
			d := distTo(home)
			for i, sw := range c.Topo.Sw {
				if i == home || sw.ID() == dst {
					continue
				}
				prim := sw.Route(dst)
				back := sw.BackupRoute(dst)
				pn, ok := c.Topo.PortPeer[i][prim]
				if !ok || d[pn] != d[i]-1 {
					t.Fatalf("round %d: switch %d primary to %d not on a shortest path", round, i, dst)
				}
				if back < 0 {
					continue
				}
				if back == prim {
					t.Fatalf("round %d: switch %d backup to %d equals primary", round, i, dst)
				}
				bn, ok := c.Topo.PortPeer[i][back]
				if !ok || d[bn] != d[i]-1 {
					t.Fatalf("round %d: switch %d backup to %d not equal-cost (peer dist %d, want %d)",
						round, i, dst, d[bn], d[i]-1)
				}
			}
		}
		c.Shutdown()
	}
}
