package fault

import (
	"fmt"
	"strings"
	"sync"

	"activesan/internal/aswitch"
	"activesan/internal/cluster"
	"activesan/internal/san"
	"activesan/internal/sim"
)

// Arm wires a validated plan into a cluster. Call after the topology is
// built and before cluster.Start. seed, when non-zero, overrides the plan's
// own seed (the CLI's -fault-seed). Arm panics on plan references that
// don't resolve against this cluster (unknown link substrings, switch or
// port indexes out of range) — a fault plan that silently does nothing is
// worse than a crash.
//
// Arming installs the injector on every switch-port link — even links no
// rule matches — because clean passes on any link are how the injector
// observes recoveries. It also installs the cluster's ExtraMetrics and
// FaultCounts hooks, whose presence switches on all fault/retry metric and
// timeline emission.
func Arm(c *cluster.Cluster, p *Plan, seed uint64) *Injector {
	if err := p.Validate(); err != nil {
		panic(fmt.Sprintf("fault: invalid plan: %v", err))
	}
	if seed == 0 {
		seed = p.Seed
	}
	in := newInjector(seed)

	links := clusterLinks(c)
	for _, l := range links {
		in.rules[l] = compileRule(p, l.Name())
		l.SetInjector(in)
	}

	for _, d := range c.Stores {
		for i := range p.Disks {
			r := &p.Disks[i]
			if r.Match != "" && !strings.Contains(d.Name(), r.Match) {
				continue
			}
			in.disks[d.Name()] = r
			d.SetDiskFaults(in, sim.Time(r.RetryNS)*sim.Nanosecond)
			break
		}
	}

	scheduleEvents(c, p, in, links)

	if p.needsRetx() {
		cfg := p.retxConfig()
		endpoints := map[san.NodeID]bool{}
		for _, h := range c.Hosts {
			endpoints[h.ID()] = true
		}
		for _, d := range c.Stores {
			endpoints[d.ID()] = true
		}
		in.protocol = endpoints
		trackable := func(id san.NodeID) bool { return endpoints[id] }
		for _, h := range c.Hosts {
			tx := h.NIC().EnableReliability(cfg)
			tx.SetResolve(in.resolveFlow)
			h.NIC().SetRelFilter(trackable)
		}
		for _, d := range c.Stores {
			tx := d.EnableReliability(cfg)
			tx.SetResolve(in.resolveFlow)
			d.SetRelFilter(trackable)
		}
	}

	c.ExtraMetrics = in.addMetrics
	c.FaultCounts = func() (injected, recovered int64) {
		cnt := in.Counts()
		return cnt.Injected, cnt.Recovered
	}
	return in
}

// clusterLinks collects every distinct link in the cluster. Switch ports
// cover them all (host and store uplinks are switch-port links), but a
// switch-to-switch trunk appears as two ports' views of the same *Link, so
// deduplicate by pointer.
func clusterLinks(c *cluster.Cluster) []*san.Link {
	seen := map[*san.Link]bool{}
	var links []*san.Link
	for _, sw := range c.Switches {
		for i := 0; i < sw.Config().Ports; i++ {
			port := sw.Port(i)
			for _, l := range []*san.Link{port.In, port.Out} {
				if l != nil && !seen[l] {
					seen[l] = true
					links = append(links, l)
				}
			}
		}
	}
	return links
}

// scheduleEvents places the plan's discrete events on the engines. On a
// partitioned cluster a link's state lives on the engine that constructed it
// and a switch's plane on its partition's engine, so each event is scheduled
// per target engine — for a link flap crossing a partition cut, one event
// per side, both at the same virtual instant. On a serial cluster every
// target shares c.Eng and the grouping degenerates to the single-event
// schedule it always was.
func scheduleEvents(c *cluster.Cluster, p *Plan, in *Injector, links []*san.Link) {
	for i, e := range p.Events {
		e := e
		at := sim.Time(e.AtNS) * sim.Nanosecond
		switch e.Kind {
		case LinkDown, LinkUp:
			var targets []*san.Link
			for _, l := range links {
				if strings.Contains(l.Name(), e.Link) {
					targets = append(targets, l)
				}
			}
			if len(targets) == 0 {
				panic(fmt.Sprintf("fault: events[%d]: no link matches %q", i, e.Link))
			}
			down := e.Kind == LinkDown
			byEng := map[*sim.Engine][]*san.Link{}
			var order []*sim.Engine // first-seen order keeps scheduling deterministic
			for _, l := range targets {
				eng := l.Engine()
				if _, ok := byEng[eng]; !ok {
					order = append(order, eng)
				}
				byEng[eng] = append(byEng[eng], l)
			}
			for _, eng := range order {
				group := byEng[eng]
				eng.Schedule(at, func() {
					for _, l := range group {
						l.SetDown(down)
						in.noteLinkEvent()
					}
				})
			}
		case PortDown, PortUp:
			sw := eventSwitch(c, i, e)
			if e.Port < 0 || e.Port >= sw.Config().Ports {
				panic(fmt.Sprintf("fault: events[%d]: switch %d has no port %d", i, e.Switch, e.Port))
			}
			port := sw.Port(e.Port)
			down := e.Kind == PortDown
			// A trunk port's In link is constructed on the neighbor's engine;
			// schedule each side where it lives.
			for _, l := range []*san.Link{port.In, port.Out} {
				if l == nil {
					continue
				}
				l := l
				l.Engine().Schedule(at, func() {
					l.SetDown(down)
					in.noteLinkEvent()
				})
			}
		case HandlerCrash:
			sw := eventSwitch(c, i, e)
			c.EngineFor(sw.ID()).Schedule(at, func() {
				// A crash is injected and tolerated in the same breath: the
				// recovery (host-side fallback or restart) re-does the work
				// rather than re-delivering anything.
				in.noteCrash()
				sw.Crash()
			})
		case HandlerRestart:
			sw := eventSwitch(c, i, e)
			c.EngineFor(sw.ID()).Schedule(at, func() { sw.Restart() })
		}
	}
}

func eventSwitch(c *cluster.Cluster, i int, e Event) *aswitch.ActiveSwitch {
	if e.Switch < 0 || e.Switch >= len(c.Switches) {
		panic(fmt.Sprintf("fault: events[%d]: switch index %d out of range (cluster has %d)",
			i, e.Switch, len(c.Switches)))
	}
	return c.Switches[e.Switch]
}

// defaultPlan is the CLI-wide plan installed by -faults; experiments arm it
// on every cluster they build unless handed an explicit plan.
var (
	defMu   sync.Mutex
	defPlan *Plan
	defSeed uint64
)

// SetDefault installs (or, with nil, clears) the process-wide default plan.
func SetDefault(p *Plan, seed uint64) {
	defMu.Lock()
	defer defMu.Unlock()
	defPlan, defSeed = p, seed
}

// Default returns the process-wide default plan and seed override.
func Default() (*Plan, uint64) {
	defMu.Lock()
	defer defMu.Unlock()
	return defPlan, defSeed
}

// ArmDefault arms the process-wide default plan on a cluster, returning nil
// when none is installed. Experiment runners call it between topology
// construction and cluster.Start.
func ArmDefault(c *cluster.Cluster) *Injector {
	p, seed := Default()
	if p == nil {
		return nil
	}
	return Arm(c, p, seed)
}
