package fault

import (
	"strings"
	"sync"

	"activesan/internal/san"
	"activesan/internal/sim"
)

// Counts is the injector's ledger. The reliability acceptance identity is
//
//	Injected == Recovered + Tolerated   (and Pending() == 0)
//
// on a cleanly completed run: every fault was either repaired by a
// retransmission/reroute/retry (Recovered) or absorbed without needing the
// lost packet again (Tolerated — delays, crashes handled by fallback,
// losses of packets that were already acknowledged).
type Counts struct {
	Injected   int64 // total faults injected (drops+corrupts+delays+crashes+disk errors)
	Dropped    int64 // packets dropped on links (including down links)
	Corrupted  int64 // packets delivered with the corrupt bit set
	Delayed    int64 // packets delivered late
	DiskErrors int64 // failed disk attempts
	Crashes    int64 // handler-plane crashes injected
	LinkEvents int64 // link/port up/down transitions applied
	Recovered  int64 // faults repaired by a later clean delivery or disk retry
	Tolerated  int64 // faults absorbed without re-delivery
	Exempt     int64 // losses withheld from unprotectable packets (see below)
}

// identity names one lost packet so its eventual clean re-delivery can be
// matched to the original fault. Seq+type+flow+dst is unique per packet
// within a run: flows are never reused across messages.
type identity struct {
	dst  san.NodeID
	flow int64
	seq  int
	typ  san.Type
}

// flowKey names a (receiver, flow, type) triple — the unit the reliability
// layer acknowledges.
type flowKey struct {
	dst  san.NodeID
	flow int64
	typ  san.Type
}

type diskKey struct {
	node string
	file string
	off  int64
}

// linkRule is a LinkRule compiled against one concrete link.
type linkRule struct {
	drop, corrupt float64
	delay, jitter sim.Time
	delayProb     float64
}

// Injector implements san.LinkInjector and iodev.DiskInjector for one
// cluster. It draws every probabilistic decision from a single seeded PRNG;
// within one engine, link transmissions are serialized, so the draw sequence
// — and therefore the whole run — is reproducible at a fixed partition
// count. On a partitioned cluster the injector is shared by every
// partition's engine, so mu serializes the ledger and PRNG; scheduled
// (flap/crash) plans stay deterministic at any partition count, while
// probabilistic rules are reproducible per partition count (the draw
// interleaving across engines is barrier-schedule dependent). See
// PERFORMANCE.md.
type Injector struct {
	mu    sync.Mutex
	rng   *Rand
	rules map[*san.Link]*linkRule // nil value: observe-only link
	disks map[string]*DiskRule    // by store name

	counts Counts
	// pending maps a lost packet to the number of outstanding losses of
	// that exact identity; a clean pass of the identity on any armed link
	// recovers them.
	pending map[identity]int64
	// resolved records flows the sender has seen fully acknowledged.
	// Losses on a resolved flow (a spurious retransmission, a duplicate
	// re-ACK) can never be re-delivered — nobody will send them again — so
	// they count as tolerated immediately instead of pending forever.
	resolved map[flowKey]bool
	// pendingDisk counts outstanding failed attempts per disk operation;
	// the retry that succeeds recovers them.
	pendingDisk map[diskKey]int64
	// protocol, when non-nil, is the set of nodes covered by end-to-end
	// retransmission (hosts and stores). Probabilistic loss is withheld
	// from packets whose source or destination lies outside it — a switch's
	// handler plane neither retransmits what it sends nor acknowledges what
	// it receives (the offload protocols reuse one flow id per chunk, so
	// receiver-side dedup is ambiguous), and a single loss on those paths
	// would hang the stream forever. Withheld losses are counted as Exempt
	// so a plan that never fires is visible. Nil when the plan runs without
	// reliability: raw-damage mode injects everywhere.
	protocol map[san.NodeID]bool
}

func newInjector(seed uint64) *Injector {
	return &Injector{
		rng:         NewRand(seed),
		rules:       map[*san.Link]*linkRule{},
		disks:       map[string]*DiskRule{},
		pending:     map[identity]int64{},
		resolved:    map[flowKey]bool{},
		pendingDisk: map[diskKey]int64{},
	}
}

// Counts returns a copy of the ledger.
func (in *Injector) Counts() Counts {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counts
}

// Pending reports outstanding unrecovered packet losses plus disk errors.
func (in *Injector) Pending() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.pendingLocked()
}

func (in *Injector) pendingLocked() int64 {
	var n int64
	for _, c := range in.pending {
		n += c
	}
	for _, c := range in.pendingDisk {
		n += c
	}
	return n
}

// Balanced reports whether every injected fault has been recovered or
// tolerated — the acceptance identity for a cleanly completed run.
func (in *Injector) Balanced() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counts.Injected == in.counts.Recovered+in.counts.Tolerated && in.pendingLocked() == 0
}

// noteLinkEvent and noteCrash book scheduled-event transitions; the event
// closures run on their target component's engine, so they take the lock.
func (in *Injector) noteLinkEvent() {
	in.mu.Lock()
	in.counts.LinkEvents++
	in.mu.Unlock()
}

func (in *Injector) noteCrash() {
	in.mu.Lock()
	in.counts.Injected++
	in.counts.Crashes++
	in.counts.Tolerated++
	in.mu.Unlock()
}

// OnTransmit implements san.LinkInjector: it votes on every packet crossing
// an armed link. Down links drop everything; otherwise the link's compiled
// rule draws drop, then corrupt, then delay. Clean passes double as the
// recovery observer: a pending identity passing cleanly means the
// retransmission (or reroute) worked.
func (in *Injector) OnTransmit(l *san.Link, pkt *san.Packet) (san.FaultVerdict, sim.Time) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if l.Down() {
		in.noteLoss(pkt)
		in.counts.Dropped++
		return san.FaultDrop, 0
	}
	r := in.rules[l]
	if r != nil {
		lossOK := in.protocol == nil || (in.protocol[pkt.Hdr.Src] && in.protocol[pkt.Hdr.Dst])
		if r.drop > 0 && in.rng.Float64() < r.drop {
			if !lossOK {
				in.counts.Exempt++
			} else {
				in.noteLoss(pkt)
				in.counts.Dropped++
				return san.FaultDrop, 0
			}
		}
		if r.corrupt > 0 && in.rng.Float64() < r.corrupt {
			if !lossOK {
				in.counts.Exempt++
			} else {
				in.noteLoss(pkt)
				in.counts.Corrupted++
				return san.FaultCorrupt, 0
			}
		}
		if r.delay > 0 || r.jitter > 0 {
			if r.delayProb >= 1 || in.rng.Float64() < r.delayProb {
				d := r.delay
				if r.jitter > 0 {
					d += sim.Time(in.rng.Int63n(int64(r.jitter)))
				}
				if d > 0 {
					// A late packet still arrives intact: injected and
					// tolerated in the same breath.
					in.counts.Injected++
					in.counts.Delayed++
					in.counts.Tolerated++
					return san.FaultPass, d
				}
			}
		}
	}
	// Clean pass: if this exact packet was lost before, the re-delivery
	// recovers it.
	id := identity{pkt.Hdr.Dst, pkt.Hdr.Flow, pkt.Hdr.Seq, pkt.Hdr.Type}
	if n := in.pending[id]; n > 0 {
		in.counts.Recovered += n
		delete(in.pending, id)
	}
	return san.FaultPass, 0
}

// noteLoss books a drop or corruption. Losses that the protocol can never
// re-deliver — ACK/NAK packets (recovered by timeout + duplicate re-ACK)
// and packets on already-resolved flows — are tolerated immediately;
// everything else goes pending until a clean pass of the same identity.
func (in *Injector) noteLoss(pkt *san.Packet) {
	in.counts.Injected++
	if pkt.Hdr.Type == san.Ack {
		in.counts.Tolerated++
		return
	}
	if in.resolved[flowKey{pkt.Hdr.Dst, pkt.Hdr.Flow, pkt.Hdr.Type}] {
		in.counts.Tolerated++
		return
	}
	in.pending[identity{pkt.Hdr.Dst, pkt.Hdr.Flow, pkt.Hdr.Seq, pkt.Hdr.Type}]++
}

// resolveFlow is wired to every TxTracker's resolve callback: the sender has
// seen the flow fully acknowledged, so losses of its packets still pending
// (a retransmission that was itself dropped after the ACK raced past it)
// will never pass again and are tolerated.
func (in *Injector) resolveFlow(dst san.NodeID, flow int64, of san.Type) {
	in.mu.Lock()
	defer in.mu.Unlock()
	fk := flowKey{dst, flow, of}
	in.resolved[fk] = true
	for id, n := range in.pending {
		if id.dst == dst && id.flow == flow && id.typ == of {
			in.counts.Tolerated += n
			delete(in.pending, id)
		}
	}
}

// OnDiskOp implements iodev.DiskInjector: true fails the attempt. The
// storage node retries in place, so the first clean attempt on the same
// operation recovers every failed one before it.
func (in *Injector) OnDiskOp(node, file string, off, n int64) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	r := in.disks[node]
	if r != nil && r.Fail > 0 && in.rng.Float64() < r.Fail {
		in.counts.Injected++
		in.counts.DiskErrors++
		in.pendingDisk[diskKey{node, file, off}]++
		return true
	}
	k := diskKey{node, file, off}
	if c := in.pendingDisk[k]; c > 0 {
		in.counts.Recovered += c
		delete(in.pendingDisk, k)
	}
	return false
}

// addMetrics publishes the ledger into a metrics snapshot; installed as the
// cluster's ExtraMetrics hook, so these keys exist only on faulted runs.
func (in *Injector) addMetrics(add func(name string, v float64)) {
	in.mu.Lock()
	defer in.mu.Unlock()
	c := in.counts
	add("fault/injected", float64(c.Injected))
	add("fault/dropped", float64(c.Dropped))
	add("fault/corrupted", float64(c.Corrupted))
	add("fault/delayed", float64(c.Delayed))
	add("fault/disk_errors", float64(c.DiskErrors))
	add("fault/crashes", float64(c.Crashes))
	add("fault/link_events", float64(c.LinkEvents))
	add("fault/tolerated", float64(c.Tolerated))
	add("fault/exempted", float64(c.Exempt))
	add("fault/pending", float64(in.pendingLocked()))
	add("retry/recovered", float64(c.Recovered))
}

// compile resolves a plan's link rules against one concrete link by
// first-match on name substring; nil means observe-only.
func compileRule(p *Plan, name string) *linkRule {
	for i := range p.Links {
		r := &p.Links[i]
		if r.Match != "" && !strings.Contains(name, r.Match) {
			continue
		}
		c := &linkRule{
			drop:      r.Drop,
			corrupt:   r.Corrupt,
			delay:     sim.Time(r.DelayNS) * sim.Nanosecond,
			jitter:    sim.Time(r.JitterNS) * sim.Nanosecond,
			delayProb: r.DelayProb,
		}
		if (c.delay > 0 || c.jitter > 0) && c.delayProb == 0 {
			c.delayProb = 1
		}
		return c
	}
	return nil
}
