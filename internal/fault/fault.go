// Package fault is the deterministic fault-injection subsystem: a
// schedule-driven plan (seeded splitmix PRNG for probabilistic faults,
// explicit at-times for discrete events) that can drop, corrupt or delay
// packets on any san.Link, flap links and switch ports, crash and restart an
// active switch's handler plane, and fail disk operations — paired with the
// accounting that proves the reliability mechanisms recovered every injected
// fault. Nothing in this package runs unless a plan is armed, so the
// zero-fault configuration stays byte-identical to the lossless paper model.
// See RELIABILITY.md for the plan schema and determinism rules.
package fault

import (
	"encoding/json"
	"fmt"
	"os"

	"activesan/internal/san"
	"activesan/internal/sim"
)

// Plan is a complete fault schedule, loadable from JSON.
type Plan struct {
	// Seed initializes the plan's PRNG; zero means an arbitrary fixed
	// default so a seedless plan is still deterministic.
	Seed uint64 `json:"seed,omitempty"`
	// Links are probabilistic per-packet rules; the first rule whose Match
	// is a substring of a link's name governs that link.
	Links []LinkRule `json:"links,omitempty"`
	// Disks are probabilistic media-error rules, matched on store names.
	Disks []DiskRule `json:"disks,omitempty"`
	// Events are discrete state changes at explicit simulated times.
	Events []Event `json:"events,omitempty"`
	// Reliability tunes (or disables) the retransmission layer that is
	// armed automatically when the plan can lose packets.
	Reliability *Reliability `json:"reliability,omitempty"`
}

// LinkRule injects per-packet faults on matching links.
type LinkRule struct {
	// Match selects links by substring of their name ("h0.up", "trunk",
	// ...); empty matches every link.
	Match string `json:"match,omitempty"`
	// Drop and Corrupt are per-packet probabilities in [0,1].
	Drop    float64 `json:"drop,omitempty"`
	Corrupt float64 `json:"corrupt,omitempty"`
	// DelayNS adds fixed latency, JitterNS a uniform random extra, to
	// packets selected by DelayProb (default: all, when a delay is set).
	DelayNS   int64   `json:"delay_ns,omitempty"`
	JitterNS  int64   `json:"jitter_ns,omitempty"`
	DelayProb float64 `json:"delay_prob,omitempty"`
}

// DiskRule injects media errors on matching storage nodes; each failed
// attempt costs a re-read penalty (default: one seek + rotation).
type DiskRule struct {
	Match   string  `json:"match,omitempty"`
	Fail    float64 `json:"fail"`
	RetryNS int64   `json:"retry_ns,omitempty"`
}

// Event kinds.
const (
	LinkDown       = "link_down"
	LinkUp         = "link_up"
	PortDown       = "port_down"
	PortUp         = "port_up"
	HandlerCrash   = "handler_crash"
	HandlerRestart = "handler_restart"
)

// Event is one scheduled state change.
type Event struct {
	AtNS int64  `json:"at_ns"`
	Kind string `json:"kind"`
	// Link selects links by name substring, for link_down / link_up.
	Link string `json:"link,omitempty"`
	// Switch indexes cluster.Switches, for port and handler events; Port
	// selects the port for port_down / port_up.
	Switch int `json:"switch,omitempty"`
	Port   int `json:"port,omitempty"`
}

// Reliability tunes the retransmission layer (see san.RetxConfig).
type Reliability struct {
	TimeoutNS    int64   `json:"timeout_ns,omitempty"`
	Backoff      float64 `json:"backoff,omitempty"`
	MaxBackoffNS int64   `json:"max_backoff_ns,omitempty"`
	MaxRetries   int     `json:"max_retries,omitempty"`
	// Disable leaves the plan's losses unrecovered — for measuring raw
	// damage rather than recovery.
	Disable bool `json:"disable,omitempty"`
}

// Load reads and validates a plan file.
func Load(path string) (*Plan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fault plan: %w", err)
	}
	var p Plan
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("fault plan %s: %w", path, err)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("fault plan %s: %w", path, err)
	}
	return &p, nil
}

// Validate checks ranges and event kinds; cluster-dependent references
// (switch indexes, link names) are checked when the plan is armed.
func (p *Plan) Validate() error {
	for i, r := range p.Links {
		if err := prob("drop", r.Drop); err != nil {
			return fmt.Errorf("links[%d]: %w", i, err)
		}
		if err := prob("corrupt", r.Corrupt); err != nil {
			return fmt.Errorf("links[%d]: %w", i, err)
		}
		if err := prob("delay_prob", r.DelayProb); err != nil {
			return fmt.Errorf("links[%d]: %w", i, err)
		}
		if r.DelayNS < 0 || r.JitterNS < 0 {
			return fmt.Errorf("links[%d]: negative delay", i)
		}
	}
	for i, r := range p.Disks {
		if err := prob("fail", r.Fail); err != nil {
			return fmt.Errorf("disks[%d]: %w", i, err)
		}
		if r.RetryNS < 0 {
			return fmt.Errorf("disks[%d]: negative retry_ns", i)
		}
	}
	for i, e := range p.Events {
		switch e.Kind {
		case LinkDown, LinkUp:
			if e.Link == "" {
				return fmt.Errorf("events[%d]: %s needs a link name", i, e.Kind)
			}
		case PortDown, PortUp, HandlerCrash, HandlerRestart:
			// Switch/Port bounds are checked against the cluster at Arm.
		default:
			return fmt.Errorf("events[%d]: unknown kind %q (want %s|%s|%s|%s|%s|%s)",
				i, e.Kind, LinkDown, LinkUp, PortDown, PortUp, HandlerCrash, HandlerRestart)
		}
		if e.AtNS < 0 {
			return fmt.Errorf("events[%d]: negative at_ns", i)
		}
	}
	return nil
}

func prob(name string, v float64) error {
	if v < 0 || v > 1 {
		return fmt.Errorf("%s=%v outside [0,1]", name, v)
	}
	return nil
}

// needsRetx reports whether the plan can lose packets, which arms the
// retransmission layer unless the plan disables it.
func (p *Plan) needsRetx() bool {
	if p.Reliability != nil && p.Reliability.Disable {
		return false
	}
	for _, r := range p.Links {
		if r.Drop > 0 || r.Corrupt > 0 {
			return true
		}
	}
	for _, e := range p.Events {
		if e.Kind == LinkDown || e.Kind == PortDown {
			return true
		}
	}
	return false
}

// retxConfig builds the san.RetxConfig for this plan.
func (p *Plan) retxConfig() san.RetxConfig {
	cfg := san.DefaultRetxConfig()
	r := p.Reliability
	if r == nil {
		return cfg
	}
	if r.TimeoutNS > 0 {
		cfg.Timeout = sim.Time(r.TimeoutNS) * sim.Nanosecond
	}
	if r.Backoff > 1 {
		cfg.Backoff = r.Backoff
	}
	if r.MaxBackoffNS > 0 {
		cfg.MaxBackoff = sim.Time(r.MaxBackoffNS) * sim.Nanosecond
	}
	if r.MaxRetries > 0 {
		cfg.MaxRetries = r.MaxRetries
	}
	return cfg
}

// Rand is a splitmix64 PRNG — the repo's standard deterministic generator
// (a private copy of apps.Rand, which this package cannot import without a
// cycle). One instance per armed injector; a single engine serializes all
// draws, so sequences reproduce exactly.
type Rand struct{ s uint64 }

// NewRand seeds a generator; zero seeds get a fixed arbitrary constant.
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Rand{s: seed}
}

// Next returns the next 64-bit value.
func (r *Rand) Next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0,1).
func (r *Rand) Float64() float64 { return float64(r.Next()>>11) / float64(1<<53) }

// Int63n returns a uniform value in [0,n).
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		return 0
	}
	return int64(r.Next() % uint64(n))
}
