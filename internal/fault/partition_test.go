package fault

// Fault injection under the partitioned engine: scheduled events (link
// flaps) are placed per target engine at one virtual instant, so a flap on
// a trunk whose directed links straddle a partition cut must produce the
// identical fault ledger at any partition count. (Probabilistic rules draw
// from per-engine PRNG streams and are only reproducible per partition
// count — the ledger-identity guarantee here is for scheduled plans, see
// PERFORMANCE.md.)

import (
	"testing"

	"activesan/internal/cluster"
	"activesan/internal/san"
	"activesan/internal/sim"
)

// flapRun drives cross-pod traffic on a k=4 fat tree while the whole core
// layer flaps down and back up, with retransmission recovering the packets
// lost in the window. At 4 partitions each pod is its own rank, so the
// flapped links cross partition cuts and the down/up events schedule on
// several engines at the same virtual instant.
func flapRun(t *testing.T, nparts int) (Counts, int) {
	t.Helper()
	c := cluster.NewPartitionedFatTreeCluster(cluster.DefaultFatTreeConfig(16), nparts)
	defer c.Shutdown()
	plan := &Plan{
		Events: []Event{
			{AtNS: 2_000, Kind: LinkDown, Link: "core"},
			{AtNS: 60_000, Kind: LinkUp, Link: "core"},
		},
		Reliability: &Reliability{MaxRetries: 64},
	}
	in := Arm(c, plan, 0)
	c.Start()

	// Host i to host 15-i: every pair crosses pods, and with the core layer
	// dark the first sends race the flap — some packets die on a down link
	// and must be retransmitted after LinkUp. Each pair records into its own
	// slot: receiver procs on different partitions run concurrently.
	const pairs = 8
	got := make([]bool, pairs)
	for i := 0; i < pairs; i++ {
		i := i
		src, dst := c.Host(i), c.Host(15-i)
		c.EngineFor(dst.ID()).Spawn("rx", func(p *sim.Proc) {
			comp := dst.RecvAny(p)
			got[i] = comp.Hdr.Src == src.ID()
		})
		c.EngineFor(src.ID()).Spawn("tx", func(p *sim.Proc) {
			src.SendMessage(p, &san.Message{
				Hdr:  san.Header{Dst: dst.ID(), Type: san.Data, Flow: int64(1000 + i)},
				Size: 64 << 10,
			}, 0)
		})
	}
	c.Run()
	delivered := 0
	for _, ok := range got {
		if ok {
			delivered++
		}
	}
	return in.Counts(), delivered
}

func TestPartitionedLinkFlapAcrossCut(t *testing.T) {
	serial, deliveredSerial := flapRun(t, 1)
	if deliveredSerial != 8 {
		t.Fatalf("serial run delivered %d of 8 messages", deliveredSerial)
	}
	if serial.LinkEvents == 0 {
		t.Fatal("no link events applied: the flap did not match any trunk")
	}
	if serial.Injected == 0 {
		t.Fatal("no faults injected: the flap window missed all traffic")
	}
	if serial.Injected != serial.Recovered+serial.Tolerated {
		t.Fatalf("serial ledger unbalanced: %+v", serial)
	}

	part, deliveredPart := flapRun(t, 4)
	if deliveredPart != deliveredSerial {
		t.Fatalf("partitioned run delivered %d, serial %d", deliveredPart, deliveredSerial)
	}
	if part != serial {
		t.Fatalf("ledger differs across partition counts:\nserial      %+v\n4 partitions %+v", serial, part)
	}
}
