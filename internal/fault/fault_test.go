package fault

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"activesan/internal/san"
	"activesan/internal/sim"
)

func TestValidateRejectsBadPlans(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
		want string
	}{
		{"drop above 1", Plan{Links: []LinkRule{{Drop: 1.5}}}, "drop=1.5"},
		{"negative corrupt", Plan{Links: []LinkRule{{Corrupt: -0.1}}}, "corrupt=-0.1"},
		{"bad delay prob", Plan{Links: []LinkRule{{DelayProb: 2}}}, "delay_prob"},
		{"negative delay", Plan{Links: []LinkRule{{DelayNS: -5}}}, "negative delay"},
		{"bad disk fail", Plan{Disks: []DiskRule{{Fail: 7}}}, "fail=7"},
		{"negative retry", Plan{Disks: []DiskRule{{Fail: 0.1, RetryNS: -1}}}, "negative retry_ns"},
		{"unknown kind", Plan{Events: []Event{{Kind: "meteor_strike"}}}, "unknown kind"},
		{"link event without link", Plan{Events: []Event{{Kind: LinkDown}}}, "needs a link name"},
		{"negative at", Plan{Events: []Event{{Kind: HandlerCrash, AtNS: -1}}}, "negative at_ns"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.plan.Validate()
			if err == nil {
				t.Fatalf("plan %+v accepted", c.plan)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
	good := Plan{
		Links:  []LinkRule{{Drop: 0.01, DelayNS: 100, JitterNS: 50, DelayProb: 0.5}},
		Disks:  []DiskRule{{Fail: 0.1, RetryNS: 1000}},
		Events: []Event{{AtNS: 10, Kind: LinkDown, Link: "h0"}, {AtNS: 20, Kind: HandlerCrash}},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
}

func TestLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "plan.json")
	const src = `{
		"seed": 7,
		"links": [{"match": "trunk", "drop": 0.01, "delay_ns": 2000}],
		"disks": [{"fail": 0.3, "retry_ns": 5000}],
		"events": [{"at_ns": 1000000, "kind": "handler_crash", "switch": 0}],
		"reliability": {"timeout_ns": 50000, "max_retries": 12}
	}`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if p.Seed != 7 || len(p.Links) != 1 || p.Links[0].Match != "trunk" ||
		len(p.Disks) != 1 || p.Disks[0].Fail != 0.3 ||
		len(p.Events) != 1 || p.Events[0].Kind != HandlerCrash ||
		p.Reliability == nil || p.Reliability.MaxRetries != 12 {
		t.Fatalf("plan fields lost in round trip: %+v", p)
	}

	if _, err := Load(filepath.Join(dir, "absent.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("{not json"), 0o644)
	if _, err := Load(bad); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	invalid := filepath.Join(dir, "invalid.json")
	os.WriteFile(invalid, []byte(`{"links":[{"drop": 2}]}`), 0o644)
	if _, err := Load(invalid); err == nil {
		t.Fatal("out-of-range plan accepted")
	}
}

func TestNeedsRetx(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
		want bool
	}{
		{"empty", Plan{}, false},
		{"delay only", Plan{Links: []LinkRule{{DelayNS: 100}}}, false},
		{"drop", Plan{Links: []LinkRule{{Drop: 0.01}}}, true},
		{"corrupt", Plan{Links: []LinkRule{{Corrupt: 0.01}}}, true},
		{"link down", Plan{Events: []Event{{Kind: LinkDown, Link: "x"}}}, true},
		{"port down", Plan{Events: []Event{{Kind: PortDown}}}, true},
		{"crash only", Plan{Events: []Event{{Kind: HandlerCrash}}}, false},
		{"disabled", Plan{
			Links:       []LinkRule{{Drop: 0.5}},
			Reliability: &Reliability{Disable: true},
		}, false},
	}
	for _, c := range cases {
		if got := c.plan.needsRetx(); got != c.want {
			t.Errorf("%s: needsRetx=%v, want %v", c.name, got, c.want)
		}
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(123), NewRand(123)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	if NewRand(0).Next() != NewRand(0).Next() {
		t.Fatal("zero seed is not deterministic")
	}
	if NewRand(1).Next() == NewRand(2).Next() {
		t.Fatal("different seeds produced the same first draw")
	}
	r := NewRand(99)
	for i := 0; i < 1000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64=%v outside [0,1)", f)
		}
		n := r.Int63n(10)
		if n < 0 || n >= 10 {
			t.Fatalf("Int63n(10)=%d", n)
		}
	}
}

func TestCompileRuleFirstMatchWins(t *testing.T) {
	p := &Plan{Links: []LinkRule{
		{Match: "trunk", Drop: 0.5},
		{Match: "", Drop: 0.1}, // catch-all
	}}
	if r := compileRule(p, "sw0.trunk.out"); r == nil || r.drop != 0.5 {
		t.Fatalf("trunk rule not selected: %+v", r)
	}
	if r := compileRule(p, "h0.up"); r == nil || r.drop != 0.1 {
		t.Fatalf("catch-all not selected: %+v", r)
	}
	only := &Plan{Links: []LinkRule{{Match: "trunk", Drop: 0.5}}}
	if r := compileRule(only, "h0.up"); r != nil {
		t.Fatalf("unmatched link got rule %+v, want observe-only nil", r)
	}
	// A bare delay defaults to firing on every packet.
	delayed := &Plan{Links: []LinkRule{{DelayNS: 100}}}
	if r := compileRule(delayed, "any"); r == nil || r.delayProb != 1 {
		t.Fatalf("bare delay rule %+v, want delayProb=1", r)
	}
}

// pkt builds a data packet with the identity fields the injector keys on.
func pkt(src, dst san.NodeID, flow int64, seq int) *san.Packet {
	return &san.Packet{Hdr: san.Header{Src: src, Dst: dst, Flow: flow, Seq: seq}, Size: 64}
}

func TestInjectorLossAndRecoveryAccounting(t *testing.T) {
	eng := sim.NewEngine()
	l := san.NewLink(eng, "l", san.DefaultLinkConfig())
	in := newInjector(1)
	in.rules[l] = &linkRule{drop: 1} // deterministic loss

	v, _ := in.OnTransmit(l, pkt(1, 2, 100, 0))
	if v != san.FaultDrop {
		t.Fatalf("verdict %v, want drop", v)
	}
	c := in.Counts()
	if c.Injected != 1 || c.Dropped != 1 || in.Pending() != 1 {
		t.Fatalf("after drop: %+v pending=%d", c, in.Pending())
	}
	if in.Balanced() {
		t.Fatal("balanced with a pending loss")
	}

	// The retransmission passes cleanly on another (observe-only) link and
	// recovers the pending identity.
	clean := san.NewLink(eng, "clean", san.DefaultLinkConfig())
	in.rules[clean] = nil
	if v, _ := in.OnTransmit(clean, pkt(1, 2, 100, 0)); v != san.FaultPass {
		t.Fatal("clean link did not pass")
	}
	c = in.Counts()
	if c.Recovered != 1 || in.Pending() != 0 || !in.Balanced() {
		t.Fatalf("after recovery: %+v pending=%d", c, in.Pending())
	}
}

func TestInjectorAckLossTolerated(t *testing.T) {
	eng := sim.NewEngine()
	l := san.NewLink(eng, "l", san.DefaultLinkConfig())
	in := newInjector(1)
	in.rules[l] = &linkRule{drop: 1}
	ack := pkt(2, 1, 100, 0)
	ack.Hdr.Type = san.Ack
	in.OnTransmit(l, ack)
	c := in.Counts()
	if c.Injected != 1 || c.Tolerated != 1 || in.Pending() != 0 || !in.Balanced() {
		t.Fatalf("ACK loss not tolerated immediately: %+v pending=%d", c, in.Pending())
	}
}

func TestInjectorResolveFlowToleratesStragglers(t *testing.T) {
	eng := sim.NewEngine()
	l := san.NewLink(eng, "l", san.DefaultLinkConfig())
	in := newInjector(1)
	in.rules[l] = &linkRule{drop: 1}
	in.OnTransmit(l, pkt(1, 2, 100, 3)) // lost retransmission
	if in.Pending() != 1 {
		t.Fatalf("pending=%d, want 1", in.Pending())
	}
	// Sender reports the flow fully acknowledged: the pending loss can
	// never be re-delivered and must be tolerated.
	in.resolveFlow(2, 100, 0)
	if in.Pending() != 0 || !in.Balanced() {
		t.Fatalf("resolved flow left pending=%d", in.Pending())
	}
	// A later loss on the resolved flow is tolerated on the spot.
	in.OnTransmit(l, pkt(1, 2, 100, 4))
	if in.Pending() != 0 || !in.Balanced() {
		t.Fatalf("post-resolve loss pended: %+v", in.Counts())
	}
}

func TestInjectorProtocolExemption(t *testing.T) {
	eng := sim.NewEngine()
	l := san.NewLink(eng, "l", san.DefaultLinkConfig())
	in := newInjector(1)
	in.rules[l] = &linkRule{drop: 1}
	in.protocol = map[san.NodeID]bool{1: true, 2: true} // 50 is outside

	// Host-to-host traffic is covered: the drop fires.
	if v, _ := in.OnTransmit(l, pkt(1, 2, 100, 0)); v != san.FaultDrop {
		t.Fatal("covered packet not dropped")
	}
	// Switch-destined and switch-sourced packets are exempt: delivered.
	if v, _ := in.OnTransmit(l, pkt(1, 50, 101, 0)); v != san.FaultPass {
		t.Fatal("switch-destined packet dropped despite exemption")
	}
	if v, _ := in.OnTransmit(l, pkt(50, 2, 102, 0)); v != san.FaultPass {
		t.Fatal("switch-sourced packet dropped despite exemption")
	}
	c := in.Counts()
	if c.Exempt != 2 || c.Dropped != 1 {
		t.Fatalf("Exempt=%d Dropped=%d, want 2 and 1", c.Exempt, c.Dropped)
	}
}

func TestInjectorDiskRetryAccounting(t *testing.T) {
	in := newInjector(1)
	in.disks["store0"] = &DiskRule{Fail: 1}
	if !in.OnDiskOp("store0", "f", 0, 512) {
		t.Fatal("fail=1 rule did not fail the attempt")
	}
	if in.Counts().DiskErrors != 1 || in.Pending() != 1 {
		t.Fatalf("after failure: %+v pending=%d", in.Counts(), in.Pending())
	}
	// The retry succeeds once the rule stops firing (simulate by dropping
	// the rule, as a real plan's probability draw eventually misses).
	in.disks["store0"] = &DiskRule{Fail: 0}
	if in.OnDiskOp("store0", "f", 0, 512) {
		t.Fatal("fail=0 rule failed the attempt")
	}
	if in.Counts().Recovered != 1 || in.Pending() != 0 || !in.Balanced() {
		t.Fatalf("retry did not recover: %+v pending=%d", in.Counts(), in.Pending())
	}
	// Unarmed stores never fail.
	if in.OnDiskOp("other", "f", 0, 512) {
		t.Fatal("store without a rule failed")
	}
}

func TestArmRejectsBadReferences(t *testing.T) {
	// Arm panics on plan references that don't resolve; exercised through
	// Validate here since building a cluster in-package would be a cycle —
	// the cluster-level path is covered by the faultsweep tests.
	p := &Plan{Links: []LinkRule{{Drop: 2}}}
	defer func() {
		if recover() == nil {
			t.Fatal("Arm accepted an invalid plan")
		}
	}()
	Arm(nil, p, 0)
}

func TestDefaultPlanInstall(t *testing.T) {
	defer SetDefault(nil, 0)
	p := &Plan{Seed: 5}
	SetDefault(p, 9)
	got, seed := Default()
	if got != p || seed != 9 {
		t.Fatalf("Default() = %v, %d", got, seed)
	}
	SetDefault(nil, 0)
	if got, _ := Default(); got != nil {
		t.Fatal("cleared default still present")
	}
	if ArmDefault(nil) != nil {
		t.Fatal("ArmDefault without a plan armed something")
	}
}
