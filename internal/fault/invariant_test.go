package fault

// Invariant tests for fault arming and the loss ledger on the scale-out
// fat-tree topology: Arm must reach every link the topology wires, and after
// a lossy run with retransmission the ledger must balance exactly —
// Injected == Recovered + Tolerated with nothing pending.

import (
	"testing"

	"activesan/internal/cluster"
	"activesan/internal/san"
	"activesan/internal/sim"
)

func TestInvariantFatTreeArmCoversLinks(t *testing.T) {
	eng := sim.NewEngine()
	c := cluster.NewFatTreeCluster(eng, cluster.DefaultFatTreeConfig(16))
	defer c.Shutdown()

	// Every trunk is two directed links shared by two ports; every endpoint
	// contributes an up and a down link seen from one port.
	want := 2*len(c.Topo.Spec.Links) + 2*(len(c.Hosts)+len(c.Stores))
	links := clusterLinks(c)
	if len(links) != want {
		t.Fatalf("clusterLinks found %d links, want %d (%d trunks, %d endpoints)",
			len(links), want, len(c.Topo.Spec.Links), len(c.Hosts)+len(c.Stores))
	}

	// Arming a match-everything plan must install the injector on all of
	// them: a clean pass on any link is how recoveries are observed.
	in := Arm(c, &Plan{Seed: 1, Links: []LinkRule{{Drop: 0.1}}}, 0)
	for i, l := range links {
		sent := 0
		eng.Spawn("probe", func(p *sim.Proc) {
			l.Send(p, &san.Packet{Size: 64})
			sent++
		})
		eng.Run()
		if sent != 1 {
			t.Fatalf("probe %d wedged", i)
		}
	}
	// Drop verdicts on the probes are injections with no protocol to recover
	// them; they are tolerated immediately, so the ledger stays balanced.
	if !in.Balanced() {
		t.Fatalf("ledger unbalanced after probes: %+v pending %d", in.Counts(), in.Pending())
	}
}

func TestInvariantFatTreeFaultLedgerBalance(t *testing.T) {
	// Cross-pod traffic on a k=4 fat tree under lossy links with
	// retransmission: every injected fault must end up recovered or
	// tolerated, and every loss record resolved, once the run drains.
	// Cross-pod paths are six links long, so per-link loss compounds —
	// the retry budget is raised so no flow is abandoned (an abandoned
	// flow legitimately leaves its losses pending).
	eng := sim.NewEngine()
	c := cluster.NewFatTreeCluster(eng, cluster.DefaultFatTreeConfig(16))
	plan := &Plan{
		Seed:        7,
		Links:       []LinkRule{{Drop: 0.03, Corrupt: 0.02}},
		Reliability: &Reliability{MaxRetries: 64},
	}
	in := Arm(c, plan, 0)
	c.Start()

	// Pair host i with host 15-i: all pairs cross pods, exercising edge,
	// agg, and core links in both directions.
	const pairs = 8
	delivered := 0
	for i := 0; i < pairs; i++ {
		i := i
		src, dst := c.Host(i), c.Host(15-i)
		eng.Spawn("rx", func(p *sim.Proc) {
			comp := dst.RecvAny(p)
			if comp.Hdr.Src == src.ID() {
				delivered++
			}
		})
		eng.Spawn("tx", func(p *sim.Proc) {
			src.SendMessage(p, &san.Message{
				Hdr:  san.Header{Dst: dst.ID(), Type: san.Data, Flow: int64(1000 + i)},
				Size: 4096,
			}, 0)
		})
	}
	eng.Run()
	defer c.Shutdown()

	if delivered != pairs {
		t.Fatalf("delivered %d of %d messages under retransmission", delivered, pairs)
	}
	cnt := in.Counts()
	if cnt.Injected == 0 {
		t.Fatal("no faults injected: the plan did not bite")
	}
	if pend := in.Pending(); pend != 0 {
		t.Fatalf("%d losses still pending after quiesce", pend)
	}
	if !in.Balanced() {
		t.Fatalf("ledger unbalanced: Injected=%d Recovered=%d Tolerated=%d",
			cnt.Injected, cnt.Recovered, cnt.Tolerated)
	}
}

func TestInvariantFatTreeLedgerDeterministic(t *testing.T) {
	// The same plan and traffic must produce the identical ledger on every
	// run — the fault PRNG is seeded, never wall-clock.
	run := func() Counts {
		eng := sim.NewEngine()
		c := cluster.NewFatTreeCluster(eng, cluster.DefaultFatTreeConfig(8))
		in := Arm(c, &Plan{
			Seed:        11,
			Links:       []LinkRule{{Drop: 0.05}},
			Reliability: &Reliability{MaxRetries: 64},
		}, 0)
		c.Start()
		for i := 0; i < 4; i++ {
			i := i
			src, dst := c.Host(i), c.Host(7-i)
			eng.Spawn("rx", func(p *sim.Proc) { dst.RecvAny(p) })
			eng.Spawn("tx", func(p *sim.Proc) {
				src.SendMessage(p, &san.Message{
					Hdr:  san.Header{Dst: dst.ID(), Type: san.Data, Flow: int64(500 + i)},
					Size: 2048,
				}, 0)
			})
		}
		eng.Run()
		c.Shutdown()
		if !in.Balanced() {
			t.Fatalf("ledger unbalanced: %+v pending %d", in.Counts(), in.Pending())
		}
		return in.Counts()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("ledger differs across identical runs:\n  %+v\n  %+v", a, b)
	}
}
