package sim

// Queue is an unbounded FIFO of values passed between processes. Get blocks
// the calling process until an item is available; Put never blocks and may
// be called from engine context.
//
// Items and waiters dequeue by head index rather than re-slicing, so a
// steady produce/consume cycle reuses the backing arrays instead of
// creeping through them and reallocating.
type Queue[T any] struct {
	items []T
	head  int

	waiters []*Proc
}

// NewQueue returns an empty queue.
func NewQueue[T any]() *Queue[T] { return &Queue[T]{} }

// Len reports the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) - q.head }

// Put appends v and wakes the oldest waiter, if any.
func (q *Queue[T]) Put(v T) {
	q.items = append(q.items, v)
	if len(q.waiters) > 0 {
		w := q.waiters[0]
		q.waiters = dequeue(q.waiters)
		w.unpark()
	}
}

// Get removes and returns the head item, blocking p while the queue is
// empty. Waiters are served FIFO.
func (q *Queue[T]) Get(p *Proc) T {
	for q.Len() == 0 {
		q.waiters = append(q.waiters, p)
		p.park()
	}
	return q.pop()
}

// TryGet removes the head item without blocking; ok is false if empty.
func (q *Queue[T]) TryGet() (v T, ok bool) {
	if q.Len() == 0 {
		return v, false
	}
	return q.pop(), true
}

// pop removes the head item, recycling the backing array once drained and
// compacting when the consumed prefix dominates it.
func (q *Queue[T]) pop() T {
	v := q.items[q.head]
	var zero T
	q.items[q.head] = zero
	q.head++
	switch {
	case q.head == len(q.items):
		q.items = q.items[:0]
		q.head = 0
	case q.head > 32 && q.head > len(q.items)/2:
		n := copy(q.items, q.items[q.head:])
		clear(q.items[n:])
		q.items = q.items[:n]
		q.head = 0
	}
	return v
}

// dequeue removes the head of a waiter list in place: the lists are short,
// so a copy-down beats re-slicing the backing array into churn.
func dequeue(ws []*Proc) []*Proc {
	n := copy(ws, ws[1:])
	ws[n] = nil
	return ws[:n]
}

// Semaphore is a counting semaphore used for credits and buffer pools.
type Semaphore struct {
	count   int
	waiters []*Proc
}

// NewSemaphore returns a semaphore holding n initial permits.
func NewSemaphore(n int) *Semaphore { return &Semaphore{count: n} }

// Available reports the current permit count.
func (s *Semaphore) Available() int { return s.count }

// Acquire takes one permit, blocking p until one is free.
func (s *Semaphore) Acquire(p *Proc) { s.AcquireN(p, 1) }

// AcquireN takes n permits atomically, blocking until the full count is
// available to this waiter (waiters are served FIFO, so a large request is
// not starved by a stream of small ones).
func (s *Semaphore) AcquireN(p *Proc, n int) {
	if len(s.waiters) == 0 && s.count >= n {
		s.count -= n
		return
	}
	s.waiters = append(s.waiters, p)
	for s.waiters[0] != p || s.count < n {
		p.park()
	}
	s.waiters = dequeue(s.waiters)
	s.count -= n
	s.wake()
}

// TryAcquire takes a permit only if one is immediately free and no process
// is already queued ahead.
func (s *Semaphore) TryAcquire() bool {
	if s.count > 0 && len(s.waiters) == 0 {
		s.count--
		return true
	}
	return false
}

// Release returns one permit.
func (s *Semaphore) Release() { s.ReleaseN(1) }

// ReleaseN returns n permits and wakes the head waiter.
func (s *Semaphore) ReleaseN(n int) {
	s.count += n
	s.wake()
}

func (s *Semaphore) wake() {
	if len(s.waiters) > 0 && s.count > 0 {
		s.waiters[0].unparkIfWaiting()
	}
}

// Signal is a broadcast condition: processes Wait on it and a Fire call
// wakes every current waiter. A Signal may be fired many times.
type Signal struct {
	waiters []*Proc
	fires   int
}

// NewSignal returns an unfired signal.
func NewSignal() *Signal { return &Signal{} }

// Fires reports how many times Fire has been called.
func (s *Signal) Fires() int { return s.fires }

// Wait blocks p until the next Fire.
func (s *Signal) Wait(p *Proc) {
	s.waiters = append(s.waiters, p)
	p.park()
}

// Fire wakes all current waiters.
func (s *Signal) Fire() {
	s.fires++
	ws := s.waiters
	s.waiters = nil
	for _, w := range ws {
		w.unpark()
	}
}

// Latch is a one-shot completion flag: Wait returns immediately once Open
// has been called.
type Latch struct {
	open    bool
	waiters []*Proc
}

// NewLatch returns a closed latch.
func NewLatch() *Latch { return &Latch{} }

// Opened reports whether Open has been called.
func (l *Latch) Opened() bool { return l.open }

// Wait blocks p until the latch opens (or returns at once if already open).
func (l *Latch) Wait(p *Proc) {
	if l.open {
		return
	}
	l.waiters = append(l.waiters, p)
	p.park()
}

// Open releases all current and future waiters. Opening twice is a no-op.
func (l *Latch) Open() {
	if l.open {
		return
	}
	l.open = true
	ws := l.waiters
	l.waiters = nil
	for _, w := range ws {
		w.unpark()
	}
}

// WaitGroup counts outstanding work items; Wait blocks until the count hits
// zero.
type WaitGroup struct {
	count   int
	waiters []*Proc
}

// Add increments the outstanding count by n (n may be negative, like
// sync.WaitGroup).
func (w *WaitGroup) Add(n int) {
	w.count += n
	if w.count < 0 {
		panic("sim: negative WaitGroup count")
	}
	if w.count == 0 {
		ws := w.waiters
		w.waiters = nil
		for _, p := range ws {
			p.unpark()
		}
	}
}

// Done decrements the outstanding count.
func (w *WaitGroup) Done() { w.Add(-1) }

// Wait blocks p until the count is zero.
func (w *WaitGroup) Wait(p *Proc) {
	for w.count > 0 {
		w.waiters = append(w.waiters, p)
		p.park()
	}
}
