package sim

// Arbiter is a settle-phase admission arbiter: processes contending for a
// shared resource at the same instant Join with a caller-chosen index, park,
// and are all granted together at the end of the instant in ascending index
// order (ties in Join order). Because the grant order depends only on the
// indices — not on the order the contenders' wake events happened to be
// inserted — everything downstream of the grants (FIFO queues, semaphore
// waiter lists) becomes a pure function of simulated state. The switch
// crossbar uses one per switch, with the input-port number as the index, so
// same-instant arrivals are serviced port-by-port exactly like a hardware
// crossbar arbiter, whichever engine or partition delivered them.
type Arbiter struct {
	eng     *Engine
	pending []arbWaiter
	// armed marks that a settle hook is registered for the current instant;
	// it resets before the grants so a granted process that re-Joins at the
	// same instant arms a fresh settle pass.
	armed bool
	// settleFn is the bound hook, allocated once at construction.
	settleFn func()
}

type arbWaiter struct {
	index int
	proc  *Proc
}

// NewArbiter returns an arbiter driven by eng's end-of-instant settle.
func NewArbiter(eng *Engine) *Arbiter {
	a := &Arbiter{eng: eng}
	a.settleFn = a.settle
	return a
}

// Join stages p behind the given index and parks it until the end-of-instant
// settle grants this instant's joiners in ascending index order. It returns
// when p's turn comes; joiners with equal indices keep their Join order.
func (a *Arbiter) Join(p *Proc, index int) {
	a.pending = append(a.pending, arbWaiter{index: index, proc: p})
	if !a.armed {
		a.armed = true
		a.eng.Settle(a.settleFn)
	}
	p.park()
}

// settle grants the instant's joiners. The unparks schedule the waiters'
// wake events in grant order, so the waiters resume — and take their
// downstream FIFO slots — in exactly that order at the same instant.
func (a *Arbiter) settle() {
	a.armed = false
	pend := a.pending
	// Stable insertion sort by index: joiner sets are a handful of ports, and
	// sorting in place keeps the settle path allocation-free.
	for i := 1; i < len(pend); i++ {
		w := pend[i]
		j := i
		for j > 0 && pend[j-1].index > w.index {
			pend[j] = pend[j-1]
			j--
		}
		pend[j] = w
	}
	// Reset before unparking: grants only schedule wake events, so no Join
	// can interleave with this loop, but a granted process may Join again
	// once it runs — that append must start a fresh pending set.
	a.pending = a.pending[:0]
	for _, w := range pend {
		w.proc.unpark()
	}
}
