package sim

import (
	"fmt"
	"sort"
	"time"
)

// This file implements the multi-engine mode: a Group of Engines, one per
// topology partition, advancing in conservative lookahead windows
// (Chandy–Misra–Bryant style, no rollback) separated by barriers at which
// cross-partition messages are exchanged. See PERFORMANCE.md ("Partitioned
// simulation") for the full scheme and the determinism contract.
//
// The design leans on two properties of the SAN model:
//
//   - A cut link's delivery latency is bounded below by its wire propagation:
//     a sender action at time u cannot land a packet head at the receiver
//     before u + Propagation. That is the delivery lookahead.
//
//   - A cut link's credit return is bounded below in two ways: the receiving
//     port frees the input buffer of the *oldest* outstanding delivery first
//     (credits come back in arrival order), never earlier than that
//     delivery's arrival plus the receiver's routing latency (the input
//     pipeline sleeps that long before any disposition), and never before
//     the receiving partition acts at all. That is the credit lookahead —
//     without it, a partition waiting on flow-control credits would collapse
//     to lockstep with its neighbor.
//
// Determinism: messages buffered during a window are injected at the next
// barrier in (time, channel index, channel sequence) order, so each engine's
// event order — and therefore every simulation outcome — is a pure function
// of the topology and the partition count-independent virtual times. Same-
// time events on *different* engines touch disjoint component state, so
// results are byte-identical at any partition count; see the property tests.
// Same-instant arrivals at one switch from inputs fed by different
// partitions are arbitrated by the switch's settle-phase crossbar
// (Engine.Settle + Arbiter) in input-port order — a pure function of the
// topology, independent of delivering engine and injection order — so the
// identity holds even for fully synchronized bursts (see PERFORMANCE.md,
// "Determinism contract").

// xmsg is one cross-partition handoff: run fn on the target engine at
// virtual time at. seq is the channel-local posting order, breaking same-time
// ties in send order.
type xmsg struct {
	at  Time
	seq int64
	fn  func()
}

// Channel carries messages across one direction of a partition cut link:
// packet deliveries flow src→dst, flow-control credits flow back dst→src.
// Each cut link direction gets its own Channel — the credit bound relies on
// per-link FIFO credit return, which does not hold across links.
//
// Concurrency contract: Deliver is called only by the source engine's
// goroutine during a window, Credit only by the destination's; the
// coordinator drains both at barriers. The Group's worker start/done
// channel handoffs order every access, so no locking is needed.
type Channel struct {
	g   *Group
	idx int // global channel index: the deterministic same-time tie-break
	src int // sending partition rank
	dst int // receiving partition rank

	lookahead Time // min sender-action → delivery latency (wire propagation)
	creditLA  Time // min delivery → credit-return latency at the receiver

	srcEng *Engine
	dstEng *Engine

	deliv []xmsg
	cred  []xmsg
	dseq  int64
	cseq  int64

	// outstanding holds delivery times injected at the receiver whose
	// credits have not yet come back, in arrival order (coordinator only).
	// The head is the delivery whose credit returns next.
	outstanding []Time
	outHead     int
	inOutst     bool // on the group's outstanding-channel list
}

// Deliver posts a packet arrival: fn runs on the receiving engine at time at.
// The first post since the last barrier registers the channel on its source
// rank's dirty list, so barriers scan only channels that carried traffic.
func (c *Channel) Deliver(at Time, fn func()) {
	if len(c.deliv) == 0 {
		c.g.ddirty[c.src] = append(c.g.ddirty[c.src], c)
	}
	c.dseq++
	c.deliv = append(c.deliv, xmsg{at: at, seq: c.dseq, fn: fn})
}

// Credit posts a flow-control credit back to the sending engine, at the
// receiver's current virtual time.
func (c *Channel) Credit(fn func()) {
	if len(c.cred) == 0 {
		c.g.cdirty[c.dst] = append(c.g.cdirty[c.dst], c)
	}
	c.cseq++
	c.cred = append(c.cred, xmsg{at: c.dstEng.now, seq: c.cseq, fn: fn})
}

// Src and Dst report the partition ranks the channel connects.
func (c *Channel) Src() int { return c.src }

// Dst reports the receiving partition rank.
func (c *Channel) Dst() int { return c.dst }

// groupWorker is one partition's persistent runner goroutine: the
// coordinator sends a window deadline on start and receives the window's
// wall-clock cost and recovered panic (or nil) on done.
type groupWorker struct {
	start chan Time
	done  chan windowResult
}

// windowResult is what a worker reports back after one window.
type windowResult struct {
	busy time.Duration
	pp   *procPanic
}

// injItem is one message flattened for barrier injection, carrying its
// deterministic sort key (at, tie, seq).
type injItem struct {
	at   Time
	tie  int // 2*channel index, +1 for credits
	seq  int64
	ch   *Channel
	cred bool
	fn   func()
}

// injSorter orders a Group's injection scratch by (at, tie, seq). It is
// boxed into an interface once at NewGroup so the per-barrier sort.Sort call
// allocates nothing — the barrier loop stays zero-alloc in steady state
// (see TestGroupBarrierZeroAllocs).
type injSorter struct{ g *Group }

func (s *injSorter) Len() int { return len(s.g.inj) }
func (s *injSorter) Swap(i, j int) {
	inj := s.g.inj
	inj[i], inj[j] = inj[j], inj[i]
}
func (s *injSorter) Less(i, j int) bool {
	x, y := &s.g.inj[i], &s.g.inj[j]
	if x.at != y.at {
		return x.at < y.at
	}
	if x.tie != y.tie {
		return x.tie < y.tie
	}
	return x.seq < y.seq
}

// groupSampler is a Sampler driven at barrier epochs instead of by its own
// process, so the timeline observes one coherent virtual time across
// partitions.
type groupSampler struct {
	s    *Sampler
	fn   func() float64
	next Time
}

// Group runs a set of Engines as one partitioned simulation. Build each
// partition's components on its own engine, Connect a Channel per cut-link
// direction, then Run. All Group methods must be called from a single
// goroutine (the coordinator); during windows the engines run concurrently
// on worker goroutines.
type Group struct {
	engines  []*Engine
	channels []*Channel
	workers  []groupWorker

	// Per-rank barrier scratch, reused across rounds.
	next    []Time // next pending event (Forever = drained)
	reach   []Time // earliest possible future action, after relaxation
	horizon []Time // earliest possible inbound message
	active  []bool // ranks running in the current round
	dl      []Time // per-rank window deadline for the current round
	inj     []injItem
	injSort sort.Interface // pre-boxed injSorter

	// Barriers scan only what changed, not every channel. ddirty[r] lists
	// channels rank r posted deliveries on this window (written only by r's
	// goroutine, drained by the coordinator — the start/done handoffs order
	// the accesses), cdirty[r] likewise for credits posted by receiver rank
	// r. outst lists channels with outstanding deliveries (coordinator only,
	// compacted lazily); pairLA[s][d] is the min lookahead over all s→d
	// channels, the only per-channel figure horizon relaxation needs.
	ddirty [][]*Channel
	cdirty [][]*Channel
	outst  []*Channel
	pairLA [][]Time
	// pairCredLA[s][d] is the min lookahead+creditLA over all s→d channels:
	// the earliest a credit from a delivery s has *not yet sent* can come
	// back. Without this horizon term a partition with no inbound delivery
	// channel would run unboundedly ahead of its own future credit returns.
	pairCredLA [][]Time

	samplers []*groupSampler

	started    bool
	shutdown   bool
	sequential bool

	rounds     int64
	microSteps int64
	busyTotal  time.Duration
	busyCrit   time.Duration
	evTotal    int64
	evCrit     int64
	ev0        []int64 // per-rank Events() at window start (dispatch scratch)
}

// NewGroup creates n fresh engines joined into a partition group.
func NewGroup(n int) *Group {
	if n < 1 {
		panic("sim: group needs at least one partition")
	}
	g := &Group{
		engines: make([]*Engine, n),
		workers: make([]groupWorker, n),
		next:    make([]Time, n),
		reach:   make([]Time, n),
		horizon: make([]Time, n),
		active:  make([]bool, n),
		dl:      make([]Time, n),
		ddirty:  make([][]*Channel, n),
		cdirty:  make([][]*Channel, n),
		pairLA:  make([][]Time, n),
		ev0:     make([]int64, n),
	}
	g.pairCredLA = make([][]Time, n)
	g.injSort = &injSorter{g}
	for i := range g.engines {
		g.engines[i] = NewEngine()
		g.workers[i] = groupWorker{start: make(chan Time), done: make(chan windowResult)}
		g.pairLA[i] = make([]Time, n)
		g.pairCredLA[i] = make([]Time, n)
		for j := range g.pairLA[i] {
			g.pairLA[i][j] = Forever
			g.pairCredLA[i][j] = Forever
		}
	}
	return g
}

// Len reports the partition count.
func (g *Group) Len() int { return len(g.engines) }

// Engine returns partition rank i's engine.
func (g *Group) Engine(i int) *Engine { return g.engines[i] }

// Rounds reports how many barrier rounds Run has executed — the partition
// overhead metric benchmarks track.
func (g *Group) Rounds() int64 { return g.rounds }

// MicroSteps reports how many rounds degenerated to single-instant steps
// (cross-partition activity dense enough that no window fit the lookahead).
func (g *Group) MicroSteps() int64 { return g.microSteps }

// BusyTime reports the summed wall-clock cost of every window run so far —
// the total engine work, regardless of how many cores overlapped it.
func (g *Group) BusyTime() time.Duration { return g.busyTotal }

// CriticalPath reports the summed per-round *maximum* window cost: the
// engine-work wall clock of a run with at least Len() free cores, since
// windows within a round are independent. On a machine with fewer cores the
// measured wall time exceeds this; wall - BusyTime + CriticalPath projects
// the fully parallel run time (barrier overhead included unchanged). Exact
// only under SetSequential — overlapping workers also clock time spent
// descheduled, inflating both totals.
func (g *Group) CriticalPath() time.Duration { return g.busyCrit }

// EventsTotal reports how many events fired across all partitions, and
// EventsCritical the summed per-round maximum — the event count on the
// critical path. Unlike the wall-clock pair above, both are deterministic
// (a replay of the same workload yields the same counts, sequential or
// concurrent), so EventsTotal/EventsCritical measures the workload's
// available parallelism free of scheduler noise: a preemption inside one
// rank's window inflates that round's wall-clock maximum but cannot change
// how many events the window executed.
func (g *Group) EventsTotal() int64 { return g.evTotal }

// EventsCritical — see EventsTotal.
func (g *Group) EventsCritical() int64 { return g.evCrit }

// SetSequential makes Run execute windows one partition at a time on the
// coordinator goroutine instead of concurrently on workers. Results are
// identical (windows within a round are independent); the point is exact
// BusyTime/CriticalPath accounting on machines with fewer cores than
// partitions, where overlapped workers cannot time themselves honestly.
func (g *Group) SetSequential(on bool) { g.sequential = on }

// Connect registers the channel for one cut-link direction: deliveries run
// on dst's engine, credits return to src's. lookahead must be positive (a
// zero-latency cut admits no conservative window); creditLA may be zero.
func (g *Group) Connect(src, dst int, lookahead, creditLA Time) *Channel {
	if g.started {
		panic("sim: Connect after Group.Run")
	}
	if src == dst {
		panic("sim: cross-partition channel within one partition")
	}
	if lookahead <= 0 {
		panic("sim: cross-partition lookahead must be positive")
	}
	if creditLA < 0 {
		panic("sim: negative credit lookahead")
	}
	c := &Channel{
		g: g, idx: len(g.channels), src: src, dst: dst,
		lookahead: lookahead, creditLA: creditLA,
		srcEng: g.engines[src], dstEng: g.engines[dst],
	}
	g.channels = append(g.channels, c)
	if lookahead < g.pairLA[src][dst] {
		g.pairLA[src][dst] = lookahead
	}
	if cla := satAdd(lookahead, creditLA); cla < g.pairCredLA[src][dst] {
		g.pairCredLA[src][dst] = cla
	}
	return c
}

// StartSampler begins sampling fn at fixed virtual intervals, like
// Engine.StartSampler but synchronized to barrier epochs: every engine is
// held below the next epoch, so each sample observes the whole fabric at one
// coherent instant. fn runs on the coordinator goroutine and may read state
// from any partition.
func (g *Group) StartSampler(interval Time, fn func() float64) *Sampler {
	if interval <= 0 {
		panic("sim: sampler interval must be positive")
	}
	s := &Sampler{interval: interval}
	g.samplers = append(g.samplers, &groupSampler{s: s, fn: fn, next: interval})
	return s
}

// satAdd adds a non-negative delta to a time, saturating at Forever.
func satAdd(a, b Time) Time {
	if a >= Forever-b {
		return Forever
	}
	return a + b
}

// Run executes the partitioned simulation until every engine drains and no
// cross-partition message is pending, and returns the latest engine clock.
// Panics raised inside partition processes re-raise here (lowest rank first
// when several windows fail), matching Engine.Run.
func (g *Group) Run() Time {
	g.startWorkers()
	for {
		g.injectAll()
		T := g.minNext()
		if T == Forever {
			if !g.drainEpoch() {
				break
			}
			continue
		}
		epochCap := g.fireSamplers(T)
		g.rounds++
		g.computeHorizons()
		if !g.runRound(epochCap) {
			g.microStep(T)
		}
	}
	latest := Time(0)
	for _, e := range g.engines {
		if e.now > latest {
			latest = e.now
		}
	}
	return latest
}

// Shutdown unwinds every partition's processes and stops the worker
// goroutines; the group must not be used afterwards.
func (g *Group) Shutdown() {
	if g.shutdown {
		return
	}
	g.shutdown = true
	for i := range g.workers {
		close(g.workers[i].start)
	}
	for _, e := range g.engines {
		e.Shutdown()
	}
}

func (g *Group) startWorkers() {
	if g.started {
		return
	}
	g.started = true
	for i := range g.workers {
		go func(rank int, e *Engine, w groupWorker) {
			for deadline := range w.start {
				t0 := time.Now()
				pp := runWindowRecover(e, rank, deadline)
				w.done <- windowResult{busy: time.Since(t0), pp: pp}
			}
		}(i, g.engines[i], g.workers[i])
	}
}

// runWindowRecover runs one window, converting a propagated process panic
// into a value the coordinator re-raises on its own goroutine.
func runWindowRecover(e *Engine, rank int, deadline Time) (pp *procPanic) {
	defer func() {
		if r := recover(); r != nil {
			if p, ok := r.(*procPanic); ok {
				pp = p
			} else {
				pp = &procPanic{proc: fmt.Sprintf("partition %d", rank), value: r}
			}
		}
	}()
	e.runWindow(deadline)
	return nil
}

// injectAll drains every channel's buffered messages into their target
// engines in deterministic (time, channel, sequence) order, maintaining
// per-channel outstanding-delivery state for the credit lookahead.
func (g *Group) injectAll() {
	g.inj = g.inj[:0]
	for r := range g.ddirty {
		for _, c := range g.ddirty[r] {
			for _, m := range c.deliv {
				g.inj = append(g.inj, injItem{at: m.at, tie: 2 * c.idx, seq: m.seq, ch: c, fn: m.fn})
			}
			c.deliv = c.deliv[:0]
		}
		g.ddirty[r] = g.ddirty[r][:0]
		for _, c := range g.cdirty[r] {
			for _, m := range c.cred {
				g.inj = append(g.inj, injItem{at: m.at, tie: 2*c.idx + 1, seq: m.seq, ch: c, cred: true, fn: m.fn})
			}
			c.cred = c.cred[:0]
		}
		g.cdirty[r] = g.cdirty[r][:0]
	}
	if len(g.inj) == 0 {
		return
	}
	// The key (at, tie, seq) is total — tie is unique per channel direction
	// and seq unique within it — so an unstable sort is already deterministic.
	sort.Sort(g.injSort)
	for i := range g.inj {
		it := &g.inj[i]
		if it.cred {
			// Credits return in delivery order: retire the oldest
			// outstanding delivery on this channel.
			it.ch.outHead++
			if it.ch.outHead == len(it.ch.outstanding) {
				it.ch.outstanding = it.ch.outstanding[:0]
				it.ch.outHead = 0
			}
			it.ch.srcEng.Schedule(it.at, it.fn)
		} else {
			// Deliveries are injected in (at, seq) order per channel, so the
			// outstanding list stays sorted by arrival.
			it.ch.outstanding = append(it.ch.outstanding, it.at)
			if !it.ch.inOutst {
				it.ch.inOutst = true
				g.outst = append(g.outst, it.ch)
			}
			it.ch.dstEng.Schedule(it.at, it.fn)
		}
		it.fn = nil
		it.ch = nil
	}
}

// minNext refreshes per-rank next-event times and returns the global minimum
// (Forever when every engine has drained).
func (g *Group) minNext() Time {
	T := Forever
	for i, e := range g.engines {
		if at, ok := e.nextEventTime(); ok {
			g.next[i] = at
			if at < T {
				T = at
			}
		} else {
			g.next[i] = Forever
		}
	}
	return T
}

// fireSamplers emits every sample epoch <= T — at an epoch, all events
// before it have executed on every partition and none at or after it have,
// so the sample is exact — and returns the next epoch (Forever when no
// sampler is live), which caps this round's window deadlines.
func (g *Group) fireSamplers(T Time) Time {
	if len(g.samplers) == 0 {
		return Forever
	}
	for {
		epoch := Forever
		for _, gs := range g.samplers {
			if !gs.s.stop && gs.next < epoch {
				epoch = gs.next
			}
		}
		if epoch > T {
			return epoch
		}
		for _, gs := range g.samplers {
			if gs.s.stop || gs.next != epoch {
				continue
			}
			v := gs.fn()
			// Like the serial sampler, Stop inside fn ends the timeline
			// *after* the current sample.
			gs.s.X = append(gs.s.X, epoch.Seconds())
			gs.s.Y = append(gs.s.Y, v)
			if gs.s.stop {
				continue
			}
			// Read the interval after fn: Decimate doubles it mid-flight.
			gs.next = satAdd(epoch, gs.s.interval)
		}
	}
}

// drainEpoch keeps live samplers' timelines going after every engine has
// drained, mirroring the serial sampler whose process holds the event queue
// open until Stop: the earliest pending epoch fires with all engine clocks
// advanced to it, so Run's return value and the timeline length match the
// serial run's. Reports false when no live sampler remains — the true end of
// the simulation.
func (g *Group) drainEpoch() bool {
	epoch := Forever
	for _, gs := range g.samplers {
		if !gs.s.stop && gs.next < epoch {
			epoch = gs.next
		}
	}
	if epoch == Forever {
		return false
	}
	for _, e := range g.engines {
		if e.now < epoch {
			e.now = epoch
		}
	}
	g.fireSamplers(epoch)
	return true
}

// computeHorizons bounds, per partition, the earliest message any other
// partition can still send it. reach[r] is first relaxed to a lower bound on
// r's earliest possible future action — its own next event, or the earliest
// message a chain of other partitions could wake it with (Bellman–Ford over
// the channel graph; stable in at most n passes since lookaheads are
// positive). horizon[i] is then the tightest inbound bound: deliveries on a
// channel can arrive no earlier than the sender's reach plus the wire
// propagation, and credits no earlier than the oldest outstanding delivery
// plus the receiver's pipeline latency — and in no case before the receiver
// acts at all.
func (g *Group) computeHorizons() {
	// Compact the outstanding-channel list: channels whose last credit came
	// back leave it here, the one coordinator-side sweep point.
	keep := g.outst[:0]
	for _, c := range g.outst {
		if c.outHead < len(c.outstanding) {
			keep = append(keep, c)
		} else {
			c.inOutst = false
		}
	}
	g.outst = keep

	copy(g.reach, g.next)
	for pass := 0; pass <= len(g.engines); pass++ {
		changed := false
		// Delivery relaxation needs only the min lookahead per rank pair,
		// not the channels themselves.
		for s := range g.pairLA {
			for d, la := range g.pairLA[s] {
				if la == Forever {
					continue
				}
				if b := satAdd(g.reach[s], la); b < g.reach[d] {
					g.reach[d] = b
					changed = true
				}
			}
		}
		for _, c := range g.outst {
			b := satAdd(c.outstanding[c.outHead], c.creditLA)
			if g.reach[c.dst] > b {
				b = g.reach[c.dst]
			}
			if b < g.reach[c.src] {
				g.reach[c.src] = b
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for i := range g.horizon {
		g.horizon[i] = Forever
	}
	for s := range g.pairLA {
		for d, la := range g.pairLA[s] {
			if la == Forever {
				continue
			}
			if b := satAdd(g.reach[s], la); b < g.horizon[d] {
				g.horizon[d] = b
			}
			// Credits from deliveries s has *not yet sent* bound s too: a
			// future send at reach[s] or later can echo a credit back no
			// earlier than the round trip's two lookaheads. Without this
			// term a partition with no inbound delivery channel would run
			// unboundedly ahead of its own credit returns.
			if b := satAdd(g.reach[s], g.pairCredLA[s][d]); b < g.horizon[s] {
				g.horizon[s] = b
			}
		}
	}
	for _, c := range g.outst {
		b := satAdd(c.outstanding[c.outHead], c.creditLA)
		if g.reach[c.dst] > b {
			b = g.reach[c.dst]
		}
		if b < g.horizon[c.src] {
			g.horizon[c.src] = b
		}
	}
}

// runRound starts a window on every partition whose next event lies strictly
// inside its horizon (deadline horizon-1, further capped below the next
// sample epoch), waits for all of them, and reports whether any partition
// ran. Partitions run concurrently; the horizon guarantees no message can
// arrive inside a window.
func (g *Group) runRound(epochCap Time) bool {
	ran := false
	for i := range g.engines {
		deadline := g.horizon[i] - 1
		if epochCap-1 < deadline {
			deadline = epochCap - 1
		}
		g.dl[i] = deadline
		g.active[i] = g.next[i] <= deadline
		ran = ran || g.active[i]
	}
	if !ran {
		return false
	}
	g.dispatch()
	return true
}

// microStep resolves a round where no window fit: every partition holding an
// event at the global minimum T settles that single instant. Messages
// produced at T inject at T — never into any engine's past, because an
// engine that previously ran ahead of T did so only under a horizon proving
// no such message could exist.
func (g *Group) microStep(T Time) {
	g.microSteps++
	for i := range g.engines {
		g.dl[i] = T
		g.active[i] = g.next[i] == T
	}
	g.dispatch()
}

// dispatch runs every active rank's window at its g.dl deadline —
// concurrently on the workers, or inline in sequential mode — then re-raises
// the lowest-ranked window panic on the coordinator goroutine.
func (g *Group) dispatch() {
	var fatal *procPanic
	var crit time.Duration
	var evCrit int64
	if g.sequential {
		for i := range g.engines {
			if !g.active[i] {
				continue
			}
			ev0 := g.engines[i].Events()
			t0 := time.Now()
			pp := runWindowRecover(g.engines[i], i, g.dl[i])
			busy := time.Since(t0)
			g.busyTotal += busy
			if busy > crit {
				crit = busy
			}
			dev := g.engines[i].Events() - ev0
			g.evTotal += dev
			if dev > evCrit {
				evCrit = dev
			}
			if pp != nil && fatal == nil {
				fatal = pp
			}
		}
	} else {
		// Events() is read on the coordinator while each engine is quiescent:
		// before its start send and after its done receive, both of which
		// order memory with the worker goroutine.
		for i := range g.engines {
			if g.active[i] {
				g.ev0[i] = g.engines[i].Events()
				g.workers[i].start <- g.dl[i]
			}
		}
		for i := range g.engines {
			if !g.active[i] {
				continue
			}
			r := <-g.workers[i].done
			g.busyTotal += r.busy
			if r.busy > crit {
				crit = r.busy
			}
			dev := g.engines[i].Events() - g.ev0[i]
			g.evTotal += dev
			if dev > evCrit {
				evCrit = dev
			}
			if r.pp != nil && fatal == nil {
				fatal = r.pp
			}
		}
	}
	g.busyCrit += crit
	g.evCrit += evCrit
	if fatal != nil {
		panic(fatal)
	}
}
