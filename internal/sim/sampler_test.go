package sim

import "testing"

func TestSamplerStopWakesImmediately(t *testing.T) {
	// A stopped sampler must not doze through one more interval: Stop
	// unwinds the sampler process on the spot and cancels its pending
	// timer, so the event queue drains at the workload's end rather than
	// one sampling interval later.
	e := NewEngine()
	s := StartSampler(e, Second, func() float64 { return 1 })
	e.Spawn("work", func(p *Proc) {
		p.Sleep(30 * Microsecond)
		s.Stop()
	})
	end := e.Run()
	if end != 30*Microsecond {
		t.Fatalf("Run ended at %v, want 30us — the cancelled timer advanced the clock", end)
	}
	if s.N() != 0 {
		t.Fatalf("sampler stopped mid-interval took %d samples, want 0", s.N())
	}
	if e.LiveProcs() != 0 {
		t.Fatalf("sampler leaked a proc")
	}
}

func TestSamplerTicksAtInterval(t *testing.T) {
	e := NewEngine()
	v := 0.0
	s := StartSampler(e, 10*Microsecond, func() float64 { return v })
	e.Spawn("work", func(p *Proc) {
		for i := 0; i < 4; i++ {
			p.Sleep(10 * Microsecond)
			v++
		}
		p.Sleep(5 * Microsecond)
		s.Stop()
	})
	e.Run()
	if s.N() != 4 {
		t.Fatalf("samples = %d, want 4", s.N())
	}
	for i, x := range s.X {
		want := (Time(i+1) * 10 * Microsecond).Seconds()
		if x != want {
			t.Fatalf("sample %d at %gs, want %gs", i, x, want)
		}
	}
}

func TestSamplerStopFromCallback(t *testing.T) {
	// fn may Stop its own sampler — the timeline cap used by the metrics
	// layer. The sample that triggered the stop is still recorded.
	e := NewEngine()
	var s *Sampler
	n := 0
	s = StartSampler(e, Microsecond, func() float64 {
		n++
		if n == 3 {
			s.Stop()
		}
		return float64(n)
	})
	e.Spawn("work", func(p *Proc) { p.Sleep(Millisecond) })
	e.Run()
	if s.N() != 3 {
		t.Fatalf("capped sampler took %d samples, want 3", s.N())
	}
	if e.LiveProcs() != 0 {
		t.Fatalf("sampler leaked a proc")
	}
}

func TestSamplerDecimate(t *testing.T) {
	// Decimating from the sampling fn halves the series in place, doubles
	// the interval, and keeps sampling — the timeline cap behaviour. The
	// kept samples land exactly on the doubled grid, as if the sampler had
	// run at the coarser interval all along.
	const cap = 8
	e := NewEngine()
	var s *Sampler
	s = StartSampler(e, 10*Microsecond, func() float64 {
		v := float64(s.Interval())
		if s.N() >= cap-1 {
			s.Decimate()
		}
		return v
	})
	e.Spawn("work", func(p *Proc) {
		p.Sleep(400 * Microsecond)
		s.Stop()
	})
	e.Run()
	if s.N() >= cap {
		t.Fatalf("decimating sampler holds %d samples, want < %d", s.N(), cap)
	}
	if s.Interval() <= 10*Microsecond {
		t.Fatalf("interval = %v after decimation, want > 10us", s.Interval())
	}
	// X must be strictly increasing and evenly spaced at the final interval
	// over the tail (all samples re-land on the doubled grid each round).
	for i := 1; i < s.N(); i++ {
		if s.X[i] <= s.X[i-1] {
			t.Fatalf("X not increasing at %d: %v", i, s.X)
		}
	}
	step := s.Interval().Seconds()
	for i := 1; i < s.N(); i++ {
		if d := s.X[i] - s.X[i-1]; d < step*0.999 || d > step*1.001 {
			t.Fatalf("spacing at %d = %gs, want %gs (X=%v)", i, d, step, s.X)
		}
	}
	// The fn above records the interval each sample was taken with; the
	// surviving samples' values must match intervals that were live then
	// (powers of two times the base).
	for i, y := range s.Y {
		iv := Time(y)
		ok := false
		for k := 10 * Microsecond; k <= s.Interval(); k *= 2 {
			if iv == k {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("sample %d recorded interval %v, not a power-of-two multiple of 10us", i, iv)
		}
	}
}

func TestSamplerStopBeforeRun(t *testing.T) {
	// Stopping before the engine ever runs is a no-op start: no samples,
	// no leaked proc, no events left behind.
	e := NewEngine()
	s := StartSampler(e, Microsecond, func() float64 { return 0 })
	s.Stop()
	e.Run()
	if s.N() != 0 {
		t.Fatalf("samples = %d, want 0", s.N())
	}
	if e.LiveProcs() != 0 {
		t.Fatalf("sampler leaked a proc")
	}
}
