package sim

import (
	"fmt"
	"sync/atomic"
)

// event is a scheduled callback. Events with equal times fire in scheduling
// order (seq), which keeps the simulation deterministic.
//
// Events live in the engine's pool and are addressed by index, never by
// pointer: the pool is a single slice that grows to the simulation's
// high-water mark and is then recycled through a free list, so steady-state
// scheduling does not allocate. An event runs either a plain callback (fn)
// or resumes a process (proc); the proc form exists so the process wake
// paths (Sleep, unpark, Spawn) need no per-wake closure.
type event struct {
	at  Time
	seq int64
	fn  func()
	// proc, when non-nil, is stepped instead of calling fn.
	proc *Proc
	// heapIdx is the event's position in the engine's heap, heapNone once
	// popped or freed, or heapRunq while the event sits in the run queue.
	heapIdx int32
	// next links free pool slots.
	next int32
}

const (
	heapNone = -1
	heapRunq = -2
)

// timer identifies a scheduled event so in-package callers (the sampler) can
// cancel it. The seq field guards against the pool slot having been recycled
// for a newer event.
type timer struct {
	idx int32
	seq int64
}

// Engine is a discrete-event simulator.
//
// Concurrency contract: a single Engine is not safe for concurrent use —
// all interaction must come from the engine's own callbacks or from the
// single currently-running Proc. Distinct Engines share no mutable state
// and may run on separate goroutines simultaneously (the parallel
// experiment harness relies on this); the only package-level hook,
// SetDefaultTracer, is atomic. A tracer function installed while engines
// run in parallel is invoked from every engine's goroutine and must do its
// own locking.
//
// Scheduling model: exactly one goroutine is ever active — either the
// goroutine that called Run (the "main" driver) or one process goroutine.
// There is no dedicated engine goroutine that every context switch must
// bounce through: a process that blocks keeps driving the event loop
// inline, so a process that wakes itself (the dominant pattern — Sleep,
// zero-delay yields, self-service queues) pays no channel operation at all,
// and a switch to a different process is a single token handoff instead of
// a yield-to-engine plus a resume.
type Engine struct {
	now Time

	// pool holds every event slot ever allocated by this engine; free heads
	// the list of recycled slots (-1 when empty).
	pool []event
	free int32

	// heap is a 4-ary min-heap of pool indices ordered by (at, seq). The
	// wide fan-out halves the tree depth of the old binary heap and keeps
	// sift-down's child scan inside one cache line of indices.
	heap []int32

	// runq is the same-time FIFO: events scheduled at the current instant —
	// the dominant case, from unpark, Proc wake-ups and zero-delay sleeps —
	// bypass the heap entirely. Entries before runqHead have been consumed.
	// Appending in seq order keeps the queue (at, seq)-sorted, so its head
	// competes with the heap top by a single comparison.
	runq     []int32
	runqHead int

	seq   int64
	fired int64

	// settleq holds end-of-instant hooks (Settle). A hook is promoted to an
	// ordinary event at e.now the moment the current instant quiesces — no
	// pending event remains at the current time — so hooks always run after
	// every event of their instant, in registration order, and always before
	// the clock advances or a run phase returns. Entries before settleHead
	// have been promoted; the backing array is recycled once drained.
	settleq    []func()
	settleHead int

	// procs counts live (spawned, not yet finished) processes, for leak
	// detection in tests.
	procs int
	// all records every spawned process so Shutdown can unwind the
	// goroutines of perpetual servers (switch port loops and the like).
	all []*Proc

	// fatal holds a panic raised inside a process goroutine, re-raised from
	// Run by the main driver when control returns to it.
	fatal *procPanic

	// mainWake resumes the Run caller when a phase ends (queue drained,
	// deadline reached, Stop, or a fatal process panic) while a process
	// goroutine was driving.
	mainWake chan struct{}

	// deadline bounds the current Run/RunUntil phase; every driver honours
	// it, whichever goroutine happens to be running the loop.
	deadline Time

	stopped bool
	// shuttingDown makes finishing processes hand control straight back to
	// Shutdown instead of driving the remaining event queue.
	shuttingDown bool

	tracing bool
	sink    TraceSink
}

// TraceEvent is one typed trace record. Cat groups events for filtering
// ("packet", "handler", "cache", "disk", "generic"), Name is the event kind
// within the category ("send", "dispatch", "retire", ...), Comp names the
// emitting component ("sw0", "h3.cpu"), and Detail carries the rest as
// preformatted text.
type TraceEvent struct {
	At     Time
	Cat    string
	Name   string
	Comp   string
	Detail string
}

// String renders the event as the legacy "comp: detail" trace-line body.
func (ev TraceEvent) String() string {
	if ev.Comp == "" {
		return ev.Detail
	}
	return ev.Comp + ": " + ev.Detail
}

// TraceSink consumes typed trace events. A sink installed while engines run
// in parallel is invoked from every engine's goroutine and must do its own
// locking.
type TraceSink func(ev TraceEvent)

// defaultSink, when set, is installed on every new engine — the hook the
// CLI's -trace/-trace-out flags use to observe experiments that build their
// own engines internally. Held behind an atomic pointer so engines can be
// constructed concurrently with SetDefaultTracer/SetDefaultTraceSink.
var defaultSink atomic.Pointer[TraceSink]

// SetDefaultTracer installs (or clears, with nil) a legacy string tracer
// for all engines created afterwards. Safe to call concurrently with
// NewEngine; the tracer itself must be safe for concurrent use if engines
// run in parallel.
func SetDefaultTracer(fn func(t Time, msg string)) {
	if fn == nil {
		defaultSink.Store(nil)
		return
	}
	SetDefaultTraceSink(func(ev TraceEvent) { fn(ev.At, ev.String()) })
}

// SetDefaultTraceSink installs (or clears, with nil) a typed trace sink for
// all engines created afterwards.
func SetDefaultTraceSink(sink TraceSink) {
	if sink == nil {
		defaultSink.Store(nil)
		return
	}
	defaultSink.Store(&sink)
}

// NewEngine returns an engine at time zero with an empty event queue.
func NewEngine() *Engine {
	e := &Engine{free: heapNone, mainWake: make(chan struct{})}
	if sink := defaultSink.Load(); sink != nil {
		e.SetTraceSink(*sink)
	}
	return e
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// LiveProcs reports how many spawned processes have not yet returned.
func (e *Engine) LiveProcs() int { return e.procs }

// Events reports how many events have fired — the simulation's work metric.
func (e *Engine) Events() int64 { return e.fired }

// pending reports how many events are queued (heap plus live run queue).
func (e *Engine) pending() int { return len(e.heap) + len(e.runq) - e.runqHead }

// alloc takes a pool slot from the free list, growing the pool only until
// the simulation reaches its high-water mark of in-flight events.
func (e *Engine) alloc() int32 {
	if idx := e.free; idx != heapNone {
		e.free = e.pool[idx].next
		return idx
	}
	e.pool = append(e.pool, event{})
	return int32(len(e.pool) - 1)
}

// release returns a fired or cancelled event's slot to the free list. The
// callback reference is dropped so the pool does not pin dead closures, and
// seq is zeroed so stale timers can never match a recycled slot.
func (e *Engine) release(idx int32) {
	ev := &e.pool[idx]
	ev.fn = nil
	ev.proc = nil
	ev.seq = 0
	ev.heapIdx = heapNone
	ev.next = e.free
	e.free = idx
}

// Schedule runs fn at the given absolute time, which must not be in the
// past.
func (e *Engine) Schedule(at Time, fn func()) {
	e.schedule(at, fn, nil)
}

// schedule queues a callback or a process wake-up and returns a timer handle
// so in-package callers (the sampler) can cancel it.
func (e *Engine) schedule(at Time, fn func(), proc *Proc) timer {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past (%v < %v)", at, e.now))
	}
	e.seq++
	idx := e.alloc()
	ev := &e.pool[idx]
	ev.at = at
	ev.seq = e.seq
	ev.fn = fn
	ev.proc = proc
	// Same-time events take the FIFO run queue instead of the heap. The
	// tail check keeps the queue (at, seq)-sorted even if the clock was
	// rewound by a Stop/RunUntil edge case, so pop order is always the
	// global (at, seq) minimum — identical to the old single-heap order.
	if at == e.now && (e.runqHead == len(e.runq) || e.pool[e.runq[len(e.runq)-1]].at <= at) {
		ev.heapIdx = heapRunq
		e.runq = append(e.runq, idx)
	} else {
		e.heapPush(idx)
	}
	return timer{idx: idx, seq: e.seq}
}

// Settle registers fn to run at the end of the current instant: after every
// event scheduled at the engine's current time has fired — whatever order
// those events were inserted in — and before the clock advances past it or
// the current run phase returns. Hooks run in registration order, and a
// hook's own same-instant effects (events it schedules at the current time,
// processes it unparks) complete before the next hook runs. The settle
// arbiter (Arbiter) uses this to make same-instant contention a pure
// function of simulated state rather than of event-insertion order.
func (e *Engine) Settle(fn func()) {
	e.settleq = append(e.settleq, fn)
}

// promoteSettle turns the oldest registered settle hook into an ordinary
// event at the current instant. Only popNext calls it, and only once the
// instant has quiesced, so the promoted event is the next to fire.
func (e *Engine) promoteSettle() {
	fn := e.settleq[e.settleHead]
	e.settleq[e.settleHead] = nil
	e.settleHead++
	if e.settleHead == len(e.settleq) {
		e.settleq = e.settleq[:0]
		e.settleHead = 0
	}
	e.schedule(e.now, fn, nil)
}

// cancel discards a queued event: heap entries are removed in place (no
// tombstone lingers to be sifted through later), run-queue entries are
// blanked and reclaimed when their turn comes. Cancelling an event that has
// already fired — or whose slot was recycled — is a no-op.
func (e *Engine) cancel(t timer) {
	if t.idx < 0 || int(t.idx) >= len(e.pool) {
		return
	}
	ev := &e.pool[t.idx]
	if ev.seq != t.seq {
		return
	}
	if ev.heapIdx >= 0 {
		e.heapRemove(int(ev.heapIdx))
		e.release(t.idx)
		return
	}
	if ev.heapIdx == heapRunq {
		ev.fn = nil
		ev.proc = nil
	}
}

// After runs fn after the given delay.
func (e *Engine) After(d Time, fn func()) { e.Schedule(e.now+d, fn) }

// Stop makes Run return after the current event completes. Pending events
// remain queued.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue is empty or Stop is called, and
// returns the final simulation time.
func (e *Engine) Run() Time {
	e.stopped = false
	e.deadline = Forever
	e.driveMain()
	return e.now
}

// RunUntil executes events with timestamps <= deadline and then advances the
// clock to the deadline (if the simulation did not already pass it).
func (e *Engine) RunUntil(deadline Time) Time {
	e.stopped = false
	e.deadline = deadline
	e.driveMain()
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// runWindow executes events with timestamps <= deadline, leaving the clock at
// the last executed event rather than advancing it to the deadline. The
// partition Group runs bounded lookahead windows with it: virtual time must
// reflect only executed work, because cross-partition messages may still be
// injected afterwards at times before the deadline.
func (e *Engine) runWindow(deadline Time) {
	e.stopped = false
	e.deadline = deadline
	e.driveMain()
}

// nextEventTime reports the earliest pending event's timestamp. Cancelled
// run-queue entries at the head are reclaimed on the way, so dead timers
// cannot masquerade as pending work.
func (e *Engine) nextEventTime() (Time, bool) {
	for e.runqHead < len(e.runq) {
		idx := e.runq[e.runqHead]
		ev := &e.pool[idx]
		if ev.fn != nil || ev.proc != nil {
			break
		}
		e.runqHead++
		if e.runqHead == len(e.runq) {
			e.runq = e.runq[:0]
			e.runqHead = 0
		}
		e.release(idx)
	}
	best, ok := Time(0), false
	if e.runqHead < len(e.runq) {
		best, ok = e.pool[e.runq[e.runqHead]].at, true
	}
	if len(e.heap) > 0 {
		if at := e.pool[e.heap[0]].at; !ok || at < best {
			best, ok = at, true
		}
	}
	return best, ok
}

// driveMain is the Run caller's drive loop. It fires callbacks inline; when
// an event resumes a process it hands that goroutine the control token and
// parks until a driver — whichever process goroutine holds control when the
// phase ends — wakes it back up.
func (e *Engine) driveMain() {
	for {
		if e.fatal != nil {
			pp := e.fatal
			e.fatal = nil
			panic(pp)
		}
		if e.stopped {
			return
		}
		idx, ok := e.popNext()
		if !ok {
			return
		}
		fn, proc := e.take(idx)
		if proc != nil {
			proc.handoff <- struct{}{}
			<-e.mainWake
			continue
		}
		fn()
	}
}

// popNext removes and returns the earliest pending event within the phase
// deadline. The earliest event is the (at, seq) minimum of the heap top and
// the run-queue head; both structures order their own contents, so choosing
// between them is one comparison.
func (e *Engine) popNext() (int32, bool) {
	for {
		// End-of-instant settle: once no event remains at the current time,
		// promote pending hooks (oldest first) before letting the clock move
		// or the phase end. A promoted hook lands in the run queue at e.now,
		// so it is popped immediately — and any same-instant work it creates
		// drains before the next hook is promoted.
		if e.settleHead < len(e.settleq) {
			if at, ok := e.nextEventTime(); !ok || at > e.now {
				e.promoteSettle()
				continue
			}
		}
		var idx int32
		if e.runqHead < len(e.runq) {
			idx = e.runq[e.runqHead]
			if len(e.heap) > 0 && e.eventLess(e.heap[0], idx) {
				if e.pool[e.heap[0]].at > e.deadline {
					return 0, false
				}
				idx = e.heapPop()
			} else {
				if e.pool[idx].at > e.deadline {
					return 0, false
				}
				e.runqHead++
				if e.runqHead == len(e.runq) {
					e.runq = e.runq[:0]
					e.runqHead = 0
				}
			}
		} else if len(e.heap) > 0 {
			if e.pool[e.heap[0]].at > e.deadline {
				return 0, false
			}
			idx = e.heapPop()
		} else {
			return 0, false
		}

		ev := &e.pool[idx]
		if ev.fn == nil && ev.proc == nil { // cancelled in the run queue
			e.release(idx)
			continue
		}
		return idx, true
	}
}

// take consumes a popped event: advances the clock, counts the firing,
// recycles the pool slot and returns the action to perform.
func (e *Engine) take(idx int32) (fn func(), proc *Proc) {
	ev := &e.pool[idx]
	e.now = ev.at
	e.fired++
	fn, proc = ev.fn, ev.proc
	e.release(idx)
	return fn, proc
}

// exitDrive continues the event loop on a process goroutine whose function
// has returned (or panicked). The goroutine drives until control belongs
// somewhere else — another process, or the Run caller when the phase is over
// or a fatal panic is pending — and then exits.
func (e *Engine) exitDrive() {
	for {
		if e.fatal != nil || e.stopped || e.shuttingDown {
			e.mainWake <- struct{}{}
			return
		}
		idx, ok := e.popNext()
		if !ok {
			e.mainWake <- struct{}{}
			return
		}
		fn, proc := e.take(idx)
		if proc != nil {
			proc.handoff <- struct{}{}
			return
		}
		fn()
	}
}

// eventLess orders pool entries by (at, seq) — the simulation's total event
// order.
func (e *Engine) eventLess(a, b int32) bool {
	ea, eb := &e.pool[a], &e.pool[b]
	if ea.at != eb.at {
		return ea.at < eb.at
	}
	return ea.seq < eb.seq
}

// heapPush inserts a pool index into the 4-ary heap.
func (e *Engine) heapPush(idx int32) {
	e.heap = append(e.heap, idx)
	e.heapUp(len(e.heap) - 1)
}

// heapPop removes and returns the minimum entry.
func (e *Engine) heapPop() int32 {
	h := e.heap
	top := h[0]
	n := len(h) - 1
	last := h[n]
	e.heap = h[:n]
	if n > 0 {
		e.heap[0] = last
		e.pool[last].heapIdx = 0
		e.heapDown(0)
	}
	e.pool[top].heapIdx = heapNone
	return top
}

// heapRemove deletes the entry at heap position i (cancellation).
func (e *Engine) heapRemove(i int) {
	h := e.heap
	n := len(h) - 1
	removed := h[i]
	last := h[n]
	e.heap = h[:n]
	if i < n {
		e.heap[i] = last
		e.pool[last].heapIdx = int32(i)
		e.heapUp(e.heapDown(i))
	}
	e.pool[removed].heapIdx = heapNone
}

// heapUp sifts the entry at position i toward the root.
func (e *Engine) heapUp(i int) {
	h := e.heap
	idx := h[i]
	for i > 0 {
		parent := (i - 1) >> 2
		if !e.eventLess(idx, h[parent]) {
			break
		}
		h[i] = h[parent]
		e.pool[h[i]].heapIdx = int32(i)
		i = parent
	}
	h[i] = idx
	e.pool[idx].heapIdx = int32(i)
}

// heapDown sifts the entry at position i toward the leaves and returns its
// final position.
func (e *Engine) heapDown(i int) int {
	h := e.heap
	n := len(h)
	idx := h[i]
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		best := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if e.eventLess(h[c], h[best]) {
				best = c
			}
		}
		if !e.eventLess(h[best], idx) {
			break
		}
		h[i] = h[best]
		e.pool[h[i]].heapIdx = int32(i)
		i = best
	}
	h[i] = idx
	e.pool[idx].heapIdx = int32(i)
	return i
}

// Shutdown unwinds every still-blocked process goroutine. Call it after the
// final Run of a simulation so perpetual server processes do not leak
// goroutines; the engine must not be used afterwards.
func (e *Engine) Shutdown() {
	e.shuttingDown = true
	for _, p := range e.all {
		if !p.done {
			p.killed = true
			p.waiting = false
			// Resume the parked goroutine so it unwinds; its exit path sees
			// shuttingDown and signals back instead of driving the queue.
			p.handoff <- struct{}{}
			<-e.mainWake
		}
	}
	e.all = nil
	e.shuttingDown = false
}

// SetTracer installs a legacy string trace sink; nil disables tracing.
// Typed events reach fn rendered as "comp: detail" lines, so existing
// consumers keep seeing the familiar format.
func (e *Engine) SetTracer(fn func(t Time, msg string)) {
	if fn == nil {
		e.SetTraceSink(nil)
		return
	}
	e.SetTraceSink(func(ev TraceEvent) { fn(ev.At, ev.String()) })
}

// SetTraceSink installs a typed trace sink; nil disables tracing.
func (e *Engine) SetTraceSink(sink TraceSink) {
	e.sink = sink
	e.tracing = sink != nil
}

// Tracing reports whether a trace sink is installed. Hot paths should
// check it before building event arguments:
//
//	if eng.Tracing() {
//		eng.Emit("packet", "send", name, fmt.Sprintf(...))
//	}
func (e *Engine) Tracing() bool { return e.tracing }

// Emit delivers a typed trace event at the current simulated time. The
// Detail formatting cost is on the caller, so guard call sites with
// Tracing().
func (e *Engine) Emit(cat, name, comp, detail string) {
	if e.tracing {
		e.sink(TraceEvent{At: e.now, Cat: cat, Name: name, Comp: comp, Detail: detail})
	}
}

// Tracef emits an untyped ("generic") trace line if tracing is enabled.
func (e *Engine) Tracef(format string, args ...any) {
	if e.tracing {
		e.sink(TraceEvent{At: e.now, Cat: "generic", Detail: fmt.Sprintf(format, args...)})
	}
}
