package sim

import (
	"container/heap"
	"fmt"
	"sync/atomic"
)

// event is a scheduled callback. Events with equal times fire in scheduling
// order (seq), which keeps the simulation deterministic.
type event struct {
	at  Time
	seq int64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulator.
//
// Concurrency contract: a single Engine is not safe for concurrent use —
// all interaction must come from the engine's own callbacks or from the
// single currently-running Proc. Distinct Engines share no mutable state
// and may run on separate goroutines simultaneously (the parallel
// experiment harness relies on this); the only package-level hook,
// SetDefaultTracer, is atomic. A tracer function installed while engines
// run in parallel is invoked from every engine's goroutine and must do its
// own locking.
type Engine struct {
	now    Time
	events eventHeap
	seq    int64
	fired  int64

	// procs counts live (spawned, not yet finished) processes, for leak
	// detection in tests.
	procs int
	// all records every spawned process so Shutdown can unwind the
	// goroutines of perpetual servers (switch port loops and the like).
	all []*Proc

	// fatal holds a panic raised inside a process goroutine, re-raised in
	// engine context by the next step().
	fatal *procPanic

	stopped bool
	tracing bool
	sink    TraceSink
}

// TraceEvent is one typed trace record. Cat groups events for filtering
// ("packet", "handler", "cache", "disk", "generic"), Name is the event kind
// within the category ("send", "dispatch", "retire", ...), Comp names the
// emitting component ("sw0", "h3.cpu"), and Detail carries the rest as
// preformatted text.
type TraceEvent struct {
	At     Time
	Cat    string
	Name   string
	Comp   string
	Detail string
}

// String renders the event as the legacy "comp: detail" trace-line body.
func (ev TraceEvent) String() string {
	if ev.Comp == "" {
		return ev.Detail
	}
	return ev.Comp + ": " + ev.Detail
}

// TraceSink consumes typed trace events. A sink installed while engines run
// in parallel is invoked from every engine's goroutine and must do its own
// locking.
type TraceSink func(ev TraceEvent)

// defaultSink, when set, is installed on every new engine — the hook the
// CLI's -trace/-trace-out flags use to observe experiments that build their
// own engines internally. Held behind an atomic pointer so engines can be
// constructed concurrently with SetDefaultTracer/SetDefaultTraceSink.
var defaultSink atomic.Pointer[TraceSink]

// SetDefaultTracer installs (or clears, with nil) a legacy string tracer
// for all engines created afterwards. Safe to call concurrently with
// NewEngine; the tracer itself must be safe for concurrent use if engines
// run in parallel.
func SetDefaultTracer(fn func(t Time, msg string)) {
	if fn == nil {
		defaultSink.Store(nil)
		return
	}
	SetDefaultTraceSink(func(ev TraceEvent) { fn(ev.At, ev.String()) })
}

// SetDefaultTraceSink installs (or clears, with nil) a typed trace sink for
// all engines created afterwards.
func SetDefaultTraceSink(sink TraceSink) {
	if sink == nil {
		defaultSink.Store(nil)
		return
	}
	defaultSink.Store(&sink)
}

// NewEngine returns an engine at time zero with an empty event queue.
func NewEngine() *Engine {
	e := &Engine{}
	if sink := defaultSink.Load(); sink != nil {
		e.SetTraceSink(*sink)
	}
	return e
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// LiveProcs reports how many spawned processes have not yet returned.
func (e *Engine) LiveProcs() int { return e.procs }

// Events reports how many events have fired — the simulation's work metric.
func (e *Engine) Events() int64 { return e.fired }

// Schedule runs fn at the given absolute time, which must not be in the
// past.
func (e *Engine) Schedule(at Time, fn func()) {
	e.schedule(at, fn)
}

// schedule is Schedule returning the queued event, so in-package callers
// (the sampler) can cancel a pending timer.
func (e *Engine) schedule(at Time, fn func()) *event {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past (%v < %v)", at, e.now))
	}
	e.seq++
	ev := &event{at: at, seq: e.seq, fn: fn}
	heap.Push(&e.events, ev)
	return ev
}

// cancel marks a queued event dead; Run discards it without firing it or
// advancing the clock to its timestamp.
func (ev *event) cancel() { ev.fn = nil }

// After runs fn after the given delay.
func (e *Engine) After(d Time, fn func()) { e.Schedule(e.now+d, fn) }

// Stop makes Run return after the current event completes. Pending events
// remain queued.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue is empty or Stop is called, and
// returns the final simulation time.
func (e *Engine) Run() Time {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		ev := heap.Pop(&e.events).(*event)
		if ev.fn == nil { // cancelled
			continue
		}
		e.now = ev.at
		e.fired++
		ev.fn()
	}
	return e.now
}

// RunUntil executes events with timestamps <= deadline and then advances the
// clock to the deadline (if the simulation did not already pass it).
func (e *Engine) RunUntil(deadline Time) Time {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped && e.events[0].at <= deadline {
		ev := heap.Pop(&e.events).(*event)
		if ev.fn == nil { // cancelled
			continue
		}
		e.now = ev.at
		e.fired++
		ev.fn()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// Shutdown unwinds every still-blocked process goroutine. Call it after the
// final Run of a simulation so perpetual server processes do not leak
// goroutines; the engine must not be used afterwards.
func (e *Engine) Shutdown() {
	for _, p := range e.all {
		if !p.done {
			p.killed = true
			p.waiting = false
			p.step()
		}
	}
	e.all = nil
}

// SetTracer installs a legacy string trace sink; nil disables tracing.
// Typed events reach fn rendered as "comp: detail" lines, so existing
// consumers keep seeing the familiar format.
func (e *Engine) SetTracer(fn func(t Time, msg string)) {
	if fn == nil {
		e.SetTraceSink(nil)
		return
	}
	e.SetTraceSink(func(ev TraceEvent) { fn(ev.At, ev.String()) })
}

// SetTraceSink installs a typed trace sink; nil disables tracing.
func (e *Engine) SetTraceSink(sink TraceSink) {
	e.sink = sink
	e.tracing = sink != nil
}

// Tracing reports whether a trace sink is installed. Hot paths should
// check it before building event arguments:
//
//	if eng.Tracing() {
//		eng.Emit("packet", "send", name, fmt.Sprintf(...))
//	}
func (e *Engine) Tracing() bool { return e.tracing }

// Emit delivers a typed trace event at the current simulated time. The
// Detail formatting cost is on the caller, so guard call sites with
// Tracing().
func (e *Engine) Emit(cat, name, comp, detail string) {
	if e.tracing {
		e.sink(TraceEvent{At: e.now, Cat: cat, Name: name, Comp: comp, Detail: detail})
	}
}

// Tracef emits an untyped ("generic") trace line if tracing is enabled.
func (e *Engine) Tracef(format string, args ...any) {
	if e.tracing {
		e.sink(TraceEvent{At: e.now, Cat: "generic", Detail: fmt.Sprintf(format, args...)})
	}
}
