package sim

import (
	"container/heap"
	"fmt"
	"sync/atomic"
)

// event is a scheduled callback. Events with equal times fire in scheduling
// order (seq), which keeps the simulation deterministic.
type event struct {
	at  Time
	seq int64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulator.
//
// Concurrency contract: a single Engine is not safe for concurrent use —
// all interaction must come from the engine's own callbacks or from the
// single currently-running Proc. Distinct Engines share no mutable state
// and may run on separate goroutines simultaneously (the parallel
// experiment harness relies on this); the only package-level hook,
// SetDefaultTracer, is atomic. A tracer function installed while engines
// run in parallel is invoked from every engine's goroutine and must do its
// own locking.
type Engine struct {
	now    Time
	events eventHeap
	seq    int64
	fired  int64

	// procs counts live (spawned, not yet finished) processes, for leak
	// detection in tests.
	procs int
	// all records every spawned process so Shutdown can unwind the
	// goroutines of perpetual servers (switch port loops and the like).
	all []*Proc

	// fatal holds a panic raised inside a process goroutine, re-raised in
	// engine context by the next step().
	fatal *procPanic

	stopped bool
	tracing bool
	tracer  func(t Time, msg string)
}

// defaultTracer, when set, is installed on every new engine — the hook the
// CLI's -trace flag uses to observe experiments that build their own
// engines internally. Held behind an atomic pointer so engines can be
// constructed concurrently with SetDefaultTracer.
var defaultTracer atomic.Pointer[func(t Time, msg string)]

// SetDefaultTracer installs (or clears, with nil) a tracer for all engines
// created afterwards. Safe to call concurrently with NewEngine; the tracer
// itself must be safe for concurrent use if engines run in parallel.
func SetDefaultTracer(fn func(t Time, msg string)) {
	if fn == nil {
		defaultTracer.Store(nil)
		return
	}
	defaultTracer.Store(&fn)
}

// NewEngine returns an engine at time zero with an empty event queue.
func NewEngine() *Engine {
	e := &Engine{}
	if fn := defaultTracer.Load(); fn != nil {
		e.SetTracer(*fn)
	}
	return e
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// LiveProcs reports how many spawned processes have not yet returned.
func (e *Engine) LiveProcs() int { return e.procs }

// Events reports how many events have fired — the simulation's work metric.
func (e *Engine) Events() int64 { return e.fired }

// Schedule runs fn at the given absolute time, which must not be in the
// past.
func (e *Engine) Schedule(at Time, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past (%v < %v)", at, e.now))
	}
	e.seq++
	heap.Push(&e.events, &event{at: at, seq: e.seq, fn: fn})
}

// After runs fn after the given delay.
func (e *Engine) After(d Time, fn func()) { e.Schedule(e.now+d, fn) }

// Stop makes Run return after the current event completes. Pending events
// remain queued.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue is empty or Stop is called, and
// returns the final simulation time.
func (e *Engine) Run() Time {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		ev := heap.Pop(&e.events).(*event)
		e.now = ev.at
		e.fired++
		ev.fn()
	}
	return e.now
}

// RunUntil executes events with timestamps <= deadline and then advances the
// clock to the deadline (if the simulation did not already pass it).
func (e *Engine) RunUntil(deadline Time) Time {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped && e.events[0].at <= deadline {
		ev := heap.Pop(&e.events).(*event)
		e.now = ev.at
		e.fired++
		ev.fn()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// Shutdown unwinds every still-blocked process goroutine. Call it after the
// final Run of a simulation so perpetual server processes do not leak
// goroutines; the engine must not be used afterwards.
func (e *Engine) Shutdown() {
	for _, p := range e.all {
		if !p.done {
			p.killed = true
			p.waiting = false
			p.step()
		}
	}
	e.all = nil
}

// SetTracer installs a trace sink; nil disables tracing.
func (e *Engine) SetTracer(fn func(t Time, msg string)) {
	e.tracer = fn
	e.tracing = fn != nil
}

// Tracef emits a trace line if tracing is enabled.
func (e *Engine) Tracef(format string, args ...any) {
	if e.tracing {
		e.tracer(e.now, fmt.Sprintf(format, args...))
	}
}
