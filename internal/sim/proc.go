package sim

import "fmt"

// Proc is a simulated process: a goroutine that the engine resumes one at a
// time. Inside the process function, call Sleep/WaitOn/etc. to advance
// simulated time; the engine never runs two processes (or a process and an
// event callback) concurrently, so process code may touch shared simulation
// state without locks.
type Proc struct {
	eng  *Engine
	name string

	// handoff is the process's single control channel: receiving on it
	// means "your wake event just fired — you are the active goroutine,
	// continue". A blocked process does not yield to a central engine
	// goroutine; it drives the event loop itself (see block), so the
	// old resume/yield channel pair collapses to one channel and a
	// cross-process switch costs a single token send instead of a
	// yield-plus-resume.
	handoff chan struct{}

	done bool

	// waiting is true while the process is parked on a condition; the
	// synchronization primitives in this package wake it via unpark.
	waiting bool

	// killed asks the process to unwind at its next block point; see
	// Engine.Shutdown.
	killed bool
}

// errKilled unwinds a process goroutine during Engine.Shutdown.
type killedError struct{}

func (killedError) Error() string { return "sim: proc killed by Shutdown" }

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Name returns the debug name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Now returns the current simulated time.
func (p *Proc) Now() Time { return p.eng.now }

// Done reports whether the process function has returned.
func (p *Proc) Done() bool { return p.done }

// Spawn creates a process running fn, starting at the current simulated
// time. fn runs on its own goroutine but only while the engine is paused, so
// it may freely use the engine and other simulation objects.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	return e.SpawnAt(e.now, name, fn)
}

// SpawnAt is like Spawn but the process begins at the given absolute time.
func (e *Engine) SpawnAt(at Time, name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		eng:     e,
		name:    name,
		handoff: make(chan struct{}),
	}
	e.procs++
	e.all = append(e.all, p)
	go func() {
		<-p.handoff
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(killedError); !ok {
					// Surface the panic in the Run caller: exitDrive hands
					// control back and driveMain re-raises, so a handler
					// bug fails the test instead of killing the process.
					e.fatal = &procPanic{proc: p.name, value: r}
				}
			}
			p.done = true
			e.procs--
			// This goroutine still holds the control token: keep the event
			// loop moving until control belongs elsewhere, then exit.
			e.exitDrive()
		}()
		if p.killed {
			panic(killedError{})
		}
		fn(p)
	}()
	// The wake event carries the proc itself rather than a closure, so
	// spawning (and every later sleep/unpark) costs no per-event allocation.
	e.schedule(at, nil, p)
	return p
}

// procPanic wraps a panic raised inside a process goroutine.
type procPanic struct {
	proc  string
	value any
}

func (pp *procPanic) Error() string {
	return fmt.Sprintf("sim: proc %q panicked: %v", pp.proc, pp.value)
}

// block parks the process until its next wake event fires. Rather than
// yielding to a central engine goroutine, the blocking process drives the
// event loop itself: if the next event is its own wake-up — the dominant
// case — it simply continues, with no channel operation or goroutine switch
// at all. If the next event resumes another process, the token is handed
// straight to it (one send); and when the phase ends the Run caller is woken
// instead. It must be called from the process goroutine.
func (p *Proc) block() {
	e := p.eng
	for {
		if e.fatal != nil || e.stopped {
			e.mainWake <- struct{}{}
			<-p.handoff
			break
		}
		idx, ok := e.popNext()
		if !ok {
			e.mainWake <- struct{}{}
			<-p.handoff
			break
		}
		fn, proc := e.take(idx)
		if proc == p {
			break
		}
		if proc != nil {
			proc.handoff <- struct{}{}
			<-p.handoff
			break
		}
		fn()
	}
	if p.killed {
		panic(killedError{})
	}
}

// Sleep suspends the process for d simulated time (d <= 0 is a no-op that
// still yields to same-time events scheduled earlier).
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative sleep %v in %s", d, p.name))
	}
	p.eng.schedule(p.eng.now+d, nil, p)
	p.block()
}

// SleepUntil suspends the process until the given absolute time; times in
// the past panic.
func (p *Proc) SleepUntil(at Time) {
	if at < p.eng.now {
		panic(fmt.Sprintf("sim: SleepUntil into the past (%v < %v) in %s", at, p.eng.now, p.name))
	}
	p.eng.schedule(at, nil, p)
	p.block()
}

// park blocks the process with no scheduled wake-up; something must later
// call unpark. Used by the synchronization primitives in this package.
func (p *Proc) park() {
	p.waiting = true
	p.block()
}

// unpark schedules a parked process to continue at the current time. It is
// safe to call from engine or process context.
func (p *Proc) unpark() {
	if !p.waiting {
		panic("sim: unpark of non-waiting proc " + p.name)
	}
	p.waiting = false
	p.eng.schedule(p.eng.now, nil, p)
}

// unparkIfWaiting is unpark for conditions whose waiters re-check in a loop:
// a process that is already scheduled to run will see the new state anyway,
// so a second wake-up is a no-op rather than an error.
func (p *Proc) unparkIfWaiting() {
	if p.waiting {
		p.unpark()
	}
}
