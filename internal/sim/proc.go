package sim

import "fmt"

// Proc is a simulated process: a goroutine that the engine resumes one at a
// time. Inside the process function, call Sleep/WaitOn/etc. to advance
// simulated time; the engine never runs two processes (or a process and an
// event callback) concurrently, so process code may touch shared simulation
// state without locks.
type Proc struct {
	eng    *Engine
	name   string
	resume chan struct{}
	yield  chan struct{}
	done   bool

	// waiting is true while the process is parked on a condition; the
	// synchronization primitives in this package wake it via unpark.
	waiting bool

	// killed asks the process to unwind at its next block point; see
	// Engine.Shutdown.
	killed bool
}

// errKilled unwinds a process goroutine during Engine.Shutdown.
type killedError struct{}

func (killedError) Error() string { return "sim: proc killed by Shutdown" }

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Name returns the debug name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Now returns the current simulated time.
func (p *Proc) Now() Time { return p.eng.now }

// Done reports whether the process function has returned.
func (p *Proc) Done() bool { return p.done }

// Spawn creates a process running fn, starting at the current simulated
// time. fn runs on its own goroutine but only while the engine is paused, so
// it may freely use the engine and other simulation objects.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	return e.SpawnAt(e.now, name, fn)
}

// SpawnAt is like Spawn but the process begins at the given absolute time.
func (e *Engine) SpawnAt(at Time, name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		eng:    e,
		name:   name,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
	}
	e.procs++
	e.all = append(e.all, p)
	go func() {
		<-p.resume
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(killedError); !ok {
					// Surface the panic in engine context: step() re-raises
					// it from whoever called Run, so a handler bug fails
					// the test instead of killing the process.
					e.fatal = &procPanic{proc: p.name, value: r}
				}
			}
			p.done = true
			e.procs--
			p.yield <- struct{}{}
		}()
		if p.killed {
			panic(killedError{})
		}
		fn(p)
	}()
	e.Schedule(at, p.step)
	return p
}

// procPanic wraps a panic raised inside a process goroutine.
type procPanic struct {
	proc  string
	value any
}

func (pp *procPanic) Error() string {
	return fmt.Sprintf("sim: proc %q panicked: %v", pp.proc, pp.value)
}

// step transfers control from the engine to the process goroutine and waits
// for it to block or finish. It runs in engine context.
func (p *Proc) step() {
	p.resume <- struct{}{}
	<-p.yield
	if p.eng.fatal != nil {
		pp := p.eng.fatal
		p.eng.fatal = nil
		panic(pp)
	}
}

// block hands control back to the engine and parks until rescheduled. It
// must be called from the process goroutine.
func (p *Proc) block() {
	p.yield <- struct{}{}
	<-p.resume
	if p.killed {
		panic(killedError{})
	}
}

// Sleep suspends the process for d simulated time (d <= 0 is a no-op that
// still yields to same-time events scheduled earlier).
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative sleep %v in %s", d, p.name))
	}
	p.eng.Schedule(p.eng.now+d, p.step)
	p.block()
}

// SleepUntil suspends the process until the given absolute time; times in
// the past panic.
func (p *Proc) SleepUntil(at Time) {
	if at < p.eng.now {
		panic(fmt.Sprintf("sim: SleepUntil into the past (%v < %v) in %s", at, p.eng.now, p.name))
	}
	p.eng.Schedule(at, p.step)
	p.block()
}

// park blocks the process with no scheduled wake-up; something must later
// call unpark. Used by the synchronization primitives in this package.
func (p *Proc) park() {
	p.waiting = true
	p.block()
}

// unpark schedules a parked process to continue at the current time. It is
// safe to call from engine or process context.
func (p *Proc) unpark() {
	if !p.waiting {
		panic("sim: unpark of non-waiting proc " + p.name)
	}
	p.waiting = false
	p.eng.Schedule(p.eng.now, p.step)
}

// unparkIfWaiting is unpark for conditions whose waiters re-check in a loop:
// a process that is already scheduled to run will see the new state anyway,
// so a second wake-up is a no-op rather than an error.
func (p *Proc) unparkIfWaiting() {
	if p.waiting {
		p.unpark()
	}
}
