package sim

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// The Group tests pin the partitioned-engine contract from PERFORMANCE.md:
// deliveries land at exact virtual times, same-time cross-partition messages
// inject in (time, channel, sequence) order, credits retire deliveries in
// FIFO order, rounds that fit no conservative window degrade to single-
// instant micro-steps, and samplers observe the same timeline the serial
// engine would produce.

// TestGroupDeliverTiming: a message posted during a window runs on the
// receiving engine at exactly the requested virtual time, and Run returns
// the latest clock across partitions.
func TestGroupDeliverTiming(t *testing.T) {
	g := NewGroup(2)
	defer g.Shutdown()
	ch := g.Connect(0, 1, 5, 0)

	var gotAt Time = -1
	g.Engine(0).Schedule(10, func() {
		ch.Deliver(15, func() {
			gotAt = g.Engine(1).Now()
		})
	})
	end := g.Run()
	if gotAt != 15 {
		t.Fatalf("delivery ran at %d, want 15", gotAt)
	}
	if end != 15 {
		t.Fatalf("Run returned %d, want 15", end)
	}
	if g.Rounds() == 0 {
		t.Fatalf("no barrier rounds recorded")
	}
}

// TestGroupInjectionOrder: messages buffered across a barrier inject in
// (time, channel index, channel sequence) order regardless of which rank
// posted them, so the receiving engine's event order is deterministic.
func TestGroupInjectionOrder(t *testing.T) {
	g := NewGroup(3)
	defer g.Shutdown()
	chA := g.Connect(1, 0, 1, 0) // idx 0: ties ahead of chB
	chB := g.Connect(2, 0, 1, 0) // idx 1

	var order []string
	note := func(s string) func() { return func() { order = append(order, s) } }

	// Both senders buffer same-time (t=50) deliveries in one window; rank 2
	// posts before rank 1 in wall-clock terms, but channel index must win.
	g.Engine(1).Schedule(3, func() {
		chA.Deliver(50, note("a1"))
		chA.Deliver(50, note("a2"))
	})
	g.Engine(2).Schedule(2, func() {
		chB.Deliver(50, note("b1"))
		chB.Deliver(40, note("b0"))
	})
	g.Run()

	want := []string{"b0", "a1", "a2", "b1"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("injection order %v, want %v", order, want)
	}
}

// TestGroupCreditFIFO: credits retire outstanding deliveries oldest-first,
// return to the sending engine at the receiver's posting time, and a fully
// credited channel leaves the outstanding list.
func TestGroupCreditFIFO(t *testing.T) {
	g := NewGroup(2)
	defer g.Shutdown()
	ch := g.Connect(0, 1, 5, 3)

	var creditAt []Time
	g.Engine(0).Schedule(0, func() {
		ch.Deliver(10, func() {
			// Receiver frees the buffer 3 ns after arrival.
			g.Engine(1).Schedule(13, func() { ch.Credit(func() { creditAt = append(creditAt, g.Engine(0).Now()) }) })
		})
		ch.Deliver(20, func() {
			g.Engine(1).Schedule(23, func() { ch.Credit(func() { creditAt = append(creditAt, g.Engine(0).Now()) }) })
		})
	})
	g.Run()

	if want := []Time{13, 23}; !reflect.DeepEqual(creditAt, want) {
		t.Fatalf("credits returned at %v, want %v", creditAt, want)
	}
	if ch.outHead != 0 || len(ch.outstanding) != 0 {
		t.Fatalf("outstanding not drained: head=%d len=%d", ch.outHead, len(ch.outstanding))
	}
	if ch.inOutst {
		// The lazy compaction runs at the next barrier's computeHorizons;
		// after Run drains, one more compaction may be pending — accept
		// either, but the retire bookkeeping above must be exact.
		t.Logf("channel still on outstanding list (compacts at next barrier)")
	}
}

// TestGroupMicroStep constructs mutual credit blockage: both partitions hold
// a delivery at T whose channels have zero credit lookahead, so neither
// horizon admits a window and the round must settle T as a micro-step.
func TestGroupMicroStep(t *testing.T) {
	g := NewGroup(2)
	defer g.Shutdown()
	chA := g.Connect(0, 1, 5, 0)
	chB := g.Connect(1, 0, 5, 0)

	// One slot per receiving rank: the two t=5 micro-step windows execute
	// concurrently, so a shared slice would race.
	at0, at1 := Time(-1), Time(-1)
	g.Engine(0).Schedule(0, func() {
		chA.Deliver(5, func() { at1 = g.Engine(1).Now() })
	})
	g.Engine(1).Schedule(0, func() {
		chB.Deliver(5, func() { at0 = g.Engine(0).Now() })
	})
	g.Run()

	if at0 != 5 || at1 != 5 {
		t.Fatalf("deliveries at %d and %d, want 5 and 5", at0, at1)
	}
	if g.MicroSteps() == 0 {
		t.Fatalf("expected the credit-blocked round to micro-step, got %d rounds, 0 micro-steps", g.Rounds())
	}
}

// groupSamplerWorkload drives the same counter timeline through a serial
// engine and a 2-partition group (with one cross-partition delivery) and
// returns both samplers for comparison.
func groupSamplerWorkload() (serial, grouped *Sampler, cleanup func()) {
	bump := []Time{3, 7, 13, 17, 23, 27}

	// Serial: one counter, bumped at each instant, sampled every 5 ns.
	se := NewEngine()
	sc := 0
	for _, at := range bump {
		se.Schedule(at, func() { sc++ })
	}
	var ss *Sampler
	ss = StartSampler(se, 5, func() float64 {
		if ss.N() >= 5 {
			ss.Stop() // sixth sample still recorded, then the timeline ends
		}
		return float64(sc)
	})
	se.Run()

	// Grouped: the bumps split across two partitions; the t=7 bump arrives
	// as a cross-partition delivery so the sampler must not observe the
	// sending window early.
	g := NewGroup(2)
	ch := g.Connect(0, 1, 4, 0)
	c0, c1 := 0, 0
	g.Engine(0).Schedule(3, func() {
		c0++
		ch.Deliver(7, func() { c1++ })
	})
	g.Engine(0).Schedule(13, func() { c0++ })
	g.Engine(0).Schedule(23, func() { c0++ })
	g.Engine(1).Schedule(17, func() { c1++ })
	g.Engine(1).Schedule(27, func() { c1++ })
	var gs *Sampler
	gs = g.StartSampler(5, func() float64 {
		if gs.N() >= 5 {
			gs.Stop()
		}
		return float64(c0 + c1)
	})
	g.Run()
	return ss, gs, g.Shutdown
}

// TestGroupSamplerMatchesSerial: a Group sampler fires on the same epoch
// grid with the same values as the serial process-based sampler — the
// timeline seam partitioned clusters rely on.
func TestGroupSamplerMatchesSerial(t *testing.T) {
	ss, gs, cleanup := groupSamplerWorkload()
	defer cleanup()
	if ss.N() != 6 {
		t.Fatalf("serial sampler took %d samples, want 6", ss.N())
	}
	if !reflect.DeepEqual(ss.X, gs.X) || !reflect.DeepEqual(ss.Y, gs.Y) {
		t.Fatalf("timelines differ:\nserial X=%v Y=%v\ngroup  X=%v Y=%v", ss.X, ss.Y, gs.X, gs.Y)
	}
}

// TestGroupSequentialEquivalence: SetSequential runs windows inline with
// identical results, and makes the busy-time accounting live.
func TestGroupSequentialEquivalence(t *testing.T) {
	run := func(sequential bool) (Time, []Time, int64, int64) {
		g := NewGroup(2)
		defer g.Shutdown()
		g.SetSequential(sequential)
		ch := g.Connect(0, 1, 5, 2)
		var at []Time
		g.Engine(0).Schedule(1, func() {
			ch.Deliver(6, func() { at = append(at, g.Engine(1).Now()) })
			ch.Deliver(9, func() { at = append(at, g.Engine(1).Now()) })
		})
		end := g.Run()
		if sequential && (g.BusyTime() <= 0 || g.CriticalPath() <= 0 || g.CriticalPath() > g.BusyTime()) {
			t.Fatalf("sequential accounting: busy=%v crit=%v", g.BusyTime(), g.CriticalPath())
		}
		if g.EventsTotal() <= 0 || g.EventsCritical() <= 0 || g.EventsCritical() > g.EventsTotal() {
			t.Fatalf("event accounting: total=%d crit=%d", g.EventsTotal(), g.EventsCritical())
		}
		return end, at, g.EventsTotal(), g.EventsCritical()
	}
	endC, atC, evTotC, evCritC := run(false)
	endS, atS, evTotS, evCritS := run(true)
	if endC != endS || !reflect.DeepEqual(atC, atS) {
		t.Fatalf("sequential run diverged: end %d vs %d, deliveries %v vs %v", endC, endS, atC, atS)
	}
	// The wall-clock pair is timing-dependent, but the event counts must be
	// exactly reproducible in either execution mode.
	if evTotC != evTotS || evCritC != evCritS {
		t.Fatalf("event accounting diverged: total %d vs %d, critical %d vs %d", evTotC, evTotS, evCritC, evCritS)
	}
}

// TestGroupPanicPropagation: a panic inside a partition window re-raises on
// the coordinator goroutine; with several failing ranks the lowest wins, so
// the surfaced crash is deterministic.
func TestGroupPanicPropagation(t *testing.T) {
	for _, sequential := range []bool{false, true} {
		g := NewGroup(2)
		g.SetSequential(sequential)
		g.Engine(1).Schedule(5, func() { panic("boom-rank1") })
		g.Engine(0).Schedule(5, func() { panic("boom-rank0") })
		func() {
			defer g.Shutdown()
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("sequential=%v: Run did not panic", sequential)
				}
				msg := fmt.Sprint(r)
				if pp, ok := r.(*procPanic); ok {
					msg = fmt.Sprint(pp.value)
				}
				if !strings.Contains(msg, "boom-rank0") {
					t.Fatalf("sequential=%v: surfaced %q, want the rank-0 panic", sequential, msg)
				}
			}()
			g.Run()
		}()
	}
}

// TestGroupConnectValidation: the wiring mistakes that would silently break
// conservatism all panic at Connect time.
func TestGroupConnectValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("NewGroup(0)", func() { NewGroup(0) })
	g := NewGroup(2)
	defer g.Shutdown()
	mustPanic("same-rank channel", func() { g.Connect(0, 0, 5, 0) })
	mustPanic("zero lookahead", func() { g.Connect(0, 1, 0, 0) })
	mustPanic("negative credit lookahead", func() { g.Connect(0, 1, 5, -1) })
	mustPanic("zero-interval sampler", func() { g.StartSampler(0, func() float64 { return 0 }) })
	g.Run()
	mustPanic("Connect after Run", func() { g.Connect(0, 1, 5, 0) })
}

// TestGroupOneWayCreditBound pins the future-credit horizon term: on a
// channel with no reverse delivery partner, the sender must not run ahead of
// credits its own later sends will echo back. Without the bound, the sender
// window ran unboundedly ahead and late credits injected into its past.
func TestGroupOneWayCreditBound(t *testing.T) {
	g := NewGroup(2)
	defer g.Shutdown()
	ch := g.Connect(0, 1, 10, 0)
	const batch = 64
	n, sent, got := 4096, 0, 0
	ack := func() { ch.Credit(func() { got++ }) }
	var post func()
	post = func() {
		now := g.Engine(0).Now()
		for i := 0; i < batch && sent < n; i++ {
			sent++
			ch.Deliver(now+10, ack)
		}
		if sent < n {
			g.Engine(0).Schedule(now+20, post)
		}
	}
	g.Engine(0).Schedule(0, post)
	g.Run() // panics "scheduling into the past" without the bound
	if got != n {
		t.Fatalf("credits returned %d, want %d", got, n)
	}
}
