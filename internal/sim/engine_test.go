package sim

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestTimeUnits(t *testing.T) {
	if Second != 1e12*Picosecond {
		t.Fatalf("Second = %d ps, want 1e12", int64(Second))
	}
	if Microsecond != 1000*Nanosecond {
		t.Fatal("microsecond/nanosecond ratio wrong")
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500 * Picosecond, "500ps"},
		{100 * Nanosecond, "100.000ns"},
		{30 * Microsecond, "30.000us"},
		{5 * Millisecond, "5.000ms"},
		{2 * Second, "2.000s"},
		{Forever, "forever"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestClockRatio(t *testing.T) {
	// The paper's host runs at 4x the switch clock.
	if HostClock.Cycles(4) != SwitchClock.Cycles(1) {
		t.Fatal("host/switch clock ratio is not 4:1")
	}
	if HostClock.Cycles(2_000_000_000) != Second {
		t.Fatal("2G host cycles should be exactly one second")
	}
}

func TestClockCyclesCeil(t *testing.T) {
	if got := HostClock.CyclesCeil(0); got != 0 {
		t.Errorf("CyclesCeil(0) = %d", got)
	}
	if got := HostClock.CyclesCeil(1 * Picosecond); got != 1 {
		t.Errorf("CyclesCeil(1ps) = %d, want 1", got)
	}
	if got := HostClock.CyclesCeil(500 * Picosecond); got != 1 {
		t.Errorf("CyclesCeil(1 cycle) = %d, want 1", got)
	}
	if got := HostClock.CyclesCeil(501 * Picosecond); got != 2 {
		t.Errorf("CyclesCeil(501ps) = %d, want 2", got)
	}
}

func TestTransferTime(t *testing.T) {
	// 1 GB/s moves 512 bytes in 512 ns.
	if got := TransferTime(512, 1e9); got != 512*Nanosecond {
		t.Fatalf("TransferTime(512B @1GB/s) = %v, want 512ns", got)
	}
	if got := TransferTime(0, 1e9); got != 0 {
		t.Fatalf("TransferTime(0) = %v, want 0", got)
	}
	// Rounding is up: 1 byte at 3 bytes/sec is ceil(1/3 s).
	if got := TransferTime(1, 3); got < Second/3 {
		t.Fatalf("TransferTime must round up, got %v", got)
	}
}

func TestPerBytePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PerByte(0) did not panic")
		}
	}()
	PerByte(0)
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	// Same-time events run in scheduling order.
	e.Schedule(20, func() { order = append(order, 4) })
	end := e.Run()
	if end != 30 {
		t.Fatalf("end time = %v, want 30", end)
	}
	want := []int{1, 2, 4, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling into the past did not panic")
			}
		}()
		e.Schedule(50, func() {})
	})
	e.Run()
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.Schedule(10, func() { ran++; e.Stop() })
	e.Schedule(20, func() { ran++ })
	e.Run()
	if ran != 1 {
		t.Fatalf("ran %d events after Stop, want 1", ran)
	}
	// Run again resumes the remaining event.
	e.Run()
	if ran != 2 {
		t.Fatalf("resume ran %d total, want 2", ran)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{10, 20, 30} {
		at := at
		e.Schedule(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(20)
	if len(fired) != 2 {
		t.Fatalf("fired %d events by t=20, want 2", len(fired))
	}
	if e.Now() != 20 {
		t.Fatalf("Now() = %v, want 20", e.Now())
	}
	e.Run()
	if len(fired) != 3 {
		t.Fatalf("fired %d events total, want 3", len(fired))
	}
}

func TestEngineRunUntilAdvancesIdleClock(t *testing.T) {
	e := NewEngine()
	e.RunUntil(5 * Second)
	if e.Now() != 5*Second {
		t.Fatalf("Now() = %v, want 5s", e.Now())
	}
}

func TestProcSleep(t *testing.T) {
	e := NewEngine()
	var wake Time
	e.Spawn("sleeper", func(p *Proc) {
		p.Sleep(100 * Nanosecond)
		wake = p.Now()
	})
	e.Run()
	if wake != 100*Nanosecond {
		t.Fatalf("woke at %v, want 100ns", wake)
	}
	if e.LiveProcs() != 0 {
		t.Fatalf("%d live procs after Run", e.LiveProcs())
	}
}

func TestProcInterleaving(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Spawn("a", func(p *Proc) {
		order = append(order, "a0")
		p.Sleep(20)
		order = append(order, "a1")
	})
	e.Spawn("b", func(p *Proc) {
		order = append(order, "b0")
		p.Sleep(10)
		order = append(order, "b1")
	})
	e.Run()
	want := []string{"a0", "b0", "b1", "a1"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSpawnAt(t *testing.T) {
	e := NewEngine()
	var start Time
	e.SpawnAt(42*Nanosecond, "late", func(p *Proc) { start = p.Now() })
	e.Run()
	if start != 42*Nanosecond {
		t.Fatalf("started at %v, want 42ns", start)
	}
}

func TestQueueFIFO(t *testing.T) {
	e := NewEngine()
	q := NewQueue[int]()
	var got []int
	e.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, q.Get(p))
		}
	})
	e.Spawn("producer", func(p *Proc) {
		for i := 1; i <= 3; i++ {
			p.Sleep(10)
			q.Put(i)
		}
	})
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("got %v, want [1 2 3]", got)
	}
}

func TestQueueMultipleWaiters(t *testing.T) {
	e := NewEngine()
	q := NewQueue[string]()
	var got []string
	for i := 0; i < 2; i++ {
		name := string(rune('x' + i))
		e.Spawn(name, func(p *Proc) { got = append(got, p.Name()+":"+q.Get(p)) })
	}
	e.Spawn("producer", func(p *Proc) {
		p.Sleep(5)
		q.Put("first")
		q.Put("second")
	})
	e.Run()
	if len(got) != 2 {
		t.Fatalf("got %v", got)
	}
	// Waiters are served in arrival order.
	if got[0] != "x:first" || got[1] != "y:second" {
		t.Fatalf("got %v, want [x:first y:second]", got)
	}
}

func TestQueueTryGet(t *testing.T) {
	q := NewQueue[int]()
	if _, ok := q.TryGet(); ok {
		t.Fatal("TryGet on empty queue succeeded")
	}
	q.Put(7)
	if v, ok := q.TryGet(); !ok || v != 7 {
		t.Fatalf("TryGet = %d,%v", v, ok)
	}
}

func TestSemaphoreFIFOAndBatching(t *testing.T) {
	e := NewEngine()
	s := NewSemaphore(0)
	var order []string
	// "big" arrives first and needs 3 permits; "small" needs 1. FIFO means
	// small must not sneak past big even when 1 permit is free.
	e.Spawn("big", func(p *Proc) {
		s.AcquireN(p, 3)
		order = append(order, "big")
	})
	e.Spawn("small", func(p *Proc) {
		p.Sleep(1)
		s.Acquire(p)
		order = append(order, "small")
	})
	e.Spawn("releaser", func(p *Proc) {
		for i := 0; i < 4; i++ {
			p.Sleep(10)
			s.Release()
		}
	})
	e.Run()
	if len(order) != 2 || order[0] != "big" || order[1] != "small" {
		t.Fatalf("order = %v, want [big small]", order)
	}
	if s.Available() != 0 {
		t.Fatalf("leftover permits = %d, want 0", s.Available())
	}
}

func TestSemaphoreTryAcquire(t *testing.T) {
	s := NewSemaphore(1)
	if !s.TryAcquire() {
		t.Fatal("TryAcquire with a permit failed")
	}
	if s.TryAcquire() {
		t.Fatal("TryAcquire with no permits succeeded")
	}
}

func TestSignalBroadcast(t *testing.T) {
	e := NewEngine()
	sig := NewSignal()
	woken := 0
	for i := 0; i < 3; i++ {
		e.Spawn("w", func(p *Proc) {
			sig.Wait(p)
			woken++
		})
	}
	e.Spawn("firer", func(p *Proc) {
		p.Sleep(10)
		sig.Fire()
	})
	e.Run()
	if woken != 3 {
		t.Fatalf("woken = %d, want 3", woken)
	}
	if sig.Fires() != 1 {
		t.Fatalf("fires = %d, want 1", sig.Fires())
	}
}

func TestLatch(t *testing.T) {
	e := NewEngine()
	l := NewLatch()
	var after Time
	e.Spawn("waiter", func(p *Proc) {
		l.Wait(p)
		after = p.Now()
		// A second wait returns immediately.
		l.Wait(p)
	})
	e.Spawn("opener", func(p *Proc) {
		p.Sleep(77)
		l.Open()
		l.Open() // idempotent
	})
	e.Run()
	if after != 77 {
		t.Fatalf("latch released at %v, want 77", after)
	}
	if !l.Opened() {
		t.Fatal("latch not opened")
	}
}

func TestWaitGroup(t *testing.T) {
	e := NewEngine()
	var wg WaitGroup
	wg.Add(2)
	var doneAt Time
	e.Spawn("waiter", func(p *Proc) {
		wg.Wait(p)
		doneAt = p.Now()
	})
	for i, d := range []Time{30, 50} {
		_ = i
		d := d
		e.Spawn("worker", func(p *Proc) {
			p.Sleep(d)
			wg.Done()
		})
	}
	e.Run()
	if doneAt != 50 {
		t.Fatalf("WaitGroup released at %v, want 50", doneAt)
	}
}

func TestServerQueueing(t *testing.T) {
	e := NewEngine()
	srv := NewServer(e, "bus")
	var done []Time
	for i := 0; i < 3; i++ {
		e.Spawn("client", func(p *Proc) {
			srv.Use(p, 100)
			done = append(done, p.Now())
		})
	}
	e.Run()
	want := []Time{100, 200, 300}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("done = %v, want %v", done, want)
		}
	}
	if srv.BusyTime() != 300 {
		t.Fatalf("busy = %v, want 300", srv.BusyTime())
	}
	if srv.Jobs() != 3 {
		t.Fatalf("jobs = %d, want 3", srv.Jobs())
	}
}

func TestServerIdleGap(t *testing.T) {
	e := NewEngine()
	srv := NewServer(e, "bus")
	e.Spawn("client", func(p *Proc) {
		srv.Use(p, 10)
		p.Sleep(100) // let the server go idle
		end := srv.Use(p, 10)
		if end != 120 {
			t.Errorf("second job finished at %v, want 120", end)
		}
	})
	e.Run()
	if u := srv.Utilization(); u <= 0.14 || u >= 0.17 {
		t.Fatalf("utilization = %v, want ~20/120", u)
	}
}

func TestServerReserve(t *testing.T) {
	e := NewEngine()
	srv := NewServer(e, "dma")
	if end := srv.Reserve(50); end != 50 {
		t.Fatalf("first reserve ends at %v, want 50", end)
	}
	if end := srv.Reserve(50); end != 100 {
		t.Fatalf("second reserve ends at %v, want 100", end)
	}
	if srv.NextFree() != 100 {
		t.Fatalf("NextFree = %v, want 100", srv.NextFree())
	}
}

func TestTracer(t *testing.T) {
	e := NewEngine()
	var lines int
	e.SetTracer(func(Time, string) { lines++ })
	e.Schedule(10, func() { e.Tracef("hello %d", 1) })
	e.Run()
	if lines != 1 {
		t.Fatalf("traced %d lines, want 1", lines)
	}
	e.SetTracer(nil)
	e.Tracef("dropped")
	if lines != 1 {
		t.Fatalf("tracing after disable")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []Time {
		e := NewEngine()
		s := NewSemaphore(2)
		q := NewQueue[int]()
		var stamps []Time
		for i := 0; i < 5; i++ {
			i := i
			e.Spawn("p", func(p *Proc) {
				s.Acquire(p)
				p.Sleep(Time(10 * (i + 1)))
				q.Put(i)
				s.Release()
				stamps = append(stamps, p.Now())
			})
		}
		e.Spawn("drain", func(p *Proc) {
			for i := 0; i < 5; i++ {
				q.Get(p)
			}
			stamps = append(stamps, p.Now())
		})
		e.Run()
		return stamps
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different lengths across runs")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %v vs %v", i, a, b)
		}
	}
}

func TestShutdownUnwindsBlockedProcs(t *testing.T) {
	e := NewEngine()
	q := NewQueue[int]()
	// A perpetual server blocked on an empty queue, and a sleeper that
	// finished normally.
	e.Spawn("server", func(p *Proc) {
		for {
			q.Get(p)
		}
	})
	e.Spawn("done", func(p *Proc) { p.Sleep(5) })
	e.Run()
	if e.LiveProcs() != 1 {
		t.Fatalf("live procs before shutdown = %d, want 1", e.LiveProcs())
	}
	e.Shutdown()
	if e.LiveProcs() != 0 {
		t.Fatalf("live procs after shutdown = %d, want 0", e.LiveProcs())
	}
}

func TestShutdownNeverStartedProc(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Schedule(1, func() { e.Stop() })
	e.SpawnAt(10, "late", func(p *Proc) { ran = true })
	e.Run() // stops at t=1, before the proc starts
	e.Shutdown()
	if ran {
		t.Fatal("killed proc body ran")
	}
	if e.LiveProcs() != 0 {
		t.Fatalf("live procs = %d, want 0", e.LiveProcs())
	}
}

func TestSampler(t *testing.T) {
	e := NewEngine()
	v := 0.0
	s := StartSampler(e, 10*Microsecond, func() float64 { return v })
	e.Spawn("work", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(10 * Microsecond)
			v += 1
		}
		s.Stop()
	})
	e.Run()
	if s.N() < 4 || s.N() > 6 {
		t.Fatalf("samples = %d, want ~5", s.N())
	}
	// Values are monotone since v only grows.
	for i := 1; i < s.N(); i++ {
		if s.Y[i] < s.Y[i-1] {
			t.Fatalf("samples not monotone: %v", s.Y)
		}
	}
	if e.LiveProcs() != 0 {
		t.Fatalf("sampler leaked a proc")
	}
}

func TestEventsCounter(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 5; i++ {
		e.Schedule(Time(i), func() {})
	}
	e.Run()
	if e.Events() != 5 {
		t.Fatalf("events = %d, want 5", e.Events())
	}
}

func TestDefaultTracerConcurrentWithNewEngine(t *testing.T) {
	// SetDefaultTracer may race with engine construction on other
	// goroutines (the parallel experiment harness does exactly this when
	// -trace and -parallel are combined); under -race this test proves the
	// hook is atomic.
	defer SetDefaultTracer(nil)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				e := NewEngine()
				e.After(Nanosecond, func() {})
				e.Tracef("tick %d", j)
				e.Run()
			}
		}()
	}
	var sink atomic.Int64
	for j := 0; j < 100; j++ {
		SetDefaultTracer(func(Time, string) { sink.Add(1) })
		SetDefaultTracer(nil)
	}
	wg.Wait()
}

func TestSetDefaultTracerAppliesToNewEngines(t *testing.T) {
	defer SetDefaultTracer(nil)
	var lines []string
	SetDefaultTracer(func(at Time, msg string) { lines = append(lines, msg) })
	e := NewEngine()
	e.After(Nanosecond, func() { e.Tracef("fired") })
	e.Run()
	SetDefaultTracer(nil)
	quiet := NewEngine()
	quiet.After(Nanosecond, func() { quiet.Tracef("silent") })
	quiet.Run()
	if len(lines) != 1 || lines[0] != "fired" {
		t.Fatalf("trace lines = %q, want [fired]", lines)
	}
}
