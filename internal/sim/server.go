package sim

// Server models an exclusive-use resource with FIFO queueing — a memory
// controller, a bus, a DMA engine, a link in one direction. A caller
// occupies the server for a computed service time; contention shows up as
// queueing delay. The server tracks total busy time for utilization
// reporting.
type Server struct {
	eng  *Engine
	name string

	// freeAt is the instant the server finishes its last accepted job.
	freeAt Time
	busy   Time
	jobs   int64
}

// NewServer returns an idle server.
func NewServer(eng *Engine, name string) *Server {
	return &Server{eng: eng, name: name}
}

// Name returns the server's debug name.
func (s *Server) Name() string { return s.name }

// BusyTime returns cumulative service time accepted so far.
func (s *Server) BusyTime() Time { return s.busy }

// Jobs returns how many requests the server has accepted.
func (s *Server) Jobs() int64 { return s.jobs }

// Use occupies the server for d starting as soon as it is free, blocking the
// calling process until the job completes. It returns the completion time.
func (s *Server) Use(p *Proc, d Time) Time {
	end := s.Reserve(d)
	p.SleepUntil(end)
	return end
}

// Reserve books d of service time without blocking and returns the job's
// completion instant. Use it for fire-and-forget occupancy (e.g. DMA traffic
// charged against a memory controller) where the caller does not need to
// wait.
func (s *Server) Reserve(d Time) Time {
	if d < 0 {
		panic("sim: negative service time")
	}
	start := s.freeAt
	if start < s.eng.now {
		start = s.eng.now
	}
	s.freeAt = start + d
	s.busy += d
	s.jobs++
	return s.freeAt
}

// NextFree reports when the server will next be idle.
func (s *Server) NextFree() Time {
	if s.freeAt < s.eng.now {
		return s.eng.now
	}
	return s.freeAt
}

// Utilization returns busy time divided by elapsed time (0 if no time has
// passed).
func (s *Server) Utilization() float64 {
	if s.eng.now == 0 {
		return 0
	}
	return float64(s.busy) / float64(s.eng.now)
}
