package sim

// Sampler records a value at fixed simulated intervals — utilization or
// queue-depth timelines for figures. It runs as a process; Stop it before
// the simulation ends (a live sampler keeps the event queue non-empty).
type Sampler struct {
	X []float64 // sample times, seconds
	Y []float64

	stop bool
	proc *Proc
}

// StartSampler begins sampling fn every interval, starting one interval in.
// fn may call Stop to end the timeline after the current sample.
func StartSampler(eng *Engine, interval Time, fn func() float64) *Sampler {
	s := &Sampler{}
	s.proc = eng.Spawn("sampler", func(p *Proc) {
		// Bind the wake callback once: a per-interval method value would be
		// one allocation per tick.
		wake := p.unparkIfWaiting
		for !s.stop {
			// An interruptible sleep: Stop unparks the process immediately
			// instead of letting it doze through one more interval, and the
			// pending timer is cancelled so it cannot hold the event queue
			// open or advance the clock past the run's end.
			deadline := p.Now() + interval
			timer := eng.schedule(deadline, wake, nil)
			for !s.stop && p.Now() < deadline {
				p.park()
			}
			if s.stop {
				eng.cancel(timer)
				return
			}
			s.X = append(s.X, p.Now().Seconds())
			s.Y = append(s.Y, fn())
		}
	})
	return s
}

// Stop ends sampling and wakes the sampler process immediately, so a
// stopped sampler no longer holds the event queue open for a further
// interval.
func (s *Sampler) Stop() {
	s.stop = true
	if s.proc != nil {
		s.proc.unparkIfWaiting()
	}
}

// N reports how many samples were taken.
func (s *Sampler) N() int { return len(s.X) }
