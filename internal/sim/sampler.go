package sim

// Sampler records a value at fixed simulated intervals — utilization or
// queue-depth timelines for figures. It runs as a process; Stop it before
// the simulation ends (a live sampler keeps the event queue non-empty).
type Sampler struct {
	X []float64 // sample times, seconds
	Y []float64

	stop bool
}

// StartSampler begins sampling fn every interval, starting one interval in.
func StartSampler(eng *Engine, interval Time, fn func() float64) *Sampler {
	s := &Sampler{}
	eng.Spawn("sampler", func(p *Proc) {
		for !s.stop {
			p.Sleep(interval)
			if s.stop {
				return
			}
			s.X = append(s.X, p.Now().Seconds())
			s.Y = append(s.Y, fn())
		}
	})
	return s
}

// Stop ends sampling at the next tick.
func (s *Sampler) Stop() { s.stop = true }

// N reports how many samples were taken.
func (s *Sampler) N() int { return len(s.X) }
