package sim

// Sampler records a value at fixed simulated intervals — utilization or
// queue-depth timelines for figures. It runs as a process; Stop it before
// the simulation ends (a live sampler keeps the event queue non-empty).
type Sampler struct {
	X []float64 // sample times, seconds
	Y []float64

	interval Time
	stop     bool
	proc     *Proc
}

// StartSampler begins sampling fn every interval, starting one interval in.
// fn may call Stop to end the timeline after the current sample, or
// Decimate to halve its resolution and keep going (long runs stay bounded
// without the timeline ending early). fn runs before the sample is
// appended, so either call observes a consistent X/Y pair set.
func StartSampler(eng *Engine, interval Time, fn func() float64) *Sampler {
	s := &Sampler{interval: interval}
	s.proc = eng.Spawn("sampler", func(p *Proc) {
		// Bind the wake callback once: a per-interval method value would be
		// one allocation per tick.
		wake := p.unparkIfWaiting
		for !s.stop {
			// An interruptible sleep: Stop unparks the process immediately
			// instead of letting it doze through one more interval, and the
			// pending timer is cancelled so it cannot hold the event queue
			// open or advance the clock past the run's end.
			deadline := p.Now() + s.interval
			timer := eng.schedule(deadline, wake, nil)
			for !s.stop && p.Now() < deadline {
				p.park()
			}
			if s.stop {
				eng.cancel(timer)
				return
			}
			v := fn()
			s.X = append(s.X, p.Now().Seconds())
			s.Y = append(s.Y, v)
		}
	})
	return s
}

// Stop ends sampling and wakes the sampler process immediately, so a
// stopped sampler no longer holds the event queue open for a further
// interval.
func (s *Sampler) Stop() {
	s.stop = true
	if s.proc != nil {
		s.proc.unparkIfWaiting()
	}
}

// N reports how many samples were taken.
func (s *Sampler) N() int { return len(s.X) }

// Interval reports the current sampling interval (doubled by Decimate).
func (s *Sampler) Interval() Time { return s.interval }

// Decimate halves the timeline's resolution in place: every other recorded
// sample is dropped and the sampling interval doubles. The kept samples
// (the odd-indexed ones, at 2dt, 4dt, ...) land exactly on the doubled
// grid, so a timeline decimated k times looks as if it had been sampled at
// 2^k times the original interval all along. Call from the sampling fn
// when the series reaches a size cap.
func (s *Sampler) Decimate() {
	keep := 0
	for i := 1; i < len(s.X); i += 2 {
		s.X[keep] = s.X[i]
		s.Y[keep] = s.Y[i]
		keep++
	}
	s.X = s.X[:keep]
	s.Y = s.Y[:keep]
	s.interval *= 2
}
