package sim

import (
	"reflect"
	"testing"
)

// Settle's contract: hooks run after every event of the current instant,
// whatever order those events were inserted in, and before the clock moves.
func TestSettleRunsAfterAllSameInstantEvents(t *testing.T) {
	eng := NewEngine()
	var order []string
	var hookAt Time
	at := 100 * Nanosecond
	eng.Schedule(at, func() {
		order = append(order, "ev1")
		eng.Settle(func() {
			hookAt = eng.Now()
			order = append(order, "settle")
		})
	})
	eng.Schedule(at, func() { order = append(order, "ev2") })
	eng.Schedule(200*Nanosecond, func() { order = append(order, "later") })
	eng.Run()
	want := []string{"ev1", "ev2", "settle", "later"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order %v, want %v", order, want)
	}
	if hookAt != at {
		t.Fatalf("hook ran at %v, want %v", hookAt, at)
	}
}

// A hook's same-instant effects drain before the next hook runs, and a hook
// registered by a hook runs after all previously registered ones.
func TestSettleHookEffectsDrainBetweenHooks(t *testing.T) {
	eng := NewEngine()
	var order []string
	eng.Schedule(10*Nanosecond, func() {
		eng.Settle(func() {
			order = append(order, "h1")
			eng.Schedule(eng.Now(), func() { order = append(order, "h1-event") })
			eng.Settle(func() { order = append(order, "h3") })
		})
		eng.Settle(func() { order = append(order, "h2") })
	})
	eng.Run()
	want := []string{"h1", "h1-event", "h2", "h3"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order %v, want %v", order, want)
	}
}

// Hooks belonging to the deadline instant run inside the bounded phase:
// RunUntil must not return with a registered hook still pending.
func TestSettleDrainsWithinRunUntil(t *testing.T) {
	eng := NewEngine()
	fired := false
	eng.Schedule(50*Nanosecond, func() {
		eng.Settle(func() { fired = true })
	})
	eng.Schedule(80*Nanosecond, func() {})
	eng.RunUntil(50 * Nanosecond)
	if !fired {
		t.Fatal("settle hook did not run within its instant's phase")
	}
	if eng.Now() != 50*Nanosecond {
		t.Fatalf("clock at %v after RunUntil(50ns)", eng.Now())
	}
}

// Arbiter grants one instant's joiners in ascending index order regardless
// of join order, and processes resume at the join instant.
func TestArbiterGrantsInIndexOrder(t *testing.T) {
	eng := NewEngine()
	arb := NewArbiter(eng)
	var order []int
	for _, i := range []int{3, 0, 2, 1} {
		i := i
		eng.Spawn("w", func(p *Proc) {
			p.Sleep(10 * Nanosecond)
			arb.Join(p, i)
			if p.Now() != 10*Nanosecond {
				t.Errorf("joiner %d resumed at %v", i, p.Now())
			}
			order = append(order, i)
		})
	}
	eng.Run()
	if want := []int{0, 1, 2, 3}; !reflect.DeepEqual(order, want) {
		t.Fatalf("grant order %v, want %v", order, want)
	}
	eng.Shutdown()
}

// Joiners with equal indices keep their join order (the switch uses one
// pseudo-index for all switch-sourced injections).
func TestArbiterTiesKeepJoinOrder(t *testing.T) {
	eng := NewEngine()
	arb := NewArbiter(eng)
	var order []int
	for _, tag := range []int{10, 11, 12} {
		tag := tag
		eng.Spawn("w", func(p *Proc) {
			p.Sleep(Nanosecond)
			arb.Join(p, 7)
			order = append(order, tag)
		})
	}
	eng.Run()
	if want := []int{10, 11, 12}; !reflect.DeepEqual(order, want) {
		t.Fatalf("tie order %v, want join order %v", order, want)
	}
	eng.Shutdown()
}

// A granted process may Join again at the same instant: the re-join arms a
// fresh settle pass that grants it before the clock advances.
func TestArbiterRejoinSameInstant(t *testing.T) {
	eng := NewEngine()
	arb := NewArbiter(eng)
	var order []int
	var rejoinAt Time
	eng.Spawn("a", func(p *Proc) {
		p.Sleep(10 * Nanosecond)
		arb.Join(p, 1)
		order = append(order, 1)
		arb.Join(p, 5)
		rejoinAt = p.Now()
		order = append(order, 5)
	})
	eng.Spawn("b", func(p *Proc) {
		p.Sleep(10 * Nanosecond)
		arb.Join(p, 2)
		order = append(order, 2)
	})
	eng.Run()
	if want := []int{1, 2, 5}; !reflect.DeepEqual(order, want) {
		t.Fatalf("order %v, want %v", order, want)
	}
	if rejoinAt != 10*Nanosecond {
		t.Fatalf("re-join granted at %v, want the same instant", rejoinAt)
	}
	eng.Shutdown()
}

// Joins at different instants settle independently — an arbiter never holds
// a process past its own instant.
func TestArbiterInstantsIndependent(t *testing.T) {
	eng := NewEngine()
	arb := NewArbiter(eng)
	var stamps []Time
	for _, at := range []Time{10 * Nanosecond, 30 * Nanosecond} {
		at := at
		eng.Spawn("w", func(p *Proc) {
			p.SleepUntil(at)
			arb.Join(p, 0)
			stamps = append(stamps, p.Now())
		})
	}
	eng.Run()
	if want := []Time{10 * Nanosecond, 30 * Nanosecond}; !reflect.DeepEqual(stamps, want) {
		t.Fatalf("grant instants %v, want %v", stamps, want)
	}
	eng.Shutdown()
}
