package sim

import (
	"fmt"
	"testing"
)

func TestEmitTypedEvents(t *testing.T) {
	e := NewEngine()
	var got []TraceEvent
	e.SetTraceSink(func(ev TraceEvent) { got = append(got, ev) })
	if !e.Tracing() {
		t.Fatal("Tracing() = false with a sink installed")
	}
	e.Schedule(10*Nanosecond, func() {
		e.Emit("packet", "send", "sw0", "dst=3 size=512")
	})
	e.Run()
	if len(got) != 1 {
		t.Fatalf("captured %d events, want 1", len(got))
	}
	ev := got[0]
	if ev.At != 10*Nanosecond || ev.Cat != "packet" || ev.Name != "send" ||
		ev.Comp != "sw0" || ev.Detail != "dst=3 size=512" {
		t.Fatalf("event = %+v", ev)
	}
	if s := ev.String(); s != "sw0: dst=3 size=512" {
		t.Fatalf("String() = %q", s)
	}
}

func TestLegacyTracerSeesTypedEvents(t *testing.T) {
	// The string tracer keeps working: typed events render as the familiar
	// "comp: detail" lines, and Tracef lines pass through unchanged.
	e := NewEngine()
	var lines []string
	e.SetTracer(func(_ Time, msg string) { lines = append(lines, msg) })
	e.Emit("handler", "dispatch", "sw1", "handler=2 cpu=0")
	e.Tracef("plain %d", 7)
	want := []string{"sw1: handler=2 cpu=0", "plain 7"}
	if len(lines) != len(want) {
		t.Fatalf("traced %d lines, want %d", len(lines), len(want))
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Fatalf("line %d = %q, want %q", i, lines[i], want[i])
		}
	}
}

func TestTracingGuard(t *testing.T) {
	e := NewEngine()
	if e.Tracing() {
		t.Fatal("Tracing() = true on a fresh engine")
	}
	e.Emit("packet", "send", "x", "dropped silently") // no sink: must not panic
	e.SetTracer(func(Time, string) {})
	if !e.Tracing() {
		t.Fatal("Tracing() = false after SetTracer")
	}
	e.SetTracer(nil)
	if e.Tracing() {
		t.Fatal("Tracing() = true after SetTracer(nil)")
	}
	e.SetTraceSink(func(TraceEvent) {})
	if !e.Tracing() {
		t.Fatal("Tracing() = false after SetTraceSink")
	}
	e.SetTraceSink(nil)
	if e.Tracing() {
		t.Fatal("Tracing() = true after SetTraceSink(nil)")
	}
}

func TestSetDefaultTraceSinkAppliesToNewEngines(t *testing.T) {
	var events int
	SetDefaultTraceSink(func(TraceEvent) { events++ })
	defer SetDefaultTraceSink(nil)
	e := NewEngine()
	e.Emit("disk", "read", "d0", "off=0")
	SetDefaultTraceSink(nil)
	e2 := NewEngine()
	e2.Emit("disk", "read", "d0", "off=0")
	if events != 1 {
		t.Fatalf("default sink saw %d events, want 1", events)
	}
}

// BenchmarkTracingDisabledGuarded measures the recommended hot-path
// pattern with tracing off: a Tracing() check that skips argument
// construction entirely. This should be ~1ns — a single predictable
// branch — so instrumented paths cost nothing in ordinary runs.
func BenchmarkTracingDisabledGuarded(b *testing.B) {
	e := NewEngine()
	src, dst, size := 3, 7, 4096
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if e.Tracing() {
			e.Emit("packet", "send", "sw0", fmt.Sprintf("src=%d dst=%d size=%d", src, dst, size))
		}
	}
}

// BenchmarkTracingDisabledUnguarded is the anti-pattern for comparison:
// calling Tracef without checking Tracing() first still boxes the variadic
// arguments on every call even though nothing is traced.
func BenchmarkTracingDisabledUnguarded(b *testing.B) {
	e := NewEngine()
	src, dst, size := 3, 7, 4096
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Tracef("sw0: src=%d dst=%d size=%d", src, dst, size)
	}
}

// BenchmarkTracingEnabled bounds the cost when a sink is installed.
func BenchmarkTracingEnabled(b *testing.B) {
	e := NewEngine()
	var n int
	e.SetTraceSink(func(TraceEvent) { n++ })
	src, dst, size := 3, 7, 4096
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if e.Tracing() {
			e.Emit("packet", "send", "sw0", fmt.Sprintf("src=%d dst=%d size=%d", src, dst, size))
		}
	}
	_ = n
}
