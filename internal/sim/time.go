// Package sim provides a deterministic discrete-event simulation engine.
//
// Simulated time is kept in integer picoseconds so that both the 2 GHz host
// clock (500 ps/cycle) and the 500 MHz switch clock (2000 ps/cycle) divide
// evenly. Autonomous agents — host programs, switch CPUs, disks, DMA engines
// — run as coroutine processes (Proc) that the engine resumes one at a time,
// so a simulation is reproducible run to run regardless of goroutine
// scheduling.
package sim

import "fmt"

// Time is a simulated instant or duration in picoseconds.
type Time int64

// Duration units.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Forever sorts after any reachable simulation time.
const Forever Time = 1<<63 - 1

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros reports t as floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Nanos reports t as floating-point nanoseconds.
func (t Time) Nanos() float64 { return float64(t) / float64(Nanosecond) }

// String formats t with an auto-selected unit.
func (t Time) String() string {
	switch {
	case t == Forever:
		return "forever"
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", t.Micros())
	case t >= Nanosecond:
		return fmt.Sprintf("%.3fns", t.Nanos())
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}

// Clock converts between cycles of a fixed-frequency clock and Time.
type Clock struct {
	// Period is the duration of one cycle.
	Period Time
}

// Cycles returns the duration of n cycles.
func (c Clock) Cycles(n int64) Time { return Time(n) * c.Period }

// CyclesCeil returns how many whole cycles cover d, rounding up.
func (c Clock) CyclesCeil(d Time) int64 {
	if d <= 0 {
		return 0
	}
	return int64((d + c.Period - 1) / c.Period)
}

// Standard clocks from the paper: the host processor runs at 2 GHz and the
// embedded switch processor at 500 MHz (the paper's 4:1 ratio).
var (
	HostClock   = Clock{Period: 500 * Picosecond}
	SwitchClock = Clock{Period: 2000 * Picosecond}
)

// PerByte converts a bandwidth in bytes/second into the time to move one
// byte. It panics on non-positive bandwidth: a zero-bandwidth resource is a
// configuration error, not a modelable device.
func PerByte(bytesPerSecond float64) Time {
	if bytesPerSecond <= 0 {
		panic("sim: non-positive bandwidth")
	}
	return Time(float64(Second) / bytesPerSecond)
}

// TransferTime returns the serialization delay of n bytes at the given
// bytes/second bandwidth, rounded up to a whole picosecond.
func TransferTime(n int64, bytesPerSecond float64) Time {
	if n <= 0 {
		return 0
	}
	ps := float64(n) * float64(Second) / bytesPerSecond
	t := Time(ps)
	if float64(t) < ps {
		t++
	}
	return t
}
