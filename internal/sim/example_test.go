package sim_test

import (
	"fmt"

	"activesan/internal/sim"
)

// Example shows two processes coordinating through a queue in simulated
// time.
func Example() {
	eng := sim.NewEngine()
	q := sim.NewQueue[string]()
	eng.Spawn("producer", func(p *sim.Proc) {
		p.Sleep(100 * sim.Nanosecond)
		q.Put("ping")
	})
	eng.Spawn("consumer", func(p *sim.Proc) {
		msg := q.Get(p)
		fmt.Printf("%s at %v\n", msg, p.Now())
	})
	eng.Run()
	// Output: ping at 100.000ns
}

// ExampleServer shows FIFO contention on a shared resource.
func ExampleServer() {
	eng := sim.NewEngine()
	bus := sim.NewServer(eng, "bus")
	for i := 0; i < 2; i++ {
		i := i
		eng.Spawn("client", func(p *sim.Proc) {
			bus.Use(p, 50*sim.Nanosecond)
			fmt.Printf("client %d done at %v\n", i, p.Now())
		})
	}
	eng.Run()
	// Output:
	// client 0 done at 50.000ns
	// client 1 done at 100.000ns
}
