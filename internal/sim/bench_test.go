package sim

import "testing"

// The engine microbenchmarks pin the hot-path costs that every experiment
// pays per event: heap scheduling, the same-time run-queue bypass, timer
// cancellation, and process context switches. The companion TestXxxZeroAllocs
// gates assert that the pooled steady state allocates nothing, so an
// accidental closure or slice growth on these paths fails CI rather than
// silently taxing every simulation. BENCH_engine.json at the repo root holds
// the checked-in baseline; compare with scripts/benchdiff.

func nop() {}

// BenchmarkSchedule measures heap-path scheduling: events land at spread-out
// future times, fire in batches, and their slots recycle through the pool.
func BenchmarkSchedule(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// Spread arrival times so events exercise real heap sifts.
		e.Schedule(e.now+Time(1+i%97), nop)
		if e.pending() >= 1024 {
			e.Run()
		}
	}
	e.Run()
}

// BenchmarkSameTimeEvent measures the run-queue bypass: events scheduled at
// the current instant never touch the heap.
func BenchmarkSameTimeEvent(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Schedule(e.now, nop)
		if e.pending() >= 256 {
			e.Run()
		}
	}
	e.Run()
}

// BenchmarkScheduleCancel measures the sampler's timer pattern: schedule a
// future event, then cancel it (direct heap removal, slot recycled).
func BenchmarkScheduleCancel(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := e.schedule(e.now+Time(1+i%97), nop, nil)
		e.cancel(t)
	}
}

// BenchmarkProcSelfWake measures a process sleeping and waking itself — the
// dominant context-switch pattern, which the migrating-driver design serves
// with no channel operation at all.
func BenchmarkProcSelfWake(b *testing.B) {
	e := NewEngine()
	n := b.N
	b.ReportAllocs()
	e.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < n; i++ {
			p.Sleep(Nanosecond)
		}
	})
	e.Run()
}

// BenchmarkProcSwitch measures a genuine cross-process switch: two processes
// ping-pong through a pair of queues, so every iteration transfers control
// between goroutines twice.
func BenchmarkProcSwitch(b *testing.B) {
	e := NewEngine()
	ping, pong := NewQueue[int](), NewQueue[int]()
	n := b.N
	b.ReportAllocs()
	e.Spawn("ping", func(p *Proc) {
		for i := 0; i < n; i++ {
			ping.Put(i)
			pong.Get(p)
		}
	})
	e.Spawn("pong", func(p *Proc) {
		for i := 0; i < n; i++ {
			ping.Get(p)
			pong.Put(i)
		}
	})
	e.Run()
}

// warmEngine grows an engine's pool, heap, and run queue past what the alloc
// gates below need, so the measured region only recycles capacity.
func warmEngine(e *Engine) {
	for i := 0; i < 512; i++ {
		e.Schedule(e.now+Time(1+i), nop)
		e.Schedule(e.now, nop)
	}
	e.Run()
}

func TestScheduleZeroAllocs(t *testing.T) {
	e := NewEngine()
	warmEngine(e)
	allocs := testing.AllocsPerRun(200, func() {
		for i := 0; i < 64; i++ {
			e.Schedule(e.now+Time(1+i%17), nop)
		}
		e.Run()
	})
	if allocs != 0 {
		t.Fatalf("heap schedule/fire path allocated %.1f per run, want 0", allocs)
	}
}

func TestSameTimeZeroAllocs(t *testing.T) {
	e := NewEngine()
	warmEngine(e)
	allocs := testing.AllocsPerRun(200, func() {
		for i := 0; i < 64; i++ {
			e.Schedule(e.now, nop)
		}
		e.Run()
	})
	if allocs != 0 {
		t.Fatalf("same-time run-queue path allocated %.1f per run, want 0", allocs)
	}
}

func TestScheduleCancelZeroAllocs(t *testing.T) {
	e := NewEngine()
	warmEngine(e)
	allocs := testing.AllocsPerRun(200, func() {
		for i := 0; i < 64; i++ {
			tm := e.schedule(e.now+Time(1+i%17), nop, nil)
			e.cancel(tm)
		}
	})
	if allocs != 0 {
		t.Fatalf("schedule/cancel path allocated %.1f per run, want 0", allocs)
	}
}

func TestProcSelfWakeZeroAllocs(t *testing.T) {
	// A process sleeping in a loop is the pooled path end to end: proc wake
	// events carry no closure and the slot recycles every iteration. The
	// engine is driven by the proc itself, so the whole Run is steady-state
	// after the spawn.
	e := NewEngine()
	warmEngine(e)
	wakes := 0
	e.Spawn("sleeper", func(p *Proc) {
		// One warm-up sleep outside the measured region grows nothing: the
		// pool is already hot.
		for {
			p.Sleep(Nanosecond)
			wakes++
			if wakes >= 1<<20 {
				return
			}
		}
	})
	// Measure the full run minus the spawn overhead by sampling allocations
	// around Run directly.
	allocs := testing.AllocsPerRun(1, func() { e.Run() })
	if allocs != 0 {
		t.Fatalf("proc self-wake run allocated %.1f, want 0", allocs)
	}
	if wakes < 1<<20 {
		t.Fatalf("sleeper only woke %d times", wakes)
	}
}

// TestCancelRecycledSlotIsNoop pins the timer-handle guard: cancelling after
// the event fired — even after its pool slot was recycled for a newer event
// — must not disturb the queue.
func TestCancelRecycledSlotIsNoop(t *testing.T) {
	e := NewEngine()
	fired := 0
	tm := e.schedule(10, func() { fired++ }, nil)
	e.Run()
	if fired != 1 {
		t.Fatalf("event fired %d times, want 1", fired)
	}
	// Recycle the slot for a new event, then cancel the stale handle.
	e.schedule(20, func() { fired++ }, nil)
	e.cancel(tm)
	e.Run()
	if fired != 2 {
		t.Fatalf("stale cancel killed a recycled event: fired = %d, want 2", fired)
	}
}

// TestCancelHeapMiddle pins direct heap removal: cancelling an event that is
// neither the top nor a leaf must keep every other event firing in order.
func TestCancelHeapMiddle(t *testing.T) {
	e := NewEngine()
	var fired []Time
	var timers []timer
	for _, at := range []Time{50, 10, 40, 20, 60, 30, 70, 15, 45} {
		at := at
		timers = append(timers, e.schedule(at, func() { fired = append(fired, at) }, nil))
	}
	e.cancel(timers[2]) // at=40
	e.cancel(timers[3]) // at=20
	e.Run()
	want := []Time{10, 15, 30, 45, 50, 60, 70}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
	if e.now != 70 {
		t.Fatalf("end time %v, want 70", e.now)
	}
}

// TestCancelRunQueueEntry pins the same-time cancellation path: a cancelled
// run-queue entry is skipped and its slot recycled without firing.
func TestCancelRunQueueEntry(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.Schedule(5, func() {
		tm := e.schedule(e.now, func() { fired++ }, nil)
		e.schedule(e.now, func() { fired++ }, nil)
		e.cancel(tm)
	})
	e.Run()
	if fired != 1 {
		t.Fatalf("fired %d same-time events, want 1 (other cancelled)", fired)
	}
}
