package sim

import "testing"

// The engine microbenchmarks pin the hot-path costs that every experiment
// pays per event: heap scheduling, the same-time run-queue bypass, timer
// cancellation, and process context switches. The companion TestXxxZeroAllocs
// gates assert that the pooled steady state allocates nothing, so an
// accidental closure or slice growth on these paths fails CI rather than
// silently taxing every simulation. BENCH_engine.json at the repo root holds
// the checked-in baseline; compare with scripts/benchdiff.

func nop() {}

// BenchmarkSchedule measures heap-path scheduling: events land at spread-out
// future times, fire in batches, and their slots recycle through the pool.
func BenchmarkSchedule(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// Spread arrival times so events exercise real heap sifts.
		e.Schedule(e.now+Time(1+i%97), nop)
		if e.pending() >= 1024 {
			e.Run()
		}
	}
	e.Run()
}

// BenchmarkSameTimeEvent measures the run-queue bypass: events scheduled at
// the current instant never touch the heap.
func BenchmarkSameTimeEvent(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Schedule(e.now, nop)
		if e.pending() >= 256 {
			e.Run()
		}
	}
	e.Run()
}

// BenchmarkScheduleCancel measures the sampler's timer pattern: schedule a
// future event, then cancel it (direct heap removal, slot recycled).
func BenchmarkScheduleCancel(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := e.schedule(e.now+Time(1+i%97), nop, nil)
		e.cancel(t)
	}
}

// BenchmarkProcSelfWake measures a process sleeping and waking itself — the
// dominant context-switch pattern, which the migrating-driver design serves
// with no channel operation at all.
func BenchmarkProcSelfWake(b *testing.B) {
	e := NewEngine()
	n := b.N
	b.ReportAllocs()
	e.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < n; i++ {
			p.Sleep(Nanosecond)
		}
	})
	e.Run()
}

// BenchmarkProcSwitch measures a genuine cross-process switch: two processes
// ping-pong through a pair of queues, so every iteration transfers control
// between goroutines twice.
func BenchmarkProcSwitch(b *testing.B) {
	e := NewEngine()
	ping, pong := NewQueue[int](), NewQueue[int]()
	n := b.N
	b.ReportAllocs()
	e.Spawn("ping", func(p *Proc) {
		for i := 0; i < n; i++ {
			ping.Put(i)
			pong.Get(p)
		}
	})
	e.Spawn("pong", func(p *Proc) {
		for i := 0; i < n; i++ {
			ping.Get(p)
			pong.Put(i)
		}
	})
	e.Run()
}

// warmEngine grows an engine's pool, heap, and run queue past what the alloc
// gates below need, so the measured region only recycles capacity.
func warmEngine(e *Engine) {
	for i := 0; i < 512; i++ {
		e.Schedule(e.now+Time(1+i), nop)
		e.Schedule(e.now, nop)
	}
	e.Run()
}

func TestScheduleZeroAllocs(t *testing.T) {
	e := NewEngine()
	warmEngine(e)
	allocs := testing.AllocsPerRun(200, func() {
		for i := 0; i < 64; i++ {
			e.Schedule(e.now+Time(1+i%17), nop)
		}
		e.Run()
	})
	if allocs != 0 {
		t.Fatalf("heap schedule/fire path allocated %.1f per run, want 0", allocs)
	}
}

func TestSameTimeZeroAllocs(t *testing.T) {
	e := NewEngine()
	warmEngine(e)
	allocs := testing.AllocsPerRun(200, func() {
		for i := 0; i < 64; i++ {
			e.Schedule(e.now, nop)
		}
		e.Run()
	})
	if allocs != 0 {
		t.Fatalf("same-time run-queue path allocated %.1f per run, want 0", allocs)
	}
}

func TestScheduleCancelZeroAllocs(t *testing.T) {
	e := NewEngine()
	warmEngine(e)
	allocs := testing.AllocsPerRun(200, func() {
		for i := 0; i < 64; i++ {
			tm := e.schedule(e.now+Time(1+i%17), nop, nil)
			e.cancel(tm)
		}
	})
	if allocs != 0 {
		t.Fatalf("schedule/cancel path allocated %.1f per run, want 0", allocs)
	}
}

func TestProcSelfWakeZeroAllocs(t *testing.T) {
	// A process sleeping in a loop is the pooled path end to end: proc wake
	// events carry no closure and the slot recycles every iteration. The
	// engine is driven by the proc itself, so the whole Run is steady-state
	// after the spawn.
	e := NewEngine()
	warmEngine(e)
	wakes := 0
	e.Spawn("sleeper", func(p *Proc) {
		// One warm-up sleep outside the measured region grows nothing: the
		// pool is already hot.
		for {
			p.Sleep(Nanosecond)
			wakes++
			if wakes >= 1<<20 {
				return
			}
		}
	})
	// Measure the full run minus the spawn overhead by sampling allocations
	// around Run directly.
	allocs := testing.AllocsPerRun(1, func() { e.Run() })
	if allocs != 0 {
		t.Fatalf("proc self-wake run allocated %.1f, want 0", allocs)
	}
	if wakes < 1<<20 {
		t.Fatalf("sleeper only woke %d times", wakes)
	}
}

// TestCancelRecycledSlotIsNoop pins the timer-handle guard: cancelling after
// the event fired — even after its pool slot was recycled for a newer event
// — must not disturb the queue.
func TestCancelRecycledSlotIsNoop(t *testing.T) {
	e := NewEngine()
	fired := 0
	tm := e.schedule(10, func() { fired++ }, nil)
	e.Run()
	if fired != 1 {
		t.Fatalf("event fired %d times, want 1", fired)
	}
	// Recycle the slot for a new event, then cancel the stale handle.
	e.schedule(20, func() { fired++ }, nil)
	e.cancel(tm)
	e.Run()
	if fired != 2 {
		t.Fatalf("stale cancel killed a recycled event: fired = %d, want 2", fired)
	}
}

// TestCancelHeapMiddle pins direct heap removal: cancelling an event that is
// neither the top nor a leaf must keep every other event firing in order.
func TestCancelHeapMiddle(t *testing.T) {
	e := NewEngine()
	var fired []Time
	var timers []timer
	for _, at := range []Time{50, 10, 40, 20, 60, 30, 70, 15, 45} {
		at := at
		timers = append(timers, e.schedule(at, func() { fired = append(fired, at) }, nil))
	}
	e.cancel(timers[2]) // at=40
	e.cancel(timers[3]) // at=20
	e.Run()
	want := []Time{10, 15, 30, 45, 50, 60, 70}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
	if e.now != 70 {
		t.Fatalf("end time %v, want 70", e.now)
	}
}

// TestCancelRunQueueEntry pins the same-time cancellation path: a cancelled
// run-queue entry is skipped and its slot recycled without firing.
func TestCancelRunQueueEntry(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.Schedule(5, func() {
		tm := e.schedule(e.now, func() { fired++ }, nil)
		e.schedule(e.now, func() { fired++ }, nil)
		e.cancel(tm)
	})
	e.Run()
	if fired != 1 {
		t.Fatalf("fired %d same-time events, want 1 (other cancelled)", fired)
	}
}

// --- Partition-group benchmarks -------------------------------------------
//
// These pin the costs the partitioned engine adds on top of the serial hot
// paths above: the full barrier round trip, per-message cross-partition
// handoff, and the horizon computation that bounds every round. The
// steady-state barrier loop is gated zero-alloc like the serial paths.

// BenchmarkGroupPingPong measures a full conservative round trip: one
// message crosses the cut per barrier, so each iteration pays two complete
// rounds (inject, horizon, window dispatch, window drain) with minimal
// engine work inside them — the pure coordination overhead.
func BenchmarkGroupPingPong(b *testing.B) {
	g := NewGroup(2)
	defer g.Shutdown()
	ab := g.Connect(0, 1, 10, 0)
	ba := g.Connect(1, 0, 10, 0)
	left := b.N
	var send, bounce func()
	send = func() {
		ba.Credit(nop) // retire the reply's buffer, as a real port would
		if left == 0 {
			return
		}
		left--
		ab.Deliver(g.Engine(0).Now()+10, bounce)
	}
	bounce = func() {
		ab.Credit(nop)
		ba.Deliver(g.Engine(1).Now()+10, send)
	}
	b.ReportAllocs()
	b.ResetTimer()
	g.Engine(0).Schedule(0, func() {
		left--
		ab.Deliver(10, bounce)
	})
	g.Run()
}

// BenchmarkGroupCrossSend measures bulk handoff: batches of deliveries
// buffered in one window, sorted and injected at the next barrier. Per-op
// cost is per message, amortizing the barrier across the batch.
func BenchmarkGroupCrossSend(b *testing.B) {
	g := NewGroup(2)
	defer g.Shutdown()
	ch := g.Connect(0, 1, 10, 0)
	const batch = 256
	n, sent := b.N, 0
	ack := func() { ch.Credit(nop) }
	var post func()
	post = func() {
		now := g.Engine(0).Now()
		for i := 0; i < batch && sent < n; i++ {
			sent++
			ch.Deliver(now+10, ack)
		}
		if sent < n {
			g.Engine(0).Schedule(now+20, post)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	g.Engine(0).Schedule(0, post)
	g.Run()
}

// benchHorizonGroup builds the horizon benchmark fixture: 8 fully meshed
// partitions (56 channels) with outstanding deliveries on a quarter of them,
// the shape of a mid-collective fat-tree round.
func benchHorizonGroup() *Group {
	g := NewGroup(8)
	for s := 0; s < 8; s++ {
		for d := 0; d < 8; d++ {
			if s != d {
				g.Connect(s, d, 10, 100)
			}
		}
	}
	for _, c := range g.channels[:14] {
		c.outstanding = append(c.outstanding, 5)
		c.inOutst = true
		g.outst = append(g.outst, c)
	}
	for i := range g.next {
		g.next[i] = Time(100 + i)
	}
	return g
}

// BenchmarkGroupHorizon measures computeHorizons alone — the only
// super-linear barrier term (relaxation over rank pairs) — at 8 partitions.
func BenchmarkGroupHorizon(b *testing.B) {
	g := benchHorizonGroup()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.computeHorizons()
	}
}

// TestGroupBarrierZeroAllocs gates the steady-state barrier loop: once the
// scratch slices are grown, a ping-pong round — buffered message, dirty-list
// drain, injection sort, horizon relaxation, window dispatch — recycles
// everything. An accidental per-round closure or slice regrowth fails here
// rather than taxing every partitioned run.
func TestGroupBarrierZeroAllocs(t *testing.T) {
	g := NewGroup(2)
	defer g.Shutdown()
	ab := g.Connect(0, 1, 10, 0)
	ba := g.Connect(1, 0, 10, 0)
	left := 0
	var send, bounce func()
	send = func() {
		ba.Credit(nop)
		if left == 0 {
			return
		}
		left--
		ab.Deliver(g.Engine(0).Now()+10, bounce)
	}
	bounce = func() {
		ab.Credit(nop)
		ba.Deliver(g.Engine(1).Now()+10, send)
	}
	kick := func() {
		left--
		ab.Deliver(g.Engine(0).Now()+10, bounce)
	}
	run := func() {
		left = 1 << 10
		g.Engine(0).Schedule(g.Engine(0).Now(), kick)
		g.Run()
	}
	run() // warm: grow scratch, start workers, pool engine slots
	allocs := testing.AllocsPerRun(5, run)
	if allocs != 0 {
		t.Fatalf("barrier loop allocated %.1f per run, want 0", allocs)
	}
}
