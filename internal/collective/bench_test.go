package collective

import "testing"

// BenchmarkAllreduce builds and runs a full 16-host fat-tree active
// allreduce per iteration — the macro gate for the collective path's
// allocation behavior (BENCH_engine.json, -allocs-only in CI).
func BenchmarkAllreduce(b *testing.B) {
	prm := DefaultParams()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if r := fatRun(Allreduce, true, 16, 1, prm); !r.Correct {
			b.Fatal("allreduce produced an incorrect result")
		}
	}
}
