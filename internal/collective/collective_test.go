package collective

import (
	"fmt"
	"testing"

	"activesan/internal/apps"
	"activesan/internal/cluster"
	"activesan/internal/sim"
)

var allOps = []Op{Allreduce, Barrier, Scatter, Gather, KeyAgg}

func treeRun(op Op, active bool, p int, prm Params) Result {
	return RunOn(cluster.NewTreeCluster(sim.NewEngine(), cluster.DefaultTreeConfig(p)), op, active, p, prm)
}

func fatRun(op Op, active bool, hosts, parts int, prm Params) Result {
	return RunOn(cluster.NewPartitionedFatTreeCluster(cluster.DefaultFatTreeConfig(hosts), parts), op, active, hosts, prm)
}

func requireRows(t *testing.T, label string, got, want [][]int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", label, len(got), len(want))
	}
	for j := range want {
		if !int64SlicesEqual(got[j], want[j]) {
			t.Fatalf("%s: rank %d holds %v, want %v", label, j, got[j], want[j])
		}
	}
}

// Every op, active and passive, on the paper's switch tree, including host
// counts that leave the tree ragged and the single-switch degenerate case.
func TestOpsMatchOracleOnTree(t *testing.T) {
	counts := []int{1, 2, 3, 5, 8, 16, 20}
	if testing.Short() {
		counts = []int{1, 3, 8}
	}
	prm := DefaultParams()
	for _, p := range counts {
		for _, op := range allOps {
			want := ExpectedPerHost(op, p, opParams(op, prm))
			act := treeRun(op, true, p, prm)
			pas := treeRun(op, false, p, prm)
			if !act.Correct {
				t.Errorf("tree p=%d %s active incorrect", p, op)
			}
			if !pas.Correct {
				t.Errorf("tree p=%d %s passive incorrect", p, op)
			}
			requireRows(t, fmt.Sprintf("tree p=%d %s active", p, op), act.PerHost, want)
			requireRows(t, fmt.Sprintf("tree p=%d %s passive", p, op), pas.PerHost, want)
		}
	}
}

// Every op on k-ary fat trees: the overlay is the edge/agg/core aggregation
// tree, exercised with multi-pod shapes.
func TestOpsMatchOracleOnFatTree(t *testing.T) {
	counts := []int{4, 16}
	if testing.Short() {
		counts = []int{16}
	}
	prm := DefaultParams()
	for _, p := range counts {
		for _, op := range allOps {
			want := ExpectedPerHost(op, p, opParams(op, prm))
			act := fatRun(op, true, p, 1, prm)
			pas := fatRun(op, false, p, 1, prm)
			if !act.Correct || !pas.Correct {
				t.Errorf("fattree p=%d %s: active ok=%v passive ok=%v", p, op, act.Correct, pas.Correct)
			}
			requireRows(t, fmt.Sprintf("fattree p=%d %s active", p, op), act.PerHost, want)
			requireRows(t, fmt.Sprintf("fattree p=%d %s passive", p, op), pas.PerHost, want)
		}
	}
}

// The partition-parallel engine must not change a single byte or timestamp:
// every op, serial vs 2 vs 4 partitions on a 16-host fat tree.
func TestPartitionedByteIdentity(t *testing.T) {
	prm := DefaultParams()
	for _, op := range allOps {
		for _, active := range []bool{true, false} {
			base := fatRun(op, active, 16, 1, prm)
			for _, parts := range []int{2, 4} {
				got := fatRun(op, active, 16, parts, prm)
				label := fmt.Sprintf("%s active=%v parts=%d", op, active, parts)
				requireRows(t, label, got.PerHost, base.PerHost)
				if got.Latency != base.Latency {
					t.Errorf("%s: latency %v, serial %v", label, got.Latency, base.Latency)
				}
				if got.AggHits != base.AggHits || got.AggSpills != base.AggSpills {
					t.Errorf("%s: agg ledger (%d,%d), serial (%d,%d)",
						label, got.AggHits, got.AggSpills, base.AggHits, base.AggSpills)
				}
			}
		}
	}
}

// The passive keyagg shuffle is a perfectly synchronized all-to-all burst:
// every rank starts at the identical instant (the per-rank injection stagger
// that used to dodge same-instant ties is gone), so same-instant arrivals
// collide at shared switches on purpose. The settle-phase crossbar must keep
// the run byte-identical at 1, 2, 4, and 8 partitions.
func TestKeyAggSynchronizedShuffleIdentity(t *testing.T) {
	prm := DefaultParams()
	want := ExpectedPerHost(KeyAgg, 16, opParams(KeyAgg, prm))
	base := fatRun(KeyAgg, false, 16, 1, prm)
	requireRows(t, "keyagg shuffle serial", base.PerHost, want)
	if !base.Correct {
		t.Fatal("serial shuffle incorrect")
	}
	for _, parts := range []int{2, 4, 8} {
		got := fatRun(KeyAgg, false, 16, parts, prm)
		label := fmt.Sprintf("keyagg shuffle parts=%d", parts)
		requireRows(t, label, got.PerHost, base.PerHost)
		if got.Latency != base.Latency {
			t.Errorf("%s: latency %v, serial %v", label, got.Latency, base.Latency)
		}
		if got.AggHits != base.AggHits || got.AggSpills != base.AggSpills {
			t.Errorf("%s: agg ledger (%d,%d), serial (%d,%d)",
				label, got.AggHits, got.AggSpills, base.AggHits, base.AggSpills)
		}
	}
}

// The key-aggregation ledger must balance at every budget, spill when the
// table cannot hold the key space, and stay spill-free when it can.
func TestKeyAggLedgerBalance(t *testing.T) {
	prm := DefaultParams()
	for _, budget := range []int{1, 2, 4, 8, 32, 64, 1 << 20} {
		prm.AggBudget = budget
		for _, r := range []Result{treeRun(KeyAgg, true, 8, prm), fatRun(KeyAgg, true, 16, 1, prm)} {
			if !r.Correct {
				t.Errorf("budget=%d: incorrect result", budget)
			}
			if !r.AggBalanced() {
				t.Errorf("budget=%d: ledger unbalanced: hits=%d spills=%d ingested=%d",
					budget, r.AggHits, r.AggSpills, r.AggIngested)
			}
			if len(r.PerSwitch) == 0 || r.AggIngested == 0 {
				t.Errorf("budget=%d: no per-switch ledgers harvested", budget)
			}
			if budget < prm.Keys/2 && r.AggSpills == 0 {
				t.Errorf("budget=%d: expected spills with %d keys", budget, prm.Keys)
			}
			if budget >= prm.Keys && r.AggSpills != 0 {
				t.Errorf("budget=%d: %d spills with the whole key space resident", budget, r.AggSpills)
			}
		}
	}
}

// Passive runs must leave switch handler state untouched.
func TestPassiveTouchesNoSwitchState(t *testing.T) {
	c := cluster.NewTreeCluster(sim.NewEngine(), cluster.DefaultTreeConfig(8))
	RunOn(c, Allreduce, false, 8, DefaultParams())
	for _, sw := range c.Switches {
		for _, id := range []int{upHandlerID, mcastHandlerID, scatterHandlerID, gatherHandlerID, kaHandlerID} {
			if sw.HandlerState(id) != nil {
				t.Fatalf("passive run installed state for handler %d on %s", id, sw.Name())
			}
		}
	}
}

// propRand is a deterministic splitmix64 stream for the property tests.
type propRand struct{ s uint64 }

func (r *propRand) next(n int) int {
	r.s += 0x9E3779B97F4A7C15
	return int(apps.Mix64(r.s) % uint64(n))
}

// Satellite property test, random-shape arm: for seeded random tree shapes
// and vector sizes, active allreduce/gather are byte-identical to the
// in-process host-only reference fold (and to the passive run).
func TestPropertyRandomTreeShapes(t *testing.T) {
	rounds := 12
	if testing.Short() {
		rounds = 4
	}
	rng := &propRand{s: 0xC0115EED}
	for i := 0; i < rounds; i++ {
		cfg := cluster.DefaultTreeConfig(2 + rng.next(23))
		cfg.HostsPerLeaf = 2 + rng.next(7)
		cfg.Arity = 2 + rng.next(7)
		prm := DefaultParams()
		prm.Elems = 4 + rng.next(61)
		prm.VectorBytes = int64(prm.Elems) * 8
		for _, op := range []Op{Allreduce, Gather} {
			want := ExpectedPerHost(op, cfg.Hosts, prm)
			act := RunOn(cluster.NewTreeCluster(sim.NewEngine(), cfg), op, true, cfg.Hosts, prm)
			pas := RunOn(cluster.NewTreeCluster(sim.NewEngine(), cfg), op, false, cfg.Hosts, prm)
			label := fmt.Sprintf("round %d: p=%d leaf=%d arity=%d elems=%d %s",
				i, cfg.Hosts, cfg.HostsPerLeaf, cfg.Arity, prm.Elems, op)
			requireRows(t, label+" active", act.PerHost, want)
			requireRows(t, label+" passive", pas.PerHost, want)
		}
	}
}

// Satellite property test, partition arm: random vector sizes on fat trees
// at 1/2/4 partitions — active allreduce/gather match the reference fold and
// are byte-identical across partition counts.
func TestPropertyPartitionedMatchesReference(t *testing.T) {
	rounds := 6
	if testing.Short() {
		rounds = 2
	}
	rng := &propRand{s: 0xFA77EE}
	for i := 0; i < rounds; i++ {
		hosts := []int{8, 16}[rng.next(2)]
		prm := DefaultParams()
		prm.Elems = 4 + rng.next(61)
		prm.VectorBytes = int64(prm.Elems) * 8
		for _, op := range []Op{Allreduce, Gather} {
			want := ExpectedPerHost(op, hosts, prm)
			var base Result
			for pi, parts := range []int{1, 2, 4} {
				got := fatRun(op, true, hosts, parts, prm)
				label := fmt.Sprintf("round %d: hosts=%d elems=%d %s parts=%d", i, hosts, prm.Elems, op, parts)
				requireRows(t, label, got.PerHost, want)
				if pi == 0 {
					base = got
				} else if got.Latency != base.Latency {
					t.Errorf("%s: latency %v, serial %v", label, got.Latency, base.Latency)
				}
			}
		}
	}
}

func TestParseOp(t *testing.T) {
	for _, op := range allOps {
		got, err := ParseOp(op.String())
		if err != nil || got != op {
			t.Fatalf("ParseOp(%q) = %v, %v", op.String(), got, err)
		}
	}
	if got, err := ParseOp(""); err != nil || got != Allreduce {
		t.Fatalf("ParseOp(\"\") = %v, %v", got, err)
	}
	if _, err := ParseOp("bogus"); err == nil {
		t.Fatal("ParseOp accepted bogus op")
	}
}
