package collective

// Key-grouped aggregation under a bounded switch-memory budget. Each switch
// keeps a table of at most `budget` distinct keys. A record whose key is
// resident (or fits) combines in place — a hit. A record that misses a full
// table is a spill: it forwards up the tree un-aggregated (and re-ingests at
// the parent, which may combine it after all); at the root a spill goes
// straight to the key's home host. When every contributor has signalled
// end-of-stream the switch flushes its table upward (or, at the root, out
// to the home hosts) followed by its own end-of-stream. The per-switch
// ledger hits + spills == ingested is harvested into Result.PerSwitch.
//
// Keys home to rank key mod p; the root closes each host's stream with a
// done marker carrying the batch count, which FIFO delivery orders last.

import (
	"sort"

	"activesan/internal/aswitch"
	"activesan/internal/cache"
	"activesan/internal/cluster"
	"activesan/internal/host"
	"activesan/internal/san"
	"activesan/internal/sim"
)

// kaBatchMax records per message: 32 x 16 bytes fills one MTU.
const kaBatchMax = 32

// kaBatch is a run of keyed records; kaEnd closes a contributor's stream;
// kaDone closes the root-to-host result stream.
type kaBatch struct{ Recs []KV }
type kaEnd struct{}
type kaDone struct{ Msgs int64 }

func kaSize(n int) int64 {
	if n <= 0 {
		return 8
	}
	return int64(n) * 16
}

// kaState is one switch's aggregation table and stream bookkeeping.
type kaState struct {
	table    map[int64]int64
	budget   int
	hits     int64
	spills   int64
	ingested int64

	ends     int
	expected int
	parent   san.NodeID
	argAddr  int64
	tblBase  int64

	// Root-only delivery plan: rank-ordered host ids and per-rank counts of
	// result batches already sent, so the done marker can carry the total.
	hosts  []san.NodeID
	p      int
	sentTo []int64
}

// installKeyAgg places the aggregation handler on overlay switches.
func installKeyAgg(c *cluster.Cluster, sh *shape, prm Params) {
	for _, sw := range c.Switches {
		id := sw.ID()
		if c.Tree.Children[id] == 0 {
			continue
		}
		st := &kaState{
			table:    map[int64]int64{},
			budget:   prm.budget(),
			expected: c.Tree.Children[id],
			parent:   c.Tree.Parent[id],
			argAddr:  sh.slot[id] * san.MTU,
			tblBase:  sw.Space().Alloc(int64(prm.budget())*16, 64),
			hosts:    sh.hostIDs,
			p:        sh.p,
			sentTo:   make([]int64, sh.p),
		}
		sw.SetState(kaHandlerID, st)
		sw.Register(kaHandlerID, "coll-keyagg", keyAggHandler(prm))
	}
}

// kaSendUp forwards a record batch one overlay level up as a fresh active
// message (re-ingested there), or — at the root — out to each record's home
// host in rank order.
func kaSendUp(x *aswitch.Ctx, st *kaState, recs []KV) {
	if len(recs) == 0 {
		return
	}
	if st.parent != san.NoNode {
		for lo := 0; lo < len(recs); lo += kaBatchMax {
			hi := lo + kaBatchMax
			if hi > len(recs) {
				hi = len(recs)
			}
			x.Send(aswitch.SendSpec{
				Dst: st.parent, Type: san.ActiveMsg, HandlerID: kaHandlerID,
				Addr: st.argAddr, Size: kaSize(hi - lo),
				Payload: kaBatch{Recs: recs[lo:hi]},
			})
		}
		return
	}
	// Root: group per home rank, preserving arrival order within a rank.
	perRank := make([][]KV, st.p)
	for _, kv := range recs {
		r := int(kv.K) % st.p
		perRank[r] = append(perRank[r], kv)
	}
	for r, part := range perRank {
		for lo := 0; lo < len(part); lo += kaBatchMax {
			hi := lo + kaBatchMax
			if hi > len(part) {
				hi = len(part)
			}
			x.Send(aswitch.SendSpec{
				Dst: st.hosts[r], Type: san.Data, Addr: 0x1000,
				Size: kaSize(hi - lo), Flow: kaFlow,
				Payload: kaBatch{Recs: part[lo:hi]},
			})
			st.sentTo[r]++
		}
	}
}

// keyAggHandler ingests record batches into the bounded table and flushes on
// stream completion.
func keyAggHandler(prm Params) aswitch.HandlerFunc {
	return func(x *aswitch.Ctx) {
		st := x.State().(*kaState)
		if b, ok := x.CPU().ATB().Lookup(x.BaseAddr()); ok {
			x.ReadAll(b)
			x.DeallocateBuf(b)
		}
		switch m := x.Args().(type) {
		case kaBatch:
			x.Compute(prm.SwitchAddCycles * 2 * int64(len(m.Recs)))
			var spilled []KV
			for _, kv := range m.Recs {
				st.ingested++
				// One table probe per record: the slot the key hashes to.
				x.MemLoad(st.tblBase + (kv.K%int64(st.budget))*16)
				if _, ok := st.table[kv.K]; ok || len(st.table) < st.budget {
					st.table[kv.K] += kv.V
					st.hits++
				} else {
					st.spills++
					spilled = append(spilled, kv)
				}
			}
			kaSendUp(x, st, spilled)

		case kaEnd:
			st.ends++
			if st.ends < st.expected {
				return
			}
			// Flush the table in key order, then close our own stream.
			keys := make([]int64, 0, len(st.table))
			for k := range st.table {
				keys = append(keys, k)
			}
			sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
			flush := make([]KV, len(keys))
			for i, k := range keys {
				flush[i] = KV{K: k, V: st.table[k]}
			}
			x.Compute(prm.SwitchAddCycles * int64(len(flush)))
			kaSendUp(x, st, flush)
			if st.parent != san.NoNode {
				x.Send(aswitch.SendSpec{
					Dst: st.parent, Type: san.ActiveMsg, HandlerID: kaHandlerID,
					Addr: st.argAddr, Size: 8, Payload: kaEnd{},
				})
				return
			}
			for r, id := range st.hosts {
				x.Send(aswitch.SendSpec{
					Dst: id, Type: san.Data, Addr: 0x1000,
					Size: 8, Flow: kaFlow, Payload: kaDone{Msgs: st.sentTo[r]},
				})
			}
		}
	}
}

// runActiveKeyAggHost streams rank `rank`'s records to its leaf switch and
// folds the result batches the root sends back for the keys homed here.
func runActiveKeyAggHost(proc *sim.Proc, c *cluster.Cluster, sh *shape, h *host.Host,
	rank int, prm Params, out [][]int64, setFinish func(sim.Time)) {
	leaf := c.Tree.HostLeaf[h.ID()]
	recs := RecordsFor(rank, prm)
	region := h.Space().Alloc(kaSize(len(recs)), 64)
	h.CPU().TouchRange(proc, region, kaSize(len(recs)), cache.Load)
	for lo := 0; lo < len(recs); lo += kaBatchMax {
		hi := lo + kaBatchMax
		if hi > len(recs) {
			hi = len(recs)
		}
		h.SendMessage(proc, &san.Message{
			Hdr: san.Header{
				Dst: leaf, Type: san.ActiveMsg,
				HandlerID: kaHandlerID, Addr: sh.slot[h.ID()] * san.MTU,
			},
			Size:    kaSize(hi - lo),
			Payload: kaBatch{Recs: recs[lo:hi]},
		}, region)
	}
	h.SendMessage(proc, &san.Message{
		Hdr: san.Header{
			Dst: leaf, Type: san.ActiveMsg,
			HandlerID: kaHandlerID, Addr: sh.slot[h.ID()] * san.MTU,
		},
		Size:    8,
		Payload: kaEnd{},
	}, region)

	sums := map[int64]int64{}
	var got int64
	for {
		comp := h.RecvFlow(proc, sh.root, kaFlow)
		h.CPU().BusyFor(proc, h.RecvCost())
		switch m := comp.Payloads[0].(type) {
		case kaBatch:
			got++
			for _, kv := range m.Recs {
				sums[kv.K] += kv.V
			}
			h.CPU().Compute(proc, prm.HostAddInstr*int64(len(m.Recs)))
		case kaDone:
			if got != m.Msgs {
				// FIFO delivery makes this unreachable; a mismatched row
				// fails the byte-identity checks loudly.
				out[rank] = []int64{-1}
				setFinish(proc.Now())
				return
			}
			out[rank] = flattenSums(sums)
			setFinish(proc.Now())
			return
		}
	}
}

// flattenSums renders a key-sum map as the flattened sorted row the oracle
// uses.
func flattenSums(sums map[int64]int64) []int64 {
	keys := make([]int64, 0, len(sums))
	for k := range sums {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
	row := make([]int64, 0, 2*len(keys))
	for _, k := range keys {
		row = append(row, k, sums[k])
	}
	return row
}

// harvestAgg collects every switch's aggregation ledger into the result.
func harvestAgg(c *cluster.Cluster, res *Result) {
	for _, sw := range c.Switches {
		st, ok := sw.HandlerState(kaHandlerID).(*kaState)
		if !ok {
			continue
		}
		res.PerSwitch = append(res.PerSwitch, SwitchAgg{
			Name: sw.Name(), Hits: st.hits, Spills: st.spills, Ingested: st.ingested,
		})
		res.AggHits += st.hits
		res.AggSpills += st.spills
		res.AggIngested += st.ingested
	}
}
