package collective

// The passive references: host-only algorithms over plain data messages,
// the baselines every active run is measured against and must byte-match.
// Allreduce/barrier use recursive doubling (the standard host-side MPI
// algorithm, and a stronger baseline than reduce-then-broadcast); scatter
// and gather use binomial trees; key aggregation is a direct combiner
// shuffle (fold locally, exchange per home rank, fold again).

import (
	"activesan/internal/cache"
	"activesan/internal/cluster"
	"activesan/internal/host"
	"activesan/internal/san"
	"activesan/internal/sim"
)

// runPassiveHost is rank `rank`'s process in a passive collective.
func runPassiveHost(proc *sim.Proc, c *cluster.Cluster, sh *shape, h *host.Host,
	rank int, op Op, prm Params, out [][]int64, setFinish func(sim.Time)) {
	switch op {
	case Allreduce, Barrier:
		runRecursiveDoubling(proc, sh, h, rank, op, prm, out, setFinish)
	case Scatter:
		runBinomialScatter(proc, sh, h, rank, prm, out, setFinish)
	case Gather:
		runBinomialGather(proc, sh, h, rank, prm, out, setFinish)
	case KeyAgg:
		runShuffleKeyAgg(proc, sh, h, rank, prm, out, setFinish)
	}
}

// combineInto folds a freshly received vector into vec, charging the
// host-side read-and-add costs.
func combineInto(proc *sim.Proc, h *host.Host, region int64, prm Params, vec, other []int64) {
	h.CPU().TouchRange(proc, 0x1000, prm.VectorBytes, cache.Load)
	h.CPU().TouchRange(proc, region, prm.VectorBytes, cache.Load)
	h.CPU().Compute(proc, prm.HostAddInstr*int64(len(vec)))
	for i := range vec {
		vec[i] += other[i]
	}
}

// runRecursiveDoubling: log2(p) pairwise exchange rounds; ranks past the
// largest power of two fold into a partner first and get the result back
// after the loop.
func runRecursiveDoubling(proc *sim.Proc, sh *shape, h *host.Host,
	rank int, op Op, prm Params, out [][]int64, setFinish func(sim.Time)) {
	p := sh.p
	vec := HostVector(rank, prm.Elems)
	if op == Barrier {
		vec = []int64{1}
	}
	region := h.Space().Alloc(prm.VectorBytes, 64)
	h.CPU().TouchRange(proc, region, prm.VectorBytes, cache.Load)

	p2 := 1
	for p2*2 <= p {
		p2 *= 2
	}
	rem := p - p2

	send := func(dst int, flow int64, v []int64) {
		// Snapshot the payload: vec mutates in later rounds while the copy
		// is still in flight.
		h.SendMessage(proc, &san.Message{
			Hdr:     san.Header{Dst: sh.hostIDs[dst], Type: san.Data, Addr: 0x1000, Flow: flow},
			Size:    prm.VectorBytes,
			Payload: append([]int64(nil), v...),
		}, region)
	}
	recv := func(src int, flow int64) []int64 {
		comp := h.RecvFlow(proc, sh.hostIDs[src], flow)
		h.CPU().BusyFor(proc, h.RecvCost())
		return comp.Payloads[0].([]int64)
	}

	if rank >= p2 {
		send(rank-p2, rdPreFlow, vec)
		vec = append([]int64(nil), recv(rank-p2, rdPostFlow)...)
	} else {
		if rank < rem {
			combineInto(proc, h, region, prm, vec, recv(rank+p2, rdPreFlow))
		}
		for k := 1; k < p2; k <<= 1 {
			partner := rank ^ k
			send(partner, rdFlow+int64(k), vec)
			combineInto(proc, h, region, prm, vec, recv(partner, rdFlow+int64(k)))
		}
		if rank < rem {
			send(rank+p2, rdPostFlow, vec)
		}
	}
	out[rank] = append([]int64(nil), vec...)
	setFinish(proc.Now())
}

// runBinomialScatter: rank 0's vector splits down the binomial tree, each
// round handing the upper half of the held rank range to rank+k.
func runBinomialScatter(proc *sim.Proc, sh *shape, h *host.Host,
	rank int, prm Params, out [][]int64, setFinish func(sim.Time)) {
	p := sh.p
	span := 1
	for span < p {
		span <<= 1
	}
	var hold []int64
	if rank == 0 {
		hold = HostVector(0, prm.Elems)
		region := h.Space().Alloc(prm.VectorBytes, 64)
		h.CPU().TouchRange(proc, region, prm.VectorBytes, cache.Load)
	} else {
		src := rank &^ (rank & -rank)
		comp := h.RecvFlow(proc, sh.hostIDs[src], binFlow+int64(rank))
		h.CPU().BusyFor(proc, h.RecvCost())
		s := comp.Payloads[0].(segMsg)
		hold = make([]int64, prm.Elems)
		copy(hold[s.Lo:], s.Vals)
	}
	sendRegion := h.Space().Alloc(prm.VectorBytes, 64)
	for k := span >> 1; k >= 1; k >>= 1 {
		if rank%k != 0 || rank&k != 0 {
			continue
		}
		d := rank + k
		if d >= p {
			continue
		}
		lo, _ := sliceBounds(d, p, prm.Elems)
		end := d + k
		if end > p {
			end = p
		}
		_, hi := sliceBounds(end-1, p, prm.Elems)
		h.SendMessage(proc, &san.Message{
			Hdr:     san.Header{Dst: sh.hostIDs[d], Type: san.Data, Addr: 0x1000, Flow: binFlow + int64(d)},
			Size:    segSize(hi - lo),
			Payload: segMsg{Lo: lo, Vals: hold[lo:hi]},
		}, sendRegion)
	}
	lo, hi := sliceBounds(rank, p, prm.Elems)
	out[rank] = append([]int64(nil), hold[lo:hi]...)
	setFinish(proc.Now())
}

// runBinomialGather: the scatter tree inverted — each rank accumulates the
// slices of ranks [rank, rank+k) and hands the run to rank-k.
func runBinomialGather(proc *sim.Proc, sh *shape, h *host.Host,
	rank int, prm Params, out [][]int64, setFinish func(sim.Time)) {
	p := sh.p
	span := 1
	for span < p {
		span <<= 1
	}
	buf := make([]int64, prm.Elems)
	myLo, myHi := sliceBounds(rank, p, prm.Elems)
	copy(buf[myLo:myHi], HostVector(rank, prm.Elems)[myLo:myHi])
	region := h.Space().Alloc(prm.VectorBytes, 64)
	h.CPU().TouchRange(proc, region, segSize(myHi-myLo), cache.Load)

	// Element range currently held: ranks [rank, upper).
	upper := rank + 1
	for k := 1; k < span; k <<= 1 {
		if rank&k != 0 {
			elemLo := rank * prm.Elems / p
			elemHi := upper * prm.Elems / p
			h.SendMessage(proc, &san.Message{
				Hdr:     san.Header{Dst: sh.hostIDs[rank-k], Type: san.Data, Addr: 0x1000, Flow: binFlow + int64(rank)},
				Size:    segSize(elemHi - elemLo),
				Payload: segMsg{Lo: elemLo, Vals: buf[elemLo:elemHi]},
			}, region)
			break
		}
		if rank+k < p {
			comp := h.RecvFlow(proc, sh.hostIDs[rank+k], binFlow+int64(rank+k))
			h.CPU().BusyFor(proc, h.RecvCost())
			s := comp.Payloads[0].(segMsg)
			h.CPU().TouchRange(proc, 0x1000, segSize(len(s.Vals)), cache.Load)
			copy(buf[s.Lo:], s.Vals)
			upper = rank + 2*k
			if upper > p {
				upper = p
			}
		}
	}
	if rank == 0 {
		out[0] = buf
	} else {
		out[rank] = []int64{}
	}
	setFinish(proc.Now())
}

// runShuffleKeyAgg: fold locally, send each home rank its combined partition
// (every pair exchanges exactly one message, empty ones included so the
// receive count is fixed), fold the arrivals.
func runShuffleKeyAgg(proc *sim.Proc, sh *shape, h *host.Host,
	rank int, prm Params, out [][]int64, setFinish func(sim.Time)) {
	p := sh.p
	recs := RecordsFor(rank, prm)
	region := h.Space().Alloc(kaSize(len(recs)), 64)
	// All ranks start their shuffle at the same instant: the settle-phase
	// crossbar arbitrates same-instant arrivals by input port, so even a
	// perfectly synchronized all-to-all burst is byte-identical at any
	// partition count (see PERFORMANCE.md, "Determinism contract").
	h.CPU().TouchRange(proc, region, kaSize(len(recs)), cache.Load)
	h.CPU().Compute(proc, prm.HostAddInstr*int64(len(recs)))

	// Local combine, partitioned by home rank with keys in sorted order.
	local := map[int64]int64{}
	for _, kv := range recs {
		local[kv.K] += kv.V
	}
	parts := make([][]KV, p)
	for _, row := range flattenPairs(local) {
		r := int(row.K) % p
		parts[r] = append(parts[r], row)
	}

	for d := 0; d < p; d++ {
		if d == rank {
			continue
		}
		h.SendMessage(proc, &san.Message{
			Hdr:     san.Header{Dst: sh.hostIDs[d], Type: san.Data, Addr: 0x1000, Flow: kaShufFlow + int64(rank)},
			Size:    kaSize(len(parts[d])),
			Payload: kaBatch{Recs: parts[d]},
		}, region)
	}

	sums := map[int64]int64{}
	for _, kv := range parts[rank] {
		sums[kv.K] += kv.V
	}
	for j := 0; j < p; j++ {
		if j == rank {
			continue
		}
		comp := h.RecvFlow(proc, sh.hostIDs[j], kaShufFlow+int64(j))
		h.CPU().BusyFor(proc, h.RecvCost())
		m := comp.Payloads[0].(kaBatch)
		h.CPU().TouchRange(proc, 0x1000, kaSize(len(m.Recs)), cache.Load)
		h.CPU().Compute(proc, prm.HostAddInstr*int64(len(m.Recs)))
		for _, kv := range m.Recs {
			sums[kv.K] += kv.V
		}
	}
	out[rank] = flattenSums(sums)
	setFinish(proc.Now())
}

// flattenPairs renders a key-sum map as sorted KV records.
func flattenPairs(sums map[int64]int64) []KV {
	row := flattenSums(sums)
	out := make([]KV, 0, len(row)/2)
	for i := 0; i < len(row); i += 2 {
		out = append(out, KV{K: row[i], V: row[i+1]})
	}
	return out
}
