package collective

// The active data path: in-switch handlers on the aggregation overlay.
// Allreduce pairs an up-tree combine (LOAD_REDUCE style: children's vectors
// admit into per-port argument windows and fold into a switch-memory
// accumulator) with a down-tree multicast (STORE_MC style: each switch
// forwards the result once per child subtree and once per member host).
// Scatter splits a segment per child rank range on the way down; gather
// concatenates rank slices on the way up. Key aggregation lives in
// keyagg.go.

import (
	"activesan/internal/aswitch"
	"activesan/internal/cache"
	"activesan/internal/cluster"
	"activesan/internal/host"
	"activesan/internal/san"
	"activesan/internal/sim"
)

// Collective handler ids sit above the reduce benchmark's (16) so the two
// suites can never be confused in a trace.
const (
	upHandlerID      = 17
	mcastHandlerID   = 18
	scatterHandlerID = 19
	gatherHandlerID  = 20
	kaHandlerID      = 21
)

// Flows for switch-to-host deliveries and the passive references.
const (
	resultFlow  = 0x7100 // allreduce/barrier result multicast
	scatterFlow = 0x7110 // scatter slice delivery
	gatherFlow  = 0x7120 // gather result to rank 0
	kaFlow      = 0x7130 // key-aggregation batches root -> destination host
	rdFlow      = 0x7200 // + round, recursive-doubling exchange
	rdPreFlow   = 0x7300 // recursive-doubling pre-fold (non-power-of-two)
	rdPostFlow  = 0x7310 // recursive-doubling post-broadcast
	binFlow     = 0x7400 // + destination rank, binomial scatter/gather
	kaShufFlow  = 0x7500 // passive key-aggregation shuffle
)

// Down-phase argument windows sit above every up-phase slot (buildShape
// guards the invariant): one window suffices per direction because a switch
// has exactly one overlay parent, so at most one down message is in flight
// toward it at a time.
const (
	downAddr    = 48 * san.MTU
	scatterAddr = 50 * san.MTU
)

// segMsg carries a contiguous element segment [Lo, Lo+len(Vals)).
type segMsg struct {
	Lo   int
	Vals []int64
}

func segSize(n int) int64 {
	if n <= 0 {
		return 8
	}
	return int64(n) * 8
}

// upState is one switch's allreduce combine state plus its down-tree fan-out.
type upState struct {
	acc      []int64
	got      int
	expected int
	parent   san.NodeID
	argAddr  int64
	accBase  int64
	vecBytes int64
	childSw  []san.NodeID
	members  []san.NodeID
}

// downState is one switch's multicast fan-out.
type downState struct {
	childSw  []san.NodeID
	members  []san.NodeID
	vecBytes int64
}

// deliverDown forwards a completed result one overlay level: once per child
// switch (an active message that re-invokes the multicast handler) and once
// per member host (a plain data message on the result flow).
func deliverDown(x *aswitch.Ctx, vec []int64, childSw, members []san.NodeID, vecBytes int64) {
	for _, cs := range childSw {
		x.Send(aswitch.SendSpec{
			Dst: cs, Type: san.ActiveMsg, HandlerID: mcastHandlerID,
			Addr: downAddr, Size: vecBytes, Payload: vec,
		})
	}
	for _, dst := range members {
		x.Send(aswitch.SendSpec{
			Dst: dst, Type: san.Data, Addr: 0x1000,
			Size: vecBytes, Flow: resultFlow, Payload: vec,
		})
	}
}

// installAllreduce places the combine and multicast handlers on every
// overlay-participating switch; pass-through switches stay conventional.
func installAllreduce(c *cluster.Cluster, sh *shape, prm Params) {
	for _, sw := range c.Switches {
		id := sw.ID()
		if c.Tree.Children[id] == 0 {
			continue
		}
		st := &upState{
			acc:      make([]int64, prm.Elems),
			expected: c.Tree.Children[id],
			parent:   c.Tree.Parent[id],
			argAddr:  sh.slot[id] * san.MTU,
			accBase:  sw.Space().Alloc(prm.VectorBytes, 64),
			vecBytes: prm.VectorBytes,
			childSw:  sh.childSw[id],
			members:  sh.members[id],
		}
		sw.SetState(upHandlerID, st)
		sw.Register(upHandlerID, "coll-reduce", allreduceUpHandler(prm))
		sw.SetState(mcastHandlerID, &downState{
			childSw: sh.childSw[id], members: sh.members[id], vecBytes: prm.VectorBytes,
		})
		sw.Register(mcastHandlerID, "coll-mcast", mcastHandler(prm))
	}
}

// allreduceUpHandler folds arriving vectors; the subtree-complete switch
// forwards its partial up, and the root turns around into the multicast.
func allreduceUpHandler(prm Params) aswitch.HandlerFunc {
	return func(x *aswitch.Ctx) {
		st := x.State().(*upState)
		vec := x.Args().([]int64)
		if b, ok := x.CPU().ATB().Lookup(x.BaseAddr()); ok {
			x.ReadAll(b)
			x.DeallocateBuf(b)
		}
		x.Compute(prm.SwitchAddCycles * int64(len(vec)))
		for i, v := range vec {
			// The accumulator lives in switch memory; one line in four is
			// touched architecturally (it fits the D-cache).
			if i%4 == 0 {
				x.MemLoad(st.accBase + int64(i)*8)
			}
			st.acc[i] += v
		}
		st.got++
		if st.got < st.expected {
			return
		}
		acc := append([]int64(nil), st.acc...)
		if st.parent != san.NoNode {
			x.Send(aswitch.SendSpec{
				Dst: st.parent, Type: san.ActiveMsg, HandlerID: upHandlerID,
				Addr: st.argAddr, Size: st.vecBytes, Payload: acc,
			})
			return
		}
		deliverDown(x, acc, st.childSw, st.members, st.vecBytes)
	}
}

// mcastHandler relays the finished result down one more overlay level.
func mcastHandler(prm Params) aswitch.HandlerFunc {
	return func(x *aswitch.Ctx) {
		st := x.State().(*downState)
		vec := x.Args().([]int64)
		if b, ok := x.CPU().ATB().Lookup(x.BaseAddr()); ok {
			x.ReadAll(b)
			x.DeallocateBuf(b)
		}
		x.Compute(prm.SwitchAddCycles * int64(len(vec)))
		deliverDown(x, vec, st.childSw, st.members, st.vecBytes)
	}
}

// scatChild is one down-tree scatter target: a child switch and the element
// range its subtree owns.
type scatChild struct {
	id             san.NodeID
	elemLo, elemHi int
}

// scatState is one switch's scatter split plan.
type scatState struct {
	children []scatChild
	members  []san.NodeID
	ranks    []int
	p, elems int
}

// installScatter places the split handler on overlay switches.
func installScatter(c *cluster.Cluster, sh *shape, prm Params) {
	for _, sw := range c.Switches {
		id := sw.ID()
		if c.Tree.Children[id] == 0 {
			continue
		}
		st := &scatState{members: sh.members[id], ranks: sh.memberRank[id], p: sh.p, elems: prm.Elems}
		for _, cs := range sh.childSw[id] {
			lo, hi := sh.lo[cs], sh.hi[cs]
			if hi <= lo {
				continue
			}
			st.children = append(st.children, scatChild{
				id: cs, elemLo: lo * prm.Elems / sh.p, elemHi: hi * prm.Elems / sh.p,
			})
		}
		sw.SetState(scatterHandlerID, st)
		sw.Register(scatterHandlerID, "coll-scatter", scatterHandler(prm))
	}
}

// scatterHandler splits an incoming segment per child subtree's rank range
// and hands each member host its slice.
func scatterHandler(prm Params) aswitch.HandlerFunc {
	return func(x *aswitch.Ctx) {
		st := x.State().(*scatState)
		in := x.Args().(segMsg)
		if b, ok := x.CPU().ATB().Lookup(x.BaseAddr()); ok {
			x.ReadAll(b)
			x.DeallocateBuf(b)
		}
		x.Compute(prm.SwitchAddCycles * int64(len(in.Vals)))
		for _, ch := range st.children {
			x.Send(aswitch.SendSpec{
				Dst: ch.id, Type: san.ActiveMsg, HandlerID: scatterHandlerID,
				Addr: scatterAddr, Size: segSize(ch.elemHi - ch.elemLo),
				Payload: segMsg{Lo: ch.elemLo, Vals: in.Vals[ch.elemLo-in.Lo : ch.elemHi-in.Lo]},
			})
		}
		for i, dst := range st.members {
			lo, hi := sliceBounds(st.ranks[i], st.p, st.elems)
			x.Send(aswitch.SendSpec{
				Dst: dst, Type: san.Data, Addr: 0x1000,
				Size: segSize(hi - lo), Flow: scatterFlow,
				Payload: segMsg{Lo: lo, Vals: in.Vals[lo-in.Lo : hi-in.Lo]},
			})
		}
	}
}

// gathState is one switch's gather concatenation state.
type gathState struct {
	buf      []int64
	got      int
	expected int
	parent   san.NodeID
	argAddr  int64
	accBase  int64
	elemLo   int
	elemHi   int
	dst      san.NodeID // rank 0's id, for the root delivery
}

// installGather places the concatenation handler on overlay switches.
func installGather(c *cluster.Cluster, sh *shape, prm Params) {
	for _, sw := range c.Switches {
		id := sw.ID()
		if c.Tree.Children[id] == 0 {
			continue
		}
		st := &gathState{
			buf:      make([]int64, prm.Elems),
			expected: c.Tree.Children[id],
			parent:   c.Tree.Parent[id],
			argAddr:  sh.slot[id] * san.MTU,
			accBase:  sw.Space().Alloc(prm.VectorBytes, 64),
			elemLo:   sh.lo[id] * prm.Elems / sh.p,
			elemHi:   sh.hi[id] * prm.Elems / sh.p,
			dst:      sh.hostIDs[0],
		}
		sw.SetState(gatherHandlerID, st)
		sw.Register(gatherHandlerID, "coll-gather", gatherHandler(prm))
	}
}

// gatherHandler writes arriving slices into the subtree buffer and forwards
// the concatenation once every child has reported.
func gatherHandler(prm Params) aswitch.HandlerFunc {
	return func(x *aswitch.Ctx) {
		st := x.State().(*gathState)
		in := x.Args().(segMsg)
		if b, ok := x.CPU().ATB().Lookup(x.BaseAddr()); ok {
			x.ReadAll(b)
			x.DeallocateBuf(b)
		}
		x.Compute(prm.SwitchAddCycles * int64(len(in.Vals)))
		for i := range in.Vals {
			if i%4 == 0 {
				x.MemLoad(st.accBase + int64(in.Lo+i)*8)
			}
			st.buf[in.Lo+i] = in.Vals[i]
		}
		st.got++
		if st.got < st.expected {
			return
		}
		seg := segMsg{Lo: st.elemLo, Vals: append([]int64(nil), st.buf[st.elemLo:st.elemHi]...)}
		if st.parent != san.NoNode {
			x.Send(aswitch.SendSpec{
				Dst: st.parent, Type: san.ActiveMsg, HandlerID: gatherHandlerID,
				Addr: st.argAddr, Size: segSize(len(seg.Vals)), Payload: seg,
			})
			return
		}
		x.Send(aswitch.SendSpec{
			Dst: st.dst, Type: san.Data, Addr: 0x1000,
			Size: segSize(len(seg.Vals)), Flow: gatherFlow, Payload: seg,
		})
	}
}

// installHandlers places the operation's handlers on the overlay.
func installHandlers(c *cluster.Cluster, sh *shape, op Op, prm Params) {
	switch op {
	case Allreduce, Barrier:
		installAllreduce(c, sh, prm)
	case Scatter:
		installScatter(c, sh, prm)
	case Gather:
		installGather(c, sh, prm)
	case KeyAgg:
		installKeyAgg(c, sh, prm)
	}
}

// runActiveHost is rank `rank`'s process in an active collective.
func runActiveHost(proc *sim.Proc, c *cluster.Cluster, sh *shape, h *host.Host,
	rank int, op Op, prm Params, out [][]int64, setFinish func(sim.Time)) {
	leaf := c.Tree.HostLeaf[h.ID()]
	switch op {
	case Allreduce, Barrier:
		vec := HostVector(rank, prm.Elems)
		if op == Barrier {
			vec = []int64{1}
		}
		region := h.Space().Alloc(prm.VectorBytes, 64)
		h.CPU().TouchRange(proc, region, prm.VectorBytes, cache.Load)
		h.SendMessage(proc, &san.Message{
			Hdr: san.Header{
				Dst: leaf, Type: san.ActiveMsg,
				HandlerID: upHandlerID, Addr: sh.slot[h.ID()] * san.MTU,
			},
			Size:    prm.VectorBytes,
			Payload: vec,
		}, region)
		comp := h.RecvFlow(proc, leaf, resultFlow)
		h.CPU().BusyFor(proc, h.RecvCost())
		out[rank] = append([]int64(nil), comp.Payloads[0].([]int64)...)
		setFinish(proc.Now())

	case Scatter:
		if rank == 0 {
			master := HostVector(0, prm.Elems)
			region := h.Space().Alloc(prm.VectorBytes, 64)
			h.CPU().TouchRange(proc, region, prm.VectorBytes, cache.Load)
			// One full-size message into the fabric; the switches split it.
			h.SendMessage(proc, &san.Message{
				Hdr: san.Header{
					Dst: sh.root, Type: san.ActiveMsg,
					HandlerID: scatterHandlerID, Addr: scatterAddr,
				},
				Size:    prm.VectorBytes,
				Payload: segMsg{Lo: 0, Vals: master},
			}, region)
		}
		comp := h.RecvFlow(proc, leaf, scatterFlow)
		h.CPU().BusyFor(proc, h.RecvCost())
		s := comp.Payloads[0].(segMsg)
		out[rank] = append([]int64(nil), s.Vals...)
		setFinish(proc.Now())

	case Gather:
		lo, hi := sliceBounds(rank, sh.p, prm.Elems)
		vals := HostVector(rank, prm.Elems)[lo:hi]
		size := segSize(hi - lo)
		region := h.Space().Alloc(size, 64)
		h.CPU().TouchRange(proc, region, size, cache.Load)
		h.SendMessage(proc, &san.Message{
			Hdr: san.Header{
				Dst: leaf, Type: san.ActiveMsg,
				HandlerID: gatherHandlerID, Addr: sh.slot[h.ID()] * san.MTU,
			},
			Size:    size,
			Payload: segMsg{Lo: lo, Vals: vals},
		}, region)
		if rank == 0 {
			comp := h.RecvFlow(proc, sh.root, gatherFlow)
			h.CPU().BusyFor(proc, h.RecvCost())
			out[0] = append([]int64(nil), comp.Payloads[0].(segMsg).Vals...)
		} else {
			out[rank] = []int64{}
		}
		setFinish(proc.Now())

	case KeyAgg:
		runActiveKeyAggHost(proc, c, sh, h, rank, prm, out, setFinish)
	}
}
