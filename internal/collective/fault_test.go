package collective

// Fault integration (the PR 4 ledger identity on collective runs): a
// link-flap + drop plan armed on an allreduce must leave the injector
// balanced — injected == recovered + tolerated with nothing pending — and
// the passive run must still produce the correct result through
// retransmission. For active runs the reliability layer exempts in-fabric
// handler traffic from probabilistic loss (a switch's handler plane has no
// retransmit protocol; see fault.Injector.protocol), so the drop plan is
// verified to withhold — and a delay plan, which needs no recovery, is the
// lossy-path probe that does fire everywhere.

import (
	"testing"

	"activesan/internal/cluster"
	"activesan/internal/fault"
)

func armedFatTree(hosts int, plan *fault.Plan) (*cluster.Cluster, *fault.Injector) {
	c := cluster.NewPartitionedFatTreeCluster(cluster.DefaultFatTreeConfig(hosts), 1)
	return c, fault.Arm(c, plan, 0)
}

func TestFaultInvariantPassiveAllreduceFlapDrop(t *testing.T) {
	c, in := armedFatTree(16, &fault.Plan{
		Seed:  9,
		Links: []fault.LinkRule{{Drop: 0.02, Corrupt: 0.01}},
		Events: []fault.Event{
			{AtNS: 3000, Kind: fault.LinkDown, Link: "h1.up"},
			{AtNS: 9000, Kind: fault.LinkUp, Link: "h1.up"},
		},
		Reliability: &fault.Reliability{MaxRetries: 128},
	})
	res := RunOn(c, Allreduce, false, 16, DefaultParams())
	cnt := in.Counts()
	if !res.Correct {
		t.Fatalf("passive allreduce incorrect under flap+drop (counts %+v)", cnt)
	}
	if cnt.Injected == 0 || cnt.Dropped == 0 {
		t.Fatalf("plan did not bite: %+v", cnt)
	}
	if cnt.LinkEvents != 2 {
		t.Fatalf("flap events applied %d times, want 2", cnt.LinkEvents)
	}
	if pend := in.Pending(); pend != 0 {
		t.Fatalf("%d losses still pending after quiesce", pend)
	}
	if !in.Balanced() {
		t.Fatalf("ledger unbalanced: Injected=%d Recovered=%d Tolerated=%d",
			cnt.Injected, cnt.Recovered, cnt.Tolerated)
	}
}

func TestFaultInvariantActiveAllreduceDelayPlan(t *testing.T) {
	// Delays fire on every link — including the in-fabric handler hops loss
	// exemption protects — and are tolerated in place, so the active path
	// both completes correctly and shows a nonzero balanced ledger.
	c, in := armedFatTree(16, &fault.Plan{
		Seed:  11,
		Links: []fault.LinkRule{{DelayNS: 150, JitterNS: 250}},
	})
	res := RunOn(c, Allreduce, true, 16, DefaultParams())
	cnt := in.Counts()
	if !res.Correct {
		t.Fatalf("active allreduce incorrect under delay plan (counts %+v)", cnt)
	}
	if cnt.Injected == 0 || cnt.Delayed == 0 {
		t.Fatalf("delay plan did not bite: %+v", cnt)
	}
	if !in.Balanced() {
		t.Fatalf("ledger unbalanced: %+v pending %d", cnt, in.Pending())
	}
}

func TestFaultInvariantActiveAllreduceDropExempt(t *testing.T) {
	// With reliability armed, probabilistic loss is withheld from packets
	// with a switch endpoint: dropping an in-fabric collective message would
	// hang the stream with no protocol to re-deliver it. The active run must
	// complete byte-correct, the withheld losses must be visible as Exempt,
	// and the ledger must balance.
	c, in := armedFatTree(16, &fault.Plan{
		Seed:        13,
		Links:       []fault.LinkRule{{Drop: 0.05}},
		Reliability: &fault.Reliability{MaxRetries: 64},
	})
	res := RunOn(c, Allreduce, true, 16, DefaultParams())
	cnt := in.Counts()
	if !res.Correct {
		t.Fatalf("active allreduce incorrect under exempted drop plan (counts %+v)", cnt)
	}
	if cnt.Exempt == 0 {
		t.Fatalf("no losses exempted — the fabric-path guard did not engage: %+v", cnt)
	}
	if !in.Balanced() {
		t.Fatalf("ledger unbalanced: %+v pending %d", cnt, in.Pending())
	}
}

func TestFaultInvariantLedgerDeterministic(t *testing.T) {
	run := func() fault.Counts {
		c, in := armedFatTree(8, &fault.Plan{
			Seed:        21,
			Links:       []fault.LinkRule{{Drop: 0.03}},
			Reliability: &fault.Reliability{MaxRetries: 128},
		})
		res := RunOn(c, Allreduce, false, 8, DefaultParams())
		if !res.Correct {
			t.Fatal("passive allreduce incorrect under drop plan")
		}
		if !in.Balanced() {
			t.Fatalf("ledger unbalanced: %+v pending %d", in.Counts(), in.Pending())
		}
		return in.Counts()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("ledger differs across identical runs:\n  %+v\n  %+v", a, b)
	}
}
