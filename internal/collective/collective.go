// Package collective is the in-network collective-operations library: a
// suite of group communication primitives layered on the aggregation
// overlay (cluster.Cluster.Tree) that every shipped topology — the paper's
// reduction tree and the k-ary fat trees — exposes. Four operations ship:
//
//   - Allreduce: reduce up the overlay tree, multicast the result down the
//     same tree (the tiny-switch LOAD_REDUCE / STORE_MC pairing), so every
//     host ends with the full combined vector.
//   - Barrier: the zero-payload allreduce fast path — 8-byte tokens up,
//     an 8-byte release down.
//   - Scatter / Gather: the root rank's vector is split down the tree per
//     subtree rank range, or per-rank slices are concatenated up it.
//   - Key-grouped aggregation: MapReduce-shuffle / gradient-sync style.
//     Switches combine records per key in a bounded table and spill to the
//     destination host when the switch-memory budget is hit (P4COM's
//     central problem); per-switch hit/spill counters satisfy the ledger
//     hits + spills == keyed records.
//
// Every operation runs active (in-switch handlers) or passive (a host-only
// reference algorithm: recursive doubling for allreduce/barrier, binomial
// trees for scatter/gather, a direct combiner shuffle for key aggregation)
// and the two variants produce byte-identical per-host results, verified
// against in-process oracles. Runs work on serial and partitioned clusters
// alike and are byte-identical at any partition count. See COLLECTIVES.md.
package collective

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"activesan/internal/apps"
	"activesan/internal/cluster"
	"activesan/internal/san"
	"activesan/internal/sim"
)

// Op selects the collective operation.
type Op int

// The shipped operations.
const (
	Allreduce Op = iota
	Barrier
	Scatter
	Gather
	KeyAgg
)

func (o Op) String() string {
	switch o {
	case Barrier:
		return "barrier"
	case Scatter:
		return "scatter"
	case Gather:
		return "gather"
	case KeyAgg:
		return "keyagg"
	default:
		return "allreduce"
	}
}

// ParseOp resolves a -collective flag value.
func ParseOp(s string) (Op, error) {
	switch s {
	case "", "allreduce":
		return Allreduce, nil
	case "barrier":
		return Barrier, nil
	case "scatter":
		return Scatter, nil
	case "gather":
		return Gather, nil
	case "keyagg":
		return KeyAgg, nil
	}
	return 0, fmt.Errorf("unknown collective %q (want allreduce, barrier, scatter, gather, or keyagg)", s)
}

// Params sizes a collective and calibrates its costs.
type Params struct {
	// VectorBytes is each rank's allreduce contribution (the paper's
	// reduction benchmarks use 512); Elems its length in int64 values.
	VectorBytes int64
	Elems       int

	// HostAddInstr is the host's per-element combine cost; SwitchAddCycles
	// the switch CPU's.
	HostAddInstr    int64
	SwitchAddCycles int64

	// Keys is the key space and Records the per-host record count for
	// key-grouped aggregation. AggBudget bounds the per-switch aggregation
	// table in distinct keys; 0 falls back to the process-wide default
	// installed by the -agg-budget flag (DefaultBudget).
	Keys      int
	Records   int
	AggBudget int
}

// DefaultParams mirrors the paper's 512-byte reduction vectors and sizes
// key aggregation at 64 keys x 64 records per host.
func DefaultParams() Params {
	return Params{
		VectorBytes:     512,
		Elems:           64,
		HostAddInstr:    4,
		SwitchAddCycles: 1,
		Keys:            64,
		Records:         64,
	}
}

// budget resolves the effective switch-memory budget.
func (p Params) budget() int {
	if p.AggBudget > 0 {
		return p.AggBudget
	}
	return DefaultBudget()
}

// Process-wide defaults installed by the shared CLI flags (-collective and
// -agg-budget); the library reads them when a caller leaves the knob zero.
var (
	defMu     sync.Mutex
	defOp     = Allreduce
	defBudget = 32
)

// SetDefaultOp installs the process-wide default operation (-collective).
func SetDefaultOp(o Op) {
	defMu.Lock()
	defer defMu.Unlock()
	defOp = o
}

// DefaultOp returns the process-wide default operation.
func DefaultOp() Op {
	defMu.Lock()
	defer defMu.Unlock()
	return defOp
}

// SetDefaultBudget installs the process-wide aggregation-table budget
// (-agg-budget); n must be positive.
func SetDefaultBudget(n int) {
	if n <= 0 {
		panic("collective: aggregation budget must be positive")
	}
	defMu.Lock()
	defer defMu.Unlock()
	defBudget = n
}

// DefaultBudget returns the process-wide aggregation-table budget.
func DefaultBudget() int {
	defMu.Lock()
	defer defMu.Unlock()
	return defBudget
}

// HostVector is rank j's deterministic input vector. The salt keeps the
// inputs distinct from the reduce benchmark's, so a cross-wired handler
// cannot accidentally pass both suites.
func HostVector(j, elems int) []int64 {
	v := make([]int64, elems)
	for i := range v {
		v[i] = int64(apps.Mix64(0xC011EC7<<36|uint64(j)<<20|uint64(i)) % 1000)
	}
	return v
}

// ExpectedAllreduce is the elementwise-sum oracle over all p ranks.
func ExpectedAllreduce(p, elems int) []int64 {
	out := make([]int64, elems)
	for j := 0; j < p; j++ {
		for i, v := range HostVector(j, elems) {
			out[i] += v
		}
	}
	return out
}

// sliceBounds gives rank j's share [lo, hi) of an elems-long vector.
func sliceBounds(j, p, elems int) (lo, hi int) {
	return j * elems / p, (j + 1) * elems / p
}

// KV is one keyed record.
type KV struct {
	K int64
	V int64
}

// RecordsFor generates rank j's deterministic keyed records.
func RecordsFor(j int, prm Params) []KV {
	out := make([]KV, prm.Records)
	for i := range out {
		out[i] = KV{
			K: int64(apps.Mix64(0xA66E6A7E<<28|uint64(j)<<14|uint64(i)) % uint64(prm.Keys)),
			V: int64(apps.Mix64(0x5A1AD<<40|uint64(j)<<20|uint64(i)) % 1000),
		}
	}
	return out
}

// ExpectedKeyAgg folds every rank's records and returns rank r's flattened
// sorted (key, sum) pairs — keys home to rank key mod p.
func ExpectedKeyAgg(p int, prm Params) [][]int64 {
	sums := map[int64]int64{}
	for j := 0; j < p; j++ {
		for _, kv := range RecordsFor(j, prm) {
			sums[kv.K] += kv.V
		}
	}
	return keyAggRows(p, sums)
}

// keyAggRows renders per-key sums as per-rank flattened sorted rows.
func keyAggRows(p int, sums map[int64]int64) [][]int64 {
	keys := make([]int64, 0, len(sums))
	for k := range sums {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
	out := make([][]int64, p)
	for i := range out {
		out[i] = []int64{}
	}
	for _, k := range keys {
		r := int(k) % p
		out[r] = append(out[r], k, sums[k])
	}
	return out
}

// ExpectedPerHost is the oracle for any operation: what rank j must hold
// when the collective completes.
func ExpectedPerHost(op Op, p int, prm Params) [][]int64 {
	out := make([][]int64, p)
	switch op {
	case Allreduce:
		want := ExpectedAllreduce(p, prm.Elems)
		for j := range out {
			out[j] = want
		}
	case Barrier:
		for j := range out {
			out[j] = []int64{int64(p)}
		}
	case Scatter:
		master := HostVector(0, prm.Elems)
		for j := range out {
			lo, hi := sliceBounds(j, p, prm.Elems)
			out[j] = master[lo:hi]
		}
	case Gather:
		full := make([]int64, prm.Elems)
		for j := 0; j < p; j++ {
			lo, hi := sliceBounds(j, p, prm.Elems)
			copy(full[lo:hi], HostVector(j, prm.Elems)[lo:hi])
			out[j] = []int64{}
		}
		out[0] = full
	case KeyAgg:
		return ExpectedKeyAgg(p, prm)
	}
	return out
}

// SwitchAgg is one switch's key-aggregation ledger: every keyed record the
// switch ingested was either combined into the bounded table (a hit) or
// forwarded un-aggregated because the table was full (a spill).
type SwitchAgg struct {
	Name     string
	Hits     int64
	Spills   int64
	Ingested int64
}

// Result is one collective run's outcome. PerHost[j] is the payload rank j
// holds at completion (op-dependent; see ExpectedPerHost). EngineWall is
// the host wall-clock of the run phase alone.
type Result struct {
	Latency    sim.Time
	PerHost    [][]int64
	Correct    bool
	EngineWall time.Duration

	// Key-aggregation ledgers; zero for the other operations.
	AggHits     int64
	AggSpills   int64
	AggIngested int64
	PerSwitch   []SwitchAgg
}

// AggBalanced reports whether every switch's ledger satisfies the identity
// hits + spills == ingested records.
func (r Result) AggBalanced() bool {
	for _, s := range r.PerSwitch {
		if s.Hits+s.Spills != s.Ingested {
			return false
		}
	}
	return r.AggHits+r.AggSpills == r.AggIngested
}

// shape is the overlay tree resolved into the forms the operations need:
// rank order, child switches and member hosts per overlay switch, the
// contiguous rank range each subtree covers, and up-phase argument slots.
type shape struct {
	p          int
	hostIDs    []san.NodeID
	root       san.NodeID
	childSw    map[san.NodeID][]san.NodeID
	members    map[san.NodeID][]san.NodeID
	memberRank map[san.NodeID][]int
	lo, hi     map[san.NodeID]int
	slot       map[san.NodeID]int64
}

// buildShape derives the shape from a built cluster's aggregation overlay.
// It panics when the overlay assigns non-contiguous rank ranges to a
// subtree — every shipped topology attaches hosts in rank order, and the
// scatter/gather slicing depends on it.
func buildShape(c *cluster.Cluster, p int) *shape {
	if c.Tree == nil {
		panic("collective: cluster has no aggregation overlay (Tree is nil)")
	}
	sh := &shape{
		p:          p,
		root:       c.Tree.Root,
		childSw:    map[san.NodeID][]san.NodeID{},
		members:    map[san.NodeID][]san.NodeID{},
		memberRank: map[san.NodeID][]int{},
		lo:         map[san.NodeID]int{},
		hi:         map[san.NodeID]int{},
		slot:       map[san.NodeID]int64{},
	}
	for j := 0; j < p; j++ {
		h := c.Host(j)
		sh.hostIDs = append(sh.hostIDs, h.ID())
		leaf := c.Tree.HostLeaf[h.ID()]
		sh.members[leaf] = append(sh.members[leaf], h.ID())
		sh.memberRank[leaf] = append(sh.memberRank[leaf], j)
	}
	// Child switches in cluster switch order: deterministic, and identical
	// between serial and partitioned builds of the same spec.
	for _, sw := range c.Switches {
		if par := c.Tree.Parent[sw.ID()]; par != san.NoNode {
			sh.childSw[par] = append(sh.childSw[par], sw.ID())
		}
	}
	// Rank ranges per overlay subtree, verified contiguous.
	var span func(id san.NodeID) (lo, hi, n int)
	span = func(id san.NodeID) (lo, hi, n int) {
		lo, hi = sh.p, 0
		for _, r := range sh.memberRank[id] {
			if r < lo {
				lo = r
			}
			if r+1 > hi {
				hi = r + 1
			}
			n++
		}
		for _, cs := range sh.childSw[id] {
			cl, ch, cn := span(cs)
			if cn == 0 {
				continue
			}
			if cl < lo {
				lo = cl
			}
			if ch > hi {
				hi = ch
			}
			n += cn
		}
		if n > 0 && hi-lo != n {
			panic(fmt.Sprintf("collective: overlay switch %d covers non-contiguous ranks [%d,%d) with %d hosts", id, lo, hi, n))
		}
		sh.lo[id], sh.hi[id] = lo, hi
		return lo, hi, n
	}
	span(sh.root)

	// Up-phase argument slots: each contributor (host or child switch) gets
	// a distinct MTU-sized argument window at its parent so vectors from
	// different ports admit in parallel. Slots stay below the down-phase
	// windows (downAddr and scatterAddr).
	perParent := map[san.NodeID]int64{}
	for _, id := range sh.hostIDs {
		leaf := c.Tree.HostLeaf[id]
		sh.slot[id] = perParent[leaf]
		perParent[leaf]++
	}
	for _, sw := range c.Switches {
		if par := c.Tree.Parent[sw.ID()]; par != san.NoNode {
			sh.slot[sw.ID()] = perParent[par]
			perParent[par]++
		}
	}
	for id, s := range sh.slot {
		if s*san.MTU >= downAddr {
			panic(fmt.Sprintf("collective: node %d up-slot %d collides with the down-phase window", id, s))
		}
	}
	return sh
}

// opParams resolves the wire sizes an operation uses.
func opParams(op Op, prm Params) Params {
	if op == Barrier {
		// The zero-payload fast path: one token element, 8 bytes on the wire.
		prm.Elems = 1
		prm.VectorBytes = 8
	}
	return prm
}

// Run executes one collective on a fresh cluster honoring the process-wide
// -topology and -partitions defaults, like reduce.Run does for the paper's
// reduction benchmarks. Partitioned engines require a fat tree (the only
// topology with a partition cut); the classic tree always runs serial.
func Run(op Op, active bool, p int, prm Params) Result {
	kind, k := cluster.DefaultTopology()
	if parts := cluster.DefaultPartitions(); kind == "fattree" && parts != 1 {
		cfg := cluster.DefaultFatTreeConfig(p)
		if k > 0 {
			cfg.K = k
		}
		return RunOn(cluster.NewPartitionedFatTreeCluster(cfg, parts), op, active, p, prm)
	}
	eng := sim.NewEngine()
	c := cluster.BuildCollective(eng, cluster.DefaultTreeConfig(p))
	return RunOn(c, op, active, p, prm)
}

// RunOn executes one collective on a prebuilt cluster with a populated
// aggregation overlay. The cluster must be un-started; RunOn starts, runs
// and shuts it down, leaving NIC counters harvestable. Active runs place
// handlers only on overlay-participating switches; passive runs touch no
// switch state at all.
func RunOn(c *cluster.Cluster, op Op, active bool, p int, prm Params) Result {
	prm = opParams(op, prm)
	sh := buildShape(c, p)
	if active {
		installHandlers(c, sh, op, prm)
	}
	c.Start()

	out := make([][]int64, p)
	finishes := make([]sim.Time, p)
	run := func(rank int, eng *sim.Engine, done func()) {
		h := c.Host(rank)
		eng.Spawn(fmt.Sprintf("coll-h%d", rank), func(proc *sim.Proc) {
			if done != nil {
				defer done()
			}
			setFinish := func(t sim.Time) {
				if t > finishes[rank] {
					finishes[rank] = t
				}
			}
			if active {
				runActiveHost(proc, c, sh, h, rank, op, prm, out, setFinish)
			} else {
				runPassiveHost(proc, c, sh, h, rank, op, prm, out, setFinish)
			}
		})
	}

	var wall time.Duration
	if c.Group == nil {
		var wg sim.WaitGroup
		wg.Add(p)
		for j := 0; j < p; j++ {
			run(j, c.Eng, wg.Done)
		}
		c.Eng.Spawn("coll-main", func(proc *sim.Proc) { wg.Wait(proc) })
		zr := time.Now()
		c.Eng.Run()
		wall = time.Since(zr)
	} else {
		// Partitioned: each rank's process runs on its partition's engine;
		// Group.Run drains every partition, and the per-rank finish slots
		// and output rows are each touched by exactly one partition.
		for j := 0; j < p; j++ {
			run(j, c.EngineFor(c.Host(j).ID()), nil)
		}
		zr := time.Now()
		c.Group.Run()
		wall = time.Since(zr)
	}

	res := Result{PerHost: out, EngineWall: wall}
	for _, t := range finishes {
		if t > res.Latency {
			res.Latency = t
		}
	}
	if active && op == KeyAgg {
		harvestAgg(c, &res)
	}
	c.Shutdown()

	want := ExpectedPerHost(op, p, prm)
	res.Correct = true
	for j := range want {
		if !int64SlicesEqual(out[j], want[j]) {
			res.Correct = false
			break
		}
	}
	return res
}

func int64SlicesEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
