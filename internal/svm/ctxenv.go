package svm

import (
	"activesan/internal/aswitch"
)

// CtxEnv adapts a switch handler context into a VM Env: cycles charge the
// owning switch CPU, instruction fetches go through its I-cache, stream
// loads resolve through the ATB with valid-bit stalls, and private memory
// goes through the 1 KB D-cache. Emitted words accumulate in Out for the
// handler to send.
type CtxEnv struct {
	X *aswitch.Ctx
	// Base is the lowest stream-mapped address.
	Base int64
	// MemBase anchors private data memory in the switch's address space so
	// D-cache behaviour is realistic.
	MemBase int64
	// Out collects EMIT results.
	Out []uint32
}

// NewCtxEnv builds the adapter.
func NewCtxEnv(x *aswitch.Ctx, streamBase, memBase int64) *CtxEnv {
	return &CtxEnv{X: x, Base: streamBase, MemBase: memBase}
}

// Compute implements Env.
func (e *CtxEnv) Compute(n int64) { e.X.Compute(n) }

// Ifetch implements Env.
func (e *CtxEnv) Ifetch(addr int64) { e.X.Ifetch(addr) }

// StreamBase implements Env.
func (e *CtxEnv) StreamBase() int64 { return e.Base }

// StreamBytes implements Env: wait for the buffer covering addr, stall on
// its valid bits, and return the payload bytes (shorter reads at packet
// boundaries return what the buffer holds).
func (e *CtxEnv) StreamBytes(addr, n int64) []byte {
	b := e.X.WaitStream(addr)
	off := addr - b.Addr()
	take := n
	if off+take > b.Size() {
		take = b.Size() - off
	}
	payload := e.X.ReadAt(b, off, take)
	if data, ok := payload.([]byte); ok && off+take <= int64(len(data)) {
		return data[off : off+take]
	}
	return make([]byte, take)
}

// MemLoad implements Env.
func (e *CtxEnv) MemLoad(addr int64) { e.X.MemLoad(e.MemBase + addr) }

// MemStore implements Env.
func (e *CtxEnv) MemStore(addr int64) { e.X.MemStore(e.MemBase + addr) }

// Dealloc implements Env.
func (e *CtxEnv) Dealloc(end int64) { e.X.Deallocate(end) }

// Emit implements Env.
func (e *CtxEnv) Emit(v uint32) { e.Out = append(e.Out, v) }

// RunOnCtx assembles nothing — it executes an already-assembled program as
// the body of a switch handler, returning the machine result and the
// emitted words.
func RunOnCtx(x *aswitch.Ctx, prog *Program, streamBase, memBase int64, init map[uint8]uint32) (*Result, []uint32, error) {
	env := NewCtxEnv(x, streamBase, memBase)
	m := NewMachine(env, prog, init)
	res, err := m.Run()
	return res, env.Out, err
}
