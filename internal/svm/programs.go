package svm

// Library of handler programs in switch assembly. Each documents its
// register calling convention; all expect the stream mapped at r1 with the
// end address in r2 and deallocate buffers as they go.

// SelectSource counts fixed-size records whose first (key) byte is below a
// threshold.
//
// In: r1=stream cursor, r2=stream end, r5=threshold, r6=record size.
// Out: emits the match count.
const SelectSource = `
; count records with key byte < threshold
loop:
	bge  r1, r2, done
	lb   r4, 0(r1)
	blt  r4, r5, keep
	j    next
keep:
	addi r3, r3, 1
next:
	add  r1, r1, r6
	dealloc r1
	j    loop
done:
	emit r3
	stop
`

// SumWordsSource adds up the stream's 32-bit little-endian words.
//
// In: r1=stream cursor, r2=stream end.
// Out: emits the wrapping 32-bit sum.
const SumWordsSource = `
; sum 32-bit words
loop:
	bge  r1, r2, done
	lw   r4, 0(r1)
	add  r3, r3, r4
	addi r1, r1, 4
	dealloc r1
	j    loop
done:
	emit r3
	stop
`

// MinMaxSource scans bytes tracking the minimum and maximum values.
//
// In: r1=stream cursor, r2=stream end.
// Out: emits min then max.
const MinMaxSource = `
; byte min/max scan
	li   r5, 255        ; min
	li   r6, 0          ; max
loop:
	bge  r1, r2, done
	lb   r4, 0(r1)
	bge  r4, r5, chkmax
	mv   r5, r4
chkmax:
	bge  r6, r4, next
	mv   r6, r4
next:
	addi r1, r1, 1
	dealloc r1
	j    loop
done:
	emit r5
	emit r6
	stop
`

// HistogramSource counts bytes into a 4-bucket histogram by the top two
// bits, using private memory for the counters — exercising the D-cache
// path.
//
// In: r1=stream cursor, r2=stream end.
// Out: emits the four bucket counts (bucket 0 first).
const HistogramSource = `
; 4-bucket histogram of the top two bits of each byte
loop:
	bge  r1, r2, done
	lb   r4, 0(r1)
	srli r4, r4, 6      ; bucket index 0..3
	slli r4, r4, 2      ; *4 for word addressing
	lw   r7, 0(r4)
	addi r7, r7, 1
	sw   r7, 0(r4)
	addi r1, r1, 1
	dealloc r1
	j    loop
done:
	lw   r7, 0(r0)
	emit r7
	lw   r7, 4(r0)
	emit r7
	lw   r7, 8(r0)
	emit r7
	lw   r7, 12(r0)
	emit r7
	stop
`

// MustAssemble assembles a library program; it panics on error since the
// sources above are constants validated by tests.
func MustAssemble(src string) *Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

// SliceEnv is a stand-alone Env over an in-memory stream, for writing and
// debugging handler programs outside a simulation. It counts the work a
// real switch CPU would be charged.
type SliceEnv struct {
	Base   int64
	Stream []byte

	Cycles   int64
	Fetches  int64
	Loads    int64
	Stores   int64
	Deallocs []int64
	Out      []uint32
}

// NewSliceEnv builds an Env over data mapped at base.
func NewSliceEnv(base int64, data []byte) *SliceEnv {
	return &SliceEnv{Base: base, Stream: data}
}

// Compute implements Env.
func (e *SliceEnv) Compute(n int64) { e.Cycles += n }

// Ifetch implements Env.
func (e *SliceEnv) Ifetch(int64) { e.Fetches++ }

// StreamBase implements Env.
func (e *SliceEnv) StreamBase() int64 { return e.Base }

// StreamBytes implements Env.
func (e *SliceEnv) StreamBytes(addr, n int64) []byte {
	off := addr - e.Base
	if off < 0 || off >= int64(len(e.Stream)) {
		return nil
	}
	end := off + n
	if end > int64(len(e.Stream)) {
		end = int64(len(e.Stream))
	}
	return e.Stream[off:end]
}

// MemLoad implements Env.
func (e *SliceEnv) MemLoad(int64) { e.Loads++ }

// MemStore implements Env.
func (e *SliceEnv) MemStore(int64) { e.Stores++ }

// Dealloc implements Env.
func (e *SliceEnv) Dealloc(end int64) { e.Deallocs = append(e.Deallocs, end) }

// Emit implements Env.
func (e *SliceEnv) Emit(v uint32) { e.Out = append(e.Out, v) }

// MatchCountSource counts occurrences of a pattern using a DFA transition
// table in private memory (poked in by the host before the run — the
// paper's model of the host setting up handler state). The table holds
// 256 bytes per state: next_state = table[state*256 + byte].
//
// In: r1=stream cursor, r2=stream end, r5=accepting state (pattern length).
// Private memory: transition table at address 0.
// Out: emits the match count.
const MatchCountSource = `
; DFA pattern scan over the stream
loop:
	bge  r1, r2, done
	lb   r4, 0(r1)
	slli r7, r6, 8      ; state*256
	add  r7, r7, r4
	lb   r6, 0(r7)      ; next state from the table (D-cache)
	bne  r6, r5, next
	addi r3, r3, 1
	li   r6, 0
next:
	addi r1, r1, 1
	dealloc r1
	j    loop
done:
	emit r3
	stop
`

// KMPTable builds the byte-wide DFA transition table MatchCountSource
// expects: len(pattern)*256 entries, table[s*256+c] = next state after
// reading byte c in state s. State len(pattern) is accepting; the scanner
// resets it to 0 itself.
func KMPTable(pattern []byte) []byte {
	m := len(pattern)
	if m == 0 || m > 255 {
		panic("svm: pattern length must be 1..255")
	}
	table := make([]byte, m*256)
	table[int(pattern[0])] = 1
	x := 0
	for s := 1; s < m; s++ {
		for c := 0; c < 256; c++ {
			table[s*256+c] = table[x*256+c]
		}
		table[s*256+int(pattern[s])] = byte(s + 1)
		x = int(table[x*256+int(pattern[s])])
	}
	return table
}

// CRC32Source computes the IEEE CRC-32 of the stream with a 256-entry
// word table in private memory (see CRC32Table).
//
// In: r1=stream cursor, r2=stream end. Private memory: table at address 0.
// Out: emits the final checksum.
const CRC32Source = `
; table-driven CRC-32 (IEEE, reflected)
	lui  r6, 0xFFFF
	ori  r6, r6, 0xFFFF ; crc = 0xFFFFFFFF
loop:
	bge  r1, r2, done
	lb   r4, 0(r1)
	xor  r5, r6, r4
	andi r5, r5, 0xFF
	slli r5, r5, 2
	lw   r5, 0(r5)      ; table[(crc ^ b) & 0xFF]
	srli r6, r6, 8
	xor  r6, r6, r5
	addi r1, r1, 1
	dealloc r1
	j    loop
done:
	li   r7, -1
	xor  r6, r6, r7     ; final inversion
	emit r6
	stop
`

// CRC32Table renders the IEEE polynomial's lookup table as the bytes
// CRC32Source expects in private memory (256 little-endian words).
func CRC32Table() []byte {
	const poly = 0xEDB88320
	out := make([]byte, 256*4)
	for i := 0; i < 256; i++ {
		crc := uint32(i)
		for k := 0; k < 8; k++ {
			if crc&1 != 0 {
				crc = crc>>1 ^ poly
			} else {
				crc >>= 1
			}
		}
		out[i*4] = byte(crc)
		out[i*4+1] = byte(crc >> 8)
		out[i*4+2] = byte(crc >> 16)
		out[i*4+3] = byte(crc >> 24)
	}
	return out
}
