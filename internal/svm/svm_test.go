package svm

import (
	"strings"
	"testing"

	"activesan/internal/aswitch"
	"activesan/internal/cluster"
	"activesan/internal/iodev"
	"activesan/internal/san"
	"activesan/internal/sim"
)

// fakeEnv runs programs against an in-memory stream with cost counters.
type fakeEnv struct {
	base    int64
	stream  []byte
	cycles  int64
	fetches int64
	out     []uint32
	dealloc []int64
	loads   int64
	stores  int64
}

func (f *fakeEnv) Compute(n int64)   { f.cycles += n }
func (f *fakeEnv) Ifetch(int64)      { f.fetches++ }
func (f *fakeEnv) StreamBase() int64 { return f.base }
func (f *fakeEnv) MemLoad(int64)     { f.loads++ }
func (f *fakeEnv) MemStore(int64)    { f.stores++ }
func (f *fakeEnv) Dealloc(end int64) { f.dealloc = append(f.dealloc, end) }
func (f *fakeEnv) Emit(v uint32)     { f.out = append(f.out, v) }
func (f *fakeEnv) StreamBytes(addr, n int64) []byte {
	off := addr - f.base
	if off < 0 || off >= int64(len(f.stream)) {
		return nil
	}
	end := off + n
	if end > int64(len(f.stream)) {
		end = int64(len(f.stream))
	}
	return f.stream[off:end]
}

func mustAssemble(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestAssembleBasics(t *testing.T) {
	p := mustAssemble(t, `
		; a tiny loop
		li   r1, 3
		li   r2, 0
	loop:
		add  r2, r2, r1
		addi r1, r1, -1
		bne  r1, r0, loop
		emit r2
		stop
	`)
	if len(p.Instrs) != 7 {
		t.Fatalf("assembled %d instructions, want 7", len(p.Instrs))
	}
	if p.Labels["loop"] != 2 {
		t.Fatalf("label loop at %d, want 2", p.Labels["loop"])
	}
	if !strings.Contains(p.String(), "loop:") {
		t.Fatal("disassembly lacks label")
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"",                           // empty
		"frob r1, r2",                // unknown mnemonic
		"add r1, r2",                 // wrong arity
		"addi r99, r0, 1",            // bad register
		"beq r1, r2, nowhere\n stop", // undefined label
		"x: x: stop",                 // duplicate label
		"lw r1, r2",                  // not imm(reg)
	}
	for _, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("assembled %q without error", src)
		}
	}
}

func runProg(t *testing.T, src string, env *fakeEnv, init map[uint8]uint32) (*Result, *fakeEnv) {
	t.Helper()
	if env == nil {
		env = &fakeEnv{base: 1 << 20}
	}
	m := NewMachine(env, mustAssemble(t, src), init)
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res, env
}

func TestArithmeticAndBranches(t *testing.T) {
	// Sum 1..10 via a countdown loop.
	res, env := runProg(t, `
		li   r1, 10
		li   r2, 0
	loop:
		add  r2, r2, r1
		addi r1, r1, -1
		bne  r1, r0, loop
		emit r2
		stop
	`, nil, nil)
	if env.out[0] != 55 {
		t.Fatalf("sum = %d, want 55", env.out[0])
	}
	// 2 setup + 10*3 loop + emit + stop = 34 instructions.
	if res.Executed != 34 {
		t.Fatalf("executed %d instructions, want 34", res.Executed)
	}
	if env.cycles != res.Executed {
		t.Fatalf("cycles %d != executed %d (single-issue)", env.cycles, res.Executed)
	}
	if env.fetches != res.Executed {
		t.Fatalf("fetches %d != executed %d", env.fetches, res.Executed)
	}
}

func TestRegisterZeroHardwired(t *testing.T) {
	res, _ := runProg(t, `
		addi r0, r0, 99
		emit r0
		stop
	`, nil, nil)
	if res.Regs[0] != 0 {
		t.Fatalf("r0 = %d, want 0", res.Regs[0])
	}
}

func TestShiftLogicCompare(t *testing.T) {
	_, env := runProg(t, `
		li   r1, 0xF0
		slli r2, r1, 4      ; 0xF00
		srli r3, r2, 8      ; 0xF
		and  r4, r2, r1     ; 0
		or   r5, r3, r1     ; 0xFF
		xor  r6, r5, r1     ; 0x0F
		slt  r7, r0, r5     ; 1
		emit r2
		emit r3
		emit r4
		emit r5
		emit r6
		emit r7
		stop
	`, nil, nil)
	want := []uint32{0xF00, 0xF, 0, 0xFF, 0x0F, 1}
	for i, w := range want {
		if env.out[i] != w {
			t.Fatalf("out[%d] = %#x, want %#x", i, env.out[i], w)
		}
	}
}

func TestSignedComparisons(t *testing.T) {
	_, env := runProg(t, `
		li   r1, -5
		li   r2, 3
		slt  r3, r1, r2   ; signed: -5 < 3 -> 1
		sltu r4, r1, r2   ; unsigned: big < 3 -> 0
		emit r3
		emit r4
		stop
	`, nil, nil)
	if env.out[0] != 1 || env.out[1] != 0 {
		t.Fatalf("slt/sltu = %v", env.out)
	}
}

func TestPrivateMemoryRoundTrip(t *testing.T) {
	_, env := runProg(t, `
		li  r1, 0x1234
		sw  r1, 64(r0)
		lw  r2, 64(r0)
		sb  r1, 100(r0)
		lb  r3, 100(r0)
		emit r2
		emit r3
		stop
	`, nil, nil)
	if env.out[0] != 0x1234 {
		t.Fatalf("word round trip = %#x", env.out[0])
	}
	if env.out[1] != 0x34 {
		t.Fatalf("byte round trip = %#x", env.out[1])
	}
	if env.loads != 2 || env.stores != 2 {
		t.Fatalf("mem refs = %d loads / %d stores", env.loads, env.stores)
	}
}

func TestJalAndJr(t *testing.T) {
	_, env := runProg(t, `
		jal  fn
		emit r2
		stop
	fn:
		li   r2, 7
		jr   r31
	`, nil, nil)
	if env.out[0] != 7 {
		t.Fatalf("subroutine result = %d", env.out[0])
	}
}

func TestStreamLoads(t *testing.T) {
	env := &fakeEnv{base: 1 << 20, stream: []byte{0x11, 0x22, 0x33, 0x44, 0x55}}
	_, env = runProg(t, `
		lui  r1, 16        ; r1 = 0x100000
		lb   r2, 0(r1)
		lw   r3, 1(r1)
		emit r2
		emit r3
		stop
	`, env, nil)
	if env.out[0] != 0x11 {
		t.Fatalf("stream byte = %#x", env.out[0])
	}
	if env.out[1] != 0x55443322 {
		t.Fatalf("stream word = %#x", env.out[1])
	}
}

func TestStoreToStreamPanics(t *testing.T) {
	env := &fakeEnv{base: 1 << 20, stream: make([]byte, 16)}
	m := NewMachine(env, mustAssemble(t, `
		lui r1, 16
		sw  r1, 0(r1)
		stop
	`), nil)
	defer func() {
		if recover() == nil {
			t.Fatal("store to stream did not panic")
		}
	}()
	m.Run()
}

func TestRunawayGuard(t *testing.T) {
	env := &fakeEnv{base: 1 << 20}
	m := NewMachine(env, mustAssemble(t, "loop: j loop"), nil)
	m.MaxInstrs = 1000
	if _, err := m.Run(); err == nil {
		t.Fatal("infinite loop not caught")
	}
}

func TestFallOffEndErrors(t *testing.T) {
	env := &fakeEnv{base: 1 << 20}
	m := NewMachine(env, mustAssemble(t, "addi r1, r0, 1"), nil)
	if _, err := m.Run(); err == nil {
		t.Fatal("fall-off-the-end not reported")
	}
}

// selectAsm is a real handler in assembly: scan fixed-size records at the
// stream base, count those whose first byte is below a threshold,
// deallocating buffers as the cursor advances.
//
// r1=cursor r2=end r3=count r5=threshold r6=record size
const selectAsm = `
loop:
	bge  r1, r2, done
	lb   r4, 0(r1)
	blt  r4, r5, keep
	j    next
keep:
	addi r3, r3, 1
next:
	add  r1, r1, r6
	dealloc r1
	j    loop
done:
	emit r3
	stop
`

func TestSelectHandlerOnFakeEnv(t *testing.T) {
	const recSize = 16
	const nRec = 200
	stream := make([]byte, recSize*nRec)
	want := uint32(0)
	for i := 0; i < nRec; i++ {
		stream[i*recSize] = byte(i * 7)
		if stream[i*recSize] < 64 {
			want++
		}
	}
	env := &fakeEnv{base: 1 << 20, stream: stream}
	init := map[uint8]uint32{
		1: 1 << 20,
		2: 1<<20 + recSize*nRec,
		5: 64,
		6: recSize,
	}
	_, env = runProg(t, selectAsm, env, init)
	if env.out[0] != want {
		t.Fatalf("assembly select counted %d, want %d", env.out[0], want)
	}
}

func TestSelectHandlerOnRealSwitch(t *testing.T) {
	// The full loop: the assembly program runs as a switch handler on a
	// simulated cluster, reading real disk-streamed bytes through the ATB,
	// and its count must match the oracle. This validates the entire
	// cost-model substitution chain with per-instruction execution.
	const recSize = 16
	const total = 64 * 1024
	const nRec = total / recSize
	const streamBase = 1 << 20
	data := make([]byte, total)
	want := uint32(0)
	for i := 0; i < nRec; i++ {
		data[i*recSize] = byte((i * 131) % 251)
		if data[i*recSize] < 64 {
			want++
		}
	}

	eng := sim.NewEngine()
	c := cluster.NewIOCluster(eng, cluster.DefaultIOClusterConfig())
	c.Store(0).AddFile(&iodev.File{Name: "t", Size: total, Data: data})
	sw := c.Switch(0)
	prog := mustAssemble(t, selectAsm)
	var vmInstrs int64
	sw.Register(20, "asm-select", func(x *aswitch.Ctx) {
		x.ReleaseArgs()
		res, out, err := RunOnCtx(x, prog, streamBase, 1<<16, map[uint8]uint32{
			1: streamBase,
			2: streamBase + total,
			5: 64,
			6: recSize,
		})
		if err != nil {
			t.Errorf("vm error: %v", err)
			return
		}
		vmInstrs = res.Executed
		x.Send(aswitch.SendSpec{
			Dst: x.Src(), Type: san.Control, Addr: 0x100,
			Size: 8, Flow: 0x7300, Payload: out[0],
		})
	})
	c.Start()
	var got uint32
	eng.Spawn("app", func(p *sim.Proc) {
		h := c.Host(0)
		h.SendMessage(p, &san.Message{
			Hdr:  san.Header{Dst: sw.ID(), Type: san.ActiveMsg, HandlerID: 20, Addr: 0},
			Size: 32,
		}, 0)
		tok := h.IssueReadTo(p, c.Store(0).ID(), "t", 0, total,
			sw.ID(), streamBase, san.Data, 0, 0, 0x6500)
		h.WaitRead(p, tok)
		comp := h.RecvFlow(p, sw.ID(), 0x7300)
		got = comp.Payloads[0].(uint32)
	})
	eng.Run()
	defer c.Shutdown()
	if got != want {
		t.Fatalf("switch-executed assembly counted %d, want %d", got, want)
	}
	// Timing fidelity: the switch CPU's busy time must be at least the
	// executed instruction count (one cycle each) and not wildly more.
	busy := sw.CPU(0).Timing().Breakdown().Busy
	minBusy := sim.SwitchClock.Cycles(vmInstrs)
	if busy < minBusy {
		t.Fatalf("busy %v below one-cycle-per-instruction floor %v", busy, minBusy)
	}
	if busy > 3*minBusy {
		t.Fatalf("busy %v far above the instruction floor %v", busy, minBusy)
	}
}
