package svm

import "testing"

// Error-path coverage for the assembler, asserting exact text (unlike
// TestAssembleErrors, which only checks rejection): these messages surface
// directly to handler authors (and through hdl's internal-error wrapper),
// so changes must be deliberate.
func TestAssembleErrorText(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{
			"duplicate label",
			"x: stop\nx: stop",
			`svm: line 2: duplicate label "x"`,
		},
		{
			"bad label",
			"9lives: stop",
			`svm: line 1: bad label "9lives"`,
		},
		{
			"empty label",
			": stop",
			`svm: line 1: bad label ""`,
		},
		{
			"undefined label",
			"j nowhere\nstop",
			`svm: undefined label "nowhere"`,
		},
		{
			"dangling label",
			"stop\nend:",
			`svm: label "end" has no instruction`,
		},
		{
			"empty program",
			"; nothing but a comment",
			`svm: empty program`,
		},
		{
			"bad register number",
			"add r1, r2, r99",
			`svm: line 1: bad register "r99"`,
		},
		{
			"not a register",
			"add r1, r2, x3",
			`svm: line 1: expected register, got "x3"`,
		},
		{
			"bad immediate",
			"addi r1, r2, banana",
			`svm: line 1: bad immediate "banana"`,
		},
		{
			"immediate out of range",
			"addi r1, r2, 0x100000000",
			`svm: line 1: immediate "0x100000000" out of 32-bit range`,
		},
		{
			"bad memory operand",
			"lw r1, 4[r2]",
			`svm: line 1: expected imm(reg), got "4[r2]"`,
		},
		{
			"unknown mnemonic",
			"frobnicate r1",
			`svm: line 1: unknown mnemonic "frobnicate"`,
		},
		{
			"wrong operand count",
			"add r1, r2",
			`svm: line 1: add wants 3 operands, got 2`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Assemble(tc.src)
			if err == nil {
				t.Fatalf("assembled without error, want %q", tc.want)
			}
			if err.Error() != tc.want {
				t.Fatalf("error = %q, want %q", err.Error(), tc.want)
			}
		})
	}
}
