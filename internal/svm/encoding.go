package svm

import (
	"encoding/binary"
	"fmt"
)

// Binary instruction encoding: each instruction is one 32-bit word, the
// format the switch's 4 KB instruction cache actually holds.
//
//	bits 31..26  opcode (6 bits)
//	bits 25..21  rd
//	bits 20..16  rs
//	bits 15..11  rt
//	bits 10..0   imm (signed 11-bit)
//
// The uniform layout keeps every register field addressable alongside the
// immediate (branches use rs, rt and a target). The 11-bit immediate bounds
// encoded programs to 2 Ki instructions — double what fits the 4 KB
// I-cache — and wide constants build via LUI/shifts, as on the real ISA.
const maxEncodedImm = 1<<10 - 1

// EncodeInstr packs one instruction into a word; immediates outside the
// signed 11-bit range are rejected.
func EncodeInstr(ins Instr) (uint32, error) {
	if ins.Imm > maxEncodedImm || ins.Imm < -(1<<10) {
		return 0, fmt.Errorf("svm: immediate %d does not fit the 11-bit encoding", ins.Imm)
	}
	w := uint32(ins.Op) << 26
	w |= uint32(ins.Rd&31) << 21
	w |= uint32(ins.Rs&31) << 16
	w |= uint32(ins.Rt&31) << 11
	w |= uint32(ins.Imm) & 0x7FF
	return w, nil
}

// DecodeInstr unpacks one word.
func DecodeInstr(w uint32) (Instr, error) {
	op := Op(w >> 26)
	if op > OpStop {
		return Instr{}, fmt.Errorf("svm: illegal opcode %d", uint32(op))
	}
	imm := int32(w & 0x7FF)
	if imm >= 1<<10 {
		imm -= 1 << 11
	}
	return Instr{
		Op:  op,
		Rd:  uint8(w >> 21 & 31),
		Rs:  uint8(w >> 16 & 31),
		Rt:  uint8(w >> 11 & 31),
		Imm: imm,
	}, nil
}

// EncodeProgram serializes a program image: a 4-byte magic, a 4-byte count,
// then one word per instruction, little-endian — what a host would download
// into the switch's jump-table-addressed instruction memory.
func EncodeProgram(p *Program) ([]byte, error) {
	out := make([]byte, 0, 8+4*len(p.Instrs))
	out = append(out, 'S', 'V', 'M', '1')
	var cnt [4]byte
	binary.LittleEndian.PutUint32(cnt[:], uint32(len(p.Instrs)))
	out = append(out, cnt[:]...)
	for i, ins := range p.Instrs {
		w, err := EncodeInstr(ins)
		if err != nil {
			return nil, fmt.Errorf("instruction %d: %w", i, err)
		}
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], w)
		out = append(out, b[:]...)
	}
	return out, nil
}

// DecodeProgram parses a program image (labels are not preserved — they
// exist only in source).
func DecodeProgram(data []byte) (*Program, error) {
	if len(data) < 8 || string(data[:4]) != "SVM1" {
		return nil, fmt.Errorf("svm: bad program image magic")
	}
	n := binary.LittleEndian.Uint32(data[4:8])
	if int(n)*4+8 != len(data) {
		return nil, fmt.Errorf("svm: image declares %d instructions but holds %d bytes of text",
			n, len(data)-8)
	}
	p := &Program{Labels: map[string]int{}}
	for i := 0; i < int(n); i++ {
		w := binary.LittleEndian.Uint32(data[8+i*4:])
		ins, err := DecodeInstr(w)
		if err != nil {
			return nil, fmt.Errorf("instruction %d: %w", i, err)
		}
		p.Instrs = append(p.Instrs, ins)
	}
	if len(p.Instrs) == 0 {
		return nil, fmt.Errorf("svm: empty program image")
	}
	return p, nil
}
