package svm

import (
	"encoding/binary"
	"fmt"
)

// Env supplies the hardware behind a running handler program: timing
// charges flow to the switch CPU model, stream loads go through the ATB
// (stalling on buffer arrival and valid bits), and private memory goes
// through the switch data cache.
type Env interface {
	// Compute charges n busy cycles.
	Compute(n int64)
	// Ifetch models an instruction fetch at addr through the I-cache.
	Ifetch(addr int64)
	// StreamBase returns the lowest stream-mapped address; loads at or
	// above it read packet data via the ATB.
	StreamBase() int64
	// StreamBytes returns n bytes of stream data at addr, charging buffer
	// reads and stalling until the data is valid.
	StreamBytes(addr, n int64) []byte
	// MemLoad/MemStore charge a private-memory reference through the
	// D-cache (values themselves live in the machine).
	MemLoad(addr int64)
	MemStore(addr int64)
	// Dealloc releases stream buffers mapped wholly below end.
	Dealloc(end int64)
	// Emit appends one word to the handler's output (the send unit).
	Emit(v uint32)
}

// Result reports a finished execution.
type Result struct {
	Regs     [NumRegs]uint32
	Executed int64
}

// Machine executes a Program against an Env.
type Machine struct {
	env  Env
	prog *Program
	regs [NumRegs]uint32
	mem  map[int64]byte

	// MaxInstrs guards against runaway handlers (default 256M).
	MaxInstrs int64
}

// NewMachine prepares an execution with the given initial registers.
func NewMachine(env Env, prog *Program, init map[uint8]uint32) *Machine {
	m := &Machine{
		env:       env,
		prog:      prog,
		mem:       make(map[int64]byte),
		MaxInstrs: 256 << 20,
	}
	for r, v := range init {
		if r > 0 && r < NumRegs {
			m.regs[r] = v
		}
	}
	return m
}

// Poke writes a byte of private data memory before the run.
func (m *Machine) Poke(addr int64, b byte) { m.mem[addr] = b }

// loadByte reads data memory: stream addresses via the Env, private bytes
// from the machine's map.
func (m *Machine) loadByte(addr int64) byte {
	if addr >= m.env.StreamBase() {
		b := m.env.StreamBytes(addr, 1)
		if len(b) == 0 {
			return 0
		}
		return b[0]
	}
	m.env.MemLoad(addr)
	return m.mem[addr]
}

func (m *Machine) loadWord(addr int64) uint32 {
	if addr >= m.env.StreamBase() {
		b := m.env.StreamBytes(addr, 4)
		if len(b) < 4 {
			var buf [4]byte
			copy(buf[:], b)
			return binary.LittleEndian.Uint32(buf[:])
		}
		return binary.LittleEndian.Uint32(b)
	}
	m.env.MemLoad(addr)
	var buf [4]byte
	for i := int64(0); i < 4; i++ {
		buf[i] = m.mem[addr+i]
	}
	return binary.LittleEndian.Uint32(buf[:])
}

func (m *Machine) storeByte(addr int64, v byte) {
	if addr >= m.env.StreamBase() {
		panic(fmt.Sprintf("svm: store into read-only stream address %#x", addr))
	}
	m.env.MemStore(addr)
	m.mem[addr] = v
}

func (m *Machine) storeWord(addr int64, v uint32) {
	if addr >= m.env.StreamBase() {
		panic(fmt.Sprintf("svm: store into read-only stream address %#x", addr))
	}
	m.env.MemStore(addr)
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	for i := int64(0); i < 4; i++ {
		m.mem[addr+i] = buf[i]
	}
}

// Run executes until STOP, a fall-off-the-end, or the instruction budget.
func (m *Machine) Run() (*Result, error) {
	pc := 0
	var executed int64
	n := len(m.prog.Instrs)
	for pc >= 0 && pc < n {
		if executed >= m.MaxInstrs {
			return nil, fmt.Errorf("svm: instruction budget (%d) exhausted at pc=%d", m.MaxInstrs, pc)
		}
		m.env.Ifetch(m.prog.Base + int64(pc)*4)
		m.env.Compute(1)
		ins := m.prog.Instrs[pc]
		executed++
		next := pc + 1
		rs := m.regs[ins.Rs]
		rt := m.regs[ins.Rt]
		set := func(v uint32) {
			if ins.Rd != 0 {
				m.regs[ins.Rd] = v
			}
		}
		switch ins.Op {
		case OpAdd:
			set(rs + rt)
		case OpSub:
			set(rs - rt)
		case OpMul:
			set(rs * rt)
		case OpAnd:
			set(rs & rt)
		case OpOr:
			set(rs | rt)
		case OpXor:
			set(rs ^ rt)
		case OpSlt:
			if int32(rs) < int32(rt) {
				set(1)
			} else {
				set(0)
			}
		case OpSltu:
			if rs < rt {
				set(1)
			} else {
				set(0)
			}
		case OpAddi:
			set(rs + uint32(ins.Imm))
		case OpAndi:
			set(rs & uint32(ins.Imm))
		case OpOri:
			set(rs | uint32(ins.Imm))
		case OpSlli:
			set(rs << (uint32(ins.Imm) & 31))
		case OpSrli:
			set(rs >> (uint32(ins.Imm) & 31))
		case OpLui:
			set(uint32(ins.Imm) << 16)
		case OpLw:
			set(m.loadWord(int64(int32(rs)) + int64(ins.Imm)))
		case OpLb:
			set(uint32(m.loadByte(int64(int32(rs)) + int64(ins.Imm))))
		case OpSw:
			m.storeWord(int64(int32(rs))+int64(ins.Imm), rt)
		case OpSb:
			m.storeByte(int64(int32(rs))+int64(ins.Imm), byte(rt))
		case OpBeq:
			if rs == rt {
				next = int(ins.Imm)
			}
		case OpBne:
			if rs != rt {
				next = int(ins.Imm)
			}
		case OpBlt:
			if int32(rs) < int32(rt) {
				next = int(ins.Imm)
			}
		case OpBge:
			if int32(rs) >= int32(rt) {
				next = int(ins.Imm)
			}
		case OpJ:
			next = int(ins.Imm)
		case OpJal:
			m.regs[31] = uint32(pc + 1)
			next = int(ins.Imm)
		case OpJr:
			next = int(rs)
		case OpEmit:
			m.env.Emit(rs)
		case OpDealloc:
			m.env.Dealloc(int64(rs))
		case OpStop:
			res := &Result{Regs: m.regs, Executed: executed}
			return res, nil
		default:
			return nil, fmt.Errorf("svm: illegal opcode %v at pc=%d", ins.Op, pc)
		}
		pc = next
	}
	return nil, fmt.Errorf("svm: control fell off the program (pc=%d)", pc)
}
