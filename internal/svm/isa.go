// Package svm is the embedded switch processor's instruction set: a
// single-issue MIPS-like ISA with the paper's extensions "to support
// checking the status of hardware components inside the switch, sending
// data buffers to other nodes, and requesting or releasing data buffers".
//
// The rest of the repository drives handlers through calibrated cost
// models; svm closes the loop on the "execution-driven" substitution by
// letting a handler be written in assembly, assembled, and executed
// instruction-by-instruction on the switch CPU timing model — every
// instruction costs a cycle, instruction fetches go through the 4 KB
// I-cache, loads and stores go through the ATB (streams) or the 1 KB
// D-cache (private memory), exactly as the paper describes the hardware.
package svm

import "fmt"

// Op enumerates the ISA.
type Op uint8

// Instruction opcodes. Register-register arithmetic, immediates, loads and
// stores, branches, jumps, and the switch extensions (EMIT, DEALLOC, STOP).
const (
	OpAdd Op = iota
	OpSub
	OpMul
	OpAnd
	OpOr
	OpXor
	OpSlt  // rd = rs < rt (signed)
	OpSltu // rd = rs < rt (unsigned)
	OpAddi
	OpAndi
	OpOri
	OpSlli
	OpSrli
	OpLui // rd = imm << 16
	OpLw  // rd = mem32[rs+imm]
	OpLb  // rd = mem8[rs+imm] (zero-extended)
	OpSw  // mem32[rs+imm] = rt
	OpSb  // mem8[rs+imm] = low byte of rt
	OpBeq
	OpBne
	OpBlt
	OpBge
	OpJ
	OpJal // link into r31
	OpJr
	// Switch extensions.
	OpEmit    // append rs to the handler's output vector (send unit)
	OpDealloc // Deallocate_Buffer(rs): release mapped buffers below rs
	OpStop    // handler complete
)

var opNames = map[Op]string{
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpAnd: "and", OpOr: "or",
	OpXor: "xor", OpSlt: "slt", OpSltu: "sltu",
	OpAddi: "addi", OpAndi: "andi", OpOri: "ori", OpSlli: "slli",
	OpSrli: "srli", OpLui: "lui",
	OpLw: "lw", OpLb: "lb", OpSw: "sw", OpSb: "sb",
	OpBeq: "beq", OpBne: "bne", OpBlt: "blt", OpBge: "bge",
	OpJ: "j", OpJal: "jal", OpJr: "jr",
	OpEmit: "emit", OpDealloc: "dealloc", OpStop: "stop",
}

func (o Op) String() string {
	if n, ok := opNames[o]; ok {
		return n
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Instr is one decoded instruction. Branch and jump targets are absolute
// instruction indices after assembly.
type Instr struct {
	Op         Op
	Rd, Rs, Rt uint8
	Imm        int32
}

// NumRegs is the register file size; register 0 is hard-wired to zero and
// register 31 is the link register.
const NumRegs = 32

// Program is an assembled handler.
type Program struct {
	Instrs []Instr
	Labels map[string]int
	// Base is the program's notional instruction-memory address, used for
	// I-cache fetch modelling (4-byte instructions).
	Base int64
}

// String disassembles the program.
func (p *Program) String() string {
	out := ""
	rev := make(map[int]string, len(p.Labels))
	for l, i := range p.Labels {
		rev[i] = l
	}
	for i, ins := range p.Instrs {
		if l, ok := rev[i]; ok {
			out += l + ":\n"
		}
		out += fmt.Sprintf("  %2d: %-7s rd=%d rs=%d rt=%d imm=%d\n",
			i, ins.Op, ins.Rd, ins.Rs, ins.Rt, ins.Imm)
	}
	return out
}
